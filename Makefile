GO ?= go

RACE_PKGS = ./internal/cache ./internal/core ./internal/serve ./internal/app

.PHONY: check build test vet fmt race bench

check: fmt vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race coverage of the concurrent paths: lookups/extractions racing
# refreshes, the serving engine, and the parallel bench runner.
race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) run ./cmd/ugache-bench -exp all
