GO ?= go

RACE_PKGS = ./internal/cache ./internal/core ./internal/serve ./internal/cluster ./internal/app ./internal/telemetry ./internal/timeline ./internal/flight ./internal/milp ./internal/solver ./internal/workload ./internal/baselines ./internal/bench

# Packages with testing.B microbenchmarks on the extraction hot path.
BENCH_PKGS = ./internal/hashtable ./internal/core ./internal/serve

.PHONY: check build test vet fmt race bench bench-solver bench-drift bench-prefetch bench-serve bench-cluster figures trace-smoke flight-smoke

check: fmt vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race coverage of the concurrent paths: lookups/extractions racing
# refreshes, the serving engine, the parallel bench runner, and the
# multi-worker branch-and-bound search (milp is the slowest at ~15 s).
race:
	$(GO) test -race $(RACE_PKGS)

# Hot-path microbenchmarks with allocation counts (compare against the
# checked-in BENCH_hotpath.json numbers).
bench:
	$(GO) test -run xxx -bench . -benchmem $(BENCH_PKGS)

# Solver control-plane benchmarks: parallel branch-and-bound throughput
# (W=1 vs W=4) and cold-vs-warm refresh re-solves (compare against the
# checked-in BENCH_solver.json numbers).
bench-solver:
	$(GO) test -run xxx -bench BenchmarkMILPSolve -benchmem ./internal/milp
	$(GO) test -run xxx -bench BenchmarkRefreshSolve -benchmem ./internal/solver

# Drift-adaptive refresh benchmark: served p99 through a flash-crowd shift
# under blind-periodic vs drift-triggered refresh vs an online LFU baseline
# (regenerates the checked-in BENCH_drift.json).
bench-drift:
	$(GO) run ./cmd/ugache-bench -exp drift -scale 0.25 -json-out BENCH_drift.json

# Lookahead prefetch benchmark: served p99 and effective hit rate at
# lookahead depths L=0/2/8 on the shifting-Zipf stream, with a mid-stream
# refresh exercising the bounded-staleness window (regenerates the
# checked-in BENCH_prefetch.json).
bench-prefetch:
	$(GO) run ./cmd/ugache-bench -exp prefetch -scale 0.25 -json-out BENCH_prefetch.json

# Open-loop overload sweep: latency vs offered load past saturation with
# bounded admission — knee, shed counts, and admitted-p99 per step
# (regenerates the checked-in BENCH_serve.json).
bench-serve:
	$(GO) run ./cmd/ugache-bench -exp serve -scale 1 -json-out BENCH_serve.json

# Multi-node scale-out sweep: virtual-time offered-load curves for 1/2/4
# machines joined by the network fabric — knee scaling vs a single machine
# (regenerates the checked-in BENCH_cluster.json; deterministic, so the
# output should be byte-identical up to the recorded command line).
bench-cluster:
	$(GO) run ./cmd/ugache-bench -exp cluster -scale 1 -json-out BENCH_cluster.json

# Regenerate the paper's tables and figures (minutes at full scale).
figures:
	$(GO) run ./cmd/ugache-bench -exp all

# End-to-end timeline smoke test: run a short serving loop with tracing and
# a refresh, then validate the exported Chrome trace.
trace-smoke:
	$(GO) run ./cmd/ugache-serve -scale 0.02 -clients 4 -requests 20 \
		-refresh -trace-out /tmp/ugache-trace-smoke.json
	$(GO) run ./cmd/ugache-trace -check-timeline /tmp/ugache-trace-smoke.json

# End-to-end flight-recorder smoke test: overload an open-loop run against a
# deliberately unmeetable p99 SLO so the watchdog trips and writes a
# diagnostic bundle, then validate it (manifest, JSONL events, metrics,
# exemplar batch resolving to a span tree in the dumped timeline window).
flight-smoke:
	rm -rf /tmp/ugache-flight-smoke
	$(GO) run ./cmd/ugache-serve -scale 0.02 -open-loop -qps 4000 -duration 3s \
		-slo-p99-ms 0.01 -bundle-dir /tmp/ugache-flight-smoke
	$(GO) run ./cmd/ugache-trace \
		-check-bundle "$$(ls -td /tmp/ugache-flight-smoke/flight-* | head -1)"
