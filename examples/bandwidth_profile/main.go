// Bandwidth profile: regenerate the paper's Fig. 6 microbenchmark with the
// public API — the achieved bandwidth of one GPU extracting from host,
// local, and remote memory as the dedicated core count grows, plus the
// NVSwitch multi-reader collision.
//
//	go run ./examples/bandwidth_profile
package main

import (
	"fmt"
	"log"

	"ugache"
)

func main() {
	for _, p := range []*ugache.Platform{ugache.ServerA(), ugache.ServerC()} {
		fmt.Printf("%s (%d SMs per GPU)\n", p.Name, p.GPU.SMs)
		counts := []int{1, 2, 4, 8, 16, 32, 48, 64, 80}
		if p.GPU.SMs > 80 {
			counts = append(counts, 96, 108)
		}
		fmt.Printf("  %-6s %12s %12s %12s\n", "cores", "CPU GB/s", "local GB/s", "remote GB/s")
		for _, c := range counts {
			host, err := p.ProfileBandwidth(0, p.Host(), []int{c})
			if err != nil {
				log.Fatal(err)
			}
			local, err := p.ProfileBandwidth(0, 0, []int{c})
			if err != nil {
				log.Fatal(err)
			}
			remote, err := p.ProfileBandwidth(0, 1, []int{c})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6d %12.1f %12.1f %12.1f\n",
				c, host[0].Bandwidth/1e9, local[0].Bandwidth/1e9, remote[0].Bandwidth/1e9)
		}
		fmt.Println()
	}

	// Fig. 6(b) right: concurrent readers collide on a source's outbound
	// NVSwitch port.
	c := ugache.ServerC()
	fmt.Println("NVSwitch collision (readers of GPU 4, full cores each):")
	for n := 1; n <= 4; n++ {
		readers := make([]int, n)
		for i := range readers {
			readers[i] = i // GPUs 0..n-1
		}
		bw, err := c.ProfileMultiReader(4, readers, c.GPU.SMs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d readers: %.0f GB/s each\n", n, bw[0]/1e9)
	}
}
