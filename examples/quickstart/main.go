// Quickstart: build a UGache system on the simulated 8×A100 server, look up
// real embedding bytes through the multi-GPU cache, and compare the
// factored extraction mechanism against the naive baselines.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"ugache"
)

func main() {
	// The paper's Server C: eight A100s behind NVSwitch.
	p := ugache.ServerC()
	fmt.Printf("platform: %s (%d × %s)\n", p.Name, p.N, p.GPU.Name)

	// A host-resident embedding table with real bytes (small enough to
	// materialize; production-sized tables use ugache.NewTable, which
	// generates rows deterministically on read).
	const entries, dim = 100_000, 128
	table, err := ugache.NewMaterializedTable("emb", entries, dim, ugache.Float32, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Skewed access: a Zipf-1.2 key stream, like the paper's synthetic DLR
	// workloads. Profile some batches to measure hotness (§6.1).
	zipf, err := ugache.NewZipf(entries, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	rng := ugache.NewRand(1)
	genBatch := func(keys int) []int64 {
		raw := make([]int64, keys)
		for i := range raw {
			raw[i] = zipf.Sample(rng)
		}
		return ugache.UniqueKeys(raw, nil)
	}
	var profile [][]int64
	for i := 0; i < 64; i++ {
		profile = append(profile, genBatch(50_000))
	}
	hot, err := ugache.ProfileBatches(entries, profile)
	if err != nil {
		log.Fatal(err)
	}

	// Build: solve the cache policy (§6), fill the simulated GPU caches.
	sys, err := ugache.New(ugache.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.08, // 8% of all entries per GPU
		Source:     table,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()[0]
	fmt.Printf("solved policy: %.1f%% local / %.1f%% remote / %.1f%% host (modelled)\n",
		st.Local*100, st.Remote*100, st.Host*100)

	// Functional lookup: GPU 3 gathers rows through the multi-GPU cache;
	// the bytes match the host table exactly.
	keys := []int64{0, 7, 99_999, 12_345}
	out := make([]byte, len(keys)*table.EntryBytes())
	if err := sys.Lookup(3, keys, out); err != nil {
		log.Fatal(err)
	}
	row := make([]byte, table.EntryBytes())
	for i, k := range keys {
		if err := table.ReadRow(k, row); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], row) {
			log.Fatalf("lookup mismatch for key %d", k)
		}
	}
	fmt.Printf("lookup: %d rows gathered and verified against the host table\n", len(keys))

	// Simulated extraction timing: one data-parallel iteration (every GPU
	// extracts its own batch), under the three mechanisms of §3.2/§5.
	batch := &ugache.Batch{Keys: make([][]int64, p.N)}
	for g := range batch.Keys {
		batch.Keys[g] = genBatch(200_000)
	}
	for _, m := range []ugache.Mechanism{ugache.MessageBased, ugache.PeerRandom, ugache.Factored} {
		res, err := sys.ExtractWith(m, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("extraction (%-13s): %7.3f ms\n", m, res.Time*1e3)
	}
}
