// GNN training: supervised GraphSAGE over a power-law citation-style graph
// on the three simulated servers, comparing the end-to-end epoch time of
// GNNLab (replication), PartU (clique partition) and UGache — a miniature
// of the paper's Figure 10(a). Uses the evaluation harness packages
// alongside the public API.
//
//	go run ./examples/gnn_training
package main

import (
	"fmt"
	"log"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
)

func main() {
	// A 1/1000-scale PA (OGB-Papers100M) stand-in: ~111k nodes.
	ds, err := graph.PA.Build(0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d nodes, %d edges, dim %d, %d train seeds\n",
		ds.G.NumNodes(), ds.G.NumEdges(), ds.Spec.Dim, len(ds.Train))

	for _, p := range []*platform.Platform{platform.ServerA(), platform.ServerB(), platform.ServerC()} {
		fmt.Printf("\n%s:\n", p.Name)
		for _, spec := range []baselines.Spec{baselines.GNNLab, baselines.PartU, baselines.UGache} {
			a, err := app.NewGNN(app.GNNConfig{
				P:          p,
				DS:         ds,
				Model:      "sage",
				Supervised: true,
				BatchSize:  1024,
				Spec:       spec,
				CacheRatio: 0.08,
				Seed:       42,
			})
			if err != nil {
				fmt.Printf("  %-8s cannot launch: %v\n", spec.Name, err)
				continue
			}
			rep, err := a.RunIters(4)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s epoch %7.2f ms  (extract %6.3f ms, sample %6.3f, queue %6.3f, dense %6.3f per iter; local hit %4.1f%%)\n",
				spec.Name, rep.EpochSeconds*1e3,
				rep.PerIter.Extract*1e3, rep.PerIter.Sample*1e3, rep.PerIter.Queue*1e3, rep.PerIter.Dense*1e3,
				rep.HitLocal*100)
		}
	}
	fmt.Println("\nShape to look for (paper Fig. 10a): UGache fastest; GNNLab pays host-queue")
	fmt.Println("and host-extraction costs; PartU pays remote/divergence costs.")
}
