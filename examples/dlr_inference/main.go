// DLR inference: a recommendation-serving scenario in the style of the
// paper's §8 DLR evaluation — a hundred embedding tables flattened behind
// one multi-GPU cache, skewed request streams, and a §7.2 background
// refresh when the popularity distribution drifts (a new daily trace).
//
//	go run ./examples/dlr_inference
package main

import (
	"fmt"
	"log"

	"ugache"
)

const (
	numTables      = 100
	entriesPer     = 20_000
	dim            = 128
	batchSize      = 2048 // inference samples per GPU per iteration
	profileBatches = 64
)

func main() {
	p := ugache.ServerC()

	// One hundred embedding tables flattened into a single key space, as
	// DLR serving systems do.
	tables := make([]*ugache.Table, numTables)
	for t := range tables {
		tb, err := ugache.NewTable(fmt.Sprintf("table%d", t), entriesPer, dim, ugache.Float32, uint64(t)+1)
		if err != nil {
			log.Fatal(err)
		}
		tables[t] = tb
	}
	mt, err := ugache.NewMultiTable(tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tables, %d entries, %.1f GB of embeddings\n",
		numTables, mt.NumEntries(), float64(mt.TotalBytes())/(1<<30))

	// Per-table Zipf request streams (one key per table per sample).
	zipf, err := ugache.NewZipf(entriesPer, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	r := ugache.NewRand(7)
	scratch := make(map[int64]struct{})
	genBatch := func() []int64 {
		raw := make([]int64, 0, batchSize*numTables)
		for s := 0; s < batchSize; s++ {
			for t := 0; t < numTables; t++ {
				raw = append(raw, mt.Offset(t)+zipf.Sample(r))
			}
		}
		return ugache.UniqueKeys(raw, scratch)
	}

	// Warm-up profiling, then build.
	var profile [][]int64
	for i := 0; i < profileBatches; i++ {
		profile = append(profile, genBatch())
	}
	hot, err := ugache.ProfileBatches(mt.NumEntries(), profile)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ugache.New(ugache.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: mt.MaxEntryBytes(),
		CacheRatio: 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Steady-state serving: per-iteration extraction latency.
	iter := func() float64 {
		b := &ugache.Batch{Keys: make([][]int64, p.N)}
		for g := range b.Keys {
			b.Keys[g] = genBatch()
		}
		res, err := sys.ExtractBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		return res.Time
	}
	base := 0.0
	for i := 0; i < 5; i++ {
		base += iter()
	}
	base /= 5
	fmt.Printf("steady-state extraction: %.3f ms/iteration\n", base*1e3)

	// The foreground sampler keeps recording hotness (§7.2)...
	sampler := ugache.NewHotnessSampler(mt.NumEntries(), 4)
	for i := 0; i < 32; i++ {
		sampler.Observe(genBatch())
	}

	// ... and one day the trace drifts: yesterday's cold keys are hot.
	drifted := make(ugache.Hotness, len(hot))
	for t := 0; t < numTables; t++ {
		off := mt.Offset(t)
		for k := int64(0); k < entriesPer; k++ {
			drifted[off+k] = hot[off+(entriesPer-1-k)]
		}
	}
	trigger, err := sys.ShouldRefresh(drifted, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drift detected, refresh triggered: %v\n", trigger)

	// Pace the update batches so the refresh spreads over ~20 s with a
	// ~40% duty cycle (≈10% mean foreground impact), as in the paper's
	// Fig. 17 operating point.
	cfg := ugache.DefaultRefreshConfig()
	cfg.BatchEntries = mt.NumEntries() / 128
	cfg.UpdateBandwidth = float64(2*mt.NumEntries()*int64(mt.MaxEntryBytes())) * 2.5 / 20
	perStep := float64(cfg.BatchEntries*int64(mt.MaxEntryBytes())) / cfg.UpdateBandwidth
	cfg.PauseSeconds = 1.5 * perStep
	rep, err := sys.Refresh(drifted, base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh: %.1f s total (%.1f s solve), %d evicted, %d inserted, mean impact %.1f%%\n",
		rep.Duration, rep.SolveSeconds, rep.EvictedEntries, rep.InsertedEntries, rep.MeanImpact*100)
}
