// Package stats provides the small numeric-summary and report-rendering
// helpers shared by the benchmark harness: streaming summaries, fixed-bucket
// histograms, and fixed-width table/series rendering used to print the rows
// and series of the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming moments and extremes of a sequence.
type Summary struct {
	n        int
	sum, sq  float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram is a fixed-bucket histogram over [Lo, Hi); values outside the
// range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given range and bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	b := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bucket b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from bucket
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	acc := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		acc += float64(c)
		if acc >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi
}

// Quantiles computes exact quantiles of a sample (which it sorts in place).
func Quantiles(sample []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(sample) == 0 {
		return out
	}
	sort.Float64s(sample)
	for i, q := range qs {
		pos := q * float64(len(sample)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(sample) {
			out[i] = sample[len(sample)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = sample[lo]*(1-frac) + sample[hi]*frac
	}
	return out
}

// Table renders labelled rows of numbers with fixed-width columns; it is the
// uniform output format of the benchmark harness.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where the first cell is a label and the rest are
// numbers formatted with the given verb (e.g. "%.2f").
func (t *Table) AddRowf(label, verb string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence, the unit of figure reproduction.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeries renders multiple series sharing an x-axis as one table.
// Series need not be aligned; missing points render as "-".
func RenderSeries(title, xlabel string, series ...*Series) string {
	// Collect the union of x values.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	headers := []string{xlabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	for _, x := range xs {
		cells := []string{trimFloat(x)}
		for _, s := range series {
			cell := "-"
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			cells = append(cells, cell)
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries; it is used for the paper's "average speedup" rows.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
