package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummaryMinMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Constrain magnitude so the running sum cannot overflow.
			s.Add(math.Mod(v, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for b := 0; b < 10; b++ {
		if h.Counts[b] != 1 {
			t.Fatalf("bucket %d = %d", b, h.Counts[b])
		}
	}
	h.Add(-5)  // clamps to first
	h.Add(100) // clamps to last
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatal("clamping failed")
	}
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	if f := h.Fraction(0); math.Abs(f-2.0/12) > 1e-12 {
		t.Fatalf("Fraction = %v", f)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	q := h.Quantile(0.5)
	if q < 45 || q > 55 {
		t.Fatalf("median %v", q)
	}
}

func TestQuantilesExact(t *testing.T) {
	qs := Quantiles([]float64{4, 1, 3, 2}, 0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 4 {
		t.Fatalf("got %v", qs)
	}
	if math.Abs(qs[1]-2.5) > 1e-12 {
		t.Fatalf("median %v", qs[1])
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatal("empty sample should yield zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "v1", "v2")
	tab.AddRowf("row-a", "%.1f", 1.0, 2.0)
	tab.AddRow("row-b", "3", "4")
	out := tab.String()
	for _, want := range []string{"== demo ==", "name", "row-a", "1.0", "row-b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(1, 10)
	a.Append(2, 20)
	b := &Series{Name: "b"}
	b.Append(2, 200)
	out := RenderSeries("fig", "x", a, b)
	if !strings.Contains(out, "fig") || !strings.Contains(out, "200") {
		t.Fatalf("bad render:\n%s", out)
	}
	// x=1 has no b value: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{2, -1, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean skip nonpositive = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRenderChart(t *testing.T) {
	a := &Series{Name: "rising"}
	b := &Series{Name: "flat"}
	for x := 0.0; x <= 10; x++ {
		a.Append(x, x*x)
		b.Append(x, 40)
	}
	out := RenderChart("demo", "ratio", "ms", a, b)
	for _, want := range []string{"== demo ==", "rising", "flat", "*", "o", "x: ratio, y: ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Rising series must hit the top row; flat one must not.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("top of chart missing rising series:\n%s", out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	if out := RenderChart("empty", "x", "y"); !strings.Contains(out, "no plottable data") {
		t.Fatalf("degenerate chart: %s", out)
	}
	one := &Series{Name: "p"}
	one.Append(1, 5)
	if out := RenderChart("point", "x", "y", one); !strings.Contains(out, "no plottable data") {
		t.Fatalf("single x should be degenerate: %s", out)
	}
}
