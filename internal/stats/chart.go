package stats

import (
	"fmt"
	"math"
	"strings"
)

// chart dimensions (plot area, excluding axes).
const (
	chartWidth  = 64
	chartHeight = 16
)

// seriesMarkers distinguish overlapping series in RenderChart.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderChart draws the series as an ASCII line chart — the closest a
// terminal gets to regenerating a paper figure. X values may differ between
// series; Y is linear and starts at zero (the evaluation's figures all have
// zero-based y-axes).
func RenderChart(title, xlabel, ylabel string, series ...*Series) string {
	var xmin, xmax, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				first = false
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first || xmax == xmin || ymax <= 0 {
		return fmt.Sprintf("== %s ==\n(no plottable data)\n", title)
	}

	grid := make([][]byte, chartHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", chartWidth))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(chartWidth-1)))
		return clampInt(c, 0, chartWidth-1)
	}
	row := func(y float64) int {
		r := int(math.Round(y / ymax * float64(chartHeight-1)))
		return clampInt(chartHeight-1-r, 0, chartHeight-1)
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		// Connect consecutive points with interpolated markers.
		for i := 0; i+1 < len(s.X); i++ {
			c0, r0 := col(s.X[i]), row(s.Y[i])
			c1, r1 := col(s.X[i+1]), row(s.Y[i+1])
			steps := maxInt(absInt(c1-c0), absInt(r1-r0))
			if steps == 0 {
				steps = 1
			}
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				c := c0 + int(math.Round(f*float64(c1-c0)))
				r := r0 + int(math.Round(f*float64(r1-r0)))
				grid[r][c] = marker
			}
		}
		if len(s.X) == 1 {
			grid[row(s.Y[0])][col(s.X[0])] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	axisW := len(fmt.Sprintf("%.3g", ymax))
	for r := 0; r < chartHeight; r++ {
		yVal := ymax * float64(chartHeight-1-r) / float64(chartHeight-1)
		label := "      "
		if r == 0 || r == chartHeight-1 || r == chartHeight/2 {
			label = fmt.Sprintf("%*.3g", axisW, yVal)
		} else {
			label = strings.Repeat(" ", axisW)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", chartWidth))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", axisW), chartWidth/2, xmin, chartWidth/2, xmax)
	fmt.Fprintf(&b, "x: %s, y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
