package nn

import (
	"fmt"

	"ugache/internal/rng"
)

// DLRM is the dense portion of the Deep Learning Recommendation Model
// (paper §8.1: six MLP layers plus the embedding layer): a bottom MLP over
// dense features, pairwise dot-product feature interaction between the
// bottom output and the embedding vectors, and a top MLP ending in a
// click-probability logit.
type DLRM struct {
	NumTables int // embedding vectors per sample
	EmbDim    int
	Bottom    *MLP
	Top       *MLP
}

// NewDLRM follows the HPS settings the paper cites: bottom 13→512→256→dim,
// top over interactions →1024→512→256→1.
func NewDLRM(numTables, embDim int, r *rng.Rand) (*DLRM, error) {
	if numTables < 1 || embDim < 1 {
		return nil, fmt.Errorf("nn: bad DLRM shape %d×%d", numTables, embDim)
	}
	bottom, err := NewMLP([]int{13, 512, 256, embDim}, r.Split("bottom"))
	if err != nil {
		return nil, err
	}
	// Interaction features: pairwise dots among numTables+1 vectors plus
	// the bottom output itself.
	f := numTables + 1
	interDim := f*(f-1)/2 + embDim
	top, err := NewMLP([]int{interDim, 1024, 512, 256, 1}, r.Split("top"))
	if err != nil {
		return nil, err
	}
	return &DLRM{NumTables: numTables, EmbDim: embDim, Bottom: bottom, Top: top}, nil
}

// Forward computes click probabilities for a batch. dense is rows×13;
// embs is rows×NumTables×EmbDim (the embedding layer's output).
func (m *DLRM) Forward(dense, embs []float32, rows int) ([]float32, error) {
	if len(dense) != rows*13 {
		return nil, fmt.Errorf("nn: dense input %d != %d×13", len(dense), rows)
	}
	if len(embs) != rows*m.NumTables*m.EmbDim {
		return nil, fmt.Errorf("nn: embedding input %d != %d×%d×%d", len(embs), rows, m.NumTables, m.EmbDim)
	}
	bot, err := m.Bottom.Forward(dense, rows)
	if err != nil {
		return nil, err
	}
	f := m.NumTables + 1
	interDim := f*(f-1)/2 + m.EmbDim
	inter := make([]float32, rows*interDim)
	vec := func(r, t int) []float32 {
		if t == 0 {
			return bot[r*m.EmbDim : (r+1)*m.EmbDim]
		}
		base := (r*m.NumTables + (t - 1)) * m.EmbDim
		return embs[base : base+m.EmbDim]
	}
	for r := 0; r < rows; r++ {
		o := inter[r*interDim:]
		k := 0
		for a := 0; a < f; a++ {
			va := vec(r, a)
			for b := a + 1; b < f; b++ {
				vb := vec(r, b)
				dot := float32(0)
				for i := range va {
					dot += va[i] * vb[i]
				}
				o[k] = dot
				k++
			}
		}
		copy(o[k:interDim], bot[r*m.EmbDim:(r+1)*m.EmbDim])
	}
	out, err := m.Top.Forward(inter, rows)
	if err != nil {
		return nil, err
	}
	Sigmoid(out)
	return out, nil
}

// FLOPs prices one forward batch.
func (m *DLRM) FLOPs(rows int) float64 {
	f := m.Bottom.FLOPs(rows) + m.Top.FLOPs(rows)
	pairs := (m.NumTables + 1) * m.NumTables / 2
	f += 2 * float64(rows) * float64(pairs) * float64(m.EmbDim)
	return f
}

// Kernels returns the launch count per forward batch.
func (m *DLRM) Kernels() int { return m.Bottom.Kernels() + m.Top.Kernels() + 1 }

// DCN is Deep & Cross Network v1 (paper §8.1: DLRM's MLP stack plus a
// Cross layer stack, following the TensorFlow example settings).
type DCN struct {
	NumTables int
	EmbDim    int
	CrossW    []*Linear // cross layers share the concat dim
	Deep      *MLP
	Out       *Linear
	inDim     int
}

// NewDCN builds a 3-cross-layer, 3-deep-layer DCN.
func NewDCN(numTables, embDim int, r *rng.Rand) (*DCN, error) {
	if numTables < 1 || embDim < 1 {
		return nil, fmt.Errorf("nn: bad DCN shape %d×%d", numTables, embDim)
	}
	inDim := 13 + numTables*embDim
	m := &DCN{NumTables: numTables, EmbDim: embDim, inDim: inDim}
	for i := 0; i < 3; i++ {
		m.CrossW = append(m.CrossW, NewLinear(inDim, 1, false, r.Split(fmt.Sprintf("cross%d", i))))
	}
	deep, err := NewMLP([]int{inDim, 1024, 512, 256}, r.Split("deep"))
	if err != nil {
		return nil, err
	}
	m.Deep = deep
	m.Out = NewLinear(inDim+256, 1, false, r.Split("out"))
	return m, nil
}

// Forward computes click probabilities; inputs as in DLRM.Forward but the
// embeddings are concatenated with the dense features.
func (m *DCN) Forward(dense, embs []float32, rows int) ([]float32, error) {
	if len(dense) != rows*13 || len(embs) != rows*m.NumTables*m.EmbDim {
		return nil, fmt.Errorf("nn: bad DCN inputs")
	}
	x0 := make([]float32, rows*m.inDim)
	for r := 0; r < rows; r++ {
		copy(x0[r*m.inDim:], dense[r*13:(r+1)*13])
		copy(x0[r*m.inDim+13:], embs[r*m.NumTables*m.EmbDim:(r+1)*m.NumTables*m.EmbDim])
	}
	// Cross tower: x_{k+1} = x0 * (x_k·w) + b + x_k.
	xk := append([]float32(nil), x0...)
	for _, cw := range m.CrossW {
		s, err := cw.Forward(xk, rows) // rows×1
		if err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			sr := s[r]
			for i := 0; i < m.inDim; i++ {
				xk[r*m.inDim+i] = x0[r*m.inDim+i]*sr + xk[r*m.inDim+i]
			}
		}
	}
	deep, err := m.Deep.Forward(x0, rows)
	if err != nil {
		return nil, err
	}
	// Concat cross and deep towers.
	cat := make([]float32, rows*(m.inDim+256))
	for r := 0; r < rows; r++ {
		copy(cat[r*(m.inDim+256):], xk[r*m.inDim:(r+1)*m.inDim])
		copy(cat[r*(m.inDim+256)+m.inDim:], deep[r*256:(r+1)*256])
	}
	out, err := m.Out.Forward(cat, rows)
	if err != nil {
		return nil, err
	}
	Sigmoid(out)
	return out, nil
}

// FLOPs prices one forward batch.
func (m *DCN) FLOPs(rows int) float64 {
	f := m.Deep.FLOPs(rows) + m.Out.FLOPs(rows)
	for _, cw := range m.CrossW {
		f += cw.FLOPs(rows) + 2*float64(rows)*float64(m.inDim)
	}
	return f
}

// Kernels returns the launch count per forward batch.
func (m *DCN) Kernels() int { return m.Deep.Kernels() + len(m.CrossW)*2 + 2 }

// SAGELayer is one GraphSAGE convolution: h' = ReLU(W·[h ‖ mean(h_N)]).
type SAGELayer struct {
	Lin *Linear
}

// GNN is a sampled GNN model (GraphSAGE or GCN): per layer, neighbour
// aggregation plus a dense transform over every node in the layer's
// frontier. For timing purposes the node counts per hop dominate; the
// functional path operates on a flattened mini-batch.
type GNN struct {
	Model  string // "gcn" or "sage"
	Dims   []int  // e.g. {featDim, 256, numClasses}
	Layers []*SAGELayer
}

// NewGNN builds the model; dims[0] is the embedding dimension.
func NewGNN(model string, dims []int, r *rng.Rand) (*GNN, error) {
	if model != "gcn" && model != "sage" {
		return nil, fmt.Errorf("nn: unknown GNN model %q", model)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: GNN needs at least two dims")
	}
	g := &GNN{Model: model, Dims: dims}
	for i := 0; i+1 < len(dims); i++ {
		in := dims[i]
		if model == "sage" {
			in *= 2 // concat(self, mean(neighbours))
		}
		g.Layers = append(g.Layers, &SAGELayer{
			Lin: NewLinear(in, dims[i+1], i+2 < len(dims), r.Split(fmt.Sprintf("conv%d", i))),
		})
	}
	return g, nil
}

// FLOPs prices one training iteration (forward + backward ≈ 3× forward)
// given the node count entering each layer (hop frontier sizes, innermost
// first: nodesPerHop[0] feeds layer 0).
func (g *GNN) FLOPs(nodesPerHop []int) float64 {
	f := 0.0
	for i, l := range g.Layers {
		nodes := 0
		if i < len(nodesPerHop) {
			nodes = nodesPerHop[i]
		}
		f += l.Lin.FLOPs(nodes)
	}
	return 3 * f
}

// Kernels returns the launch count per iteration (aggregate + matmul +
// backward per layer).
func (g *GNN) Kernels() int { return len(g.Layers) * 5 }

// ForwardFlat runs the dense transforms over a flattened frontier where
// each node's "neighbourhood mean" is supplied directly; it exercises the
// numeric path for tests without a full message-passing engine.
func (g *GNN) ForwardFlat(x []float32, rows int) ([]float32, error) {
	var err error
	for i, l := range g.Layers {
		in := x
		if g.Model == "sage" {
			// Self features stand in for the aggregated neighbourhood.
			dim := len(x) / rows
			cat := make([]float32, rows*dim*2)
			for r := 0; r < rows; r++ {
				copy(cat[r*dim*2:], x[r*dim:(r+1)*dim])
				copy(cat[r*dim*2+dim:], x[r*dim:(r+1)*dim])
			}
			in = cat
		}
		x, err = l.Lin.Forward(in, rows)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return x, nil
}
