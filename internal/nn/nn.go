// Package nn implements the dense-model substrate of the evaluation: real
// float32 MLP / DLRM / DCN / GraphSAGE / GCN forward computation (so
// functional tests can check numbers end to end) together with an
// analytic GPU-time model (FLOPs over effective throughput plus per-kernel
// launch overhead) that prices the dense portion of each iteration — the
// "MLP" rows of the paper's Table 1 and the non-embedding part of every
// end-to-end figure.
package nn

import (
	"fmt"
	"math"

	"ugache/internal/platform"
	"ugache/internal/rng"
)

// TimeModel prices dense GPU compute.
type TimeModel struct {
	// PeakFLOPs is the device's peak fp32 throughput.
	PeakFLOPs float64
	// Efficiency is the achieved fraction of peak for DL kernels.
	Efficiency float64
	// KernelOverhead is the fixed launch cost per layer/kernel.
	KernelOverhead float64
}

// TimeModelFor returns a calibrated model for a GPU generation.
func TimeModelFor(g platform.GPUModel) TimeModel {
	switch g.Name {
	case "A100-80GB":
		return TimeModel{PeakFLOPs: 19.5e12, Efficiency: 0.55, KernelOverhead: 8e-6}
	default: // V100 class
		return TimeModel{PeakFLOPs: 15.7e12, Efficiency: 0.45, KernelOverhead: 10e-6}
	}
}

// Seconds prices a computation of the given FLOPs across the given number
// of kernels.
func (t TimeModel) Seconds(flops float64, kernels int) float64 {
	return flops/(t.PeakFLOPs*t.Efficiency) + float64(kernels)*t.KernelOverhead
}

// Linear is one dense layer (out = act(x·W + b)).
type Linear struct {
	In, Out int
	W       []float32 // In×Out, row-major
	B       []float32
	ReLU    bool
}

// NewLinear creates a layer with deterministic Xavier-style init.
func NewLinear(in, out int, relu bool, r *rng.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out), ReLU: relu}
	scale := float32(math.Sqrt(2.0 / float64(in+out)))
	for i := range l.W {
		l.W[i] = (float32(r.Float64())*2 - 1) * scale
	}
	return l
}

// Forward computes the layer over a batch (rows × In), returning rows × Out.
func (l *Linear) Forward(x []float32, rows int) ([]float32, error) {
	if len(x) != rows*l.In {
		return nil, fmt.Errorf("nn: input %d != %d×%d", len(x), rows, l.In)
	}
	out := make([]float32, rows*l.Out)
	for r := 0; r < rows; r++ {
		xi := x[r*l.In : (r+1)*l.In]
		oi := out[r*l.Out : (r+1)*l.Out]
		copy(oi, l.B)
		for i, xv := range xi {
			if xv == 0 {
				continue
			}
			wrow := l.W[i*l.Out : (i+1)*l.Out]
			for j, wv := range wrow {
				oi[j] += xv * wv
			}
		}
		if l.ReLU {
			for j := range oi {
				if oi[j] < 0 {
					oi[j] = 0
				}
			}
		}
	}
	return out, nil
}

// FLOPs returns the forward cost for a batch.
func (l *Linear) FLOPs(rows int) float64 {
	return 2 * float64(rows) * float64(l.In) * float64(l.Out)
}

// MLP is a stack of Linear layers.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given widths (ReLU between layers, linear
// output).
func NewMLP(widths []int, r *rng.Rand) (*MLP, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least two widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		relu := i+2 < len(widths)
		m.Layers = append(m.Layers, NewLinear(widths[i], widths[i+1], relu, r.Split(fmt.Sprintf("l%d", i))))
	}
	return m, nil
}

// Forward runs the batch through all layers.
func (m *MLP) Forward(x []float32, rows int) ([]float32, error) {
	var err error
	for _, l := range m.Layers {
		x, err = l.Forward(x, rows)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// FLOPs returns the forward cost.
func (m *MLP) FLOPs(rows int) float64 {
	f := 0.0
	for _, l := range m.Layers {
		f += l.FLOPs(rows)
	}
	return f
}

// Kernels returns the kernel-launch count.
func (m *MLP) Kernels() int { return len(m.Layers) }

// Sigmoid applies the logistic function in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}
