package nn

import (
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/rng"
)

func TestLinearForward(t *testing.T) {
	l := &Linear{In: 2, Out: 2, W: []float32{1, 2, 3, 4}, B: []float32{0.5, -0.5}}
	out, err := l.Forward([]float32{1, 1, 2, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Row0: [1*1+1*3+0.5, 1*2+1*4-0.5] = [4.5, 5.5]
	// Row1: [2*1+0.5, 2*2-0.5] = [2.5, 3.5]
	want := []float32{4.5, 5.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(float64(out[i]-want[i])) > 1e-6 {
			t.Fatalf("out = %v", out)
		}
	}
	if _, err := l.Forward([]float32{1}, 2); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestLinearReLU(t *testing.T) {
	l := &Linear{In: 1, Out: 1, W: []float32{-1}, B: []float32{0}, ReLU: true}
	out, _ := l.Forward([]float32{5}, 1)
	if out[0] != 0 {
		t.Fatalf("relu failed: %v", out)
	}
}

func TestMLPShapesAndFLOPs(t *testing.T) {
	r := rng.New(1)
	m, err := NewMLP([]int{8, 16, 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 3*8)
	for i := range x {
		x[i] = float32(i) * 0.01
	}
	out, err := m.Forward(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*4 {
		t.Fatalf("out len %d", len(out))
	}
	wantFLOPs := 2.0 * 3 * (8*16 + 16*4)
	if m.FLOPs(3) != wantFLOPs {
		t.Fatalf("FLOPs %g, want %g", m.FLOPs(3), wantFLOPs)
	}
	if m.Kernels() != 2 {
		t.Fatal("kernels")
	}
	if _, err := NewMLP([]int{4}, r); err == nil {
		t.Fatal("single width accepted")
	}
}

func TestMLPDeterminism(t *testing.T) {
	a, _ := NewMLP([]int{4, 8, 2}, rng.New(3))
	b, _ := NewMLP([]int{4, 8, 2}, rng.New(3))
	x := []float32{1, 2, 3, 4}
	oa, _ := a.Forward(x, 1)
	ob, _ := b.Forward(x, 1)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("nondeterministic init")
		}
	}
}

func TestTimeModel(t *testing.T) {
	tm := TimeModelFor(platform.A100x80)
	// 1 GFLOP at ~10.7 TF effective ≈ 93 µs plus overheads.
	s := tm.Seconds(1e9, 4)
	if s < 50e-6 || s > 300e-6 {
		t.Fatalf("time %g", s)
	}
	v := TimeModelFor(platform.V100x16)
	if v.PeakFLOPs >= tm.PeakFLOPs {
		t.Fatal("V100 should be slower than A100")
	}
	// More kernels cost more.
	if tm.Seconds(0, 10) <= tm.Seconds(0, 1) {
		t.Fatal("kernel overhead missing")
	}
}

func TestDLRM(t *testing.T) {
	r := rng.New(7)
	m, err := NewDLRM(26, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	rows := 4
	dense := make([]float32, rows*13)
	embs := make([]float32, rows*26*16)
	for i := range dense {
		dense[i] = 0.1
	}
	for i := range embs {
		embs[i] = 0.01
	}
	out, err := m.Forward(dense, embs, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != rows {
		t.Fatalf("out len %d", len(out))
	}
	for _, p := range out {
		if p <= 0 || p >= 1 || math.IsNaN(float64(p)) {
			t.Fatalf("probability %v", p)
		}
	}
	if m.FLOPs(rows) <= 0 || m.Kernels() <= 0 {
		t.Fatal("costs missing")
	}
	if _, err := m.Forward(dense[:1], embs, rows); err == nil {
		t.Fatal("bad dense accepted")
	}
	if _, err := NewDLRM(0, 16, r); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestDCN(t *testing.T) {
	r := rng.New(9)
	m, err := NewDCN(10, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	rows := 3
	dense := make([]float32, rows*13)
	embs := make([]float32, rows*10*8)
	for i := range embs {
		embs[i] = 0.02
	}
	out, err := m.Forward(dense, embs, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != rows {
		t.Fatal("out len")
	}
	for _, p := range out {
		if p <= 0 || p >= 1 {
			t.Fatalf("probability %v", p)
		}
	}
	// DCN adds cross layers on top of a deep tower: FLOPs above the deep
	// tower alone.
	if m.FLOPs(rows) <= m.Deep.FLOPs(rows) {
		t.Fatal("cross FLOPs missing")
	}
}

func TestGNN(t *testing.T) {
	r := rng.New(11)
	g, err := NewGNN("sage", []int{32, 64, 8}, r)
	if err != nil {
		t.Fatal(err)
	}
	rows := 5
	x := make([]float32, rows*32)
	for i := range x {
		x[i] = 0.05
	}
	out, err := g.ForwardFlat(x, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != rows*8 {
		t.Fatalf("out len %d", len(out))
	}
	// FLOPs grow with frontier sizes; more nodes in the inner hop cost
	// more.
	small := g.FLOPs([]int{100, 10})
	big := g.FLOPs([]int{10000, 10})
	if big <= small {
		t.Fatal("FLOPs insensitive to frontier")
	}
	if _, err := NewGNN("transformer", []int{4, 2}, r); err == nil {
		t.Fatal("unknown model accepted")
	}
	gcn, err := NewGNN("gcn", []int{16, 8, 4, 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(gcn.Layers) != 3 {
		t.Fatal("gcn depth")
	}
	if _, err := gcn.ForwardFlat(make([]float32, 2*16), 2); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	x := []float32{0, 100, -100}
	Sigmoid(x)
	if math.Abs(float64(x[0])-0.5) > 1e-6 || x[1] < 0.999 || x[2] > 0.001 {
		t.Fatalf("sigmoid %v", x)
	}
}
