package solver

import (
	"math"
	"sort"

	"ugache/internal/platform"
)

// ctx is the shared per-solve state: the hotness ranking and its prefix
// sums, from which policies build blocks and evaluate masses cheaply.
type ctx struct {
	in     *Input
	ranked []int64   // rank -> entry
	prefix []float64 // prefix[r] = Σ hotness of ranks [0, r)
}

func newCtx(in *Input) *ctx {
	ranked := in.Hotness.Rank()
	prefix := make([]float64, len(ranked)+1)
	for r, e := range ranked {
		prefix[r+1] = prefix[r] + in.Hotness[e]
	}
	return &ctx{in: in, ranked: ranked, prefix: prefix}
}

// mass returns the hotness mass of rank range [start, end).
func (c *ctx) mass(start, end int64) float64 {
	return c.prefix[end] - c.prefix[start]
}

// numEntries returns the entry count.
func (c *ctx) numEntries() int64 { return int64(len(c.ranked)) }

// build batches ranks into hotness blocks per §6.3 — log-scale levels, fine
// splitting with a 0.5% size cap and at least N blocks per level — while
// honouring the given mandatory cut points (policies cut at capacity
// boundaries so a block never straddles a cache edge). If the block budget
// would be exceeded, the size cap doubles until it fits.
func (c *ctx) build(cuts ...int64) []Block {
	e := c.numEntries()
	n := int64(c.in.P.N)

	// Segment boundaries: level starts plus mandatory cuts.
	bset := map[int64]struct{}{0: {}, e: {}}
	lvlOf := func(h float64) int {
		if h <= 0 {
			return math.MinInt32
		}
		return int(math.Floor(math.Log2(h)))
	}
	cur := lvlOf(c.in.Hotness[c.ranked[0]])
	for r := int64(1); r < e; r++ {
		if l := lvlOf(c.in.Hotness[c.ranked[r]]); l != cur {
			bset[r] = struct{}{}
			cur = l
		}
	}
	for _, cut := range cuts {
		if cut > 0 && cut < e {
			bset[cut] = struct{}{}
		}
	}
	bounds := make([]int64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	budget := int64(c.in.blockBudget())
	// A budget below the level count cannot be met by size capping alone;
	// fall back to equal-hotness-mass quantile boundaries (still merged
	// with the mandatory cuts) so tiny exact models stay tiny.
	if int64(len(bounds)-1) > budget {
		bounds = c.quantileBounds(budget, cuts)
	}
	sizeCap := int64(math.Ceil(float64(e) * 0.005))
	if sizeCap < 1 {
		sizeCap = 1
	}
	for {
		count := int64(0)
		for s := 0; s+1 < len(bounds); s++ {
			count += numBlocks(bounds[s+1]-bounds[s], n, sizeCap)
		}
		if count <= budget || sizeCap >= e {
			break
		}
		sizeCap *= 2
	}

	var blocks []Block
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		size := blockSize(hi-lo, n, sizeCap)
		for b := lo; b < hi; b += size {
			end := b + size
			if end > hi {
				end = hi
			}
			blocks = append(blocks, Block{
				Start: b, End: end,
				HotPerEntry: c.mass(b, end) / float64(end-b),
				Store:       make([]bool, c.in.P.N),
				Access:      newFallbackAccess(c.in),
			})
		}
	}
	return blocks
}

// quantileBounds splits rank space into at most budget/N equal-hotness-mass
// segments (so that after the ≥N fine-splitting the block count still fits
// the budget), merged with the mandatory cuts.
func (c *ctx) quantileBounds(budget int64, cuts []int64) []int64 {
	e := c.numEntries()
	segs := budget / int64(c.in.P.N)
	if segs < 1 {
		segs = 1
	}
	total := c.prefix[e]
	bset := map[int64]struct{}{0: {}, e: {}}
	if total > 0 {
		r := int64(0)
		for k := int64(1); k < segs; k++ {
			target := total * float64(k) / float64(segs)
			for r < e && c.prefix[r+1] < target {
				r++
			}
			if r > 0 && r < e {
				bset[r] = struct{}{}
			}
		}
	}
	for _, cut := range cuts {
		if cut > 0 && cut < e {
			bset[cut] = struct{}{}
		}
	}
	bounds := make([]int64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return bounds
}

// newFallbackAccess returns an access arrangement where every GPU reads the
// fallback tier (host, or network on clusters) — the state of an uncached
// block.
func newFallbackAccess(in *Input) []platform.SourceID {
	acc := make([]platform.SourceID, in.P.N)
	fb := in.fallback()
	for i := range acc {
		acc[i] = fb
	}
	return acc
}

func blockSize(l, n, sizeCap int64) int64 {
	size := (l + n - 1) / n // ceil(L/N): at least N blocks per segment
	if size > sizeCap {
		size = sizeCap
	}
	if size < 1 {
		size = 1
	}
	return size
}

func numBlocks(l, n, sizeCap int64) int64 {
	size := blockSize(l, n, sizeCap)
	return (l + size - 1) / size
}

// buildQuantile builds at most maxBlocks equal-hotness-mass blocks with no
// per-level fine splitting — the tiny exact models (OptimalLP's general
// formulation) need hard control of the block count.
func (c *ctx) buildQuantile(maxBlocks int) []Block {
	e := c.numEntries()
	segs := int64(maxBlocks)
	if segs < 1 {
		segs = 1
	}
	if segs > e {
		segs = e
	}
	total := c.prefix[e]
	bset := map[int64]struct{}{0: {}, e: {}}
	if total > 0 {
		r := int64(0)
		for k := int64(1); k < segs; k++ {
			target := total * float64(k) / float64(segs)
			for r < e && c.prefix[r+1] < target {
				r++
			}
			if r > 0 && r < e {
				bset[r] = struct{}{}
			}
		}
	}
	bounds := make([]int64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	blocks := make([]Block, 0, len(bounds)-1)
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		blocks = append(blocks, Block{
			Start: lo, End: hi,
			HotPerEntry: c.mass(lo, hi) / float64(hi-lo),
			Store:       make([]bool, c.in.P.N),
			Access:      newFallbackAccess(c.in),
		})
	}
	return blocks
}
