package solver

import (
	"testing"
)

// BenchmarkRefreshSolve measures the control-plane re-solve a cache refresh
// performs: the Exact policy on a drifted-hotness instance under the
// refresh loop's configuration (2% relative gap — online re-solves do not
// need a full optimality proof). cold starts from scratch; warm seeds the
// search with the pre-drift placement the way core.Refresh does, which
// skips incumbent discovery and should cut the node count to a fraction
// (BENCH_solver.json records the pair).
func BenchmarkRefreshSolve(b *testing.B) {
	in := microInput(b, 96, 32)
	ex := Exact{MaxBlocks: 10}
	opt := Options{Workers: 1, RelGap: 0.02}
	old, err := ex.SolveOpt(in, opt)
	if err != nil {
		b.Fatal(err)
	}
	drifted := &Input{P: in.P, Hotness: driftHotness(in.Hotness, 0.1),
		EntryBytes: in.EntryBytes, Capacity: in.Capacity}
	run := func(b *testing.B, opt Options) {
		var nodes int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl, err := ex.SolveOpt(drifted, opt)
			if err != nil {
				b.Fatal(err)
			}
			nodes += pl.SolveNodes
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes")
	}
	b.Run("cold", func(b *testing.B) { run(b, opt) })
	b.Run("warm", func(b *testing.B) {
		wopt := opt
		wopt.WarmStart = old
		run(b, wopt)
	})
}
