package solver

import (
	"math"
	"testing"

	"ugache/internal/lp"
	"ugache/internal/milp"
	"ugache/internal/platform"
	"ugache/internal/workload"
)

// buildEntryMILP constructs the paper's §6.2 model at *entry* granularity
// with binary storage/access variables — the formulation the paper hands to
// Gurobi — for a micro instance, so branch and bound stays tractable.
func buildEntryMILP(t *testing.T, in *Input, m *costModel) (*lp.Problem, []int, func(sol []float64) float64) {
	t.Helper()
	p := in.P
	g := p.N
	srcs := p.NumSources()
	n := len(in.Hotness)
	av := func(e, i, j int) int { return (e*g+i)*srcs + j }
	sv := func(e, j int) int { return n*g*srcs + e*g + j }
	zVar := n*g*srcs + n*g
	obj := make([]float64, zVar+1)
	obj[zVar] = 1
	prob, err := lp.NewProblem(zVar+1, obj)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1.0
	if tot := workload.Hotness(in.Hotness).Total() * float64(in.EntryBytes); tot > 0 {
		scale = 1 / (tot * m.invEff[0][srcs-1])
	}
	var ints []int
	for e := 0; e < n; e++ {
		for i := 0; i < g; i++ {
			var sum []lp.Coef
			for j := 0; j < srcs; j++ {
				if math.IsInf(m.invEff[i][j], 1) {
					continue
				}
				sum = append(sum, lp.Coef{Var: av(e, i, j), Value: 1})
				ints = append(ints, av(e, i, j))
			}
			if err := prob.AddConstraint(sum, lp.EQ, 1); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < g; j++ {
				if math.IsInf(m.invEff[i][j], 1) {
					continue
				}
				prob.AddConstraint([]lp.Coef{
					{Var: sv(e, j), Value: 1}, {Var: av(e, i, j), Value: -1},
				}, lp.GE, 0)
			}
		}
		for j := 0; j < g; j++ {
			prob.AddConstraint([]lp.Coef{{Var: sv(e, j), Value: 1}}, lp.LE, 1)
			ints = append(ints, sv(e, j))
		}
	}
	for j := 0; j < g; j++ {
		coefs := make([]lp.Coef, 0, n)
		for e := 0; e < n; e++ {
			coefs = append(coefs, lp.Coef{Var: sv(e, j), Value: 1})
		}
		prob.AddConstraint(coefs, lp.LE, float64(in.Capacity[j]))
	}
	for i := 0; i < g; i++ {
		pack := []lp.Coef{{Var: zVar, Value: 1}}
		for j := 0; j < srcs; j++ {
			if math.IsInf(m.invEff[i][j], 1) {
				continue
			}
			link := []lp.Coef{{Var: zVar, Value: 1}}
			for e := 0; e < n; e++ {
				bytes := in.Hotness[e] * float64(in.EntryBytes) * scale
				link = append(link, lp.Coef{Var: av(e, i, j), Value: -bytes * m.invEff[i][j]})
				pack = append(pack, lp.Coef{Var: av(e, i, j), Value: -bytes * m.packCost[i][j]})
			}
			prob.AddConstraint(link, lp.GE, 0)
		}
		prob.AddConstraint(pack, lp.GE, 0)
	}
	objective := func(sol []float64) float64 { return sol[zVar] / scale }
	return prob, ints, objective
}

// TestUGacheMatchesEntryMILP cross-validates the entire solver chain on a
// micro instance: the block-LP UGache solution must land within a few
// percent of the exact entry-granularity MILP optimum (branch and bound).
func TestUGacheMatchesEntryMILP(t *testing.T) {
	// A 2-GPU custom platform keeps the MILP small.
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	p, err := platform.New(platform.Config{
		Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16, N: 2,
		PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	h := make(workload.Hotness, n)
	for e := 0; e < n; e++ {
		h[e] = math.Pow(float64(e+1), -1.2) * 1000
	}
	in := &Input{P: p, Hotness: h, EntryBytes: 512, Capacity: []int64{4, 4}}

	m := newCostModel(in)
	prob, ints, objective := buildEntryMILP(t, in, m)
	sol, err := milp.Solve(prob, ints, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || !sol.Complete {
		t.Fatalf("MILP status %v complete %v (nodes %d)", sol.Status, sol.Complete, sol.Nodes)
	}
	exact := objective(sol.X)

	ug := mustSolve(t, UGache{}, in)
	got := maxF(ug.EstTimes)
	if got < exact*(1-1e-6) {
		t.Fatalf("ugache %g beats the exact optimum %g (model inconsistency)", got, exact)
	}
	if got > exact*1.10 {
		t.Fatalf("ugache %g is %.1f%% above the exact optimum %g",
			got, 100*(got/exact-1), exact)
	}
	t.Logf("exact entry-MILP optimum %.4g, UGache %.4g (gap %.2f%%)",
		exact, got, 100*(got/exact-1))
}
