package solver

import (
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// zipfHotness builds a hotness vector with Zipf mass over a shuffled entry
// order, scaled to keysPerIter expected accesses.
func zipfHotness(n int, alpha, keysPerIter float64, seed uint64) workload.Hotness {
	r := rng.New(seed)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	sum := 0.0
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -alpha)
		sum += h[perm[rank]]
	}
	scale := keysPerIter / sum
	for i := range h {
		h[i] *= scale
	}
	return h
}

func testInput(t *testing.T, p *platform.Platform, n int, alpha float64, ratio float64) *Input {
	t.Helper()
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(float64(n) * ratio)
	}
	return &Input{
		P:          p,
		Hotness:    zipfHotness(n, alpha, 200000, 42),
		EntryBytes: 512,
		Capacity:   caps,
	}
}

func mustSolve(t *testing.T, pol Policy, in *Input) *Placement {
	t.Helper()
	pl, err := pol.Solve(in)
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if err := pl.Validate(in); err != nil {
		t.Fatalf("%s placement invalid: %v", pol.Name(), err)
	}
	return pl
}

func TestBlockBuilding(t *testing.T) {
	in := testInput(t, platform.ServerC(), 100000, 1.1, 0.1)
	c := newCtx(in)
	blocks := c.build()
	if len(blocks) == 0 || len(blocks) > in.blockBudget() {
		t.Fatalf("%d blocks for budget %d", len(blocks), in.blockBudget())
	}
	// Tiling.
	var prev int64
	for _, b := range blocks {
		if b.Start != prev || b.End <= b.Start {
			t.Fatalf("block range [%d, %d) after %d", b.Start, b.End, prev)
		}
		prev = b.End
	}
	if prev != 100000 {
		t.Fatalf("blocks cover %d", prev)
	}
	// Hotness is non-increasing across blocks (mean per entry).
	for i := 1; i < len(blocks); i++ {
		if blocks[i].HotPerEntry > blocks[i-1].HotPerEntry*1.0001 {
			t.Fatalf("block %d hotter than predecessor", i)
		}
	}
	// Size cap: ≤ ~0.5% of entries (allowing budget-driven doubling).
	for _, b := range blocks {
		if b.Entries() > 100000/50 {
			t.Fatalf("block of %d entries exceeds cap", b.Entries())
		}
	}
	// Mandatory cuts respected.
	cut := int64(12345)
	blocks2 := c.build(cut)
	found := false
	for _, b := range blocks2 {
		if b.Start == cut {
			found = true
		}
		if b.Start < cut && b.End > cut {
			t.Fatal("block straddles mandatory cut")
		}
	}
	if !found {
		t.Fatal("cut not present")
	}
}

func TestReplicationPolicy(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 50000, 1.1, 0.12)
	pl := mustSolve(t, Replication{}, in)
	stats := pl.Stats(in.Hotness)
	for g, s := range stats {
		if s.Remote > 1e-9 {
			t.Fatalf("gpu %d: replication must not read remote (%g)", g, s.Remote)
		}
		if s.Local < 0.5 {
			t.Fatalf("gpu %d: local hit %g too low for zipf 1.1 @12%%", g, s.Local)
		}
		if math.Abs(s.Local+s.Host-1) > 1e-9 {
			t.Fatalf("gpu %d: fractions do not sum: %+v", g, s)
		}
	}
	used := pl.CapacityUsed()
	for g, u := range used {
		if u > in.Capacity[g] {
			t.Fatalf("gpu %d over capacity", g)
		}
		if u < in.Capacity[g]*95/100 {
			t.Fatalf("gpu %d underuses capacity: %d of %d", g, u, in.Capacity[g])
		}
	}
}

func TestPartitionPolicy(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 50000, 1.1, 0.08)
	pl := mustSolve(t, Partition{}, in)
	stats := pl.Stats(in.Hotness)
	// Global hit must beat replication's at the same per-GPU capacity.
	rep := mustSolve(t, Replication{}, in)
	repStats := rep.Stats(in.Hotness)
	for g := range stats {
		globalPart := stats[g].Local + stats[g].Remote
		globalRep := repStats[g].Local + repStats[g].Remote
		if globalPart <= globalRep {
			t.Fatalf("gpu %d: partition global hit %g not above replication %g",
				g, globalPart, globalRep)
		}
		// Partition's local hit is roughly global/G.
		if stats[g].Local > globalPart/4 {
			t.Fatalf("gpu %d: partition local hit %g suspiciously high (global %g)",
				g, stats[g].Local, globalPart)
		}
	}
	// Distinct entries cached = sum of capacities (within one block of
	// rounding).
	var distinct int64
	for _, b := range pl.Blocks {
		for _, s := range b.Store {
			if s {
				distinct += b.Entries()
				break
			}
		}
	}
	var total int64
	for _, c := range in.Capacity {
		total += c
	}
	if distinct < total*95/100 {
		t.Fatalf("partition caches %d distinct of %d capacity", distinct, total)
	}
}

func TestPartitionUnconnectedFallsBackToHost(t *testing.T) {
	p := platform.ServerB()
	in := testInput(t, p, 20000, 1.1, 0.05)
	pl := mustSolve(t, Partition{}, in)
	// Some block owned by a GPU in the other quad must be host for reader 0.
	fellBack := false
	for _, b := range pl.Blocks {
		owner := -1
		for g, s := range b.Store {
			if s {
				owner = g
			}
		}
		if owner >= 4 && b.Access[0] == p.Host() {
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatal("expected host fallback for cross-quad reads")
	}
}

func TestCliqueCover(t *testing.T) {
	for _, tc := range []struct {
		p    *platform.Platform
		want int
	}{
		{platform.ServerA(), 1},
		{platform.ServerB(), 2},
		{platform.ServerC(), 1},
	} {
		cl := CliqueCover(tc.p)
		if len(cl) != tc.want {
			t.Fatalf("%s: %d cliques, want %d", tc.p.Name, len(cl), tc.want)
		}
	}
	cl := CliqueCover(platform.ServerB())
	if len(cl[0]) != 4 || len(cl[1]) != 4 {
		t.Fatalf("DGX-1 cliques %v", cl)
	}
}

func TestCliquePartitionNoCrossCliqueAccess(t *testing.T) {
	p := platform.ServerB()
	in := testInput(t, p, 20000, 1.1, 0.05)
	pl := mustSolve(t, CliquePartition{}, in)
	cliqueOf := map[int]int{}
	for ci, cl := range CliqueCover(p) {
		for _, g := range cl {
			cliqueOf[g] = ci
		}
	}
	for _, b := range pl.Blocks {
		for i := 0; i < p.N; i++ {
			src := b.Access[i]
			if src == p.Host() {
				continue
			}
			if cliqueOf[int(src)] != cliqueOf[i] {
				t.Fatalf("gpu %d reads across cliques from %d", i, src)
			}
		}
	}
	// Each clique caches its own copy of the hottest block.
	hot := pl.Blocks[0]
	seen := map[int]bool{}
	for g, s := range hot.Store {
		if s {
			seen[cliqueOf[g]] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("hottest block stored in %d cliques, want 2", len(seen))
	}
}

func TestRepPartBetweenRepAndPart(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 50000, 1.2, 0.08)
	rep := mustSolve(t, Replication{}, in)
	part := mustSolve(t, Partition{}, in)
	rp := mustSolve(t, RepPart{}, in)
	best := math.Min(maxF(rep.EstTimes), maxF(part.EstTimes))
	if maxF(rp.EstTimes) > best*1.0001 {
		t.Fatalf("rep-part %g worse than best of rep/part %g", maxF(rp.EstTimes), best)
	}
}

func TestUGacheBeatsBaselines(t *testing.T) {
	p := platform.ServerC()
	for _, ratio := range []float64{0.04, 0.08, 0.15} {
		in := testInput(t, p, 50000, 1.1, ratio)
		rep := mustSolve(t, Replication{}, in)
		part := mustSolve(t, Partition{}, in)
		ug := mustSolve(t, UGache{}, in)
		best := math.Min(maxF(rep.EstTimes), maxF(part.EstTimes))
		if got := maxF(ug.EstTimes); got > best*1.02 {
			t.Fatalf("ratio %g: ugache %g worse than best baseline %g", ratio, got, best)
		}
	}
}

func TestUGacheBalancesLocalAndGlobal(t *testing.T) {
	// Fig. 14's trend: at low cache ratio UGache behaves like partition; at
	// a high ratio its local hit rate rises far above partition's while the
	// global hit rate stays close.
	p := platform.ServerC()
	lowIn := testInput(t, p, 50000, 1.2, 0.02)
	highIn := testInput(t, p, 50000, 1.2, 0.10)

	ugLow := mustSolve(t, UGache{}, lowIn).Stats(lowIn.Hotness)
	ugHigh := mustSolve(t, UGache{}, highIn).Stats(highIn.Hotness)
	partHigh := mustSolve(t, Partition{}, highIn).Stats(highIn.Hotness)

	if ugHigh[0].Local <= partHigh[0].Local+0.1 {
		t.Fatalf("high ratio: ugache local %g should exceed partition local %g",
			ugHigh[0].Local, partHigh[0].Local)
	}
	ugGlobal := ugHigh[0].Local + ugHigh[0].Remote
	partGlobal := partHigh[0].Local + partHigh[0].Remote
	if ugGlobal < partGlobal-0.08 {
		t.Fatalf("high ratio: ugache global %g sacrificed too much vs partition %g",
			ugGlobal, partGlobal)
	}
	// The local hit rate rises with capacity (Fig. 14's left-to-right
	// trend); at low ratio it stays well below the high-ratio value.
	if ugLow[0].Local > ugHigh[0].Local-0.05 {
		t.Fatalf("local hit should rise with capacity: low %g, high %g",
			ugLow[0].Local, ugHigh[0].Local)
	}
}

func TestUGacheDeterminism(t *testing.T) {
	p := platform.ServerC()
	in1 := testInput(t, p, 20000, 1.1, 0.06)
	in2 := testInput(t, p, 20000, 1.1, 0.06)
	pl1 := mustSolve(t, UGache{}, in1)
	pl2 := mustSolve(t, UGache{}, in2)
	if len(pl1.Blocks) != len(pl2.Blocks) {
		t.Fatal("block counts differ")
	}
	for bi := range pl1.Blocks {
		for g := range pl1.Blocks[bi].Store {
			if pl1.Blocks[bi].Store[g] != pl2.Blocks[bi].Store[g] {
				t.Fatalf("nondeterministic store at block %d gpu %d", bi, g)
			}
			if pl1.Blocks[bi].Access[g] != pl2.Blocks[bi].Access[g] {
				t.Fatalf("nondeterministic access at block %d gpu %d", bi, g)
			}
		}
	}
}

func TestUGacheOnDGX1UsesOnlyReachableSources(t *testing.T) {
	p := platform.ServerB()
	in := testInput(t, p, 30000, 1.1, 0.06)
	pl := mustSolve(t, UGache{}, in) // Validate() inside checks connectivity
	// And it should beat clique-partition, the best launchable baseline.
	cp := mustSolve(t, CliquePartition{}, in)
	if maxF(pl.EstTimes) > maxF(cp.EstTimes)*1.02 {
		t.Fatalf("ugache %g worse than clique-partition %g",
			maxF(pl.EstTimes), maxF(cp.EstTimes))
	}
}

func TestOptimalLPSymmetric(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 30000, 1.2, 0.06)
	in.BlockBudget = 128
	opt := mustSolve(t, OptimalLP{}, in)
	if opt.LowerBound <= 0 {
		t.Fatal("no lower bound")
	}
	// The realized placement's modelled time should be near the LP bound.
	if got := maxF(opt.EstTimes); got > opt.LowerBound*1.15 {
		t.Fatalf("realized %g far above LP bound %g", got, opt.LowerBound)
	}
	// UGache within a modest factor of optimal (paper reports ~2% average;
	// we allow 15% on this synthetic instance).
	in2 := testInput(t, p, 30000, 1.2, 0.06)
	ug := mustSolve(t, UGache{}, in2)
	if got := maxF(ug.EstTimes); got > opt.LowerBound*1.15 {
		t.Fatalf("ugache %g vs optimal bound %g (gap %.1f%%)",
			got, opt.LowerBound, 100*(got/opt.LowerBound-1))
	}
}

func TestOptimalLPGeneralDGX1(t *testing.T) {
	p := platform.ServerB()
	in := testInput(t, p, 5000, 1.2, 0.06)
	opt, err := (OptimalLP{MaxGeneralBlocks: 10}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(in); err != nil {
		t.Fatal(err)
	}
	if opt.LowerBound <= 0 {
		t.Fatal("no lower bound")
	}
	// The bound is a valid lower bound for UGache's achieved model time at
	// the same (coarse) granularity or finer.
	ug := mustSolve(t, UGache{}, in)
	if maxF(ug.EstTimes) < opt.LowerBound*0.7 {
		t.Fatalf("ugache %g implausibly below optimal bound %g",
			maxF(ug.EstTimes), opt.LowerBound)
	}
}

func TestPlacementQueries(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 10000, 1.1, 0.1)
	pl := mustSolve(t, UGache{}, in)
	// SourceOf is consistent with blocks.
	for e := int64(0); e < 10000; e += 997 {
		src := pl.SourceOf(3, e)
		b := pl.Blocks[pl.BlockOf(e)]
		if b.Access[3] != src {
			t.Fatalf("SourceOf mismatch at %d", e)
		}
		if src != p.Host() && int(src) == 3 && !pl.StoredOn(3, e) {
			t.Fatal("local access without storage")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 10000, 1.1, 0.1)
	pl := mustSolve(t, Replication{}, in)
	// Point an access at a non-storing GPU.
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		if !b.Store[2] {
			b.Access[0] = 2
			if err := pl.Validate(in); err == nil {
				t.Fatal("corrupted access accepted")
			}
			return
		}
	}
	t.Skip("no uncached block to corrupt")
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"replication", "partition", "clique-partition", "rep-part", "ugache", "optimal"} {
		if _, err := PolicyByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestInputValidation(t *testing.T) {
	p := platform.ServerC()
	good := testInput(t, p, 1000, 1.1, 0.1)
	cases := []func(*Input){
		func(in *Input) { in.P = nil },
		func(in *Input) { in.Hotness = nil },
		func(in *Input) { in.EntryBytes = 0 },
		func(in *Input) { in.Capacity = in.Capacity[:2] },
		func(in *Input) { in.Capacity[0] = -1 },
		func(in *Input) { in.Hotness[5] = math.NaN() },
	}
	for i, corrupt := range cases {
		in := *good
		in.Hotness = append(workload.Hotness(nil), good.Hotness...)
		in.Capacity = append([]int64(nil), good.Capacity...)
		corrupt(&in)
		if _, err := (Replication{}).Solve(&in); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEstimateModelSanity(t *testing.T) {
	// More capacity can only help (weakly) under every policy.
	p := platform.ServerC()
	for _, pol := range []Policy{Replication{}, Partition{}, UGache{}} {
		prev := math.Inf(1)
		for _, ratio := range []float64{0.02, 0.06, 0.12, 0.2} {
			in := testInput(t, p, 30000, 1.1, ratio)
			pl := mustSolve(t, pol, in)
			got := maxF(pl.EstTimes)
			if got > prev*1.05 {
				t.Fatalf("%s: time grew with capacity: %g -> %g at %g",
					pol.Name(), prev, got, ratio)
			}
			prev = got
		}
	}
}

func BenchmarkUGacheSolve(b *testing.B) {
	p := platform.ServerC()
	in := &Input{
		P:          p,
		Hotness:    zipfHotness(200000, 1.1, 500000, 1),
		EntryBytes: 512,
		Capacity:   make([]int64, p.N),
	}
	for g := range in.Capacity {
		in.Capacity[g] = 16000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (UGache{}).Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedySolve(b *testing.B) {
	p := platform.ServerB() // asymmetric: the greedy path
	in := &Input{
		P:          p,
		Hotness:    zipfHotness(200000, 1.1, 500000, 1),
		EntryBytes: 512,
		Capacity:   make([]int64, p.N),
	}
	for g := range in.Capacity {
		in.Capacity[g] = 16000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (UGacheGreedy{}).Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGreedyRefinementHelps(t *testing.T) {
	// On the asymmetric DGX-1 the swap refinement must never hurt and
	// usually improves the greedy construction.
	p := platform.ServerB()
	for _, ratio := range []float64{0.04, 0.08, 0.15} {
		in := testInput(t, p, 30000, 1.1, ratio)
		raw := mustSolve(t, UGacheGreedy{RefineRounds: -1}, in)
		ref := mustSolve(t, UGacheGreedy{RefineRounds: 6}, in)
		if maxF(ref.EstTimes) > maxF(raw.EstTimes)*1.001 {
			t.Fatalf("ratio %g: refinement hurt: %g -> %g",
				ratio, maxF(raw.EstTimes), maxF(ref.EstTimes))
		}
	}
}

func TestStorageSummary(t *testing.T) {
	// Hand-built 2-GPU placement: block 0 replicated, block 1 partitioned,
	// block 2 uncached. With 2 GPUs a "partial" class cannot exist.
	pl := &Placement{
		NumGPUs: 2,
		Blocks: []Block{
			{Start: 0, End: 10, HotPerEntry: 2, Store: []bool{true, true}},
			{Start: 10, End: 30, HotPerEntry: 1, Store: []bool{true, false}},
			{Start: 30, End: 100, HotPerEntry: 0.1, Store: []bool{false, false}},
		},
	}
	sum := pl.StorageSummary()
	if sum.ReplicatedBlocks != 1 || sum.PartitionedBlocks != 1 || sum.UncachedBlocks != 1 || sum.PartialBlocks != 0 {
		t.Fatalf("block classes: %+v", sum)
	}
	if sum.ReplicatedEntries != 10 || sum.PartitionedEntries != 20 || sum.UncachedEntries != 70 {
		t.Fatalf("entry classes: %+v", sum)
	}
	if math.Abs(sum.ReplicatedMass-20) > 1e-9 || math.Abs(sum.PartitionedMass-20) > 1e-9 || math.Abs(sum.UncachedMass-7) > 1e-9 {
		t.Fatalf("mass classes: %+v", sum)
	}

	// A solved UGache placement must be fully classified: every block in
	// exactly one class, masses summing to the total hotness mass.
	in := testInput(t, platform.ServerA(), 50000, 1.1, 0.08)
	upl := mustSolve(t, UGache{}, in)
	us := upl.StorageSummary()
	if got := us.ReplicatedBlocks + us.PartialBlocks + us.PartitionedBlocks + us.UncachedBlocks; got != len(upl.Blocks) {
		t.Fatalf("classified %d of %d blocks", got, len(upl.Blocks))
	}
	if got := us.ReplicatedEntries + us.PartialEntries + us.PartitionedEntries + us.UncachedEntries; got != upl.NumEntries() {
		t.Fatalf("classified %d of %d entries", got, upl.NumEntries())
	}
	totalMass := 0.0
	for bi := range upl.Blocks {
		totalMass += upl.Blocks[bi].Mass()
	}
	gotMass := us.ReplicatedMass + us.PartialMass + us.PartitionedMass + us.UncachedMass
	if math.Abs(gotMass-totalMass) > 1e-6*totalMass {
		t.Fatalf("classified mass %g of %g", gotMass, totalMass)
	}
}
