package solver

import (
	"fmt"
	"math"

	"ugache/internal/platform"
)

// Replication is the policy of single-GPU cache systems deployed per GPU
// (HPS, GNNLab; §3.1): every GPU independently caches the hottest entries,
// so all caches hold the same content and remote GPUs are never read.
type Replication struct{}

// Name implements Policy.
func (Replication) Name() string { return "replication" }

// Solve implements Policy.
func (Replication) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	c := newCtx(in)
	cuts := make([]int64, 0, in.P.N)
	for _, cap := range in.Capacity {
		cuts = append(cuts, minI64(cap, c.numEntries()))
	}
	blocks := c.build(cuts...)
	for bi := range blocks {
		b := &blocks[bi]
		for g := 0; g < in.P.N; g++ {
			if b.End <= in.Capacity[g] {
				b.Store[g] = true
				b.Access[g] = platform.SourceID(g)
			}
		}
	}
	return newPlacement(c, "replication", blocks), nil
}

// Partition is the policy of multi-GPU cache systems (WholeGraph, SOK,
// distributed-embeddings; §3.1): the hottest Σ capacities entries are
// cached exactly once, spread across GPUs, maximizing distinct entries.
// Readers reach unconnected owners fall back to host (plain WholeGraph
// cannot even launch there; this fallback is the PartU extension the paper
// built).
type Partition struct{}

// Name implements Policy.
func (Partition) Name() string { return "partition" }

// Solve implements Policy.
func (Partition) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	c := newCtx(in)
	var total int64
	for _, cap := range in.Capacity {
		total += cap
	}
	total = minI64(total, c.numEntries())
	blocks := c.build(total)
	assignPartition(in, blocks, allGPUs(in.P.N), append([]int64(nil), in.Capacity...), total)
	return newPlacement(c, "partition", blocks), nil
}

// CliquePartition is Quiver's clique approach (§3.1, §8.1 "PartU"): GPUs
// are grouped into fully connected cliques; each clique maintains its own
// partition cache and never reads across cliques. On fully connected
// platforms it degenerates to Partition.
type CliquePartition struct{}

// Name implements Policy.
func (CliquePartition) Name() string { return "clique-partition" }

// Solve implements Policy.
func (CliquePartition) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	c := newCtx(in)
	cliques := CliqueCover(in.P)
	cuts := make([]int64, 0, len(cliques))
	for _, cl := range cliques {
		var total int64
		for _, g := range cl {
			total += in.Capacity[g]
		}
		cuts = append(cuts, minI64(total, c.numEntries()))
	}
	blocks := c.build(cuts...)
	for ci, cl := range cliques {
		assignPartition(in, blocks, cl, append([]int64(nil), in.Capacity...), cuts[ci])
	}
	return newPlacement(c, "clique-partition", blocks), nil
}

// RepPart is the hot-replicate / warm-partition heuristic of Song & Jiang
// [39] (§6.3, §9): the hottest x entries are replicated on every GPU, the
// next span is partitioned, and x is chosen by scanning candidates against
// the §6.2 model. The paper notes it assumes a uniform fully connected
// platform; on other platforms it still runs but partitions within cliques.
type RepPart struct {
	// Candidates is the number of split points scanned (0 = 17).
	Candidates int
}

// Name implements Policy.
func (RepPart) Name() string { return "rep-part" }

// Solve implements Policy.
func (rp RepPart) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	cands := rp.Candidates
	if cands <= 0 {
		cands = 17
	}
	minCap := in.Capacity[0]
	for _, cap := range in.Capacity {
		minCap = minI64(minCap, cap)
	}
	c := newCtx(in)
	cliques := CliqueCover(in.P)
	var best *Placement
	bestT := math.Inf(1)
	for k := 0; k < cands; k++ {
		x := minI64(int64(float64(minCap)*float64(k)/float64(cands-1)), c.numEntries())
		blocks := c.build(repPartCuts(in, cliques, x, c.numEntries())...)
		// Replicated prefix.
		for bi := range blocks {
			b := &blocks[bi]
			if b.End > x {
				continue
			}
			for g := 0; g < in.P.N; g++ {
				b.Store[g] = true
				b.Access[g] = platform.SourceID(g)
			}
		}
		// Partitioned span, per clique, with the remaining capacity.
		for _, cl := range cliques {
			capLeft := make([]int64, in.P.N)
			var total int64
			for _, g := range cl {
				capLeft[g] = in.Capacity[g] - x
				total += capLeft[g]
			}
			end := minI64(x+total, c.numEntries())
			assignPartitionRange(in, blocks, cl, capLeft, x, end)
		}
		pl := newPlacement(c, "rep-part", blocks)
		if t := maxF(pl.EstTimes); t < bestT {
			bestT = t
			best = pl
		}
	}
	return best, nil
}

func repPartCuts(in *Input, cliques [][]int, x, e int64) []int64 {
	cuts := []int64{minI64(x, e)}
	for _, cl := range cliques {
		var total int64
		for _, g := range cl {
			total += in.Capacity[g] - x
		}
		cuts = append(cuts, minI64(x+total, e))
	}
	return cuts
}

// assignPartition spreads blocks [0, upTo) across members, each block to
// the member with the most remaining capacity (deterministic tie-break on
// index), and wires every member's access to the owner. Blocks that fit no
// member stay on host.
func assignPartition(in *Input, blocks []Block, members []int, capLeft []int64, upTo int64) {
	assignPartitionRange(in, blocks, members, capLeft, 0, upTo)
}

func assignPartitionRange(in *Input, blocks []Block, members []int, capLeft []int64, from, upTo int64) {
	host := in.fallback()
	for bi := range blocks {
		b := &blocks[bi]
		if b.Start < from || b.End > upTo {
			continue
		}
		owner := -1
		for _, g := range members {
			if capLeft[g] >= b.Entries() && (owner < 0 || capLeft[g] > capLeft[owner]) {
				owner = g
			}
		}
		if owner < 0 {
			continue
		}
		capLeft[owner] -= b.Entries()
		b.Store[owner] = true
		for _, i := range members {
			if b.Access[i] != host {
				continue // already served (e.g. replicated prefix)
			}
			if i == owner || in.P.Connected(i, owner) {
				b.Access[i] = platform.SourceID(owner)
			}
		}
	}
}

// CliqueCover greedily groups GPUs into fully connected cliques (Quiver's
// approach for platforms with unconnected pairs). Fully connected platforms
// yield a single clique.
func CliqueCover(p *platform.Platform) [][]int {
	assigned := make([]bool, p.N)
	var cliques [][]int
	for g := 0; g < p.N; g++ {
		if assigned[g] {
			continue
		}
		clique := []int{g}
		assigned[g] = true
		for h := g + 1; h < p.N; h++ {
			if assigned[h] {
				continue
			}
			ok := true
			for _, m := range clique {
				if !p.Connected(h, m) || !p.Connected(m, h) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, h)
				assigned[h] = true
			}
		}
		cliques = append(cliques, clique)
	}
	return cliques
}

func allGPUs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxF(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// PolicyByName returns a stock policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "replication", "rep":
		return Replication{}, nil
	case "partition", "part":
		return Partition{}, nil
	case "clique-partition", "clique":
		return CliquePartition{}, nil
	case "rep-part", "reppart":
		return RepPart{}, nil
	case "ugache":
		return UGache{}, nil
	case "ugache-greedy":
		return UGacheGreedy{}, nil
	case "optimal", "optimal-lp":
		return OptimalLP{}, nil
	case "exact":
		// Branch-and-bound MILP; only tractable on reduced instances.
		return Exact{}, nil
	default:
		return nil, fmt.Errorf("solver: unknown policy %q", name)
	}
}
