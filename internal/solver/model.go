package solver

import (
	"math"

	"ugache/internal/platform"
)

// costModel caches the per-(destination, source) constants of the §6.2
// extraction-time model for one platform:
//
//	t_i^j     = B_{i←j} / effBW(i, j)              (link-bound time)
//	packing_i = Σ_j B_{i←j} / (rcore(i,j) · SMs)   (core-seconds, ≙ the
//	            paper's Σ_j t_i^j·R_{i←j}: with R_j = tolerance_j/SMs the
//	            two forms are algebraically identical)
//	t_i       = max(max_j t_i^j, packing_i)
//
// where B_{i←j} is the bytes GPU i pulls from source j per iteration under
// the placement's access arrangement and the hotness statistics.
type costModel struct {
	p *platform.Platform
	// invEff[i][j]: 1/effective bandwidth (seconds per byte), +Inf when
	// unreachable.
	invEff [][]float64
	// packCost[i][j]: core-seconds per byte divided by total cores.
	packCost [][]float64
}

func newCostModel(in *Input) *costModel {
	p := in.P
	m := &costModel{p: p}
	srcs := p.NumSources()
	m.invEff = make([][]float64, p.N)
	m.packCost = make([][]float64, p.N)
	for i := 0; i < p.N; i++ {
		m.invEff[i] = make([]float64, srcs)
		m.packCost[i] = make([]float64, srcs)
		for j := 0; j < srcs; j++ {
			src := platform.SourceID(j)
			bw, ok := p.EffectiveBW(i, src)
			if !ok {
				m.invEff[i][j] = math.Inf(1)
				m.packCost[i][j] = math.Inf(1)
				continue
			}
			m.invEff[i][j] = 1 / bw
			m.packCost[i][j] = 1 / (p.RCore(i, src) * float64(p.GPU.SMs))
		}
	}
	if p.HasNetwork() {
		// Cluster mode. Host DRAM holds only this machine's 1/M shard of the
		// uncached range, so "read from host" is not a choice the solver can
		// make on its own — a network-class byte is served by the local shard
		// with probability 1/M and crosses the wire otherwise. Either way it
		// lands in local DRAM and crosses local PCIe into the GPU, so the
		// host path's per-byte cost applies to the FULL network-class volume;
		// the wire fraction additionally rides the NIC's per-GPU share. The
		// link-bound blend is the max of those two constraints, and packing
		// is the full host packing cost (every byte is issued once by a core
		// at the host rate, whichever leg served it). The host column is then
		// pruned (infinite), collapsing the remote-machine trade-off into one
		// extra source class with zero volume-split plumbing downstream.
		net, host := int(p.Network()), int(p.Host())
		wire := 1 - 1/float64(p.Machines())
		invNICShare := float64(p.N) / p.Net.LinkBW
		for i := 0; i < p.N; i++ {
			m.invEff[i][net] = math.Max(m.invEff[i][host], wire*invNICShare)
			m.packCost[i][net] = m.packCost[i][host]
			m.invEff[i][host] = math.Inf(1)
			m.packCost[i][host] = math.Inf(1)
		}
	}
	return m
}

// perByteCost returns a scalar per-byte cost of GPU i reading from source
// j, used by greedy source selection: the packing cost plus the link-bound
// inverse bandwidth (so slower links are avoided even when core budget is
// not the binding term). Infinite for unreachable sources.
func (m *costModel) perByteCost(i int, j platform.SourceID) float64 {
	return m.packCost[i][j] + m.invEff[i][j]
}

// volumes accumulates B_{i←j} in bytes for a placement. When byRank is
// non-nil, block masses are recomputed from the input's hotness through the
// rank mapping (so the model can be re-evaluated under NEW hotness with an
// OLD placement — the §7.2 refresh trigger); otherwise the solve-time
// per-block masses are used.
func volumes(in *Input, blocks []Block, byRank []int32) [][]float64 {
	srcs := in.P.NumSources()
	b := make([][]float64, in.P.N)
	for i := range b {
		b[i] = make([]float64, srcs)
	}
	for bi := range blocks {
		blk := &blocks[bi]
		mass := blk.Mass()
		if byRank != nil {
			mass = 0
			for r := blk.Start; r < blk.End; r++ {
				mass += in.Hotness[byRank[r]]
			}
		}
		bytes := mass * float64(in.EntryBytes)
		for i := 0; i < in.P.N; i++ {
			b[i][blk.Access[i]] += bytes
		}
	}
	return b
}

// times evaluates the model for the given volume matrix.
func (m *costModel) times(vol [][]float64) []float64 {
	out := make([]float64, m.p.N)
	for i := 0; i < m.p.N; i++ {
		packing := 0.0
		linkBound := 0.0
		for j, bytes := range vol[i] {
			if bytes == 0 {
				continue
			}
			packing += bytes * m.packCost[i][j]
			if t := bytes * m.invEff[i][j]; t > linkBound {
				linkBound = t
			}
		}
		out[i] = math.Max(packing, linkBound)
	}
	return out
}

// EstimateTimes evaluates the §6.2 model for a finished placement: the
// per-GPU estimated extraction seconds per iteration.
func EstimateTimes(in *Input, pl *Placement) []float64 {
	return newCostModel(in).times(volumes(in, pl.Blocks, pl.ByRank))
}

// EstimateMakespan returns max_i EstimateTimes.
func EstimateMakespan(in *Input, pl *Placement) float64 {
	t := EstimateTimes(in, pl)
	max := 0.0
	for _, v := range t {
		if v > max {
			max = v
		}
	}
	return max
}
