package solver

import (
	"fmt"
	"math"

	"ugache/internal/lp"
	"ugache/internal/platform"
)

// OptimalLP computes the theoretically optimal cache policy of §6.2 by
// solving the block-granularity linear program exactly (the paper solves
// the same model with Gurobi; Fig. 16 compares UGache's approximation
// against it). Because hotness blocks are divisible sets of interchangeable
// entries, the LP relaxation of the MILP is itself realizable, so no
// integrality gap is lost at block granularity.
//
// Two formulations are used:
//
//   - on symmetric platforms (uniform fully connected or switch-based, with
//     equal capacities) the model collapses to per-block replication counts,
//     which scales to the full default block budget and is realized exactly;
//   - on asymmetric platforms (DGX-1) the full a/s-variable model is built;
//     it only fits the dense simplex for small block budgets, mirroring how
//     the paper, too, had to shrink Server B instances ("SYN-As/Bs") to
//     obtain an optimal reference. The realized placement rounds storage
//     fractions; LowerBound carries the exact LP objective.
type OptimalLP struct {
	// MaxGeneralBlocks caps the asymmetric formulation (0 = 12).
	MaxGeneralBlocks int
}

// Name implements Policy.
func (OptimalLP) Name() string { return "optimal-lp" }

// Solve implements Policy.
func (o OptimalLP) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if symmetric(in) {
		budget := in.BlockBudget
		if budget == 0 {
			budget = 768 // finer than UGache's default: the reference policy
		}
		pl, err := solveSymmetricLP(in, budget)
		if err != nil {
			return nil, err
		}
		pl.Policy = "optimal-lp"
		return pl, nil
	}
	return o.solveGeneral(in)
}

// symmetric reports whether every GPU sees an identical platform and
// capacity.
func symmetric(in *Input) bool {
	for _, cap := range in.Capacity {
		if cap != in.Capacity[0] {
			return false
		}
	}
	p := in.P
	if p.N == 1 {
		return true
	}
	var bw float64
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i == j {
				continue
			}
			if !p.Connected(i, j) {
				return false
			}
			if bw == 0 {
				bw = p.PairBW[i][j]
			}
			if p.PairBW[i][j] != bw {
				return false
			}
		}
	}
	return true
}

// solveSymmetricLP builds the replication-count LP:
//
//	min z
//	s.t. Σ_c x[b][c] = 1                          ∀b
//	     Σ_b n_b Σ_c x[b][c]·c/G        ≤ cap     (per-GPU, symmetric)
//	     z ≥ localBytes/localBW
//	     z ≥ remoteBytes/((G−1)·pairBW)
//	     z ≥ hostBytes/hostBW
//	     z ≥ Σ src bytes·packCost                 (packing bound)
//
// where localBytes/remoteBytes/hostBytes are linear in x.
func solveSymmetricLP(in *Input, budget int) (*Placement, error) {
	inB := *in
	inB.BlockBudget = budget
	in = &inB
	c := newCtx(in)
	blocks := c.build()
	g := in.P.N
	m := newCostModel(in)
	host := int(in.fallback())

	nb := len(blocks)
	nx := nb * (g + 1)
	zVar := nx
	obj := make([]float64, nx+1)
	obj[zVar] = 1
	prob, err := lp.NewProblem(nx+1, obj)
	if err != nil {
		return nil, err
	}
	xv := func(b, cnt int) int { return b*(g+1) + cnt }

	// Per-block distribution sums to 1.
	for b := 0; b < nb; b++ {
		coefs := make([]lp.Coef, 0, g+1)
		for cnt := 0; cnt <= g; cnt++ {
			coefs = append(coefs, lp.Coef{Var: xv(b, cnt), Value: 1})
		}
		if err := prob.AddConstraint(coefs, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	// Capacity (symmetric per-GPU share c/G of each block's entries).
	capCoefs := make([]lp.Coef, 0, nb*g)
	for b := 0; b < nb; b++ {
		n := float64(blocks[b].Entries())
		for cnt := 1; cnt <= g; cnt++ {
			capCoefs = append(capCoefs, lp.Coef{Var: xv(b, cnt), Value: n * float64(cnt) / float64(g)})
		}
	}
	if err := prob.AddConstraint(capCoefs, lp.LE, float64(in.Capacity[0])); err != nil {
		return nil, err
	}
	// Time bounds. Per-byte factors for reader 0 (all readers identical).
	// The model is rescaled so the all-host objective is O(1): raw
	// coefficients (seconds per byte times hotness) can sit below the
	// simplex pivot tolerance otherwise.
	remoteSrc := 0
	if g > 1 {
		remoteSrc = 1
	}
	totalBytes := c.mass(0, c.numEntries()) * float64(in.EntryBytes)
	scale := 1.0
	if totalBytes > 0 && m.invEff[0][host] > 0 {
		scale = 1 / (totalBytes * m.invEff[0][host])
	}
	invLoc := m.invEff[0][0] * scale
	invHost := m.invEff[0][host] * scale
	packLoc := m.packCost[0][0] * scale
	packHost := m.packCost[0][host] * scale
	var invRem, packRem float64
	if g > 1 {
		invRem = m.invEff[0][remoteSrc] / float64(g-1) * scale // spread over G−1 links
		packRem = m.packCost[0][remoteSrc] * scale
	}
	addTimeBound := func(weight func(b, cnt int) float64) error {
		coefs := []lp.Coef{{Var: zVar, Value: 1}}
		for b := 0; b < nb; b++ {
			bytes := blocks[b].Mass() * float64(in.EntryBytes)
			for cnt := 0; cnt <= g; cnt++ {
				if w := weight(b, cnt); w != 0 {
					coefs = append(coefs, lp.Coef{Var: xv(b, cnt), Value: -bytes * w})
				}
			}
		}
		return prob.AddConstraint(coefs, lp.GE, 0)
	}
	localFrac := func(cnt int) float64 { return float64(cnt) / float64(g) }
	remoteFrac := func(cnt int) float64 {
		if cnt == 0 {
			return 0
		}
		return 1 - float64(cnt)/float64(g)
	}
	hostFrac := func(cnt int) float64 {
		if cnt == 0 {
			return 1
		}
		return 0
	}
	if err := addTimeBound(func(b, cnt int) float64 { return localFrac(cnt) * invLoc }); err != nil {
		return nil, err
	}
	if g > 1 {
		if err := addTimeBound(func(b, cnt int) float64 { return remoteFrac(cnt) * invRem }); err != nil {
			return nil, err
		}
	}
	if err := addTimeBound(func(b, cnt int) float64 { return hostFrac(cnt) * invHost }); err != nil {
		return nil, err
	}
	if err := addTimeBound(func(b, cnt int) float64 {
		return localFrac(cnt)*packLoc + remoteFrac(cnt)*packRem + hostFrac(cnt)*packHost
	}); err != nil {
		return nil, err
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("solver: optimal LP %v", sol.Status)
	}

	// Realize: split each block by its count distribution, round-robin the
	// replica members, then rebalance access.
	realized := realizeSymmetric(in, c, blocks, sol, xv)
	pl := newPlacement(c, "optimal-lp", realized)
	pl.LowerBound = sol.Objective / scale
	return pl, nil
}

// realizeSymmetric turns the fractional count distribution into concrete
// blocks: largest-remainder rounding of each block's count distribution (no
// entries leak to buckets the LP did not choose), replica members picked by
// most free capacity, and remote access spread across replicas by least
// accumulated traffic.
func realizeSymmetric(in *Input, c *ctx, blocks []Block, sol *lp.Solution, xv func(b, cnt int) int) []Block {
	g := in.P.N
	host := in.fallback()
	var out []Block
	capLeft := append([]int64(nil), in.Capacity...)
	vol := make([]float64, g) // per-source accumulated remote traffic
	for b := range blocks {
		blk := &blocks[b]
		sizes := roundDistribution(blk.Entries(), g, func(cnt int) float64 {
			return sol.X[xv(b, cnt)]
		})
		start := blk.Start
		for cnt := 0; cnt <= g; cnt++ {
			n := sizes[cnt]
			if n == 0 {
				continue
			}
			nb := Block{
				Start: start, End: start + n,
				HotPerEntry: blockMean(c, start, start+n),
				Store:       make([]bool, g),
				Access:      newFallbackAccess(in),
			}
			for k := 0; k < cnt; k++ {
				m := -1
				for j := 0; j < g; j++ {
					if nb.Store[j] || capLeft[j] < n {
						continue
					}
					if m < 0 || capLeft[j] > capLeft[m] {
						m = j
					}
				}
				if m < 0 {
					break
				}
				nb.Store[m] = true
				capLeft[m] -= n
			}
			for i := 0; i < g; i++ {
				if nb.Store[i] {
					nb.Access[i] = platform.SourceID(i)
					continue
				}
				best, bestVol := host, math.Inf(1)
				for j := 0; j < g; j++ {
					if nb.Store[j] && vol[j] < bestVol {
						best, bestVol = platform.SourceID(j), vol[j]
					}
				}
				nb.Access[i] = best
				if int(best) < g {
					vol[best] += nb.Mass()
				}
			}
			out = append(out, nb)
			start += n
		}
	}
	return out
}

// roundDistribution apportions n entries across buckets 0..g proportionally
// to frac(cnt) using the largest-remainder method; the result sums to n
// exactly. A degenerate all-zero distribution lands in bucket 0 (host).
func roundDistribution(n int64, g int, frac func(cnt int) float64) []int64 {
	sizes := make([]int64, g+1)
	total := 0.0
	for cnt := 0; cnt <= g; cnt++ {
		if f := frac(cnt); f > 0 {
			total += f
		}
	}
	if total <= 0 {
		sizes[0] = n
		return sizes
	}
	rem := make([]float64, g+1)
	var assigned int64
	for cnt := 0; cnt <= g; cnt++ {
		f := frac(cnt)
		if f < 0 {
			f = 0
		}
		exact := float64(n) * f / total
		fl := int64(exact)
		sizes[cnt] = fl
		assigned += fl
		rem[cnt] = exact - float64(fl)
	}
	for assigned < n {
		best := 0
		for cnt := 1; cnt <= g; cnt++ {
			if rem[cnt] > rem[best] {
				best = cnt
			}
		}
		sizes[best]++
		rem[best] = -1
		assigned++
	}
	return sizes
}

func blockMean(c *ctx, start, end int64) float64 {
	if end <= start {
		return 0
	}
	return c.mass(start, end) / float64(end-start)
}

// solveGeneral solves the full §6.2 block model with per-reader access
// variables for asymmetric platforms (the shared blockModel, see exact.go),
// as a fractional LP with rounded realization.
func (o OptimalLP) solveGeneral(in *Input) (*Placement, error) {
	maxBlocks := o.MaxGeneralBlocks
	if maxBlocks <= 0 {
		maxBlocks = 22 // as many as the dense simplex's row limit allows
	}
	c := newCtx(in)
	blocks := c.buildQuantile(maxBlocks)
	bm, err := buildBlockModel(in, c, blocks)
	if err != nil {
		return nil, err
	}
	g := in.P.N

	sol, err := bm.prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("solver: general optimal LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("solver: general optimal LP %v", sol.Status)
	}

	// Round: store where s ≥ 0.5, then greedy-repair capacity and reassign
	// access by cheapest reachable source.
	capLeft := append([]int64(nil), in.Capacity...)
	for b := 0; b < bm.nb; b++ {
		blk := &blocks[b]
		for j := 0; j < g; j++ {
			if sol.X[bm.sv(b, j)] >= 0.5 && capLeft[j] >= blk.Entries() {
				blk.Store[j] = true
				capLeft[j] -= blk.Entries()
			}
		}
		for i := 0; i < g; i++ {
			best := in.fallback()
			bestCost := bm.m.perByteCost(i, best)
			for j := 0; j < g; j++ {
				if !blk.Store[j] || (i != j && !in.P.Connected(i, j)) {
					continue
				}
				if cost := bm.m.perByteCost(i, platform.SourceID(j)); cost < bestCost {
					best, bestCost = platform.SourceID(j), cost
				}
			}
			blk.Access[i] = best
		}
	}
	pl := newPlacement(c, "optimal-lp", blocks)
	pl.LowerBound = sol.Objective / bm.scale
	return pl, nil
}
