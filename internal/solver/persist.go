package solver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ugache/internal/platform"
)

// The binary placement format lets a deployment solve once (the paper's
// ~10 s MILP) and reuse the placement across restarts, as the Refresher's
// infrequent-update design intends (§7.2).
const placementMagic = uint64(0x55474143_504c3031) // "UGAC" "PL01"

// Save writes the placement in a compact binary format.
func (pl *Placement) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU64(placementMagic); err != nil {
		return err
	}
	if err := writeU64(uint64(len(pl.Policy))); err != nil {
		return err
	}
	if _, err := bw.WriteString(pl.Policy); err != nil {
		return err
	}
	for _, v := range []uint64{
		uint64(pl.NumGPUs), uint64(pl.EntryBytes),
		uint64(len(pl.Rank)), uint64(len(pl.Blocks)),
	} {
		if err := writeU64(v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, pl.ByRank); err != nil {
		return err
	}
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		if err := binary.Write(bw, binary.LittleEndian, uint64(b.Start)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(b.End)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b.HotPerEntry); err != nil {
			return err
		}
		for g := 0; g < pl.NumGPUs; g++ {
			v := uint8(0)
			if b.Store[g] {
				v = 1
			}
			if err := bw.WriteByte(v); err != nil {
				return err
			}
		}
		for g := 0; g < pl.NumGPUs; g++ {
			if err := binary.Write(bw, binary.LittleEndian, int32(b.Access[g])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadPlacement reads a placement written by Save and rebuilds the derived
// indices (Rank, the rank→block map). EstTimes and LowerBound are not
// persisted; re-evaluate with EstimateTimes if needed.
func LoadPlacement(r io.Reader) (*Placement, error) {
	br := bufio.NewReader(r)
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("solver: placement header: %w", err)
	}
	if magic != placementMagic {
		return nil, fmt.Errorf("solver: not a placement file (magic %x)", magic)
	}
	nameLen, err := readU64()
	if err != nil {
		return nil, err
	}
	if nameLen > 1024 {
		return nil, fmt.Errorf("solver: implausible policy-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var gpus, entryBytes, entries, blocks uint64
	for _, p := range []*uint64{&gpus, &entryBytes, &entries, &blocks} {
		if *p, err = readU64(); err != nil {
			return nil, err
		}
	}
	if gpus == 0 || gpus > 1024 || entries > 1<<33 || blocks > 1<<24 {
		return nil, fmt.Errorf("solver: implausible placement shape (%d gpus, %d entries, %d blocks)",
			gpus, entries, blocks)
	}
	pl := &Placement{
		Policy:     string(name),
		NumGPUs:    int(gpus),
		EntryBytes: int(entryBytes),
		Rank:       make([]int32, entries),
		ByRank:     make([]int32, entries),
		Blocks:     make([]Block, blocks),
	}
	if err := binary.Read(br, binary.LittleEndian, pl.ByRank); err != nil {
		return nil, err
	}
	for r0, e := range pl.ByRank {
		if e < 0 || int(e) >= len(pl.Rank) {
			return nil, fmt.Errorf("solver: rank %d maps to bad entry %d", r0, e)
		}
		pl.Rank[e] = int32(r0)
	}
	var prevEnd int64
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		start, err := readU64()
		if err != nil {
			return nil, err
		}
		end, err := readU64()
		if err != nil {
			return nil, err
		}
		b.Start, b.End = int64(start), int64(end)
		if b.Start != prevEnd || b.End <= b.Start || b.End > int64(entries) {
			return nil, fmt.Errorf("solver: block %d range [%d, %d) does not tile", bi, b.Start, b.End)
		}
		prevEnd = b.End
		if err := binary.Read(br, binary.LittleEndian, &b.HotPerEntry); err != nil {
			return nil, err
		}
		b.Store = make([]bool, gpus)
		for g := range b.Store {
			v, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			b.Store[g] = v != 0
		}
		b.Access = make([]platform.SourceID, gpus)
		for g := range b.Access {
			var v int32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			// gpus is Host, gpus+1 the cluster Network tier.
			if v < 0 || v > int32(gpus)+1 {
				return nil, fmt.Errorf("solver: block %d access %d out of range", bi, v)
			}
			b.Access[g] = platform.SourceID(v)
		}
	}
	if prevEnd != int64(entries) {
		return nil, fmt.Errorf("solver: blocks cover %d of %d entries", prevEnd, entries)
	}
	pl.blockOfRank = make([]int32, entries)
	for bi := range pl.Blocks {
		for r0 := pl.Blocks[bi].Start; r0 < pl.Blocks[bi].End; r0++ {
			pl.blockOfRank[r0] = int32(bi)
		}
	}
	return pl, nil
}
