package solver

import (
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// TestRandomInputsAllPoliciesValid fuzzes solver inputs (entry counts,
// skews, capacities, platforms) and checks that every policy emits a
// placement satisfying the §6.2 invariants.
func TestRandomInputsAllPoliciesValid(t *testing.T) {
	r := rng.New(2024)
	platforms := []*platform.Platform{platform.ServerA(), platform.ServerB(), platform.ServerC()}
	policies := []Policy{
		Replication{}, Partition{}, CliquePartition{}, RepPart{Candidates: 5},
		UGacheGreedy{}, UGache{},
	}
	for trial := 0; trial < 25; trial++ {
		p := platforms[r.Intn(len(platforms))]
		n := 500 + r.Intn(20000)
		alpha := 0.5 + r.Float64()*1.2
		h := make(workload.Hotness, n)
		perm := r.Perm(n)
		for rank := 0; rank < n; rank++ {
			h[perm[rank]] = math.Pow(float64(rank+1), -alpha)
		}
		// A random fraction of entries is never accessed.
		for e := 0; e < n/10; e++ {
			h[r.Intn(n)] = 0
		}
		caps := make([]int64, p.N)
		for g := range caps {
			caps[g] = int64(r.Float64() * 0.3 * float64(n))
		}
		in := &Input{P: p, Hotness: h, EntryBytes: 8 * (1 + r.Intn(128)), Capacity: caps}
		for _, pol := range policies {
			pl, err := pol.Solve(in)
			if err != nil {
				t.Fatalf("trial %d %s on %s (n=%d): %v", trial, pol.Name(), p.Name, n, err)
			}
			if err := pl.Validate(in); err != nil {
				t.Fatalf("trial %d %s on %s: invalid: %v", trial, pol.Name(), p.Name, err)
			}
			// Times finite and non-negative.
			for g, et := range pl.EstTimes {
				if et < 0 || math.IsNaN(et) || math.IsInf(et, 0) {
					t.Fatalf("trial %d %s: est time gpu %d = %g", trial, pol.Name(), g, et)
				}
			}
		}
	}
}

// TestZeroCapacityDegradesToHost checks that with no cache at all, every
// policy routes everything to host and the model prices it identically.
func TestZeroCapacityDegradesToHost(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 2000, 1.1, 0)
	for g := range in.Capacity {
		in.Capacity[g] = 0
	}
	for _, pol := range []Policy{Replication{}, Partition{}, UGache{}} {
		pl := mustSolve(t, pol, in)
		st := pl.Stats(in.Hotness)
		for g := range st {
			if st[g].Host < 1-1e-9 {
				t.Fatalf("%s: gpu %d host share %g with zero capacity", pol.Name(), g, st[g].Host)
			}
		}
	}
}

// TestFullCapacityAllLocal checks that with room for everything, UGache
// replicates everything and never touches remote or host.
func TestFullCapacityAllLocal(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 2000, 1.1, 1.0)
	pl := mustSolve(t, UGache{}, in)
	st := pl.Stats(in.Hotness)
	for g := range st {
		if st[g].Local < 1-1e-6 {
			t.Fatalf("gpu %d local share %g with full capacity", g, st[g].Local)
		}
	}
}

// TestUGacheNeverWorseThanBaselinesOnModel sweeps random instances and
// checks the defining guarantee: UGache's modelled makespan is never
// (materially) worse than replication's, partition's, or rep-part's.
func TestUGacheNeverWorseThanBaselinesOnModel(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 12; trial++ {
		p := platform.ServerC()
		if trial%3 == 1 {
			p = platform.ServerA()
		}
		if trial%3 == 2 {
			p = platform.ServerB()
		}
		n := 2000 + r.Intn(30000)
		alpha := 0.6 + r.Float64()
		ratio := 0.01 + r.Float64()*0.25
		in := &Input{
			P:          p,
			Hotness:    zipfHotness(n, alpha, 100000, r.Uint64()),
			EntryBytes: 256,
			Capacity:   make([]int64, p.N),
		}
		for g := range in.Capacity {
			in.Capacity[g] = int64(ratio * float64(n))
		}
		ug := mustSolve(t, UGache{}, in)
		for _, pol := range []Policy{Replication{}, CliquePartition{}, RepPart{}} {
			base := mustSolve(t, pol, in)
			if maxF(ug.EstTimes) > maxF(base.EstTimes)*1.03 {
				t.Fatalf("trial %d on %s (n=%d α=%.2f ratio=%.2f): ugache %g worse than %s %g",
					trial, p.Name, n, alpha, ratio,
					maxF(ug.EstTimes), pol.Name(), maxF(base.EstTimes))
			}
		}
	}
}

// TestLowerBoundIsABound: wherever UGache reports an LP lower bound, the
// realized modelled time respects it.
func TestLowerBoundIsABound(t *testing.T) {
	p := platform.ServerC()
	for _, ratio := range []float64{0.02, 0.08, 0.2} {
		in := testInput(t, p, 20000, 1.2, ratio)
		pl := mustSolve(t, UGache{}, in)
		if pl.LowerBound == 0 {
			t.Fatal("symmetric platform should report a bound")
		}
		if got := maxF(pl.EstTimes); got < pl.LowerBound*(1-1e-6) {
			t.Fatalf("ratio %g: realized %g beats its own bound %g", ratio, got, pl.LowerBound)
		}
	}
}

// TestHeterogeneousCapacities checks that unequal per-GPU budgets (e.g. a
// deployment sharing GPUs with other jobs) are respected and still yield a
// competitive placement via the heuristic path.
func TestHeterogeneousCapacities(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 20000, 1.1, 0.08)
	// GPU 0 has almost no budget; GPU 7 has double.
	in.Capacity[0] = 50
	in.Capacity[7] *= 2
	pl := mustSolve(t, UGache{}, in)
	used := pl.CapacityUsed()
	if used[0] > 50 {
		t.Fatalf("gpu0 used %d of 50", used[0])
	}
	// The starved GPU still reads hot entries from its peers.
	st := pl.Stats(in.Hotness)
	if st[0].Remote < 0.2 {
		t.Fatalf("starved gpu should lean on peers: %+v", st[0])
	}
	// And the placement beats plain replication (which wastes the big GPU).
	rep := mustSolve(t, Replication{}, in)
	if maxF(pl.EstTimes) > maxF(rep.EstTimes)*1.03 {
		t.Fatalf("ugache %g worse than replication %g under heterogeneity",
			maxF(pl.EstTimes), maxF(rep.EstTimes))
	}
}
