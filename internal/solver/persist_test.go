package solver

import (
	"bytes"
	"testing"

	"ugache/internal/platform"
)

func TestPlacementSaveLoadRoundTrip(t *testing.T) {
	p := platform.ServerC()
	in := testInput(t, p, 8000, 1.1, 0.07)
	pl := mustSolve(t, UGache{}, in)

	var buf bytes.Buffer
	if err := pl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != pl.Policy || got.NumGPUs != pl.NumGPUs || got.EntryBytes != pl.EntryBytes {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.NumEntries() != pl.NumEntries() || len(got.Blocks) != len(pl.Blocks) {
		t.Fatal("shape mismatch")
	}
	// Loaded placement validates against the original input and answers
	// identically.
	if err := got.Validate(in); err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < got.NumEntries(); e += 97 {
		for g := 0; g < p.N; g++ {
			if got.SourceOf(g, e) != pl.SourceOf(g, e) {
				t.Fatalf("SourceOf(%d, %d) differs after roundtrip", g, e)
			}
			if got.StoredOn(g, e) != pl.StoredOn(g, e) {
				t.Fatalf("StoredOn(%d, %d) differs after roundtrip", g, e)
			}
		}
	}
	// Re-evaluated model times match.
	a := EstimateTimes(in, pl)
	b := EstimateTimes(in, got)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("EstimateTimes differ after roundtrip: %v vs %v", a, b)
		}
	}
}

func TestLoadPlacementRejectsGarbage(t *testing.T) {
	if _, err := LoadPlacement(bytes.NewReader([]byte("definitely not a placement"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	p := platform.ServerA()
	in := testInput(t, p, 1000, 1.1, 0.1)
	pl := mustSolve(t, Replication{}, in)
	var buf bytes.Buffer
	if err := pl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadPlacement(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
