package solver

// Options carries the control-plane knobs of a policy solve — how much
// parallelism to spend and what to seed the search with — as opposed to
// Input, which describes the problem itself. The zero value means
// sequential, cold-started, prove optimality.
type Options struct {
	// Workers is the branch-and-bound parallelism for exact policies
	// (0 or 1 = sequential, negative = GOMAXPROCS). Any worker count
	// returns the identical placement on a complete search.
	Workers int
	// WarmStart, when non-nil, seeds the solve with a previous placement:
	// exact policies convert it into an initial incumbent so a
	// drifted-hotness re-solve prunes from the first node instead of
	// rediscovering the placement from scratch (the online refresh loop's
	// common case). Stale or infeasible warm starts are silently ignored.
	WarmStart *Placement
	// RelGap is the relative optimality gap at which exact policies stop
	// early (0 = prove optimality). Trades placement determinism for solve
	// latency.
	RelGap float64
	// MaxNodes caps branch-and-bound nodes (0 = the milp default).
	MaxNodes int
}

// OptionedPolicy is implemented by policies whose solves accept Options;
// approximation policies (greedy, heuristics) have nothing to configure and
// only implement Policy.
type OptionedPolicy interface {
	Policy
	SolveOpt(in *Input, opt Options) (*Placement, error)
}

// SolveWith runs pol under opt when the policy supports it and falls back
// to a plain Solve otherwise, so callers (cache refresh, cmds) can thread
// Options unconditionally without type-switching on the policy.
func SolveWith(pol Policy, in *Input, opt Options) (*Placement, error) {
	if op, ok := pol.(OptionedPolicy); ok {
		return op.SolveOpt(in, opt)
	}
	return pol.Solve(in)
}
