package solver

import (
	"container/heap"
	"fmt"
	"math"

	"ugache/internal/platform"
)

// UGache is the paper's cache-policy solver (§6): the §6.2 model built at
// hotness-block granularity (§6.3) and solved to (near-)optimality. The
// original hands the block MILP to Gurobi; here the same model is solved
// exactly by the internal LP solver wherever it is tractable — symmetric
// platforms (uniform hard-wired like Server A, switch-based like Server C)
// collapse to a replication-count formulation that scales to the full block
// budget. On asymmetric platforms at scale (DGX-1, where the paper itself
// could not obtain exact solutions and built reduced instances), UGache
// falls back to the best of a lazy-greedy marginal-benefit search
// (UGacheGreedy) and a connectivity-aware hot-replicate/warm-partition scan
// (RepPart).
type UGache struct {
	// Greedy tunes the fallback search.
	Greedy UGacheGreedy
}

// Name implements Policy.
func (UGache) Name() string { return "ugache" }

// Solve implements Policy.
func (u UGache) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	var best *Placement
	if symmetric(in) {
		if pl, err := solveSymmetricLP(in, in.blockBudget()); err == nil {
			best = pl
		}
		// Fall through to the heuristic candidates on LP failure — and
		// compare against them regardless: the LP is exact on the model
		// but its realization into whole blocks carries a little slack
		// that a structured scan sometimes beats.
	}
	if best == nil {
		g, err := u.Greedy.Solve(in)
		if err != nil {
			return nil, err
		}
		best = g
	}
	rp, err := (RepPart{Candidates: 33}).Solve(in)
	if err != nil {
		return nil, err
	}
	if maxF(rp.EstTimes) < maxF(best.EstTimes) {
		rp.LowerBound = best.LowerBound
		best = rp
	}
	best.Policy = "ugache"
	return best, nil
}

// UGacheGreedy is the heuristic fallback of UGache and an ablation policy
// in its own right: a lazy-greedy marginal-benefit search over block
// replicas against the §6.2 model —
//
//   - a move adds one replica of one block to one GPU; its benefit is the
//     weighted reduction in modelled extraction cost across all readers
//     (readers reroute to the cheapest reachable source, so the first
//     replica of a warm block competes against an extra replica of a hot
//     block exactly as in the MILP);
//   - benefits shrink as volume accumulates (diminishing returns), so a
//     lazy priority queue evaluates only a few candidates per step;
//   - multiplicative weights on the per-GPU times steer the search toward
//     the minimax objective on asymmetric platforms (DGX-1);
//   - a final rebalancing pass re-picks every reader's source with
//     load-aware tie-breaking, spreading remote traffic across replicas.
type UGacheGreedy struct {
	// Theta is the minimax reweighting sharpness (0 = 4).
	Theta float64
	// ReweightEvery applies this many moves between weight updates (0 = 64).
	ReweightEvery int
	// RefineRounds bounds the swap-based local search after construction
	// (0 = 4; negative disables refinement).
	RefineRounds int
	// Debug prints search progress (development aid).
	Debug bool
}

// Name implements Policy.
func (UGacheGreedy) Name() string { return "ugache-greedy" }

type gstate struct {
	in     *Input
	m      *costModel
	blocks []Block
	// vol[i][j]: bytes GPU i pulls from source j per iteration.
	vol [][]float64
	// t[i]: modelled time per GPU; score[i]: greedy objective (time plus
	// routing-cost potential); w[i]: minimax weights.
	t, score, w []float64
	capLeft     []int64
	fb          platform.SourceID // fallback source: host, or network on clusters
}

// moveItem is a heap entry: a candidate (block, gpu) with a possibly stale
// benefit.
type moveItem struct {
	benefit float64
	block   int
	gpu     int
}

type moveHeap []moveItem

func (h moveHeap) Len() int      { return len(h) }
func (h moveHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h moveHeap) Less(i, j int) bool {
	if h[i].benefit != h[j].benefit {
		return h[i].benefit > h[j].benefit
	}
	if h[i].block != h[j].block {
		return h[i].block < h[j].block
	}
	return h[i].gpu < h[j].gpu
}
func (h *moveHeap) Push(x any) { *h = append(*h, x.(moveItem)) }
func (h *moveHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Solve implements Policy.
func (u UGacheGreedy) Solve(in *Input) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	theta := u.Theta
	if theta == 0 {
		theta = 4
	}
	reweightEvery := u.ReweightEvery
	if reweightEvery <= 0 {
		reweightEvery = 64
	}

	c := newCtx(in)
	st := &gstate{
		in:      in,
		m:       newCostModel(in),
		blocks:  c.build(),
		capLeft: append([]int64(nil), in.Capacity...),
		fb:      in.fallback(),
	}
	st.vol = make([][]float64, in.P.N)
	for i := range st.vol {
		st.vol[i] = make([]float64, in.P.NumSources())
	}
	st.w = make([]float64, in.P.N)
	for i := range st.w {
		st.w[i] = 1
	}
	// All blocks start on the fallback tier (host; network on clusters).
	for bi := range st.blocks {
		bytes := st.blocks[bi].Mass() * float64(in.EntryBytes)
		for i := 0; i < in.P.N; i++ {
			st.vol[i][st.fb] += bytes
		}
	}
	st.t = st.m.times(st.vol)
	st.score = make([]float64, in.P.N)
	for i := range st.score {
		st.score[i] = st.scoreOf(i)
	}

	// Seed the lazy heap with every candidate move.
	h := make(moveHeap, 0, len(st.blocks)*in.P.N)
	for bi := range st.blocks {
		for g := 0; g < in.P.N; g++ {
			if st.capLeft[g] >= st.blocks[bi].Entries() {
				h = append(h, moveItem{st.evalMove(bi, g), bi, g})
			}
		}
	}
	heap.Init(&h)

	applied := 0
	pops := 0
	for h.Len() > 0 {
		it := heap.Pop(&h).(moveItem)
		pops++
		if u.Debug && pops%500 == 0 {
			fmt.Printf("pop %d: benefit=%g applied=%d heap=%d\n", pops, it.benefit, applied, h.Len())
		}
		if it.benefit <= 0 {
			if u.Debug {
				fmt.Printf("stop: stale benefit %g after %d applies, %d pops\n", it.benefit, applied, pops)
			}
			break
		}
		b := &st.blocks[it.block]
		if b.Store[it.gpu] || st.capLeft[it.gpu] < b.Entries() {
			continue
		}
		// Lazy re-evaluation: apply only if still at least as good as the
		// next candidate's (stale) benefit.
		fresh := st.evalMove(it.block, it.gpu)
		if fresh <= 0 {
			continue
		}
		if h.Len() > 0 && fresh < h[0].benefit {
			heap.Push(&h, moveItem{fresh, it.block, it.gpu})
			continue
		}
		st.apply(it.block, it.gpu)
		applied++
		if applied%reweightEvery == 0 {
			st.reweight(theta)
		}
	}

	refineRounds := u.RefineRounds
	if refineRounds == 0 {
		refineRounds = 4
	}
	if refineRounds > 0 {
		st.refine(refineRounds)
	}
	st.rebalance()
	return newPlacement(c, "ugache-greedy", st.blocks), nil
}

// bestSource returns the cheapest reachable source for reader i of block b
// given its current Store set, breaking per-byte-cost ties toward the
// source with the least accumulated volume (spreading remote reads across
// replicas, which the final FEM dedication relies on).
func (st *gstate) bestSource(i, bi int) platform.SourceID {
	b := &st.blocks[bi]
	best := st.fb
	bestCost := st.m.perByteCost(i, st.fb)
	bestVol := st.vol[i][st.fb]
	for g := 0; g < st.in.P.N; g++ {
		if !b.Store[g] || (g != i && !st.in.P.Connected(i, g)) {
			continue
		}
		cost := st.m.perByteCost(i, platform.SourceID(g))
		if cost < bestCost-1e-18 ||
			(cost < bestCost+1e-18 && st.vol[i][g] < bestVol) {
			best = platform.SourceID(g)
			bestCost = cost
			bestVol = st.vol[i][g]
		}
	}
	return best
}

// timeOf recomputes reader i's modelled time from its volume row.
func (st *gstate) timeOf(i int) float64 {
	packing, linkBound := 0.0, 0.0
	for j, bytes := range st.vol[i] {
		if bytes == 0 {
			continue
		}
		packing += bytes * st.m.packCost[i][j]
		if t := bytes * st.m.invEff[i][j]; t > linkBound {
			linkBound = t
		}
	}
	if linkBound > packing {
		return linkBound
	}
	return packing
}

// scorePotential is the weight of the additive routing-cost potential in
// the greedy score. The §6.2 objective is a max, which has zero-gradient
// plateaus (a move that only shrinks a non-binding term looks worthless to
// a pure-max greedy even though it buys future slack); the potential keeps
// every strictly-cheaper routing strictly beneficial while the max term
// still dominates the ordering.
const scorePotential = 4.0

// scoreOf is the greedy objective for reader i: modelled time plus the
// routing-cost potential.
func (st *gstate) scoreOf(i int) float64 {
	pot := 0.0
	for j, bytes := range st.vol[i] {
		if bytes == 0 {
			continue
		}
		pot += bytes * (st.m.packCost[i][j] + st.m.invEff[i][j])
	}
	return st.timeOf(i) + scorePotential*pot
}

// evalMove computes the weighted time reduction of storing block bi on g,
// without mutating state.
func (st *gstate) evalMove(bi, g int) float64 {
	b := &st.blocks[bi]
	if b.Store[g] || st.capLeft[g] < b.Entries() {
		return -1
	}
	bytes := b.Mass() * float64(st.in.EntryBytes)
	if bytes == 0 {
		return 0
	}
	benefit := 0.0
	for i := 0; i < st.in.P.N; i++ {
		if i != g && !st.in.P.Connected(i, g) {
			continue
		}
		newCost := st.m.perByteCost(i, platform.SourceID(g))
		curCost := st.m.perByteCost(i, b.Access[i])
		if newCost >= curCost {
			continue
		}
		// Move the bytes between sources and re-evaluate this reader.
		old := st.score[i]
		st.vol[i][b.Access[i]] -= bytes
		st.vol[i][g] += bytes
		benefit += st.w[i] * (old - st.scoreOf(i))
		st.vol[i][g] -= bytes
		st.vol[i][b.Access[i]] += bytes
	}
	return benefit
}

// apply stores block bi on g and reroutes improved readers.
func (st *gstate) apply(bi, g int) {
	b := &st.blocks[bi]
	b.Store[g] = true
	st.capLeft[g] -= b.Entries()
	bytes := b.Mass() * float64(st.in.EntryBytes)
	for i := 0; i < st.in.P.N; i++ {
		if i != g && !st.in.P.Connected(i, g) {
			continue
		}
		if st.m.perByteCost(i, platform.SourceID(g)) < st.m.perByteCost(i, b.Access[i]) {
			st.vol[i][b.Access[i]] -= bytes
			st.vol[i][g] += bytes
			b.Access[i] = platform.SourceID(g)
			st.t[i] = st.timeOf(i)
			st.score[i] = st.scoreOf(i)
		}
	}
}

// reweight pushes weight toward the slowest GPUs (multiplicative weights on
// the minimax objective).
func (st *gstate) reweight(theta float64) {
	maxT := 0.0
	for _, v := range st.t {
		if v > maxT {
			maxT = v
		}
	}
	if maxT == 0 {
		return
	}
	sum := 0.0
	for i, v := range st.t {
		st.w[i] = expFast(theta * (v/maxT - 1))
		sum += st.w[i]
	}
	scale := float64(len(st.w)) / sum
	for i := range st.w {
		st.w[i] *= scale
	}
}

// rebalance re-picks every reader's source with load-aware tie-breaking
// after storage is final.
func (st *gstate) rebalance() {
	// Reset volumes and reassign in block order.
	for i := range st.vol {
		for j := range st.vol[i] {
			st.vol[i][j] = 0
		}
	}
	for bi := range st.blocks {
		b := &st.blocks[bi]
		bytes := b.Mass() * float64(st.in.EntryBytes)
		for i := 0; i < st.in.P.N; i++ {
			src := st.bestSource(i, bi)
			b.Access[i] = src
			st.vol[i][src] += bytes
		}
	}
	for i := range st.t {
		st.t[i] = st.timeOf(i)
	}
}

func expFast(x float64) float64 { return math.Exp(x) }
