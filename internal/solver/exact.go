package solver

import (
	"fmt"
	"math"

	"ugache/internal/lp"
	"ugache/internal/milp"
	"ugache/internal/platform"
)

// blockModel is the §6.2 block-granularity a/s/z formulation shared by
// OptimalLP's general (fractional) path and the Exact branch-and-bound
// policy:
//
//	min z
//	s.t. Σ_j a[b][i][j] = 1    over reachable j        (each reader sourced)
//	     s[b][j] ≥ a[b][i][j]  for GPU sources         (access needs storage)
//	     s[b][j] ≤ 1
//	     Σ_b n_b·s[b][j] ≤ cap_j                       (capacity)
//	     z ≥ Σ_b bytes_b·invEff[i][j]·a[b][i][j]       (per-link time)
//	     z ≥ Σ_{b,j} bytes_b·packCost[i][j]·a[b][i][j] (per-reader packing)
//
// Coefficients are rescaled so the all-host makespan is O(1) (raw
// seconds-per-byte sums can sit below the simplex pivot tolerance);
// objective values divide by scale to come back to seconds.
type blockModel struct {
	prob   *lp.Problem
	blocks []Block
	m      *costModel
	g      int
	srcs   int
	nb     int
	scale  float64
}

func (bm *blockModel) av(b, i, j int) int { return (b*bm.g+i)*bm.srcs + j }
func (bm *blockModel) sv(b, j int) int    { return bm.nb*bm.g*bm.srcs + b*bm.g + j }
func (bm *blockModel) zVar() int          { return bm.nb*bm.g*bm.srcs + bm.nb*bm.g }

// buildBlockModel constructs the LP over the given blocks. The blocks slice
// is referenced, not copied; callers realize solutions into it afterwards.
func buildBlockModel(in *Input, c *ctx, blocks []Block) (*blockModel, error) {
	g := in.P.N
	srcs := in.P.NumSources()
	m := newCostModel(in)
	nb := len(blocks)
	totalBytes := c.mass(0, c.numEntries()) * float64(in.EntryBytes)
	scale := 1.0
	if hostInv := m.invEff[0][int(in.fallback())]; totalBytes > 0 && hostInv > 0 {
		scale = 1 / (totalBytes * hostInv)
	}
	bm := &blockModel{blocks: blocks, m: m, g: g, srcs: srcs, nb: nb, scale: scale}

	obj := make([]float64, bm.zVar()+1)
	obj[bm.zVar()] = 1
	prob, err := lp.NewProblem(bm.zVar()+1, obj)
	if err != nil {
		return nil, err
	}
	bm.prob = prob

	for b := 0; b < nb; b++ {
		for i := 0; i < g; i++ {
			// Σ_j a = 1 over reachable sources.
			var coefs []lp.Coef
			for j := 0; j < srcs; j++ {
				if math.IsInf(m.invEff[i][j], 1) {
					continue // unconnected: variable pruned (paper §6.2)
				}
				coefs = append(coefs, lp.Coef{Var: bm.av(b, i, j), Value: 1})
			}
			if err := prob.AddConstraint(coefs, lp.EQ, 1); err != nil {
				return nil, err
			}
			// s ≥ a for GPU sources.
			for j := 0; j < g; j++ {
				if math.IsInf(m.invEff[i][j], 1) {
					continue
				}
				if err := prob.AddConstraint([]lp.Coef{
					{Var: bm.sv(b, j), Value: 1}, {Var: bm.av(b, i, j), Value: -1},
				}, lp.GE, 0); err != nil {
					return nil, err
				}
			}
		}
		// s ≤ 1.
		for j := 0; j < g; j++ {
			if err := prob.AddConstraint([]lp.Coef{{Var: bm.sv(b, j), Value: 1}}, lp.LE, 1); err != nil {
				return nil, err
			}
		}
	}
	// Capacity per GPU.
	for j := 0; j < g; j++ {
		coefs := make([]lp.Coef, 0, nb)
		for b := 0; b < nb; b++ {
			coefs = append(coefs, lp.Coef{Var: bm.sv(b, j), Value: float64(blocks[b].Entries())})
		}
		if err := prob.AddConstraint(coefs, lp.LE, float64(in.Capacity[j])); err != nil {
			return nil, err
		}
	}
	// Time bounds: z ≥ t_i^j (link) and z ≥ packing_i.
	for i := 0; i < g; i++ {
		packCoefs := []lp.Coef{{Var: bm.zVar(), Value: 1}}
		for j := 0; j < srcs; j++ {
			if math.IsInf(m.invEff[i][j], 1) {
				continue
			}
			coefs := []lp.Coef{{Var: bm.zVar(), Value: 1}}
			for b := 0; b < nb; b++ {
				bytes := blocks[b].Mass() * float64(in.EntryBytes) * scale
				coefs = append(coefs, lp.Coef{Var: bm.av(b, i, j), Value: -bytes * m.invEff[i][j]})
				packCoefs = append(packCoefs, lp.Coef{Var: bm.av(b, i, j), Value: -bytes * m.packCost[i][j]})
			}
			if err := prob.AddConstraint(coefs, lp.GE, 0); err != nil {
				return nil, err
			}
		}
		if err := prob.AddConstraint(packCoefs, lp.GE, 0); err != nil {
			return nil, err
		}
	}
	return bm, nil
}

// integerVars lists every reachable access variable and every storage
// variable — the binary decisions of the exact model. z stays continuous.
func (bm *blockModel) integerVars() []int {
	ints := make([]int, 0, bm.nb*bm.g*(bm.srcs+1))
	for b := 0; b < bm.nb; b++ {
		for i := 0; i < bm.g; i++ {
			for j := 0; j < bm.srcs; j++ {
				if math.IsInf(bm.m.invEff[i][j], 1) {
					continue
				}
				ints = append(ints, bm.av(b, i, j))
			}
		}
		for j := 0; j < bm.g; j++ {
			ints = append(ints, bm.sv(b, j))
		}
	}
	return ints
}

// warmIncumbent converts a previous placement into a feasible integral
// point of this model: a block is stored on GPU j when the old placement
// kept at least half of the block's entries there (capacity permitting),
// every reader takes its cheapest reachable stored source (host
// otherwise), and z is the modelled makespan of that assignment computed
// with the same scaled coefficients as the constraint rows. Returns nil
// when the old placement does not match the instance; milp re-validates
// the point anyway, so a stale warm start degrades to a cold solve rather
// than an error.
func (bm *blockModel) warmIncumbent(in *Input, c *ctx, old *Placement) []float64 {
	if old == nil || old.NumGPUs != bm.g || old.NumEntries() != c.numEntries() {
		return nil
	}
	x := make([]float64, bm.zVar()+1)
	capLeft := append([]int64(nil), in.Capacity...)
	for b := range bm.blocks {
		blk := &bm.blocks[b]
		n := blk.Entries()
		for j := 0; j < bm.g; j++ {
			var stored int64
			for r := blk.Start; r < blk.End; r++ {
				if old.StoredOn(j, c.ranked[r]) {
					stored++
				}
			}
			if stored*2 >= n && capLeft[j] >= n {
				x[bm.sv(b, j)] = 1
				capLeft[j] -= n
			}
		}
		for i := 0; i < bm.g; i++ {
			best := int(in.fallback())
			bestCost := bm.m.perByteCost(i, in.fallback())
			for j := 0; j < bm.g; j++ {
				if x[bm.sv(b, j)] != 1 || math.IsInf(bm.m.invEff[i][j], 1) {
					continue
				}
				if cost := bm.m.perByteCost(i, platform.SourceID(j)); cost < bestCost {
					best, bestCost = j, cost
				}
			}
			x[bm.av(b, i, best)] = 1
		}
	}
	z := 0.0
	for i := 0; i < bm.g; i++ {
		packing := 0.0
		for j := 0; j < bm.srcs; j++ {
			if math.IsInf(bm.m.invEff[i][j], 1) {
				continue
			}
			link := 0.0
			for b := range bm.blocks {
				if x[bm.av(b, i, j)] != 1 {
					continue
				}
				bytes := bm.blocks[b].Mass() * float64(in.EntryBytes) * bm.scale
				link += bytes * bm.m.invEff[i][j]
				packing += bytes * bm.m.packCost[i][j]
			}
			if link > z {
				z = link
			}
		}
		if packing > z {
			z = packing
		}
	}
	x[bm.zVar()] = z
	return x
}

// Exact solves the block model with integral storage and access decisions
// by branch and bound — the stand-in for the paper's Gurobi MILP (§6.2),
// which the paper itself only runs on reduced instances for the Fig. 16
// optimality study. Unlike OptimalLP's rounded realization, the returned
// placement realizes the MILP solution exactly, so the modelled makespan
// equals the MILP objective and LowerBound is a true optimality
// certificate (equal to the makespan on complete solves).
//
// Exact implements OptionedPolicy: SolveOpt threads branch-and-bound
// workers and a WarmStart placement down to the search, which is how
// cache.Refresh keeps drifted-hotness re-solves cheap.
type Exact struct {
	// MaxBlocks caps the quantile block count (0 = Input.BlockBudget if
	// that is smaller than 10, else 10). Each block adds G·srcs binary
	// access plus G binary storage variables, so the search grows
	// exponentially with it — keep instances reduced, as the paper does.
	MaxBlocks int
	// Opt is the default solve configuration used by plain Solve calls;
	// SolveOpt's argument replaces it.
	Opt Options
}

// Name implements Policy.
func (Exact) Name() string { return "exact" }

// Solve implements Policy.
func (ex Exact) Solve(in *Input) (*Placement, error) { return ex.SolveOpt(in, ex.Opt) }

// SolveOpt implements OptionedPolicy.
func (ex Exact) SolveOpt(in *Input, opt Options) (*Placement, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	maxBlocks := ex.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = 10
		if in.BlockBudget > 0 && in.BlockBudget < maxBlocks {
			maxBlocks = in.BlockBudget
		}
	}
	c := newCtx(in)
	blocks := c.buildQuantile(maxBlocks)
	bm, err := buildBlockModel(in, c, blocks)
	if err != nil {
		return nil, err
	}
	mopt := milp.Options{
		Workers:  opt.Workers,
		RelGap:   opt.RelGap,
		MaxNodes: opt.MaxNodes,
	}
	if opt.WarmStart != nil {
		mopt.Incumbent = bm.warmIncumbent(in, c, opt.WarmStart)
	}
	sol, err := milp.Solve(bm.prob, bm.integerVars(), mopt)
	if err != nil {
		return nil, fmt.Errorf("solver: exact MILP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("solver: exact MILP %v (complete=%v, %d nodes)",
			sol.Status, sol.Complete, sol.Nodes)
	}
	// Realize the integral solution exactly: store where s = 1, read from
	// the j with a = 1.
	for b := 0; b < bm.nb; b++ {
		blk := &blocks[b]
		for j := 0; j < bm.g; j++ {
			blk.Store[j] = sol.X[bm.sv(b, j)] > 0.5
		}
		for i := 0; i < bm.g; i++ {
			for j := 0; j < bm.srcs; j++ {
				if math.IsInf(bm.m.invEff[i][j], 1) {
					continue
				}
				if sol.X[bm.av(b, i, j)] > 0.5 {
					blk.Access[i] = platform.SourceID(j)
					break
				}
			}
		}
	}
	pl := newPlacement(c, "exact", blocks)
	pl.LowerBound = sol.Bound / bm.scale
	pl.SolveNodes = int64(sol.Nodes)
	return pl, nil
}
