// Package solver implements UGache's cache policy (paper §6): given the
// hotness of every embedding entry, the platform's bandwidth hierarchy, and
// per-GPU cache capacities, it decides the storage arrangement (which GPUs
// hold which entries) and the access arrangement (which source each GPU
// reads every entry from) so as to minimize the estimated extraction time.
//
// Entries are ranked by hotness and batched into log-scale hotness blocks
// (§6.3); all policies emit a Placement over those contiguous rank ranges.
// Besides UGache's solver the package provides the baseline policies the
// paper compares against: replication (HPS/GNNLab-style), partition
// (WholeGraph/SOK-style), clique partition (Quiver-style, for platforms
// with unconnected GPU pairs), and the hot-replicate/warm-partition
// heuristic of Song & Jiang [39].
package solver

import (
	"fmt"
	"math"

	"ugache/internal/platform"
	"ugache/internal/workload"
)

// Input bundles everything a policy needs.
type Input struct {
	P       *platform.Platform
	Hotness workload.Hotness
	// EntryBytes is the row size (uniform per dataset, as in the paper's
	// datasets).
	EntryBytes int
	// Capacity[g] is GPU g's cache capacity in entries.
	Capacity []int64
	// BlockBudget caps the number of hotness blocks (0 = DefaultBlockBudget).
	BlockBudget int
}

// DefaultBlockBudget bounds the block count; the paper reduces E "to less
// than one thousand" blocks (§6.3).
const DefaultBlockBudget = 512

func (in *Input) validate() error {
	if in.P == nil {
		return fmt.Errorf("solver: nil platform")
	}
	if len(in.Hotness) == 0 {
		return fmt.Errorf("solver: empty hotness")
	}
	if int64(len(in.Hotness)) > math.MaxInt32 {
		return fmt.Errorf("solver: %d entries exceed int32 rank space", len(in.Hotness))
	}
	if in.EntryBytes <= 0 {
		return fmt.Errorf("solver: EntryBytes must be positive")
	}
	if len(in.Capacity) != in.P.N {
		return fmt.Errorf("solver: %d capacities for %d GPUs", len(in.Capacity), in.P.N)
	}
	for g, c := range in.Capacity {
		if c < 0 {
			return fmt.Errorf("solver: negative capacity on gpu %d", g)
		}
	}
	for e, h := range in.Hotness {
		if h < 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("solver: bad hotness %g at entry %d", h, e)
		}
	}
	return nil
}

func (in *Input) blockBudget() int {
	if in.BlockBudget > 0 {
		return in.BlockBudget
	}
	return DefaultBlockBudget
}

// fallback returns the source uncached blocks are read from: host memory on
// single-machine platforms, the network tier on clustered ones — there the
// local DRAM holds only this machine's 1/M shard of the uncached range, and
// the blended network column (see newCostModel) prices the owned-shard vs
// over-the-wire split exactly.
func (in *Input) fallback() platform.SourceID {
	if in.P.HasNetwork() {
		return in.P.Network()
	}
	return in.P.Host()
}

// Block is a contiguous range of hotness ranks with a common storage and
// access arrangement.
type Block struct {
	// Start and End delimit the rank range [Start, End).
	Start, End int64
	// HotPerEntry is the mean per-entry hotness within the block.
	HotPerEntry float64
	// Store[g] reports whether GPU g caches the block.
	Store []bool
	// Access[i] is the source GPU i reads the block from (a GPU index or
	// the platform's Host()).
	Access []platform.SourceID
}

// Entries returns the block's entry count.
func (b *Block) Entries() int64 { return b.End - b.Start }

// Mass returns the block's total hotness (expected accesses/iteration).
func (b *Block) Mass() float64 { return b.HotPerEntry * float64(b.Entries()) }

// Placement is a solved cache policy: the coordination structure between
// Solver, Filler, and Extractor (paper §4).
type Placement struct {
	Policy     string
	NumGPUs    int
	EntryBytes int
	// Rank maps entry -> hotness rank (0 = hottest).
	Rank []int32
	// ByRank maps rank -> entry (inverse of Rank).
	ByRank []int32
	// Blocks are ordered by Start and tile [0, NumEntries).
	Blocks []Block
	// blockOfRank maps rank -> index into Blocks.
	blockOfRank []int32
	// EstTimes[g] is the model-estimated extraction time per iteration
	// (§6.2), filled by policies that plan with the model.
	EstTimes []float64
	// LowerBound, when non-zero, is a proven lower bound on the optimal
	// modelled makespan (set by OptimalLP and Exact).
	LowerBound float64
	// SolveNodes, when non-zero, is the number of branch-and-bound nodes the
	// policy expanded to produce this placement (set by Exact). With
	// parallel workers the count varies run to run even though the
	// placement itself does not, so it is diagnostic, not part of the
	// placement's identity, and is not persisted by Save.
	SolveNodes int64
}

// NumEntries returns the entry count.
func (pl *Placement) NumEntries() int64 { return int64(len(pl.Rank)) }

// BlockOf returns the block index covering an entry.
func (pl *Placement) BlockOf(entry int64) int32 {
	return pl.blockOfRank[pl.Rank[entry]]
}

// SourceOf returns where GPU dst reads the given entry from.
func (pl *Placement) SourceOf(dst int, entry int64) platform.SourceID {
	return pl.Blocks[pl.BlockOf(entry)].Access[dst]
}

// StoredOn reports whether GPU g caches the entry.
func (pl *Placement) StoredOn(g int, entry int64) bool {
	return pl.Blocks[pl.BlockOf(entry)].Store[g]
}

// StorageSummary classifies a placement's hotness blocks by storage
// degree — the replication-vs-partition split the UGache solver trades off
// (§6.2): a block stored on every GPU is replicated (hot head), on exactly
// one GPU partitioned (warm middle), on several-but-not-all partially
// replicated, and on none host-resident (cold tail). Mass fields weigh each
// class by expected accesses per iteration; Entries fields by entry count.
type StorageSummary struct {
	ReplicatedBlocks  int
	PartialBlocks     int
	PartitionedBlocks int
	UncachedBlocks    int

	ReplicatedEntries  int64
	PartialEntries     int64
	PartitionedEntries int64
	UncachedEntries    int64

	ReplicatedMass  float64
	PartialMass     float64
	PartitionedMass float64
	UncachedMass    float64
}

// StorageSummary computes the replication-vs-partition split of the
// placement's blocks (see StorageSummary). Solver introspection surfaces it
// as timeline span args so a refresh's placement decisions are inspectable.
func (pl *Placement) StorageSummary() StorageSummary {
	var out StorageSummary
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		stored := 0
		for _, s := range b.Store {
			if s {
				stored++
			}
		}
		entries, mass := b.Entries(), b.Mass()
		switch {
		case stored == 0:
			out.UncachedBlocks++
			out.UncachedEntries += entries
			out.UncachedMass += mass
		case stored == 1:
			out.PartitionedBlocks++
			out.PartitionedEntries += entries
			out.PartitionedMass += mass
		case stored == pl.NumGPUs:
			out.ReplicatedBlocks++
			out.ReplicatedEntries += entries
			out.ReplicatedMass += mass
		default:
			out.PartialBlocks++
			out.PartialEntries += entries
			out.PartialMass += mass
		}
	}
	return out
}

// CapacityUsed returns entries cached per GPU.
func (pl *Placement) CapacityUsed() []int64 {
	used := make([]int64, pl.NumGPUs)
	for _, b := range pl.Blocks {
		for g, s := range b.Store {
			if s {
				used[g] += b.Entries()
			}
		}
	}
	return used
}

// HitStats describes where one GPU's accesses land, as fractions of total
// hotness mass (Fig. 14's local / remote / host split, extended with the
// cluster network tier).
type HitStats struct {
	Local, Remote, Host, Network float64
}

// Stats computes the per-GPU access split under the hotness the placement
// was solved for.
func (pl *Placement) Stats(h workload.Hotness) []HitStats {
	out := make([]HitStats, pl.NumGPUs)
	total := h.Total()
	if total == 0 {
		return out
	}
	host := platform.SourceID(pl.NumGPUs)
	network := platform.SourceID(pl.NumGPUs + 1)
	for _, b := range pl.Blocks {
		mass := 0.0
		for r := b.Start; r < b.End; r++ {
			mass += h[pl.ByRank[r]]
		}
		for i := 0; i < pl.NumGPUs; i++ {
			switch src := b.Access[i]; {
			case src == host:
				out[i].Host += mass
			case src == network:
				out[i].Network += mass
			case int(src) == i:
				out[i].Local += mass
			default:
				out[i].Remote += mass
			}
		}
	}
	inv := 1 / total
	for i := range out {
		out[i].Local *= inv
		out[i].Remote *= inv
		out[i].Host *= inv
		out[i].Network *= inv
	}
	return out
}

// Validate checks the §6.2 invariants: every access points at a source that
// stores the block (or the fallback tier — host, or network on clusters)
// and is reachable; capacities are respected.
func (pl *Placement) Validate(in *Input) error {
	if len(pl.Blocks) == 0 {
		return fmt.Errorf("solver: placement has no blocks")
	}
	host := in.P.Host()
	cluster := in.P.HasNetwork()
	var prevEnd int64
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		if b.Start != prevEnd || b.End <= b.Start {
			return fmt.Errorf("solver: block %d range [%d, %d) does not tile", bi, b.Start, b.End)
		}
		prevEnd = b.End
		if len(b.Store) != pl.NumGPUs || len(b.Access) != pl.NumGPUs {
			return fmt.Errorf("solver: block %d has wrong arity", bi)
		}
		for i := 0; i < pl.NumGPUs; i++ {
			src := b.Access[i]
			if src == host {
				if cluster {
					return fmt.Errorf("solver: block %d gpu %d reads the pruned host tier on a cluster platform", bi, i)
				}
				continue
			}
			if cluster && src == in.P.Network() {
				continue
			}
			j := int(src)
			if j < 0 || j >= pl.NumGPUs {
				return fmt.Errorf("solver: block %d gpu %d reads bad source %d", bi, i, src)
			}
			if !b.Store[j] {
				return fmt.Errorf("solver: block %d gpu %d reads gpu %d which does not store it", bi, i, j)
			}
			if !in.P.Connected(i, j) {
				return fmt.Errorf("solver: block %d gpu %d reads unconnected gpu %d", bi, i, j)
			}
		}
	}
	if prevEnd != int64(len(in.Hotness)) {
		return fmt.Errorf("solver: blocks cover %d of %d entries", prevEnd, len(in.Hotness))
	}
	for g, used := range pl.CapacityUsed() {
		if used > in.Capacity[g] {
			return fmt.Errorf("solver: gpu %d uses %d of %d entries", g, used, in.Capacity[g])
		}
	}
	return nil
}

// Policy is a cache-policy algorithm.
type Policy interface {
	Name() string
	Solve(in *Input) (*Placement, error)
}

// newPlacement builds the shared skeleton from a solve context: ranks and
// the rank→block map are filled; Store/Access come from the blocks as the
// policy populated them.
func newPlacement(c *ctx, policy string, blocks []Block) *Placement {
	n := len(c.in.Hotness)
	pl := &Placement{
		Policy:     policy,
		NumGPUs:    c.in.P.N,
		EntryBytes: c.in.EntryBytes,
		Rank:       make([]int32, n),
		ByRank:     make([]int32, n),
		Blocks:     blocks,
	}
	for r, e := range c.ranked {
		pl.Rank[e] = int32(r)
		pl.ByRank[r] = int32(e)
	}
	pl.blockOfRank = make([]int32, n)
	for bi := range blocks {
		for r := blocks[bi].Start; r < blocks[bi].End; r++ {
			pl.blockOfRank[r] = int32(bi)
		}
	}
	pl.EstTimes = EstimateTimes(c.in, pl)
	return pl
}
