package solver

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/workload"
)

// microInput builds the same 2-GPU reduced instance family as
// TestUGacheMatchesEntryMILP: n entries, Zipf-ish hotness, per-GPU capacity.
func microInput(t testing.TB, n int, capacity int64) *Input {
	t.Helper()
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	p, err := platform.New(platform.Config{
		Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16, N: 2,
		PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := make(workload.Hotness, n)
	for e := 0; e < n; e++ {
		h[e] = math.Pow(float64(e+1), -1.2) * 1000
	}
	return &Input{P: p, Hotness: h, EntryBytes: 512, Capacity: []int64{capacity, capacity}}
}

// TestExactPolicyCertificate checks the Exact policy's defining property:
// the realized placement's modelled makespan equals the MILP objective, and
// LowerBound is a matching optimality certificate on a complete solve.
func TestExactPolicyCertificate(t *testing.T) {
	in := microInput(t, 24, 8)
	pl := mustSolve(t, Exact{MaxBlocks: 6}, in)
	if err := pl.Validate(in); err != nil {
		t.Fatal(err)
	}
	if pl.Policy != "exact" {
		t.Fatalf("policy %q", pl.Policy)
	}
	if pl.SolveNodes <= 0 {
		t.Fatalf("SolveNodes not recorded: %d", pl.SolveNodes)
	}
	makespan := maxF(pl.EstTimes)
	if pl.LowerBound <= 0 {
		t.Fatalf("LowerBound not set: %g", pl.LowerBound)
	}
	if rel := math.Abs(makespan-pl.LowerBound) / pl.LowerBound; rel > 1e-6 {
		t.Fatalf("makespan %g vs certificate %g (rel %g): exact realization must match the MILP objective",
			makespan, pl.LowerBound, rel)
	}
}

// TestExactDeterminismAcrossWorkers: any worker count yields a byte-
// identical placement (Save bytes) with identical EstTimes and LowerBound.
// SolveNodes is excluded — exploration effort varies, the answer does not.
func TestExactDeterminismAcrossWorkers(t *testing.T) {
	in := microInput(t, 24, 8)
	ex := Exact{MaxBlocks: 6}
	base, err := ex.SolveOpt(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseBuf bytes.Buffer
	if err := base.Save(&baseBuf); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		for rep := 0; rep < 2; rep++ {
			pl, err := ex.SolveOpt(in, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := pl.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), baseBuf.Bytes()) {
				t.Fatalf("W=%d rep %d: placement bytes differ from W=1", w, rep)
			}
			if pl.LowerBound != base.LowerBound {
				t.Fatalf("W=%d rep %d: LowerBound %v != %v", w, rep, pl.LowerBound, base.LowerBound)
			}
			for i := range pl.EstTimes {
				if pl.EstTimes[i] != base.EstTimes[i] {
					t.Fatalf("W=%d rep %d: EstTimes[%d] %v != %v", w, rep, i, pl.EstTimes[i], base.EstTimes[i])
				}
			}
		}
	}
}

// driftHotness perturbs the hotness multiplicatively and deterministically:
// the ranking mostly survives, the block masses shift — the refresh loop's
// drifted re-solve input.
func driftHotness(h workload.Hotness, strength float64) workload.Hotness {
	out := make(workload.Hotness, len(h))
	for e := range h {
		// Deterministic per-entry jitter in [1-strength, 1+strength].
		f := 1 + strength*math.Sin(float64(e)*2.39996)
		out[e] = h[e] * f
	}
	return out
}

// TestExactWarmStartCheaper: re-solving a drifted instance warm-started
// from the previous placement must not explore more nodes than a cold
// re-solve, and must return the same placement (warm starts change the
// work, never the answer, on complete solves with a tie-compatible warm
// point rejected or dominated).
func TestExactWarmStartCheaper(t *testing.T) {
	in := microInput(t, 24, 8)
	ex := Exact{MaxBlocks: 6}
	old, err := ex.SolveOpt(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	drifted := &Input{P: in.P, Hotness: driftHotness(in.Hotness, 0.15),
		EntryBytes: in.EntryBytes, Capacity: in.Capacity}
	cold, err := ex.SolveOpt(drifted, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ex.SolveOpt(drifted, Options{Workers: 1, WarmStart: old})
	if err != nil {
		t.Fatal(err)
	}
	if warm.SolveNodes > cold.SolveNodes {
		t.Fatalf("warm re-solve explored more nodes than cold: %d > %d",
			warm.SolveNodes, cold.SolveNodes)
	}
	t.Logf("cold %d nodes, warm %d nodes (%.0f%%)",
		cold.SolveNodes, warm.SolveNodes, 100*float64(warm.SolveNodes)/float64(cold.SolveNodes))
	if warm.LowerBound != cold.LowerBound {
		t.Fatalf("warm LowerBound %v != cold %v", warm.LowerBound, cold.LowerBound)
	}
}

// TestExactWarmStartGapMode pins the refresh loop's configuration: with a
// small relative gap (online re-solves do not need a full optimality
// proof), a warm start skips the incumbent-discovery phase entirely and
// the drifted re-solve finishes in a fraction of the cold node count.
func TestExactWarmStartGapMode(t *testing.T) {
	in := microInput(t, 96, 32)
	ex := Exact{MaxBlocks: 10}
	opt := Options{Workers: 1, RelGap: 0.02}
	old, err := ex.SolveOpt(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	drifted := &Input{P: in.P, Hotness: driftHotness(in.Hotness, 0.1),
		EntryBytes: in.EntryBytes, Capacity: in.Capacity}
	cold, err := ex.SolveOpt(drifted, opt)
	if err != nil {
		t.Fatal(err)
	}
	wopt := opt
	wopt.WarmStart = old
	warm, err := ex.SolveOpt(drifted, wopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Validate(drifted); err != nil {
		t.Fatal(err)
	}
	if warm.SolveNodes*2 > cold.SolveNodes {
		t.Fatalf("warm gap-mode re-solve should halve the cold node count: warm %d vs cold %d",
			warm.SolveNodes, cold.SolveNodes)
	}
	t.Logf("gap mode: cold %d nodes, warm %d nodes (%.0f%%)",
		cold.SolveNodes, warm.SolveNodes, 100*float64(warm.SolveNodes)/float64(cold.SolveNodes))
}

// TestExactWarmStartStale: a warm placement from a mismatched instance is
// ignored, not an error.
func TestExactWarmStartStale(t *testing.T) {
	in := microInput(t, 24, 8)
	ex := Exact{MaxBlocks: 6}
	smaller := microInput(t, 12, 4)
	oldSmall, err := ex.SolveOpt(smaller, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ex.SolveOpt(in, Options{WarmStart: oldSmall})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(in); err != nil {
		t.Fatal(err)
	}
}

// TestSolveWith dispatches through the OptionedPolicy interface when
// available and falls back to plain Solve for approximation policies.
func TestSolveWith(t *testing.T) {
	in := microInput(t, 24, 8)
	pl, err := SolveWith(UGache{}, in, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Policy != "ugache" {
		t.Fatalf("fallback policy %q", pl.Policy)
	}
	pl, err = SolveWith(Exact{MaxBlocks: 6}, in, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Policy != "exact" || pl.SolveNodes == 0 {
		t.Fatalf("optioned dispatch failed: policy %q nodes %d", pl.Policy, pl.SolveNodes)
	}
}

// TestExactConcurrentSolves runs parallel-worker solves from several
// goroutines at once (meaningful under -race).
func TestExactConcurrentSolves(t *testing.T) {
	in := microInput(t, 16, 6)
	ex := Exact{MaxBlocks: 4}
	base, err := ex.SolveOpt(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl, err := ex.SolveOpt(in, Options{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if pl.LowerBound != base.LowerBound {
				t.Errorf("LowerBound %v != base %v", pl.LowerBound, base.LowerBound)
			}
		}()
	}
	wg.Wait()
}
