package solver

import (
	"bytes"
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/workload"
)

// microClusterInput is microInput's 2-GPU instance on one machine of an
// M-machine cluster: the remote-machine source class is enabled and the
// host column is pruned.
func microClusterInput(t testing.TB, n int, capacity int64, machines int) *Input {
	t.Helper()
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	net := platform.DefaultNetwork(machines)
	p, err := platform.New(platform.Config{
		Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16, N: 2,
		PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair, Network: &net,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := make(workload.Hotness, n)
	for e := 0; e < n; e++ {
		h[e] = math.Pow(float64(e+1), -1.2) * 1000
	}
	return &Input{P: p, Hotness: h, EntryBytes: 512, Capacity: []int64{capacity, capacity}}
}

// TestClusterCostModelBlend pins the blended network column: with the host
// column pruned, the network class prices the full host-path cost (every
// network-class byte lands in local DRAM and crosses local PCIe whichever
// machine served it) against the NIC share carrying the wire fraction.
func TestClusterCostModelBlend(t *testing.T) {
	in := microClusterInput(t, 24, 8, 4)
	p := in.P
	m := newCostModel(in)
	single := *in
	base := platform.ServerAConfig()
	base.N, base.PairBW = 2, [][]float64{{0, 50e9}, {50e9, 0}}
	sp, err := platform.New(base)
	if err != nil {
		t.Fatal(err)
	}
	single.P = sp
	ms := newCostModel(&single)
	host, net := int(p.Host()), int(p.Network())
	wire := 1 - 1/float64(p.Machines())
	for i := 0; i < p.N; i++ {
		if !math.IsInf(m.invEff[i][host], 1) || !math.IsInf(m.packCost[i][host], 1) {
			t.Fatalf("gpu %d: host column not pruned in cluster mode", i)
		}
		want := math.Max(ms.invEff[i][host], wire*float64(p.N)/p.Net.LinkBW)
		if got := m.invEff[i][net]; math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("gpu %d: blended invEff %g, want %g", i, got, want)
		}
		// The network tier must never be cheaper than the single-machine
		// host tier it replaces, and always dearer than local HBM.
		if m.invEff[i][net] < ms.invEff[i][host] {
			t.Fatalf("gpu %d: network tier cheaper than the host tier", i)
		}
		if m.packCost[i][net] != ms.packCost[i][host] {
			t.Fatalf("gpu %d: network packing %g != host packing %g", i, m.packCost[i][net], ms.packCost[i][host])
		}
		if m.invEff[i][net] <= m.invEff[i][i] {
			t.Fatalf("gpu %d: network tier not slower than local HBM", i)
		}
	}
}

// TestClusterSolveUsesNetworkFallback: on a cluster instance every policy
// output validates, never references the pruned host tier, and sends the
// uncached tail to the network class (visible in Stats).
func TestClusterSolveUsesNetworkFallback(t *testing.T) {
	in := microClusterInput(t, 4096, 256, 4)
	host := in.P.Host()
	for _, pol := range []Policy{UGache{}, UGacheGreedy{}, Replication{}, Partition{}, RepPart{Candidates: 9}} {
		pl := mustSolve(t, pol, in)
		if err := pl.Validate(in); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		for bi := range pl.Blocks {
			for _, src := range pl.Blocks[bi].Access {
				if src == host {
					t.Fatalf("%s: block %d reads the pruned host tier", pol.Name(), bi)
				}
			}
		}
		stats := pl.Stats(in.Hotness)
		for g, s := range stats {
			if s.Host != 0 {
				t.Fatalf("%s: gpu %d reports host mass %g on a cluster", pol.Name(), g, s.Host)
			}
			if s.Network <= 0 {
				t.Fatalf("%s: gpu %d reports no network mass with a %d-entry cache over %d entries",
					pol.Name(), g, in.Capacity[g], len(in.Hotness))
			}
		}
		for g, est := range pl.EstTimes {
			if est <= 0 || math.IsInf(est, 0) || math.IsNaN(est) {
				t.Fatalf("%s: gpu %d estimated time %g", pol.Name(), g, est)
			}
		}
	}
}

// TestClusterDeterminismAcrossWorkers is the multi-node acceptance
// criterion: with the remote-machine source class enabled, any worker count
// yields a byte-identical placement.
func TestClusterDeterminismAcrossWorkers(t *testing.T) {
	in := microClusterInput(t, 24, 8, 4)
	ex := Exact{MaxBlocks: 6}
	base, err := ex.SolveOpt(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(in); err != nil {
		t.Fatal(err)
	}
	var baseBuf bytes.Buffer
	if err := base.Save(&baseBuf); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		pl, err := ex.SolveOpt(in, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pl.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), baseBuf.Bytes()) {
			t.Fatalf("W=%d: cluster placement bytes differ from W=1", w)
		}
		if pl.LowerBound != base.LowerBound {
			t.Fatalf("W=%d: LowerBound %v != %v", w, pl.LowerBound, base.LowerBound)
		}
	}
}

// TestClusterPersistRoundTrip: Save/Load preserves Network access values
// (the loader admits SourceID gpus+1 on cluster placements).
func TestClusterPersistRoundTrip(t *testing.T) {
	in := microClusterInput(t, 512, 64, 2)
	pl := mustSolve(t, UGache{}, in)
	var buf bytes.Buffer
	if err := pl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(in); err != nil {
		t.Fatal(err)
	}
	net := in.P.Network()
	found := false
	for bi := range got.Blocks {
		for g, src := range got.Blocks[bi].Access {
			if src != pl.Blocks[bi].Access[g] {
				t.Fatalf("block %d gpu %d: access %d != saved %d", bi, g, src, pl.Blocks[bi].Access[g])
			}
			if src == net {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("round-trip instance never used the network tier; test is vacuous")
	}
}

// TestClusterReplicatesHarderThanSingleMachine: because the cluster's
// fallback tier is strictly slower than a single machine's host tier, the
// solver's modelled makespan on the clustered twin is at least the
// single-machine one — the replicate-vs-fetch trade-off only gets tighter.
func TestClusterReplicatesHarderThanSingleMachine(t *testing.T) {
	single := microInput(t, 4096, 256)
	cluster := microClusterInput(t, 4096, 256, 4)
	pls := mustSolve(t, UGache{}, single)
	plc := mustSolve(t, UGache{}, cluster)
	if ms, mc := maxF(pls.EstTimes), maxF(plc.EstTimes); mc < ms*(1-1e-9) {
		t.Fatalf("cluster makespan %g beats single-machine %g despite a slower fallback tier", mc, ms)
	}
}
