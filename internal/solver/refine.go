package solver

import "ugache/internal/platform"

// refine runs swap-based local search after the lazy-greedy construction:
// for each GPU, it repeatedly tries to evict the stored block with the
// smallest removal cost and reinvest the freed capacity in the insertion
// with the largest benefit. Pure greedy cannot undo an early placement that
// later turns out mediocre; a few swap rounds recover most of that loss on
// asymmetric platforms (the greedy path only runs where the exact LP does
// not fit).
func (st *gstate) refine(rounds int) {
	for round := 0; round < rounds; round++ {
		improved := false
		for g := 0; g < st.in.P.N; g++ {
			if st.trySwap(g) {
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// trySwap attempts one beneficial swap on GPU g; it reports whether a swap
// was applied.
func (st *gstate) trySwap(g int) bool {
	// Cheapest removals first: a few candidates with the lowest removal
	// cost per entry.
	type cand struct {
		block int
		cost  float64
	}
	var worst cand
	worstSet := false
	for bi := range st.blocks {
		if !st.blocks[bi].Store[g] {
			continue
		}
		cost := st.removalCost(bi, g)
		perEntry := cost / float64(st.blocks[bi].Entries())
		if !worstSet || perEntry < worst.cost {
			worst = cand{block: bi, cost: perEntry}
			worstSet = true
		}
	}
	if !worstSet {
		return false
	}
	removalCost := st.removalCost(worst.block, g)

	// Hypothetically remove, then search for the best insertion on g.
	undo := st.remove(worst.block, g)
	bestBlock, bestBenefit := -1, 0.0
	for bi := range st.blocks {
		if bi == worst.block {
			continue
		}
		if b := st.evalMove(bi, g); b > bestBenefit {
			bestBlock, bestBenefit = bi, b
		}
	}
	if bestBlock < 0 || bestBenefit <= removalCost*(1+1e-9) {
		undo()
		return false
	}
	st.apply(bestBlock, g)
	return true
}

// removalCost computes the weighted score increase of dropping block bi
// from GPU g (readers reroute to their next-best source), without mutating
// state.
func (st *gstate) removalCost(bi, g int) float64 {
	b := &st.blocks[bi]
	if !b.Store[g] {
		return 0
	}
	bytes := b.Mass() * float64(st.in.EntryBytes)
	cost := 0.0
	for i := 0; i < st.in.P.N; i++ {
		if int(b.Access[i]) != g {
			continue
		}
		alt := st.nextBestSource(i, bi, g)
		old := st.score[i]
		st.vol[i][g] -= bytes
		st.vol[i][alt] += bytes
		cost += st.w[i] * (st.scoreOf(i) - old)
		st.vol[i][alt] -= bytes
		st.vol[i][g] += bytes
	}
	return cost
}

// remove drops block bi from GPU g, rerouting its readers, and returns an
// undo closure restoring the exact prior state.
func (st *gstate) remove(bi, g int) (undo func()) {
	b := &st.blocks[bi]
	bytes := b.Mass() * float64(st.in.EntryBytes)
	prevAccess := append([]platform.SourceID(nil), b.Access...)
	var movedReaders []int
	b.Store[g] = false
	st.capLeft[g] += b.Entries()
	for i := 0; i < st.in.P.N; i++ {
		if int(b.Access[i]) != g {
			continue
		}
		alt := st.nextBestSource(i, bi, g)
		st.vol[i][g] -= bytes
		st.vol[i][alt] += bytes
		b.Access[i] = alt
		st.t[i] = st.timeOf(i)
		st.score[i] = st.scoreOf(i)
		movedReaders = append(movedReaders, i)
	}
	return func() {
		b.Store[g] = true
		st.capLeft[g] -= b.Entries()
		for _, i := range movedReaders {
			st.vol[i][b.Access[i]] -= bytes
			st.vol[i][g] += bytes
			b.Access[i] = prevAccess[i]
			st.t[i] = st.timeOf(i)
			st.score[i] = st.scoreOf(i)
		}
	}
}

// nextBestSource finds reader i's cheapest source for block bi excluding
// GPU `excluding`.
func (st *gstate) nextBestSource(i, bi, excluding int) platform.SourceID {
	b := &st.blocks[bi]
	best := st.fb
	bestCost := st.m.perByteCost(i, st.fb)
	for g := 0; g < st.in.P.N; g++ {
		if g == excluding || !b.Store[g] || (g != i && !st.in.P.Connected(i, g)) {
			continue
		}
		if cost := st.m.perByteCost(i, platform.SourceID(g)); cost < bestCost {
			best, bestCost = platform.SourceID(g), cost
		}
	}
	return best
}
