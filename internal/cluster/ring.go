// Package cluster implements the sharded serving front end's key routing:
// a seeded, bounded-movement consistent-hash ring over the embedding key
// space. Each node projects Vnodes points onto a 64-bit circle; a key is
// owned by the node whose point follows the key's hash. Because every
// point's position depends only on (seed, node, replica) — never on the
// node set — adding or removing a node moves only the keys whose nearest
// point changed: an expected K/N fraction, the classic consistent-hashing
// bound the rebalance tests pin.
//
// The ring is immutable after construction and safe for concurrent lookups.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the stock per-node virtual-point count. 160 points per
// node (the ketama convention) keeps the max/mean shard-size ratio within a
// few percent at the node counts we model.
const DefaultVnodes = 160

type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over n nodes.
type Ring struct {
	n      int
	seed   uint64
	points []point // sorted by (hash, node)
}

// mix is the splitmix64 finalizer — a cheap, high-quality 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash positions one (node, replica) virtual point. Independent of the
// node set, so surviving nodes' points never move on membership change.
func pointHash(seed uint64, node, replica int) uint64 {
	return mix(seed ^ mix(uint64(node)*0x9e3779b97f4a7c15+uint64(replica)+1))
}

// keyHash positions one embedding key on the circle.
func keyHash(seed uint64, key int64) uint64 {
	return mix(seed ^ (uint64(key) * 0xd1b54a32d192ed03))
}

// NewRing builds a ring over nodes 0..n-1 with vnodes points each (0 means
// DefaultVnodes). The seed makes distinct rings (e.g. test fixtures vs the
// live router) independent while keeping each fully deterministic.
func NewRing(n, vnodes int, seed uint64) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one node, got %d", n)
	}
	if vnodes == 0 {
		vnodes = DefaultVnodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes must be positive, got %d", vnodes)
	}
	r := &Ring{n: n, seed: seed, points: make([]point, 0, n*vnodes)}
	for node := 0; node < n; node++ {
		for rep := 0; rep < vnodes; rep++ {
			r.points = append(r.points, point{pointHash(seed, node, rep), node})
		}
	}
	// Tie-break equal hashes by node id so the order (and therefore every
	// Owner answer) is deterministic even in the astronomically unlikely
	// collision case.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// MustRing is NewRing for known-good parameters.
func MustRing(n, vnodes int, seed uint64) *Ring {
	r, err := NewRing(n, vnodes, seed)
	if err != nil {
		panic(err)
	}
	return r
}

// Nodes returns the ring's node count.
func (r *Ring) Nodes() int { return r.n }

// Owner returns the node owning key: the node of the first point at or
// after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key int64) int {
	h := keyHash(r.seed, key)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].node
}

// Split partitions keys into per-node sub-batches. A key the local
// predicate accepts is served by self regardless of ring ownership — the
// solver replicated it on every machine, so shipping it over the wire
// would only burn NIC bandwidth; everything else goes to its ring owner
// (which may also be self). subs is reused when it has capacity for n
// nodes; each sub-slice is truncated and refilled, so callers can hold one
// scratch [][]int64 per dispatcher.
func (r *Ring) Split(self int, keys []int64, local func(int64) bool, subs [][]int64) [][]int64 {
	if cap(subs) < r.n {
		subs = make([][]int64, r.n)
	}
	subs = subs[:r.n]
	for i := range subs {
		subs[i] = subs[i][:0]
	}
	for _, k := range keys {
		node := self
		if local == nil || !local(k) {
			node = r.Owner(k)
		}
		subs[node] = append(subs[node], k)
	}
	return subs
}
