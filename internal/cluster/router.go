// The cluster front end: a consistent-hash request router over N
// single-machine serving nodes. A lookup arrives at one node, splits into a
// local sub-lookup (keys the arrival node can serve from its own tiers) and
// per-peer sub-lookups (network-class keys owned by another machine's host
// shard), coalesces the cross-node legs per destination so many requests
// ride one wire dispatch, and reassembles the scattered results under a
// per-node deadline — a missing leg fails partial instead of stalling the
// whole lookup (DESIGN.md §6.9).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/core"
	"ugache/internal/flight"
	"ugache/internal/serve"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
)

// ErrPartial marks a lookup whose cross-node legs did not all return before
// the per-node deadline: the result carries every row that did arrive and
// counts the rest in Missing. Partial results are a first-class serving
// state under node slowness, not a fault — callers retry the missing keys
// or degrade.
var ErrPartial = errors.New("cluster: partial result, sub-lookup deadline expired")

// ErrClosed is returned by lookups that reach a closed front end.
var ErrClosed = errors.New("cluster: front closed")

// Node couples one machine's engine and serving front: the System solved on
// the clustered platform (network tier enabled, Owned predicate set to this
// node's ring shard) and the Server coalescing its local batches.
type Node struct {
	Sys *core.System
	Srv *serve.Server
}

// FrontConfig tunes the router.
type FrontConfig struct {
	// Seed keys the hash ring (both vnode points and key hashes); every
	// node of a deployment must use the same seed.
	Seed uint64
	// Vnodes is the ring's virtual-node count per node (0 = DefaultVnodes).
	Vnodes int
	// MaxSubKeys flushes a per-peer coalescing queue once this many keys are
	// pending for that destination (default 4096).
	MaxSubKeys int
	// MaxWait flushes a non-empty per-peer queue after this long even if it
	// is not full (default 200µs) — the wire-amortization knob: one
	// dispatch's RTT is shared by every sub-lookup coalesced into it.
	MaxWait time.Duration
	// Deadline bounds how long a lookup waits for its cross-node legs
	// (default 50ms). An expired leg fails partial (ErrPartial) rather than
	// stalling the caller behind a slow peer.
	Deadline time.Duration
	// Telemetry receives the router's metrics (cross-node key/byte totals,
	// dispatch counts, queue depths, partial-failure counters). Nil creates
	// a private registry.
	Telemetry *telemetry.Registry
	// Timeline, when non-nil, records per-node router tracks (ProcRouter):
	// dispatch spans and queue-depth counter series, one tid per node.
	Timeline *timeline.Recorder
	// Flight, when non-nil, receives one control-plane queue sample per
	// dispatch formation (Kind=queue, GPU=origin node, Seq=destination
	// node), so the watchdog's bundles show router backlog next to the
	// per-GPU admission samples.
	Flight *flight.Recorder
}

func (c FrontConfig) normalize() FrontConfig {
	if c.MaxSubKeys <= 0 {
		c.MaxSubKeys = 4096
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Microsecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	return c
}

// Result is what one cluster lookup gets back.
type Result struct {
	// Rows holds len(keys) rows in functional mode (row i belongs to keys[i]);
	// rows of keys lost to an expired leg stay zero. Nil in timing-only mode.
	Rows []byte
	// SimSeconds is the modelled critical path: the local leg's simulated
	// extraction time or the slowest remote leg (its batch extraction plus
	// one wire round trip), whichever is longer.
	SimSeconds float64
	// LocalKeys and RemoteKeys split the lookup's keys by serving side.
	LocalKeys, RemoteKeys int
	// Missing counts keys whose leg missed the deadline or failed.
	Missing int
	// Err is ErrPartial when Missing > 0, or the first hard error.
	Err error
}

// metrics is the router's telemetry bundle, sharded by origin node.
type routerMetrics struct {
	lookups        *telemetry.Counter
	localKeys      *telemetry.Counter
	remoteKeys     *telemetry.Counter
	crossBytes     *telemetry.Counter
	dispatches     *telemetry.Counter
	dispatchKeys   *telemetry.Counter
	partials       *telemetry.Counter
	missingKeys    *telemetry.Counter
	queueDepth     *telemetry.Gauge
	queueDepthPeak *telemetry.Gauge
}

func newRouterMetrics(reg *telemetry.Registry) *routerMetrics {
	return &routerMetrics{
		lookups:        reg.Counter("cluster_lookups_total", "cluster lookups routed"),
		localKeys:      reg.Counter("cluster_local_keys_total", "keys served on their arrival node"),
		remoteKeys:     reg.Counter("cluster_remote_keys_total", "keys routed to a peer node's host shard"),
		crossBytes:     reg.Counter("cluster_cross_node_bytes_total", "embedding bytes moved between nodes"),
		dispatches:     reg.Counter("cluster_dispatches_total", "coalesced cross-node dispatches sent"),
		dispatchKeys:   reg.Counter("cluster_dispatch_keys_total", "keys carried by cross-node dispatches"),
		partials:       reg.Counter("cluster_partial_lookups_total", "lookups that returned partial on an expired leg"),
		missingKeys:    reg.Counter("cluster_missing_keys_total", "keys lost to expired or failed legs"),
		queueDepth:     reg.Gauge("cluster_router_queue_depth_last", "pending keys observed at the last dispatch formation"),
		queueDepthPeak: reg.Gauge("cluster_router_queue_depth_peak", "peak pending keys observed at any dispatch formation"),
	}
}

// subCall is one origin lookup's share of a coalesced cross-node dispatch.
type subCall struct {
	keys []int64
	idx  []int // positions of keys in the caller's key slice
	done chan subResult
}

type subResult struct {
	rows []byte // this sub's rows, aligned with subCall.keys; nil timing-only
	sim  float64
	err  error
}

// dispatcher coalesces one origin node's sub-lookups toward one destination
// node: queued calls flush as a single Handle on the destination's server
// once MaxSubKeys are pending or MaxWait after the first arrival — so the
// wire round trip and the destination's batch formation are paid once per
// dispatch, not once per request.
type dispatcher struct {
	f            *Front
	origin, dest int
	calls        chan *subCall
	rr           atomic.Int64 // round-robin GPU pick on the destination
}

func (d *dispatcher) run() {
	defer d.f.wg.Done()
	cfg := d.f.cfg
	var pending []*subCall
	var pendingKeys int
	var timer *time.Timer
	var expire <-chan time.Time
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		keys := pendingKeys
		pending, pendingKeys = nil, 0
		if timer != nil {
			timer.Stop()
			timer, expire = nil, nil
		}
		d.f.observeDispatch(d.origin, d.dest, keys)
		d.f.wg.Add(1)
		go d.send(batch, keys)
	}
	for {
		select {
		case c, ok := <-d.calls:
			if !ok {
				flush()
				return
			}
			pending = append(pending, c)
			pendingKeys += len(c.keys)
			if pendingKeys >= cfg.MaxSubKeys {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(cfg.MaxWait)
				expire = timer.C
			}
		case <-expire:
			timer, expire = nil, nil
			flush()
		}
	}
}

// send performs one coalesced dispatch and scatters the destination's reply
// back to the coalesced callers.
func (d *dispatcher) send(batch []*subCall, keys int) {
	defer d.f.wg.Done()
	all := make([]int64, 0, keys)
	for _, c := range batch {
		all = append(all, c.keys...)
	}
	dst := d.f.nodes[d.dest]
	g := int(d.rr.Add(1)-1) % dst.Sys.P.N
	start := time.Now()
	res := <-dst.Srv.Handle(g, all)
	if d.f.tl != nil {
		sh := d.f.tl.Shard(d.origin % d.f.tl.Shards())
		ev := timeline.Event{Name: "dispatch", Cat: "router", Ph: timeline.PhSpan,
			PID: timeline.ProcRouter, TID: int32(d.origin),
			Start: d.f.tl.Since(start), Dur: time.Since(start).Seconds()}
		ev.AddArg("dest", float64(d.dest))
		ev.AddArg("keys", float64(keys))
		ev.AddArg("requests", float64(len(batch)))
		sh.Emit(&ev)
	}
	sim := res.SimSeconds + d.f.rtt
	eb := d.f.entryBytes
	d.f.met.crossBytes.Add(d.origin, int64(keys)*int64(eb))
	off := 0
	for _, c := range batch {
		sub := subResult{sim: sim, err: res.Err}
		if res.Err == nil && res.Rows != nil {
			sub.rows = res.Rows[off*eb : (off+len(c.keys))*eb]
		}
		off += len(c.keys)
		c.done <- sub
	}
}

// Front is the sharded serving front end: the hash ring plus one dispatcher
// per (origin, destination) node pair.
type Front struct {
	cfg        FrontConfig
	ring       *Ring
	nodes      []*Node
	out        [][]*dispatcher // out[origin][dest], nil on the diagonal
	met        *routerMetrics
	tel        *telemetry.Registry
	tl         *timeline.Recorder
	fl         *flight.Recorder
	entryBytes int
	rtt        float64 // one modelled wire round trip, seconds
	netSrc     int     // the platform's network SourceID as int

	// closeMu fences Lookup's dispatcher sends against Close: sends happen
	// under the read lock after checking closed, Close closes the channels
	// under the write lock, so a send can never race a close.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
	peak    atomic.Int64
}

// NewFront builds the router over the given nodes. Every node must serve
// the same clustered platform shape (same Machines count as len(nodes)).
// The front owns its dispatchers but not the nodes: Close stops routing,
// the caller closes each node's Server.
func NewFront(nodes []*Node, cfg FrontConfig) (*Front, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	for i, n := range nodes {
		if n == nil || n.Sys == nil || n.Srv == nil {
			return nil, fmt.Errorf("cluster: node %d incomplete", i)
		}
		if !n.Sys.P.HasNetwork() {
			return nil, fmt.Errorf("cluster: node %d platform has no network tier", i)
		}
		if m := n.Sys.P.Machines(); m != len(nodes) {
			return nil, fmt.Errorf("cluster: node %d platform models %d machines, front has %d", i, m, len(nodes))
		}
	}
	cfg = cfg.normalize()
	ring, err := NewRing(len(nodes), cfg.Vnodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry(len(nodes))
	}
	p := nodes[0].Sys.P
	f := &Front{
		cfg:        cfg,
		ring:       ring,
		nodes:      nodes,
		met:        newRouterMetrics(reg),
		tel:        reg,
		tl:         cfg.Timeline,
		fl:         cfg.Flight,
		entryBytes: nodes[0].Sys.Cache.EntryBytes,
		rtt:        2 * p.Net.LatencySec,
		netSrc:     int(p.Network()),
	}
	if f.tl != nil {
		f.tl.SetProcessName(timeline.ProcRouter, "router")
		for i := range nodes {
			f.tl.SetThreadName(timeline.ProcRouter, int32(i), fmt.Sprintf("node %d router", i))
		}
	}
	f.out = make([][]*dispatcher, len(nodes))
	for o := range nodes {
		f.out[o] = make([]*dispatcher, len(nodes))
		for dst := range nodes {
			if dst == o {
				continue
			}
			d := &dispatcher{f: f, origin: o, dest: dst,
				calls: make(chan *subCall, 4*len(nodes))}
			f.out[o][dst] = d
			f.wg.Add(1)
			go d.run()
		}
	}
	return f, nil
}

// Ring exposes the front's hash ring (shard-ownership queries, Owned
// predicates for the nodes' engines).
func (f *Front) Ring() *Ring { return f.ring }

// Metrics returns the router's telemetry registry.
func (f *Front) Metrics() *telemetry.Registry { return f.tel }

// observeDispatch records one dispatch formation across telemetry, the
// timeline counter track, and the flight recorder's control ring.
func (f *Front) observeDispatch(origin, dest, keys int) {
	f.met.dispatches.Add(origin, 1)
	f.met.dispatchKeys.Add(origin, int64(keys))
	f.met.queueDepth.Set(float64(keys))
	for {
		old := f.peak.Load()
		if int64(keys) <= old {
			break
		}
		if f.peak.CompareAndSwap(old, int64(keys)) {
			f.met.queueDepthPeak.Set(float64(keys))
			break
		}
	}
	if f.tl != nil {
		sh := f.tl.Shard(origin % f.tl.Shards())
		ev := timeline.Event{Name: "router-queue", Cat: "router", Ph: timeline.PhCounter,
			PID: timeline.ProcRouter, TID: int32(origin), Start: f.tl.Now()}
		ev.AddArg("pending_keys", float64(keys))
		sh.Emit(&ev)
	}
	if f.fl != nil {
		e := flight.Event{Kind: flight.KindQueue, GPU: int32(origin),
			Seq: int64(dest), UnixNanos: time.Now().UnixNano()}
		e.V[flight.QueueDepth] = float64(keys)
		f.fl.RecordControl(&e)
	}
}

// Lookup routes one request that arrived at node for GPU gpu: keys the
// arrival node can serve from its own tiers (anything the placement does not
// classify as network, plus network-class keys this node's host shard owns)
// go to the local server; the rest scatter to their ring owners through the
// coalescing dispatchers and gather back under the deadline.
func (f *Front) Lookup(node, gpu int, keys []int64) Result {
	if node < 0 || node >= len(f.nodes) {
		return Result{Err: fmt.Errorf("cluster: bad node %d", node)}
	}
	n := f.nodes[node]
	pl := n.Sys.Placement()
	// Split by serving side, preserving each key's caller position for the
	// gather.
	var localKeys []int64
	var localIdx []int
	var remote map[int]*subCall
	for i, k := range keys {
		local := int(pl.SourceOf(gpu, k)) != f.netSrc
		owner := node
		if !local {
			owner = f.ring.Owner(k)
			local = owner == node
		}
		if local {
			localKeys = append(localKeys, k)
			localIdx = append(localIdx, i)
			continue
		}
		if remote == nil {
			remote = make(map[int]*subCall, len(f.nodes)-1)
		}
		c := remote[owner]
		if c == nil {
			c = &subCall{done: make(chan subResult, 1)}
			remote[owner] = c
		}
		c.keys = append(c.keys, k)
		c.idx = append(c.idx, i)
	}
	f.met.lookups.Add(node, 1)
	f.met.localKeys.Add(node, int64(len(localKeys)))
	f.met.remoteKeys.Add(node, int64(len(keys)-len(localKeys)))

	// Scatter: remote legs first (they ride the coalescers), then the local
	// leg on this node's own server. The read lock fences the channel sends
	// against Close.
	if remote != nil {
		f.closeMu.RLock()
		if f.closed {
			f.closeMu.RUnlock()
			return Result{Err: ErrClosed}
		}
		for owner, c := range remote {
			f.out[node][owner].calls <- c
		}
		f.closeMu.RUnlock()
	}
	var localCh <-chan serve.Result
	if len(localKeys) > 0 {
		localCh = n.Srv.Handle(gpu, localKeys)
	}

	out := Result{LocalKeys: len(localKeys), RemoteKeys: len(keys) - len(localKeys)}
	eb := f.entryBytes
	var rows []byte
	scatterRows := func(sub []byte, idx []int) {
		if sub == nil {
			return
		}
		if rows == nil {
			rows = make([]byte, len(keys)*eb)
		}
		for j, i := range idx {
			copy(rows[i*eb:(i+1)*eb], sub[j*eb:(j+1)*eb])
		}
	}

	// Gather under the per-node deadline: the local leg is waited on
	// unconditionally (its server's own admission bounds it); each remote
	// leg that has not answered when the deadline fires is counted missing,
	// never awaited.
	if localCh != nil {
		res := <-localCh
		if res.Err != nil {
			out.Missing += len(localKeys)
			if out.Err == nil {
				out.Err = res.Err
			}
		} else {
			if res.SimSeconds > out.SimSeconds {
				out.SimSeconds = res.SimSeconds
			}
			scatterRows(res.Rows, localIdx)
		}
	}
	if remote != nil {
		deadline := time.NewTimer(f.cfg.Deadline)
		defer deadline.Stop()
		expired := false
		for _, c := range remote {
			if expired {
				select {
				case sub := <-c.done:
					f.gatherLeg(&out, sub, c, scatterRows)
				default:
					out.Missing += len(c.keys)
				}
				continue
			}
			select {
			case sub := <-c.done:
				f.gatherLeg(&out, sub, c, scatterRows)
			case <-deadline.C:
				expired = true
				out.Missing += len(c.keys)
			}
		}
	}
	if out.Missing > 0 {
		f.met.partials.Add(node, 1)
		f.met.missingKeys.Add(node, int64(out.Missing))
		if out.Err == nil {
			out.Err = ErrPartial
		}
	}
	out.Rows = rows
	return out
}

func (f *Front) gatherLeg(out *Result, sub subResult, c *subCall, scatter func([]byte, []int)) {
	if sub.err != nil {
		out.Missing += len(c.keys)
		if out.Err == nil {
			out.Err = sub.err
		}
		return
	}
	if sub.sim > out.SimSeconds {
		out.SimSeconds = sub.sim
	}
	scatter(sub.rows, c.idx)
}

// Close stops the dispatchers after flushing their queues. In-flight
// lookups complete; new ones get ErrClosed. The nodes' servers stay up —
// the caller owns them.
func (f *Front) Close() {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return
	}
	f.closed = true
	f.closeMu.Unlock()
	for _, row := range f.out {
		for _, d := range row {
			if d != nil {
				close(d.calls)
			}
		}
	}
	f.wg.Wait()
}
