package cluster

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"ugache/internal/core"
	"ugache/internal/emb"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/workload"
)

// buildFront assembles an in-process N-node cluster: each node solves the
// same clustered platform with its own ring-shard Owned predicate, serves
// it behind a serve.Server, and the Front routes across them. Returns the
// front, the shared backing table, and a cleanup.
func buildFront(t *testing.T, nodes, entries int, cfg FrontConfig) (*Front, *emb.Table) {
	t.Helper()
	table, err := emb.NewMaterialized("t", int64(entries), 8, emb.Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The Owned predicates need the ring before the Front exists; rings are
	// deterministic in (n, vnodes, seed), so building a twin is exact.
	ring := MustRing(nodes, cfg.Vnodes, cfg.Seed)
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	net := platform.DefaultNetwork(nodes)
	r := rng.New(11)
	perm := r.Perm(entries)
	h := make(workload.Hotness, entries)
	for rank := 0; rank < entries; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -1.1)
	}
	ns := make([]*Node, nodes)
	for i := 0; i < nodes; i++ {
		p, err := platform.New(platform.Config{
			Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16, N: 2,
			PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair, Network: &net,
		})
		if err != nil {
			t.Fatal(err)
		}
		self := i
		sys, err := core.Build(core.Config{
			Platform:   p,
			Hotness:    h,
			EntryBytes: table.EntryBytes(),
			CacheRatio: 0.1,
			Source:     table,
			Owned:      func(k int64) bool { return ring.Owner(k) == self },
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(sys, serve.Config{MaxWait: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &Node{Sys: sys, Srv: srv}
	}
	f, err := NewFront(ns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		f.Close()
		for _, n := range ns {
			n.Srv.Close()
		}
	})
	return f, table
}

// TestFrontFunctionalRoundTrip: rows routed across the cluster are byte-
// identical to the backing table, and cross-node traffic actually happened.
func TestFrontFunctionalRoundTrip(t *testing.T) {
	const entries = 3000
	f, table := buildFront(t, 2, entries, FrontConfig{Seed: 1, MaxWait: 100 * time.Microsecond})
	eb := table.EntryBytes()
	z, _ := workload.NewZipf(entries, 1.05)
	r := rng.New(3)
	want := make([]byte, eb)
	for iter := 0; iter < 20; iter++ {
		keys := make([]int64, 64)
		for j := range keys {
			keys[j] = z.Sample(r)
		}
		node := iter % 2
		res := f.Lookup(node, iter%2, keys)
		if res.Err != nil {
			t.Fatalf("iter %d: %v", iter, res.Err)
		}
		if res.Missing != 0 {
			t.Fatalf("iter %d: %d missing without a deadline squeeze", iter, res.Missing)
		}
		if res.SimSeconds <= 0 {
			t.Fatalf("iter %d: sim %g", iter, res.SimSeconds)
		}
		if res.LocalKeys+res.RemoteKeys != len(keys) {
			t.Fatalf("iter %d: split %d+%d != %d", iter, res.LocalKeys, res.RemoteKeys, len(keys))
		}
		for j, k := range keys {
			if err := table.ReadRow(k, want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Rows[j*eb:(j+1)*eb], want) {
				t.Fatalf("iter %d key %d: row mismatch", iter, k)
			}
		}
	}
	if f.met.remoteKeys.Value() == 0 {
		t.Fatal("no cross-node keys: routing test is vacuous")
	}
	if f.met.crossBytes.Value() == 0 || f.met.dispatches.Value() == 0 {
		t.Fatal("cross-node byte/dispatch counters did not move")
	}
}

// TestFrontCoalescing: concurrent lookups from one node toward the same
// peer share dispatches — the wire is paid per coalesced batch, not per
// lookup.
func TestFrontCoalescing(t *testing.T) {
	const entries = 3000
	f, _ := buildFront(t, 2, entries, FrontConfig{Seed: 1, MaxWait: 2 * time.Millisecond})
	const clients = 16
	var wg sync.WaitGroup
	var remoteLegs int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			z, _ := workload.NewZipf(entries, 1.05)
			r := rng.New(uint64(c + 1))
			keys := make([]int64, 48)
			for j := range keys {
				keys[j] = z.Sample(r)
			}
			res := f.Lookup(0, 0, keys)
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
			if res.RemoteKeys > 0 {
				mu.Lock()
				remoteLegs++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if remoteLegs < 2 {
		t.Skip("workload produced <2 remote legs; nothing to coalesce")
	}
	if d := f.met.dispatches.Value(); d >= remoteLegs {
		t.Fatalf("%d dispatches for %d remote legs: no coalescing", d, remoteLegs)
	}
}

// TestFrontPartialDeadline: a deadline shorter than the coalescing window
// fails the remote leg partial — local rows still arrive, missing keys are
// counted, and the front keeps serving afterwards.
func TestFrontPartialDeadline(t *testing.T) {
	const entries = 3000
	f, table := buildFront(t, 2, entries, FrontConfig{
		Seed: 1, MaxWait: 20 * time.Millisecond, Deadline: time.Nanosecond,
	})
	eb := table.EntryBytes()
	z, _ := workload.NewZipf(entries, 1.05)
	r := rng.New(5)
	var keys []int64
	for len(keys) < 256 {
		keys = append(keys, z.Sample(r))
	}
	res := f.Lookup(0, 0, keys)
	if res.RemoteKeys == 0 {
		t.Skip("workload produced no remote keys")
	}
	if res.Err != ErrPartial {
		t.Fatalf("err %v, want ErrPartial", res.Err)
	}
	if res.Missing == 0 || res.Missing > res.RemoteKeys {
		t.Fatalf("missing %d of %d remote keys", res.Missing, res.RemoteKeys)
	}
	if f.met.partials.Value() == 0 || f.met.missingKeys.Value() == 0 {
		t.Fatal("partial-failure counters did not move")
	}
	// Local rows must still be present and correct.
	want := make([]byte, eb)
	checked := 0
	for j, k := range keys {
		if int(f.nodes[0].Sys.Placement().SourceOf(0, k)) == f.netSrc && f.ring.Owner(k) != 0 {
			continue // a remote key; may be missing
		}
		if err := table.ReadRow(k, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Rows[j*eb:(j+1)*eb], want) {
			t.Fatalf("local key %d: row mismatch in partial result", k)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no local keys to check")
	}
	// The expired leg must not wedge the dispatchers.
	res2 := f.Lookup(1, 0, keys[:32])
	if res2.Err != nil && res2.Err != ErrPartial {
		t.Fatalf("follow-up lookup: %v", res2.Err)
	}
}

// TestFrontClose: lookups with cross-node legs fail fast after Close, and
// Close is idempotent.
func TestFrontClose(t *testing.T) {
	const entries = 2000
	f, _ := buildFront(t, 2, entries, FrontConfig{Seed: 1})
	f.Close()
	f.Close()
	z, _ := workload.NewZipf(entries, 1.05)
	r := rng.New(9)
	var keys []int64
	for len(keys) < 256 {
		keys = append(keys, z.Sample(r))
	}
	res := f.Lookup(0, 0, keys)
	if res.Err != ErrClosed && res.Err == nil {
		t.Fatalf("expected ErrClosed on a routed lookup, got %v", res.Err)
	}
}
