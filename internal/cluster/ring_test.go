package cluster

import "testing"

// TestRingDeterministic: two rings built with identical parameters answer
// identically for every key — there is no hidden global state.
func TestRingDeterministic(t *testing.T) {
	a := MustRing(5, 0, 42)
	b := MustRing(5, 0, 42)
	for k := int64(0); k < 50_000; k++ {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner %d vs %d across identical rings", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingGolden pins the shard assignment for a fixed seed. Any change to
// the hash functions, the point layout, or the tie-break silently reshuffles
// every deployed shard map; this test makes that a loud diff instead.
func TestRingGolden(t *testing.T) {
	r := MustRing(4, 0, 0xC0FFEE)
	want := []int{
		2, 0, 0, 3, 1, 3, 2, 0, 1, 3, 3, 3, 0, 2, 2, 0,
		0, 3, 3, 1, 3, 3, 0, 3, 1, 3, 2, 1, 1, 2, 3, 2,
	}
	for k, w := range want {
		if got := r.Owner(int64(k)); got != w {
			t.Fatalf("golden drift: Owner(%d) = %d, want %d", k, got, w)
		}
	}
}

// TestRingBalance: with DefaultVnodes the shard sizes stay within a modest
// factor of the mean (the reason for vnodes in the first place).
func TestRingBalance(t *testing.T) {
	const keys = 100_000
	for _, n := range []int{2, 4, 8} {
		r := MustRing(n, 0, 7)
		counts := make([]int, n)
		for k := int64(0); k < keys; k++ {
			counts[r.Owner(k)]++
		}
		mean := float64(keys) / float64(n)
		for node, c := range counts {
			if ratio := float64(c) / mean; ratio < 0.7 || ratio > 1.3 {
				t.Fatalf("n=%d node %d holds %d keys (%.2f× mean)", n, node, c, ratio)
			}
		}
	}
}

// TestRingBoundedMovement: growing the ring from n to n+1 nodes moves at
// most ~K/(n+1) keys (the consistent-hashing contract), and every moved key
// moves TO the new node — surviving shards never trade keys among
// themselves. Removal is the mirror image by symmetry (same point set).
func TestRingBoundedMovement(t *testing.T) {
	const keys = 200_000
	for _, n := range []int{2, 4, 8} {
		old := MustRing(n, 0, 99)
		grown := MustRing(n+1, 0, 99)
		moved := 0
		for k := int64(0); k < keys; k++ {
			was, is := old.Owner(k), grown.Owner(k)
			if was == is {
				continue
			}
			if is != n {
				t.Fatalf("n=%d→%d: key %d moved %d→%d, not to the new node", n, n+1, k, was, is)
			}
			moved++
		}
		// Expected movement is keys/(n+1); allow 30% slack for vnode
		// placement variance.
		bound := int(1.3 * float64(keys) / float64(n+1))
		if moved > bound {
			t.Fatalf("n=%d→%d: moved %d keys, bound %d", n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Fatalf("n=%d→%d: no keys moved to the new node", n, n+1)
		}
	}
}

// TestRingSplit: the local predicate overrides ring ownership, everything
// else lands on its owner, and the scratch slices are reused.
func TestRingSplit(t *testing.T) {
	r := MustRing(4, 0, 0xC0FFEE)
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i)
	}
	local := func(k int64) bool { return k%3 == 0 }
	subs := r.Split(1, keys, local, nil)
	if len(subs) != 4 {
		t.Fatalf("Split returned %d sub-batches, want 4", len(subs))
	}
	total := 0
	for node, sub := range subs {
		total += len(sub)
		for _, k := range sub {
			switch {
			case local(k):
				if node != 1 {
					t.Fatalf("local key %d routed to node %d, not self", k, node)
				}
			case r.Owner(k) != node:
				t.Fatalf("key %d on node %d, owner is %d", k, node, r.Owner(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("Split kept %d of %d keys", total, len(keys))
	}
	// Reuse: the returned scratch must be accepted and refilled in place.
	again := r.Split(1, keys[:100], nil, subs)
	total = 0
	for _, sub := range again {
		total += len(sub)
	}
	if total != 100 {
		t.Fatalf("reused Split kept %d of 100 keys", total)
	}
}
