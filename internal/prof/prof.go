// Package prof wires the conventional -cpuprofile / -memprofile flags into
// the repository's command-line tools, so the hot-path work of the serving
// and benchmark binaries can be inspected with `go tool pprof` without
// rebuilding them as tests.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two flag values (either may be
// empty). It returns a stop function that must run before the process
// exits: it stops the CPU profile and writes the heap profile. Callers that
// exit through os.Exit must call stop explicitly first — a deferred call
// never runs.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
