// Package prof wires the conventional -cpuprofile / -memprofile flags into
// the repository's command-line tools, so the hot-path work of the serving
// and benchmark binaries can be inspected with `go tool pprof` without
// rebuilding them as tests.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config selects which profiles to collect. Zero fields are off, so the
// zero value is a no-op Start.
type Config struct {
	// CPUProfile and MemProfile are the conventional output paths (the CPU
	// profile runs for the process lifetime; the heap profile is written at
	// stop time after a GC).
	CPUProfile string
	MemProfile string
	// BlockProfileRate, when > 0, is passed to runtime.SetBlockProfileRate
	// for the process lifetime (nanoseconds of blocking per sampled event;
	// 1 samples everything). Needed to see where admission-ring waiters and
	// channel parks spend their time.
	BlockProfileRate int
	// MutexProfileFraction, when > 0, is passed to
	// runtime.SetMutexProfileFraction (sample 1/n of contended mutex
	// events) — the knob that makes contention on the flight control ring
	// and staging arenas inspectable.
	MutexProfileFraction int
	// BlockProfile and MutexProfile are output paths for the corresponding
	// profiles, written at stop time. Setting a path without its rate gets
	// an empty profile; StartWith raises a zero rate to a useful default
	// when only the path was given.
	BlockProfile string
	MutexProfile string
}

// Start begins profiling according to the two flag values (either may be
// empty). It returns a stop function that must run before the process
// exits: it stops the CPU profile and writes the heap profile. Callers that
// exit through os.Exit must call stop explicitly first — a deferred call
// never runs.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartWith(Config{CPUProfile: cpuPath, MemProfile: memPath})
}

// StartWith is Start with the full profile set: CPU, heap, and the runtime
// block/mutex contention profiles. The returned stop function stops the CPU
// profile, writes the requested dump files, and resets the block/mutex
// sampling rates it set.
func StartWith(cfg Config) (stop func() error, err error) {
	if cfg.BlockProfile != "" && cfg.BlockProfileRate <= 0 {
		cfg.BlockProfileRate = 1
	}
	if cfg.MutexProfile != "" && cfg.MutexProfileFraction <= 0 {
		cfg.MutexProfileFraction = 1
	}
	var cpuFile *os.File
	if cfg.CPUProfile != "" {
		cpuFile, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if cfg.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockProfileRate)
	}
	if cfg.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexProfileFraction)
	}
	writeLookup := func(name, path string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s profile: %w", name, err)
		}
		defer f.Close()
		p := pprof.Lookup(name)
		if p == nil {
			return fmt.Errorf("%s profile: unknown runtime profile", name)
		}
		if err := p.WriteTo(f, 0); err != nil {
			return fmt.Errorf("%s profile: %w", name, err)
		}
		return nil
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if cfg.MemProfile != "" {
			f, err := os.Create(cfg.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		if err := writeLookup("block", cfg.BlockProfile); err != nil {
			return err
		}
		if err := writeLookup("mutex", cfg.MutexProfile); err != nil {
			return err
		}
		if cfg.BlockProfileRate > 0 {
			runtime.SetBlockProfileRate(0)
		}
		if cfg.MutexProfileFraction > 0 {
			runtime.SetMutexProfileFraction(0)
		}
		return nil
	}, nil
}
