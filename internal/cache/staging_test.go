package cache

import (
	"bytes"
	"sync"
	"testing"
)

// stagingRow builds the deterministic row pattern commits write for a key,
// so consumers can verify any returned row against the key alone.
func stagingRow(key int64, eb int) []byte {
	row := make([]byte, eb)
	for i := range row {
		row[i] = byte(uint64(key)*31 + uint64(i))
	}
	return row
}

func TestStagingCommitConsume(t *testing.T) {
	const eb = 16
	a, err := NewStaging(8, eb, true)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{3, 7, 11}
	rows := make([]byte, 0, len(keys)*eb)
	for _, k := range keys {
		rows = append(rows, stagingRow(k, eb)...)
	}
	if err := a.Commit(keys, rows, 1, 0); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len %d, want 3", a.Len())
	}

	lookup := []int64{7, 5, 3}
	got := make([]byte, len(lookup)*eb)
	hit := make([]bool, len(lookup))
	hits, staleHits, maxStale := a.Consume(lookup, 0, 0, 1, got, hit)
	if hits != 2 || staleHits != 0 || maxStale != 0 {
		t.Fatalf("hits=%d staleHits=%d maxStale=%d, want 2,0,0", hits, staleHits, maxStale)
	}
	if !hit[0] || hit[1] || !hit[2] {
		t.Fatalf("hit mask %v", hit)
	}
	for i, k := range lookup {
		if !hit[i] {
			continue
		}
		if !bytes.Equal(got[i*eb:(i+1)*eb], stagingRow(k, eb)) {
			t.Fatalf("key %d: wrong row bytes", k)
		}
	}
}

func TestStagingRingEviction(t *testing.T) {
	a, err := NewStaging(4, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 10; k++ {
		if err := a.Commit([]int64{k}, nil, 1, k); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Len %d, want capacity 4", a.Len())
	}
	committed, evicted := a.Stats()
	if committed != 10 || evicted != 6 {
		t.Fatalf("committed=%d evicted=%d, want 10,6", committed, evicted)
	}
	// Only the last 4 keys survive.
	for k := int64(0); k < 10; k++ {
		want := k >= 6
		if got := a.Resident(k, 10, 100, 1); got != want {
			t.Fatalf("key %d resident=%v, want %v", k, got, want)
		}
	}
}

// TestStagingStaleness pins the bounded-staleness contract: same-version
// rows are always servable; rows from an outgoing version only within S
// batches of their commit stamp, and with S=0 they die with their snapshot.
func TestStagingStaleness(t *testing.T) {
	a, err := NewStaging(8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Commit([]int64{1}, nil, 1, 10); err != nil {
		t.Fatal(err)
	}
	hit := make([]bool, 1)

	// Same version: servable regardless of age.
	if hits, _, _ := a.Consume([]int64{1}, 500, 0, 1, nil, hit); hits != 1 {
		t.Fatal("same-version row not servable")
	}
	// Version bumped, S=0: dead.
	if hits, _, _ := a.Consume([]int64{1}, 10, 0, 2, nil, hit); hits != 0 {
		t.Fatal("S=0 served a row from an outgoing version")
	}
	// Version bumped, S=3, staleness 2: servable and counted stale.
	hits, staleHits, maxStale := a.Consume([]int64{1}, 12, 3, 2, nil, hit)
	if hits != 1 || staleHits != 1 || maxStale != 2 {
		t.Fatalf("hits=%d staleHits=%d maxStale=%d, want 1,1,2", hits, staleHits, maxStale)
	}
	// Version bumped, S=3, staleness 4: expired.
	if hits, _, _ := a.Consume([]int64{1}, 14, 3, 2, nil, hit); hits != 0 {
		t.Fatal("row served beyond the staleness window")
	}
}

// TestStagingLifecycleRace is the staging-arena lifecycle property under
// -race: prefetch completions (Commit) recycling ring slots race consumers
// (Consume) and a refresh-style version bump, and no consumer may ever
// observe a freed or half-overwritten row — every hit row must be exactly
// the committed pattern for its key.
func TestStagingLifecycleRace(t *testing.T) {
	const (
		eb      = 32
		slots   = 64 // small ring so commits constantly recycle live slots
		keys    = 512
		rounds  = 300
		readers = 4
	)
	a, err := NewStaging(slots, eb, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: commits sweeping key windows, bumping the version every few
	// rounds the way successive Refreshes would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		batch := make([]int64, 16)
		rows := make([]byte, len(batch)*eb)
		for r := 0; r < rounds; r++ {
			for i := range batch {
				k := int64((r*7 + i*13) % keys)
				batch[i] = k
				copy(rows[i*eb:], stagingRow(k, eb))
			}
			version := uint64(1 + r/50)
			if err := a.Commit(batch, rows, version, int64(r)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lookup := make([]int64, 8)
			got := make([]byte, len(lookup)*eb)
			hit := make([]bool, len(lookup))
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := range lookup {
					lookup[i] = int64((r*5 + i*17 + w) % keys)
				}
				// A huge staleness window keeps every resident row
				// servable across the writer's version bumps — the
				// adversarial case for use-after-recycle.
				a.Consume(lookup, int64(r), 1<<30, 1, got, hit)
				for i, k := range lookup {
					if !hit[i] {
						continue
					}
					if !bytes.Equal(got[i*eb:(i+1)*eb], stagingRow(k, eb)) {
						t.Errorf("reader %d: key %d returned foreign row bytes", w, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
