package cache

import (
	"bytes"
	"math"
	"testing"

	"ugache/internal/emb"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/workload"
)

func testPlacement(t *testing.T, p *platform.Platform, n int, ratio float64) (*solver.Placement, *solver.Input) {
	t.Helper()
	r := rng.New(9)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -1.1)
	}
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(float64(n) * ratio)
	}
	in := &solver.Input{P: p, Hotness: h, EntryBytes: 64, Capacity: caps}
	pl, err := (solver.UGache{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	return pl, in
}

func TestFillAndLocate(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 4000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	// Every entry of every stored block must be locatable, and Locate must
	// agree with the placement.
	for e := int64(0); e < 4000; e += 7 {
		src, loc, err := sys.Locate(0, e)
		if err != nil {
			t.Fatal(err)
		}
		if src != pl.SourceOf(0, e) {
			t.Fatalf("Locate source %d, placement %d", src, pl.SourceOf(0, e))
		}
		if src != p.Host() && loc.GPU != int32(src) {
			t.Fatalf("location GPU %d, source %d", loc.GPU, src)
		}
	}
	if _, _, err := sys.Locate(99, 0); err == nil {
		t.Fatal("bad gpu accepted")
	}
	if _, _, err := sys.Locate(0, -1); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestFunctionalGatherMatchesTable(t *testing.T) {
	p := platform.ServerA()
	pl, in := testPlacement(t, p, 2000, 0.15)
	table, err := emb.NewMaterialized("t", 2000, 16, emb.Float32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity, Source: table})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := workload.NewZipf(2000, 1.1)
	r := rng.New(3)
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = z.Sample(r)
	}
	out := make([]byte, len(keys)*table.EntryBytes())
	for dst := 0; dst < p.N; dst++ {
		if err := sys.Gather(dst, keys, out); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, table.EntryBytes())
		for i, k := range keys {
			table.ReadRow(k, want)
			got := out[i*table.EntryBytes() : (i+1)*table.EntryBytes()]
			if !bytes.Equal(got, want) {
				t.Fatalf("dst %d key %d: gathered row differs", dst, k)
			}
		}
	}
}

func TestGatherRequiresFunctionalMode(t *testing.T) {
	p := platform.ServerA()
	pl, in := testPlacement(t, p, 1000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Gather(0, []int64{1}, make([]byte, 64)); err == nil {
		t.Fatal("size-only gather accepted")
	}
}

func TestHitCountsMatchPlacementStats(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 4000, 0.08)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, 0, 4000)
	for e := int64(0); e < 4000; e++ {
		keys = append(keys, e)
	}
	local, remote, host, err := sys.HitCounts(2, keys)
	if err != nil {
		t.Fatal(err)
	}
	if local+remote+host != 4000 {
		t.Fatal("counts do not sum")
	}
	if local == 0 || host == 0 {
		t.Fatalf("degenerate split %d/%d/%d", local, remote, host)
	}
}

func TestFillValidation(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 1000, 0.1)
	if _, err := Fill(nil, pl, FillOptions{CapacityEntries: in.Capacity}); err == nil {
		t.Fatal("nil platform accepted")
	}
	if _, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity[:3]}); err == nil {
		t.Fatal("wrong capacity arity accepted")
	}
	small := make([]int64, p.N)
	if _, err := Fill(p, pl, FillOptions{CapacityEntries: small}); err == nil {
		t.Fatal("undersized capacity accepted")
	}
}

func TestHotnessSampler(t *testing.T) {
	s := NewHotnessSampler(10, 2)
	s.Observe([]int64{1, 1, 2}) // recorded
	s.Observe([]int64{3})       // skipped
	s.Observe([]int64{1})       // recorded
	if s.Batches() != 2 {
		t.Fatalf("sampled %d", s.Batches())
	}
	h, err := s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	// Presence counting: the duplicate 1 in the first batch counts once.
	if h[1] != 1 || h[2] != 0.5 || h[3] != 0 {
		t.Fatalf("hotness %v", h[:4])
	}
	empty := NewHotnessSampler(10, 1)
	if _, err := empty.Hotness(); err == nil {
		t.Fatal("empty sampler accepted")
	}
}

func TestRefresh(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 4000, 0.1)
	table, err := emb.NewMaterialized("t", 4000, 16, emb.Float32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity, Source: table})
	if err != nil {
		t.Fatal(err)
	}

	// New hotness: reverse the popularity so the diff is large.
	h2 := make(workload.Hotness, 4000)
	for i := range h2 {
		h2[i] = in.Hotness[4000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 200
	cfg.UpdateBandwidth = 16 * 200 / 0.050 // 50 ms per update batch
	base := 0.002
	rep, err := sys.Refresh(pl2, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictedEntries == 0 || rep.InsertedEntries == 0 {
		t.Fatalf("no diff: %+v", rep)
	}
	if rep.Duration <= cfg.SolveSeconds {
		t.Fatalf("duration %g too small", rep.Duration)
	}
	// Impact bounded: never above UpdateImpact, mean below ~12%.
	for _, st := range rep.Timeline {
		if st.IterTime > base*cfg.UpdateImpact+1e-12 {
			t.Fatalf("impact exceeded: %g", st.IterTime)
		}
		if st.IterTime < base-1e-12 {
			t.Fatalf("iteration faster than base: %g", st.IterTime)
		}
	}
	if rep.MeanImpact <= 0 || rep.MeanImpact > 0.15 {
		t.Fatalf("mean impact %g", rep.MeanImpact)
	}
	// Steady state outside the refresh window.
	if rep.Timeline[0].IterTime != base {
		t.Fatal("pre-refresh sample not at base")
	}

	// The system now serves the new placement, and gathers still match.
	if cur := sys.Placement(); cur != pl2 && cur.Policy == "" {
		t.Fatal("placement not switched")
	}
	keys := []int64{0, 1, 2, 3999}
	out := make([]byte, len(keys)*table.EntryBytes())
	if err := sys.Gather(0, keys, out); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, table.EntryBytes())
	for i, k := range keys {
		table.ReadRow(k, want)
		if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
			t.Fatalf("post-refresh gather wrong for key %d", k)
		}
	}
}

func TestRefreshValidation(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 1000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Refresh(nil, 1, DefaultRefreshConfig()); err == nil {
		t.Fatal("nil placement accepted")
	}
	if _, err := sys.Refresh(pl, 0, DefaultRefreshConfig()); err == nil {
		t.Fatal("zero base time accepted")
	}
	bad := DefaultRefreshConfig()
	bad.BatchEntries = 0
	if _, err := sys.Refresh(pl, 1, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRepeatedRefreshReusesSlots(t *testing.T) {
	// Flipping between two placements many times must not grow arena usage:
	// evicted slots are recycled by the free list.
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 3000, 0.1)
	table, err := emb.NewMaterialized("t", 3000, 16, emb.Float32, 5) // 64 B rows, matching the placement

	if err != nil {
		t.Fatal(err)
	}
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity, Source: table})
	if err != nil {
		t.Fatal(err)
	}
	h2 := make(workload.Hotness, 3000)
	for i := range h2 {
		h2[i] = in.Hotness[3000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 500
	usedAfterFirst := int64(-1)
	for round := 0; round < 6; round++ {
		target := pl2
		if round%2 == 1 {
			// Re-solve the original (the Placement object was consumed).
			target, err = (solver.UGache{}).Solve(in)
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sys.Refresh(target, 0.001, cfg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		used := sys.Caches()[0].Arena.Used()
		if usedAfterFirst < 0 {
			usedAfterFirst = used
		} else if used > usedAfterFirst {
			t.Fatalf("round %d: arena grew from %d to %d (slots not recycled)",
				round, usedAfterFirst, used)
		}
		// Content still correct.
		out := make([]byte, 4*table.EntryBytes())
		if err := sys.Gather(1, []int64{0, 1, 2998, 2999}, out); err != nil {
			t.Fatalf("round %d gather: %v", round, err)
		}
	}
}
