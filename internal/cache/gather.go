package cache

import (
	"fmt"

	"ugache/internal/hashtable"
	"ugache/internal/platform"
)

// GatherScratch holds the reusable buffers of one GatherWith call: the
// per-source key groups, the destination row index of every grouped key,
// and the bulk-probe location/found slices. Reusing one scratch per worker
// (or recycling through the System's internal pool) makes the steady-state
// functional gather allocation-free.
//
// A GatherScratch is owned by one goroutine at a time.
type GatherScratch struct {
	keys  [][]int64 // keys[src]: keys to probe on source GPU src
	rows  [][]int32 // rows[src]: destination row index per grouped key
	locs  []hashtable.Location
	found []bool
}

// NewGatherScratch returns an empty scratch; buffers grow on first use.
func NewGatherScratch() *GatherScratch { return &GatherScratch{} }

// gatherGroupMin is the batch size below which GatherWith resolves keys one
// locate at a time instead of grouping per owner for a bulk probe.
const gatherGroupMin = 8

// reset prepares the per-source groups for n source GPUs.
func (sc *GatherScratch) reset(n int) {
	if cap(sc.keys) < n {
		sc.keys = make([][]int64, n)
		sc.rows = make([][]int32, n)
	}
	sc.keys = sc.keys[:n]
	sc.rows = sc.rows[:n]
	for i := range sc.keys {
		sc.keys[i] = sc.keys[i][:0]
		sc.rows[i] = sc.rows[i][:0]
	}
}

// probeBuffers returns scratch-backed locs/found slices of length n.
func (sc *GatherScratch) probeBuffers(n int) ([]hashtable.Location, []bool) {
	if cap(sc.locs) < n {
		sc.locs = make([]hashtable.Location, n)
		sc.found = make([]bool, n)
	}
	return sc.locs[:n], sc.found[:n]
}

// Gather functionally extracts keys for GPU dst into out (len(keys) rows of
// EntryBytes): cached rows are peer-read from the owning GPU's arena,
// misses fall back to the host source. Requires functional mode. The whole
// gather resolves against a single snapshot, so concurrent refreshes never
// produce a torn result. Scratch buffers are recycled through an internal
// pool; workers that want full control pass their own to GatherWith.
func (s *System) Gather(dst int, keys []int64, out []byte) error {
	return s.GatherWith(dst, keys, out, nil)
}

// GatherWith is Gather with an explicit scratch (nil falls back to the
// internal pool). The gather runs in two passes over a single snapshot:
// first every key is classified by the placement's access arrangement —
// host keys are read from the source immediately, GPU keys are grouped per
// owning GPU — then each owner's group is resolved with one batched hash
// probe (hashtable.BulkLookup, the locate() step of §3.2) and peer-read
// into the caller's buffer. out is caller-owned; the scratch retains no
// reference to it.
func (s *System) GatherWith(dst int, keys []int64, out []byte, sc *GatherScratch) error {
	if s.source == nil {
		return fmt.Errorf("cache: Gather requires functional mode (FillOptions.Source)")
	}
	if len(out) < len(keys)*s.EntryBytes {
		return fmt.Errorf("cache: output buffer %d too small for %d rows", len(out), len(keys))
	}
	if dst < 0 || dst >= s.P.N {
		return fmt.Errorf("cache: bad gpu %d", dst)
	}
	// Tiny batches are not worth grouping: a single locate per key beats
	// the per-GPU group reset plus bulk-probe setup, and keeps the
	// one-key Lookup latency at the ungrouped cost.
	if len(keys) <= gatherGroupMin {
		sn := s.snap.Load()
		eb := s.EntryBytes
		for i, key := range keys {
			src, loc, err := sn.locate(s.P, dst, key)
			if err != nil {
				return err
			}
			row := out[i*eb : (i+1)*eb]
			if src == s.P.Host() || (s.P.HasNetwork() && src == s.P.Network()) {
				if err := s.source.ReadRow(key, row); err != nil {
					return err
				}
				continue
			}
			if err := sn.space.PeerRead(int(src), loc.Offset, row); err != nil {
				return err
			}
		}
		return nil
	}
	if sc == nil {
		pooled, _ := s.gatherPool.Get().(*GatherScratch)
		if pooled == nil {
			pooled = NewGatherScratch()
		}
		defer s.gatherPool.Put(pooled)
		sc = pooled
	}
	sn := s.snap.Load()
	pl := sn.placement
	n := pl.NumEntries()
	eb := s.EntryBytes
	host := s.P.Host()
	network := platform.SourceID(-1)
	if s.P.HasNetwork() {
		network = s.P.Network()
	}

	// Pass 1: classify by source. Host (and, on clusters, network-tier)
	// rows are served straight from the backing source; GPU rows are
	// grouped for the batched probe.
	sc.reset(len(sn.caches))
	for i, key := range keys {
		if key < 0 || key >= n {
			return fmt.Errorf("cache: key %d out of range", key)
		}
		src := pl.SourceOf(dst, key)
		if src == host || src == network {
			if err := s.source.ReadRow(key, out[i*eb:(i+1)*eb]); err != nil {
				return err
			}
			continue
		}
		sc.keys[src] = append(sc.keys[src], key)
		sc.rows[src] = append(sc.rows[src], int32(i))
	}

	// Pass 2: one bulk probe per owning GPU, then peer-read each row.
	for src := range sc.keys {
		group := sc.keys[src]
		if len(group) == 0 {
			continue
		}
		locs, found := sc.probeBuffers(len(group))
		sn.caches[src].Table.BulkLookup(group, locs, found)
		for i, ok := range found {
			if !ok {
				return fmt.Errorf("cache: placement says gpu %d holds key %d but the hashtable disagrees", src, group[i])
			}
			row := int(sc.rows[src][i])
			if err := sn.space.PeerRead(src, locs[i].Offset, out[row*eb:(row+1)*eb]); err != nil {
				return err
			}
		}
	}
	return nil
}
