package cache

import (
	"fmt"
	"math"

	"ugache/internal/solver"
	"ugache/internal/workload"
)

// HotnessSampler is the foreground sampling of §7.2: input batches are
// sampled (every Nth batch) and counted on the CPU so the background
// Refresher can re-evaluate the policy against fresh hotness.
type HotnessSampler struct {
	counts  []float64
	sampled int
	every   int
	seen    int
}

// NewHotnessSampler records every `every`-th batch (min 1).
func NewHotnessSampler(numEntries int64, every int) *HotnessSampler {
	if every < 1 {
		every = 1
	}
	return &HotnessSampler{counts: make([]float64, numEntries), every: every}
}

// Observe feeds one input batch. Keys are counted once per batch
// (presence), matching how the extractor deduplicates batches.
func (h *HotnessSampler) Observe(keys []int64) {
	h.seen++
	if (h.seen-1)%h.every != 0 {
		return
	}
	h.sampled++
	seen := make(map[int64]struct{}, len(keys))
	for _, k := range keys {
		if k < 0 || k >= int64(len(h.counts)) {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		h.counts[k]++
	}
}

// Batches returns how many batches were actually recorded.
func (h *HotnessSampler) Batches() int { return h.sampled }

// Hotness returns the measured per-entry expected accesses per iteration.
func (h *HotnessSampler) Hotness() (workload.Hotness, error) {
	if h.sampled == 0 {
		return nil, fmt.Errorf("cache: no batches sampled")
	}
	out := make(workload.Hotness, len(h.counts))
	inv := 1 / float64(h.sampled)
	for i, c := range h.counts {
		out[i] = c * inv
	}
	return out, nil
}

// RefreshConfig tunes the §7.2 background refresh.
type RefreshConfig struct {
	// SolveSeconds is the simulated background policy-solve time (the paper
	// reports ~10 s for the MILP).
	SolveSeconds float64
	// SolveImpact is the foreground slowdown factor while solving on
	// restricted CPU cores (e.g. 1.02).
	SolveImpact float64
	// BatchEntries is the number of cache entries updated per small-batch
	// step (update granularity).
	BatchEntries int64
	// PauseSeconds separates consecutive update batches, bounding
	// foreground impact.
	PauseSeconds float64
	// UpdateImpact is the foreground slowdown factor while an update batch
	// occupies the GPU (e.g. 1.25; the duty cycle brings the average down
	// to the paper's ~10%).
	UpdateImpact float64
	// UpdateBandwidth is the effective bytes/s for moving cache updates
	// (host-to-device over PCIe).
	UpdateBandwidth float64
	// SamplePeriod is the timeline sampling period in seconds.
	SamplePeriod float64
}

// DefaultRefreshConfig mirrors the behaviour in §7.2/Fig. 17: a ~10 s
// solve, small-batch updates with pauses, ≈10% average foreground impact,
// and a 20–30 s total duration on the evaluation workloads.
func DefaultRefreshConfig() RefreshConfig {
	return RefreshConfig{
		SolveSeconds:    10,
		SolveImpact:     1.02,
		BatchEntries:    50_000,
		PauseSeconds:    0.25,
		UpdateImpact:    1.25,
		UpdateBandwidth: 10e9,
		SamplePeriod:    0.5,
	}
}

// RefreshStep is one timeline sample: foreground iteration time at time T.
type RefreshStep struct {
	T        float64 // seconds since the refresh trigger
	IterTime float64 // seconds per foreground iteration
}

// RefreshReport summarizes one refresh (Fig. 17).
type RefreshReport struct {
	Duration        float64 // seconds from trigger to completion
	SolveSeconds    float64
	UpdateSeconds   float64
	EvictedEntries  int64
	InsertedEntries int64
	MeanImpact      float64 // average iteration-time inflation during refresh
	Timeline        []RefreshStep
}

// Refresh re-points the system at a new placement, simulating the §7.2
// procedure: background solve, then eviction/insertion applied in small
// batches interleaved with foreground batches. baseIterTime is the
// foreground iteration latency before the refresh (afterIterTime may
// differ; the timeline uses base during and after — callers re-measure).
//
// Refresh is safe to run concurrently with readers: the diff is applied to
// a private clone of the current snapshot and published with one atomic
// swap, only after every batch applied cleanly. On error the published
// snapshot is untouched. Concurrent Refresh calls serialize.
func (s *System) Refresh(newPl *solver.Placement, baseIterTime float64, cfg RefreshConfig) (*RefreshReport, error) {
	if newPl == nil {
		return nil, fmt.Errorf("cache: nil new placement")
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	old := s.snap.Load()
	if newPl.NumGPUs != s.P.N || newPl.NumEntries() != old.placement.NumEntries() {
		return nil, fmt.Errorf("cache: new placement shape mismatch")
	}
	if baseIterTime <= 0 {
		return nil, fmt.Errorf("cache: baseIterTime must be positive")
	}
	if cfg.BatchEntries <= 0 || cfg.UpdateBandwidth <= 0 || cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("cache: invalid refresh config")
	}

	// Diff old vs new storage per GPU.
	var evicted, inserted int64
	for g := 0; g < s.P.N; g++ {
		oldKeys := storedKeySet(old.placement, g)
		newKeys := storedKeySet(newPl, g)
		for k := range oldKeys {
			if _, ok := newKeys[k]; !ok {
				evicted++
			}
		}
		for k := range newKeys {
			if _, ok := oldKeys[k]; !ok {
				inserted++
			}
		}
	}

	// Update phase: moved bytes happen in BatchEntries-sized steps.
	movedEntries := evicted + inserted
	steps := (movedEntries + cfg.BatchEntries - 1) / cfg.BatchEntries
	perStep := float64(cfg.BatchEntries*int64(s.EntryBytes)) / cfg.UpdateBandwidth
	updateSeconds := float64(steps) * (perStep + cfg.PauseSeconds)
	duration := cfg.SolveSeconds + updateSeconds

	// Timeline.
	rep := &RefreshReport{
		Duration:        duration,
		SolveSeconds:    cfg.SolveSeconds,
		UpdateSeconds:   updateSeconds,
		EvictedEntries:  evicted,
		InsertedEntries: inserted,
	}
	impactSum, impactN := 0.0, 0
	for t := -5 * cfg.SamplePeriod; t < duration+5*cfg.SamplePeriod; t += cfg.SamplePeriod {
		it := baseIterTime
		switch {
		case t < 0 || t >= duration:
			// steady state
		case t < cfg.SolveSeconds:
			it = baseIterTime * cfg.SolveImpact
		default:
			// Inside the update phase: batches alternate with pauses.
			phase := math.Mod(t-cfg.SolveSeconds, perStep+cfg.PauseSeconds)
			if phase < perStep {
				it = baseIterTime * cfg.UpdateImpact
			}
		}
		if t >= 0 && t < duration {
			impactSum += it/baseIterTime - 1
			impactN++
		}
		rep.Timeline = append(rep.Timeline, RefreshStep{T: t, IterTime: it})
	}
	if impactN > 0 {
		rep.MeanImpact = impactSum / float64(impactN)
	}

	// Apply the diff incrementally, GPU by GPU: evictions first (freeing
	// slots), then insertions into the recycled slots — the small-batch
	// update of §7.2. The updates go to a private clone of the snapshot, so
	// foreground reads keep resolving against the old tables and arenas
	// until the clone is published below.
	next := old.clone()
	next.placement = newPl
	buf := make([]byte, s.EntryBytes)
	for g := 0; g < s.P.N; g++ {
		oldKeys := storedKeySet(old.placement, g)
		newKeys := storedKeySet(newPl, g)
		c := next.caches[g]
		for k := range oldKeys {
			if _, keep := newKeys[k]; !keep {
				if !c.evict(k) {
					return nil, fmt.Errorf("cache: refresh eviction missed key %d on gpu %d", k, g)
				}
			}
		}
		for k := range newKeys {
			if _, had := oldKeys[k]; !had {
				if err := c.insert(k, s.source, buf); err != nil {
					return nil, fmt.Errorf("cache: refresh insert on gpu %d: %w", g, err)
				}
			}
		}
	}
	s.snap.Store(next)
	return rep, nil
}

func storedKeySet(pl *solver.Placement, g int) map[int64]struct{} {
	out := make(map[int64]struct{})
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		if !b.Store[g] {
			continue
		}
		for r := b.Start; r < b.End; r++ {
			out[int64(pl.ByRank[r])] = struct{}{}
		}
	}
	return out
}
