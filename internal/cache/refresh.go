package cache

import (
	"fmt"
	"math"
	"sync"

	"ugache/internal/hashtable"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// refreshMetrics is the §7.2 impact timeline surfaced as gauges: the last
// refresh's phase durations, diff size and mean foreground inflation, plus
// a live in-progress flag. Updated only on the (slow) refresh path.
type refreshMetrics struct {
	total         *telemetry.Counter
	active        *telemetry.Gauge
	duration      *telemetry.Gauge
	solveSeconds  *telemetry.Gauge
	updateSeconds *telemetry.Gauge
	meanImpact    *telemetry.Gauge
	evicted       *telemetry.Gauge
	inserted      *telemetry.Gauge
	solveWall     *telemetry.Gauge
	solveNodes    *telemetry.Gauge
}

// SetTelemetry registers the refresh gauges in reg and publishes every
// later Refresh's report through them. Call before serving; replaces any
// earlier registry.
func (s *System) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.refreshMet.Store(nil)
		return
	}
	s.refreshMet.Store(&refreshMetrics{
		total:         reg.Counter("cache_refresh_total", "completed placement refreshes"),
		active:        reg.Gauge("cache_refresh_active", "1 while a refresh is being applied"),
		duration:      reg.Gauge("cache_refresh_last_duration_seconds", "last refresh trigger-to-completion seconds"),
		solveSeconds:  reg.Gauge("cache_refresh_last_solve_seconds", "last refresh background-solve seconds"),
		updateSeconds: reg.Gauge("cache_refresh_last_update_seconds", "last refresh small-batch update seconds"),
		meanImpact:    reg.Gauge("cache_refresh_last_mean_impact", "last refresh mean foreground iteration-time inflation"),
		evicted:       reg.Gauge("cache_refresh_last_evicted_entries", "entries evicted by the last refresh"),
		inserted:      reg.Gauge("cache_refresh_last_inserted_entries", "entries inserted by the last refresh"),
		solveWall:     reg.Gauge("cache_refresh_last_solve_wall_seconds", "last refresh measured policy-solve wall seconds"),
		solveNodes:    reg.Gauge("cache_refresh_last_solve_nodes", "branch-and-bound nodes explored by the last refresh solve"),
	})
}

// SetTimeline attaches a timeline recorder; every later Refresh emits its
// Fig.-17 span timeline (parent refresh span, solve child, per-update-step
// spans) on the control track. Pass nil to detach.
func (s *System) SetTimeline(rec *timeline.Recorder) {
	if rec == nil {
		s.refreshTL.Store(nil)
		return
	}
	s.refreshTL.Store(rec)
}

// maxRefreshStepSpans caps the number of per-update-step spans one refresh
// emits so a huge diff cannot flood the span ring; the refresh span's
// update_steps arg always carries the true total.
const maxRefreshStepSpans = 128

// emitTimeline renders one refresh report as spans: the whole refresh is
// anchored at its wall-clock start and laid out in simulated time — a parent
// "refresh" span covering trigger-to-completion, a "refresh-solve" child for
// the background solve phase, and one "refresh-update-step" span per
// small-batch update step (busy time only; the pauses between steps show as
// gaps, exactly the Fig. 17 duty cycle).
func emitTimeline(rec *timeline.Recorder, wallStart float64, rep *RefreshReport, perStep, remStep, pause float64, fullSteps int64) {
	sh := rec.Shard(0)
	root := timeline.Event{
		Name:  "refresh",
		Cat:   "refresh",
		Ph:    timeline.PhSpan,
		PID:   timeline.ProcControl,
		TID:   timeline.TIDRefresh,
		Start: wallStart,
		Dur:   rep.Duration,
	}
	root.AddArg("evicted_entries", float64(rep.EvictedEntries))
	root.AddArg("inserted_entries", float64(rep.InsertedEntries))
	root.AddArg("mean_impact", rep.MeanImpact)
	root.AddArg("solve_seconds", rep.SolveSeconds)
	root.AddArg("update_seconds", rep.UpdateSeconds)
	steps := fullSteps
	if remStep > 0 {
		steps++
	}
	root.AddArg("update_steps", float64(steps))
	sh.Emit(&root)

	solve := timeline.Event{
		Name:  "refresh-solve",
		Cat:   "refresh",
		Ph:    timeline.PhSpan,
		PID:   timeline.ProcControl,
		TID:   timeline.TIDRefresh,
		Start: wallStart,
		Dur:   rep.SolveSeconds,
	}
	if st := rep.Solve; st != nil {
		solve.AddArg("solve_wall_seconds", st.WallSeconds)
		solve.AddArg("solve_nodes", float64(st.Nodes))
		solve.AddArg("workers", float64(st.Workers))
		warm := 0.0
		if st.WarmStart {
			warm = 1
		}
		solve.AddArg("warm_start", warm)
	}
	sh.Emit(&solve)

	stepLen := perStep + pause
	for i := int64(0); i < steps && i < maxRefreshStepSpans; i++ {
		busy := perStep
		if i >= fullSteps {
			busy = remStep
		}
		ev := timeline.Event{
			Name:  "refresh-update-step",
			Cat:   "refresh",
			Ph:    timeline.PhSpan,
			PID:   timeline.ProcControl,
			TID:   timeline.TIDRefresh,
			Start: wallStart + rep.SolveSeconds + float64(i)*stepLen,
			Dur:   busy,
		}
		ev.AddArg("step", float64(i))
		sh.Emit(&ev)
	}
	if steps > maxRefreshStepSpans {
		ev := timeline.Event{
			Name:  "refresh-update-steps-truncated",
			Cat:   "refresh",
			Ph:    timeline.PhInstant,
			PID:   timeline.ProcControl,
			TID:   timeline.TIDRefresh,
			Start: wallStart + rep.SolveSeconds + float64(maxRefreshStepSpans)*stepLen,
		}
		ev.AddArg("omitted_steps", float64(steps-maxRefreshStepSpans))
		sh.Emit(&ev)
	}
}

// publish pushes one refresh report into the gauges. A report without solve
// statistics zeroes the solve-wall gauges: they describe the *last* refresh,
// and leaving a previous MILP solve's numbers published after a heuristic or
// LP refresh would misattribute that solve to the wrong placement.
func (m *refreshMetrics) publish(rep *RefreshReport) {
	m.total.Add(0, 1)
	m.duration.Set(rep.Duration)
	m.solveSeconds.Set(rep.SolveSeconds)
	m.updateSeconds.Set(rep.UpdateSeconds)
	m.meanImpact.Set(rep.MeanImpact)
	m.evicted.Set(float64(rep.EvictedEntries))
	m.inserted.Set(float64(rep.InsertedEntries))
	if st := rep.Solve; st != nil {
		m.solveWall.Set(st.WallSeconds)
		m.solveNodes.Set(float64(st.Nodes))
	} else {
		m.solveWall.Set(0)
		m.solveNodes.Set(0)
	}
}

// HotnessSampler is the foreground sampling of §7.2: input batches are
// sampled (every Nth batch) and counted on the CPU so the background
// Refresher can re-evaluate the policy against fresh hotness.
//
// The sampler is sharded per caller so the serving engine's one-worker-per-
// GPU loop can observe batches without a data race: each worker owns one
// SamplerShard (Shard(g)) and counts into it lock-free; Hotness and Batches
// merge the shards on read. The zero-argument Observe forwards to shard 0
// for single-goroutine callers.
type HotnessSampler struct {
	numEntries int64
	every      int

	mu     sync.Mutex
	shards []*SamplerShard
}

// SamplerShard is one caller's private slice of the sampler. A shard
// belongs to one observing goroutine, so its mutex is uncontended in
// steady state (one lock per batch, not per key); it exists so a
// background Hotness merge may run while observation continues.
type SamplerShard struct {
	mu      sync.Mutex
	counts  []float64
	dedup   *hashtable.Dedup
	sampled int
	seen    int
	every   int
}

// NewHotnessSampler records every `every`-th batch (min 1).
func NewHotnessSampler(numEntries int64, every int) *HotnessSampler {
	if every < 1 {
		every = 1
	}
	return &HotnessSampler{numEntries: numEntries, every: every}
}

// Shard returns the caller's shard, creating it (and any lower-numbered
// ones) on first use. Safe to call concurrently; the per-shard Observe is
// what must stay single-threaded.
func (h *HotnessSampler) Shard(i int) *SamplerShard {
	if i < 0 {
		i = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.shards) <= i {
		h.shards = append(h.shards, &SamplerShard{
			counts: make([]float64, h.numEntries),
			dedup:  hashtable.NewDedup(256),
			every:  h.every,
		})
	}
	return h.shards[i]
}

// Observe feeds one input batch to shard 0 (single-goroutine convenience;
// concurrent callers must use their own Shard).
func (h *HotnessSampler) Observe(keys []int64) { h.Shard(0).Observe(keys) }

// Observe feeds one input batch. Keys are counted once per batch
// (presence), matching how the extractor deduplicates batches; the reusable
// generation-stamped dedup table replaces the old per-batch map allocation.
func (s *SamplerShard) Observe(keys []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if (s.seen-1)%s.every != 0 {
		return
	}
	s.sampled++
	s.dedup.Reset(len(keys))
	for _, k := range keys {
		if k < 0 || k >= int64(len(s.counts)) {
			continue
		}
		if _, fresh := s.dedup.Add(k); fresh {
			s.counts[k]++
		}
	}
}

// Batches returns how many batches were recorded across all shards.
func (h *HotnessSampler) Batches() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, s := range h.shards {
		s.mu.Lock()
		total += s.sampled
		s.mu.Unlock()
	}
	return total
}

// Hotness merges the shards into the measured per-entry expected accesses
// per iteration.
func (h *HotnessSampler) Hotness() (workload.Hotness, error) {
	out := make(workload.Hotness, h.numEntries)
	if _, err := h.HotnessInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// HotnessInto merges the shards into dst (len NumEntries, overwritten) and
// returns how many batches the merge covers. It allocates nothing, so a
// periodic caller — the drift detector — can re-merge against a reused
// buffer as observation continues.
func (h *HotnessSampler) HotnessInto(dst workload.Hotness) (int, error) {
	if int64(len(dst)) != h.numEntries {
		return 0, fmt.Errorf("cache: hotness buffer for %d entries, sampler has %d", len(dst), h.numEntries)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sampled := 0
	for _, s := range h.shards {
		s.mu.Lock()
		sampled += s.sampled
		s.mu.Unlock()
	}
	if sampled == 0 {
		return 0, fmt.Errorf("cache: no batches sampled")
	}
	clear(dst)
	inv := 1 / float64(sampled)
	for _, s := range h.shards {
		s.mu.Lock()
		for i, c := range s.counts {
			dst[i] += c * inv
		}
		s.mu.Unlock()
	}
	return sampled, nil
}

// Reset zeroes every shard's counts and batch tally, starting a fresh
// observation window. The refresh controller calls it right after a
// placement refresh so the next drift check measures post-refresh traffic
// rather than averaging across the shift it just reacted to.
func (h *HotnessSampler) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.shards {
		s.mu.Lock()
		clear(s.counts)
		s.sampled = 0
		s.seen = 0
		s.mu.Unlock()
	}
}

// NumEntries returns the entry count the sampler was built for.
func (h *HotnessSampler) NumEntries() int64 { return h.numEntries }

// SolveStats describes the real policy solve that produced the placement
// being applied — measured wall time and branch-and-bound effort — as
// opposed to RefreshConfig.SolveSeconds, which is the simulated solve
// duration replayed into the Fig. 17 timeline. The core engine fills it
// from the solver; it flows untouched into the report, the
// cache_refresh_last_solve_* gauges, and the refresh-solve span args.
type SolveStats struct {
	// WallSeconds is the measured wall-clock duration of the solve.
	WallSeconds float64
	// Nodes is the branch-and-bound node count (0 for LP and heuristic
	// policies, which have no search tree).
	Nodes int64
	// Workers is the solver parallelism the solve ran with.
	Workers int
	// WarmStart records whether the solve was seeded with the previous
	// placement as an initial incumbent.
	WarmStart bool
}

// RefreshConfig tunes the §7.2 background refresh.
type RefreshConfig struct {
	// SolveSeconds is the simulated background policy-solve time (the paper
	// reports ~10 s for the MILP).
	SolveSeconds float64
	// SolveImpact is the foreground slowdown factor while solving on
	// restricted CPU cores (e.g. 1.02).
	SolveImpact float64
	// BatchEntries is the number of cache entries updated per small-batch
	// step (update granularity).
	BatchEntries int64
	// PauseSeconds separates consecutive update batches, bounding
	// foreground impact.
	PauseSeconds float64
	// UpdateImpact is the foreground slowdown factor while an update batch
	// occupies the GPU (e.g. 1.25; the duty cycle brings the average down
	// to the paper's ~10%).
	UpdateImpact float64
	// UpdateBandwidth is the effective bytes/s for moving cache updates
	// (host-to-device over PCIe).
	UpdateBandwidth float64
	// SamplePeriod is the timeline sampling period in seconds.
	SamplePeriod float64
	// Solve, when non-nil, attaches the real solve's statistics to the
	// report, gauges and timeline (the simulated impact replay above is
	// driven by SolveSeconds regardless).
	Solve *SolveStats
}

// DefaultRefreshConfig mirrors the behaviour in §7.2/Fig. 17: a ~10 s
// solve, small-batch updates with pauses, ≈10% average foreground impact,
// and a 20–30 s total duration on the evaluation workloads.
func DefaultRefreshConfig() RefreshConfig {
	return RefreshConfig{
		SolveSeconds:    10,
		SolveImpact:     1.02,
		BatchEntries:    50_000,
		PauseSeconds:    0.25,
		UpdateImpact:    1.25,
		UpdateBandwidth: 10e9,
		SamplePeriod:    0.5,
	}
}

// RefreshStep is one timeline sample: foreground iteration time at time T.
type RefreshStep struct {
	T        float64 // seconds since the refresh trigger
	IterTime float64 // seconds per foreground iteration
}

// RefreshReport summarizes one refresh (Fig. 17).
type RefreshReport struct {
	Duration        float64 // seconds from trigger to completion
	SolveSeconds    float64
	UpdateSeconds   float64
	EvictedEntries  int64
	InsertedEntries int64
	// RebuildEntries is what a from-scratch application of the new placement
	// would have moved (evict every stored entry of the old placement, then
	// insert every stored entry of the new one). EvictedEntries +
	// InsertedEntries vs RebuildEntries is the incremental-delta saving.
	RebuildEntries int64
	MeanImpact     float64 // average iteration-time inflation during refresh
	Timeline       []RefreshStep
	// Solve carries the real solve's statistics when the caller provided
	// them in RefreshConfig.Solve; nil otherwise.
	Solve *SolveStats
}

// Refresh re-points the system at a new placement, simulating the §7.2
// procedure: background solve, then eviction/insertion applied in small
// batches interleaved with foreground batches. baseIterTime is the
// foreground iteration latency before the refresh (afterIterTime may
// differ; the timeline uses base during and after — callers re-measure).
//
// Refresh is safe to run concurrently with readers: the diff is applied to
// a private clone of the current snapshot and published with one atomic
// swap, only after every batch applied cleanly. On error the published
// snapshot is untouched. Concurrent Refresh calls serialize.
func (s *System) Refresh(newPl *solver.Placement, baseIterTime float64, cfg RefreshConfig) (*RefreshReport, error) {
	if newPl == nil {
		return nil, fmt.Errorf("cache: nil new placement")
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if m := s.refreshMet.Load(); m != nil {
		m.active.Set(1)
		defer m.active.Set(0)
	}
	tl := s.refreshTL.Load()
	wallStart := 0.0
	if tl != nil {
		wallStart = tl.Now()
	}
	old := s.snap.Load()
	if newPl.NumGPUs != s.P.N || newPl.NumEntries() != old.placement.NumEntries() {
		return nil, fmt.Errorf("cache: new placement shape mismatch")
	}
	if baseIterTime <= 0 {
		return nil, fmt.Errorf("cache: baseIterTime must be positive")
	}
	if cfg.BatchEntries <= 0 || cfg.UpdateBandwidth <= 0 || cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("cache: invalid refresh config")
	}

	// Diff old vs new storage per GPU, once: the same per-GPU evict/insert
	// lists drive the update-phase accounting below AND the apply phase, so
	// the diff is never recomputed (the old code built O(entries) key-set
	// maps per GPU twice). The delta is computed entry-wise against both
	// placements' block tables — no per-GPU key sets are materialized at
	// all, which is what makes the apply incremental rather than a rebuild.
	delta := placementDelta(old.placement, newPl, s.P.N)
	var evicted, inserted int64
	for g := range delta {
		evicted += int64(len(delta[g].evict))
		inserted += int64(len(delta[g].insert))
	}

	// Update phase: moved bytes happen in BatchEntries-sized steps, with the
	// final step sized by the actual remainder — a 50k-entry batch config
	// moving 50k+1 entries costs one full step plus a 1-entry step, not two
	// full ones (the old accounting overstated UpdateSeconds and the
	// Fig. 17 timeline for every non-multiple diff).
	movedEntries := evicted + inserted
	fullSteps := movedEntries / cfg.BatchEntries
	remEntries := movedEntries % cfg.BatchEntries
	perStep := float64(cfg.BatchEntries*int64(s.EntryBytes)) / cfg.UpdateBandwidth
	remStep := float64(remEntries*int64(s.EntryBytes)) / cfg.UpdateBandwidth
	updateSeconds := float64(fullSteps) * (perStep + cfg.PauseSeconds)
	if remEntries > 0 {
		updateSeconds += remStep + cfg.PauseSeconds
	}
	duration := cfg.SolveSeconds + updateSeconds

	// Timeline.
	rep := &RefreshReport{
		Duration:        duration,
		SolveSeconds:    cfg.SolveSeconds,
		UpdateSeconds:   updateSeconds,
		EvictedEntries:  evicted,
		InsertedEntries: inserted,
		RebuildEntries:  storedEntries(old.placement) + storedEntries(newPl),
		Solve:           cfg.Solve,
	}
	// Samples are indexed by integer sample number with t derived per
	// sample: accumulating t += SamplePeriod drifts by an ulp per step, and
	// over a long refresh the accumulated error skips or double-counts the
	// busy/pause boundaries the switch below classifies against.
	impactSum, impactN := 0.0, 0
	for i := -5; float64(i)*cfg.SamplePeriod < duration+5*cfg.SamplePeriod; i++ {
		t := float64(i) * cfg.SamplePeriod
		it := baseIterTime
		switch {
		case t < 0 || t >= duration:
			// steady state
		case t < cfg.SolveSeconds:
			it = baseIterTime * cfg.SolveImpact
		default:
			// Inside the update phase: batches alternate with pauses; the
			// final (possibly partial) step keeps the GPU busy only for its
			// actual transfer time.
			u := t - cfg.SolveSeconds
			stepLen := perStep + cfg.PauseSeconds
			step := int64(u / stepLen)
			busy := perStep
			if step >= fullSteps {
				busy = remStep
			}
			if math.Mod(u, stepLen) < busy {
				it = baseIterTime * cfg.UpdateImpact
			}
		}
		if t >= 0 && t < duration {
			impactSum += it/baseIterTime - 1
			impactN++
		}
		rep.Timeline = append(rep.Timeline, RefreshStep{T: t, IterTime: it})
	}
	if impactN > 0 {
		rep.MeanImpact = impactSum / float64(impactN)
	}

	// Apply the delta incrementally, GPU by GPU: evictions first (freeing
	// slots), then insertions into the recycled slots — the small-batch
	// update of §7.2. Only the entries whose tier actually changed are
	// touched; everything else keeps its slot in the cloned tables. The
	// updates go to a private clone of the snapshot, so foreground reads
	// keep resolving against the old tables and arenas until the clone is
	// published below.
	next := old.clone()
	next.placement = newPl
	buf := make([]byte, s.EntryBytes)
	for g := 0; g < s.P.N; g++ {
		c := next.caches[g]
		for _, k := range delta[g].evict {
			if !c.evict(k) {
				return nil, fmt.Errorf("cache: refresh eviction missed key %d on gpu %d", k, g)
			}
		}
		for _, k := range delta[g].insert {
			if err := c.insert(k, s.source, buf); err != nil {
				return nil, fmt.Errorf("cache: refresh insert on gpu %d: %w", g, err)
			}
		}
	}
	s.snap.Store(next)
	if m := s.refreshMet.Load(); m != nil {
		m.publish(rep)
	}
	if tl != nil {
		emitTimeline(tl, wallStart, rep, perStep, remStep, cfg.PauseSeconds, fullSteps)
	}
	return rep, nil
}

// gpuDelta is one GPU's incremental placement diff: the keys it must drop
// and the keys it must admit to move from the old placement to the new one.
type gpuDelta struct {
	evict  []int64
	insert []int64
}

// placementDelta computes the per-GPU evict/insert lists between two
// placements by walking the entry space once and comparing both block
// tables' StoredOn answers (two O(1) rank lookups per entry per GPU). No
// per-GPU key sets are built — the delta is exactly the entries whose
// storage changed, in ascending key order (deterministic apply).
func placementDelta(old, new *solver.Placement, numGPUs int) []gpuDelta {
	out := make([]gpuDelta, numGPUs)
	n := old.NumEntries()
	for g := 0; g < numGPUs; g++ {
		d := &out[g]
		for e := int64(0); e < n; e++ {
			was, is := old.StoredOn(g, e), new.StoredOn(g, e)
			switch {
			case was && !is:
				d.evict = append(d.evict, e)
			case !was && is:
				d.insert = append(d.insert, e)
			}
		}
	}
	return out
}

// storedEntries counts the placement's stored entries summed over GPUs —
// the volume a from-scratch fill of the placement would insert.
func storedEntries(pl *solver.Placement) int64 {
	var total int64
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		for _, stored := range b.Store {
			if stored {
				total += b.Entries()
			}
		}
	}
	return total
}
