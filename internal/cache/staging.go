package cache

import (
	"fmt"
	"sync"
)

// StagingArena is the transient GPU-side landing zone of the lookahead
// prefetch pipeline (DESIGN.md §6.6): the serve layer's prefetch worker
// extracts a future batch's would-be misses ahead of time and commits the
// rows here, so that when the batch actually flushes those keys are local
// staged hits instead of remote/host reads on the critical path.
//
// Unlike the snapshot arenas managed by Fill/Refresh, the staging arena is
// deliberately *not* part of the placement: it is a fixed-capacity ring of
// row slots keyed by embedding key, stamped with the serve-side batch
// sequence and the placement version the row was gathered under. Those two
// stamps carry the bounded-staleness contract:
//
//   - a row gathered under the current placement version is servable for as
//     long as it stays resident (its content is current by construction);
//   - a row gathered under an outgoing snapshot (a Refresh has swapped the
//     placement since) is servable only while its batch-staleness
//     (now - commit stamp) is within the caller's stale limit S. With S=0,
//     staged rows die with their snapshot.
//
// Concurrency: commits and evictions take the write lock; Consume copies
// row bytes out under the read lock, so a concurrent Commit recycling a
// slot (the "free" of this arena) can never be observed mid-overwrite and a
// consumed row is always the complete row some commit wrote — the
// staging-arena lifecycle invariant the -race tests pin.
type StagingArena struct {
	mu         sync.RWMutex
	entryBytes int
	keys       []int64  // per slot; meaningful only when live
	stamps     []int64  // batch sequence at commit
	versions   []uint64 // placement version at commit
	live       []bool
	data       []byte          // slots*entryBytes backing rows; nil in timing-only mode
	idx        map[int64]int32 // key -> slot, maintained under mu
	clock      int             // ring eviction cursor

	committed int64 // cumulative rows committed
	evicted   int64 // cumulative rows displaced by the ring
}

// NewStaging creates a staging arena with the given slot count. With backed
// set the arena holds real row bytes (functional mode); otherwise it only
// classifies residency (timing-only mode).
func NewStaging(slots, entryBytes int, backed bool) (*StagingArena, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("cache: staging arena needs positive capacity, got %d", slots)
	}
	if entryBytes <= 0 {
		return nil, fmt.Errorf("cache: staging arena needs positive entry bytes, got %d", entryBytes)
	}
	if backed && int64(slots)*int64(entryBytes) > 1<<31 {
		return nil, fmt.Errorf("cache: backed staging arena too large (%d slots x %d B)", slots, entryBytes)
	}
	a := &StagingArena{
		entryBytes: entryBytes,
		keys:       make([]int64, slots),
		stamps:     make([]int64, slots),
		versions:   make([]uint64, slots),
		live:       make([]bool, slots),
		idx:        make(map[int64]int32, slots),
	}
	if backed {
		a.data = make([]byte, slots*entryBytes)
	}
	return a, nil
}

// Backed reports whether the arena holds real row bytes.
func (a *StagingArena) Backed() bool { return a.data != nil }

// Capacity returns the slot count.
func (a *StagingArena) Capacity() int { return len(a.keys) }

// Len returns the number of resident rows.
func (a *StagingArena) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.idx)
}

// Stats returns the cumulative commit and ring-eviction counts.
func (a *StagingArena) Stats() (committed, evicted int64) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.committed, a.evicted
}

// servable reports whether slot s may be consumed at batch `now` under the
// bounded-staleness contract. Caller holds at least the read lock.
func (a *StagingArena) servable(s int32, now, staleLimit int64, version uint64) bool {
	if !a.live[s] {
		return false
	}
	if a.versions[s] == version {
		return true
	}
	// Version mismatch: S=0 disallows stale serving outright (the row died
	// with its snapshot, whatever its age), otherwise the row is good for up
	// to S batches past its commit.
	return staleLimit > 0 && now-a.stamps[s] <= staleLimit
}

// Resident reports whether key is staged and still servable at batch `now`
// under stale limit S and the given placement version — the prefetch
// worker's dedup check against rows already in flight to the arena.
func (a *StagingArena) Resident(key int64, now, staleLimit int64, version uint64) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.idx[key]
	return ok && a.keys[s] == key && a.servable(s, now, staleLimit, version)
}

// Commit stages rows for keys, stamped with the serve batch sequence and
// the placement version they were gathered under. rows holds
// len(keys)*entryBytes bytes in key order (nil in timing-only mode). A key
// already resident is refreshed in place; new keys recycle ring slots,
// displacing whatever lived there (that displacement is the arena's only
// "free", and it happens under the write lock — see the type comment).
func (a *StagingArena) Commit(keys []int64, rows []byte, version uint64, stamp int64) error {
	if a.data != nil && rows != nil && len(rows) < len(keys)*a.entryBytes {
		return fmt.Errorf("cache: staging commit rows %d B for %d keys of %d B", len(rows), len(keys), a.entryBytes)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, k := range keys {
		s, ok := a.idx[k]
		if !ok {
			s = int32(a.clock)
			a.clock = (a.clock + 1) % len(a.keys)
			if a.live[s] {
				delete(a.idx, a.keys[s])
				a.evicted++
			}
			a.idx[k] = s
			a.keys[s] = k
			a.live[s] = true
		}
		a.stamps[s] = stamp
		a.versions[s] = version
		if a.data != nil && rows != nil {
			copy(a.data[int(s)*a.entryBytes:(int(s)+1)*a.entryBytes], rows[i*a.entryBytes:(i+1)*a.entryBytes])
		}
		a.committed++
	}
	return nil
}

// Consume classifies a flush's unique keys against the arena at batch `now`:
// hit[i] is set for every key servable under stale limit S and the given
// placement version, and — when rows is non-nil — that key's row is copied
// into rows[i*entryBytes:]. It returns the hit count, the count of hits
// served stale (committed under an outgoing placement version), and the
// maximum batch-staleness among those stale hits.
//
// The whole batch resolves under one read lock, so a racing Commit either
// precedes the batch entirely or follows it — no key is classified against
// a half-overwritten slot.
func (a *StagingArena) Consume(keys []int64, now, staleLimit int64, version uint64, rows []byte, hit []bool) (hits, staleHits int, maxStale int64) {
	eb := a.entryBytes
	a.mu.RLock()
	defer a.mu.RUnlock()
	for i, k := range keys {
		hit[i] = false
		s, ok := a.idx[k]
		if !ok || a.keys[s] != k || !a.servable(s, now, staleLimit, version) {
			continue
		}
		hit[i] = true
		hits++
		if a.versions[s] != version {
			staleHits++
			if st := now - a.stamps[s]; st > maxStale {
				maxStale = st
			}
		}
		if rows != nil && a.data != nil {
			copy(rows[i*eb:(i+1)*eb], a.data[int(s)*eb:(int(s)+1)*eb])
		}
	}
	return hits, staleHits, maxStale
}
