package cache

import (
	"math"
	"testing"

	"ugache/internal/rng"
	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

// TestHotnessSamplerUnevenShards pins the multi-shard merge semantics:
// per-entry hotness is normalized by the batch total across *all* shards,
// not per shard, so shards that observed different batch counts still merge
// into one consistent expected-accesses-per-iteration estimate.
func TestHotnessSamplerUnevenShards(t *testing.T) {
	s := NewHotnessSampler(8, 1)
	s.Shard(0).Observe([]int64{0, 1})
	s.Shard(0).Observe([]int64{0, 2})
	s.Shard(0).Observe([]int64{0, 1})
	// Shard 2 (shard 1 is created but never observed): one batch with an
	// in-batch duplicate that must count once.
	s.Shard(2).Observe([]int64{3, 3, 7})
	if got := s.Batches(); got != 4 {
		t.Fatalf("sampled %d batches, want 4", got)
	}
	h, err := s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Hotness{0.75, 0.5, 0.25, 0.25, 0, 0, 0, 0.25}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Fatalf("hotness %v, want %v", h, want)
		}
	}

	// HotnessInto merges into a caller buffer and reports the batch count.
	buf := make(workload.Hotness, 8)
	batches, err := s.HotnessInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 4 {
		t.Fatalf("merge covered %d batches, want 4", batches)
	}
	for i := range want {
		if math.Abs(buf[i]-want[i]) > 1e-12 {
			t.Fatalf("merged hotness %v, want %v", buf, want)
		}
	}
	if _, err := s.HotnessInto(make(workload.Hotness, 7)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if s.NumEntries() != 8 {
		t.Fatalf("NumEntries %d", s.NumEntries())
	}

	// Reset starts a fresh window: no batches, empty-window error, and the
	// next observation counts from zero.
	s.Reset()
	if got := s.Batches(); got != 0 {
		t.Fatalf("batches %d after reset", got)
	}
	if _, err := s.Hotness(); err == nil {
		t.Fatal("reset sampler produced hotness from nothing")
	}
	s.Shard(0).Observe([]int64{5})
	h, err = s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	if h[5] != 1 || h[0] != 0 {
		t.Fatalf("post-reset hotness %v", h)
	}
}

// observeBatches feeds wl's batches [from, to) at the given batch size into
// the sampler's shard 0 (GenBatchAt, so the stream index is explicit and the
// detector tests can jump across a flash-crowd shift).
func observeBatches(t *testing.T, s *HotnessSampler, wl *workload.ShiftingZipf, r *rng.Rand, from, to, size int) {
	t.Helper()
	scratch := make(map[int64]struct{})
	for b := from; b < to; b++ {
		s.Observe(workload.Unique(wl.GenBatchAt(r, b, size), scratch))
	}
}

// TestDriftDetectorStationaryAndShift drives the detector through the drift
// bench's scenario in miniature: a stationary Zipf stream scores quiet
// against its analytic reference; a flash-crowd key rotation collapses the
// mass-weighted top-K overlap and trips the trigger; rebasing onto the
// measured post-shift hotness makes the detector quiet again.
func TestDriftDetectorStationaryAndShift(t *testing.T) {
	const (
		n     = 4096
		kpb   = 512
		shift = 100
	)
	wl, err := workload.NewFlashCrowd(n, 1.1, shift, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := wl.ExpectedHotness(0, kpb)
	s := NewHotnessSampler(n, 1)
	det, err := NewDriftDetector(s, ref, DriftConfig{MinBatches: 8, MaxBatches: 64, Threshold: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(2)
	det.SetTelemetry(reg)
	r := rng.New(11)

	// An empty window cannot be scored.
	if _, err := det.Check(); err == nil {
		t.Fatal("empty window accepted")
	}

	// A short window reports its scores but may not declare drift.
	observeBatches(t, s, wl, r, 0, 4, kpb)
	st, err := det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 4 {
		t.Fatalf("window %d batches, want 4", st.Batches)
	}
	if st.Drifted {
		t.Fatalf("%d-batch window declared drift (MinBatches 8)", st.Batches)
	}

	// A mature stationary window: high overlap, low score, no drift.
	observeBatches(t, s, wl, r, 4, 32, kpb)
	st, err = det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 32 {
		t.Fatalf("window %d batches, want 32", st.Batches)
	}
	if st.Drifted {
		t.Fatalf("stationary stream declared drift: score %g (overlap %g, rank dist %g)",
			st.Score, st.TopKOverlap, st.RankDistance)
	}
	if st.TopKOverlap < 0.7 {
		t.Fatalf("stationary top-K overlap %g below 0.7", st.TopKOverlap)
	}
	if got := max(1-st.TopKOverlap, st.RankDistance); st.Score != got {
		t.Fatalf("score %g, want max(1-overlap, dist) = %g", st.Score, got)
	}

	vals := map[string]float64{}
	for _, sm := range reg.Samples() {
		vals[sm.Name] = sm.Value
	}
	if vals["cache_drift_checks_total"] != 2 {
		t.Fatalf("checks counter %g, want 2 (the empty-window error does not count)",
			vals["cache_drift_checks_total"])
	}
	if vals["cache_drift_score"] != st.Score || vals["cache_drift_topk_overlap"] != st.TopKOverlap ||
		vals["cache_drift_rank_distance"] != st.RankDistance || vals["cache_drift_window_batches"] != 32 {
		t.Fatalf("gauges %v do not match status %+v", vals, st)
	}

	// Flash crowd: a clean post-shift window must trip the trigger, with the
	// overlap collapsing (the rotated head shares no identity with the
	// reference head).
	s.Reset()
	observeBatches(t, s, wl, r, shift, shift+16, kpb)
	st, err = det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Drifted {
		t.Fatalf("flash crowd not detected: score %g", st.Score)
	}
	if st.TopKOverlap > 0.3 {
		t.Fatalf("post-shift overlap %g above 0.3", st.TopKOverlap)
	}

	// Rebase onto the measured post-shift hotness (copied — the status
	// aliases the detector's scratch) and the post-shift stream is quiet.
	measured := append(workload.Hotness(nil), st.Measured...)
	if err := det.Rebase(measured); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	observeBatches(t, s, wl, r, shift+16, shift+48, kpb)
	st, err = det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.Drifted {
		t.Fatalf("post-shift stream drifted against rebased reference: score %g (overlap %g, dist %g)",
			st.Score, st.TopKOverlap, st.RankDistance)
	}
}

// TestDriftDetectorWindowSlide: a check whose window reached MaxBatches
// resets the sampler so the next window starts fresh; shorter windows keep
// accumulating.
func TestDriftDetectorWindowSlide(t *testing.T) {
	const n, kpb = 1024, 128
	wl, err := workload.NewDiurnalZipf(n, 1.05, 1.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := NewHotnessSampler(n, 1)
	det, err := NewDriftDetector(s, wl.ExpectedHotness(0, kpb), DriftConfig{MinBatches: 4, MaxBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)

	observeBatches(t, s, wl, r, 0, 6, kpb)
	st, err := det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 6 {
		t.Fatalf("window %d, want 6", st.Batches)
	}
	if got := s.Batches(); got != 6 {
		t.Fatalf("short window reset the sampler: %d batches left", got)
	}

	observeBatches(t, s, wl, r, 6, 10, kpb)
	st, err = det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 10 {
		t.Fatalf("window %d, want 10", st.Batches)
	}
	if got := s.Batches(); got != 0 {
		t.Fatalf("full window (>= MaxBatches 8) did not slide: %d batches left", got)
	}
}

// TestDriftConfigNormalize pins the defaulting rules, including the
// MaxBatches floor at MinBatches.
func TestDriftConfigNormalize(t *testing.T) {
	c := DriftConfig{}.normalize(1024)
	if c.TopK != 64 || c.Threshold != 0.3 || c.MinBatches != 16 || c.MaxBatches != 64 {
		t.Fatalf("defaults %+v", c)
	}
	if c := (DriftConfig{}).normalize(100); c.TopK != 16 {
		t.Fatalf("small-space TopK %d, want the 16 floor", c.TopK)
	}
	if c := (DriftConfig{TopK: 5000}).normalize(1024); c.TopK != 1024 {
		t.Fatalf("TopK %d not clamped to the entry space", c.TopK)
	}
	if c := (DriftConfig{MinBatches: 10, MaxBatches: 3}).normalize(1024); c.MaxBatches != 10 {
		t.Fatalf("MaxBatches %d not raised to MinBatches", c.MaxBatches)
	}
}

// TestDriftDetectorValidation covers the constructor and Rebase shape checks.
func TestDriftDetectorValidation(t *testing.T) {
	if _, err := NewDriftDetector(nil, make(workload.Hotness, 4), DriftConfig{}); err == nil {
		t.Fatal("nil sampler accepted")
	}
	s := NewHotnessSampler(8, 1)
	if _, err := NewDriftDetector(s, make(workload.Hotness, 4), DriftConfig{}); err == nil {
		t.Fatal("reference/sampler size mismatch accepted")
	}
	det, err := NewDriftDetector(s, make(workload.Hotness, 8), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Rebase(make(workload.Hotness, 4)); err == nil {
		t.Fatal("short rebase accepted")
	}
	cfg := det.Config()
	if cfg.TopK != 8 || cfg.MinBatches != 16 {
		t.Fatalf("normalized config %+v", cfg)
	}
}
