package cache

import (
	"math"
	"sync"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// TestRefreshUpdateSecondsPartialBatch pins the update-phase accounting
// when the moved-entry count is not a multiple of BatchEntries: the final
// step must be charged for its actual remainder, not a full BatchEntries
// transfer (the old code inflated UpdateSeconds, Duration and the Fig. 17
// timeline).
func TestRefreshUpdateSecondsPartialBatch(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 4000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}

	// Reversed hotness produces a large, odd-sized diff.
	h2 := make(workload.Hotness, 4000)
	for i := range h2 {
		h2[i] = in.Hotness[4000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 301
	cfg.PauseSeconds = 0.1
	cfg.UpdateBandwidth = 1e6
	base := 0.002
	rep, err := sys.Refresh(pl2, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moved := rep.EvictedEntries + rep.InsertedEntries
	if moved == 0 {
		t.Fatal("no diff to time")
	}
	if moved%cfg.BatchEntries == 0 {
		t.Fatalf("diff of %d entries is a multiple of %d; test needs a remainder", moved, cfg.BatchEntries)
	}
	full := moved / cfg.BatchEntries
	rem := moved % cfg.BatchEntries
	perStep := float64(cfg.BatchEntries*int64(sys.EntryBytes)) / cfg.UpdateBandwidth
	remStep := float64(rem*int64(sys.EntryBytes)) / cfg.UpdateBandwidth
	want := float64(full)*(perStep+cfg.PauseSeconds) + remStep + cfg.PauseSeconds
	if math.Abs(rep.UpdateSeconds-want) > 1e-9 {
		t.Fatalf("UpdateSeconds %g, want %g (%d moved, %d full steps, %d remainder)",
			rep.UpdateSeconds, want, moved, full, rem)
	}
	// The old accounting charged ceil(moved/BatchEntries) full steps.
	oldWant := float64(full+1) * (perStep + cfg.PauseSeconds)
	if rep.UpdateSeconds >= oldWant {
		t.Fatalf("UpdateSeconds %g not below the old full-step accounting %g", rep.UpdateSeconds, oldWant)
	}
	if math.Abs(rep.Duration-(cfg.SolveSeconds+rep.UpdateSeconds)) > 1e-9 {
		t.Fatalf("Duration %g inconsistent with UpdateSeconds %g", rep.Duration, rep.UpdateSeconds)
	}
	// The timeline's busy windows must respect the shorter final step: no
	// sample inside the final pause may show update impact.
	tailBusyEnd := cfg.SolveSeconds + float64(full)*(perStep+cfg.PauseSeconds) + remStep
	for _, st := range rep.Timeline {
		if st.T >= tailBusyEnd && st.T < rep.Duration && st.IterTime != base {
			t.Fatalf("timeline busy at %g inside the final pause (iter %g)", st.T, st.IterTime)
		}
	}
}

// TestHotnessSamplerShardsConcurrent drives one sampler from many
// goroutines (shard-per-caller) with merges racing the observations; run
// with -race. The merged hotness must equal the single-shard result.
func TestHotnessSamplerShardsConcurrent(t *testing.T) {
	const workers = 4
	const batches = 50
	s := NewHotnessSampler(100, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := s.Shard(w)
			for b := 0; b < batches; b++ {
				sh.Observe([]int64{int64(w), int64(b % 10), int64(b % 10), 999999, -3})
				if b%10 == 0 {
					if _, err := s.Hotness(); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Batches(); got != workers*batches {
		t.Fatalf("sampled %d batches, want %d", got, workers*batches)
	}
	h, err := s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	total := float64(workers * batches)
	// Key 7 appears only as b%10==7: 5 batches per worker.
	if got := h[7] * total; math.Abs(got-float64(workers*5)) > 1e-9 {
		t.Fatalf("key 7 count %g, want %d", got, workers*5)
	}
	// Key 0: all 50 of worker 0's batches (own key, deduped against the
	// b%10==0 hits) plus 5 b%10==0 batches from each other worker.
	if got := h[0] * total; math.Abs(got-float64(batches+(workers-1)*5)) > 1e-9 {
		t.Fatalf("key 0 count %g, want %d", got, batches+(workers-1)*5)
	}
	// Out-of-range keys (999999, -3) must be ignored.
	if h[99] != 0 {
		t.Fatalf("key 99 hotness %g, want 0", h[99])
	}
	if _, err := NewHotnessSampler(10, 1).Hotness(); err == nil {
		t.Fatal("empty sampler accepted")
	}
}

// TestRefreshTelemetryGauges checks SetTelemetry publishes the report.
func TestRefreshTelemetryGauges(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(2)
	sys.SetTelemetry(reg)

	h2 := make(workload.Hotness, 2000)
	for i := range h2 {
		h2[i] = in.Hotness[2000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 100
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range reg.Samples() {
		vals[s.Name] = s.Value
	}
	if vals["cache_refresh_total"] != 1 {
		t.Fatalf("refresh counter %g", vals["cache_refresh_total"])
	}
	if vals["cache_refresh_active"] != 0 {
		t.Fatal("refresh still marked active")
	}
	if vals["cache_refresh_last_duration_seconds"] != rep.Duration ||
		vals["cache_refresh_last_update_seconds"] != rep.UpdateSeconds ||
		vals["cache_refresh_last_evicted_entries"] != float64(rep.EvictedEntries) {
		t.Fatalf("gauges %v do not match report %+v", vals, rep)
	}
}

// TestRefreshSolveStats: a SolveStats attached to the config flows into the
// report, the solve-wall gauges, and the refresh-solve span args — the
// channel the core engine uses to surface real (measured) solve cost next
// to the simulated Fig. 17 replay.
func TestRefreshSolveStats(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(2)
	sys.SetTelemetry(reg)
	rec := timeline.NewRecorder(1, 1024)
	sys.SetTimeline(rec)

	h2 := make(workload.Hotness, 2000)
	for i := range h2 {
		h2[i] = in.Hotness[2000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 200
	cfg.Solve = &SolveStats{WallSeconds: 0.042, Nodes: 37, Workers: 4, WarmStart: true}
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solve != cfg.Solve {
		t.Fatalf("report Solve %+v, want the config's stats", rep.Solve)
	}
	vals := map[string]float64{}
	for _, s := range reg.Samples() {
		vals[s.Name] = s.Value
	}
	if vals["cache_refresh_last_solve_wall_seconds"] != 0.042 {
		t.Fatalf("solve wall gauge %g", vals["cache_refresh_last_solve_wall_seconds"])
	}
	if vals["cache_refresh_last_solve_nodes"] != 37 {
		t.Fatalf("solve nodes gauge %g", vals["cache_refresh_last_solve_nodes"])
	}
	var solve *timeline.Event
	for _, ev := range rec.Events() {
		if ev.Name == "refresh-solve" {
			ev := ev
			solve = &ev
		}
	}
	if solve == nil {
		t.Fatal("missing refresh-solve span")
	}
	args := map[string]float64{}
	for i := int32(0); i < solve.NArgs; i++ {
		args[solve.Args[i].Key] = solve.Args[i].Val
	}
	if args["solve_wall_seconds"] != 0.042 || args["solve_nodes"] != 37 ||
		args["workers"] != 4 || args["warm_start"] != 1 {
		t.Fatalf("refresh-solve span args %v", args)
	}

	// Without stats the span carries no solve args and the gauges are
	// zeroed: they describe the *last* refresh, and a stat-less (heuristic)
	// refresh must not leave the previous MILP solve's wall time and node
	// count published against the wrong placement.
	cfg.Solve = nil
	if _, err := sys.Refresh(pl, 0.001, cfg); err != nil {
		t.Fatal(err)
	}
	var last *timeline.Event
	for _, ev := range rec.Events() {
		if ev.Name == "refresh-solve" {
			ev := ev
			last = &ev
		}
	}
	if last.NArgs != 0 {
		t.Fatalf("stat-less refresh-solve span has %d args", last.NArgs)
	}
	vals = map[string]float64{}
	for _, s := range reg.Samples() {
		vals[s.Name] = s.Value
	}
	if vals["cache_refresh_last_solve_wall_seconds"] != 0 {
		t.Fatalf("stale solve wall gauge %g after stat-less refresh",
			vals["cache_refresh_last_solve_wall_seconds"])
	}
	if vals["cache_refresh_last_solve_nodes"] != 0 {
		t.Fatalf("stale solve nodes gauge %g after stat-less refresh",
			vals["cache_refresh_last_solve_nodes"])
	}
	if vals["cache_refresh_total"] != 2 {
		t.Fatalf("refresh counter %g after two refreshes", vals["cache_refresh_total"])
	}
}

// TestHotnessSamplerEvery pins the per-shard sampling cadence (the old
// single-threaded behaviour, now via shard 0).
func TestHotnessSamplerEvery(t *testing.T) {
	s := NewHotnessSampler(10, 2)
	s.Observe([]int64{1, 1, 2}) // recorded
	s.Observe([]int64{3})       // skipped
	s.Observe([]int64{1})       // recorded
	if s.Batches() != 2 {
		t.Fatalf("sampled %d", s.Batches())
	}
	h, err := s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	if h[1] != 1 || h[2] != 0.5 || h[3] != 0 {
		t.Fatalf("hotness %v", h[:4])
	}
}

// TestRefreshTimelineSpans checks SetTimeline renders a refresh as the
// Fig.-17 span layout: one parent refresh span, one solve child starting
// with it, and per-update-step spans whose busy time tiles the update phase
// with pause gaps.
func TestRefreshTimelineSpans(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	rec := timeline.NewRecorder(1, 1024)
	sys.SetTimeline(rec)

	h2 := make(workload.Hotness, 2000)
	for i := range h2 {
		h2[i] = in.Hotness[2000-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 200
	cfg.UpdateBandwidth = 1e6
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var root, solve *timeline.Event
	var steps []timeline.Event
	for _, ev := range rec.Events() {
		if ev.PID != timeline.ProcControl || ev.TID != timeline.TIDRefresh {
			t.Fatalf("refresh span on wrong track: pid %d tid %d", ev.PID, ev.TID)
		}
		ev := ev
		switch ev.Name {
		case "refresh":
			root = &ev
		case "refresh-solve":
			solve = &ev
		case "refresh-update-step":
			steps = append(steps, ev)
		}
	}
	if root == nil || solve == nil {
		t.Fatal("missing refresh or refresh-solve span")
	}
	if math.Abs(root.Dur-rep.Duration) > 1e-9 || math.Abs(solve.Dur-rep.SolveSeconds) > 1e-9 {
		t.Fatalf("durations: refresh %g (want %g), solve %g (want %g)",
			root.Dur, rep.Duration, solve.Dur, rep.SolveSeconds)
	}
	if solve.Start != root.Start {
		t.Fatalf("solve starts at %g, refresh at %g", solve.Start, root.Start)
	}
	moved := rep.EvictedEntries + rep.InsertedEntries
	wantSteps := int(moved / cfg.BatchEntries)
	if moved%cfg.BatchEntries != 0 {
		wantSteps++
	}
	if wantSteps > maxRefreshStepSpans {
		wantSteps = maxRefreshStepSpans
	}
	if len(steps) != wantSteps {
		t.Fatalf("%d update-step spans, want %d (moved %d)", len(steps), wantSteps, moved)
	}
	for i, st := range steps {
		if st.Start < root.Start+rep.SolveSeconds-1e-9 {
			t.Fatalf("step %d starts at %g inside the solve phase", i, st.Start)
		}
		if st.Start+st.Dur > root.Start+root.Dur+1e-9 {
			t.Fatalf("step %d ends at %g past refresh end %g", i, st.Start+st.Dur, root.Start+root.Dur)
		}
		if i > 0 && st.Start < steps[i-1].Start+steps[i-1].Dur {
			t.Fatalf("step %d overlaps step %d", i, i-1)
		}
	}
	// Detach: no further spans recorded.
	sys.SetTimeline(nil)
	before := len(rec.Events())
	if _, err := sys.Refresh(pl, 0.001, cfg); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != before {
		t.Fatalf("detached recorder gained %d events", got-before)
	}
}

// reversedPlacement solves the input with its hotness reversed — the large,
// mostly-disjoint second placement the refresh tests diff against.
func reversedPlacement(t *testing.T, in *solver.Input) *solver.Placement {
	t.Helper()
	n := len(in.Hotness)
	h2 := make(workload.Hotness, n)
	for i := range h2 {
		h2[i] = in.Hotness[n-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}
	return pl2
}

// TestRefreshTimelineIntegerIndexing pins the impact-timeline sampling to
// exact integer indexing: sample j sits at exactly (j-5)*SamplePeriod. The
// old accumulator (t += SamplePeriod) drifted by an ulp per step, and over a
// long refresh the error moved samples across the busy/pause boundaries they
// are classified against.
func TestRefreshTimelineIntegerIndexing(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	pl2 := reversedPlacement(t, in)

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 100
	cfg.UpdateBandwidth = 1e6
	// A period with no exact binary representation, so any accumulation
	// error would be visible immediately.
	cfg.SamplePeriod = 0.1
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("empty timeline")
	}
	for j, st := range rep.Timeline {
		if want := float64(j-5) * cfg.SamplePeriod; st.T != want {
			t.Fatalf("sample %d at T %v, want exactly %v", j, st.T, want)
		}
	}
	if first := rep.Timeline[0].T; first != -5*cfg.SamplePeriod {
		t.Fatalf("first sample at %g", first)
	}
	last := rep.Timeline[len(rep.Timeline)-1].T
	if last >= rep.Duration+5*cfg.SamplePeriod || last < rep.Duration {
		t.Fatalf("last sample at %g for duration %g", last, rep.Duration)
	}
}

// TestRefreshTimelineRemainderStep: with a non-multiple diff the final
// update-step span's busy time must be the remainder transfer, not a full
// BatchEntries step.
func TestRefreshTimelineRemainderStep(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	pl2 := reversedPlacement(t, in)
	rec := timeline.NewRecorder(1, 1024)
	sys.SetTimeline(rec)

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 301
	cfg.UpdateBandwidth = 1e6
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moved := rep.EvictedEntries + rep.InsertedEntries
	rem := moved % cfg.BatchEntries
	if rem == 0 {
		t.Fatalf("diff of %d entries is a multiple of %d; test needs a remainder", moved, cfg.BatchEntries)
	}
	var steps []timeline.Event
	for _, ev := range rec.Events() {
		if ev.Name == "refresh-update-step" {
			steps = append(steps, ev)
		}
	}
	wantSteps := int(moved/cfg.BatchEntries) + 1
	if wantSteps > maxRefreshStepSpans {
		t.Fatalf("%d steps would truncate; shrink the diff or raise BatchEntries", wantSteps)
	}
	if len(steps) != wantSteps {
		t.Fatalf("%d update-step spans, want %d", len(steps), wantSteps)
	}
	perStep := float64(cfg.BatchEntries*int64(sys.EntryBytes)) / cfg.UpdateBandwidth
	remStep := float64(rem*int64(sys.EntryBytes)) / cfg.UpdateBandwidth
	for i, st := range steps[:len(steps)-1] {
		if math.Abs(st.Dur-perStep) > 1e-12 {
			t.Fatalf("full step %d busy %g, want %g", i, st.Dur, perStep)
		}
	}
	if tail := steps[len(steps)-1]; math.Abs(tail.Dur-remStep) > 1e-12 {
		t.Fatalf("remainder step busy %g, want %g (rem %d entries)", tail.Dur, remStep, rem)
	}
}

// TestRefreshTimelineTruncation: a diff spanning more than
// maxRefreshStepSpans update steps emits exactly the cap in step spans plus
// one refresh-update-steps-truncated instant carrying the omitted count; the
// root span's update_steps arg still reports the true total.
func TestRefreshTimelineTruncation(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	pl2 := reversedPlacement(t, in)
	rec := timeline.NewRecorder(1, 4096)
	sys.SetTimeline(rec)

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 7 // tiny steps force the span cap
	cfg.UpdateBandwidth = 1e9
	rep, err := sys.Refresh(pl2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moved := rep.EvictedEntries + rep.InsertedEntries
	totalSteps := moved / cfg.BatchEntries
	if moved%cfg.BatchEntries != 0 {
		totalSteps++
	}
	if totalSteps <= maxRefreshStepSpans {
		t.Fatalf("only %d steps; test needs more than %d", totalSteps, maxRefreshStepSpans)
	}
	var root, trunc *timeline.Event
	stepSpans := 0
	for _, ev := range rec.Events() {
		ev := ev
		switch ev.Name {
		case "refresh":
			root = &ev
		case "refresh-update-step":
			stepSpans++
		case "refresh-update-steps-truncated":
			trunc = &ev
		}
	}
	if stepSpans != maxRefreshStepSpans {
		t.Fatalf("%d update-step spans, want the %d cap", stepSpans, maxRefreshStepSpans)
	}
	if trunc == nil {
		t.Fatal("missing refresh-update-steps-truncated instant")
	}
	args := map[string]float64{}
	for i := int32(0); i < trunc.NArgs; i++ {
		args[trunc.Args[i].Key] = trunc.Args[i].Val
	}
	if want := float64(totalSteps - maxRefreshStepSpans); args["omitted_steps"] != want {
		t.Fatalf("omitted_steps %g, want %g", args["omitted_steps"], want)
	}
	if root == nil {
		t.Fatal("missing refresh span")
	}
	rootArgs := map[string]float64{}
	for i := int32(0); i < root.NArgs; i++ {
		rootArgs[root.Args[i].Key] = root.Args[i].Val
	}
	if rootArgs["update_steps"] != float64(totalSteps) {
		t.Fatalf("root update_steps %g, want %d", rootArgs["update_steps"], totalSteps)
	}
}

// TestPlacementDeltaIncremental pins the entry-wise diff that replaced the
// duplicated per-GPU key-set computation: the delta lists exactly the
// entries whose storage changed, in ascending key order, and applying it
// moves strictly less than the rebuild volume when the placements overlap.
func TestPlacementDeltaIncremental(t *testing.T) {
	p := platform.ServerC()
	pl, in := testPlacement(t, p, 2000, 0.1)
	// Mildly perturbed hotness: most of the hot head survives, so an
	// incremental apply must beat the full rebuild by a wide margin.
	h2 := make(workload.Hotness, 2000)
	copy(h2, in.Hotness)
	for i := 0; i < len(h2); i += 7 {
		h2[i] *= 1.5
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}

	delta := placementDelta(pl, pl2, p.N)
	var moved int64
	for g := range delta {
		for i, k := range delta[g].evict {
			if !pl.StoredOn(g, k) || pl2.StoredOn(g, k) {
				t.Fatalf("gpu %d evict key %d not a stored->dropped transition", g, k)
			}
			if i > 0 && k <= delta[g].evict[i-1] {
				t.Fatalf("gpu %d evict list not ascending at %d", g, i)
			}
		}
		for i, k := range delta[g].insert {
			if pl.StoredOn(g, k) || !pl2.StoredOn(g, k) {
				t.Fatalf("gpu %d insert key %d not an absent->stored transition", g, k)
			}
			if i > 0 && k <= delta[g].insert[i-1] {
				t.Fatalf("gpu %d insert list not ascending at %d", g, i)
			}
		}
		moved += int64(len(delta[g].evict) + len(delta[g].insert))
	}
	// Completeness: every storage change is in the delta (the loop above
	// already proved every delta entry is a real change).
	var want int64
	for g := 0; g < p.N; g++ {
		for e := int64(0); e < 2000; e++ {
			if pl.StoredOn(g, e) != pl2.StoredOn(g, e) {
				want++
			}
		}
	}
	if moved != want {
		t.Fatalf("delta moves %d entries, %d storage cells changed", moved, want)
	}
	rebuild := storedEntries(pl) + storedEntries(pl2)
	if moved == 0 || moved >= rebuild {
		t.Fatalf("delta %d not strictly below rebuild %d", moved, rebuild)
	}

	// Refresh reports the same accounting.
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Refresh(pl2, 0.001, DefaultRefreshConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictedEntries+rep.InsertedEntries != moved {
		t.Fatalf("report moves %d, delta %d", rep.EvictedEntries+rep.InsertedEntries, moved)
	}
	if rep.RebuildEntries != rebuild {
		t.Fatalf("report rebuild %d, want %d", rep.RebuildEntries, rebuild)
	}
}
