package cache

import (
	"fmt"
	"sort"
	"sync"

	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

// DriftConfig tunes the hotness-drift detector.
type DriftConfig struct {
	// TopK is the hot-head size the overlap statistic tracks. 0 defaults to
	// 1/16 of the entry space (min 16) — roughly the mass a cache-ratio-
	// sized head covers on the paper's skews.
	TopK int
	// Threshold is the drift score in [0, 1] above which Check reports
	// Drifted (0 defaults to 0.3). The score is max(1 - top-K overlap,
	// weighted rank distance), so 0.3 means "30% of the hot head changed
	// identity, or the head's ranks moved 30% of the key space on average".
	Threshold float64
	// MinBatches gates checking: a window with fewer sampled batches is too
	// noisy to act on and Check reports Drifted = false regardless of the
	// score (0 defaults to 16).
	MinBatches int
	// MaxBatches bounds the observation window: once a check's window
	// reaches this many sampled batches, the sampler is reset after scoring
	// so the next window starts fresh. Without the cap an old window
	// dilutes a sudden shift — the post-shift batches are outvoted by
	// accumulated pre-shift mass and the trigger lags by the window's age.
	// 0 defaults to 4x MinBatches; values below MinBatches are raised to it.
	MaxBatches int
}

func (c DriftConfig) normalize(numEntries int64) DriftConfig {
	if c.TopK <= 0 {
		c.TopK = int(numEntries / 16)
		if c.TopK < 16 {
			c.TopK = 16
		}
	}
	if int64(c.TopK) > numEntries {
		c.TopK = int(numEntries)
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.3
	}
	if c.MinBatches <= 0 {
		c.MinBatches = 16
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 4 * c.MinBatches
	}
	if c.MaxBatches < c.MinBatches {
		c.MaxBatches = c.MinBatches
	}
	return c
}

// DriftStatus is one drift check's outcome.
type DriftStatus struct {
	// Batches is how many sampled batches the measured window covers.
	Batches int
	// TopKOverlap is the reference-hotness-weighted fraction of the
	// reference distribution's top-K entries still in the measured top-K
	// (1 = stationary head). Mass weighting keeps sampling noise at the K
	// boundary — large tie regions of near-equal counts — from reading as
	// drift: a boundary entry that slips out carries little mass, while the
	// head moving out collapses the overlap immediately.
	TopKOverlap float64
	// RankDistance is the reference-hotness-weighted mean rank displacement
	// of the reference top-K, normalized by the key-space size (0 =
	// stationary ranks, 1 = the whole head moved to the far end).
	RankDistance float64
	// Score is max(1 - TopKOverlap, RankDistance).
	Score float64
	// Drifted reports Score > Threshold with at least MinBatches sampled.
	Drifted bool
	// Measured is the merged measured hotness the check ran against. It
	// aliases the detector's internal buffer and is only valid until the
	// next Check; callers that act on it (triggering a refresh) must copy.
	Measured workload.Hotness
}

// driftMetrics are the detector's telemetry gauges, published per check.
type driftMetrics struct {
	checks   *telemetry.Counter
	score    *telemetry.Gauge
	overlap  *telemetry.Gauge
	rankDist *telemetry.Gauge
	batches  *telemetry.Gauge
}

// DriftDetector decides when the sampled hotness has moved far enough from
// the distribution the current placement was solved against to justify a
// re-solve (the closed-loop replacement for §7.2's fixed-cadence refresh).
//
// Two statistics are computed per check, both against a *reference*
// distribution (the hotness behind the live placement):
//
//   - top-K overlap: how much of the reference's hot head is still hot. A
//     flash-crowd key-set swap collapses this immediately.
//   - weighted rank distance: how far the reference head's ranks moved,
//     weighted by reference hotness. A skew change (diurnal Zipf-α sweep)
//     that keeps the head's identity but rebalances its mass shows up here.
//
// The measured side merges incrementally from the sampler's existing
// per-worker shards into a reused buffer — a check allocates nothing in
// steady state and never blocks observation for longer than one shard merge.
type DriftDetector struct {
	cfg     DriftConfig
	sampler *HotnessSampler

	mu      sync.Mutex
	refHot  workload.Hotness // reference hotness (copied at Rebase)
	refRank []int32          // entry -> reference rank
	refTop  []bool           // entry -> in reference top-K
	refMass float64          // Σ refHot over reference top-K

	// Reused check scratch.
	measured workload.Hotness
	measRank []int32 // entry -> measured rank
	order    []int32 // rank -> entry, sort scratch

	met *driftMetrics
}

// NewDriftDetector builds a detector over the sampler's measured stream,
// referenced against the hotness the current placement assumes.
func NewDriftDetector(sampler *HotnessSampler, reference workload.Hotness, cfg DriftConfig) (*DriftDetector, error) {
	if sampler == nil {
		return nil, fmt.Errorf("cache: drift detector needs a sampler")
	}
	if int64(len(reference)) != sampler.NumEntries() {
		return nil, fmt.Errorf("cache: reference hotness for %d entries, sampler has %d",
			len(reference), sampler.NumEntries())
	}
	n := len(reference)
	d := &DriftDetector{
		cfg:      cfg.normalize(int64(n)),
		sampler:  sampler,
		refHot:   make(workload.Hotness, n),
		refRank:  make([]int32, n),
		refTop:   make([]bool, n),
		measured: make(workload.Hotness, n),
		measRank: make([]int32, n),
		order:    make([]int32, n),
	}
	d.rebase(reference)
	return d, nil
}

// Config returns the normalized configuration the detector runs with.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// SetTelemetry registers the detector's gauges in reg and publishes every
// later Check through them. Pass nil to detach.
func (d *DriftDetector) SetTelemetry(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if reg == nil {
		d.met = nil
		return
	}
	d.met = &driftMetrics{
		checks:   reg.Counter("cache_drift_checks_total", "hotness-drift checks performed"),
		score:    reg.Gauge("cache_drift_score", "last drift check's score: max(1 - top-K overlap, weighted rank distance)"),
		overlap:  reg.Gauge("cache_drift_topk_overlap", "last drift check's top-K hotness overlap with the placement's reference"),
		rankDist: reg.Gauge("cache_drift_rank_distance", "last drift check's reference-weighted normalized rank displacement"),
		batches:  reg.Gauge("cache_drift_window_batches", "sampled batches the last drift check's window covered"),
	}
}

// Rebase replaces the reference distribution — call after a refresh, with
// the hotness the new placement was solved against, so subsequent checks
// measure drift relative to what the cache now assumes.
func (d *DriftDetector) Rebase(reference workload.Hotness) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(reference) != len(d.refHot) {
		return fmt.Errorf("cache: rebase hotness for %d entries, detector has %d",
			len(reference), len(d.refHot))
	}
	d.rebase(reference)
	return nil
}

// rebase recomputes the reference ranking and top-K set. Caller holds d.mu
// (or is the constructor).
func (d *DriftDetector) rebase(reference workload.Hotness) {
	copy(d.refHot, reference)
	rankInto(d.refHot, d.order, d.refRank)
	clear(d.refTop)
	d.refMass = 0
	for r := 0; r < d.cfg.TopK; r++ {
		e := d.order[r]
		d.refTop[e] = true
		d.refMass += d.refHot[e]
	}
}

// Check merges the sampler's current window and scores it against the
// reference. An empty window (no batches sampled yet) returns an error;
// a short window (< MinBatches) returns the scores with Drifted forced
// false.
func (d *DriftDetector) Check() (DriftStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	batches, err := d.sampler.HotnessInto(d.measured)
	if err != nil {
		return DriftStatus{}, err
	}
	rankInto(d.measured, d.order, d.measRank)

	// Mass-weighted top-K overlap and weighted rank distance, both over the
	// reference head in one pass.
	overlap, dist := 1.0, 0.0
	if d.refMass > 0 {
		hitMass := 0.0
		n := float64(len(d.refHot))
		topK := int32(d.cfg.TopK)
		for e, top := range d.refTop {
			if !top {
				continue
			}
			if d.measRank[e] < topK {
				hitMass += d.refHot[e]
			}
			disp := float64(d.refRank[e]) - float64(d.measRank[e])
			if disp < 0 {
				disp = -disp
			}
			dist += d.refHot[e] * disp / n
		}
		overlap = hitMass / d.refMass
		dist /= d.refMass
	}

	st := DriftStatus{
		Batches:      batches,
		TopKOverlap:  overlap,
		RankDistance: dist,
		Score:        max(1-overlap, dist),
		Measured:     d.measured,
	}
	st.Drifted = st.Score > d.cfg.Threshold && batches >= d.cfg.MinBatches
	// Slide the window: a full one restarts after scoring (the measured
	// buffer itself stays valid — Reset clears the shards, not our merge).
	if batches >= d.cfg.MaxBatches {
		d.sampler.Reset()
	}
	if m := d.met; m != nil {
		m.checks.Add(0, 1)
		m.score.Set(st.Score)
		m.overlap.Set(st.TopKOverlap)
		m.rankDist.Set(st.RankDistance)
		m.batches.Set(float64(batches))
	}
	return st, nil
}

// rankInto sorts entries by descending hotness (ties by ascending entry,
// so ranking is deterministic) into order (rank -> entry) and fills rank
// (entry -> rank). Both buffers are caller-owned and reused across calls.
func rankInto(h workload.Hotness, order []int32, rank []int32) {
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := order[a], order[b]
		if h[ea] != h[eb] {
			return h[ea] > h[eb]
		}
		return ea < eb
	})
	for r, e := range order {
		rank[e] = int32(r)
	}
}
