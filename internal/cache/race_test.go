package cache

import (
	"bytes"
	"sync"
	"testing"

	"ugache/internal/emb"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/workload"
)

// TestConcurrentGatherDuringRefresh hammers Gather/Locate/HitCounts from
// many goroutines while Refresh repeatedly flips between two placements.
// Run with -race. Every gathered row must match the host table exactly
// (reads are never torn), and every Locate must agree with one of the two
// placements in play (old or new, never a mix).
func TestConcurrentGatherDuringRefresh(t *testing.T) {
	const n = 3000
	p := platform.ServerC()
	pl, in := testPlacement(t, p, n, 0.1)
	table, err := emb.NewMaterialized("t", n, 16, emb.Float32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity, Source: table})
	if err != nil {
		t.Fatal(err)
	}

	// The alternate placement (reversed hotness).
	h2 := make(workload.Hotness, n)
	for i := range h2 {
		h2[i] = in.Hotness[n-1-i]
	}
	in2 := *in
	in2.Hotness = h2
	pl2, err := (solver.UGache{}).Solve(&in2)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 6
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			z, _ := workload.NewZipf(n, 1.1)
			keys := make([]int64, 16)
			out := make([]byte, len(keys)*table.EntryBytes())
			want := make([]byte, table.EntryBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = z.Sample(r)
				}
				dst := w % p.N
				if err := sys.Gather(dst, keys, out); err != nil {
					t.Errorf("gather: %v", err)
					return
				}
				for i, k := range keys {
					table.ReadRow(k, want)
					if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
						t.Errorf("torn gather for key %d", k)
						return
					}
				}
				// Locate must agree with one of the two placements in full.
				k := keys[0]
				src, _, err := sys.Locate(dst, k)
				if err != nil {
					t.Errorf("locate: %v", err)
					return
				}
				if src != pl.SourceOf(dst, k) && src != pl2.SourceOf(dst, k) {
					t.Errorf("key %d: source %d matches neither placement (%d / %d)",
						k, src, pl.SourceOf(dst, k), pl2.SourceOf(dst, k))
					return
				}
				if l, rm, h, err := sys.HitCounts(dst, keys); err != nil || l+rm+h != len(keys) {
					t.Errorf("hitcounts %d/%d/%d err %v", l, rm, h, err)
					return
				}
			}
		}(w)
	}

	cfg := DefaultRefreshConfig()
	cfg.BatchEntries = 500
	for round := 0; round < 8; round++ {
		target := pl2
		if round%2 == 1 {
			target, err = (solver.UGache{}).Solve(in)
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sys.Refresh(target, 0.001, cfg); err != nil {
			t.Fatalf("refresh round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
