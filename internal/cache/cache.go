// Package cache holds the runtime cache state of UGache (paper §4, §7):
// per-GPU hash tables mapping cached keys to <GPU, Offset> source locations,
// the Filler that materializes a solved placement into simulated GPU
// memory, the foreground hotness sampler, and the background Refresher that
// periodically re-solves the policy and applies the diff in small batches
// with bounded foreground impact (§7.2, Fig. 17).
//
// Concurrency model: all placement state (hash tables, arenas, the
// placement itself) lives in an immutable snapshot behind an atomic
// pointer. Readers (Locate, Gather, HitCounts) load the snapshot once per
// call and never observe mutation; the Refresher builds the next snapshot
// off to the side — cloning the tables and arenas, applying the eviction/
// insertion diff in small batches — and publishes it with a single atomic
// swap. Any individual read therefore sees either the old or the new
// placement in full, never a torn mix.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ugache/internal/hashtable"
	"ugache/internal/memsim"
	"ugache/internal/platform"
	"ugache/internal/solver"
	"ugache/internal/timeline"
)

// RowSource supplies embedding rows from (simulated) host memory; both
// emb.Table and emb.MultiTable implement it. Implementations must be safe
// for concurrent ReadRow calls.
type RowSource interface {
	ReadRow(key int64, dst []byte) error
}

// GPUCache is one GPU's cache: a flat hash table for locate() plus the
// memory arena holding cached rows. Refreshes recycle evicted slots through
// a free list (the arena itself is a bump allocator). A GPUCache belongs to
// exactly one snapshot; once the snapshot is published it is never mutated.
type GPUCache struct {
	GPU        int
	Table      *hashtable.Table
	Arena      *memsim.Arena
	EntryBytes int
	freeSlots  []int64
}

// allocSlot returns a row slot, reusing freed ones first.
func (c *GPUCache) allocSlot() (int64, error) {
	if n := len(c.freeSlots); n > 0 {
		off := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return off, nil
	}
	return c.Arena.Alloc(int64(c.EntryBytes))
}

// evict removes a key and recycles its slot; it reports whether the key was
// cached.
func (c *GPUCache) evict(key int64) bool {
	loc, ok := c.Table.Lookup(key)
	if !ok {
		return false
	}
	c.Table.Delete(key)
	c.freeSlots = append(c.freeSlots, loc.Offset)
	return true
}

// insert caches a key, copying the row from src in functional mode.
func (c *GPUCache) insert(key int64, src RowSource, buf []byte) error {
	off, err := c.allocSlot()
	if err != nil {
		return err
	}
	if src != nil {
		if err := src.ReadRow(key, buf); err != nil {
			return err
		}
		if err := c.Arena.Write(off, buf); err != nil {
			return err
		}
	}
	return c.Table.Insert(key, hashtable.Location{GPU: int32(c.GPU), Offset: off})
}

// clone deep-copies the cache, pointing its arena into the given clone of
// the snapshot's space.
func (c *GPUCache) clone(arena *memsim.Arena) *GPUCache {
	return &GPUCache{
		GPU:        c.GPU,
		Table:      c.Table.Clone(),
		Arena:      arena,
		EntryBytes: c.EntryBytes,
		freeSlots:  append([]int64(nil), c.freeSlots...),
	}
}

// snapshot is one immutable view of the multi-GPU cache: the placement it
// materializes plus the per-GPU tables and arenas holding it.
type snapshot struct {
	placement *solver.Placement
	caches    []*GPUCache
	space     *memsim.Space
}

// clone deep-copies the snapshot so the Refresher can mutate it privately.
func (sn *snapshot) clone() *snapshot {
	cp := &snapshot{
		placement: sn.placement,
		caches:    make([]*GPUCache, len(sn.caches)),
		space:     sn.space.Clone(),
	}
	for g, c := range sn.caches {
		cp.caches[g] = c.clone(cp.space.GPUs[g])
	}
	return cp
}

// System is the multi-GPU cache state for one placement. It is safe for
// any number of concurrent readers; Refresh may run concurrently with them
// (concurrent Refreshes serialize among themselves).
type System struct {
	P          *platform.Platform
	EntryBytes int

	source RowSource // nil in size-only mode
	snap   atomic.Pointer[snapshot]
	// refreshMu serializes writers: Refresh clones the current snapshot,
	// mutates the clone, and publishes it; two concurrent refreshes must not
	// both clone the same base.
	refreshMu sync.Mutex
	// gatherPool recycles GatherScratch buffers for callers that use the
	// plain Gather entry point instead of carrying their own scratch.
	gatherPool sync.Pool
	// refreshMet, when set via SetTelemetry, receives each refresh report
	// as gauges (§7.2 impact timeline).
	refreshMet atomic.Pointer[refreshMetrics]
	// refreshTL, when set via SetTimeline, receives each refresh's
	// Fig.-17-style span timeline (solve phase plus per-update-step spans).
	refreshTL atomic.Pointer[timeline.Recorder]
}

// Placement returns the currently published placement.
func (s *System) Placement() *solver.Placement { return s.snap.Load().placement }

// Caches returns the currently published per-GPU caches. The returned
// snapshot is immutable; a concurrent Refresh publishes new caches rather
// than mutating these.
func (s *System) Caches() []*GPUCache { return s.snap.Load().caches }

// Functional reports whether the system holds real bytes (a RowSource was
// attached at Fill time).
func (s *System) Functional() bool { return s.source != nil }

// FillOptions controls Fill.
type FillOptions struct {
	// CapacityEntries[g] sizes GPU g's arena; it must cover the
	// placement's usage.
	CapacityEntries []int64
	// Source, when non-nil, enables functional mode: rows are actually
	// copied into backed arenas so Gather can verify content.
	Source RowSource
}

// Fill materializes a placement: for every GPU, each stored block's entries
// are allocated in the arena and registered in the hash table (the Filler
// of §4). In functional mode the bytes are copied from the host source.
func Fill(p *platform.Platform, pl *solver.Placement, opt FillOptions) (*System, error) {
	if p == nil || pl == nil {
		return nil, fmt.Errorf("cache: nil platform or placement")
	}
	if pl.NumGPUs != p.N {
		return nil, fmt.Errorf("cache: placement for %d GPUs on %d-GPU platform", pl.NumGPUs, p.N)
	}
	if len(opt.CapacityEntries) != p.N {
		return nil, fmt.Errorf("cache: %d capacities for %d GPUs", len(opt.CapacityEntries), p.N)
	}
	eb := pl.EntryBytes
	sys := &System{P: p, EntryBytes: eb, source: opt.Source}
	sn := &snapshot{placement: pl, caches: make([]*GPUCache, p.N)}
	var err error
	if opt.Source != nil {
		var total int64
		for _, c := range opt.CapacityEntries {
			if c > total {
				total = c
			}
		}
		sn.space, err = memsim.NewBackedSpace(p.N, total*int64(eb))
		if err != nil {
			return nil, err
		}
	} else {
		maxCap := int64(0)
		for _, c := range opt.CapacityEntries {
			if c > maxCap {
				maxCap = c
			}
		}
		sn.space = memsim.NewSpace(p.N, maxCap*int64(eb))
	}
	used := pl.CapacityUsed()
	for g := 0; g < p.N; g++ {
		if used[g] > opt.CapacityEntries[g] {
			return nil, fmt.Errorf("cache: gpu %d placement uses %d entries, capacity %d",
				g, used[g], opt.CapacityEntries[g])
		}
		sn.caches[g] = &GPUCache{
			GPU:        g,
			Table:      hashtable.New(int(used[g]) + 16),
			Arena:      sn.space.GPUs[g],
			EntryBytes: eb,
		}
	}
	// Insert every stored entry.
	buf := make([]byte, eb)
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		for g, stored := range b.Store {
			if !stored {
				continue
			}
			c := sn.caches[g]
			for r := b.Start; r < b.End; r++ {
				key := int64(pl.ByRank[r])
				off, err := c.Arena.Alloc(int64(eb))
				if err != nil {
					return nil, fmt.Errorf("cache: gpu %d: %w", g, err)
				}
				if opt.Source != nil {
					if err := opt.Source.ReadRow(key, buf); err != nil {
						return nil, err
					}
					if err := c.Arena.Write(off, buf); err != nil {
						return nil, err
					}
				}
				if err := c.Table.Insert(key, hashtable.Location{GPU: int32(g), Offset: off}); err != nil {
					return nil, err
				}
			}
		}
	}
	sys.snap.Store(sn)
	return sys, nil
}

// locate resolves where GPU dst finds a key within one snapshot.
func (sn *snapshot) locate(p *platform.Platform, dst int, key int64) (src platform.SourceID, loc hashtable.Location, err error) {
	if dst < 0 || dst >= p.N {
		return 0, loc, fmt.Errorf("cache: bad gpu %d", dst)
	}
	if key < 0 || key >= sn.placement.NumEntries() {
		return 0, loc, fmt.Errorf("cache: key %d out of range", key)
	}
	src = sn.placement.SourceOf(dst, key)
	// Host and the cluster's network tier both resolve outside the GPU
	// caches: the row is read from the backing source (on a cluster the
	// owning machine's host shard holds the same immutable bytes; the wire
	// move is costed by the extraction model, not the functional path).
	if src == p.Host() || (p.HasNetwork() && src == p.Network()) {
		return src, loc, nil
	}
	l, ok := sn.caches[src].Table.Lookup(key)
	if !ok {
		return 0, loc, fmt.Errorf("cache: placement says gpu %d holds key %d but the hashtable disagrees", src, key)
	}
	return src, l, nil
}

// Locate resolves where GPU dst finds a key: its access-arrangement source
// and, when that source is a GPU, the concrete <GPU, Offset> location from
// the owner's hash table (the locate() step of the extract function, §3.2).
func (s *System) Locate(dst int, key int64) (src platform.SourceID, loc hashtable.Location, err error) {
	return s.snap.Load().locate(s.P, dst, key)
}

// HitCounts classifies a batch of keys for one GPU (local, remote, host) —
// the measured counterpart of solver.Placement.Stats. The whole batch is
// classified against a single snapshot.
func (s *System) HitCounts(dst int, keys []int64) (local, remote, host int, err error) {
	sn := s.snap.Load()
	for _, key := range keys {
		src, _, err := sn.locate(s.P, dst, key)
		switch {
		case err != nil:
			return 0, 0, 0, err
		case src == s.P.Host():
			host++
		case int(src) == dst:
			local++
		default:
			remote++
		}
	}
	return local, remote, host, nil
}
