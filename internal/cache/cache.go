// Package cache holds the runtime cache state of UGache (paper §4, §7):
// per-GPU hash tables mapping cached keys to <GPU, Offset> source locations,
// the Filler that materializes a solved placement into simulated GPU
// memory, the foreground hotness sampler, and the background Refresher that
// periodically re-solves the policy and applies the diff in small batches
// with bounded foreground impact (§7.2, Fig. 17).
package cache

import (
	"fmt"

	"ugache/internal/hashtable"
	"ugache/internal/memsim"
	"ugache/internal/platform"
	"ugache/internal/solver"
)

// RowSource supplies embedding rows from (simulated) host memory; both
// emb.Table and emb.MultiTable implement it.
type RowSource interface {
	ReadRow(key int64, dst []byte) error
}

// GPUCache is one GPU's cache: a flat hash table for locate() plus the
// memory arena holding cached rows. Refreshes recycle evicted slots through
// a free list (the arena itself is a bump allocator).
type GPUCache struct {
	GPU        int
	Table      *hashtable.Table
	Arena      *memsim.Arena
	EntryBytes int
	freeSlots  []int64
}

// allocSlot returns a row slot, reusing freed ones first.
func (c *GPUCache) allocSlot() (int64, error) {
	if n := len(c.freeSlots); n > 0 {
		off := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return off, nil
	}
	return c.Arena.Alloc(int64(c.EntryBytes))
}

// evict removes a key and recycles its slot; it reports whether the key was
// cached.
func (c *GPUCache) evict(key int64) bool {
	loc, ok := c.Table.Lookup(key)
	if !ok {
		return false
	}
	c.Table.Delete(key)
	c.freeSlots = append(c.freeSlots, loc.Offset)
	return true
}

// insert caches a key, copying the row from src in functional mode.
func (c *GPUCache) insert(key int64, src RowSource, buf []byte) error {
	off, err := c.allocSlot()
	if err != nil {
		return err
	}
	if src != nil {
		if err := src.ReadRow(key, buf); err != nil {
			return err
		}
		if err := c.Arena.Write(off, buf); err != nil {
			return err
		}
	}
	return c.Table.Insert(key, hashtable.Location{GPU: int32(c.GPU), Offset: off})
}

// System is the multi-GPU cache state for one placement.
type System struct {
	P          *platform.Platform
	Placement  *solver.Placement
	Caches     []*GPUCache
	EntryBytes int
	space      *memsim.Space
	source     RowSource // nil in size-only mode
}

// FillOptions controls Fill.
type FillOptions struct {
	// CapacityEntries[g] sizes GPU g's arena; it must cover the
	// placement's usage.
	CapacityEntries []int64
	// Source, when non-nil, enables functional mode: rows are actually
	// copied into backed arenas so Gather can verify content.
	Source RowSource
}

// Fill materializes a placement: for every GPU, each stored block's entries
// are allocated in the arena and registered in the hash table (the Filler
// of §4). In functional mode the bytes are copied from the host source.
func Fill(p *platform.Platform, pl *solver.Placement, opt FillOptions) (*System, error) {
	if p == nil || pl == nil {
		return nil, fmt.Errorf("cache: nil platform or placement")
	}
	if pl.NumGPUs != p.N {
		return nil, fmt.Errorf("cache: placement for %d GPUs on %d-GPU platform", pl.NumGPUs, p.N)
	}
	if len(opt.CapacityEntries) != p.N {
		return nil, fmt.Errorf("cache: %d capacities for %d GPUs", len(opt.CapacityEntries), p.N)
	}
	eb := pl.EntryBytes
	sys := &System{P: p, Placement: pl, EntryBytes: eb, source: opt.Source}
	sys.Caches = make([]*GPUCache, p.N)
	var err error
	if opt.Source != nil {
		var total int64
		for _, c := range opt.CapacityEntries {
			if c > total {
				total = c
			}
		}
		sys.space, err = memsim.NewBackedSpace(p.N, total*int64(eb))
		if err != nil {
			return nil, err
		}
	} else {
		maxCap := int64(0)
		for _, c := range opt.CapacityEntries {
			if c > maxCap {
				maxCap = c
			}
		}
		sys.space = memsim.NewSpace(p.N, maxCap*int64(eb))
	}
	used := pl.CapacityUsed()
	for g := 0; g < p.N; g++ {
		if used[g] > opt.CapacityEntries[g] {
			return nil, fmt.Errorf("cache: gpu %d placement uses %d entries, capacity %d",
				g, used[g], opt.CapacityEntries[g])
		}
		sys.Caches[g] = &GPUCache{
			GPU:        g,
			Table:      hashtable.New(int(used[g]) + 16),
			Arena:      sys.space.GPUs[g],
			EntryBytes: eb,
		}
	}
	// Insert every stored entry.
	buf := make([]byte, eb)
	for bi := range pl.Blocks {
		b := &pl.Blocks[bi]
		for g, stored := range b.Store {
			if !stored {
				continue
			}
			c := sys.Caches[g]
			for r := b.Start; r < b.End; r++ {
				key := int64(pl.ByRank[r])
				off, err := c.Arena.Alloc(int64(eb))
				if err != nil {
					return nil, fmt.Errorf("cache: gpu %d: %w", g, err)
				}
				if opt.Source != nil {
					if err := opt.Source.ReadRow(key, buf); err != nil {
						return nil, err
					}
					if err := c.Arena.Write(off, buf); err != nil {
						return nil, err
					}
				}
				if err := c.Table.Insert(key, hashtable.Location{GPU: int32(g), Offset: off}); err != nil {
					return nil, err
				}
			}
		}
	}
	return sys, nil
}

// Locate resolves where GPU dst finds a key: its access-arrangement source
// and, when that source is a GPU, the concrete <GPU, Offset> location from
// the owner's hash table (the locate() step of the extract function, §3.2).
func (s *System) Locate(dst int, key int64) (src platform.SourceID, loc hashtable.Location, err error) {
	if dst < 0 || dst >= s.P.N {
		return 0, loc, fmt.Errorf("cache: bad gpu %d", dst)
	}
	if key < 0 || key >= s.Placement.NumEntries() {
		return 0, loc, fmt.Errorf("cache: key %d out of range", key)
	}
	src = s.Placement.SourceOf(dst, key)
	if src == s.P.Host() {
		return src, loc, nil
	}
	l, ok := s.Caches[src].Table.Lookup(key)
	if !ok {
		return 0, loc, fmt.Errorf("cache: placement says gpu %d holds key %d but the hashtable disagrees", src, key)
	}
	return src, l, nil
}

// Gather functionally extracts keys for GPU dst into out (len(keys) rows of
// EntryBytes): cached rows are peer-read from the owning GPU's arena,
// misses fall back to the host source. Requires functional mode.
func (s *System) Gather(dst int, keys []int64, out []byte) error {
	if s.source == nil {
		return fmt.Errorf("cache: Gather requires functional mode (FillOptions.Source)")
	}
	if len(out) < len(keys)*s.EntryBytes {
		return fmt.Errorf("cache: output buffer %d too small for %d rows", len(out), len(keys))
	}
	for i, key := range keys {
		dstRow := out[i*s.EntryBytes : (i+1)*s.EntryBytes]
		src, loc, err := s.Locate(dst, key)
		if err != nil {
			return err
		}
		if src == s.P.Host() {
			if err := s.source.ReadRow(key, dstRow); err != nil {
				return err
			}
			continue
		}
		if err := s.space.PeerRead(int(src), loc.Offset, dstRow); err != nil {
			return err
		}
	}
	return nil
}

// HitCounts classifies a batch of keys for one GPU (local, remote, host) —
// the measured counterpart of solver.Placement.Stats.
func (s *System) HitCounts(dst int, keys []int64) (local, remote, host int, err error) {
	for _, key := range keys {
		src, _, err := s.Locate(dst, key)
		switch {
		case err != nil:
			return 0, 0, 0, err
		case src == s.P.Host():
			host++
		case int(src) == dst:
			local++
		default:
			remote++
		}
	}
	return local, remote, host, nil
}
