package cache

import (
	"bytes"
	"testing"

	"ugache/internal/emb"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

func buildGatherSystem(t *testing.T, n int) (*System, *emb.Table) {
	t.Helper()
	p := platform.ServerA()
	pl, in := testPlacement(t, p, n, 0.15)
	table, err := emb.NewMaterialized("t", int64(n), 16, emb.Float32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Fill(p, pl, FillOptions{CapacityEntries: in.Capacity, Source: table})
	if err != nil {
		t.Fatal(err)
	}
	return sys, table
}

// TestGatherWithReusedScratch drives many gathers of varying size and
// destination through one scratch, verifying no state leaks between calls
// (the grouped BulkLookup path must match the per-key source of truth).
func TestGatherWithReusedScratch(t *testing.T) {
	sys, table := buildGatherSystem(t, 2000)
	eb := table.EntryBytes()
	z, _ := workload.NewZipf(2000, 1.1)
	r := rng.New(8)
	sc := NewGatherScratch()
	want := make([]byte, eb)
	for round := 0; round < 20; round++ {
		keys := make([]int64, r.Intn(400)+1)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		if round%3 == 0 {
			keys[0] = keys[len(keys)-1] // duplicates in one request
		}
		dst := round % sys.P.N
		out := make([]byte, len(keys)*eb)
		if err := sys.GatherWith(dst, keys, out, sc); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, k := range keys {
			table.ReadRow(k, want)
			if !bytes.Equal(out[i*eb:(i+1)*eb], want) {
				t.Fatalf("round %d dst %d key %d: row differs", round, dst, k)
			}
		}
	}
}

func TestGatherWithValidation(t *testing.T) {
	sys, table := buildGatherSystem(t, 1000)
	eb := table.EntryBytes()
	sc := NewGatherScratch()
	out := make([]byte, 4*eb)
	if err := sys.GatherWith(-1, []int64{1}, out, sc); err == nil {
		t.Fatal("negative gpu accepted")
	}
	if err := sys.GatherWith(99, []int64{1}, out, sc); err == nil {
		t.Fatal("out-of-range gpu accepted")
	}
	if err := sys.GatherWith(0, []int64{-5}, out, sc); err == nil {
		t.Fatal("negative key accepted")
	}
	if err := sys.GatherWith(0, []int64{5000}, out, sc); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if err := sys.GatherWith(0, []int64{1, 2, 3, 4, 5}, out, sc); err == nil {
		t.Fatal("short output buffer accepted")
	}
	// The scratch stays usable after errors.
	if err := sys.GatherWith(0, []int64{1, 2, 3, 4}, out, sc); err != nil {
		t.Fatal(err)
	}
}
