package timeline

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentRecordingAndExport hammers one recorder from many writers —
// including two goroutines sharing a shard, the slow-path pattern — while
// exports, track renames, and Events snapshots run concurrently. Run with
// -race; the assertions only check nothing is lost when rings do not wrap.
func TestConcurrentRecordingAndExport(t *testing.T) {
	const writers = 8
	const perWriter = 500
	r := NewRecorder(4, writers*perWriter) // shared shards never wrap
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.Shard(w) // w % 4: every shard shared by two writers
			for i := 0; i < perWriter; i++ {
				ev := Event{Name: "e", Cat: "race", Ph: PhSpan,
					PID: ProcServe, TID: int32(w), Start: float64(i), Dur: 0.5}
				ev.AddArg("i", float64(i))
				sh.Emit(&ev)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.SetThreadName(ProcServe, int32(i%writers), "worker")
			if err := r.WriteTrace(io.Discard); err != nil {
				t.Error(err)
			}
			_ = r.Events()
			_ = r.Dropped()
		}
	}()
	wg.Wait()
	if got := len(r.Events()); got != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", got, writers*perWriter)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events with non-wrapping rings", r.Dropped())
	}
}
