package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteTrace renders the recorder's merged events as a Chrome trace-event
// JSON object ({"traceEvents": [...]}) loadable in Perfetto and
// chrome://tracing. Timestamps and durations are exported in microseconds
// (the trace-event unit). Output is deterministic for identical recorded
// content: events are sorted (see Events), track-name metadata is sorted by
// pid/tid, and floats use shortest-round-trip formatting.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line []byte) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}

	// Track-name metadata first, in (pid, tid) order.
	r.mu.Lock()
	procIDs := make([]int32, 0, len(r.procs))
	for pid := range r.procs {
		procIDs = append(procIDs, pid)
	}
	threadKeys := make([]int64, 0, len(r.threads))
	for k := range r.threads {
		threadKeys = append(threadKeys, k)
	}
	procs := make(map[int32]string, len(r.procs))
	for k, v := range r.procs {
		procs[k] = v
	}
	threads := make(map[int64]string, len(r.threads))
	for k, v := range r.threads {
		threads[k] = v
	}
	r.mu.Unlock()
	sort.Slice(procIDs, func(i, j int) bool { return procIDs[i] < procIDs[j] })
	sort.Slice(threadKeys, func(i, j int) bool { return threadKeys[i] < threadKeys[j] })
	for _, pid := range procIDs {
		line := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid, quote(procs[pid]))
		if err := emit([]byte(line)); err != nil {
			return err
		}
	}
	for _, k := range threadKeys {
		pid, tid := int32(k>>32), int32(uint32(k))
		line := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid, tid, quote(threads[k]))
		if err := emit([]byte(line)); err != nil {
			return err
		}
	}

	var buf []byte
	for _, ev := range r.Events() {
		buf = appendEvent(buf[:0], &ev)
		if err := emit(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendEvent renders one event as a single-line JSON object.
func appendEvent(buf []byte, ev *Event) []byte {
	buf = append(buf, `{"ph":"`...)
	buf = append(buf, byte(ev.Ph))
	buf = append(buf, `","pid":`...)
	buf = strconv.AppendInt(buf, int64(ev.PID), 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, int64(ev.TID), 10)
	buf = append(buf, `,"name":`...)
	buf = append(buf, quote(ev.Name)...)
	if ev.Cat != "" {
		buf = append(buf, `,"cat":`...)
		buf = append(buf, quote(ev.Cat)...)
	}
	buf = append(buf, `,"ts":`...)
	buf = appendMicros(buf, ev.Start)
	if ev.Ph == PhSpan {
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, ev.Dur)
	}
	if ev.Ph == PhInstant {
		buf = append(buf, `,"s":"t"`...)
	}
	if ev.NArgs > 0 {
		buf = append(buf, `,"args":{`...)
		for i := int32(0); i < ev.NArgs; i++ {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, quote(ev.Args[i].Key)...)
			buf = append(buf, ':')
			buf = strconv.AppendFloat(buf, ev.Args[i].Val, 'g', -1, 64)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	return buf
}

// appendMicros renders seconds as microseconds with fixed sub-microsecond
// precision (three decimals), which keeps the output deterministic and
// readable while preserving nanosecond resolution.
func appendMicros(buf []byte, seconds float64) []byte {
	return strconv.AppendFloat(buf, seconds*1e6, 'f', 3, 64)
}

func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// ValidationReport summarizes a validated Chrome trace file.
type ValidationReport struct {
	Events int
	// ByPhase counts events per trace-event phase character.
	ByPhase map[string]int
	// ByPID counts events per process ID.
	ByPID map[int64]int
	// Names counts events per span name.
	Names map[string]int
}

// Validate parses a Chrome trace-event JSON stream (object form) and checks
// the invariants the exporter guarantees: the top level holds a traceEvents
// array, every event carries ph/pid/tid/name, timestamps and durations are
// non-negative, and pids stay within the fixed taxonomy plus metadata.
// Shared by the golden tests and `ugache-trace -check-timeline`.
func Validate(r io.Reader) (*ValidationReport, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("timeline: trace does not parse: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("timeline: trace has no traceEvents array")
	}
	rep := &ValidationReport{
		ByPhase: make(map[string]int),
		ByPID:   make(map[int64]int),
		Names:   make(map[string]int),
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := unmarshalField(ev, "ph", &ph); err != nil {
			return nil, fmt.Errorf("timeline: event %d: %v", i, err)
		}
		if err := unmarshalField(ev, "name", &name); err != nil {
			return nil, fmt.Errorf("timeline: event %d: %v", i, err)
		}
		var pid, tid int64
		if err := unmarshalField(ev, "pid", &pid); err != nil {
			return nil, fmt.Errorf("timeline: event %d (%s): %v", i, name, err)
		}
		if err := unmarshalField(ev, "tid", &tid); err != nil {
			return nil, fmt.Errorf("timeline: event %d (%s): %v", i, name, err)
		}
		if ph != "M" {
			var ts float64
			if err := unmarshalField(ev, "ts", &ts); err != nil {
				return nil, fmt.Errorf("timeline: event %d (%s): %v", i, name, err)
			}
			if ts < 0 {
				return nil, fmt.Errorf("timeline: event %d (%s): negative ts %g", i, name, ts)
			}
		}
		if raw, ok := ev["dur"]; ok {
			var dur float64
			if err := json.Unmarshal(raw, &dur); err != nil {
				return nil, fmt.Errorf("timeline: event %d (%s): bad dur: %v", i, name, err)
			}
			if dur < 0 {
				return nil, fmt.Errorf("timeline: event %d (%s): negative dur %g", i, name, dur)
			}
		}
		rep.Events++
		rep.ByPhase[ph]++
		rep.ByPID[pid]++
		rep.Names[name]++
	}
	return rep, nil
}

func unmarshalField(ev map[string]json.RawMessage, key string, dst interface{}) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %v", key, err)
	}
	return nil
}
