package timeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixedEvents builds a deterministic event set exercising every phase,
// every taxonomy pid, args, and name escaping. Starts are explicit, so the
// wall clock never enters and export is byte-stable.
func fixedEvents(r *Recorder) {
	r.SetProcessName(ProcServe, "serve")
	r.SetProcessName(ProcSim, "fluid-sim links")
	r.SetProcessName(ProcControl, "control")
	r.SetThreadName(ProcServe, 0, "gpu 0 worker")
	r.SetThreadName(ProcServe, 1, "gpu 1 worker")
	r.SetThreadName(ProcSim, 0, `nvlink "a"-"b"`)
	r.SetThreadName(ProcControl, TIDRefresh, "cache refresh")

	batch := Event{Name: "batch", Cat: "serve", Ph: PhSpan, PID: ProcServe, TID: 0, Start: 0.001, Dur: 0.0025}
	batch.AddArg("requests", 3)
	batch.AddArg("unique_keys", 1234)
	r.Shard(0).Emit(&batch)
	child := Event{Name: "extract", Cat: "serve", Ph: PhSpan, PID: ProcServe, TID: 0, Start: 0.0012, Dur: 0.0018}
	r.Shard(0).Emit(&child)
	// Same start as batch on another tid: exercises the sort tie-breaks.
	other := Event{Name: "batch", Cat: "serve", Ph: PhSpan, PID: ProcServe, TID: 1, Start: 0.001, Dur: 0.002}
	r.Shard(1).Emit(&other)
	link := Event{Name: "link-flow", Cat: "sim", Ph: PhSpan, PID: ProcSim, TID: 0, Start: 0.0012, Dur: 0.0009}
	link.AddArg("util", 0.75)
	link.AddArg("rate_bytes_per_s", 1.8e11)
	r.Shard(1).Emit(&link)
	inst := Event{Name: "refresh-update-steps-truncated", Cat: "refresh", Ph: PhInstant, PID: ProcControl, TID: TIDRefresh, Start: 0.004}
	inst.AddArg("omitted_steps", 17)
	r.Shard(0).Emit(&inst)
	ctr := Event{Name: "queue_depth", Cat: "serve", Ph: PhCounter, PID: ProcServe, TID: 0, Start: 0.002}
	ctr.AddArg("depth", 5)
	r.Shard(0).Emit(&ctr)
}

func TestWriteTraceGolden(t *testing.T) {
	r := NewRecorder(2, 64)
	fixedEvents(r)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/timeline -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// A second recorder fed the same events must export identical bytes —
	// determinism does not depend on shard fill order within a shard count.
	r2 := NewRecorder(2, 64)
	fixedEvents(r2)
	var buf2 bytes.Buffer
	if err := r2.WriteTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two identical recorders exported different bytes")
	}
}

func TestWriteTraceValidates(t *testing.T) {
	r := NewRecorder(2, 64)
	fixedEvents(r)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 6 recorded events + 3 process_name + 4 thread_name metadata.
	if rep.Events != 13 {
		t.Fatalf("validated %d events, want 13", rep.Events)
	}
	if rep.ByPhase["X"] != 4 || rep.ByPhase["i"] != 1 || rep.ByPhase["C"] != 1 || rep.ByPhase["M"] != 7 {
		t.Fatalf("phase counts %v", rep.ByPhase)
	}
	if rep.Names["batch"] != 2 || rep.Names["link-flow"] != 1 {
		t.Fatalf("name counts %v", rep.Names)
	}
	if rep.ByPID[ProcServe] != 4+3 { // 4 serve events + 3 serve metadata
		t.Fatalf("pid counts %v", rep.ByPID)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no array":      `{"displayTimeUnit":"ms"}`,
		"missing ph":    `{"traceEvents":[{"pid":1,"tid":0,"name":"x","ts":0}]}`,
		"missing name":  `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":0}]}`,
		"missing pid":   `{"traceEvents":[{"ph":"X","tid":0,"name":"x","ts":0}]}`,
		"missing ts":    `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x"}]}`,
		"negative ts":   `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":-1,"dur":1}]}`,
		"negative dur":  `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":1,"dur":-1}]}`,
		"ts wrong type": `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":"now"}]}`,
	}
	for label, doc := range cases {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	if rep, err := Validate(strings.NewReader(`{"traceEvents":[]}`)); err != nil || rep.Events != 0 {
		t.Errorf("empty traceEvents rejected: %v", err)
	}
}

func TestRingOverwriteAndDropCount(t *testing.T) {
	r := NewRecorder(1, 4)
	sh := r.Shard(0)
	for i := 0; i < 10; i++ {
		ev := Event{Name: "e", Ph: PhInstant, PID: 1, TID: 0, Start: float64(i)}
		sh.Emit(&ev)
	}
	if sh.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", sh.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].Start != 6 || evs[3].Start != 9 {
		t.Fatalf("survivors %v", evs)
	}
}

func TestEventOrdering(t *testing.T) {
	r := NewRecorder(1, 16)
	sh := r.Shard(0)
	// Child emitted before parent; equal starts must order parent (longer
	// dur) first so trace viewers nest correctly.
	child := Event{Name: "child", Ph: PhSpan, PID: 1, TID: 0, Start: 1, Dur: 0.5}
	parent := Event{Name: "parent", Ph: PhSpan, PID: 1, TID: 0, Start: 1, Dur: 2}
	sh.Emit(&child)
	sh.Emit(&parent)
	evs := r.Events()
	if evs[0].Name != "parent" || evs[1].Name != "child" {
		t.Fatalf("order %s, %s", evs[0].Name, evs[1].Name)
	}
}

func TestArgOverflowDropsSilently(t *testing.T) {
	var ev Event
	for i := 0; i < MaxArgs+5; i++ {
		ev.AddArg("k", float64(i))
	}
	if ev.NArgs != MaxArgs {
		t.Fatalf("NArgs %d", ev.NArgs)
	}
}

func TestNowAndSince(t *testing.T) {
	r := NewRecorder(1, 8)
	if r.Since(time.Now().Add(-time.Hour)) != 0 {
		t.Fatal("pre-epoch time did not clamp to 0")
	}
	if r.Now() < 0 {
		t.Fatal("negative Now")
	}
	if r.Since(time.Now().Add(time.Millisecond)) <= 0 {
		t.Fatal("future time not positive")
	}
}
