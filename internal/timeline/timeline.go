// Package timeline is the time-axis half of the observability stack: a
// span-based tracing subsystem whose output is the Chrome trace-event JSON
// consumed by Perfetto and chrome://tracing. Where internal/telemetry
// answers "how many / how long on average", timeline answers "when, on
// which track": each coalesced serving batch becomes a span tree
// (queue-wait → coalesce → extract → gather → reply), each fluid-sim phase
// becomes per-link utilization spans (the paper's Fig. 6 congestion curves),
// and each cache refresh becomes the Fig. 17 solve/update-step timeline.
//
// The recording discipline matches DESIGN.md §6.1: events are flat structs
// (static name/category strings, fixed arg slots, no maps, no pointers), a
// writer emits into a preallocated per-worker ring under a short per-shard
// mutex, and nothing on the emit path allocates. Export merges and sorts the
// shards on demand — a slow-path, read-side operation.
package timeline

import (
	"sort"
	"sync"
	"time"
)

// Conventional process IDs for the span taxonomy (DESIGN.md §6.3). Chrome
// trace events group tracks by pid; keeping the assignment fixed makes
// exported pids stable across runs and binaries.
const (
	// ProcServe holds the serving engine's span trees, one tid per GPU
	// worker.
	ProcServe = 1
	// ProcSim holds the fluid simulator's per-link utilization tracks, one
	// tid per topology link.
	ProcSim = 2
	// ProcControl holds slow-path control spans: cache refresh steps and
	// solver introspection.
	ProcControl = 3
	// ProcPrefetch holds the lookahead prefetch pipeline's window spans, one
	// tid per GPU prefetch worker. Keeping it a separate process group makes
	// the prefetch/extraction overlap directly visible against the ProcServe
	// batch trees in Perfetto.
	ProcPrefetch = 4
	// ProcOverload holds the admission-control track, one tid per GPU:
	// queue-depth and cumulative-shed counter series sampled at every batch
	// formation, plus shed instants, so the onset of overload lines up
	// visually with the serve batch trees it throttles.
	ProcOverload = 5
	// ProcRouter holds the cluster front end's tracks, one tid per node:
	// router queue-depth counter series plus scatter/gather dispatch spans,
	// so cross-node fan-out lines up visually against the per-node serve
	// trees it feeds.
	ProcRouter = 6
)

// Conventional ProcControl thread IDs.
const (
	TIDRefresh = 0
	TIDSolver  = 1
	TIDDrift   = 2
)

// Ph is the Chrome trace-event phase of an event.
type Ph byte

const (
	// PhSpan is a complete event ("X"): a named interval with a duration.
	PhSpan Ph = 'X'
	// PhInstant is an instant event ("i"): a point in time.
	PhInstant Ph = 'i'
	// PhCounter is a counter sample ("C"): the event's first arg is the
	// series value at Start.
	PhCounter Ph = 'C'
)

// MaxArgs is the number of argument slots on an Event. Events keep args in
// a fixed array so recording is a plain struct copy.
const MaxArgs = 10

// Arg is one key/value argument of an event. Values are numeric — the
// span taxonomy only needs counts, bytes, and seconds, and numbers keep the
// struct flat.
type Arg struct {
	Key string
	Val float64
}

// Event is one trace event. The struct is flat (static strings, fixed-size
// arg array), so ring-buffer recording copies it without allocating. Name
// and Cat must be interned strings that outlive the recorder — package
// literals or strings precomputed at wiring time, never fmt output built on
// the hot path.
type Event struct {
	Name string
	Cat  string
	Ph   Ph
	PID  int32
	TID  int32
	// Start is seconds since the recorder's epoch for wall-clock events
	// (Recorder.Now / Recorder.Since), or any caller-defined time base for
	// simulated events; it must be non-negative.
	Start float64
	// Dur is the span length in seconds (PhSpan only).
	Dur float64
	// Args holds the first NArgs argument slots.
	Args  [MaxArgs]Arg
	NArgs int32
}

// AddArg appends one argument, silently dropping it once the fixed slots
// are full (trace args are best-effort annotations, not data storage).
func (e *Event) AddArg(key string, v float64) {
	if int(e.NArgs) >= MaxArgs {
		return
	}
	e.Args[e.NArgs] = Arg{Key: key, Val: v}
	e.NArgs++
}

// Shard is one writer's preallocated event ring. A shard is owned by one
// goroutine in steady state (serving worker g emits into Shard(g)); the
// short per-record mutex only exists so slow-path writers (refresh, solver)
// and the exporter can touch the same shard safely.
type Shard struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	n       int
	dropped int64
}

// Emit copies one event into the ring, overwriting the oldest once full.
func (s *Shard) Emit(e *Event) {
	s.mu.Lock()
	if s.n == len(s.buf) {
		s.dropped++
	}
	s.buf[s.next] = *e
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of events currently held.
func (s *Shard) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many events were overwritten before export.
func (s *Shard) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// snapshot appends the held events to dst, oldest first.
func (s *Shard) snapshot(dst []Event) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := (s.next - s.n + len(s.buf)) % len(s.buf)
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.buf[(start+i)%len(s.buf)])
	}
	return dst
}

// Recorder owns the per-worker span rings and the track-name registry of
// one process. One recorder is shared by every instrumented layer (serve,
// core, cache, solver); nil recorders disable tracing at each layer behind
// a single pointer check.
type Recorder struct {
	epoch  time.Time
	shards []Shard

	mu      sync.Mutex
	procs   map[int32]string
	threads map[int64]string // pid<<32 | tid
}

// DefaultDepth is the per-shard ring depth used when NewRecorder is given
// a non-positive depth: enough for several thousand batches' span trees
// without unbounded growth.
const DefaultDepth = 8192

// NewRecorder creates a recorder with the given number of writer shards
// (one per serving worker plus one for control-plane writers is typical;
// values < 1 are raised to 1) each holding the last depth events.
func NewRecorder(shards, depth int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	if depth < 1 {
		depth = DefaultDepth
	}
	r := &Recorder{
		epoch:   time.Now(),
		shards:  make([]Shard, shards),
		procs:   make(map[int32]string),
		threads: make(map[int64]string),
	}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, depth)
	}
	return r
}

// Shards returns the recorder's shard count.
func (r *Recorder) Shards() int { return len(r.shards) }

// Shard returns writer shard i (reduced modulo the shard count). Cache the
// pointer next to the worker's scratch; Shard itself is cheap but not free.
func (r *Recorder) Shard(i int) *Shard {
	if i < 0 {
		i = -i
	}
	return &r.shards[i%len(r.shards)]
}

// Now returns seconds since the recorder's epoch — the Start value for a
// wall-clock event beginning now.
func (r *Recorder) Now() float64 { return time.Since(r.epoch).Seconds() }

// Since converts an absolute time into seconds since the recorder's epoch.
// Times predating the epoch clamp to 0 so Start stays non-negative.
func (r *Recorder) Since(t time.Time) float64 {
	d := t.Sub(r.epoch).Seconds()
	if d < 0 {
		return 0
	}
	return d
}

// SetProcessName names a pid's track group in the exported trace.
func (r *Recorder) SetProcessName(pid int32, name string) {
	r.mu.Lock()
	r.procs[pid] = name
	r.mu.Unlock()
}

// SetThreadName names one (pid, tid) track in the exported trace.
func (r *Recorder) SetThreadName(pid, tid int32, name string) {
	r.mu.Lock()
	r.threads[int64(pid)<<32|int64(uint32(tid))] = name
	r.mu.Unlock()
}

// Dropped sums the events overwritten across all shards before export.
func (r *Recorder) Dropped() int64 {
	var total int64
	for i := range r.shards {
		total += r.shards[i].Dropped()
	}
	return total
}

// Events returns a merged snapshot of every shard, sorted by start time
// (ties broken by pid, tid, name, duration so the order — and therefore the
// exported JSON — is deterministic for identical recorded content).
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.shards {
		out = r.shards[i].snapshot(out)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur // parents before children at equal start
		}
		return a.Name < b.Name
	})
	return out
}
