// Package hashtable implements the flat, open-addressing hash table that
// coordinates UGache's Extractor and Solver (paper §4): each cached
// embedding key maps to its source location <GPU, offset>. The layout
// mirrors a GPU hash table — two flat arrays, linear probing, power-of-two
// capacity — because the Extractor's locate() step (paper §3.2) does exactly
// this lookup per key on device.
//
// The Refresher deletes and reinserts entries in place (paper §7.2), so the
// table supports tombstone deletion.
package hashtable

import (
	"fmt"
	"math/bits"
)

// Location is a cached entry's source: the GPU holding it and the byte
// offset of the row within that GPU's cache arena.
type Location struct {
	GPU    int32
	Offset int64
}

const (
	emptySlot     = -1 // key sentinel: never a valid embedding key
	tombstoneSlot = -2
)

// Table maps int64 keys (>= 0) to Locations.
type Table struct {
	keys  []int64
	locs  []Location
	mask  uint64
	used  int // live entries
	dirty int // live + tombstones
}

// slotsFor returns the power-of-two slot count for a table holding capacity
// entries at a load factor of at most 0.75. The arithmetic is carried out in
// uint64 so huge capacities cannot overflow int (capacity*4 wraps negative
// for capacity > MaxInt64/4); the result is clamped to the largest
// addressable power of two.
func slotsFor(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	need := uint64(capacity) + (uint64(capacity)+2)/3 // ceil(capacity * 4/3), overflow-free
	shift := bits.Len64(need)
	if shift > 62 {
		shift = 62 // 1<<63 would wrap negative in int
	}
	n := 1 << shift
	if n < 8 {
		n = 8
	}
	return n
}

// New creates a table that can hold at least capacity entries at a load
// factor of at most 0.75.
func New(capacity int) *Table {
	n := slotsFor(capacity)
	t := &Table{
		keys: make([]int64, n),
		locs: make([]Location, n),
		mask: uint64(n - 1),
	}
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	return t
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.used }

// Cap returns the slot count.
func (t *Table) Cap() int { return len(t.keys) }

func hash(key int64) uint64 {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Insert adds or overwrites a key. It returns an error for negative keys
// (reserved for sentinels).
func (t *Table) Insert(key int64, loc Location) error {
	if key < 0 {
		return fmt.Errorf("hashtable: negative key %d", key)
	}
	if t.dirty*4 >= len(t.keys)*3 {
		t.grow()
	}
	i := hash(key) & t.mask
	firstTomb := -1
	for {
		switch t.keys[i] {
		case emptySlot:
			if firstTomb >= 0 {
				i = uint64(firstTomb)
			} else {
				t.dirty++
			}
			t.keys[i] = key
			t.locs[i] = loc
			t.used++
			return nil
		case tombstoneSlot:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case key:
			t.locs[i] = loc
			return nil
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the location for key.
func (t *Table) Lookup(key int64) (Location, bool) {
	if key < 0 {
		return Location{}, false
	}
	i := hash(key) & t.mask
	for {
		switch t.keys[i] {
		case emptySlot:
			return Location{}, false
		case key:
			return t.locs[i], true
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes key, returning whether it was present.
func (t *Table) Delete(key int64) bool {
	if key < 0 {
		return false
	}
	i := hash(key) & t.mask
	for {
		switch t.keys[i] {
		case emptySlot:
			return false
		case key:
			t.keys[i] = tombstoneSlot
			t.used--
			return true
		}
		i = (i + 1) & t.mask
	}
}

// Range calls fn for every live entry until fn returns false. Iteration
// order is unspecified but deterministic for a given insertion history.
func (t *Table) Range(fn func(key int64, loc Location) bool) {
	for i, k := range t.keys {
		if k >= 0 {
			if !fn(k, t.locs[i]) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the table. The background Refresher mutates
// a clone while concurrent readers keep probing the published table.
func (t *Table) Clone() *Table {
	cp := &Table{
		keys: make([]int64, len(t.keys)),
		locs: make([]Location, len(t.locs)),
		mask: t.mask, used: t.used, dirty: t.dirty,
	}
	copy(cp.keys, t.keys)
	copy(cp.locs, t.locs)
	return cp
}

func (t *Table) grow() {
	old := *t
	n := len(t.keys) * 2
	// If most dirt is tombstones, rebuild at the same size instead.
	if t.used*2 < t.dirty {
		n = len(t.keys)
	}
	t.keys = make([]int64, n)
	t.locs = make([]Location, n)
	t.mask = uint64(n - 1)
	t.used = 0
	t.dirty = 0
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	for i, k := range old.keys {
		if k >= 0 {
			// Insert cannot fail for keys already validated, and cannot
			// re-grow because the new table has room for all live entries.
			_ = t.Insert(k, old.locs[i])
		}
	}
}

// BulkLookup resolves many keys at once, writing found[i] and locs[i] per
// key; it returns the number found. Duplicate keys are resolved
// independently (each occurrence gets the same answer), and negative keys
// are simply not found, mirroring Lookup. The three slices must have equal
// length: a mismatch panics rather than silently truncating, because a
// short locs/found slice on the hot path means a caller-side sizing bug.
//
// This is the batched probe loop of the extract function's locate() step
// (§3.2): the table arrays and mask are hoisted out of the per-key loop so
// the probe runs over locals instead of re-loading the table header per key.
func (t *Table) BulkLookup(keys []int64, locs []Location, found []bool) int {
	if len(locs) != len(keys) || len(found) != len(keys) {
		panic(fmt.Sprintf("hashtable: BulkLookup slice lengths differ: %d keys, %d locs, %d found",
			len(keys), len(locs), len(found)))
	}
	tkeys, tlocs, mask := t.keys, t.locs, t.mask
	n := 0
	for i, k := range keys {
		if k < 0 {
			locs[i] = Location{}
			found[i] = false
			continue
		}
		j := hash(k) & mask
		for {
			switch tkeys[j] {
			case k:
				locs[i] = tlocs[j]
				found[i] = true
				n++
			case emptySlot:
				locs[i] = Location{}
				found[i] = false
			default:
				j = (j + 1) & mask
				continue
			}
			break
		}
	}
	return n
}
