package hashtable

import (
	"math"
	"testing"

	"ugache/internal/rng"
)

func TestSlotsForNoOverflow(t *testing.T) {
	// Regression: capacity*4/3 computed in int wraps negative for huge
	// capacities; sizing must stay positive and monotone instead.
	cases := []int{1, 6, 1 << 20, math.MaxInt64 / 4, math.MaxInt64/4 + 1, math.MaxInt64}
	prev := 0
	for _, c := range cases {
		n := slotsFor(c)
		if n <= 0 {
			t.Fatalf("slotsFor(%d) = %d, want positive", c, n)
		}
		if n&(n-1) != 0 {
			t.Fatalf("slotsFor(%d) = %d, not a power of two", c, n)
		}
		if n < prev {
			t.Fatalf("slotsFor not monotone: slotsFor(%d)=%d < %d", c, n, prev)
		}
		prev = n
	}
	// Normal range still honours the 0.75 load factor.
	if n := slotsFor(6); n < 8 {
		t.Fatalf("slotsFor(6) = %d, want >= 8", n)
	}
	if n := slotsFor(1000); float64(1000)/float64(n) > 0.75 {
		t.Fatalf("slotsFor(1000) = %d exceeds load factor 0.75", n)
	}
}

func TestBulkLookupTombstonesAndDuplicates(t *testing.T) {
	ht := New(16)
	for k := int64(0); k < 12; k++ {
		if err := ht.Insert(k, Location{Offset: k * 10}); err != nil {
			t.Fatal(err)
		}
	}
	// Punch tombstones into several probe chains.
	for _, k := range []int64{2, 5, 9} {
		if !ht.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	// Duplicates in the key slice, deleted keys, a negative key, and a
	// never-inserted key, interleaved.
	keys := []int64{3, 3, 2, 11, -7, 100, 5, 3, 9, 0}
	locs := make([]Location, len(keys))
	found := make([]bool, len(keys))
	n := ht.BulkLookup(keys, locs, found)
	want := map[int64]bool{3: true, 11: true, 0: true}
	wantN := 0
	for i, k := range keys {
		if want[k] != found[i] {
			t.Fatalf("key %d at %d: found=%v want %v", k, i, found[i], want[k])
		}
		if found[i] {
			wantN++
			if locs[i].Offset != k*10 {
				t.Fatalf("key %d: offset %d want %d", k, locs[i].Offset, k*10)
			}
		} else if locs[i] != (Location{}) {
			t.Fatalf("key %d: miss left non-zero location %+v", k, locs[i])
		}
	}
	if n != wantN {
		t.Fatalf("BulkLookup returned %d, want %d", n, wantN)
	}
	// Every occurrence of a duplicate key resolves identically.
	if locs[0] != locs[1] || locs[0] != locs[7] {
		t.Fatalf("duplicate key resolved differently: %+v %+v %+v", locs[0], locs[1], locs[7])
	}
}

func TestBulkLookupAgainstLookup(t *testing.T) {
	// Property: BulkLookup agrees with per-key Lookup under random churn.
	r := rng.New(4)
	ht := New(64)
	live := map[int64]int64{}
	for op := 0; op < 5000; op++ {
		k := int64(r.Intn(500))
		if r.Float64() < 0.6 {
			off := int64(op)
			_ = ht.Insert(k, Location{Offset: off})
			live[k] = off
		} else {
			ht.Delete(k)
			delete(live, k)
		}
	}
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(r.Intn(600)) - 20
	}
	locs := make([]Location, len(keys))
	found := make([]bool, len(keys))
	ht.BulkLookup(keys, locs, found)
	for i, k := range keys {
		loc, ok := ht.Lookup(k)
		if ok != found[i] || loc != locs[i] {
			t.Fatalf("key %d: bulk (%v,%+v) vs lookup (%v,%+v)", k, found[i], locs[i], ok, loc)
		}
	}
}

func TestBulkLookupLengthMismatchPanics(t *testing.T) {
	ht := New(8)
	for _, tc := range []struct {
		name  string
		locs  int
		found int
	}{{"short-locs", 1, 2}, {"short-found", 2, 1}, {"both-long", 3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: BulkLookup did not panic", tc.name)
				}
			}()
			ht.BulkLookup(make([]int64, 2), make([]Location, tc.locs), make([]bool, tc.found))
		}()
	}
}

func TestDedupAssignsDenseIndices(t *testing.T) {
	d := NewDedup(8)
	keys := []int64{5, -3, 5, 9, -3, 0, 5}
	wantIdx := []int{0, 1, 0, 2, 1, 3, 0}
	wantFresh := []bool{true, true, false, true, false, true, false}
	for i, k := range keys {
		idx, fresh := d.Add(k)
		if idx != wantIdx[i] || fresh != wantFresh[i] {
			t.Fatalf("Add(%d) #%d = (%d,%v), want (%d,%v)", k, i, idx, fresh, wantIdx[i], wantFresh[i])
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if idx, ok := d.Index(9); !ok || idx != 2 {
		t.Fatalf("Index(9) = (%d,%v)", idx, ok)
	}
	if _, ok := d.Index(42); ok {
		t.Fatal("Index(42) found a never-added key")
	}
}

func TestDedupResetIsCheapAndComplete(t *testing.T) {
	d := NewDedup(4)
	for k := int64(0); k < 100; k++ { // forces growth
		d.Add(k * 7)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	slots := len(d.keys)
	d.Reset(64)
	if len(d.keys) != slots {
		t.Fatalf("Reset(64) resized %d -> %d slots", slots, len(d.keys))
	}
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	if _, ok := d.Index(7); ok {
		t.Fatal("key survived Reset")
	}
	// Old keys re-added after Reset get fresh dense indices.
	if idx, fresh := d.Add(7 * 13); !fresh || idx != 0 {
		t.Fatalf("Add after Reset = (%d,%v)", idx, fresh)
	}
}

func TestDedupGenerationWraparound(t *testing.T) {
	d := NewDedup(8)
	d.Add(1)
	d.cur = ^uint32(0) // next Reset wraps the generation counter
	d.Reset(8)
	if d.cur == 0 {
		t.Fatal("generation left at 0")
	}
	if _, ok := d.Index(1); ok {
		t.Fatal("stale key visible after wraparound")
	}
	if idx, fresh := d.Add(2); !fresh || idx != 0 {
		t.Fatalf("Add after wraparound = (%d,%v)", idx, fresh)
	}
}

func TestDedupAgainstMapModel(t *testing.T) {
	r := rng.New(11)
	d := NewDedup(2)
	for round := 0; round < 20; round++ {
		model := map[int64]int{}
		n := r.Intn(2000)
		for i := 0; i < n; i++ {
			k := int64(r.Intn(300)) - 50
			wantIdx, seen := model[k]
			if !seen {
				wantIdx = len(model)
				model[k] = wantIdx
			}
			idx, fresh := d.Add(k)
			if idx != wantIdx || fresh == seen {
				t.Fatalf("round %d: Add(%d) = (%d,%v), want (%d,%v)", round, k, idx, fresh, wantIdx, !seen)
			}
		}
		if d.Len() != len(model) {
			t.Fatalf("round %d: Len %d vs model %d", round, d.Len(), len(model))
		}
		d.Reset(r.Intn(100) + 1)
	}
}

func BenchmarkBulkLookup(b *testing.B) {
	ht := New(1 << 16)
	r := rng.New(5)
	for i := 0; i < 1<<15; i++ {
		_ = ht.Insert(int64(r.Intn(1<<20)), Location{Offset: int64(i)})
	}
	keys := make([]int64, 4096)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 20))
	}
	locs := make([]Location, len(keys))
	found := make([]bool, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.BulkLookup(keys, locs, found)
	}
}

func BenchmarkDedupAdd(b *testing.B) {
	r := rng.New(6)
	keys := make([]int64, 4096)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 12))
	}
	d := NewDedup(len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset(len(keys))
		for _, k := range keys {
			d.Add(k)
		}
	}
}
