package hashtable

import (
	"testing"
	"testing/quick"

	"ugache/internal/rng"
)

func TestInsertLookup(t *testing.T) {
	ht := New(16)
	for k := int64(0); k < 100; k++ {
		if err := ht.Insert(k, Location{GPU: int32(k % 4), Offset: k * 512}); err != nil {
			t.Fatal(err)
		}
	}
	if ht.Len() != 100 {
		t.Fatalf("Len = %d", ht.Len())
	}
	for k := int64(0); k < 100; k++ {
		loc, ok := ht.Lookup(k)
		if !ok || loc.GPU != int32(k%4) || loc.Offset != k*512 {
			t.Fatalf("Lookup(%d) = %+v ok=%v", k, loc, ok)
		}
	}
	if _, ok := ht.Lookup(1000); ok {
		t.Fatal("phantom key")
	}
	if _, ok := ht.Lookup(-3); ok {
		t.Fatal("negative key found")
	}
}

func TestOverwrite(t *testing.T) {
	ht := New(4)
	ht.Insert(7, Location{GPU: 0, Offset: 1})
	ht.Insert(7, Location{GPU: 3, Offset: 99})
	if ht.Len() != 1 {
		t.Fatalf("Len = %d", ht.Len())
	}
	loc, _ := ht.Lookup(7)
	if loc.GPU != 3 || loc.Offset != 99 {
		t.Fatalf("overwrite lost: %+v", loc)
	}
}

func TestDelete(t *testing.T) {
	ht := New(8)
	for k := int64(0); k < 50; k++ {
		ht.Insert(k, Location{Offset: k})
	}
	for k := int64(0); k < 50; k += 2 {
		if !ht.Delete(k) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if ht.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if ht.Delete(-1) {
		t.Fatal("negative delete succeeded")
	}
	if ht.Len() != 25 {
		t.Fatalf("Len = %d", ht.Len())
	}
	for k := int64(0); k < 50; k++ {
		_, ok := ht.Lookup(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", k, ok, want)
		}
	}
}

func TestTombstoneReuseAndProbeIntegrity(t *testing.T) {
	// Insert colliding keys, delete one in the middle of a probe chain, and
	// verify later chain members stay reachable, then reinsert.
	ht := New(4)
	for k := int64(0); k < 200; k++ {
		ht.Insert(k, Location{Offset: k})
	}
	for k := int64(50); k < 150; k++ {
		ht.Delete(k)
	}
	for k := int64(150); k < 200; k++ {
		loc, ok := ht.Lookup(k)
		if !ok || loc.Offset != k {
			t.Fatalf("chain broken at %d", k)
		}
	}
	for k := int64(50); k < 150; k++ {
		ht.Insert(k, Location{Offset: -0 + k*2})
	}
	for k := int64(50); k < 150; k++ {
		loc, ok := ht.Lookup(k)
		if !ok || loc.Offset != k*2 {
			t.Fatalf("reinsert lost at %d", k)
		}
	}
}

func TestInsertNegativeKey(t *testing.T) {
	if err := New(4).Insert(-1, Location{}); err == nil {
		t.Fatal("negative key accepted")
	}
}

func TestRange(t *testing.T) {
	ht := New(8)
	for k := int64(0); k < 20; k++ {
		ht.Insert(k, Location{Offset: k})
	}
	ht.Delete(5)
	seen := map[int64]bool{}
	ht.Range(func(k int64, loc Location) bool {
		if loc.Offset != k {
			t.Fatalf("wrong loc for %d", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 19 || seen[5] {
		t.Fatalf("Range visited %d keys", len(seen))
	}
	// Early stop.
	n := 0
	ht.Range(func(int64, Location) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBulkLookup(t *testing.T) {
	ht := New(8)
	ht.Insert(1, Location{Offset: 10})
	ht.Insert(3, Location{Offset: 30})
	keys := []int64{1, 2, 3}
	locs := make([]Location, 3)
	found := make([]bool, 3)
	if n := ht.BulkLookup(keys, locs, found); n != 2 {
		t.Fatalf("found %d", n)
	}
	if !found[0] || found[1] || !found[2] || locs[2].Offset != 30 {
		t.Fatalf("bulk results wrong: %v %v", found, locs)
	}
}

func TestAgainstMapModel(t *testing.T) {
	// Property test: the table behaves like map[int64]Location under a
	// random operation sequence.
	r := rng.New(99)
	ht := New(4)
	model := map[int64]Location{}
	for op := 0; op < 20000; op++ {
		k := int64(r.Intn(500))
		switch r.Intn(3) {
		case 0, 1:
			loc := Location{GPU: int32(r.Intn(8)), Offset: r.Int63() % 1e9}
			ht.Insert(k, loc)
			model[k] = loc
		case 2:
			got := ht.Delete(k)
			_, want := model[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(model, k)
		}
		if ht.Len() != len(model) {
			t.Fatalf("op %d: Len %d vs model %d", op, ht.Len(), len(model))
		}
	}
	for k, want := range model {
		got, ok := ht.Lookup(k)
		if !ok || got != want {
			t.Fatalf("final Lookup(%d) = %+v ok=%v, want %+v", k, got, ok, want)
		}
	}
}

func TestQuickInsertLookup(t *testing.T) {
	f := func(keys []uint16) bool {
		ht := New(1)
		for i, ku := range keys {
			if err := ht.Insert(int64(ku), Location{Offset: int64(i)}); err != nil {
				return false
			}
		}
		for _, ku := range keys {
			if _, ok := ht.Lookup(int64(ku)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	ht := New(1 << 20)
	for k := int64(0); k < 1<<20; k++ {
		ht.Insert(k, Location{Offset: k})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Lookup(int64(i) & (1<<20 - 1))
	}
}
