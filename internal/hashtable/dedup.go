package hashtable

// Dedup is a reusable open-addressing key -> dense-index map for batch
// deduplication on the serving hot path. It replaces the throwaway
// map[int64]int the coalescer used per flush: the same linear-probe scheme
// as Table, but with generation-stamped slots so Reset is O(1) — no
// clearing, no reallocation, no garbage in steady state.
//
// Unlike Table, Dedup accepts any int64 key (negative keys included):
// occupancy is tracked by the generation stamp, not a key sentinel, so the
// full key space is valid. Key validation belongs to the layers below
// (extract rejects out-of-range keys for the whole batch).
//
// A Dedup is not safe for concurrent use; it is meant to be owned by one
// worker goroutine or recycled through a sync.Pool.
type Dedup struct {
	keys []int64
	idx  []int32
	gen  []uint32
	cur  uint32
	mask uint64
	n    int
}

// NewDedup creates a dedup table with room for capacity keys at a load
// factor of at most 0.75.
func NewDedup(capacity int) *Dedup {
	d := &Dedup{}
	d.resize(slotsFor(capacity))
	return d
}

func (d *Dedup) resize(slots int) {
	d.keys = make([]int64, slots)
	d.idx = make([]int32, slots)
	d.gen = make([]uint32, slots)
	d.mask = uint64(slots - 1)
	d.cur = 1
	d.n = 0
}

// Reset forgets all keys and ensures room for capacity more. In steady
// state (capacity fits) this is a single generation bump.
func (d *Dedup) Reset(capacity int) {
	if want := slotsFor(capacity); want > len(d.keys) {
		d.resize(want)
		return
	}
	d.cur++
	if d.cur == 0 { // generation counter wrapped: stamps are stale, clear them
		for i := range d.gen {
			d.gen[i] = 0
		}
		d.cur = 1
	}
	d.n = 0
}

// Len returns the number of distinct keys added since the last Reset.
func (d *Dedup) Len() int { return d.n }

// Add returns the dense index assigned to key — indices run 0, 1, 2, ... in
// first-seen order — and whether this call was the first occurrence.
func (d *Dedup) Add(key int64) (idx int, fresh bool) {
	if d.n*4 >= len(d.keys)*3 {
		d.grow()
	}
	i := hash(key) & d.mask
	for {
		if d.gen[i] != d.cur {
			d.keys[i] = key
			d.idx[i] = int32(d.n)
			d.gen[i] = d.cur
			d.n++
			return d.n - 1, true
		}
		if d.keys[i] == key {
			return int(d.idx[i]), false
		}
		i = (i + 1) & d.mask
	}
}

// Index returns the dense index of a key added since the last Reset.
func (d *Dedup) Index(key int64) (int, bool) {
	i := hash(key) & d.mask
	for {
		if d.gen[i] != d.cur {
			return 0, false
		}
		if d.keys[i] == key {
			return int(d.idx[i]), true
		}
		i = (i + 1) & d.mask
	}
}

// grow doubles the slot array, re-inserting the live generation's entries
// with their existing dense indices.
func (d *Dedup) grow() {
	oldKeys, oldIdx, oldGen, oldCur := d.keys, d.idx, d.gen, d.cur
	n := d.n
	d.resize(len(oldKeys) * 2)
	for i, g := range oldGen {
		if g != oldCur {
			continue
		}
		j := hash(oldKeys[i]) & d.mask
		for d.gen[j] == d.cur {
			j = (j + 1) & d.mask
		}
		d.keys[j] = oldKeys[i]
		d.idx[j] = oldIdx[i]
		d.gen[j] = d.cur
	}
	d.n = n
}
