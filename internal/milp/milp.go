// Package milp solves small mixed-integer linear programs by branch and
// bound over internal/lp's simplex. It stands in for Gurobi in the paper's
// cache-policy solver (§6.2): the exact, entry-granularity formulation is
// solved with this package on reduced instances (as the paper itself
// reduces instances for the Fig. 16 optimality study), while production-
// scale instances go through internal/solver's Lagrangian path.
//
// The search is a W-worker best-first branch and bound over a shared node
// queue. Branch nodes are an O(1) parent-chain overlay on the root problem
// (lp.SolveBounded), each worker reuses a private lp.Scratch, and the
// global bound is maintained as the minimum over open and in-flight
// subtree bounds so Progress.Gap and Solution.Bound tighten as the tree is
// consumed. For complete searches (RelGap 0) the result is deterministic
// across worker counts: subtrees that could still tie the incumbent are
// never pruned, and equal-objective incumbents are tie-broken by
// lexicographically smallest X, an order-independent argmin.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ugache/internal/lp"
)

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of expanded branch-and-bound nodes
	// (0 = 100000). When the budget is hit the result is marked incomplete
	// and Bound carries the tightest bound proven so far.
	MaxNodes int
	// RelGap stops the search once (incumbent - bound)/|incumbent| is below
	// this value (0 = prove optimality). The bound is the live global bound,
	// not the root relaxation, so the target fires as soon as the tree has
	// actually tightened enough. A nonzero gap trades the X determinism
	// guarantee for speed: the objective stays within the gap for any worker
	// count, but which gap-optimal point is returned depends on timing.
	RelGap float64
	// Workers is the number of concurrent branch-and-bound workers sharing
	// the best-first queue (0 or 1 = sequential, negative = GOMAXPROCS).
	Workers int
	// Incumbent, when non-nil, warm-starts the search with a feasible
	// integral point — typically the previous solve's X under drifted
	// inputs — which prunes from the first node. The point is validated
	// (arity, finiteness, integrality, constraints) and silently ignored
	// when stale or infeasible. A warm incumbent that ties the optimum may
	// be returned even when it is not the lexicographically smallest
	// optimum.
	Incumbent []float64
	// OnProgress, when non-nil, observes the search: every accepted
	// incumbent, periodic global-bound improvements, and once at
	// termination. Calls are serialized (never concurrent, for any worker
	// count) and monotone — Nodes never decreases, Incumbent never worsens,
	// Bound never loosens. It must be fast and must not retain the Progress
	// value's address.
	OnProgress func(Progress)
}

// Progress is one observation of the branch-and-bound search state.
type Progress struct {
	// Nodes explored so far.
	Nodes int
	// Incumbent is the best integral objective found (+Inf before the
	// first incumbent).
	Incumbent float64
	// Bound is the proven global lower bound: the minimum over open subtree
	// bounds, which tightens as the tree is consumed.
	Bound float64
	// Gap is (Incumbent-Bound)/|Incumbent|, or +Inf with no incumbent.
	Gap float64
	// Final marks the terminating callback.
	Final bool
}

// Solution is a MILP result.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	// Bound is the best lower bound proven (equals Objective when the
	// search completed).
	Bound float64
	// Nodes is the number of expanded branch-and-bound nodes. With more
	// than one worker the count varies run to run (exploration order does),
	// even though the returned solution does not.
	Nodes int
	// Complete reports whether the search exhausted the tree (or met the
	// gap target) rather than hitting MaxNodes.
	Complete bool
}

const (
	intTol = 1e-6
	// pruneTol is the incumbent-comparison tolerance. A subtree is pruned
	// only when its bound is strictly worse than the incumbent by more than
	// pruneTol, so nodes that could still tie are explored in every run and
	// the lexicographic tie-break sees every optimal point regardless of
	// exploration order — the determinism guarantee.
	pruneTol = 1e-9
	// feasTol is the constraint slack allowed when vetting a warm-start
	// incumbent.
	feasTol = 1e-6
	// boundReportEvery throttles bound-only OnProgress callbacks to one per
	// this many expansions since the last report.
	boundReportEvery = 64
)

// bbNode is one open node. The branch overlay is a parent chain, so a node
// adds O(1) state instead of a problem copy; the chain is materialized
// into an lp.Bound slice only when the node is expanded.
type bbNode struct {
	parent *bbNode
	bd     lp.Bound
	// bound is the node's parent LP objective, a lower bound on every
	// solution in the subtree.
	bound float64
	depth int
	seq   uint64
}

// nodeHeap orders the open set best-first: lowest bound, then deepest
// (diving toward integral leaves), then insertion order.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// search is the shared state of one Solve call. All mutable fields are
// guarded by mu; OnProgress fires under mu, which serializes it.
type search struct {
	p        *lp.Problem
	integers []int
	relGap   float64
	maxNodes int
	onProg   func(Progress)

	mu   sync.Mutex
	cond *sync.Cond
	open nodeHeap
	// active[w] is the bound of the node worker w is expanding (+Inf when
	// idle); the global bound is min(heap top, active bounds) so an
	// in-flight subtree keeps holding the bound down until its children are
	// pushed.
	active    []float64
	nodes     int
	seq       uint64
	stopped   bool
	truncated bool
	gapMet    bool
	err       error
	incX      []float64
	incObj    float64
	// bestBound caches the high-water mark of the global bound, keeping
	// reports monotone against float jitter and heap churn.
	bestBound float64
	sinceProg int
}

// Solve minimizes the problem with the given variables restricted to
// integers. Variables keep their x ≥ 0 domain; callers add upper bounds as
// ordinary constraints.
func Solve(p *lp.Problem, integers []int, opt Options) (*Solution, error) {
	for _, v := range integers {
		if v < 0 || v >= p.NumVars() {
			return nil, fmt.Errorf("milp: integer variable %d out of range", v)
		}
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	root, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if root.Status != lp.Optimal {
		if opt.OnProgress != nil {
			opt.OnProgress(progressAt(0, math.Inf(1), 0, true))
		}
		return &Solution{Status: root.Status, Complete: true}, nil
	}

	s := &search{
		p:         p,
		integers:  integers,
		relGap:    opt.RelGap,
		maxNodes:  maxNodes,
		onProg:    opt.OnProgress,
		active:    make([]float64, workers),
		incObj:    math.Inf(1),
		bestBound: root.Objective,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.active {
		s.active[i] = math.Inf(1)
	}

	s.mu.Lock()
	// Warm start: adopt a vetted feasible integral point as the initial
	// incumbent so pruning bites from the first node.
	if x, obj, ok := warmPoint(p, integers, opt.Incumbent); ok {
		s.incX, s.incObj = x, obj
		// The only proof at this point is the root relaxation; boundLocked
		// would misread the still-empty tree as consumed.
		s.report(progressAt(0, obj, s.bestBound, false))
	}
	// The root relaxation counts as the first expanded node: an integral
	// root is immediately optimal, otherwise its children seed the queue.
	s.nodes = 1
	s.absorb(nil, root.Objective, root.X)
	s.checkDone()
	s.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w)
		}(w)
	}
	wg.Wait()
	if s.err != nil {
		return nil, s.err
	}
	return s.finish()
}

// worker pulls nodes from the shared queue until the search stops, solving
// each relaxation with a private scratch.
func (s *search) worker(w int) {
	sc := &lp.Scratch{}
	var bounds []lp.Bound
	for {
		n, ok := s.next(w)
		if !ok {
			return
		}
		bounds = materialize(n, bounds[:0])
		sol, lpErr := s.p.SolveBounded(bounds, sc)

		s.mu.Lock()
		if lpErr != nil {
			if s.err == nil {
				s.err = lpErr
			}
			s.stopped = true
		} else {
			if sol.Status == lp.Optimal {
				s.absorb(n, sol.Objective, sol.X)
			}
			// Infeasible subtrees are simply dead; unbounded cannot appear
			// below a bounded root.
			s.sinceProg++
			if s.sinceProg >= boundReportEvery && !math.IsInf(s.incObj, 1) {
				s.report(progressAt(s.nodes, s.incObj, s.boundLocked(), false))
			}
		}
		s.active[w] = math.Inf(1)
		s.checkDone()
		// Wake peers: children may have been pushed, or this was the last
		// in-flight node and waiters must observe termination.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// next blocks until a node is available (returning it and charging it to
// the node budget) or the search is over.
func (s *search) next(w int) (*bbNode, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, false
		}
		for len(s.open) > 0 {
			if s.nodes >= s.maxNodes {
				s.stopped, s.truncated = true, true
				s.cond.Broadcast()
				return nil, false
			}
			n := heap.Pop(&s.open).(*bbNode)
			if n.bound > s.incObj+pruneTol {
				continue // incumbent tightened since the push
			}
			s.nodes++
			s.active[w] = n.bound
			return n, true
		}
		if s.idleLocked() {
			// Queue empty and nothing in flight: tree consumed.
			s.cond.Broadcast()
			return nil, false
		}
		s.cond.Wait()
	}
}

func (s *search) idleLocked() bool {
	for _, a := range s.active {
		if !math.IsInf(a, 1) {
			return false
		}
	}
	return true
}

// absorb folds one solved relaxation into the search state: prune, accept
// an integral incumbent, or push the two children. n is nil for the root.
// Caller holds mu.
func (s *search) absorb(n *bbNode, obj float64, x []float64) {
	if obj > s.incObj+pruneTol {
		return // cannot beat or tie the incumbent
	}
	// Branch on the most fractional integer variable (lowest index on
	// ties, so the shape of the tree is worker-count independent).
	branch := -1
	worst := intTol
	for _, v := range s.integers {
		f := x[v] - math.Floor(x[v])
		frac := math.Min(f, 1-f)
		if frac > worst {
			worst, branch = frac, v
		}
	}
	if branch < 0 {
		s.offer(obj, x)
		return
	}
	fl := math.Floor(x[branch])
	depth := 1
	if n != nil {
		depth = n.depth + 1
	}
	down := &bbNode{parent: n, bd: lp.Bound{Var: branch, Op: lp.LE, RHS: fl},
		bound: obj, depth: depth, seq: s.seq}
	up := &bbNode{parent: n, bd: lp.Bound{Var: branch, Op: lp.GE, RHS: fl + 1},
		bound: obj, depth: depth, seq: s.seq + 1}
	s.seq += 2
	heap.Push(&s.open, down)
	heap.Push(&s.open, up)
}

// offer proposes an integral point as incumbent. Selection is a total
// order — objective first, then lexicographic X — compared with exact
// floats, so the surviving incumbent is independent of arrival order.
// Caller holds mu.
func (s *search) offer(obj float64, x []float64) {
	if !(obj < s.incObj || (obj == s.incObj && lexLess(x, s.incX))) {
		return
	}
	s.incX = append(s.incX[:0], x...)
	s.incObj = obj
	s.report(progressAt(s.nodes, s.incObj, s.boundLocked(), false))
}

// boundLocked returns the proven global lower bound: the minimum over all
// open and in-flight subtree bounds, clamped by the incumbent and kept
// monotone. Caller holds mu.
func (s *search) boundLocked() float64 {
	b := math.Inf(1)
	if len(s.open) > 0 {
		b = s.open[0].bound
	}
	for _, a := range s.active {
		if a < b {
			b = a
		}
	}
	if b > s.incObj {
		b = s.incObj
	}
	if b > s.bestBound && !math.IsInf(b, 1) {
		s.bestBound = b
	}
	return s.bestBound
}

// checkDone flips the stop flags when the gap target is met or the node
// budget is exhausted with work remaining. Caller holds mu.
func (s *search) checkDone() {
	if s.stopped {
		return
	}
	if s.relGap > 0 && !math.IsInf(s.incObj, 1) &&
		gapOK(s.incObj, s.boundLocked(), s.relGap) {
		s.stopped, s.gapMet = true, true
		s.cond.Broadcast()
		return
	}
	if s.nodes >= s.maxNodes && len(s.open) > 0 {
		s.stopped, s.truncated = true, true
		s.cond.Broadcast()
	}
}

// report emits one serialized progress observation. Caller holds mu.
func (s *search) report(pr Progress) {
	s.sinceProg = 0
	if s.onProg != nil {
		s.onProg(pr)
	}
}

// finish assembles the Solution and fires the terminating callback.
func (s *search) finish() (*Solution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sol := &Solution{
		Status:    lp.Infeasible,
		Objective: math.Inf(1),
		Nodes:     s.nodes,
		Complete:  !s.truncated,
	}
	if s.incX != nil {
		sol.Status = lp.Optimal
		sol.Objective = s.incObj
		sol.X = s.incX
		if sol.Complete && !s.gapMet {
			sol.Bound = sol.Objective
		} else {
			sol.Bound = s.boundLocked()
		}
	} else if s.truncated {
		// No incumbent yet, but the partial tree still proved a bound.
		sol.Bound = s.boundLocked()
	}
	inc := math.Inf(1)
	if sol.Status == lp.Optimal {
		inc = sol.Objective
	}
	s.report(progressAt(s.nodes, inc, sol.Bound, true))
	return sol, nil
}

// materialize walks the parent chain into a bound slice, root-most first
// (a fixed per-node order, so the overlay LP is identical no matter which
// worker expands the node).
func materialize(n *bbNode, buf []lp.Bound) []lp.Bound {
	for cur := n; cur != nil; cur = cur.parent {
		buf = append(buf, cur.bd)
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// warmPoint vets a warm-start incumbent: correct arity, finite,
// nonnegative, integral on the integer variables, feasible on every
// constraint within feasTol. Returns a defensive copy with the integer
// coordinates rounded exactly, plus its objective value.
func warmPoint(p *lp.Problem, integers []int, x []float64) ([]float64, float64, bool) {
	if x == nil || len(x) != p.NumVars() {
		return nil, 0, false
	}
	cp := append([]float64(nil), x...)
	for i, v := range cp {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < -feasTol {
			return nil, 0, false
		}
		if v < 0 {
			cp[i] = 0
		}
	}
	for _, v := range integers {
		r := math.Round(cp[v])
		if math.Abs(cp[v]-r) > intTol {
			return nil, 0, false
		}
		cp[v] = r
	}
	if !p.Feasible(cp, feasTol) {
		return nil, 0, false
	}
	return cp, p.ObjectiveValue(cp), true
}

// lexLess reports whether a precedes b lexicographically, comparing exact
// floats; a nil b (no incumbent yet) never wins but that case is guarded
// by the objective comparison.
func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// progressAt packages one search observation.
func progressAt(nodes int, incumbent, bound float64, final bool) Progress {
	gap := math.Inf(1)
	if !math.IsInf(incumbent, 1) {
		if incumbent == 0 {
			gap = math.Abs(bound)
		} else {
			gap = (incumbent - bound) / math.Abs(incumbent)
		}
	}
	return Progress{Nodes: nodes, Incumbent: incumbent, Bound: bound, Gap: gap, Final: final}
}

func gapOK(incumbent, bound, relGap float64) bool {
	if incumbent == 0 {
		return math.Abs(bound) < relGap
	}
	return (incumbent-bound)/math.Abs(incumbent) <= relGap
}
