// Package milp solves small mixed-integer linear programs by branch and
// bound over internal/lp's simplex. It stands in for Gurobi in the paper's
// cache-policy solver (§6.2): the exact, entry-granularity formulation is
// solved with this package on reduced instances (as the paper itself
// reduces instances for the Fig. 16 optimality study), while production-
// scale instances go through internal/solver's Lagrangian path.
package milp

import (
	"fmt"
	"math"

	"ugache/internal/lp"
)

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = 100000).
	MaxNodes int
	// RelGap stops the search once (incumbent - bound)/|incumbent| is below
	// this value (0 = prove optimality).
	RelGap float64
	// OnProgress, when non-nil, is called from the search goroutine at every
	// new incumbent and once at termination, so callers can render the
	// incumbent/bound convergence as a timeline. It must be fast and must
	// not retain the Progress value's address.
	OnProgress func(Progress)
}

// Progress is one observation of the branch-and-bound search state.
type Progress struct {
	// Nodes explored so far.
	Nodes int
	// Incumbent is the best integral objective found (+Inf before the
	// first incumbent).
	Incumbent float64
	// Bound is the proven global lower bound (the root relaxation until the
	// tree is exhausted).
	Bound float64
	// Gap is (Incumbent-Bound)/|Incumbent|, or +Inf with no incumbent.
	Gap float64
	// Final marks the terminating callback.
	Final bool
}

// Solution is a MILP result.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	// Bound is the best lower bound proven (equals Objective when the
	// search completed).
	Bound float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// Complete reports whether the search exhausted the tree (or met the
	// gap target) rather than hitting MaxNodes.
	Complete bool
}

const intTol = 1e-6

// Solve minimizes the problem with the given variables restricted to
// integers. Variables keep their x ≥ 0 domain; callers add upper bounds as
// ordinary constraints.
func Solve(p *lp.Problem, integers []int, opt Options) (*Solution, error) {
	for _, v := range integers {
		if v < 0 || v >= p.NumVars() {
			return nil, fmt.Errorf("milp: integer variable %d out of range", v)
		}
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}

	root, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if root.Status != lp.Optimal {
		if opt.OnProgress != nil {
			opt.OnProgress(progressAt(0, math.Inf(1), 0, true))
		}
		return &Solution{Status: root.Status, Complete: true}, nil
	}

	best := &Solution{Status: lp.Infeasible, Objective: math.Inf(1)}
	type node struct {
		prob  *lp.Problem
		bound float64
	}
	// DFS stack; we branch on the most fractional variable, exploring the
	// "floor" child first (tends to find feasible incumbents early for
	// placement problems where variables are selection indicators).
	stack := []node{{prob: p, bound: root.Objective}}
	nodes := 0
	globalBound := root.Objective

	for len(stack) > 0 && nodes < maxNodes {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.bound >= best.Objective-1e-9 {
			continue // pruned
		}
		sol, err := n.prob.Solve()
		if err != nil {
			return nil, err
		}
		nodes++
		if sol.Status != lp.Optimal || sol.Objective >= best.Objective-1e-9 {
			continue
		}
		// Find the most fractional integer variable.
		branch := -1
		worst := intTol
		for _, v := range integers {
			f := sol.X[v] - math.Floor(sol.X[v])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branch = v
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			best = &Solution{Status: lp.Optimal, Objective: sol.Objective,
				X: append([]float64(nil), sol.X...)}
			if opt.OnProgress != nil {
				opt.OnProgress(progressAt(nodes, best.Objective, globalBound, false))
			}
			if opt.RelGap > 0 && gapOK(best.Objective, globalBound, opt.RelGap) {
				break
			}
			continue
		}
		fl := math.Floor(sol.X[branch])
		up := n.prob.Clone()
		if err := up.AddConstraint([]lp.Coef{{Var: branch, Value: 1}}, lp.GE, fl+1); err != nil {
			return nil, err
		}
		down := n.prob.Clone()
		if err := down.AddConstraint([]lp.Coef{{Var: branch, Value: 1}}, lp.LE, fl); err != nil {
			return nil, err
		}
		// Push "up" first so "down" is explored first.
		stack = append(stack, node{up, sol.Objective}, node{down, sol.Objective})
	}

	best.Nodes = nodes
	best.Complete = len(stack) == 0 || (opt.RelGap > 0 && best.Status == lp.Optimal &&
		gapOK(best.Objective, globalBound, opt.RelGap))
	if best.Status == lp.Optimal {
		if best.Complete {
			best.Bound = best.Objective
		} else {
			best.Bound = globalBound
		}
	} else if best.Complete {
		best.Status = lp.Infeasible
	}
	if opt.OnProgress != nil {
		inc := math.Inf(1)
		if best.Status == lp.Optimal {
			inc = best.Objective
		}
		opt.OnProgress(progressAt(nodes, inc, best.Bound, true))
	}
	return best, nil
}

// progressAt packages one search observation.
func progressAt(nodes int, incumbent, bound float64, final bool) Progress {
	gap := math.Inf(1)
	if !math.IsInf(incumbent, 1) {
		if incumbent == 0 {
			gap = math.Abs(bound)
		} else {
			gap = (incumbent - bound) / math.Abs(incumbent)
		}
	}
	return Progress{Nodes: nodes, Incumbent: incumbent, Bound: bound, Gap: gap, Final: final}
}

func gapOK(incumbent, bound, relGap float64) bool {
	if incumbent == 0 {
		return math.Abs(bound) < relGap
	}
	return (incumbent-bound)/math.Abs(incumbent) <= relGap
}
