package milp

import (
	"math"
	"testing"

	"ugache/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binary -> min form.
	// Optimal: a=1, c=1 (wait: 2+1=3 <=5, value 8; a=1,b=1 -> 5 <= 5 value
	// 9). So a=b=1, c=0, value 9.
	p, _ := lp.NewProblem(3, []float64{-5, -4, -3})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 2}, {Var: 1, Value: 3}, {Var: 2, Value: 1}}, lp.LE, 5)
	for v := 0; v < 3; v++ {
		p.AddConstraint([]lp.Coef{{Var: v, Value: 1}}, lp.LE, 1)
	}
	s, err := Solve(p, []int{0, 1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || !s.Complete {
		t.Fatalf("status %v complete %v", s.Status, s.Complete)
	}
	if math.Abs(s.Objective-(-9)) > 1e-6 {
		t.Fatalf("objective %g, want -9", s.Objective)
	}
	for v, want := range []float64{1, 1, 0} {
		if math.Abs(s.X[v]-want) > 1e-6 {
			t.Fatalf("x = %v", s.X)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
	p, _ := lp.NewProblem(1, []float64{-1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 2}}, lp.LE, 7)
	s, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - y, x integer, x <= 2.5, y <= 1.3 -> x=2, y=1.3, obj -3.3.
	p, _ := lp.NewProblem(2, []float64{-1, -1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 2.5)
	p.AddConstraint([]lp.Coef{{Var: 1, Value: 1}}, lp.LE, 1.3)
	s, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-(-3.3)) > 1e-6 || math.Abs(s.X[0]-2) > 1e-6 {
		t.Fatalf("obj %g x %v", s.Objective, s.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p, _ := lp.NewProblem(1, []float64{1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 0.4)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 0.6)
	s, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Fatalf("status %v", s.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p, _ := lp.NewProblem(1, []float64{1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	s, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible || !s.Complete {
		t.Fatalf("status %v", s.Status)
	}
}

func TestPlacementToy(t *testing.T) {
	// A 2-GPU, 3-entry miniature of the paper's §6.2 model, symmetric
	// hotness {3, 2, 1}, each GPU capacity 1 entry, local time 1, remote 2,
	// host 10 per unit hotness. Best: cache entry0 on one GPU and entry1 on
	// the other (partition-style), rest to host.
	// Variables: s[e][g] binary (6), a[e][i][j in {local, remote, host}]
	// handled implicitly in the objective via assignment vars x[e][i][src].
	// We build it directly: x[e][i][s] with s in {0: g0, 1: g1, 2: host}.
	nv := 3*2*3 + 6 // x vars + s vars
	xi := func(e, i, src int) int { return (e*2+i)*3 + src }
	si := func(e, g int) int { return 18 + e*2 + g }
	hot := []float64{3, 2, 1}
	obj := make([]float64, nv)
	for e := 0; e < 3; e++ {
		for i := 0; i < 2; i++ {
			for src := 0; src < 3; src++ {
				cost := 10.0
				if src == i {
					cost = 1
				} else if src != 2 {
					cost = 2
				}
				obj[xi(e, i, src)] = hot[e] * cost
			}
		}
	}
	p, _ := lp.NewProblem(nv, obj)
	for e := 0; e < 3; e++ {
		for i := 0; i < 2; i++ {
			// Each (entry, reader) reads from exactly one source.
			p.AddConstraint([]lp.Coef{
				{Var: xi(e, i, 0), Value: 1}, {Var: xi(e, i, 1), Value: 1}, {Var: xi(e, i, 2), Value: 1},
			}, lp.EQ, 1)
			// Reading from GPU g requires storage there.
			for g := 0; g < 2; g++ {
				p.AddConstraint([]lp.Coef{
					{Var: si(e, g), Value: 1}, {Var: xi(e, i, g), Value: -1},
				}, lp.GE, 0)
			}
		}
		for g := 0; g < 2; g++ {
			p.AddConstraint([]lp.Coef{{Var: si(e, g), Value: 1}}, lp.LE, 1)
		}
	}
	// Capacity: one entry per GPU.
	for g := 0; g < 2; g++ {
		p.AddConstraint([]lp.Coef{
			{Var: si(0, g), Value: 1}, {Var: si(1, g), Value: 1}, {Var: si(2, g), Value: 1},
		}, lp.LE, 1)
	}
	ints := make([]int, 0, nv)
	for v := 0; v < nv; v++ {
		ints = append(ints, v)
	}
	s, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// Expected optimum: entries 0 and 1 cached on different GPUs; entry 2
	// on host. Cost: e0: 3*(1+2)=9, e1: 2*(1+2)=6, e2: 1*(10+10)=20 -> 35.
	// (Replicating e0 on both GPUs and e1 nowhere: 3*2 + 2*20 ... = worse.)
	if math.Abs(s.Objective-35) > 1e-6 {
		t.Fatalf("objective %g, want 35", s.Objective)
	}
	// Storage must respect capacity.
	for g := 0; g < 2; g++ {
		sum := s.X[si(0, g)] + s.X[si(1, g)] + s.X[si(2, g)]
		if sum > 1+1e-6 {
			t.Fatalf("gpu %d over capacity: %g", g, sum)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem that needs branching, with MaxNodes=1: incomplete result.
	p, _ := lp.NewProblem(2, []float64{-1, -1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 2}, {Var: 1, Value: 2}}, lp.LE, 3)
	s, err := Solve(p, []int{0, 1}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete {
		t.Fatal("node-limited search reported complete")
	}
}

func TestBadIntegerIndex(t *testing.T) {
	p, _ := lp.NewProblem(1, []float64{1})
	if _, err := Solve(p, []int{3}, Options{}); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestBoundReported(t *testing.T) {
	p, _ := lp.NewProblem(1, []float64{-1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 2}}, lp.LE, 7)
	s, _ := Solve(p, []int{0}, Options{})
	if !s.Complete || math.Abs(s.Bound-s.Objective) > 1e-9 {
		t.Fatalf("bound %g vs obj %g", s.Bound, s.Objective)
	}
}

func TestOnProgress(t *testing.T) {
	// Knapsack again, watching the search converge.
	p, _ := lp.NewProblem(3, []float64{-5, -4, -3})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 2}, {Var: 1, Value: 3}, {Var: 2, Value: 1}}, lp.LE, 5)
	for v := 0; v < 3; v++ {
		p.AddConstraint([]lp.Coef{{Var: v, Value: 1}}, lp.LE, 1)
	}
	var seen []Progress
	s, err := Solve(p, []int{0, 1, 2}, Options{OnProgress: func(pr Progress) { seen = append(seen, pr) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Fatalf("want >= 2 progress callbacks (incumbent + final), got %d", len(seen))
	}
	last := seen[len(seen)-1]
	if !last.Final {
		t.Fatalf("last callback not final: %+v", last)
	}
	if last.Incumbent != s.Objective || last.Bound != s.Bound {
		t.Fatalf("final progress %+v does not match solution obj %g bound %g", last, s.Objective, s.Bound)
	}
	if last.Gap > 1e-9 {
		t.Fatalf("completed search should have zero gap, got %g", last.Gap)
	}
	prevNodes, prevInc := 0, math.Inf(1)
	for i, pr := range seen[:len(seen)-1] {
		if pr.Final {
			t.Fatalf("non-last callback %d marked final", i)
		}
		if pr.Nodes < prevNodes {
			t.Fatalf("nodes went backwards at callback %d: %d -> %d", i, prevNodes, pr.Nodes)
		}
		if pr.Incumbent > prevInc+1e-12 {
			t.Fatalf("incumbent worsened at callback %d: %g -> %g", i, prevInc, pr.Incumbent)
		}
		if pr.Incumbent < pr.Bound-1e-9 {
			t.Fatalf("incumbent %g below bound %g at callback %d", pr.Incumbent, pr.Bound, i)
		}
		prevNodes, prevInc = pr.Nodes, pr.Incumbent
	}
}

func TestOnProgressInfeasible(t *testing.T) {
	// x >= 2 and x <= 1: infeasible; final callback still fires, with no
	// incumbent.
	p, _ := lp.NewProblem(1, []float64{1})
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.GE, 2)
	p.AddConstraint([]lp.Coef{{Var: 0, Value: 1}}, lp.LE, 1)
	var seen []Progress
	if _, err := Solve(p, []int{0}, Options{OnProgress: func(pr Progress) { seen = append(seen, pr) }}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !seen[0].Final {
		t.Fatalf("want exactly one final callback, got %+v", seen)
	}
	if !math.IsInf(seen[0].Incumbent, 1) || !math.IsInf(seen[0].Gap, 1) {
		t.Fatalf("infeasible progress should carry +Inf incumbent/gap: %+v", seen[0])
	}
}
