package milp

import (
	"fmt"
	"testing"

	"ugache/internal/lp"
)

// BenchmarkMILPSolve measures branch-and-bound throughput on a makespan
// placement instance that genuinely branches (14 entries, capacity 6,
// hotness plateaus of 2). The workers=1 vs workers=4 pair is the parallel
// scaling headline of BENCH_solver.json; both must return the identical
// solution (TestDeterminismAcrossWorkers pins that), only the wall time
// and nodes/s may differ. On a single-core host the two are expected to
// tie — the scaling claim only manifests with real cores.
func BenchmarkMILPSolve(b *testing.B) {
	p, ints := placementInstance(b, 14, 6, 2)
	base, err := Solve(p, ints, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var nodes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := Solve(p, ints, Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != lp.Optimal || sol.Objective != base.Objective {
					b.Fatalf("status %v objective %v, want optimal %v",
						sol.Status, sol.Objective, base.Objective)
				}
				nodes += int64(sol.Nodes)
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes")
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}
