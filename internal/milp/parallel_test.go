package milp

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ugache/internal/lp"
)

// placementInstance builds an n-entry, 2-GPU + host miniature of the §6.2
// makespan model: binary access vars x[e][reader][src], binary storage vars
// s[e][gpu], a continuous makespan z minimized subject to z ≥ each reader's
// load, and per-GPU capacity in entries. Hotness comes in plateaus of
// `group` equally-hot entries; plateaus plus the min-max objective keep the
// root relaxation fractional, so the search genuinely branches (the
// sum-cost variant is naturally integral and solves at the root).
func placementInstance(tb testing.TB, n, capacity, group int) (*lp.Problem, []int) {
	tb.Helper()
	nv := n*2*3 + n*2 + 1
	xi := func(e, i, src int) int { return (e*2+i)*3 + src }
	si := func(e, g int) int { return n*2*3 + e*2 + g }
	zv := nv - 1
	obj := make([]float64, nv)
	obj[zv] = 1
	p, err := lp.NewProblem(nv, obj)
	if err != nil {
		tb.Fatal(err)
	}
	for e := 0; e < n; e++ {
		for i := 0; i < 2; i++ {
			p.AddConstraint([]lp.Coef{
				{Var: xi(e, i, 0), Value: 1}, {Var: xi(e, i, 1), Value: 1}, {Var: xi(e, i, 2), Value: 1},
			}, lp.EQ, 1)
			for g := 0; g < 2; g++ {
				p.AddConstraint([]lp.Coef{
					{Var: si(e, g), Value: 1}, {Var: xi(e, i, g), Value: -1},
				}, lp.GE, 0)
			}
		}
		for g := 0; g < 2; g++ {
			p.AddConstraint([]lp.Coef{{Var: si(e, g), Value: 1}}, lp.LE, 1)
		}
	}
	for g := 0; g < 2; g++ {
		coefs := make([]lp.Coef, 0, n)
		for e := 0; e < n; e++ {
			coefs = append(coefs, lp.Coef{Var: si(e, g), Value: 1})
		}
		p.AddConstraint(coefs, lp.LE, float64(capacity))
	}
	for i := 0; i < 2; i++ {
		coefs := []lp.Coef{{Var: zv, Value: 1}}
		for e := 0; e < n; e++ {
			hot := math.Pow(float64(e/group+1), -1.2) * 1000
			for src := 0; src < 3; src++ {
				cost := 40.0 // host
				if src == i {
					cost = 1 // local
				} else if src != 2 {
					cost = 4 // remote peer
				}
				coefs = append(coefs, lp.Coef{Var: xi(e, i, src), Value: -hot * cost})
			}
		}
		p.AddConstraint(coefs, lp.GE, 0)
	}
	ints := make([]int, 0, nv-1) // z stays continuous
	for v := 0; v < nv-1; v++ {
		ints = append(ints, v)
	}
	return p, ints
}

// TestBoundTightens is the regression test for the seed bug where
// globalBound stayed frozen at the root relaxation: a node-limited search
// must report a Bound strictly tighter than the root LP.
func TestBoundTightens(t *testing.T) {
	p, ints := placementInstance(t, 8, 3, 1)
	root, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var last Progress
	s, err := Solve(p, ints, Options{MaxNodes: 32, OnProgress: func(pr Progress) { last = pr }})
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete {
		t.Skip("instance solved within the node budget; cannot exercise truncation")
	}
	if s.Bound <= root.Objective {
		t.Fatalf("truncated Bound %g did not tighten past root relaxation %g", s.Bound, root.Objective)
	}
	if last.Bound != s.Bound {
		t.Fatalf("final progress bound %g != solution bound %g", last.Bound, s.Bound)
	}
	if s.Status == lp.Optimal && s.Bound > s.Objective+1e-9 {
		t.Fatalf("bound %g above incumbent %g", s.Bound, s.Objective)
	}
}

// TestDeterminismAcrossWorkers pins the headline guarantee: any worker
// count returns bit-identical Objective and X on a complete search. The
// instance is GPU-symmetric, so it has mirrored optimal solutions and the
// lexicographic tie-break is actually load-bearing.
func TestDeterminismAcrossWorkers(t *testing.T) {
	p, ints := placementInstance(t, 8, 3, 1)
	base, err := Solve(p, ints, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != lp.Optimal || !base.Complete {
		t.Fatalf("base solve: status %v complete %v", base.Status, base.Complete)
	}
	for _, w := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			s, err := Solve(p, ints, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if s.Objective != base.Objective {
				t.Fatalf("W=%d rep %d: objective %v != base %v", w, rep, s.Objective, base.Objective)
			}
			for j := range s.X {
				if s.X[j] != base.X[j] {
					t.Fatalf("W=%d rep %d: X[%d] = %v != base %v", w, rep, j, s.X[j], base.X[j])
				}
			}
			if !s.Complete || s.Bound != s.Objective {
				t.Fatalf("W=%d rep %d: complete %v bound %v obj %v", w, rep, s.Complete, s.Bound, s.Objective)
			}
		}
	}
}

// TestOnProgressSerializedParallel runs with 8 workers and checks the
// OnProgress contract: never concurrent, nodes non-decreasing, incumbent
// non-increasing, bound non-decreasing, exactly one final callback.
func TestOnProgressSerializedParallel(t *testing.T) {
	p, ints := placementInstance(t, 8, 3, 1)
	var inFlight atomic.Int32
	var seen []Progress
	s, err := Solve(p, ints, Options{Workers: 8, OnProgress: func(pr Progress) {
		if inFlight.Add(1) != 1 {
			t.Error("OnProgress invoked concurrently")
		}
		seen = append(seen, pr)
		inFlight.Add(-1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || !seen[len(seen)-1].Final {
		t.Fatalf("missing final callback: %d callbacks", len(seen))
	}
	finals := 0
	prev := Progress{Nodes: 0, Incumbent: math.Inf(1), Bound: math.Inf(-1)}
	for i, pr := range seen {
		if pr.Final {
			finals++
		}
		if pr.Nodes < prev.Nodes {
			t.Fatalf("callback %d: nodes went backwards %d -> %d", i, prev.Nodes, pr.Nodes)
		}
		if pr.Incumbent > prev.Incumbent {
			t.Fatalf("callback %d: incumbent worsened %g -> %g", i, prev.Incumbent, pr.Incumbent)
		}
		if pr.Bound < prev.Bound {
			t.Fatalf("callback %d: bound loosened %g -> %g", i, prev.Bound, pr.Bound)
		}
		prev = pr
	}
	if finals != 1 {
		t.Fatalf("want exactly one final callback, got %d", finals)
	}
	if last := seen[len(seen)-1]; last.Incumbent != s.Objective || last.Bound != s.Bound {
		t.Fatalf("final progress %+v vs solution obj %g bound %g", last, s.Objective, s.Bound)
	}
}

// TestWarmStartAdopted seeds the search with the known optimum and checks
// that (a) the incumbent is present before any node is expanded, (b) the
// result matches, and (c) the warm search expands no more nodes than cold.
func TestWarmStartAdopted(t *testing.T) {
	p, ints := placementInstance(t, 8, 3, 1)
	cold, err := Solve(p, ints, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var first Progress
	gotFirst := false
	warm, err := Solve(p, ints, Options{Workers: 1, Incumbent: cold.X,
		OnProgress: func(pr Progress) {
			if !gotFirst {
				first, gotFirst = pr, true
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !gotFirst || first.Nodes != 0 || math.IsInf(first.Incumbent, 1) {
		t.Fatalf("warm incumbent not reported before expansion: %+v", first)
	}
	if warm.Objective != cold.Objective {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Nodes > cold.Nodes {
		t.Fatalf("warm start expanded more nodes than cold: %d > %d", warm.Nodes, cold.Nodes)
	}
}

// TestWarmStartRejected feeds invalid warm points: wrong arity, fractional
// integers, constraint violations. All must be silently ignored.
func TestWarmStartRejected(t *testing.T) {
	p, ints := placementInstance(t, 6, 2, 1)
	cold, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		make([]float64, 3),                // wrong arity
		make([]float64, p.NumVars()),      // violates the ==1 rows
		append([]float64(nil), cold.X...), // fractional (mutated below)
		append([]float64(nil), cold.X...), // NaN (mutated below)
		{math.Inf(1)},                     // wrong arity and non-finite
	}
	bad[2][0] = 0.5
	bad[3][0] = math.NaN()
	for i, inc := range bad {
		var first Progress
		gotFirst := false
		s, err := Solve(p, ints, Options{Incumbent: inc, OnProgress: func(pr Progress) {
			if !gotFirst {
				first, gotFirst = pr, true
			}
		}})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if s.Objective != cold.Objective {
			t.Fatalf("case %d: objective %v != cold %v", i, s.Objective, cold.Objective)
		}
		if gotFirst && first.Nodes == 0 && !math.IsInf(first.Incumbent, 1) {
			t.Fatalf("case %d: invalid warm point adopted as incumbent: %+v", i, first)
		}
	}
}

// TestWarmStartGapExit: a warm optimum plus a loose RelGap should let the
// search stop almost immediately once the live bound proves the gap.
func TestWarmStartGapExit(t *testing.T) {
	p, ints := placementInstance(t, 8, 3, 1)
	cold, err := Solve(p, ints, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(p, ints, Options{Workers: 1, Incumbent: cold.X, RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Complete {
		t.Fatal("gap-target search not marked complete")
	}
	if warm.Nodes >= cold.Nodes {
		t.Fatalf("warm+gap search should be cheaper than cold: %d >= %d", warm.Nodes, cold.Nodes)
	}
	if gap := (warm.Objective - warm.Bound) / math.Abs(warm.Objective); gap > 0.05+1e-9 {
		t.Fatalf("reported gap %g exceeds target", gap)
	}
}

// TestConcurrentSolves runs independent parallel solves of the same shared
// Problem from multiple goroutines (the Problem is read-only under the new
// search); meaningful under -race.
func TestConcurrentSolves(t *testing.T) {
	p, ints := placementInstance(t, 6, 2, 1)
	base, err := Solve(p, ints, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := Solve(p, ints, Options{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if s.Objective != base.Objective {
				t.Errorf("objective %v != base %v", s.Objective, base.Objective)
			}
		}()
	}
	wg.Wait()
}
