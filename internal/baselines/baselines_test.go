package baselines

import (
	"testing"

	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/solver"
)

func TestSpecsComposition(t *testing.T) {
	if GNNLab.Policy.Name() != "replication" || !GNNLab.DedicatedSamplers {
		t.Fatal("GNNLab spec wrong")
	}
	if WholeGraph.Policy.Name() != "partition" || !WholeGraph.RequiresFullFit {
		t.Fatal("WholeGraph spec wrong")
	}
	if PartU.Policy.Name() != "clique-partition" {
		t.Fatal("PartU spec wrong")
	}
	if HPS.EvictionFactor <= 1 || HPS.EvictionPerKey <= 0 {
		t.Fatal("HPS eviction overheads missing")
	}
	if SOK.Mechanism != extract.MessageBased {
		t.Fatal("SOK mechanism wrong")
	}
	if UGache.Mechanism != extract.Factored || UGache.Policy.Name() != "ugache" {
		t.Fatal("UGache spec wrong")
	}
	if len(GNNSystems) != 3 || len(DLRSystems) != 3 {
		t.Fatal("registries wrong")
	}
}

func TestLaunchable(t *testing.T) {
	b := platform.ServerB()
	c := platform.ServerC()
	if err := WholeGraph.Launchable(b, 100, 100); err == nil {
		t.Fatal("WholeGraph launched on DGX-1")
	}
	if err := WholeGraph.Launchable(c, 1000, 10); err == nil {
		t.Fatal("WholeGraph launched without fit")
	}
	if err := WholeGraph.Launchable(c, 1000, 125); err != nil {
		t.Fatalf("WholeGraph should launch when fitting: %v", err)
	}
	if err := PartU.Launchable(b, 1<<40, 10); err != nil {
		t.Fatalf("PartU must always launch: %v", err)
	}
}

func TestWithModifiers(t *testing.T) {
	s := PartU.WithMechanism(extract.Factored)
	if s.Mechanism != extract.Factored || s.Name == PartU.Name {
		t.Fatal("WithMechanism broken")
	}
	s2 := RepU.WithPolicy(solver.UGache{})
	if s2.Policy.Name() != "ugache" || s2.Name == RepU.Name {
		t.Fatal("WithPolicy broken")
	}
	// Originals untouched.
	if PartU.Mechanism != extract.PeerRandom || RepU.Policy.Name() != "replication" {
		t.Fatal("modifiers mutated the originals")
	}
}
