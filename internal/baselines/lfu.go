package baselines

import (
	"fmt"
	"sort"
)

// OnlineLFU models the frequency-driven online caches the paper competes
// with (HPS-style replication with online eviction; the frequency-aware
// software caches of the DLR serving literature): every GPU holds the same
// top-C keys by decayed access frequency, and membership is re-adjusted
// after every observed batch. There is no solve and no placement — the
// cache chases the measured stream directly, which makes it the natural
// online baseline for the drift bench: it reacts to a shift immediately but
// pays continuous churn and never coordinates storage across GPUs.
//
// The per-batch adjustment selects the exact top-C by current count — an
// idealized (maximally reactive) LFU, so the comparison is conservative for
// the solver side.
type OnlineLFU struct {
	capacity int
	decay    float64

	counts  []float64
	cached  []bool
	batches int

	admitted, evicted int64 // cumulative membership churn

	order []int32            // selection scratch
	seen  map[int64]struct{} // per-batch presence dedup scratch
}

// NewOnlineLFU builds an LFU cache over numEntries keys holding capacity
// entries per GPU. decay in (0, 1] multiplies all counts each batch
// (1 = pure cumulative LFU; lower values forget faster and track drift
// more aggressively).
func NewOnlineLFU(numEntries int64, capacity int, decay float64) (*OnlineLFU, error) {
	if numEntries <= 0 {
		return nil, fmt.Errorf("baselines: lfu needs entries > 0, got %d", numEntries)
	}
	if capacity <= 0 || int64(capacity) > numEntries {
		return nil, fmt.Errorf("baselines: lfu capacity %d outside (0, %d]", capacity, numEntries)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("baselines: lfu decay %g outside (0, 1]", decay)
	}
	return &OnlineLFU{
		capacity: capacity,
		decay:    decay,
		counts:   make([]float64, numEntries),
		cached:   make([]bool, numEntries),
		order:    make([]int32, numEntries),
		seen:     make(map[int64]struct{}, 1024),
	}, nil
}

// Observe feeds one batch: counts are decayed, each present key's count is
// bumped once (presence, matching how the extractor deduplicates), and the
// cached set is re-adjusted to the current top-capacity keys. Out-of-range
// keys are ignored.
func (l *OnlineLFU) Observe(keys []int64) {
	l.batches++
	if l.decay < 1 {
		for i := range l.counts {
			l.counts[i] *= l.decay
		}
	}
	clear(l.seen)
	for _, k := range keys {
		if k < 0 || k >= int64(len(l.counts)) {
			continue
		}
		if _, dup := l.seen[k]; dup {
			continue
		}
		l.seen[k] = struct{}{}
		l.counts[k]++
	}
	l.adjust()
}

// adjust rebuilds the cached set as the exact top-capacity keys by count
// (ties broken by ascending key for determinism), tallying churn.
func (l *OnlineLFU) adjust() {
	for i := range l.order {
		l.order[i] = int32(i)
	}
	sort.Slice(l.order, func(a, b int) bool {
		ka, kb := l.order[a], l.order[b]
		if l.counts[ka] != l.counts[kb] {
			return l.counts[ka] > l.counts[kb]
		}
		return ka < kb
	})
	// Mark the new top set, counting admissions; then clear stragglers,
	// counting evictions.
	inTop := make(map[int32]struct{}, l.capacity)
	for r := 0; r < l.capacity; r++ {
		k := l.order[r]
		inTop[k] = struct{}{}
		if !l.cached[k] {
			l.cached[k] = true
			l.admitted++
		}
	}
	for k := range l.cached {
		if !l.cached[k] {
			continue
		}
		if _, keep := inTop[int32(k)]; !keep {
			l.cached[k] = false
			l.evicted++
		}
	}
}

// Cached reports whether a key is currently held.
func (l *OnlineLFU) Cached(k int64) bool {
	return k >= 0 && k < int64(len(l.cached)) && l.cached[k]
}

// Classify splits a batch into cached hits and host misses.
func (l *OnlineLFU) Classify(keys []int64) (hits, misses int) {
	for _, k := range keys {
		if l.Cached(k) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Churn returns the cumulative admitted/evicted membership changes — the
// entries an online cache keeps moving that a solved placement moves only
// at refresh time.
func (l *OnlineLFU) Churn() (admitted, evicted int64) { return l.admitted, l.evicted }

// ServeTime models one batch's extraction seconds on GPU g for this cache:
// hits read from the local replica, misses from host memory, using the
// platform's serial per-tier time-per-byte estimates (tpb is
// platform.TimePerByteTable(), host the platform's Host() index). keys
// should be the batch's unique keys, as the extractor deduplicates.
func (l *OnlineLFU) ServeTime(tpb [][]float64, g, host int, keys []int64, entryBytes int) float64 {
	hits, misses := l.Classify(keys)
	eb := float64(entryBytes)
	return float64(hits)*eb*tpb[g][g] + float64(misses)*eb*tpb[g][host]
}
