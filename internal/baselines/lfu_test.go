package baselines

import (
	"math"
	"testing"
)

func TestOnlineLFUValidation(t *testing.T) {
	cases := []struct {
		n        int64
		capacity int
		decay    float64
	}{
		{0, 1, 0.9},
		{10, 0, 0.9},
		{10, 11, 0.9},
		{10, 5, 0},
		{10, 5, 1.5},
	}
	for i, c := range cases {
		if _, err := NewOnlineLFU(c.n, c.capacity, c.decay); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := NewOnlineLFU(10, 10, 1); err != nil {
		t.Fatalf("full-coverage cache rejected: %v", err)
	}
}

// TestOnlineLFUAdaptsToShift: a decayed LFU tracks a flash-crowd key swap —
// the new hot set takes over the cache — and the takeover is charged to the
// churn tally.
func TestOnlineLFUAdaptsToShift(t *testing.T) {
	l, err := NewOnlineLFU(100, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Observe([]int64{0, 1, 2, 3, 4})
	}
	for k := int64(0); k < 5; k++ {
		if !l.Cached(k) {
			t.Fatalf("hot key %d not cached", k)
		}
	}
	if l.Cached(50) {
		t.Fatal("cold key cached")
	}
	hits, misses := l.Classify([]int64{0, 1, 2, 3, 4, 50})
	if hits != 5 || misses != 1 {
		t.Fatalf("classify %d/%d, want 5/1", hits, misses)
	}
	admitted, evicted := l.Churn()
	if admitted != 5 || evicted != 0 {
		t.Fatalf("stationary churn %d/%d, want 5/0", admitted, evicted)
	}

	// Flash crowd: with decay 0.5 the old counts sit just below 1, so the
	// new keys' fresh count of 1 takes the whole cache on the first batch.
	for i := 0; i < 20; i++ {
		l.Observe([]int64{50, 51, 52, 53, 54})
	}
	for k := int64(50); k < 55; k++ {
		if !l.Cached(k) {
			t.Fatalf("post-shift hot key %d not cached", k)
		}
	}
	if l.Cached(0) {
		t.Fatal("pre-shift key still cached after the swap")
	}
	admitted, evicted = l.Churn()
	if admitted != 10 || evicted != 5 {
		t.Fatalf("post-shift churn %d/%d, want 10/5", admitted, evicted)
	}
}

// TestOnlineLFUPresenceAndTies: in-batch duplicates count once, ties break
// by ascending key, and out-of-range keys are ignored.
func TestOnlineLFUPresenceAndTies(t *testing.T) {
	l, err := NewOnlineLFU(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe([]int64{5, 5, 5, 6, -1, 1000})
	if !l.Cached(5) || !l.Cached(6) {
		t.Fatal("observed keys not cached")
	}
	// Key 7 ties keys 5 and 6 at count 1; the ascending tie-break keeps the
	// incumbents, so membership (and churn) must not move.
	l.Observe([]int64{7})
	if l.Cached(7) {
		t.Fatal("tied key displaced a lower incumbent")
	}
	admitted, evicted := l.Churn()
	if admitted != 2 || evicted != 0 {
		t.Fatalf("churn %d/%d after a no-op tie, want 2/0", admitted, evicted)
	}
}

func TestOnlineLFUServeTime(t *testing.T) {
	l, err := NewOnlineLFU(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe([]int64{5, 6})
	// One local hit, one host miss at 4 bytes each.
	tpb := [][]float64{{1e-9, 2e-9, 5e-9}}
	got := l.ServeTime(tpb, 0, 2, []int64{5, 9}, 4)
	want := 4*1e-9 + 4*5e-9
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("serve time %g, want %g", got, want)
	}
}
