// Package baselines encodes the systems the paper compares against (§8.1)
// as compositions of a cache policy, an extraction mechanism, and modelled
// system overheads. Each spec reproduces the published design:
//
//	GNNLab      — replication cache, dedicated sampler GPUs (reclaiming
//	              graph memory for a larger cache), samples shipped to
//	              trainers through host-memory queues.
//	WholeGraph  — pure partition across GPUs with naive peer extraction;
//	              fails to launch when the embeddings exceed aggregate GPU
//	              memory or the platform has unconnected pairs.
//	PartU       — the paper's extension of WholeGraph: hot entries
//	              partitioned (per Quiver clique on non-fully-connected
//	              platforms), cold entries on the CPU.
//	RepU        — PartU's codebase with a replication cache.
//	HPS         — replication cache with LRU-based online eviction on the
//	              lookup path (modelled as a per-key maintenance cost plus
//	              an extraction multiplier).
//	SOK         — partition cache with message-based (AllToAll) extraction.
//	UGache      — the paper's system: solver policy + factored extraction.
package baselines

import (
	"fmt"

	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/solver"
)

// Spec is one system under test.
type Spec struct {
	Name      string
	Policy    solver.Policy
	Mechanism extract.Mechanism

	// EvictionPerKey is CPU-side LRU bookkeeping per looked-up key (HPS).
	EvictionPerKey float64
	// EvictionFactor multiplies extraction time (kernel-side LRU probing
	// and TF plugin overhead, HPS).
	EvictionFactor float64

	// DedicatedSamplers moves graph sampling to dedicated GPUs (GNNLab);
	// trainers shrink in number but samples must cross host queues.
	DedicatedSamplers bool
	// ReclaimGraphMemory removes graph storage from trainer GPUs, enlarging
	// the cache (GNNLab).
	ReclaimGraphMemory bool

	// RequiresFullConnectivity fails the system on platforms with
	// unconnected GPU pairs (WholeGraph, §8.1 failure ②).
	RequiresFullConnectivity bool
	// RequiresFullFit fails the system when total GPU cache capacity cannot
	// hold every embedding (WholeGraph, §8.1 failure ①).
	RequiresFullFit bool
}

// Stock systems.
var (
	GNNLab = Spec{
		Name: "GNNLab", Policy: solver.Replication{}, Mechanism: extract.PeerRandom,
		DedicatedSamplers: true, ReclaimGraphMemory: true,
	}
	WholeGraph = Spec{
		Name: "WholeGraph", Policy: solver.Partition{}, Mechanism: extract.PeerRandom,
		RequiresFullConnectivity: true, RequiresFullFit: true,
	}
	PartU = Spec{
		Name: "PartU", Policy: solver.CliquePartition{}, Mechanism: extract.PeerRandom,
	}
	RepU = Spec{
		Name: "RepU", Policy: solver.Replication{}, Mechanism: extract.PeerRandom,
	}
	HPS = Spec{
		Name: "HPS", Policy: solver.Replication{}, Mechanism: extract.PeerRandom,
		EvictionPerKey: 4e-9, EvictionFactor: 1.7,
	}
	SOK = Spec{
		Name: "SOK", Policy: solver.Partition{}, Mechanism: extract.MessageBased,
	}
	UGache = Spec{
		Name: "UGache", Policy: solver.UGache{}, Mechanism: extract.Factored,
	}
)

// GNNSystems lists the GNN-side comparison in the paper's order.
var GNNSystems = []Spec{GNNLab, PartU, UGache}

// DLRSystems lists the DLR-side comparison in the paper's order.
var DLRSystems = []Spec{HPS, SOK, UGache}

// Launchable checks the spec's platform requirements (§8.1: WholeGraph
// "fails to launch" on Server B or when embeddings exceed GPU memory).
func (s Spec) Launchable(p *platform.Platform, totalEntries int64, capacityPerGPU int64) error {
	if s.RequiresFullConnectivity {
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if !p.Connected(i, j) {
					return fmt.Errorf("baselines: %s cannot launch: gpus %d and %d are unconnected", s.Name, i, j)
				}
			}
		}
	}
	if s.RequiresFullFit && capacityPerGPU*int64(p.N) < totalEntries {
		return fmt.Errorf("baselines: %s cannot launch: %d entries exceed total GPU capacity %d",
			s.Name, totalEntries, capacityPerGPU*int64(p.N))
	}
	return nil
}

// WithMechanism returns a copy running a different extraction mechanism
// (Fig. 12/15 apply UGache's extractor to baseline policies).
func (s Spec) WithMechanism(m extract.Mechanism) Spec {
	s.Mechanism = m
	s.Name = s.Name + "+" + m.String()
	return s
}

// WithPolicy returns a copy running a different cache policy.
func (s Spec) WithPolicy(p solver.Policy) Spec {
	s.Policy = p
	s.Name = s.Name + "+" + p.Name()
	return s
}
