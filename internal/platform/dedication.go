package platform

import "math"

// FEMDedication computes the paper's §5.3 core dedication strategy for one
// destination GPU: how many cores to dedicate to each source location.
// Index by SourceID; the local entry is always 0 because local extraction
// runs purely on padding (cores handed over as non-local groups finish).
//
// Strategy, verbatim from the paper:
//   - host first gets a small number of cores — its PCIe tolerance — to
//     prevent extremely ragged time;
//   - on hard-wired platforms the remaining cores are sliced by the ratio
//     of per-pair link bandwidth (unconnected pairs get nothing);
//   - on switch-based platforms the remaining cores are divided equally
//     among the N−1 remote GPUs, which bounds each reader to 1/(N−1) of any
//     source's outbound port and makes concurrent readers collision-free
//     without synchronization.
func (p *Platform) FEMDedication(dst int) []float64 {
	cores := make([]float64, p.NumSources())
	total := float64(p.GPU.SMs)

	hostTol, _ := p.Tolerance(dst, p.Host())
	hostCores := math.Ceil(hostTol)
	if hostCores > total/2 {
		hostCores = math.Floor(total / 2)
	}
	cores[p.Host()] = hostCores
	remaining := total - hostCores

	if p.hasNet {
		// The network tier gets its tolerance, like host: enough cores to
		// saturate the (slow) staged path without starving the NVLink
		// groups that carry the bulk of the traffic.
		netTol, _ := p.Tolerance(dst, p.Network())
		netCores := math.Ceil(netTol)
		if netCores > remaining/2 {
			netCores = math.Floor(remaining / 2)
		}
		cores[p.Network()] = netCores
		remaining -= netCores
	}

	if p.N == 1 {
		return cores
	}
	switch p.Kind {
	case SwitchBased:
		each := remaining / float64(p.N-1)
		for j := 0; j < p.N; j++ {
			if j != dst {
				cores[j] = each
			}
		}
	case HardWired:
		sum := 0.0
		for j := 0; j < p.N; j++ {
			if j != dst && p.PairBW[dst][j] > 0 {
				sum += p.PairBW[dst][j]
			}
		}
		if sum == 0 {
			return cores
		}
		for j := 0; j < p.N; j++ {
			if j != dst && p.PairBW[dst][j] > 0 {
				cores[j] = remaining * p.PairBW[dst][j] / sum
			}
		}
	}
	return cores
}

// EffectiveBW returns the bandwidth a FEM-dedicated core group actually
// sustains from src to dst: the smaller of the path's link capacity and the
// dedicated cores' aggregate issue rate. This is the 1/T_{i←j} the policy
// solver plans with (§6.2): it bakes in both the topology and the §5.3
// dedication, so the plan and the extractor agree. ok=false for unconnected
// pairs.
func (p *Platform) EffectiveBW(dst int, src SourceID) (bw float64, ok bool) {
	link, ok := p.LinkBW(dst, src)
	if !ok {
		return 0, false
	}
	if src == p.Host() {
		// Host DRAM is shared by every GPU extracting concurrently in
		// data-parallel deployment: a reader's fair share is DRAM/N, which
		// on every stock server is at or below its PCIe bandwidth.
		if share := p.DRAMBW / float64(p.N); share < link {
			link = share
		}
	}
	if p.hasNet && src == p.Network() {
		// The single NIC is likewise shared by all N GPUs extracting
		// concurrently; its per-reader share sits below the DRAM share by
		// construction, making the wire the slowest tier.
		if share := p.Net.LinkBW / float64(p.N); share < link {
			link = share
		}
	}
	if int(src) == dst {
		// Local extraction eventually gets every core.
		rate := float64(p.GPU.SMs) * p.GPU.RCoreLocal
		return math.Min(link, rate), true
	}
	ded := p.FEMDedication(dst)
	rate := ded[src] * p.RCore(dst, src)
	if rate <= 0 {
		return 0, false
	}
	return math.Min(link, rate), true
}
