package platform

import (
	"fmt"

	"ugache/internal/sim"
)

// PeerLinkEfficiency is the fraction of an NVLink/NVSwitch link's capacity
// that unorganized, randomly dispatched extraction achieves (§5.2): mixed
// warps issue uncoalesced, short transfers, so the achieved bandwidth sits
// well below the link's capability even when enough cores are parked on
// it. FEM's dedicated, coalesced core groups drive the full-capacity
// links, while naive peer access drives the degraded twins below; this
// reproduces the paper's Fig. 4/13 mechanism gaps.
const PeerLinkEfficiency = 0.55

// PeerPCIeEfficiency is the corresponding factor for zero-copy host reads
// over PCIe. It is much milder: PCIe transfers of whole embedding rows
// stay reasonably coalesced even under random dispatch, and the paper's
// Fig. 4 ordering (peer always beats message-based, including on the
// host-dominated 4×V100 runs) requires the peer host path to stay close to
// the message-based staged host fetch. The paper's 1.9× PCIe-utilization
// gain from FEM (Fig. 13) comes mostly from shortening the makespan, not
// from raw PCIe inefficiency.
const PeerPCIeEfficiency = 0.85

// PeerNetworkEfficiency is the corresponding factor for the inter-machine
// NIC. Unorganized cross-machine access loses the large coalesced RDMA
// reads that make the wire efficient, but the staging path (whole rows
// through host memory) keeps the penalty milder than NVLink's.
const PeerNetworkEfficiency = 0.7

// ensureDegraded builds the degraded twin links (one per PCIe lane,
// NVLink pair, and NVSwitch port). HBM and host DRAM have no twins: on-die
// memory systems handle random access, and the divergence penalty on the
// per-core rate covers the residual cost. New calls this during
// construction so a published platform is immutable; the lazy guard only
// serves hand-built Platform literals in single-threaded tests.
func (p *Platform) ensureDegraded() {
	if p.pcieDeg != nil {
		return
	}
	p.pcieDeg = make([]sim.LinkID, p.N)
	for g := 0; g < p.N; g++ {
		p.pcieDeg[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-pcie-unorg", g), p.PCIeBW*PeerPCIeEfficiency)
	}
	p.nicDeg = -1
	if p.hasNet {
		p.nicDeg = p.Topo.AddLink("nic-unorg", p.Net.LinkBW*PeerNetworkEfficiency)
	}
	switch p.Kind {
	case SwitchBased:
		p.outDeg = make([]sim.LinkID, p.N)
		p.inDeg = make([]sim.LinkID, p.N)
		for g := 0; g < p.N; g++ {
			p.outDeg[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-out-unorg", g), p.SwitchPortBW*PeerLinkEfficiency)
			p.inDeg[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-in-unorg", g), p.SwitchPortBW*PeerLinkEfficiency)
		}
	case HardWired:
		p.pairDeg = make([][]sim.LinkID, p.N)
		for i := range p.pairDeg {
			p.pairDeg[i] = make([]sim.LinkID, p.N)
			for j := range p.pairDeg[i] {
				p.pairDeg[i][j] = -1
				if i != j && p.pair[i][j] >= 0 {
					p.pairDeg[i][j] = p.Topo.AddLink(
						fmt.Sprintf("nvlink-%d<-%d-unorg", i, j), p.PairBW[i][j]*PeerLinkEfficiency)
				}
			}
		}
	}
}

// PathUnorganized returns the link path for dst reading src under
// unorganized (randomly dispatched) extraction: interconnect hops route
// over the degraded twins.
func (p *Platform) PathUnorganized(dst int, src SourceID) (path []sim.LinkID, ok bool) {
	p.ensureDegraded()
	if dst < 0 || dst >= p.N {
		return nil, false
	}
	switch {
	case src == p.Host():
		return []sim.LinkID{p.dram, p.pcieDeg[dst]}, true
	case p.hasNet && src == p.Network():
		return []sim.LinkID{p.dram, p.nicDeg, p.pcieDeg[dst]}, true
	case int(src) == dst:
		return []sim.LinkID{p.hbm[dst]}, true
	case int(src) >= 0 && int(src) < p.N:
		j := int(src)
		if p.Kind == SwitchBased {
			return []sim.LinkID{p.hbm[j], p.outDeg[j], p.inDeg[dst]}, true
		}
		if p.pairDeg[dst][j] < 0 {
			return nil, false
		}
		return []sim.LinkID{p.hbm[j], p.pairDeg[dst][j]}, true
	}
	return nil, false
}

// FoldDegraded merges bytes carried on degraded twins back onto their real
// links in a LinkBytes vector, so utilization reporting (Fig. 13) always
// charges the physical link. Twin slots are zeroed. Vectors shorter than
// the topology (produced before the twins existed) are left untouched.
func (p *Platform) FoldDegraded(linkBytes []float64) {
	if p.pcieDeg == nil {
		return
	}
	move := func(twin, real sim.LinkID) {
		if int(twin) < len(linkBytes) && int(real) < len(linkBytes) && twin >= 0 {
			linkBytes[real] += linkBytes[twin]
			linkBytes[twin] = 0
		}
	}
	for g := 0; g < p.N; g++ {
		move(p.pcieDeg[g], p.pcie[g])
	}
	if p.hasNet && p.nicDeg >= 0 {
		move(p.nicDeg, p.nic)
	}
	if p.Kind == SwitchBased && p.outDeg != nil {
		for g := 0; g < p.N; g++ {
			move(p.outDeg[g], p.out[g])
			move(p.inDeg[g], p.in[g])
		}
	}
	if p.Kind == HardWired && p.pairDeg != nil {
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if p.pairDeg[i][j] >= 0 {
					move(p.pairDeg[i][j], p.pair[i][j])
				}
			}
		}
	}
}
