// Package platform models the multi-GPU servers the paper evaluates on. A
// Platform owns a sim.Topology of links — per-GPU HBM ports, directed
// NVLink pair links (hard-wired servers), per-GPU NVSwitch outbound/inbound
// ports (switch-based servers), per-GPU PCIe lanes and the shared host DRAM
// — plus the per-core sustained gather rates that determine each link's
// tolerance of concurrent cores (paper Fig. 6).
//
// Three stock servers mirror the paper's testbeds (§8.1):
//
//	Server A: 4×V100 (16 GB), hard-wired, uniform fully connected;
//	Server B: 8×V100 (32 GB), DGX-1 hybrid cube-mesh with unconnected pairs;
//	Server C: 8×A100 (80 GB), NVSwitch.
//
// Bandwidth constants are effective gather bandwidths calibrated to the
// paper's microbenchmark (Fig. 6), not peak datasheet numbers.
package platform

import (
	"fmt"

	"ugache/internal/sim"
)

// GPUModel captures the per-device constants of one GPU generation.
type GPUModel struct {
	Name     string
	SMs      int     // number of streaming multiprocessors
	MemBytes int64   // HBM capacity
	LocalBW  float64 // effective local gather bandwidth, bytes/s
	// Per-core sustained gather rates by source kind; these set each link's
	// tolerance (capacity / rate) of concurrent cores.
	RCoreLocal  float64
	RCoreRemote float64
	RCoreHost   float64
}

// Stock GPU models.
var (
	V100x16 = GPUModel{
		Name: "V100-16GB", SMs: 80, MemBytes: 16 << 30,
		LocalBW: 240e9, RCoreLocal: 3e9, RCoreRemote: 1.9e9, RCoreHost: 1.5e9,
	}
	V100x32 = GPUModel{
		Name: "V100-32GB", SMs: 80, MemBytes: 32 << 30,
		LocalBW: 240e9, RCoreLocal: 3e9, RCoreRemote: 1.9e9, RCoreHost: 1.5e9,
	}
	A100x80 = GPUModel{
		Name: "A100-80GB", SMs: 108, MemBytes: 80 << 30,
		LocalBW: 650e9, RCoreLocal: 6e9, RCoreRemote: 2.6e9, RCoreHost: 2.5e9,
	}
)

// Kind distinguishes the two interconnect families of §3.2.
type Kind int

const (
	// HardWired platforms physically divide each GPU's outbound bandwidth
	// into per-pair links (possibly non-uniform, possibly unconnected).
	HardWired Kind = iota
	// SwitchBased platforms route all traffic through NVSwitch, with
	// per-GPU outbound and inbound port capacities.
	SwitchBased
)

func (k Kind) String() string {
	if k == HardWired {
		return "hard-wired"
	}
	return "switch-based"
}

// SourceID identifies a source location: 0..N-1 are GPUs, Host(N) is host
// memory (the value equals the GPU count of the platform), and — on
// clustered platforms only — Network(N+1) is the remote-machine tier behind
// the inter-machine fabric.
type SourceID int

// NetworkConfig describes the inter-machine fabric joining M identical
// single-machine platforms into a cluster. Each machine owns one NIC whose
// effective gather bandwidth and base round-trip latency are modelled like
// any other link; a degraded twin (see degraded.go) covers unorganized
// extraction over the wire.
type NetworkConfig struct {
	// Machines is the number of machines in the cluster (≥ 2).
	Machines int
	// LinkBW is the effective per-machine NIC bandwidth, bytes/s.
	LinkBW float64
	// LatencySec is the base network round-trip latency added per
	// cross-machine dispatch (amortized by sub-batch coalescing).
	LatencySec float64
}

// DefaultNetwork is the stock inter-machine fabric: a 200 Gb/s-class RDMA
// NIC at 25 GB/s effective gather bandwidth and a 10 µs base round trip.
// The per-GPU NIC share (LinkBW/N) deliberately sits below the per-GPU host
// DRAM share, so the network tier is the slowest rung of the hierarchy.
func DefaultNetwork(machines int) NetworkConfig {
	return NetworkConfig{Machines: machines, LinkBW: 25e9, LatencySec: 10e-6}
}

// Platform is one multi-GPU server.
type Platform struct {
	Name   string
	Kind   Kind
	GPU    GPUModel
	N      int     // number of GPUs
	PCIeBW float64 // per-GPU PCIe bandwidth, bytes/s
	DRAMBW float64 // shared host DRAM bandwidth, bytes/s
	// PairBW[i][j] is the NVLink bandwidth for i reading from j; 0 means the
	// pair is unconnected (hard-wired platforms only).
	PairBW [][]float64
	// SwitchPortBW is the per-GPU outbound/inbound NVSwitch port capacity
	// (switch-based platforms only).
	SwitchPortBW float64
	// Net is the inter-machine fabric; meaningful only when hasNet is set
	// (clustered platforms).
	Net NetworkConfig

	Topo sim.Topology
	hbm  []sim.LinkID
	pcie []sim.LinkID
	out  []sim.LinkID // switch-based
	in   []sim.LinkID // switch-based
	pair [][]sim.LinkID
	dram sim.LinkID

	hasNet bool
	nic    sim.LinkID // clustered platforms only

	// Degraded twins for unorganized extraction (built lazily; see
	// degraded.go).
	pcieDeg []sim.LinkID
	outDeg  []sim.LinkID
	inDeg   []sim.LinkID
	pairDeg [][]sim.LinkID
	nicDeg  sim.LinkID
}

// Config describes a platform to build; use the ServerA/B/C constructors
// for the paper's testbeds.
type Config struct {
	Name         string
	Kind         Kind
	GPU          GPUModel
	N            int
	PCIeBW       float64
	DRAMBW       float64
	PairBW       [][]float64 // hard-wired; PairBW[i][j] = bw for i reading j
	SwitchPortBW float64     // switch-based
	// Network, when non-nil, makes this one machine of a Machines-wide
	// cluster joined by the described fabric (adds the Network source).
	Network *NetworkConfig
}

// New builds a platform and its link topology from a config.
func New(cfg Config) (*Platform, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("platform: need at least one GPU, got %d", cfg.N)
	}
	if cfg.PCIeBW <= 0 || cfg.DRAMBW <= 0 {
		return nil, fmt.Errorf("platform: PCIe/DRAM bandwidth must be positive")
	}
	if cfg.GPU.SMs <= 0 || cfg.GPU.LocalBW <= 0 ||
		cfg.GPU.RCoreLocal <= 0 || cfg.GPU.RCoreRemote <= 0 || cfg.GPU.RCoreHost <= 0 {
		return nil, fmt.Errorf("platform: incomplete GPU model %q", cfg.GPU.Name)
	}
	if cfg.Network != nil {
		if cfg.Network.Machines < 2 {
			return nil, fmt.Errorf("platform: cluster needs at least 2 machines, got %d", cfg.Network.Machines)
		}
		if cfg.Network.LinkBW <= 0 {
			return nil, fmt.Errorf("platform: cluster NIC bandwidth must be positive")
		}
		if cfg.Network.LatencySec < 0 {
			return nil, fmt.Errorf("platform: cluster latency must be non-negative")
		}
	}
	p := &Platform{
		Name: cfg.Name, Kind: cfg.Kind, GPU: cfg.GPU, N: cfg.N,
		PCIeBW: cfg.PCIeBW, DRAMBW: cfg.DRAMBW, SwitchPortBW: cfg.SwitchPortBW,
	}
	p.dram = p.Topo.AddLink("host-dram", cfg.DRAMBW)
	p.hbm = make([]sim.LinkID, cfg.N)
	p.pcie = make([]sim.LinkID, cfg.N)
	for g := 0; g < cfg.N; g++ {
		p.hbm[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-hbm", g), cfg.GPU.LocalBW)
		p.pcie[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-pcie", g), cfg.PCIeBW)
	}
	switch cfg.Kind {
	case HardWired:
		if len(cfg.PairBW) != cfg.N {
			return nil, fmt.Errorf("platform: PairBW must be %d×%d", cfg.N, cfg.N)
		}
		p.PairBW = cfg.PairBW
		p.pair = make([][]sim.LinkID, cfg.N)
		for i := range p.pair {
			if len(cfg.PairBW[i]) != cfg.N {
				return nil, fmt.Errorf("platform: PairBW must be %d×%d", cfg.N, cfg.N)
			}
			p.pair[i] = make([]sim.LinkID, cfg.N)
			for j := range p.pair[i] {
				p.pair[i][j] = -1
			}
		}
		for i := 0; i < cfg.N; i++ {
			for j := 0; j < cfg.N; j++ {
				if i == j {
					if cfg.PairBW[i][j] != 0 {
						return nil, fmt.Errorf("platform: PairBW[%d][%d] must be 0", i, j)
					}
					continue
				}
				if bw := cfg.PairBW[i][j]; bw > 0 {
					p.pair[i][j] = p.Topo.AddLink(fmt.Sprintf("nvlink-%d<-%d", i, j), bw)
				}
			}
		}
	case SwitchBased:
		if cfg.SwitchPortBW <= 0 {
			return nil, fmt.Errorf("platform: switch-based platform needs SwitchPortBW")
		}
		p.out = make([]sim.LinkID, cfg.N)
		p.in = make([]sim.LinkID, cfg.N)
		for g := 0; g < cfg.N; g++ {
			p.out[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-nvswitch-out", g), cfg.SwitchPortBW)
			p.in[g] = p.Topo.AddLink(fmt.Sprintf("gpu%d-nvswitch-in", g), cfg.SwitchPortBW)
		}
		// Derive a uniform PairBW view so callers can treat both kinds
		// alike; the per-pair capacity on a switch is the full port rate.
		p.PairBW = make([][]float64, cfg.N)
		for i := range p.PairBW {
			p.PairBW[i] = make([]float64, cfg.N)
			for j := range p.PairBW[i] {
				if i != j {
					p.PairBW[i][j] = cfg.SwitchPortBW
				}
			}
		}
	default:
		return nil, fmt.Errorf("platform: unknown kind %d", cfg.Kind)
	}
	if cfg.Network != nil {
		p.hasNet = true
		p.Net = *cfg.Network
		p.nic = p.Topo.AddLink("nic", cfg.Network.LinkBW)
	}
	// Build the degraded twins now so the platform (and its topology) is
	// immutable once published — concurrent readers never race a lazy
	// AddLink from the first unorganized-extraction path query.
	p.ensureDegraded()
	return p, nil
}

// mustNew panics on error; used by the stock constructors whose configs are
// known-good.
func mustNew(cfg Config) *Platform {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ServerAConfig is the config behind ServerA, exposed so callers can derive
// variants (most usefully clustered ones via ClusterOf).
func ServerAConfig() Config {
	const n = 4
	pair := make([][]float64, n)
	for i := range pair {
		pair[i] = make([]float64, n)
		for j := range pair[i] {
			if i != j {
				pair[i][j] = 50e9
			}
		}
	}
	return Config{
		Name: "ServerA-4xV100", Kind: HardWired, GPU: V100x16, N: n,
		PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair,
	}
}

// ServerA is the paper's 4×V100 hard-wired server: uniform, fully connected,
// 50 GB/s per directed pair (150 GB/s total outbound).
func ServerA() *Platform { return mustNew(ServerAConfig()) }

// dgx1Double and dgx1Single are the NVLink pairs of the DGX-1 (V100) hybrid
// cube-mesh: two quads {0..3} and {4..7}, each GPU with six links.
var (
	dgx1Double = [][2]int{{0, 3}, {0, 4}, {1, 2}, {1, 5}, {2, 6}, {3, 7}, {5, 6}, {4, 7}}
	dgx1Single = [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {1, 3}, {4, 6}, {5, 7}}
)

// ServerBConfig is the config behind ServerB.
func ServerBConfig() Config {
	const n = 8
	pair := make([][]float64, n)
	for i := range pair {
		pair[i] = make([]float64, n)
	}
	set := func(a, b int, bw float64) {
		pair[a][b] = bw
		pair[b][a] = bw
	}
	for _, e := range dgx1Double {
		set(e[0], e[1], 50e9)
	}
	for _, e := range dgx1Single {
		set(e[0], e[1], 25e9)
	}
	return Config{
		Name: "ServerB-8xV100", Kind: HardWired, GPU: V100x32, N: n,
		PCIeBW: 12e9, DRAMBW: 160e9, PairBW: pair,
	}
}

// ServerB is the paper's 8×V100 DGX-1 server: non-uniform hard-wired
// topology with double (50 GB/s) and single (25 GB/s) links and unconnected
// cross-quad pairs.
func ServerB() *Platform { return mustNew(ServerBConfig()) }

// ServerCConfig is the config behind ServerC.
func ServerCConfig() Config {
	return Config{
		Name: "ServerC-8xA100", Kind: SwitchBased, GPU: A100x80, N: 8,
		PCIeBW: 25e9, DRAMBW: 320e9, SwitchPortBW: 270e9,
	}
}

// ServerC is the paper's 8×A100 NVSwitch server (DGX A100-like), 270 GB/s
// effective per-GPU port bandwidth.
func ServerC() *Platform { return mustNew(ServerCConfig()) }

// ClusterOf turns a single-machine config into one machine of a cluster
// joined by the given fabric. Every machine in the cluster is identical, so
// one Platform value describes each of them; the Machines count feeds the
// solver's replicate-vs-fetch trade-off and the serving router.
func ClusterOf(cfg Config, net NetworkConfig) (*Platform, error) {
	cfg.Network = &net
	cfg.Name = fmt.Sprintf("%s-x%d", cfg.Name, net.Machines)
	return New(cfg)
}

// Host returns the SourceID of host memory on this platform.
func (p *Platform) Host() SourceID { return SourceID(p.N) }

// Network returns the SourceID of the remote-machine tier. Only meaningful
// on clustered platforms (HasNetwork); elsewhere no path reaches it.
func (p *Platform) Network() SourceID { return SourceID(p.N + 1) }

// HasNetwork reports whether this platform is one machine of a cluster.
func (p *Platform) HasNetwork() bool { return p.hasNet }

// Machines returns the cluster width (1 for single-machine platforms).
func (p *Platform) Machines() int {
	if !p.hasNet {
		return 1
	}
	return p.Net.Machines
}

// NumSources returns the number of source locations: GPUs plus host, plus
// the network tier on clustered platforms.
func (p *Platform) NumSources() int {
	if p.hasNet {
		return p.N + 2
	}
	return p.N + 1
}

// Connected reports whether GPU i can read GPU j's memory over NVLink or
// NVSwitch. A GPU is always "connected" to itself and never to the host via
// this predicate (host is reachable by every GPU over PCIe).
func (p *Platform) Connected(i, j int) bool {
	if i == j {
		return true
	}
	if i < 0 || j < 0 || i >= p.N || j >= p.N {
		return false
	}
	if p.Kind == SwitchBased {
		return true
	}
	return p.pair[i][j] >= 0
}

// Path returns the link path for GPU dst reading from src, or ok=false when
// the pair is unreachable (hard-wired unconnected GPUs must fall back to
// host; that fallback is a policy decision, not a path).
func (p *Platform) Path(dst int, src SourceID) (path []sim.LinkID, ok bool) {
	if dst < 0 || dst >= p.N {
		return nil, false
	}
	switch {
	case src == p.Host():
		return []sim.LinkID{p.dram, p.pcie[dst]}, true
	case p.hasNet && src == p.Network():
		// A cross-machine gather lands in this machine's DRAM staging area
		// and crosses PCIe into the GPU; charging our own DRAM (not the
		// remote machine's) models the reciprocal load of serving the other
		// machines' requests in the symmetric steady state, the same trick
		// the NVSwitch model uses with out/in ports.
		return []sim.LinkID{p.dram, p.nic, p.pcie[dst]}, true
	case int(src) == dst:
		return []sim.LinkID{p.hbm[dst]}, true
	case int(src) >= 0 && int(src) < p.N:
		j := int(src)
		if p.Kind == SwitchBased {
			return []sim.LinkID{p.hbm[j], p.out[j], p.in[dst]}, true
		}
		if p.pair[dst][j] < 0 {
			return nil, false
		}
		return []sim.LinkID{p.hbm[j], p.pair[dst][j]}, true
	}
	return nil, false
}

// RCore returns the per-core sustained gather rate for dst reading src.
func (p *Platform) RCore(dst int, src SourceID) float64 {
	switch {
	case src == p.Host():
		return p.GPU.RCoreHost
	case p.hasNet && src == p.Network():
		// Network gathers are staged through host memory, so the issuing
		// cores sustain the host rate.
		return p.GPU.RCoreHost
	case int(src) == dst:
		return p.GPU.RCoreLocal
	default:
		return p.GPU.RCoreRemote
	}
}

// LinkBW returns the capacity of the narrowest link on the path from src to
// dst — the plateau bandwidth a dedicated core group can reach. ok=false for
// unconnected pairs.
func (p *Platform) LinkBW(dst int, src SourceID) (bw float64, ok bool) {
	path, ok := p.Path(dst, src)
	if !ok {
		return 0, false
	}
	bw = p.Topo.Links[path[0]].Capacity
	for _, l := range path[1:] {
		if c := p.Topo.Links[l].Capacity; c < bw {
			bw = c
		}
	}
	return bw, true
}

// Tolerance returns the number of cores that saturate the path from src to
// dst (paper Fig. 6): capacity divided by the per-core rate. ok=false for
// unconnected pairs.
func (p *Platform) Tolerance(dst int, src SourceID) (cores float64, ok bool) {
	bw, ok := p.LinkBW(dst, src)
	if !ok {
		return 0, false
	}
	return bw / p.RCore(dst, src), true
}

// TimePerByte returns the solver's T_{dst←src} (paper §6.2): seconds to move
// one byte at the path's plateau bandwidth. ok=false for unconnected pairs
// (the paper sets T to infinity and prunes the variable; callers should do
// the same).
func (p *Platform) TimePerByte(dst int, src SourceID) (t float64, ok bool) {
	bw, ok := p.LinkBW(dst, src)
	if !ok {
		return 0, false
	}
	return 1 / bw, true
}

// TimePerByteTable materializes TimePerByte as an N x NumSources matrix —
// tbl[dst][src] in seconds per byte, 0 for unconnected pairs. Path lookups
// allocate; per-batch hot paths (telemetry's per-tier second estimates)
// index this table instead of calling TimePerByte.
func (p *Platform) TimePerByteTable() [][]float64 {
	ns := p.NumSources()
	tbl := make([][]float64, p.N)
	for g := range tbl {
		tbl[g] = make([]float64, ns)
		for j := 0; j < ns; j++ {
			if t, ok := p.TimePerByte(g, SourceID(j)); ok {
				tbl[g][j] = t
			}
		}
	}
	return tbl
}

// HBMLink, PCIeLink, DRAMLink, OutLink, InLink and PairLink expose link IDs
// for utilization reporting (Fig. 13).
func (p *Platform) HBMLink(g int) sim.LinkID  { return p.hbm[g] }
func (p *Platform) PCIeLink(g int) sim.LinkID { return p.pcie[g] }
func (p *Platform) DRAMLink() sim.LinkID      { return p.dram }

// NICLink returns the inter-machine NIC link, or -1 on single-machine
// platforms.
func (p *Platform) NICLink() sim.LinkID {
	if !p.hasNet {
		return -1
	}
	return p.nic
}

// OutLink returns the NVSwitch outbound port of g, or -1 on hard-wired
// platforms.
func (p *Platform) OutLink(g int) sim.LinkID {
	if p.Kind != SwitchBased {
		return -1
	}
	return p.out[g]
}

// InLink returns the NVSwitch inbound port of g, or -1 on hard-wired
// platforms.
func (p *Platform) InLink(g int) sim.LinkID {
	if p.Kind != SwitchBased {
		return -1
	}
	return p.in[g]
}

// PairLink returns the directed NVLink for dst reading src, or -1 when
// absent (switch-based platforms or unconnected pairs).
func (p *Platform) PairLink(dst, src int) sim.LinkID {
	if p.Kind != HardWired || dst == src {
		return -1
	}
	return p.pair[dst][src]
}

// NVLinkIDs returns every NVLink/NVSwitch link ID, for aggregate
// utilization reporting.
func (p *Platform) NVLinkIDs() []sim.LinkID {
	var ids []sim.LinkID
	if p.Kind == SwitchBased {
		for g := 0; g < p.N; g++ {
			ids = append(ids, p.out[g], p.in[g])
		}
		return ids
	}
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i != j && p.pair[i][j] >= 0 {
				ids = append(ids, p.pair[i][j])
			}
		}
	}
	return ids
}

// PCIeIDs returns all PCIe link IDs.
func (p *Platform) PCIeIDs() []sim.LinkID {
	ids := make([]sim.LinkID, p.N)
	for g := 0; g < p.N; g++ {
		ids[g] = p.pcie[g]
	}
	return ids
}
