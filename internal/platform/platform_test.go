package platform

import (
	"math"
	"testing"
)

func TestStockServers(t *testing.T) {
	for _, tc := range []struct {
		p    *Platform
		n    int
		kind Kind
	}{
		{ServerA(), 4, HardWired},
		{ServerB(), 8, HardWired},
		{ServerC(), 8, SwitchBased},
	} {
		if tc.p.N != tc.n || tc.p.Kind != tc.kind {
			t.Fatalf("%s: N=%d kind=%v", tc.p.Name, tc.p.N, tc.p.Kind)
		}
		if tc.p.NumSources() != tc.n+1 {
			t.Fatalf("%s: NumSources=%d", tc.p.Name, tc.p.NumSources())
		}
	}
}

func TestServerAFullyConnected(t *testing.T) {
	p := ServerA()
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if !p.Connected(i, j) {
				t.Fatalf("ServerA: %d-%d not connected", i, j)
			}
			if i == j {
				continue
			}
			bw, ok := p.LinkBW(i, SourceID(j))
			if !ok || bw != 50e9 {
				t.Fatalf("ServerA pair %d<-%d bw %g ok=%v", i, j, bw, ok)
			}
		}
	}
}

func TestServerBDGX1Topology(t *testing.T) {
	p := ServerB()
	// Each GPU must have exactly six NVLink "lanes" (double counts as two)
	// and 150e9 total outbound bandwidth.
	for g := 0; g < 8; g++ {
		total := 0.0
		connected := 0
		for j := 0; j < 8; j++ {
			if g == j {
				continue
			}
			if p.Connected(g, j) {
				connected++
				total += p.PairBW[g][j]
			}
		}
		if total != 150e9 {
			t.Fatalf("gpu%d outbound %g, want 150e9", g, total)
		}
		if connected != 4 {
			t.Fatalf("gpu%d connected to %d peers, want 4", g, connected)
		}
	}
	// Cross-quad non-neighbors are unconnected; cliques are fully connected.
	if p.Connected(0, 5) || p.Connected(1, 6) || p.Connected(2, 7) {
		t.Fatal("unexpected cross-quad connection")
	}
	for _, q := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for _, a := range q {
			for _, b := range q {
				if !p.Connected(a, b) {
					t.Fatalf("clique pair %d-%d unconnected", a, b)
				}
			}
		}
	}
	// Symmetry.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if p.PairBW[i][j] != p.PairBW[j][i] {
				t.Fatalf("asymmetric pair bw %d,%d", i, j)
			}
		}
	}
	// Unconnected pairs have no path and no TimePerByte.
	if _, ok := p.Path(0, 5); ok {
		t.Fatal("path for unconnected pair")
	}
	if _, ok := p.TimePerByte(0, 5); ok {
		t.Fatal("TimePerByte for unconnected pair")
	}
}

func TestServerCSwitch(t *testing.T) {
	p := ServerC()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !p.Connected(i, j) {
				t.Fatalf("switch pair %d-%d unconnected", i, j)
			}
		}
	}
	bw, ok := p.LinkBW(0, 1)
	if !ok || bw != 270e9 {
		t.Fatalf("switch remote bw %g", bw)
	}
	if p.OutLink(3) < 0 || p.InLink(3) < 0 {
		t.Fatal("missing switch ports")
	}
	if ServerA().OutLink(0) != -1 {
		t.Fatal("hard-wired platform should not expose switch ports")
	}
}

func TestPathsAndRCore(t *testing.T) {
	p := ServerA()
	host := p.Host()
	if path, ok := p.Path(0, 0); !ok || len(path) != 1 {
		t.Fatalf("local path %v ok=%v", path, ok)
	}
	if path, ok := p.Path(0, host); !ok || len(path) != 2 {
		t.Fatalf("host path %v ok=%v", path, ok)
	}
	if path, ok := p.Path(2, 3); !ok || len(path) != 2 {
		t.Fatalf("remote path %v ok=%v", path, ok)
	}
	if p.RCore(0, 0) != p.GPU.RCoreLocal {
		t.Fatal("RCore local")
	}
	if p.RCore(0, host) != p.GPU.RCoreHost {
		t.Fatal("RCore host")
	}
	if p.RCore(0, 1) != p.GPU.RCoreRemote {
		t.Fatal("RCore remote")
	}
}

func TestHostBandwidthBoundedByPCIe(t *testing.T) {
	p := ServerC()
	bw, ok := p.LinkBW(0, p.Host())
	if !ok || bw != p.PCIeBW {
		t.Fatalf("host bw %g, want PCIe %g", bw, p.PCIeBW)
	}
	tb, ok := p.TimePerByte(0, p.Host())
	if !ok || math.Abs(tb-1/p.PCIeBW) > 1e-30 {
		t.Fatalf("TimePerByte %g", tb)
	}
}

func TestTolerances(t *testing.T) {
	// The paper's observations: host tolerates <10% of cores; on a
	// hard-wired 4-GPU platform each remote link tolerates about 1/3 of the
	// non-host cores; local tolerates all cores.
	a := ServerA()
	hostTol, _ := a.Tolerance(0, a.Host())
	if frac := hostTol / float64(a.GPU.SMs); frac >= 0.12 {
		t.Fatalf("ServerA host tolerance fraction %g, want < 0.12", frac)
	}
	remTol, _ := a.Tolerance(0, 1)
	if frac := remTol / float64(a.GPU.SMs); frac < 0.25 || frac > 0.42 {
		t.Fatalf("ServerA remote tolerance fraction %g, want ~1/3", frac)
	}
	locTol, _ := a.Tolerance(0, 0)
	if locTol < float64(a.GPU.SMs)*0.9 {
		t.Fatalf("ServerA local tolerance %g, want ≈ all %d cores", locTol, a.GPU.SMs)
	}

	c := ServerC()
	locTolC, _ := c.Tolerance(0, 0)
	if locTolC < float64(c.GPU.SMs)*0.9 {
		t.Fatalf("ServerC local tolerance %g", locTolC)
	}
	remTolC, _ := c.Tolerance(0, 1)
	if remTolC < float64(c.GPU.SMs)*0.8 {
		t.Fatalf("ServerC single-reader remote tolerance %g, want ≈ all cores", remTolC)
	}
	hostTolC, _ := c.Tolerance(0, c.Host())
	if frac := hostTolC / float64(c.GPU.SMs); frac >= 0.12 {
		t.Fatalf("ServerC host tolerance fraction %g", frac)
	}
}

func TestProfileBandwidthShape(t *testing.T) {
	// Fig. 6: rising then plateauing curves; remote plateau below local;
	// host plateau far below both.
	p := ServerA()
	counts := []int{1, 5, 10, 20, 40, 80}
	local, err := p.ProfileBandwidth(0, 0, counts)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := p.ProfileBandwidth(0, 1, counts)
	if err != nil {
		t.Fatal(err)
	}
	host, err := p.ProfileBandwidth(0, p.Host(), counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(counts); i++ {
		if local[i].Bandwidth+1 < local[i-1].Bandwidth {
			t.Fatal("local curve must be non-decreasing")
		}
	}
	lastL := local[len(counts)-1].Bandwidth
	lastR := remote[len(counts)-1].Bandwidth
	lastH := host[len(counts)-1].Bandwidth
	if !(lastH < lastR && lastR < lastL) {
		t.Fatalf("plateau ordering violated: host %g remote %g local %g", lastH, lastR, lastL)
	}
	if lastR != 50e9 {
		t.Fatalf("remote plateau %g, want link cap 50e9", lastR)
	}
	if lastH != 12e9 {
		t.Fatalf("host plateau %g, want PCIe 12e9", lastH)
	}
}

func TestProfileMultiReaderCollision(t *testing.T) {
	// Fig. 6(b) right: on a switch, concurrent readers of the same source
	// split its outbound port.
	p := ServerC()
	one, err := p.ProfileMultiReader(4, []int{2}, p.GPU.SMs)
	if err != nil {
		t.Fatal(err)
	}
	many, err := p.ProfileMultiReader(4, []int{0, 1, 2, 3}, p.GPU.SMs)
	if err != nil {
		t.Fatal(err)
	}
	if many[2] >= one[2] {
		t.Fatalf("no collision: single %g, contended %g", one[2], many[2])
	}
	if many[2] > one[2]/2 {
		t.Fatalf("contended share too high: %g vs %g", many[2], one[2])
	}
}

func TestProfileValidation(t *testing.T) {
	p := ServerB()
	if _, err := p.ProfileBandwidth(0, 5, []int{4}); err == nil {
		t.Fatal("expected error for unconnected pair")
	}
	if _, err := p.ProfileBandwidth(0, 1, []int{0}); err == nil {
		t.Fatal("expected error for zero cores")
	}
	if _, err := p.ProfileMultiReader(0, []int{0}, 4); err == nil {
		t.Fatal("expected error for reader == source")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 0, GPU: V100x16, PCIeBW: 1, DRAMBW: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 2, GPU: V100x16, PCIeBW: 0, DRAMBW: 1}); err == nil {
		t.Fatal("zero PCIe accepted")
	}
	if _, err := New(Config{N: 2, GPU: GPUModel{}, PCIeBW: 1, DRAMBW: 1}); err == nil {
		t.Fatal("empty GPU model accepted")
	}
	if _, err := New(Config{N: 2, Kind: HardWired, GPU: V100x16, PCIeBW: 1, DRAMBW: 1}); err == nil {
		t.Fatal("missing PairBW accepted")
	}
	if _, err := New(Config{N: 2, Kind: SwitchBased, GPU: A100x80, PCIeBW: 1, DRAMBW: 1}); err == nil {
		t.Fatal("missing SwitchPortBW accepted")
	}
}

func TestLinkIDAccessors(t *testing.T) {
	p := ServerB()
	if len(p.NVLinkIDs()) != 2*(len(dgx1Double)+len(dgx1Single)) {
		t.Fatalf("NVLinkIDs count %d", len(p.NVLinkIDs()))
	}
	if len(p.PCIeIDs()) != 8 {
		t.Fatal("PCIeIDs count")
	}
	if p.PairLink(0, 3) < 0 || p.PairLink(0, 5) != -1 {
		t.Fatal("PairLink lookup")
	}
	c := ServerC()
	if len(c.NVLinkIDs()) != 16 {
		t.Fatalf("switch NVLinkIDs count %d", len(c.NVLinkIDs()))
	}
	if c.PairLink(0, 1) != -1 {
		t.Fatal("switch platform should not expose pair links")
	}
}
