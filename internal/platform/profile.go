package platform

import (
	"fmt"

	"ugache/internal/sim"
)

// ProfilePoint is one sample of the Fig. 6 microbenchmark: the bandwidth a
// destination GPU achieves when a given number of cores extract from one
// source.
type ProfilePoint struct {
	Cores     int
	Bandwidth float64 // bytes/s
}

// ProfileBandwidth reproduces the paper's Fig. 6 microbenchmark for a single
// destination: it sweeps dedicated core counts against one source and
// reports the achieved bandwidth at each point.
func (p *Platform) ProfileBandwidth(dst int, src SourceID, coreCounts []int) ([]ProfilePoint, error) {
	path, ok := p.Path(dst, src)
	if !ok {
		return nil, fmt.Errorf("platform: gpu%d cannot reach source %d", dst, src)
	}
	rcore := p.RCore(dst, src)
	const bytes = 1 << 30
	out := make([]ProfilePoint, 0, len(coreCounts))
	for _, c := range coreCounts {
		if c <= 0 || c > p.GPU.SMs {
			return nil, fmt.Errorf("platform: core count %d out of range [1, %d]", c, p.GPU.SMs)
		}
		res, err := p.Topo.Run([]sim.Demand{{
			Label: "profile", Bytes: bytes, Cores: float64(c), RCore: rcore,
			Path: path, PadTo: -1,
		}})
		if err != nil {
			return nil, err
		}
		out = append(out, ProfilePoint{Cores: c, Bandwidth: bytes / res.Finish[0]})
	}
	return out, nil
}

// ProfileMultiReader reproduces the right half of Fig. 6(b): several reader
// GPUs extract from the same source concurrently with the given per-reader
// core count, and the per-reader bandwidth is reported. On switch-based
// platforms the shared outbound port makes the per-reader share collapse as
// readers are added.
func (p *Platform) ProfileMultiReader(src int, readers []int, coresEach int) (map[int]float64, error) {
	if src < 0 || src >= p.N {
		return nil, fmt.Errorf("platform: source gpu %d out of range", src)
	}
	var demands []sim.Demand
	const bytes = 1 << 30
	for _, r := range readers {
		if r == src {
			return nil, fmt.Errorf("platform: reader %d equals source", r)
		}
		path, ok := p.Path(r, SourceID(src))
		if !ok {
			return nil, fmt.Errorf("platform: gpu%d cannot reach gpu%d", r, src)
		}
		demands = append(demands, sim.Demand{
			Label: fmt.Sprintf("g%d<-g%d", r, src),
			Bytes: bytes, Cores: float64(coresEach),
			RCore: p.RCore(r, SourceID(src)), Path: path, PadTo: -1,
		})
	}
	res, err := p.Topo.Run(demands)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(readers))
	for i, r := range readers {
		out[r] = bytes / res.Finish[i]
	}
	return out, nil
}
