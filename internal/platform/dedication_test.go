package platform

import (
	"math"
	"testing"
)

func TestFEMDedicationServerA(t *testing.T) {
	p := ServerA()
	ded := p.FEMDedication(0)
	if ded[0] != 0 {
		t.Fatalf("local dedication %g, want 0 (padding only)", ded[0])
	}
	// Host: ceil(12e9 / 1.5e9) = 8 cores, < 10% of... 80 cores = 10%.
	if ded[p.Host()] != 8 {
		t.Fatalf("host dedication %g, want 8", ded[p.Host()])
	}
	// Remaining 72 split evenly over 3 equal-bandwidth remotes.
	for j := 1; j < 4; j++ {
		if math.Abs(ded[j]-24) > 1e-9 {
			t.Fatalf("remote %d dedication %g, want 24", j, ded[j])
		}
	}
	// Total never exceeds the SM count.
	sum := 0.0
	for _, c := range ded {
		sum += c
	}
	if sum > float64(p.GPU.SMs)+1e-9 {
		t.Fatalf("dedication total %g > %d SMs", sum, p.GPU.SMs)
	}
}

func TestFEMDedicationServerB(t *testing.T) {
	p := ServerB()
	ded := p.FEMDedication(0)
	// GPU0 connects to 1 (25), 2 (25), 3 (50), 4 (50): slices by ratio.
	if ded[5] != 0 || ded[6] != 0 || ded[7] != 0 {
		t.Fatal("unconnected peers must get no cores")
	}
	if math.Abs(ded[3]-2*ded[1]) > 1e-9 {
		t.Fatalf("bandwidth-proportional slicing violated: %g vs %g", ded[3], ded[1])
	}
	rem := float64(p.GPU.SMs) - ded[p.Host()]
	if math.Abs(ded[1]+ded[2]+ded[3]+ded[4]-rem) > 1e-9 {
		t.Fatal("remote slices must consume all remaining cores")
	}
}

func TestFEMDedicationServerC(t *testing.T) {
	p := ServerC()
	ded := p.FEMDedication(3)
	// Host: ceil(25e9/2.5e9) = 10.
	if ded[p.Host()] != 10 {
		t.Fatalf("host %g", ded[p.Host()])
	}
	each := (108.0 - 10) / 7
	for j := 0; j < 8; j++ {
		if j == 3 {
			continue
		}
		if math.Abs(ded[j]-each) > 1e-9 {
			t.Fatalf("remote %d gets %g, want %g", j, ded[j], each)
		}
	}
	// The collision-freedom property: aggregate demand on any source's
	// outbound port from all 7 readers stays within the port.
	demand := 7 * each * p.GPU.RCoreRemote
	if demand > p.SwitchPortBW*1.05 {
		t.Fatalf("aggregate demand %g exceeds port %g", demand, p.SwitchPortBW)
	}
}

func TestEffectiveBW(t *testing.T) {
	c := ServerC()
	// Remote: 14 cores × 2.6 GB/s = 36.4 GB/s, below the 270 port.
	bw, ok := c.EffectiveBW(0, 1)
	if !ok {
		t.Fatal("not ok")
	}
	want := (108.0 - 10) / 7 * 2.6e9
	if math.Abs(bw-want) > 1e-3*want {
		t.Fatalf("remote effective bw %g, want %g", bw, want)
	}
	// Host: min(PCIe 25, DRAM 320/8 = 40, 10×2.5=25) = 25 — per-GPU PCIe
	// binds; the DRAM/N share would bind only on hosts with slower memory.
	if bw, _ := c.EffectiveBW(0, c.Host()); math.Abs(bw-25e9) > 1e6 {
		t.Fatalf("host effective bw %g", bw)
	}
	// Local: min(650, 108×6=648) = 648.
	if bw, _ := c.EffectiveBW(0, 0); math.Abs(bw-648e9) > 1e6 {
		t.Fatalf("local effective bw %g", bw)
	}
	// Unconnected pair on Server B.
	b := ServerB()
	if _, ok := b.EffectiveBW(0, 5); ok {
		t.Fatal("unconnected pair has effective bw")
	}
	// Hard-wired remote is link-bound: pair 25e9 < 24ish cores × 1.9.
	bwB, _ := b.EffectiveBW(0, 1)
	if bwB > 25e9+1 {
		t.Fatalf("hard-wired remote bw %g exceeds link", bwB)
	}
}
