package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ugache/internal/timeline"
)

// BundleReport summarizes one validated diagnostic bundle — the output of
// `ugache-trace -check-bundle` and the assertion surface of the flight-smoke
// target.
type BundleReport struct {
	// Dir is the bundle directory.
	Dir string
	// Manifest is the parsed manifest.
	Manifest Manifest
	// EventLines is the number of JSONL events parsed from flight.jsonl.
	EventLines int
	// EventsByKind counts parsed events per kind name.
	EventsByKind map[string]int
	// MetricCount is the number of samples in metrics.json.
	MetricCount int
	// TimelineEvents is the number of trace events in timeline.json.
	TimelineEvents int
	// ExemplarSpans is the size of the exemplar batch's resolved span tree
	// (the root "batch" span plus its children), 0 when the manifest has no
	// exemplar.
	ExemplarSpans int
}

// ValidateBundle checks a diagnostic bundle directory end to end: the
// manifest parses and every file it lists exists non-empty, flight.jsonl
// parses line by line with the event count the manifest promised,
// metrics.json and timeline.json parse, profiles are non-empty, and — when
// the manifest carries an exemplar — the exemplar's (GPU, batch seq)
// resolves to a root "batch" span with a matching seq arg in the bundled
// timeline window, along with the child spans nested under it.
func ValidateBundle(dir string) (*BundleReport, error) {
	rep := &BundleReport{Dir: dir, EventsByKind: make(map[string]int)}

	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("flight: bundle manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &rep.Manifest); err != nil {
		return nil, fmt.Errorf("flight: bundle manifest does not parse: %w", err)
	}
	if rep.Manifest.Version != manifestVersion {
		return nil, fmt.Errorf("flight: bundle manifest version %d, want %d",
			rep.Manifest.Version, manifestVersion)
	}
	for _, name := range rep.Manifest.Files {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("flight: bundle file %s: %w", name, err)
		}
		if st.Size() == 0 {
			return nil, fmt.Errorf("flight: bundle file %s is empty", name)
		}
	}

	if hasFile(rep.Manifest.Files, EventsFile) {
		if err := rep.checkEvents(dir); err != nil {
			return nil, err
		}
	}
	if hasFile(rep.Manifest.Files, MetricsFile) {
		var metrics map[string]float64
		raw, err := os.ReadFile(filepath.Join(dir, MetricsFile))
		if err != nil {
			return nil, fmt.Errorf("flight: %s: %w", MetricsFile, err)
		}
		if err := json.Unmarshal(raw, &metrics); err != nil {
			return nil, fmt.Errorf("flight: %s does not parse: %w", MetricsFile, err)
		}
		rep.MetricCount = len(metrics)
		if rep.MetricCount != rep.Manifest.MetricSamples {
			return nil, fmt.Errorf("flight: %s holds %d samples, manifest says %d",
				MetricsFile, rep.MetricCount, rep.Manifest.MetricSamples)
		}
	}
	if hasFile(rep.Manifest.Files, TimelineFile) {
		if err := rep.checkTimeline(dir); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func hasFile(files []string, name string) bool {
	for _, f := range files {
		if f == name {
			return true
		}
	}
	return false
}

// checkEvents parses flight.jsonl line by line and cross-checks the count
// against the manifest.
func (rep *BundleReport) checkEvents(dir string) error {
	f, err := os.Open(filepath.Join(dir, EventsFile))
	if err != nil {
		return fmt.Errorf("flight: %s: %w", EventsFile, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Kind      string `json:"kind"`
			UnixNanos int64  `json:"unix_nanos"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("flight: %s line %d does not parse: %w",
				EventsFile, rep.EventLines+1, err)
		}
		if ev.Kind == "" || ev.Kind == "unknown" {
			return fmt.Errorf("flight: %s line %d has no kind", EventsFile, rep.EventLines+1)
		}
		rep.EventLines++
		rep.EventsByKind[ev.Kind]++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("flight: %s: %w", EventsFile, err)
	}
	if rep.EventLines != rep.Manifest.FlightEvents {
		return fmt.Errorf("flight: %s holds %d events, manifest says %d",
			EventsFile, rep.EventLines, rep.Manifest.FlightEvents)
	}
	return nil
}

// traceEvent is the subset of a Chrome trace event the exemplar resolution
// needs.
type traceEvent struct {
	Ph   string  `json:"ph"`
	PID  int64   `json:"pid"`
	TID  int64   `json:"tid"`
	Name string  `json:"name"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	// Args values are numeric on span events but strings on metadata ("M")
	// events (process/thread names), so they stay raw until needed.
	Args map[string]json.RawMessage `json:"args"`
}

// numArg extracts a numeric arg value; non-numeric or absent args report
// false.
func (ev *traceEvent) numArg(key string) (float64, bool) {
	raw, ok := ev.Args[key]
	if !ok {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

// checkTimeline parses timeline.json and, when the manifest carries an
// exemplar, resolves its (GPU, seq) to the matching batch span tree.
func (rep *BundleReport) checkTimeline(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, TimelineFile))
	if err != nil {
		return fmt.Errorf("flight: %s: %w", TimelineFile, err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("flight: %s does not parse: %w", TimelineFile, err)
	}
	rep.TimelineEvents = len(doc.TraceEvents)

	ex := rep.Manifest.Exemplar
	if ex == nil {
		return nil
	}
	// The root: a complete ("X") span named "batch" on the serve process,
	// on the exemplar GPU's track, whose seq arg matches the exemplar.
	var root *traceEvent
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "X" || ev.Name != "batch" ||
			ev.PID != timeline.ProcServe || ev.TID != int64(ex.GPU) {
			continue
		}
		if seq, ok := ev.numArg("seq"); ok && int64(seq) == ex.Seq {
			root = ev
			break
		}
	}
	if root == nil {
		return fmt.Errorf("flight: exemplar batch seq=%d gpu=%d has no matching span in %s",
			ex.Seq, ex.GPU, TimelineFile)
	}
	// Children: spans on the same track nested inside the root's interval.
	rep.ExemplarSpans = 1
	end := root.TS + root.Dur
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev == root || ev.Ph != "X" ||
			ev.PID != root.PID || ev.TID != root.TID {
			continue
		}
		if ev.TS >= root.TS && ev.TS+ev.Dur <= end {
			rep.ExemplarSpans++
		}
	}
	if rep.ExemplarSpans < 2 {
		return fmt.Errorf("flight: exemplar batch seq=%d gpu=%d resolved to a bare root span (no children) in %s",
			ex.Seq, ex.GPU, TimelineFile)
	}
	return nil
}
