// Package flight is the serving stack's always-on flight recorder: a
// constant-memory, zero-hot-path-allocation log of structured events
// (coalesced-batch completions, queue-depth and shed samples, refresh /
// solver / drift control events) held in per-worker lock-free rings, plus
// an SLO watchdog that evaluates rolling multi-window burn-rate style
// objectives over the live telemetry and, on a violation, drains everything
// the post-hoc debugger needs into a self-contained diagnostic bundle
// (events as JSONL, a telemetry snapshot, the current span-timeline window,
// a goroutine dump and a heap profile, tied together by a manifest).
//
// Where internal/telemetry answers "how many / how long on average" and
// internal/timeline answers "when, on which track", flight answers "what
// exactly happened in the seconds before things went wrong" — and it keeps
// answering after the fact, because recording never stops and tripping the
// watchdog freezes the evidence on disk (DESIGN.md §6.8).
package flight

import (
	"math"
	"strconv"
)

// Kind tags one recorded event's type; it selects which payload slots are
// meaningful and how they are named in the JSONL export.
type Kind uint8

const (
	// KindBatch is one coalesced serving batch's completion.
	KindBatch Kind = iota + 1
	// KindQueue is one admission-queue sample, taken at batch formation.
	KindQueue
	// KindShed marks admission sheds observed since the previous queue
	// sample (emitted only when the count moved).
	KindShed
	// KindRefresh is one completed placement refresh (control plane).
	KindRefresh
	// KindDrift is one drift-detector evaluation (control plane).
	KindDrift
	// KindPrefetch is one staged lookahead prefetch window.
	KindPrefetch
)

// String returns the kind's JSONL name.
func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindQueue:
		return "queue"
	case KindShed:
		return "shed"
	case KindRefresh:
		return "refresh"
	case KindDrift:
		return "drift"
	case KindPrefetch:
		return "prefetch"
	}
	return "unknown"
}

// MaxPayload is the number of numeric payload slots on an Event.
const MaxPayload = 9

// Payload slot indices for KindBatch events.
const (
	// BatchLatencySeconds is the slowest coalesced request's
	// enqueue-to-reply latency — the per-batch exemplar the watchdog
	// resolves into the timeline span tree.
	BatchLatencySeconds = iota
	BatchRequests
	BatchUniqueKeys
	BatchPrefetchHits
	BatchSimSeconds
	BatchLocalSeconds
	BatchRemoteSeconds
	BatchHostSeconds
	// BatchNetworkSeconds is the modelled network-tier (remote-machine)
	// share; non-zero only on clustered platforms.
	BatchNetworkSeconds
)

// Payload slot indices for KindQueue events.
const (
	QueueDepth = iota
	QueueShedTotal
)

// Payload slot indices for KindShed events.
const (
	ShedNew = iota
)

// Payload slot indices for KindRefresh events.
const (
	RefreshSolveWallSeconds = iota
	RefreshDurationSeconds
	RefreshMovedEntries
	RefreshMeanImpact
	RefreshSolveNodes
)

// Payload slot indices for KindDrift events.
const (
	DriftScore = iota
	DriftTopKOverlap
	DriftRankDistance
	DriftWindowBatches
	DriftDrifted
)

// Payload slot indices for KindPrefetch events.
const (
	PrefetchAnnouncedKeys = iota
	PrefetchFetchedKeys
	PrefetchSimSeconds
)

// kindFields names each kind's used payload slots, in slot order; the JSONL
// export emits exactly these.
var kindFields = map[Kind][]string{
	KindBatch: {"latency_s", "requests", "unique_keys", "prefetch_hits",
		"sim_s", "local_s", "remote_s", "host_s", "network_s"},
	KindQueue:    {"depth", "shed_total"},
	KindShed:     {"new_sheds"},
	KindRefresh:  {"solve_wall_s", "duration_s", "moved_entries", "mean_impact", "solve_nodes"},
	KindDrift:    {"score", "topk_overlap", "rank_distance", "window_batches", "drifted"},
	KindPrefetch: {"announced_keys", "fetched_keys", "sim_s"},
}

// Event is one flight-recorder record. The struct is flat — no pointers, no
// slices, no strings — so recording is a fixed number of atomic word stores
// into a preallocated ring slot and never allocates.
type Event struct {
	// Kind selects the payload schema.
	Kind Kind
	// GPU is the worker/GPU the event belongs to, or -1 for control-plane
	// events that have no single GPU.
	GPU int32
	// Seq is a kind-specific sequence: the worker's batch sequence for
	// KindBatch (the exemplar key that resolves into the timeline's batch
	// span tree), the placement version for KindRefresh, 0 otherwise.
	Seq int64
	// UnixNanos is the event's wall-clock time.
	UnixNanos int64
	// V holds the payload slots; meaning per kind (see the slot index
	// constants), unused slots stay zero.
	V [MaxPayload]float64
}

// appendJSON renders the event as one JSON object (no trailing newline),
// using the kind's field names for the used payload slots.
func (e *Event) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","unix_nanos":`...)
	buf = strconv.AppendInt(buf, e.UnixNanos, 10)
	buf = append(buf, `,"gpu":`...)
	buf = strconv.AppendInt(buf, int64(e.GPU), 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, e.Seq, 10)
	for i, name := range kindFields[e.Kind] {
		buf = append(buf, ',', '"')
		buf = append(buf, name...)
		buf = append(buf, '"', ':')
		v := e.V[i]
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = 0
		}
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	buf = append(buf, '}')
	return buf
}
