package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"ugache/internal/telemetry"
)

// TimelineWriter is anything that can export a Chrome trace-event JSON
// document — in practice *timeline.Recorder, accepted as an interface so
// wiring stays one-directional.
type TimelineWriter interface {
	WriteTrace(w io.Writer) error
}

// BundleConfig describes what a diagnostic bundle captures. Any nil source
// simply omits its file; the manifest records what was written.
type BundleConfig struct {
	// Dir is the directory bundles are created under (one timestamped
	// subdirectory per bundle). Created if missing.
	Dir string
	// Recorder supplies flight.jsonl (the drained event rings).
	Recorder *Recorder
	// Registry supplies metrics.json (a full Samples snapshot).
	Registry *telemetry.Registry
	// Timeline supplies timeline.json (the current span-ring window, the
	// same Chrome trace-event document /debug/timeline serves).
	Timeline TimelineWriter
	// SkipProfiles omits the goroutine dump and heap profile — tests use it
	// to keep bundle writing fast; production bundles always want both.
	SkipProfiles bool
}

// Bundle file names. The manifest is written last so a manifest's presence
// means the bundle is complete.
const (
	ManifestFile   = "manifest.json"
	EventsFile     = "flight.jsonl"
	MetricsFile    = "metrics.json"
	TimelineFile   = "timeline.json"
	GoroutinesFile = "goroutines.txt"
	HeapFile       = "heap.pprof"
)

// Exemplar references the slowest coalesced batch observed in the watchdog
// window: the (GPU, Seq) pair resolves to the batch's span tree in the
// bundled timeline window (the root "batch" span carries a matching seq
// arg), linking the flight events, the metrics and the timeline.
type Exemplar struct {
	GPU            int32   `json:"gpu"`
	Seq            int64   `json:"seq"`
	LatencySeconds float64 `json:"latency_seconds"`
	UnixNanos      int64   `json:"unix_nanos"`
}

// Manifest indexes one diagnostic bundle.
type Manifest struct {
	Version          int           `json:"version"`
	CreatedUnixNanos int64         `json:"created_unix_nanos"`
	Created          string        `json:"created"`
	Reason           string        `json:"reason"`
	Violations       []SignalState `json:"violations,omitempty"`
	Exemplar         *Exemplar     `json:"exemplar,omitempty"`
	Files            []string      `json:"files"`
	FlightEvents     int           `json:"flight_events"`
	MetricSamples    int           `json:"metric_samples"`
}

// manifestVersion is bumped when the bundle layout changes incompatibly.
const manifestVersion = 1

// WriteBundle drains cfg's sources into a new timestamped directory under
// cfg.Dir and returns the bundle path. The manifest is written last, so
// readers may treat its presence as a completeness marker.
func WriteBundle(cfg BundleConfig, reason string, violations []SignalState, ex *Exemplar) (string, error) {
	if cfg.Dir == "" {
		return "", fmt.Errorf("flight: bundle needs a directory")
	}
	now := time.Now()
	dir := filepath.Join(cfg.Dir, "flight-"+now.UTC().Format("20060102-150405.000000000"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	man := Manifest{
		Version:          manifestVersion,
		CreatedUnixNanos: now.UnixNano(),
		Created:          now.UTC().Format(time.RFC3339Nano),
		Reason:           reason,
		Violations:       violations,
		Exemplar:         ex,
	}
	writeFile := func(name string, fill func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("flight: %s: %w", name, err)
		}
		bw := bufio.NewWriter(f)
		if err := fill(bw); err != nil {
			f.Close()
			return fmt.Errorf("flight: %s: %w", name, err)
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("flight: %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("flight: %s: %w", name, err)
		}
		man.Files = append(man.Files, name)
		return nil
	}

	if cfg.Recorder != nil {
		events := cfg.Recorder.Snapshot()
		man.FlightEvents = len(events)
		if err := writeFile(EventsFile, func(w io.Writer) error {
			var buf []byte
			for i := range events {
				buf = events[i].appendJSON(buf[:0])
				buf = append(buf, '\n')
				if _, err := w.Write(buf); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return "", err
		}
	}
	if cfg.Registry != nil {
		samples := cfg.Registry.Samples()
		man.MetricSamples = len(samples)
		if err := writeFile(MetricsFile, func(w io.Writer) error {
			out := make(map[string]float64, len(samples))
			for _, s := range samples {
				out[s.Name] = s.Value
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}); err != nil {
			return "", err
		}
	}
	if cfg.Timeline != nil {
		if err := writeFile(TimelineFile, cfg.Timeline.WriteTrace); err != nil {
			return "", err
		}
	}
	if !cfg.SkipProfiles {
		if err := writeFile(GoroutinesFile, func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 1)
		}); err != nil {
			return "", err
		}
		if err := writeFile(HeapFile, func(w io.Writer) error {
			runtime.GC() // up-to-date live-heap statistics
			return pprof.WriteHeapProfile(w)
		}); err != nil {
			return "", err
		}
	}
	if err := writeFile(ManifestFile, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	}); err != nil {
		return "", err
	}
	return dir, nil
}
