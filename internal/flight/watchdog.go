package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"ugache/internal/telemetry"
)

// SLO is the serving objective set the watchdog enforces. A zero field
// disables its signal, so the zero value is a fully disarmed watchdog that
// still records, serves /debug/flight, and honors manual bundle triggers.
type SLO struct {
	// P99 is the admitted-request p99 latency target, evaluated over the
	// short and long windows of serve_request_latency_seconds.
	P99 time.Duration
	// MaxShedRatio is the tolerated shed fraction of admission attempts
	// (serve_rejected_total / (requests + rejected)) per window.
	MaxShedRatio float64
	// MaxQueueFrac is the tolerated admission-queue depth as a fraction of
	// the inference ring capacity (peak over each window).
	MaxQueueFrac float64
	// MaxSolveWall is the refresh policy-solve wall-clock budget; the
	// signal fires only when a refresh actually completed inside the window.
	MaxSolveWall time.Duration
	// MaxPrefetchDropRatio is the tolerated dropped fraction of announced
	// lookahead windows per window.
	MaxPrefetchDropRatio float64
}

// WatchdogConfig wires a watchdog to its sources.
type WatchdogConfig struct {
	SLO SLO
	// Interval is the tick period of Start's background loop (default
	// 200ms). Tests drive Tick directly instead.
	Interval time.Duration
	// ShortWindow and LongWindow are the burn-rate evaluation windows in
	// ticks (defaults 3 and 15). A signal trips only when it is violated
	// over both — the multi-window discipline that keeps one slow batch
	// from burning a bundle while still catching sustained burn fast.
	ShortWindow, LongWindow int
	// Cooldown is the minimum spacing between automatic bundles (default
	// 30s). Manual triggers ignore it.
	Cooldown time.Duration
	// Registry is the telemetry the signals are computed from (required).
	Registry *telemetry.Registry
	// Recorder supplies the exemplar scan and the bundled flight.jsonl.
	Recorder *Recorder
	// QueueCapacity is the per-GPU inference admission ring capacity the
	// saturation signal is measured against (0 disables that signal).
	QueueCapacity int
	// Bundle configures where and what trips write.
	Bundle BundleConfig
	// OnBundle, when non-nil, is called after every bundle attempt
	// (automatic or manual) with the bundle path or error.
	OnBundle func(path string, err error)
}

func (c WatchdogConfig) normalize() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 3
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 5 * c.ShortWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// SignalState is one SLO signal's last evaluation.
type SignalState struct {
	Name string `json:"name"`
	// Short and Long are the signal's value over the two windows.
	Short     float64 `json:"short"`
	Long      float64 `json:"long"`
	Threshold float64 `json:"threshold"`
	// Breached is true when both windows violated the threshold.
	Breached bool `json:"breached"`
}

// State is a watchdog snapshot, served at /debug/flight and embedded in
// bundle manifests.
type State struct {
	// Armed reports whether any SLO signal is enabled.
	Armed bool `json:"armed"`
	// Ticks counts evaluations, Trips automatic bundle triggers.
	Ticks int64 `json:"ticks"`
	Trips int64 `json:"trips"`
	// LastTripUnixNanos is when the watchdog last tripped (0 = never).
	LastTripUnixNanos int64 `json:"last_trip_unix_nanos,omitempty"`
	// LastBundlePath and LastBundleErr describe the most recent bundle
	// attempt, manual or automatic.
	LastBundlePath string `json:"last_bundle_path,omitempty"`
	LastBundleErr  string `json:"last_bundle_err,omitempty"`
	// Signals holds every enabled signal's last evaluation.
	Signals []SignalState `json:"signals,omitempty"`
	// Exemplar is the slowest batch seen in the last long window.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// snap is one tick's cumulative readings; window values are diffs between
// snaps.
type snap struct {
	at         int64 // unix nanos
	requests   int64
	rejected   int64
	pfWindows  int64
	pfDropped  int64
	refreshes  int64
	latCounts  []uint64 // per-bucket, cumulative
	queueDepth float64  // last-observed combined depth (gauge)
	solveWall  float64  // last refresh solve wall seconds (gauge)
}

// Watchdog evaluates rolling SLO windows over the live telemetry and dumps
// a diagnostic bundle when one trips. All methods are safe for concurrent
// use; Tick is cheap enough to run every few hundred milliseconds (it reads
// sharded atomics and diffs histogram buckets — no locks on any hot path).
type Watchdog struct {
	cfg WatchdogConfig

	mu       sync.Mutex
	snaps    []snap // oldest first, at most LongWindow+1
	state    State
	lastTrip time.Time

	// resolved metric handles (lazily; registration order is not ours).
	latency   *telemetry.Histogram
	bounds    []float64
	requests  *telemetry.Counter
	rejected  *telemetry.Counter
	pfWindows *telemetry.Counter
	pfDropped *telemetry.Counter
	refreshes *telemetry.Counter
	qDepth    *telemetry.Gauge
	solveWall *telemetry.Gauge

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewWatchdog builds a watchdog; call Start to run its background loop or
// Tick to drive it manually.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	cfg = cfg.normalize()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("flight: watchdog needs a telemetry registry")
	}
	w := &Watchdog{cfg: cfg, done: make(chan struct{})}
	w.state.Armed = cfg.SLO != (SLO{})
	return w, nil
}

// Armed reports whether any SLO signal is enabled.
func (w *Watchdog) Armed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Armed
}

// Start launches the periodic evaluation loop; Close stops it.
func (w *Watchdog) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Tick()
			case <-w.done:
				return
			}
		}
	}()
}

// Close stops the background loop and waits for it; safe to call more than
// once and without Start.
func (w *Watchdog) Close() {
	w.once.Do(func() { close(w.done) })
	w.wg.Wait()
}

// resolve looks up metric handles that exist by now; missing metrics stay
// nil and their signals read as zero.
func (w *Watchdog) resolve() {
	reg := w.cfg.Registry
	if w.latency == nil {
		if h, ok := reg.Find("serve_request_latency_seconds").(*telemetry.Histogram); ok {
			w.latency = h
			w.bounds, _ = h.Buckets()
		}
	}
	find := func(dst **telemetry.Counter, name string) {
		if *dst == nil {
			if c, ok := reg.Find(name).(*telemetry.Counter); ok {
				*dst = c
			}
		}
	}
	find(&w.requests, "serve_requests_total")
	find(&w.rejected, "serve_rejected_total")
	find(&w.pfWindows, "serve_prefetch_windows_total")
	find(&w.pfDropped, "serve_prefetch_dropped_windows_total")
	find(&w.refreshes, "cache_refresh_total")
	if w.qDepth == nil {
		if g, ok := reg.Find("serve_queue_depth_last").(*telemetry.Gauge); ok {
			w.qDepth = g
		}
	}
	if w.solveWall == nil {
		if g, ok := reg.Find("cache_refresh_last_solve_wall_seconds").(*telemetry.Gauge); ok {
			w.solveWall = g
		}
	}
}

func counterVal(c *telemetry.Counter) int64 {
	if c == nil {
		return 0
	}
	return c.Value()
}

func gaugeVal(g *telemetry.Gauge) float64 {
	if g == nil {
		return 0
	}
	return g.Value()
}

// take reads one cumulative snapshot.
func (w *Watchdog) take() snap {
	s := snap{
		at:         time.Now().UnixNano(),
		requests:   counterVal(w.requests),
		rejected:   counterVal(w.rejected),
		pfWindows:  counterVal(w.pfWindows),
		pfDropped:  counterVal(w.pfDropped),
		refreshes:  counterVal(w.refreshes),
		queueDepth: gaugeVal(w.qDepth),
		solveWall:  gaugeVal(w.solveWall),
	}
	if w.latency != nil {
		_, s.latCounts = w.latency.Buckets()
	}
	return s
}

// diffCounts returns b-a per bucket (nil-tolerant).
func diffCounts(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return nil
	}
	out := make([]uint64, len(b))
	for i := range b {
		var av uint64
		if i < len(a) {
			av = a[i]
		}
		out[i] = b[i] - av
	}
	return out
}

// ratio is a/(a+b) with a zero denominator reading 0.
func ratio(a, b int64) float64 {
	if a+b <= 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// evaluate computes every enabled signal over the short and long windows.
// Caller holds w.mu; snaps has at least 2 entries.
func (w *Watchdog) evaluate() []SignalState {
	slo := w.cfg.SLO
	cur := &w.snaps[len(w.snaps)-1]
	shortBase := &w.snaps[maxInt(0, len(w.snaps)-1-w.cfg.ShortWindow)]
	longBase := &w.snaps[0]
	var out []SignalState

	windowed := func(name string, thr float64, f func(base *snap) float64) {
		st := SignalState{Name: name, Threshold: thr,
			Short: f(shortBase), Long: f(longBase)}
		st.Breached = st.Short > thr && st.Long > thr
		out = append(out, st)
	}
	if slo.P99 > 0 && w.latency != nil {
		windowed("admitted_p99_seconds", slo.P99.Seconds(), func(base *snap) float64 {
			return telemetry.QuantileFromBuckets(w.bounds, diffCounts(base.latCounts, cur.latCounts), 0.99)
		})
	}
	if slo.MaxShedRatio > 0 {
		windowed("shed_ratio", slo.MaxShedRatio, func(base *snap) float64 {
			return ratio(cur.rejected-base.rejected, cur.requests-base.requests)
		})
	}
	if slo.MaxQueueFrac > 0 && w.cfg.QueueCapacity > 0 {
		cap := float64(w.cfg.QueueCapacity)
		windowed("queue_saturation", slo.MaxQueueFrac, func(base *snap) float64 {
			// Peak observed gauge over the window's snaps.
			peak := 0.0
			for i := range w.snaps {
				if w.snaps[i].at >= base.at && w.snaps[i].queueDepth > peak {
					peak = w.snaps[i].queueDepth
				}
			}
			return peak / cap
		})
	}
	if slo.MaxSolveWall > 0 {
		windowed("refresh_solve_wall_seconds", slo.MaxSolveWall.Seconds(), func(base *snap) float64 {
			if cur.refreshes == base.refreshes {
				return 0 // no refresh completed in this window
			}
			return cur.solveWall
		})
	}
	if slo.MaxPrefetchDropRatio > 0 {
		windowed("prefetch_drop_ratio", slo.MaxPrefetchDropRatio, func(base *snap) float64 {
			return ratio(cur.pfDropped-base.pfDropped, cur.pfWindows-base.pfWindows)
		})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Tick takes one snapshot, evaluates the windows, refreshes the exemplar,
// and writes a bundle when a signal trips outside the cooldown. It returns
// whether this tick tripped.
func (w *Watchdog) Tick() bool {
	w.mu.Lock()
	w.resolve()
	s := w.take()
	w.snaps = append(w.snaps, s)
	if len(w.snaps) > w.cfg.LongWindow+1 {
		w.snaps = w.snaps[1:]
	}
	w.state.Ticks++
	if len(w.snaps) < 2 {
		w.mu.Unlock()
		return false
	}
	signals := w.evaluate()
	w.state.Signals = signals
	if w.cfg.Recorder != nil {
		if ex, ok := w.cfg.Recorder.SlowestBatch(w.snaps[0].at); ok {
			w.state.Exemplar = &Exemplar{
				GPU: ex.GPU, Seq: ex.Seq,
				LatencySeconds: ex.V[BatchLatencySeconds],
				UnixNanos:      ex.UnixNanos,
			}
		}
	}
	var breached []string
	for _, sig := range signals {
		if sig.Breached {
			breached = append(breached, sig.Name)
		}
	}
	now := time.Now()
	// Automatic trips wait for a full short window of history — a cold-start
	// tick where both "windows" collapse onto one diff must not burn the
	// cooldown on a single slow batch.
	trip := len(breached) > 0 && len(w.snaps) > w.cfg.ShortWindow &&
		now.Sub(w.lastTrip) >= w.cfg.Cooldown
	if !trip {
		w.mu.Unlock()
		return false
	}
	w.lastTrip = now
	w.state.Trips++
	w.state.LastTripUnixNanos = now.UnixNano()
	reason := "slo:" + strings.Join(breached, ",")
	ex := w.state.Exemplar
	violations := append([]SignalState(nil), signals...)
	w.mu.Unlock()

	// The bundle write happens outside the lock: it drains rings, renders
	// the timeline and collects profiles, none of which should block State
	// readers or the next tick's evaluation.
	path, err := WriteBundle(w.cfg.Bundle, reason, violations, ex)
	w.noteBundle(path, err)
	return true
}

// TriggerBundle writes a bundle immediately (manual trigger: the /debug
// endpoint, SIGQUIT), ignoring the cooldown. The current signal state and
// exemplar ride along.
func (w *Watchdog) TriggerBundle(reason string) (string, error) {
	if reason == "" {
		reason = "manual"
	}
	w.mu.Lock()
	violations := append([]SignalState(nil), w.state.Signals...)
	ex := w.state.Exemplar
	w.mu.Unlock()
	path, err := WriteBundle(w.cfg.Bundle, reason, violations, ex)
	w.noteBundle(path, err)
	return path, err
}

func (w *Watchdog) noteBundle(path string, err error) {
	w.mu.Lock()
	w.state.LastBundlePath, w.state.LastBundleErr = path, ""
	if err != nil {
		w.state.LastBundlePath, w.state.LastBundleErr = "", err.Error()
	}
	w.mu.Unlock()
	if w.cfg.OnBundle != nil {
		w.cfg.OnBundle(path, err)
	}
}

// State returns a copy of the watchdog's current state.
func (w *Watchdog) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.state
	st.Signals = append([]SignalState(nil), w.state.Signals...)
	if w.state.Exemplar != nil {
		ex := *w.state.Exemplar
		st.Exemplar = &ex
	}
	return st
}

// recentStateEvents caps how many trailing events WriteFlightState embeds.
const recentStateEvents = 256

// WriteFlightState renders the watchdog state plus the most recent flight
// events as one JSON document — the /debug/flight endpoint body. It also
// satisfies telemetry.FlightDebug.
func (w *Watchdog) WriteFlightState(out io.Writer) error {
	st := w.State()
	body := struct {
		State  State             `json:"state"`
		Events []json.RawMessage `json:"events"`
	}{State: st, Events: []json.RawMessage{}}
	if w.cfg.Recorder != nil {
		events := w.cfg.Recorder.Snapshot()
		if len(events) > recentStateEvents {
			events = events[len(events)-recentStateEvents:]
		}
		var buf []byte
		for i := range events {
			buf = events[i].appendJSON(nil)
			body.Events = append(body.Events, json.RawMessage(buf))
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&body)
}
