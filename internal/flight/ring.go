package flight

import (
	"bufio"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// slotWords is the number of payload words a ring slot carries beyond its
// sequence word: one packed kind/GPU word, the event sequence, the
// wall-clock nanos, and MaxPayload float64 slots.
const slotWords = 3 + MaxPayload

// slot is one ring entry, stored entirely in atomic words so a writer and
// any number of concurrent readers never perform a data race. The sn word
// is a seqlock: the writer bumps it to odd before touching the payload and
// to even after; a reader that observes an odd value, or a value that moved
// while it copied, discards the slot instead of surfacing a torn event.
type slot struct {
	sn atomic.Uint64
	w  [slotWords]atomic.Uint64
}

// Ring is one writer's fixed-capacity event ring. Record is single-producer
// (each serving worker owns its ring; the recorder serializes control-plane
// writers with a mutex of its own) and lock-free: a fixed number of atomic
// stores, no allocation, no branches beyond the seqlock protocol. Readers
// snapshot concurrently without stopping the writer — an overwritten or
// in-flight slot is simply skipped.
type Ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // total records ever written; next slot = head & mask
}

// NewRing returns a ring holding the last depth events (rounded up to a
// power of two, min 8).
func NewRing(depth int) *Ring {
	cap := 8
	for cap < depth {
		cap <<= 1
	}
	return &Ring{slots: make([]slot, cap), mask: uint64(cap - 1)}
}

// Depth returns the ring capacity in events.
func (r *Ring) Depth() int { return len(r.slots) }

// Record copies one event into the ring, overwriting the oldest once full.
// Single producer per ring; concurrent readers are safe.
func (r *Ring) Record(e *Event) {
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	sn := s.sn.Load()
	s.sn.Store(sn + 1) // odd: write in progress
	s.w[0].Store(uint64(e.Kind)<<32 | uint64(uint32(e.GPU)))
	s.w[1].Store(uint64(e.Seq))
	s.w[2].Store(uint64(e.UnixNanos))
	for i := 0; i < MaxPayload; i++ {
		s.w[3+i].Store(math.Float64bits(e.V[i]))
	}
	s.sn.Store(sn + 2) // even: committed
	r.head.Store(h + 1)
}

// Recorded returns the total number of events ever written.
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Snapshot appends the ring's current events to dst, oldest first, and
// returns it. Runs concurrently with Record: slots being overwritten during
// the copy are dropped rather than surfaced torn, so a snapshot under a hot
// writer may hold slightly fewer than Depth events.
func (r *Ring) Snapshot(dst []Event) []Event {
	h := r.head.Load()
	n := uint64(len(r.slots))
	if h < n {
		n = h
	}
	for i := h - n; i < h; i++ {
		s := &r.slots[i&r.mask]
		sn1 := s.sn.Load()
		if sn1%2 == 1 {
			continue // mid-write
		}
		var e Event
		kg := s.w[0].Load()
		e.Kind = Kind(kg >> 32)
		e.GPU = int32(uint32(kg))
		e.Seq = int64(s.w[1].Load())
		e.UnixNanos = int64(s.w[2].Load())
		for j := 0; j < MaxPayload; j++ {
			e.V[j] = math.Float64frombits(s.w[3+j].Load())
		}
		if s.sn.Load() != sn1 || e.Kind == 0 {
			continue // torn (lapped by the writer) or never written
		}
		dst = append(dst, e)
	}
	return dst
}

// Recorder owns one flight ring per serving worker plus a shared
// control-plane ring (refresh / solver / drift events, which have several
// slow-path writers and therefore take a short mutex). Memory is fixed at
// construction: workers x depth + depth slots, nothing grows afterwards.
type Recorder struct {
	rings []*Ring
	ctrl  *Ring
	ctrlM sync.Mutex
}

// DefaultDepth is the per-ring depth used when NewRecorder is given a
// non-positive depth.
const DefaultDepth = 4096

// NewRecorder creates a recorder with one ring per worker (values < 1 are
// raised to 1) plus the control ring, each holding the last depth events.
func NewRecorder(workers, depth int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = DefaultDepth
	}
	r := &Recorder{rings: make([]*Ring, workers), ctrl: NewRing(depth)}
	for i := range r.rings {
		r.rings[i] = NewRing(depth)
	}
	return r
}

// Workers returns the number of per-worker rings.
func (r *Recorder) Workers() int { return len(r.rings) }

// Ring returns worker i's ring (reduced modulo the worker count). Cache the
// pointer next to the worker's scratch; worker i must be the ring's only
// producer.
func (r *Recorder) Ring(i int) *Ring {
	if i < 0 {
		i = -i
	}
	return r.rings[i%len(r.rings)]
}

// RecordControl records one control-plane event (refresh, solver, drift)
// into the shared control ring under a short mutex — control writers are
// slow-path and may be concurrent.
func (r *Recorder) RecordControl(e *Event) {
	r.ctrlM.Lock()
	r.ctrl.Record(e)
	r.ctrlM.Unlock()
}

// Recorded sums the events ever written across all rings.
func (r *Recorder) Recorded() uint64 {
	total := r.ctrl.Recorded()
	for _, rg := range r.rings {
		total += rg.Recorded()
	}
	return total
}

// Snapshot returns a merged copy of every ring's events sorted by wall time
// (stable across rings: ties keep worker order, control last).
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for _, rg := range r.rings {
		out = rg.Snapshot(out)
	}
	out = r.ctrl.Snapshot(out)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].UnixNanos < out[j].UnixNanos
	})
	return out
}

// SlowestBatch returns the KindBatch event with the highest latency at or
// after sinceNanos (0 scans everything) — the watchdog's exemplar.
func (r *Recorder) SlowestBatch(sinceNanos int64) (Event, bool) {
	var best Event
	found := false
	var buf []Event
	for _, rg := range r.rings {
		buf = rg.Snapshot(buf[:0])
		for i := range buf {
			e := &buf[i]
			if e.Kind != KindBatch || e.UnixNanos < sinceNanos {
				continue
			}
			if !found || e.V[BatchLatencySeconds] > best.V[BatchLatencySeconds] {
				best, found = *e, true
			}
		}
	}
	return best, found
}

// WriteJSONL drains a merged snapshot as JSON Lines, one event object per
// line, oldest first — the bundle's flight.jsonl format.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range r.Snapshot() {
		buf = e.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
