package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ugache/internal/telemetry"
	"ugache/internal/timeline"
)

// testTimeline builds a span recorder holding one batch span tree on GPU
// gpu with the given seq arg, plus a child span nested inside it.
func testTimeline(t *testing.T, gpu int32, seq int64) *timeline.Recorder {
	t.Helper()
	tl := timeline.NewRecorder(1, 0)
	sh := tl.Shard(0)
	root := timeline.Event{Name: "batch", Cat: "serve", Ph: timeline.PhSpan,
		PID: timeline.ProcServe, TID: gpu, Start: 0.010, Dur: 0.004}
	root.AddArg("seq", float64(seq))
	sh.Emit(&root)
	child := timeline.Event{Name: "extract", Cat: "serve", Ph: timeline.PhSpan,
		PID: timeline.ProcServe, TID: gpu, Start: 0.011, Dur: 0.002}
	sh.Emit(&child)
	return tl
}

func TestWriteBundleAndValidate(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(1, 16)
	e := batchEvent(3, 17, 0.025, 100)
	rec.Ring(0).Record(&e)
	q := Event{Kind: KindQueue, GPU: 3, UnixNanos: 101}
	q.V[QueueDepth] = 5
	rec.Ring(0).Record(&q)

	reg := telemetry.NewRegistry(1)
	reg.Counter("serve_requests_total", "x").Add(0, 42)

	cfg := BundleConfig{
		Dir:      dir,
		Recorder: rec,
		Registry: reg,
		Timeline: testTimeline(t, 3, 17),
	}
	violations := []SignalState{{Name: "admitted_p99_seconds", Short: 0.025, Long: 0.020, Threshold: 0.010, Breached: true}}
	ex := &Exemplar{GPU: 3, Seq: 17, LatencySeconds: 0.025, UnixNanos: 100}
	path, err := WriteBundle(cfg, "slo:admitted_p99_seconds", violations, ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "flight-") {
		t.Fatalf("bundle dir %q not timestamped", path)
	}
	for _, name := range []string{ManifestFile, EventsFile, MetricsFile, TimelineFile, GoroutinesFile, HeapFile} {
		st, err := os.Stat(filepath.Join(path, name))
		if err != nil || st.Size() == 0 {
			t.Fatalf("bundle file %s missing or empty (err=%v)", name, err)
		}
	}

	rep, err := ValidateBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventLines != 2 || rep.EventsByKind["batch"] != 1 || rep.EventsByKind["queue"] != 1 {
		t.Fatalf("events = %d %v", rep.EventLines, rep.EventsByKind)
	}
	if rep.MetricCount == 0 {
		t.Fatal("no metric samples in bundle")
	}
	if rep.ExemplarSpans != 2 {
		t.Fatalf("exemplar resolved to %d spans, want 2 (root + child)", rep.ExemplarSpans)
	}
	man := rep.Manifest
	if man.Reason != "slo:admitted_p99_seconds" || len(man.Violations) != 1 ||
		!man.Violations[0].Breached || man.Exemplar == nil || man.Exemplar.Seq != 17 {
		t.Fatalf("manifest = %+v", man)
	}
}

func TestWriteBundleSkipProfiles(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(1, 8)
	e := batchEvent(0, 1, 0.001, 1)
	rec.Ring(0).Record(&e)
	path, err := WriteBundle(BundleConfig{Dir: dir, Recorder: rec, SkipProfiles: true}, "test", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(path, HeapFile)); !os.IsNotExist(err) {
		t.Fatalf("heap profile written despite SkipProfiles (err=%v)", err)
	}
	rep, err := ValidateBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventLines != 1 {
		t.Fatalf("events = %d, want 1", rep.EventLines)
	}
}

func TestWriteBundleNoDir(t *testing.T) {
	if _, err := WriteBundle(BundleConfig{}, "x", nil, nil); err == nil {
		t.Fatal("WriteBundle without a directory succeeded")
	}
}

func TestValidateBundleRejectsBrokenExemplar(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(1, 8)
	e := batchEvent(0, 1, 0.001, 1)
	rec.Ring(0).Record(&e)
	// Timeline holds seq 99; the exemplar claims seq 1 — resolution must fail.
	path, err := WriteBundle(BundleConfig{
		Dir: dir, Recorder: rec, Timeline: testTimeline(t, 0, 99), SkipProfiles: true,
	}, "test", nil, &Exemplar{GPU: 0, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBundle(path); err == nil || !strings.Contains(err.Error(), "no matching span") {
		t.Fatalf("ValidateBundle on a dangling exemplar: %v", err)
	}
}

func TestValidateBundleRejectsCorruptJSONL(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(1, 8)
	e := batchEvent(0, 1, 0.001, 1)
	rec.Ring(0).Record(&e)
	path, err := WriteBundle(BundleConfig{Dir: dir, Recorder: rec, SkipProfiles: true}, "test", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, EventsFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBundle(path); err == nil {
		t.Fatal("ValidateBundle accepted corrupt JSONL")
	}
}

func TestValidateBundleMissingManifest(t *testing.T) {
	if _, err := ValidateBundle(t.TempDir()); err == nil {
		t.Fatal("ValidateBundle without a manifest succeeded")
	}
}

func TestManifestRoundTripsJSON(t *testing.T) {
	man := Manifest{Version: manifestVersion, Reason: "manual",
		Exemplar: &Exemplar{GPU: 1, Seq: 2, LatencySeconds: 0.5}}
	b, err := json.Marshal(&man)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Exemplar == nil || back.Exemplar.Seq != 2 {
		t.Fatalf("round trip lost the exemplar: %+v", back)
	}
}
