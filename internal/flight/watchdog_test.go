package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ugache/internal/telemetry"
)

// testWatchdog builds a watchdog against a fresh registry with the serving
// metrics the signals read, short windows, and a profile-free bundle sink.
func testWatchdog(t *testing.T, slo SLO, mutate func(cfg *WatchdogConfig)) (*Watchdog, *telemetry.Registry, string) {
	t.Helper()
	reg := telemetry.NewRegistry(1)
	reg.Histogram("serve_request_latency_seconds", "x", telemetry.ExpBuckets(1e-6, 2, 23))
	reg.Counter("serve_requests_total", "x")
	reg.Counter("serve_rejected_total", "x")
	reg.Counter("serve_prefetch_windows_total", "x")
	reg.Counter("serve_prefetch_dropped_windows_total", "x")
	reg.Counter("cache_refresh_total", "x")
	reg.Gauge("serve_queue_depth_last", "x")
	reg.Gauge("cache_refresh_last_solve_wall_seconds", "x")
	dir := t.TempDir()
	cfg := WatchdogConfig{
		SLO:           slo,
		ShortWindow:   2,
		LongWindow:    4,
		Cooldown:      time.Millisecond,
		Registry:      reg,
		QueueCapacity: 256,
		Bundle:        BundleConfig{Dir: dir, Registry: reg, SkipProfiles: true},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	wd, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wd, reg, dir
}

func TestWatchdogP99Trips(t *testing.T) {
	wd, reg, dir := testWatchdog(t, SLO{P99: 10 * time.Millisecond}, nil)
	if !wd.Armed() {
		t.Fatal("watchdog with a P99 target reports disarmed")
	}
	h := reg.Histogram("serve_request_latency_seconds", "x", nil)
	tripped := false
	for tick := 0; tick < 5; tick++ {
		for i := 0; i < 20; i++ {
			h.Observe(0, 0.050) // 50ms, 5x the target
		}
		if wd.Tick() {
			tripped = true
			break
		}
		time.Sleep(2 * time.Millisecond) // outlive the test cooldown
	}
	if !tripped {
		t.Fatal("sustained 50ms p99 against a 10ms SLO never tripped")
	}
	st := wd.State()
	if st.Trips != 1 || st.LastBundlePath == "" || st.LastBundleErr != "" {
		t.Fatalf("state after trip = %+v", st)
	}
	raw, err := os.ReadFile(filepath.Join(st.LastBundlePath, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(man.Reason, "admitted_p99_seconds") {
		t.Fatalf("bundle reason = %q", man.Reason)
	}
	found := false
	for _, v := range man.Violations {
		if v.Name == "admitted_p99_seconds" && v.Breached && v.Short > 0.010 && v.Long > 0.010 {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest violations = %+v", man.Violations)
	}
	listed := false
	for _, f := range man.Files {
		if f == MetricsFile {
			listed = true
		}
	}
	if !listed {
		t.Fatalf("manifest files = %v, want %s listed", man.Files, MetricsFile)
	}
	_ = dir
}

func TestWatchdogCooldownSuppressesRepeatTrips(t *testing.T) {
	wd, reg, _ := testWatchdog(t, SLO{P99: 10 * time.Millisecond},
		func(cfg *WatchdogConfig) { cfg.Cooldown = time.Hour })
	h := reg.Histogram("serve_request_latency_seconds", "x", nil)
	trips := 0
	for tick := 0; tick < 8; tick++ {
		for i := 0; i < 20; i++ {
			h.Observe(0, 0.050)
		}
		if wd.Tick() {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("trips = %d, want exactly 1 inside the cooldown", trips)
	}
	if st := wd.State(); st.Trips != 1 {
		t.Fatalf("state trips = %d", st.Trips)
	}
}

func TestWatchdogHealthyStaysQuiet(t *testing.T) {
	wd, reg, _ := testWatchdog(t, SLO{
		P99: 10 * time.Millisecond, MaxShedRatio: 0.05, MaxQueueFrac: 0.9,
		MaxSolveWall: 2 * time.Second, MaxPrefetchDropRatio: 0.5,
	}, nil)
	h := reg.Histogram("serve_request_latency_seconds", "x", nil)
	req := reg.Counter("serve_requests_total", "x")
	for tick := 0; tick < 8; tick++ {
		for i := 0; i < 50; i++ {
			h.Observe(0, 0.001) // 1ms, well under target
		}
		req.Add(0, 50)
		if wd.Tick() {
			t.Fatalf("healthy traffic tripped at tick %d: %+v", tick, wd.State().Signals)
		}
	}
	for _, sig := range wd.State().Signals {
		if sig.Breached {
			t.Fatalf("signal %s breached on healthy traffic", sig.Name)
		}
	}
}

func TestWatchdogShedRatio(t *testing.T) {
	wd, reg, _ := testWatchdog(t, SLO{MaxShedRatio: 0.05}, nil)
	req := reg.Counter("serve_requests_total", "x")
	rej := reg.Counter("serve_rejected_total", "x")
	tripped := false
	for tick := 0; tick < 5; tick++ {
		req.Add(0, 80)
		rej.Add(0, 20) // 20% shed
		if wd.Tick() {
			tripped = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !tripped {
		t.Fatal("20% shed ratio against a 5% SLO never tripped")
	}
}

// TestWatchdogSolveWallNeedsRefresh pins that a sticky solve-wall gauge does
// not re-trip forever: the signal only reads when the refresh counter moved
// inside the window.
func TestWatchdogSolveWallNeedsRefresh(t *testing.T) {
	wd, reg, _ := testWatchdog(t, SLO{MaxSolveWall: time.Second}, nil)
	wall := reg.Gauge("cache_refresh_last_solve_wall_seconds", "x")
	refreshes := reg.Counter("cache_refresh_total", "x")
	wall.Set(10) // way over budget, but no refresh happened yet
	for tick := 0; tick < 6; tick++ {
		if wd.Tick() {
			t.Fatal("solve-wall tripped without any refresh in the window")
		}
	}
	refreshes.Add(0, 1)
	tripped := false
	for tick := 0; tick < 3; tick++ {
		if wd.Tick() {
			tripped = true
			break
		}
		refreshes.Add(0, 1) // keep a refresh inside the rolling window
		time.Sleep(2 * time.Millisecond)
	}
	if !tripped {
		t.Fatal("10s solve wall with refreshes in-window never tripped")
	}
}

func TestWatchdogQueueSaturation(t *testing.T) {
	wd, reg, _ := testWatchdog(t, SLO{MaxQueueFrac: 0.9}, nil)
	depth := reg.Gauge("serve_queue_depth_last", "x")
	depth.Set(250) // 250/256 > 0.9
	tripped := false
	for tick := 0; tick < 5; tick++ {
		if wd.Tick() {
			tripped = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !tripped {
		t.Fatal("saturated queue never tripped")
	}
}

func TestWatchdogDisarmed(t *testing.T) {
	wd, reg, dir := testWatchdog(t, SLO{}, nil)
	if wd.Armed() {
		t.Fatal("zero SLO reports armed")
	}
	h := reg.Histogram("serve_request_latency_seconds", "x", nil)
	for tick := 0; tick < 6; tick++ {
		h.Observe(0, 10) // absurd latency; nothing should care
		if wd.Tick() {
			t.Fatal("disarmed watchdog tripped")
		}
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("disarmed watchdog wrote bundles: %v", entries)
	}
}

func TestWatchdogExemplarTracksSlowestBatch(t *testing.T) {
	rec := NewRecorder(1, 16)
	wd, _, _ := testWatchdog(t, SLO{P99: 10 * time.Millisecond},
		func(cfg *WatchdogConfig) { cfg.Recorder = rec; cfg.Bundle.Recorder = rec })
	wd.Tick() // window opens at this snapshot's timestamp
	e := batchEvent(2, 7, 0.080, time.Now().UnixNano())
	rec.Ring(0).Record(&e)
	wd.Tick()
	st := wd.State()
	if st.Exemplar == nil || st.Exemplar.Seq != 7 || st.Exemplar.GPU != 2 {
		t.Fatalf("exemplar = %+v, want batch seq 7 on gpu 2", st.Exemplar)
	}
}

func TestTriggerBundleBypassesCooldownAndArming(t *testing.T) {
	rec := NewRecorder(1, 8)
	wd, _, _ := testWatchdog(t, SLO{},
		func(cfg *WatchdogConfig) { cfg.Recorder = rec; cfg.Bundle.Recorder = rec })
	e := batchEvent(0, 1, 0.001, 1)
	rec.Ring(0).Record(&e)
	path, err := wd.TriggerBundle("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Manifest.Reason != "sigquit" || rep.EventLines != 1 {
		t.Fatalf("manual bundle = %+v", rep.Manifest)
	}
	if st := wd.State(); st.LastBundlePath != path || st.Trips != 0 {
		t.Fatalf("state after manual trigger = %+v", st)
	}
}

func TestWriteFlightStateJSON(t *testing.T) {
	rec := NewRecorder(1, 8)
	wd, _, _ := testWatchdog(t, SLO{P99: time.Millisecond},
		func(cfg *WatchdogConfig) { cfg.Recorder = rec })
	e := batchEvent(1, 3, 0.002, 5)
	rec.Ring(0).Record(&e)
	wd.Tick()
	var buf bytes.Buffer
	if err := wd.WriteFlightState(&buf); err != nil {
		t.Fatal(err)
	}
	var body struct {
		State  State             `json:"state"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &body); err != nil {
		t.Fatalf("flight state does not parse: %v\n%s", err, buf.String())
	}
	if !body.State.Armed || body.State.Ticks != 1 || len(body.Events) != 1 {
		t.Fatalf("flight state = %+v with %d events", body.State, len(body.Events))
	}
	var ev map[string]any
	if err := json.Unmarshal(body.Events[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "batch" || ev["seq"].(float64) != 3 {
		t.Fatalf("embedded event = %v", ev)
	}
}

// TestWatchdogConcurrent drives Start/Tick/State/TriggerBundle against live
// recording — the -race coverage for the watchdog's locking.
func TestWatchdogConcurrent(t *testing.T) {
	rec := NewRecorder(2, 32)
	wd, reg, _ := testWatchdog(t, SLO{P99: time.Millisecond}, func(cfg *WatchdogConfig) {
		cfg.Recorder = rec
		cfg.Bundle.Recorder = rec
		cfg.Interval = time.Millisecond
	})
	h := reg.Histogram("serve_request_latency_seconds", "x", nil)
	wd.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ring := rec.Ring(w)
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := batchEvent(int32(w), int64(i), 0.002, time.Now().UnixNano())
				ring.Record(&e)
				h.Observe(w, 0.002)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = wd.State()
			var buf bytes.Buffer
			_ = wd.WriteFlightState(&buf)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := wd.TriggerBundle("concurrent-test"); err != nil {
		t.Errorf("manual bundle under load: %v", err)
	}
	close(stop)
	wg.Wait()
	wd.Close()
	wd.Close() // idempotent
	if st := wd.State(); st.Ticks == 0 {
		t.Fatal("background loop never ticked")
	}
}
