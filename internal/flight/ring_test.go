package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func batchEvent(gpu int32, seq int64, lat float64, nanos int64) Event {
	e := Event{Kind: KindBatch, GPU: gpu, Seq: seq, UnixNanos: nanos}
	e.V[BatchLatencySeconds] = lat
	e.V[BatchRequests] = 3
	return e
}

func TestRingRoundTrip(t *testing.T) {
	r := NewRing(16)
	if r.Depth() != 16 {
		t.Fatalf("depth = %d, want 16", r.Depth())
	}
	for i := 0; i < 5; i++ {
		e := batchEvent(2, int64(i+1), float64(i)*1e-3, int64(1000+i))
		r.Record(&e)
	}
	got := r.Snapshot(nil)
	if len(got) != 5 {
		t.Fatalf("snapshot holds %d events, want 5", len(got))
	}
	for i, e := range got {
		if e.Kind != KindBatch || e.GPU != 2 || e.Seq != int64(i+1) || e.UnixNanos != int64(1000+i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.V[BatchLatencySeconds] != float64(i)*1e-3 {
			t.Fatalf("event %d latency = %g", i, e.V[BatchLatencySeconds])
		}
	}
}

func TestRingDepthRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 8}, {1, 8}, {9, 16}, {4096, 4096}, {5000, 8192}} {
		if got := NewRing(tc.ask).Depth(); got != tc.want {
			t.Errorf("NewRing(%d).Depth() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		e := batchEvent(0, int64(i), 0, int64(i))
		r.Record(&e)
	}
	got := r.Snapshot(nil)
	if len(got) != 8 {
		t.Fatalf("snapshot holds %d events, want 8", len(got))
	}
	for i, e := range got {
		if want := int64(12 + i); e.Seq != want {
			t.Fatalf("slot %d seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	if r.Recorded() != 20 {
		t.Fatalf("Recorded() = %d, want 20", r.Recorded())
	}
}

func TestRingNegativeGPURoundTrips(t *testing.T) {
	r := NewRing(8)
	e := Event{Kind: KindRefresh, GPU: -1, Seq: 7, UnixNanos: 1}
	r.Record(&e)
	got := r.Snapshot(nil)
	if len(got) != 1 || got[0].GPU != -1 {
		t.Fatalf("control event GPU = %+v, want -1", got)
	}
}

// TestRingConcurrentSnapshot hammers one producer against concurrent
// readers; under -race this is the proof the seqlock slots are sound, and in
// any mode every surfaced event must be internally consistent (never torn).
func TestRingConcurrentSnapshot(t *testing.T) {
	r := NewRing(64)
	const writes = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Event
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for _, e := range buf {
					if e.Kind != KindBatch {
						t.Errorf("torn event kind %d", e.Kind)
						return
					}
					// Writer keeps Seq == UnixNanos == V[0]; a torn read
					// would mix words from different writes.
					if e.Seq != e.UnixNanos || float64(e.Seq) != e.V[0] {
						t.Errorf("torn event: seq=%d nanos=%d v0=%g", e.Seq, e.UnixNanos, e.V[0])
						return
					}
				}
			}
		}()
	}
	for i := 1; i <= writes; i++ {
		e := Event{Kind: KindBatch, GPU: 0, Seq: int64(i), UnixNanos: int64(i)}
		e.V[0] = float64(i)
		r.Record(&e)
	}
	close(stop)
	wg.Wait()
}

func TestRecorderSnapshotMergesSorted(t *testing.T) {
	rec := NewRecorder(2, 8)
	if rec.Workers() != 2 {
		t.Fatalf("workers = %d", rec.Workers())
	}
	e := batchEvent(0, 1, 0, 30)
	rec.Ring(0).Record(&e)
	e = batchEvent(1, 1, 0, 10)
	rec.Ring(1).Record(&e)
	ctrl := Event{Kind: KindRefresh, GPU: -1, Seq: 2, UnixNanos: 20}
	rec.RecordControl(&ctrl)
	got := rec.Snapshot()
	if len(got) != 3 {
		t.Fatalf("merged snapshot holds %d events, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].UnixNanos < got[i-1].UnixNanos {
			t.Fatalf("snapshot not time-sorted: %v", got)
		}
	}
	if rec.Recorded() != 3 {
		t.Fatalf("Recorded() = %d, want 3", rec.Recorded())
	}
}

func TestRecorderSlowestBatch(t *testing.T) {
	rec := NewRecorder(2, 8)
	for i, lat := range []float64{0.001, 0.050, 0.002} {
		e := batchEvent(int32(i%2), int64(i), lat, int64(100+i))
		rec.Ring(i % 2).Record(&e)
	}
	ex, ok := rec.SlowestBatch(0)
	if !ok || ex.Seq != 1 || ex.V[BatchLatencySeconds] != 0.050 {
		t.Fatalf("SlowestBatch = %+v ok=%v, want seq 1 at 50ms", ex, ok)
	}
	// The since bound excludes the slowest; the later, faster one wins.
	ex, ok = rec.SlowestBatch(102)
	if !ok || ex.Seq != 2 {
		t.Fatalf("SlowestBatch(since) = %+v ok=%v, want seq 2", ex, ok)
	}
	if _, ok := rec.SlowestBatch(1000); ok {
		t.Fatal("SlowestBatch past the end found something")
	}
}

func TestWriteJSONLParses(t *testing.T) {
	rec := NewRecorder(1, 8)
	e := batchEvent(0, 9, 0.004, 1)
	rec.Ring(0).Record(&e)
	d := Event{Kind: KindDrift, GPU: -1, UnixNanos: 2}
	d.V[DriftScore] = 0.42
	d.V[DriftDrifted] = 1
	rec.RecordControl(&d)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %q does not parse: %v", sc.Text(), err)
		}
		kinds = append(kinds, obj["kind"].(string))
		switch obj["kind"] {
		case "batch":
			if obj["latency_s"].(float64) != 0.004 || obj["seq"].(float64) != 9 {
				t.Fatalf("batch line = %v", obj)
			}
		case "drift":
			if obj["score"].(float64) != 0.42 || obj["drifted"].(float64) != 1 {
				t.Fatalf("drift line = %v", obj)
			}
			if obj["gpu"].(float64) != -1 {
				t.Fatalf("drift gpu = %v, want -1", obj["gpu"])
			}
		}
	}
	if strings.Join(kinds, ",") != "batch,drift" {
		t.Fatalf("kinds = %v", kinds)
	}
}

// TestRecordNoAlloc pins the zero-allocation contract of the recording path.
func TestRecordNoAlloc(t *testing.T) {
	r := NewRing(64)
	e := batchEvent(0, 1, 0.001, 123)
	if n := testing.AllocsPerRun(1000, func() { r.Record(&e) }); n != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", n)
	}
}
