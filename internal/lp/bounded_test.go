package lp

import (
	"math"
	"sync"
	"testing"

	"ugache/internal/rng"
)

// randomProblem builds a feasible-ish random LP: ≤ rows with nonnegative
// coefficients are always feasible at x = 0.
func randomProblem(t *testing.T, r *rng.Rand, nVars, nCons int) *Problem {
	t.Helper()
	obj := make([]float64, nVars)
	for j := range obj {
		obj[j] = r.Float64()*4 - 2
	}
	p, err := NewProblem(nVars, obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nCons; i++ {
		coefs := make([]Coef, 0, nVars)
		for j := 0; j < nVars; j++ {
			coefs = append(coefs, Coef{Var: j, Value: r.Float64() * 3})
		}
		if err := p.AddConstraint(coefs, LE, 1+r.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestSolveBoundedMatchesClone checks the overlay path against the legacy
// Clone-and-AddConstraint path on random instances with random branching
// bounds: identical status, objective, and point.
func TestSolveBoundedMatchesClone(t *testing.T) {
	r := rng.New(7)
	sc := &Scratch{}
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(t, r, 4+r.Intn(5), 3+r.Intn(4))
		nb := r.Intn(4)
		bounds := make([]Bound, 0, nb)
		cloned := p.Clone()
		for k := 0; k < nb; k++ {
			v := r.Intn(p.NumVars())
			op := LE
			if r.Intn(2) == 0 {
				op = GE
			}
			rhs := float64(r.Intn(4))
			bounds = append(bounds, Bound{Var: v, Op: op, RHS: rhs})
			if err := cloned.AddConstraint([]Coef{{Var: v, Value: 1}}, op, rhs); err != nil {
				t.Fatal(err)
			}
		}
		want, err := cloned.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.SolveBounded(bounds, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v vs clone %v", trial, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if got.Objective != want.Objective {
			t.Fatalf("trial %d: objective %g vs clone %g", trial, got.Objective, want.Objective)
		}
		for j := range got.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("trial %d: x[%d] = %g vs clone %g", trial, j, got.X[j], want.X[j])
			}
		}
	}
}

func TestSolveBoundedValidation(t *testing.T) {
	p, _ := NewProblem(2, []float64{1, 1})
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, GE, 1)
	if _, err := p.SolveBounded([]Bound{{Var: 2, Op: LE, RHS: 1}}, nil); err == nil {
		t.Fatal("out-of-range bound var accepted")
	}
	if _, err := p.SolveBounded([]Bound{{Var: 0, Op: LE, RHS: math.NaN()}}, nil); err == nil {
		t.Fatal("NaN bound rhs accepted")
	}
}

// TestSolveBoundedInfeasibleBounds pins that contradictory overlay bounds
// produce Infeasible, the branch-and-bound "dead subtree" signal.
func TestSolveBoundedInfeasibleBounds(t *testing.T) {
	p, _ := NewProblem(1, []float64{1})
	p.AddConstraint([]Coef{{0, 1}}, LE, 10)
	sol, err := p.SolveBounded([]Bound{
		{Var: 0, Op: GE, RHS: 5},
		{Var: 0, Op: LE, RHS: 4},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

// TestScratchReuseAllocFree pins the point of Scratch: after a warm-up
// solve, repeat solves of the same shape allocate nothing.
func TestScratchReuseAllocFree(t *testing.T) {
	r := rng.New(11)
	p := randomProblem(t, r, 8, 6)
	bounds := []Bound{{Var: 0, Op: LE, RHS: 2}, {Var: 3, Op: GE, RHS: 1}}
	sc := &Scratch{}
	if _, err := p.SolveBounded(bounds, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.SolveBounded(bounds, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm SolveBounded allocates %.1f times per run, want 0", allocs)
	}
}

// TestSolutionXAliasesScratch documents the aliasing contract: X from a
// scratch solve is invalidated by the scratch's next use.
func TestSolutionXAliasesScratch(t *testing.T) {
	p, _ := NewProblem(2, []float64{-1, -1})
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 4)
	sc := &Scratch{}
	first, err := p.SolveBounded(nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	kept := first.X
	if _, err := p.SolveBounded([]Bound{{Var: 0, Op: LE, RHS: 1}}, sc); err != nil {
		t.Fatal(err)
	}
	second, err := p.SolveBounded(nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if &kept[0] != &second.X[0] {
		t.Fatal("scratch solves expected to share X backing storage")
	}
}

// TestConcurrentSolveBounded hammers one shared Problem from many
// goroutines with distinct scratches (run under -race).
func TestConcurrentSolveBounded(t *testing.T) {
	r := rng.New(3)
	p := randomProblem(t, r, 10, 8)
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := &Scratch{}
			for it := 0; it < 50; it++ {
				bounds := []Bound{{Var: g % p.NumVars(), Op: LE, RHS: float64(it % 5)}}
				if _, err := p.SolveBounded(bounds, sc); err != nil {
					t.Error(err)
					return
				}
				sol, err := p.SolveBounded(nil, sc)
				if err != nil {
					t.Error(err)
					return
				}
				if sol.Objective != want.Objective {
					t.Errorf("goroutine %d: unbounded solve drifted: %g vs %g", g, sol.Objective, want.Objective)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
