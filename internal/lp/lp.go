// Package lp implements a two-phase primal simplex solver for linear
// programs in the form
//
//	minimize   cᵀx
//	subject to Σ aᵢⱼ xⱼ (≤ | = | ≥) bᵢ,   x ≥ 0.
//
// It is the LP engine behind the exact cache-policy MILP (paper §6.2,
// solved with Gurobi in the original system) via internal/milp's branch and
// bound, and is sized for the small block-granularity models the solver
// builds; the full-scale path uses internal/solver's Lagrangian method
// instead.
//
// The implementation is a dense tableau with Dantzig pricing and a Bland's
// rule fallback for anti-cycling. It is deliberately simple and heavily
// validated rather than fast.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	default:
		return ">="
	}
}

// Coef is one sparse coefficient.
type Coef struct {
	Var   int
	Value float64
}

// Constraint is one row, built sparsely.
type Constraint struct {
	Coefs []Coef
	Op    Op
	RHS   float64
}

// Problem is an LP under construction. Create with NewProblem, add
// constraints, then Solve.
type Problem struct {
	numVars int
	obj     []float64
	cons    []Constraint
}

// NewProblem creates a minimization problem over numVars variables (all
// implicitly ≥ 0) with the given objective coefficients (padded with zeros
// if short).
func NewProblem(numVars int, objective []float64) (*Problem, error) {
	if numVars <= 0 {
		return nil, fmt.Errorf("lp: need at least one variable")
	}
	if len(objective) > numVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(objective), numVars)
	}
	obj := make([]float64, numVars)
	copy(obj, objective)
	return &Problem{numVars: numVars, obj: obj}, nil
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the row count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint appends a row.
func (p *Problem) AddConstraint(coefs []Coef, op Op, rhs float64) error {
	for _, c := range coefs {
		if c.Var < 0 || c.Var >= p.numVars {
			return fmt.Errorf("lp: coefficient references variable %d of %d", c.Var, p.numVars)
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return fmt.Errorf("lp: non-finite coefficient for variable %d", c.Var)
		}
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: non-finite rhs")
	}
	cp := make([]Coef, len(coefs))
	copy(cp, coefs)
	p.cons = append(p.cons, Constraint{Coefs: cp, Op: op, RHS: rhs})
	return nil
}

// Clone returns a deep copy; branch-and-bound adds bound constraints to
// copies without disturbing the parent.
func (p *Problem) Clone() *Problem {
	cp := &Problem{numVars: p.numVars, obj: append([]float64(nil), p.obj...)}
	cp.cons = make([]Constraint, len(p.cons))
	for i, c := range p.cons {
		cp.cons[i] = Constraint{
			Coefs: append([]Coef(nil), c.Coefs...),
			Op:    c.Op, RHS: c.RHS,
		}
	}
	return cp
}

// Status reports the outcome of Solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution holds an LP result.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
}

// ErrTooLarge guards against accidentally feeding the dense tableau a
// full-scale model.
var ErrTooLarge = errors.New("lp: problem too large for the dense solver")

const (
	eps     = 1e-9
	maxSize = 2000 // max rows or columns for the dense tableau
)

// Bound is a single-variable overlay row (coefficient 1 on Var): branch-
// and-bound nodes carry a few of these instead of cloning the whole
// problem, so a branch node costs O(1) extra state rather than a full
// constraint-matrix copy.
type Bound struct {
	Var int
	Op  Op
	RHS float64
}

// Scratch holds the simplex working set — tableau cells, bases, objective
// rows, pricing and result buffers — so repeated solves (branch-and-bound
// nodes) stop allocating once the buffers have grown to the instance size.
// A Scratch may be used by one goroutine at a time; distinct goroutines
// solving the same read-only Problem concurrently must use distinct
// Scratches.
type Scratch struct {
	cells   []float64
	rows    [][]float64
	b       []float64
	basis   []int
	artCols []bool
	phase1  []float64
	phase2  []float64
	rc      []float64
	x       []float64
	tab     tableau
}

// growF returns buf resized to n without zeroing (callers that need zeros
// must clear it themselves).
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func growI(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// Solve runs two-phase primal simplex, returning freshly allocated result
// storage (callers may retain Solution.X indefinitely).
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.SolveBounded(nil, nil)
	if err != nil {
		return nil, err
	}
	return &sol, nil
}

// flipOp mirrors a relation, used when normalizing a row to a nonnegative
// right-hand side.
func flipOp(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return op
}

// SolveBounded solves the problem with the overlay bounds appended as extra
// rows, without copying or mutating the Problem — a Problem is read-only
// under SolveBounded, so any number of goroutines may solve the same
// instance concurrently as long as each brings its own Scratch (nil
// allocates a private one). Solution.X aliases sc's buffers and is valid
// only until sc's next solve; callers that retain it must copy.
func (p *Problem) SolveBounded(bounds []Bound, sc *Scratch) (Solution, error) {
	for _, bd := range bounds {
		if bd.Var < 0 || bd.Var >= p.numVars {
			return Solution{}, fmt.Errorf("lp: bound references variable %d of %d", bd.Var, p.numVars)
		}
		if math.IsNaN(bd.RHS) || math.IsInf(bd.RHS, 0) {
			return Solution{}, fmt.Errorf("lp: non-finite bound rhs for variable %d", bd.Var)
		}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	m := len(p.cons) + len(bounds)
	if m == 0 {
		// Unconstrained: minimum of cᵀx with x ≥ 0 is 0 unless some c < 0.
		for _, c := range p.obj {
			if c < -eps {
				return Solution{Status: Unbounded}, nil
			}
		}
		x := growF(&sc.x, p.numVars)
		for i := range x {
			x[i] = 0
		}
		return Solution{Status: Optimal, X: x}, nil
	}
	if m > maxSize || p.numVars > maxSize*4 {
		return Solution{}, fmt.Errorf("%w: %d rows × %d vars", ErrTooLarge, m, p.numVars)
	}

	// Column layout: [structural | slack/surplus | artificial].
	nStruct := p.numVars
	nSlack := 0
	nArt := 0
	countRow := func(op Op, rhs float64) {
		if rhs < 0 {
			// Normalizing flips the operator.
			op = flipOp(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	for _, c := range p.cons {
		countRow(c.Op, c.RHS)
	}
	for _, bd := range bounds {
		countRow(bd.Op, bd.RHS)
	}
	nCols := nStruct + nSlack + nArt
	t := sc.tableau(m, nCols)

	slackAt := nStruct
	artAt := nStruct + nSlack
	basis := growI(&sc.basis, m)
	artCols := sc.boolRow(nCols)
	// fillRow writes row i. Ordinary constraints pass their sparse Coefs;
	// overlay bounds pass coefs == nil with the implicit single +1 on bvar.
	fillRow := func(i int, coefs []Coef, bvar int, op Op, rhs float64) {
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flipOp(op)
		}
		if coefs != nil {
			for _, cf := range coefs {
				t.a[i][cf.Var] += sign * cf.Value
			}
		} else {
			t.a[i][bvar] += sign
		}
		t.b[i] = rhs
		switch op {
		case LE:
			t.a[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t.a[i][slackAt] = -1
			slackAt++
			t.a[i][artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		case EQ:
			t.a[i][artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		}
	}
	for i, c := range p.cons {
		fillRow(i, c.Coefs, 0, c.Op, c.RHS)
	}
	for k, bd := range bounds {
		fillRow(len(p.cons)+k, nil, bd.Var, bd.Op, bd.RHS)
	}

	rc := growF(&sc.rc, nCols)

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := growF(&sc.phase1, nCols)
		for j := range phase1 {
			if artCols[j] {
				phase1[j] = 1
			} else {
				phase1[j] = 0
			}
		}
		status := t.run(phase1, basis, nil, rc)
		if status == Unbounded {
			return Solution{}, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		if t.objective(phase1, basis) > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot remaining artificials out of the basis when possible.
		for i, bv := range basis {
			if !artCols[bv] {
				continue
			}
			pivoted := false
			for j := 0; j < nCols && !pivoted; j++ {
				if !artCols[j] && math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j, basis)
					pivoted = true
				}
			}
			// A row with no eligible pivot is redundant; the artificial
			// stays basic at value 0, harmless as long as it cannot
			// re-enter (blocked below).
		}
	}

	// Phase 2: original objective, artificials blocked.
	blocked := artCols
	phase2 := growF(&sc.phase2, nCols)
	n := copy(phase2, p.obj)
	for j := n; j < nCols; j++ {
		phase2[j] = 0
	}
	status := t.run(phase2, basis, blocked, rc)
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := growF(&sc.x, p.numVars)
	for i := range x {
		x[i] = 0
	}
	for i, bv := range basis {
		if bv < p.numVars {
			x[bv] = t.b[i]
		}
	}
	objVal := 0.0
	for j, c := range p.obj {
		objVal += c * x[j]
	}
	return Solution{Status: Optimal, Objective: objVal, X: x}, nil
}

// ObjectiveValue evaluates cᵀx for a candidate point (len(x) must equal
// NumVars).
func (p *Problem) ObjectiveValue(x []float64) float64 {
	v := 0.0
	for j, c := range p.obj {
		v += c * x[j]
	}
	return v
}

// Feasible reports whether x satisfies every constraint within tol (scaled
// by the row's magnitude), used to vet warm-start points before adopting
// them as branch-and-bound incumbents.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != p.numVars {
		return false
	}
	for _, c := range p.cons {
		lhs := 0.0
		for _, cf := range c.Coefs {
			lhs += cf.Value * x[cf.Var]
		}
		slack := tol * (1 + math.Abs(c.RHS))
		switch c.Op {
		case LE:
			if lhs > c.RHS+slack {
				return false
			}
		case GE:
			if lhs < c.RHS-slack {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > slack {
				return false
			}
		}
	}
	return true
}

type tableau struct {
	m, n int
	a    [][]float64
	b    []float64
}

// tableau carves an m×n zeroed tableau out of the scratch buffers.
func (sc *Scratch) tableau(m, n int) *tableau {
	need := m * n
	if cap(sc.cells) < need {
		sc.cells = make([]float64, need)
	}
	cells := sc.cells[:need]
	for i := range cells {
		cells[i] = 0
	}
	if cap(sc.rows) < m {
		sc.rows = make([][]float64, m)
	}
	rows := sc.rows[:m]
	for i := 0; i < m; i++ {
		rows[i] = cells[i*n : (i+1)*n : (i+1)*n]
	}
	sc.tab = tableau{m: m, n: n, a: rows, b: growF(&sc.b, m)}
	return &sc.tab
}

func (sc *Scratch) boolRow(n int) []bool {
	if cap(sc.artCols) < n {
		sc.artCols = make([]bool, n)
	}
	row := sc.artCols[:n]
	for i := range row {
		row[i] = false
	}
	return row
}

// reducedCosts computes c_j - c_Bᵀ B⁻¹ A_j for all columns given the
// current basis (the tableau rows are already B⁻¹A).
func (t *tableau) reducedCosts(c []float64, basis []int, out []float64) {
	copy(out, c)
	for i, bv := range basis {
		cb := c[bv]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			out[j] -= cb * row[j]
		}
	}
}

func (t *tableau) objective(c []float64, basis []int) float64 {
	v := 0.0
	for i, bv := range basis {
		v += c[bv] * t.b[i]
	}
	return v
}

// run optimizes the given objective from the current basis. blocked columns
// may not enter; rc is the caller-provided pricing buffer (len ≥ t.n).
func (t *tableau) run(c []float64, basis []int, blocked []bool, rc []float64) Status {
	rc = rc[:t.n]
	// Iteration cap: generous; Bland's rule kicks in late to guarantee
	// termination.
	maxIter := 50 * (t.m + t.n)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		t.reducedCosts(c, basis, rc)
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < t.n; j++ {
				if blocked != nil && blocked[j] {
					continue
				}
				if rc[j] < best {
					best = rc[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < t.n; j++ {
				if blocked != nil && blocked[j] {
					continue
				}
				if rc[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter, basis)
	}
	// Did not converge within the cap; treat the current point as optimal
	// enough (this should not happen on the model sizes we feed it; tests
	// would catch drift).
	return Optimal
}

func (t *tableau) pivot(row, col int, basis []int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		rowR := t.a[row]
		rowI := t.a[i]
		for j := 0; j < t.n; j++ {
			rowI[j] -= f * rowR[j]
		}
		rowI[col] = 0 // exact
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	basis[row] = col
}
