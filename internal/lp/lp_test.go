package lp

import (
	"math"
	"testing"

	"ugache/internal/rng"
)

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantObj(t *testing.T, s *Solution, want float64) {
	t.Helper()
	if s.Status != Optimal {
		t.Fatalf("status %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-want) > 1e-6 {
		t.Fatalf("objective %g, want %g", s.Objective, want)
	}
}

func TestSimpleMin(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=2 (wait: x+y<=4,
	// y<=2 -> y=2, x=2) obj = -6.
	p, err := NewProblem(2, []float64{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Coef{{0, 1}}, LE, 3)
	p.AddConstraint([]Coef{{1, 1}}, LE, 2)
	s := solve(t, p)
	wantObj(t, s, -6)
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y  s.t. x + y = 10, x >= 3, y >= 2 -> obj 10.
	p, _ := NewProblem(2, []float64{1, 1})
	p.AddConstraint([]Coef{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Coef{{0, 1}}, GE, 3)
	p.AddConstraint([]Coef{{1, 1}}, GE, 2)
	s := solve(t, p)
	wantObj(t, s, 10)
	if s.X[0] < 3-1e-6 || s.X[1] < 2-1e-6 {
		t.Fatalf("bounds violated: %v", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p, _ := NewProblem(1, []float64{1})
	p.AddConstraint([]Coef{{0, 1}}, LE, 1)
	p.AddConstraint([]Coef{{0, 1}}, GE, 2)
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status %v", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p, _ := NewProblem(2, []float64{-1, 0})
	p.AddConstraint([]Coef{{1, 1}}, LE, 5) // y <= 5, x free upward
	s := solve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v", s.Status)
	}
}

func TestUnconstrained(t *testing.T) {
	p, _ := NewProblem(2, []float64{1, 2})
	s := solve(t, p)
	wantObj(t, s, 0)
	p2, _ := NewProblem(1, []float64{-1})
	s2 := solve(t, p2)
	if s2.Status != Unbounded {
		t.Fatalf("status %v", s2.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x  s.t. -x <= -3  (i.e. x >= 3) -> 3.
	p, _ := NewProblem(1, []float64{1})
	p.AddConstraint([]Coef{{0, -1}}, LE, -3)
	s := solve(t, p)
	wantObj(t, s, 3)
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP; must terminate and find the optimum.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7 (Beale's cycling example,
	// constraints scaled); optimum is -0.05.
	p, _ := NewProblem(4, []float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]Coef{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Coef{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Coef{{2, 1}}, LE, 1)
	s := solve(t, p)
	wantObj(t, s, -0.05)
}

func TestDietStyle(t *testing.T) {
	// min 2x + 3y s.t. x + 2y >= 8, 3x + y >= 9 -> intersection x=2, y=3,
	// obj 13.
	p, _ := NewProblem(2, []float64{2, 3})
	p.AddConstraint([]Coef{{0, 1}, {1, 2}}, GE, 8)
	p.AddConstraint([]Coef{{0, 3}, {1, 1}}, GE, 9)
	s := solve(t, p)
	wantObj(t, s, 13)
}

func TestMinimaxEncoding(t *testing.T) {
	// The solver package encodes "minimize max_i t_i" as min z, z >= t_i.
	// min z s.t. z >= 3, z >= 5 -> 5.
	p, _ := NewProblem(1, []float64{1})
	p.AddConstraint([]Coef{{0, 1}}, GE, 3)
	p.AddConstraint([]Coef{{0, 1}}, GE, 5)
	s := solve(t, p)
	wantObj(t, s, 5)
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem(0, nil); err == nil {
		t.Fatal("zero vars accepted")
	}
	if _, err := NewProblem(1, []float64{1, 2}); err == nil {
		t.Fatal("oversized objective accepted")
	}
	p, _ := NewProblem(1, []float64{1})
	if err := p.AddConstraint([]Coef{{5, 1}}, LE, 1); err == nil {
		t.Fatal("bad var index accepted")
	}
	if err := p.AddConstraint([]Coef{{0, math.NaN()}}, LE, 1); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	if err := p.AddConstraint([]Coef{{0, 1}}, LE, math.Inf(1)); err == nil {
		t.Fatal("Inf rhs accepted")
	}
}

func TestTooLarge(t *testing.T) {
	p, _ := NewProblem(10, nil)
	for i := 0; i < maxSize+1; i++ {
		p.AddConstraint([]Coef{{0, 1}}, LE, 1)
	}
	if _, err := p.Solve(); err == nil {
		t.Fatal("oversized problem accepted")
	}
}

func TestRandomFeasibilityProperty(t *testing.T) {
	// Random small LPs: any Optimal solution must satisfy every constraint
	// and have non-negative variables.
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		nv := 1 + r.Intn(5)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = r.Float64()*4 - 2
		}
		p, _ := NewProblem(nv, obj)
		nc := 1 + r.Intn(6)
		type row struct {
			coefs []Coef
			op    Op
			rhs   float64
		}
		var rows []row
		for i := 0; i < nc; i++ {
			var coefs []Coef
			for j := 0; j < nv; j++ {
				if r.Float64() < 0.7 {
					coefs = append(coefs, Coef{j, r.Float64()*4 - 2})
				}
			}
			if len(coefs) == 0 {
				coefs = []Coef{{0, 1}}
			}
			op := Op(r.Intn(3))
			rhs := r.Float64()*10 - 2
			rows = append(rows, row{coefs, op, rhs})
			if err := p.AddConstraint(coefs, op, rhs); err != nil {
				t.Fatal(err)
			}
		}
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue
		}
		for j, v := range s.X {
			if v < -1e-7 {
				t.Fatalf("trial %d: x[%d] = %g negative", trial, j, v)
			}
		}
		for i, rw := range rows {
			lhs := 0.0
			for _, c := range rw.coefs {
				lhs += c.Value * s.X[c.Var]
			}
			ok := false
			switch rw.op {
			case LE:
				ok = lhs <= rw.rhs+1e-6
			case GE:
				ok = lhs >= rw.rhs-1e-6
			case EQ:
				ok = math.Abs(lhs-rw.rhs) <= 1e-6
			}
			if !ok {
				t.Fatalf("trial %d: constraint %d violated: lhs=%g %v rhs=%g",
					trial, i, lhs, rw.op, rw.rhs)
			}
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings")
	}
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Fatal("op strings")
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A ~400-variable, ~200-row random-feasible LP.
	build := func() *Problem {
		r := rng.New(5)
		nv := 400
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = r.Float64()
		}
		p, _ := NewProblem(nv, obj)
		for i := 0; i < 200; i++ {
			var coefs []Coef
			for j := 0; j < 8; j++ {
				coefs = append(coefs, Coef{Var: r.Intn(nv), Value: r.Float64() + 0.1})
			}
			p.AddConstraint(coefs, GE, r.Float64())
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := build().Solve()
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}
