package sim

import (
	"math"
	"testing"

	"ugache/internal/rng"
)

// TestRunPhysicalBounds drives the engine with random topologies and
// demands and checks physics: no demand beats its own core rate or its
// narrowest link, and the makespan is at least every link's aggregate
// lower bound.
func TestRunPhysicalBounds(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 300; trial++ {
		var topo Topology
		nLinks := 1 + r.Intn(6)
		for l := 0; l < nLinks; l++ {
			topo.AddLink("l", 1+r.Float64()*99)
		}
		nDemands := 1 + r.Intn(6)
		demands := make([]Demand, 0, nDemands)
		for d := 0; d < nDemands; d++ {
			pathLen := 1 + r.Intn(2)
			path := make([]LinkID, 0, pathLen)
			for k := 0; k < pathLen; k++ {
				path = append(path, LinkID(r.Intn(nLinks)))
			}
			padTo := -1
			if d > 0 && r.Float64() < 0.3 {
				padTo = r.Intn(d) // pad into an earlier demand
			}
			demands = append(demands, Demand{
				Bytes: 1 + r.Float64()*999,
				Cores: 1 + float64(r.Intn(32)),
				RCore: 0.5 + r.Float64()*4,
				Path:  path,
				PadTo: padTo,
			})
		}
		res, err := topo.Run(demands)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Per-link aggregate bound: carried bytes / capacity <= makespan.
		for l, bytes := range res.LinkBytes {
			if bytes/topo.Links[l].Capacity > res.Makespan*(1+1e-6)+1e-9 {
				t.Fatalf("trial %d: link %d carried %g bytes over cap %g within %g s",
					trial, l, bytes, topo.Links[l].Capacity, res.Makespan)
			}
		}
		// Per-demand: cannot finish faster than its own narrowest link
		// allows for its bytes (even with every core).
		for i, d := range demands {
			minCap := math.Inf(1)
			for _, l := range d.Path {
				if c := topo.Links[l].Capacity; c < minCap {
					minCap = c
				}
			}
			if lb := d.Bytes / minCap; res.Finish[i] < lb*(1-1e-6)-1e-9 {
				t.Fatalf("trial %d: demand %d finished at %g, link bound %g",
					trial, i, res.Finish[i], lb)
			}
		}
		// Byte conservation per link.
		want := make([]float64, nLinks)
		for _, d := range demands {
			for _, l := range d.Path {
				want[l] += d.Bytes
			}
		}
		for l := range want {
			if math.Abs(want[l]-res.LinkBytes[l]) > 1e-6*(1+want[l]) {
				t.Fatalf("trial %d: link %d carried %g, want %g", trial, l, res.LinkBytes[l], want[l])
			}
		}
	}
}

// TestRunMonotoneInBytes checks that adding bytes to any demand cannot
// shrink the makespan.
func TestRunMonotoneInBytes(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 100; trial++ {
		var topo Topology
		a := topo.AddLink("a", 10+r.Float64()*90)
		b := topo.AddLink("b", 10+r.Float64()*90)
		base := []Demand{
			{Bytes: 100 + r.Float64()*400, Cores: 8, RCore: 2, Path: []LinkID{a}, PadTo: -1},
			{Bytes: 100 + r.Float64()*400, Cores: 8, RCore: 2, Path: []LinkID{a, b}, PadTo: -1},
			{Bytes: 100 + r.Float64()*400, Cores: 8, RCore: 2, Path: []LinkID{b}, PadTo: -1},
		}
		r1, err := topo.Run(append([]Demand(nil), base...))
		if err != nil {
			t.Fatal(err)
		}
		bigger := append([]Demand(nil), base...)
		idx := r.Intn(len(bigger))
		bigger[idx].Bytes *= 1.5
		r2, err := topo.Run(bigger)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Makespan < r1.Makespan*(1-1e-9) {
			t.Fatalf("trial %d: makespan shrank from %g to %g after adding bytes",
				trial, r1.Makespan, r2.Makespan)
		}
	}
}

// TestProportionalAtLeastAsSlowAsDedicated checks the mixed-queue model
// never beats a well-dedicated run of the same demands (work conservation:
// random dispatch cannot create bandwidth).
func TestProportionalAtLeastAsSlowAsDedicated(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 60; trial++ {
		var topo Topology
		fast := topo.AddLink("fast", 100)
		slow := topo.AddLink("slow", 5+r.Float64()*10)
		fastB := 200 + r.Float64()*800
		slowB := 20 + r.Float64()*80
		cores := 16.0

		prop, err := topo.RunProportional([]PoolDemand{
			{Pool: 0, Bytes: fastB, RCore: 2, Path: []LinkID{fast}},
			{Pool: 0, Bytes: slowB, RCore: 2, Path: []LinkID{slow}},
		}, []Pool{{Cores: cores}})
		if err != nil {
			t.Fatal(err)
		}
		// Work-conserving lower bound: max(core-time, per-link bounds).
		coreBound := (fastB + slowB) / (cores * 2)
		linkBound := math.Max(fastB/100, slowB/topo.Links[slow].Capacity)
		lb := math.Max(coreBound, linkBound)
		if prop.PoolTime[0] < lb*(1-1e-6) {
			t.Fatalf("trial %d: proportional %g beat the physical bound %g",
				trial, prop.PoolTime[0], lb)
		}
	}
}
