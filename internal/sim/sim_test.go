package sim

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestSingleDemandCoreBound(t *testing.T) {
	var topo Topology
	hbm := topo.AddLink("hbm", 1000)
	// 10 cores at 1 B/s each over a 1000 B/s link: core-bound, rate 10.
	res, err := topo.Run([]Demand{{Label: "local", Bytes: 100, Cores: 10, RCore: 1, Path: []LinkID{hbm}, PadTo: -1}})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 10, 1e-9, "finish")
	almost(t, res.LinkBytes[hbm], 100, 1e-9, "carried")
}

func TestSingleDemandLinkBound(t *testing.T) {
	var topo Topology
	pcie := topo.AddLink("pcie", 5)
	// 100 cores want 100 B/s but the link caps at 5.
	res, err := topo.Run([]Demand{{Bytes: 50, Cores: 100, RCore: 1, Path: []LinkID{pcie}, PadTo: -1}})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 10, 1e-9, "finish")
	almost(t, res.Utilization(&topo, pcie), 1, 1e-9, "utilization")
}

func TestToleranceCurve(t *testing.T) {
	// Bandwidth as a function of cores must rise linearly then plateau at
	// the link capacity — the shape of paper Fig. 6.
	var topo Topology
	link := topo.AddLink("nvlink", 50)
	prev := 0.0
	for cores := 1; cores <= 100; cores += 7 {
		res, err := topo.Run([]Demand{{Bytes: 1000, Cores: float64(cores), RCore: 1, Path: []LinkID{link}, PadTo: -1}})
		if err != nil {
			t.Fatal(err)
		}
		bw := 1000 / res.Finish[0]
		want := math.Min(float64(cores), 50)
		almost(t, bw, want, 1e-6, "bandwidth")
		if bw+1e-9 < prev {
			t.Fatalf("bandwidth decreased: %g -> %g at %d cores", prev, bw, cores)
		}
		prev = bw
	}
}

func TestWeightedFairShare(t *testing.T) {
	var topo Topology
	link := topo.AddLink("shared", 30)
	// Two flows on one link, 20 and 10 cores, both core rates high enough to
	// be link-bound: they should split 20:10.
	res, err := topo.Run([]Demand{
		{Bytes: 200, Cores: 20, RCore: 100, Path: []LinkID{link}, PadTo: -1},
		{Bytes: 100, Cores: 10, RCore: 100, Path: []LinkID{link}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rates 20 and 10 B/s: both finish at t=10.
	almost(t, res.Finish[0], 10, 1e-9, "flow0")
	almost(t, res.Finish[1], 10, 1e-9, "flow1")
}

func TestCapFrozenFlowReleasesBandwidth(t *testing.T) {
	var topo Topology
	link := topo.AddLink("shared", 100)
	// Flow A's per-core cap (10) is below its fair share (100/5 per core):
	// it freezes at 10 and flow B takes the remaining 90.
	res, err := topo.Run([]Demand{
		{Bytes: 100, Cores: 1, RCore: 10, Path: []LinkID{link}, PadTo: -1},
		{Bytes: 900, Cores: 4, RCore: 100, Path: []LinkID{link}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 10, 1e-9, "capped flow")
	almost(t, res.Finish[1], 10, 1e-9, "big flow")
}

func TestPaddingTransfersCores(t *testing.T) {
	var topo Topology
	remote := topo.AddLink("nvlink", 10)
	local := topo.AddLink("hbm", 1000)
	// Remote group: 10 cores, finishes at t=1 (link-bound at 10 B/s).
	// Local demand starts with 10 cores (rate 10); after t=1 it has 20.
	res, err := topo.Run([]Demand{
		{Label: "remote", Bytes: 10, Cores: 10, RCore: 1, Path: []LinkID{remote}, PadTo: 1},
		{Label: "local", Bytes: 30, Cores: 10, RCore: 1, Path: []LinkID{local}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 1, 1e-9, "remote")
	// Local: 10 bytes in first second, then 20 B/s for remaining 20 bytes.
	almost(t, res.Finish[1], 2, 1e-9, "local padded")

	// Without padding the local demand takes 3s.
	res2, err := topo.Run([]Demand{
		{Label: "remote", Bytes: 10, Cores: 10, RCore: 1, Path: []LinkID{remote}, PadTo: -1},
		{Label: "local", Bytes: 30, Cores: 10, RCore: 1, Path: []LinkID{local}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res2.Finish[1], 3, 1e-9, "local unpadded")
}

func TestPaddingIntoZeroCoreDemand(t *testing.T) {
	var topo Topology
	l := topo.AddLink("hbm", 1000)
	res, err := topo.Run([]Demand{
		{Bytes: 10, Cores: 10, RCore: 1, Path: []LinkID{l}, PadTo: 1},
		{Bytes: 10, Cores: 0, Path: []LinkID{l}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 1, 1e-9, "first")
	almost(t, res.Finish[1], 2, 1e-9, "second inherits cores")
}

func TestStarvedDemand(t *testing.T) {
	var topo Topology
	l := topo.AddLink("hbm", 1000)
	_, err := topo.Run([]Demand{{Bytes: 10, Cores: 0, Path: []LinkID{l}, PadTo: -1}})
	if err != ErrStarved {
		t.Fatalf("got %v, want ErrStarved", err)
	}
}

func TestZeroByteDemand(t *testing.T) {
	var topo Topology
	l := topo.AddLink("hbm", 1000)
	res, err := topo.Run([]Demand{{Bytes: 0, Cores: 0, Path: []LinkID{l}, PadTo: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[0] != 0 || res.Makespan != 0 {
		t.Fatalf("zero-byte demand: %+v", res)
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	var topo Topology
	wide := topo.AddLink("src-hbm", 100)
	narrow := topo.AddLink("nvlink", 10)
	res, err := topo.Run([]Demand{{Bytes: 100, Cores: 50, RCore: 1, Path: []LinkID{wide, narrow}, PadTo: -1}})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Finish[0], 10, 1e-9, "narrowest link binds")
	almost(t, res.LinkBytes[wide], 100, 1e-9, "bytes on wide")
	almost(t, res.LinkBytes[narrow], 100, 1e-9, "bytes on narrow")
}

func TestRunDeterminism(t *testing.T) {
	build := func() (*Topology, []Demand) {
		var topo Topology
		a := topo.AddLink("a", 13)
		b := topo.AddLink("b", 7)
		return &topo, []Demand{
			{Bytes: 101, Cores: 9, RCore: 2, Path: []LinkID{a}, PadTo: 2},
			{Bytes: 53, Cores: 3, RCore: 2, Path: []LinkID{a, b}, PadTo: 2},
			{Bytes: 211, Cores: 4, RCore: 2, Path: []LinkID{b}, PadTo: -1},
		}
	}
	t1, d1 := build()
	t2, d2 := build()
	r1, err1 := t1.Run(d1)
	r2, err2 := t2.Run(d2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range r1.Finish {
		if r1.Finish[i] != r2.Finish[i] {
			t.Fatalf("nondeterministic finish %d", i)
		}
	}
}

func TestInvalidDemands(t *testing.T) {
	var topo Topology
	l := topo.AddLink("l", 1)
	cases := []Demand{
		{Bytes: -1, Cores: 1, RCore: 1, Path: []LinkID{l}, PadTo: -1},
		{Bytes: 1, Cores: -1, RCore: 1, Path: []LinkID{l}, PadTo: -1},
		{Bytes: 1, Cores: 1, RCore: 0, Path: []LinkID{l}, PadTo: -1},
		{Bytes: 1, Cores: 1, RCore: 1, Path: []LinkID{99}, PadTo: -1},
		{Bytes: 1, Cores: 1, RCore: 1, Path: []LinkID{l}, PadTo: 5},
	}
	for i, d := range cases {
		if _, err := topo.Run([]Demand{d}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestProportionalSingleSource(t *testing.T) {
	var topo Topology
	hbm := topo.AddLink("hbm", 1000)
	res, err := topo.RunProportional(
		[]PoolDemand{{Pool: 0, Bytes: 100, RCore: 1, Path: []LinkID{hbm}}},
		[]Pool{{Cores: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.PoolTime[0], 10, 1e-6, "single source pool time")
}

func TestProportionalMixedQueueFixedPoint(t *testing.T) {
	// With identical per-core rates the fluid fixed point must land on the
	// work-conserving bound: max(PCIe bound, total core work / C). The real
	// random-dispatch penalty (reduced per-core MLP from mixed-source
	// divergence) is applied by the extractor as a degraded RCore; here we
	// verify both the undegraded fixed point and that degrading RCore slows
	// the mixed queue while factored dedication keeps full-rate cores.
	var topo Topology
	hbm := topo.AddLink("hbm", 1000)
	pcie := topo.AddLink("pcie", 5)

	const cores, rcore = 80.0, 1.0
	localBytes, hostBytes := 900.0, 50.0

	prop, err := topo.RunProportional(
		[]PoolDemand{
			{Pool: 0, Bytes: localBytes, RCore: rcore, Path: []LinkID{hbm}},
			{Pool: 0, Bytes: hostBytes, RCore: rcore, Path: []LinkID{pcie}},
		},
		[]Pool{{Cores: cores}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Work-conserving bound: (900+50)/80 = 11.875 (host link untouched:
	// only ~4 cores land on PCIe, below its 5-core tolerance).
	almost(t, prop.PoolTime[0], 11.875, 0.2, "undegraded fixed point")

	// Degraded per-core rate (divergence factor 0.6) slows the mixed queue.
	degraded, err := topo.RunProportional(
		[]PoolDemand{
			{Pool: 0, Bytes: localBytes, RCore: 0.6 * rcore, Path: []LinkID{hbm}},
			{Pool: 0, Bytes: hostBytes, RCore: 0.6 * rcore, Path: []LinkID{pcie}},
		},
		[]Pool{{Cores: cores}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.PoolTime[0] <= prop.PoolTime[0]*1.2 {
		t.Fatalf("divergence penalty had no effect: %g vs %g", degraded.PoolTime[0], prop.PoolTime[0])
	}

	// Factored with full-rate dedicated cores beats the degraded mixed
	// queue: dedicate the PCIe tolerance (5 cores) to host, pad into local.
	fact, err := topo.Run([]Demand{
		{Bytes: hostBytes, Cores: 5, RCore: rcore, Path: []LinkID{pcie}, PadTo: 1},
		{Bytes: localBytes, Cores: cores - 5, RCore: rcore, Path: []LinkID{hbm}, PadTo: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fact.Makespan, 12, 0.5, "factored near optimal")
	if fact.Makespan >= degraded.PoolTime[0] {
		t.Fatalf("factored (%g) not faster than degraded random dispatch (%g)",
			fact.Makespan, degraded.PoolTime[0])
	}
}

func TestProportionalConservation(t *testing.T) {
	var topo Topology
	a := topo.AddLink("a", 10)
	b := topo.AddLink("b", 10)
	res, err := topo.RunProportional(
		[]PoolDemand{
			{Pool: 0, Bytes: 40, RCore: 1, Path: []LinkID{a}},
			{Pool: 1, Bytes: 60, RCore: 1, Path: []LinkID{a, b}},
		},
		[]Pool{{Cores: 8}, {Cores: 8}},
	)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.LinkBytes[a], 100, 1e-9, "link a bytes")
	almost(t, res.LinkBytes[b], 60, 1e-9, "link b bytes")
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestProportionalValidation(t *testing.T) {
	var topo Topology
	l := topo.AddLink("l", 1)
	bad := [][]PoolDemand{
		{{Pool: 5, Bytes: 1, RCore: 1, Path: []LinkID{l}}},
		{{Pool: 0, Bytes: -1, RCore: 1, Path: []LinkID{l}}},
		{{Pool: 0, Bytes: 1, RCore: 0, Path: []LinkID{l}}},
		{{Pool: 0, Bytes: 1, RCore: 1, Path: []LinkID{42}}},
	}
	for i, ds := range bad {
		if _, err := topo.RunProportional(ds, []Pool{{Cores: 4}}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := topo.RunProportional(
		[]PoolDemand{{Pool: 0, Bytes: 1, RCore: 1, Path: []LinkID{l}}},
		[]Pool{{Cores: 0}},
	); err == nil {
		t.Error("zero-core pool with bytes: expected error")
	}
}

func TestAddLinkPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var topo Topology
	topo.AddLink("bad", 0)
}

func BenchmarkRunEightGPUExtraction(b *testing.B) {
	// Shape of one 8-GPU factored extraction: per GPU, 1 host + 7 remote +
	// 1 local demand.
	var topo Topology
	host := topo.AddLink("dram", 60e9)
	hbm := make([]LinkID, 8)
	out := make([]LinkID, 8)
	in := make([]LinkID, 8)
	pcie := make([]LinkID, 8)
	for g := 0; g < 8; g++ {
		hbm[g] = topo.AddLink("hbm", 650e9)
		out[g] = topo.AddLink("out", 270e9)
		in[g] = topo.AddLink("in", 270e9)
		pcie[g] = topo.AddLink("pcie", 25e9)
	}
	var demands []Demand
	for g := 0; g < 8; g++ {
		local := len(demands)
		demands = append(demands, Demand{Bytes: 500e6, Cores: 0, RCore: 6e9, Path: []LinkID{hbm[g]}, PadTo: -1})
		demands = append(demands, Demand{Bytes: 20e6, Cores: 4, RCore: 6e9, Path: []LinkID{host, pcie[g]}, PadTo: local})
		for r := 0; r < 8; r++ {
			if r == g {
				continue
			}
			demands = append(demands, Demand{Bytes: 60e6, Cores: 14, RCore: 6e9, Path: []LinkID{hbm[r], out[r], in[g]}, PadTo: local})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.Run(demands); err != nil {
			b.Fatal(err)
		}
	}
}
