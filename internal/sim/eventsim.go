package sim

import (
	"fmt"
	"math"
	"sort"
)

// RunEvent is an independent, discrete-event cross-check of Run: instead of
// fluid phases, it simulates individual cores drawing fixed-size chunks of
// work from each demand's queue, paying per-chunk transfer times under
// instantaneous fair link sharing. It is O(chunks · links) — far slower
// than the fluid engine — and exists purely to validate Run's results on
// small inputs (the two models must agree within the chunk-quantization
// error).
//
// chunkBytes sets the work granularity (smaller = closer to the fluid
// limit, slower).
func (t *Topology) RunEvent(demands []Demand, chunkBytes float64) (*Result, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("sim: chunkBytes must be positive")
	}
	// Validate like Run.
	for i, d := range demands {
		if d.Bytes < 0 || d.Cores < 0 || (d.Cores > 0 && d.RCore <= 0) {
			return nil, fmt.Errorf("sim: demand %d invalid", i)
		}
		for _, l := range d.Path {
			if int(l) < 0 || int(l) >= len(t.Links) {
				return nil, fmt.Errorf("sim: demand %d references unknown link %d", i, l)
			}
		}
		if d.PadTo >= len(demands) {
			return nil, fmt.Errorf("sim: demand %d pads into unknown demand %d", i, d.PadTo)
		}
	}

	type core struct {
		demand int     // demand whose chunk this core is serving (-1 idle)
		rem    float64 // bytes left in the current chunk
	}
	// Integer core counts approximate the (possibly fractional) dedication.
	var cores []core
	remaining := make([]float64, len(demands)) // unchunked queue bytes
	chunksOut := make([]int, len(demands))     // chunks in flight
	coreCount := make([]int, len(demands))
	finish := make([]float64, len(demands))
	done := make([]bool, len(demands))
	for i, d := range demands {
		remaining[i] = d.Bytes
		n := int(math.Round(d.Cores))
		coreCount[i] = n
		if d.Bytes == 0 {
			done[i] = true
		}
		for c := 0; c < n; c++ {
			cores = append(cores, core{demand: i})
		}
	}

	// assign hands an idle core a chunk from its demand's queue.
	assign := func(c *core) {
		d := c.demand
		if d < 0 || remaining[d] <= 0 {
			c.rem = 0
			return
		}
		chunk := math.Min(chunkBytes, remaining[d])
		remaining[d] -= chunk
		c.rem = chunk
		chunksOut[d]++
	}
	for i := range cores {
		assign(&cores[i])
	}

	now := 0.0
	guard := 0
	maxSteps := 4 * int(totalBytes(demands)/chunkBytes+10) * (len(demands) + 1)
	for {
		guard++
		if guard > maxSteps {
			return nil, fmt.Errorf("sim: event simulation did not converge")
		}
		// Instantaneous rates: fair share per active core over its path.
		type flowAgg struct {
			cores int
			rcore float64
		}
		active := map[int]*flowAgg{}
		for i := range cores {
			c := &cores[i]
			if c.rem > 0 {
				fa := active[c.demand]
				if fa == nil {
					fa = &flowAgg{rcore: demands[c.demand].RCore}
					active[c.demand] = fa
				}
				fa.cores++
			}
		}
		if len(active) == 0 {
			break
		}
		// Water-fill across demands with active chunks (reuse allocate).
		var flows []*flow
		idx := map[int]*flow{}
		for d, fa := range active {
			f := &flow{
				idx: d, cores: float64(fa.cores), rcore: fa.rcore,
				path: demands[d].Path, padTo: -1,
			}
			flows = append(flows, f)
			idx[d] = f
		}
		sort.Slice(flows, func(i, j int) bool { return flows[i].idx < flows[j].idx })
		t.allocate(flows, make([]float64, len(t.Links)), make([]float64, len(t.Links)))

		// Advance to the next chunk completion.
		dt := math.Inf(1)
		for i := range cores {
			c := &cores[i]
			if c.rem <= 0 {
				continue
			}
			f := idx[c.demand]
			perCore := f.rate / f.cores
			if perCore <= 0 {
				continue
			}
			if d := c.rem / perCore; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			return nil, ErrStarved
		}
		now += dt
		for i := range cores {
			c := &cores[i]
			if c.rem <= 0 {
				continue
			}
			f := idx[c.demand]
			perCore := f.rate / f.cores
			c.rem -= perCore * dt
			if c.rem <= 1e-9*chunkBytes {
				c.rem = 0
				d := c.demand
				chunksOut[d]--
				if remaining[d] > 0 {
					assign(c)
				} else if chunksOut[d] == 0 && !done[d] {
					done[d] = true
					finish[d] = now
					// Hand cores to the pad target.
					if pt := demands[d].PadTo; pt >= 0 && !done[pt] {
						for j := range cores {
							if cores[j].demand == d && cores[j].rem == 0 {
								cores[j].demand = pt
								assign(&cores[j])
							}
						}
					}
				}
			}
		}
	}
	for i := range demands {
		if !done[i] {
			return nil, ErrStarved
		}
	}
	res := &Result{Finish: finish, LinkBytes: make([]float64, len(t.Links))}
	for i, d := range demands {
		for _, l := range d.Path {
			res.LinkBytes[l] += d.Bytes
		}
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
	}
	return res, nil
}

func totalBytes(demands []Demand) float64 {
	s := 0.0
	for _, d := range demands {
		s += d.Bytes
	}
	return s
}
