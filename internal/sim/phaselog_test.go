package sim

import (
	"math"
	"testing"
)

// TestPhaseLogRecording checks that a recording RunWith reproduces the
// run's structure: phase boundaries cover [0, makespan], per-link phase
// rates integrate back to LinkBytes, and no rate exceeds link capacity.
func TestPhaseLogRecording(t *testing.T) {
	var topo Topology
	hbm := topo.AddLink("hbm", 1000)
	nv := topo.AddLink("nvlink", 50)
	demands := []Demand{
		{Label: "local", Bytes: 400, Cores: 10, RCore: 1, Path: []LinkID{hbm}, PadTo: -1},
		{Label: "remote", Bytes: 100, Cores: 100, RCore: 1, Path: []LinkID{nv, hbm}, PadTo: 0},
	}
	sc := &RunScratch{Record: true}
	res, err := topo.RunWith(demands, sc)
	if err != nil {
		t.Fatal(err)
	}
	log := res.Phases
	if log == nil || log.Phases() == 0 {
		t.Fatal("recording run returned no phase log")
	}
	if log.Links != len(topo.Links) {
		t.Fatalf("log stride %d, want %d links", log.Links, len(topo.Links))
	}
	last := 0.0
	for p := 0; p < log.Phases(); p++ {
		if log.T[p] <= last {
			t.Fatalf("phase %d ends at %g, not after %g", p, log.T[p], last)
		}
		last = log.T[p]
	}
	almost(t, last, res.Makespan, 1e-9, "final phase boundary")

	// Integrate rate over phases per link and compare with LinkBytes.
	for l := range topo.Links {
		integ, start := 0.0, 0.0
		for p := 0; p < log.Phases(); p++ {
			rate := log.RateAt(p, LinkID(l))
			if rate > topo.Links[l].Capacity+1e-9 {
				t.Fatalf("link %d phase %d rate %g exceeds capacity %g",
					l, p, rate, topo.Links[l].Capacity)
			}
			integ += rate * (log.T[p] - start)
			start = log.T[p]
		}
		almost(t, integ, res.LinkBytes[l], 1e-6, "integrated phase rates")
	}
}

// TestPhaseLogReusedAcrossRuns checks the reset semantics: the second run's
// log replaces the first's, and a non-recording scratch leaves Phases nil.
func TestPhaseLogReusedAcrossRuns(t *testing.T) {
	var topo Topology
	link := topo.AddLink("l", 10)
	sc := &RunScratch{Record: true}
	one := []Demand{{Bytes: 100, Cores: 10, RCore: 1, Path: []LinkID{link}, PadTo: -1}}
	if _, err := topo.RunWith(one, sc); err != nil {
		t.Fatal(err)
	}
	firstPhases := sc.Log.Phases()
	res, err := topo.RunWith(one, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Phases() != firstPhases {
		t.Fatalf("second identical run recorded %d phases, first %d",
			res.Phases.Phases(), firstPhases)
	}
	sc.Record = false
	res, err = topo.RunWith(one, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != nil {
		t.Fatal("non-recording run still exposed a phase log")
	}
}

// TestUtilizationGuards checks the zero-capacity and zero-makespan guards:
// utilization must report 0, never ±Inf or NaN.
func TestUtilizationGuards(t *testing.T) {
	topo := &Topology{Links: []Link{{Name: "dead", Capacity: 0}, {Name: "live", Capacity: 10}}}
	res := &Result{Makespan: 2, LinkBytes: []float64{5, 10}}
	if u := res.Utilization(topo, 0); u != 0 {
		t.Fatalf("zero-capacity link utilization = %g, want 0", u)
	}
	almost(t, res.Utilization(topo, 1), 0.5, 1e-9, "live link utilization")
	empty := &Result{Makespan: 0, LinkBytes: []float64{0, 0}}
	for l := range topo.Links {
		if u := empty.Utilization(topo, LinkID(l)); u != 0 || math.IsNaN(u) {
			t.Fatalf("zero-makespan utilization = %g, want 0", u)
		}
	}
}
