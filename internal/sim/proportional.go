package sim

import (
	"fmt"
	"math"
)

// PoolDemand is a demand participating in a proportional-drain run: it
// belongs to a core pool (a destination GPU) and, unlike Run's dedicated
// groups, has no fixed core count — cores distribute across the pool's
// demands the way randomly dispatched cores do.
type PoolDemand struct {
	Label string
	Pool  int // core pool (destination GPU) index
	Bytes float64
	RCore float64
	Path  []LinkID
}

// Pool describes one destination GPU's core budget.
type Pool struct {
	Cores float64
}

// ProportionalResult reports a RunProportional outcome.
type ProportionalResult struct {
	// PoolTime[p] is the completion time of pool p's mixed queue.
	PoolTime []float64
	// Makespan is the maximum pool time.
	Makespan float64
	// LinkBytes[l] is the total bytes carried by link l.
	LinkBytes []float64
	// CoreShare[i] is the converged fraction of the pool's cores occupied by
	// demand i; cores beyond a link's tolerance show up here as stall.
	CoreShare []float64
}

// RunProportional models the peer-based, randomly dispatched extraction of
// prior systems (paper §5.2): every core of a destination GPU draws keys
// from one mixed queue, so all sources drain proportionally and cores pile
// onto slow links, stalling there. The converged core distribution is the
// fixed point where all of a pool's demands finish together (or cannot be
// helped by more cores because the link, not the core, is the bottleneck).
func (t *Topology) RunProportional(demands []PoolDemand, pools []Pool) (*ProportionalResult, error) {
	n := len(demands)
	res := &ProportionalResult{
		PoolTime:  make([]float64, len(pools)),
		LinkBytes: make([]float64, len(t.Links)),
		CoreShare: make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}
	poolBytes := make([]float64, len(pools))
	for i, d := range demands {
		if d.Pool < 0 || d.Pool >= len(pools) {
			return nil, fmt.Errorf("sim: demand %d (%s) references unknown pool %d", i, d.Label, d.Pool)
		}
		if d.Bytes < 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) has negative bytes", i, d.Label)
		}
		if d.RCore <= 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) has RCore %g", i, d.Label, d.RCore)
		}
		for _, l := range d.Path {
			if int(l) < 0 || int(l) >= len(t.Links) {
				return nil, fmt.Errorf("sim: demand %d (%s) references unknown link %d", i, d.Label, l)
			}
		}
		poolBytes[d.Pool] += d.Bytes
	}
	for p, pl := range pools {
		if pl.Cores <= 0 && poolBytes[p] > 0 {
			return nil, fmt.Errorf("sim: pool %d has no cores but %g bytes", p, poolBytes[p])
		}
	}

	// Initial shares proportional to bytes.
	share := make([]float64, n)
	for i, d := range demands {
		if poolBytes[d.Pool] > 0 {
			share[i] = d.Bytes / poolBytes[d.Pool]
		}
	}

	flows := make([]*flow, n)
	for i, d := range demands {
		flows[i] = &flow{idx: i, rem: d.Bytes, rcore: d.RCore, path: d.Path, padTo: -1}
	}
	const (
		iters   = 120
		damping = 0.5
		floor   = 1e-6
	)
	rates := make([]float64, n)
	resid := make([]float64, len(t.Links))
	weight := make([]float64, len(t.Links))
	for it := 0; it < iters; it++ {
		// Instantaneous allocation under the current core split.
		var active []*flow
		for i, f := range flows {
			f.cores = share[i] * pools[demands[i].Pool].Cores
			f.done = demands[i].Bytes == 0
			if !f.done {
				active = append(active, f)
			}
		}
		t.allocate(active, resid, weight)
		for i, f := range flows {
			rates[i] = f.rate
		}
		// Time each demand would need at this rate; demands that lag pull
		// cores toward themselves (that is random dispatch: the mixed queue
		// keeps cores busy on whatever is slowest to drain).
		next := make([]float64, n)
		poolSum := make([]float64, len(pools))
		for i, d := range demands {
			if d.Bytes == 0 {
				continue
			}
			tNeed := math.Inf(1)
			if rates[i] > 0 {
				tNeed = d.Bytes / rates[i]
			}
			w := share[i] * tNeed
			if math.IsInf(tNeed, 1) {
				// A starved demand (zero share after drift) restarts from
				// its byte share.
				w = d.Bytes / poolBytes[d.Pool]
			}
			if w < floor {
				w = floor
			}
			next[i] = w
			poolSum[d.Pool] += w
		}
		for i, d := range demands {
			if d.Bytes == 0 || poolSum[d.Pool] == 0 {
				continue
			}
			target := next[i] / poolSum[d.Pool]
			share[i] = damping*share[i] + (1-damping)*target
		}
	}

	// Final evaluation at the converged split.
	var active []*flow
	for i, f := range flows {
		f.cores = share[i] * pools[demands[i].Pool].Cores
		f.done = demands[i].Bytes == 0
		if !f.done {
			active = append(active, f)
		}
	}
	t.allocate(active, resid, weight)
	for i, d := range demands {
		res.CoreShare[i] = share[i]
		if d.Bytes == 0 {
			continue
		}
		if flows[i].rate <= 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) starved at fixed point", i, d.Label)
		}
		tNeed := d.Bytes / flows[i].rate
		if tNeed > res.PoolTime[d.Pool] {
			res.PoolTime[d.Pool] = tNeed
		}
		for _, l := range d.Path {
			res.LinkBytes[l] += d.Bytes
		}
	}
	for _, pt := range res.PoolTime {
		if pt > res.Makespan {
			res.Makespan = pt
		}
	}
	return res, nil
}
