package sim

import (
	"math"
	"testing"

	"ugache/internal/rng"
)

// TestEventSimAgreesWithFluid cross-validates the two independent engines:
// on random small inputs, the discrete-event makespan must match the fluid
// makespan within the chunk-quantization error.
func TestEventSimAgreesWithFluid(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 60; trial++ {
		var topo Topology
		nLinks := 1 + r.Intn(4)
		for l := 0; l < nLinks; l++ {
			topo.AddLink("l", 20+r.Float64()*180)
		}
		nDemands := 1 + r.Intn(4)
		demands := make([]Demand, 0, nDemands)
		for d := 0; d < nDemands; d++ {
			path := []LinkID{LinkID(r.Intn(nLinks))}
			if r.Float64() < 0.4 {
				path = append(path, LinkID(r.Intn(nLinks)))
			}
			padTo := -1
			if d > 0 && r.Float64() < 0.3 {
				padTo = r.Intn(d)
			}
			demands = append(demands, Demand{
				Bytes: 500 + r.Float64()*2000,
				Cores: float64(2 + r.Intn(12)),
				RCore: 1 + r.Float64()*9,
				Path:  path,
				PadTo: padTo,
			})
		}
		fluid, err := topo.Run(append([]Demand(nil), demands...))
		if err != nil {
			t.Fatalf("trial %d fluid: %v", trial, err)
		}
		event, err := topo.RunEvent(append([]Demand(nil), demands...), 4)
		if err != nil {
			t.Fatalf("trial %d event: %v", trial, err)
		}
		rel := math.Abs(event.Makespan-fluid.Makespan) / fluid.Makespan
		if rel > 0.12 {
			t.Fatalf("trial %d: engines disagree: fluid %g, event %g (%.1f%%)",
				trial, fluid.Makespan, event.Makespan, rel*100)
		}
		// Byte conservation must agree exactly.
		for l := range fluid.LinkBytes {
			if math.Abs(fluid.LinkBytes[l]-event.LinkBytes[l]) > 1e-6*(1+fluid.LinkBytes[l]) {
				t.Fatalf("trial %d: link %d bytes differ", trial, l)
			}
		}
	}
}

func TestEventSimConvergesToFluid(t *testing.T) {
	// Shrinking the chunk size must converge the event makespan toward the
	// fluid result.
	var topo Topology
	a := topo.AddLink("a", 50)
	b := topo.AddLink("b", 120)
	demands := []Demand{
		{Bytes: 3000, Cores: 10, RCore: 3, Path: []LinkID{a}, PadTo: 1},
		{Bytes: 5000, Cores: 6, RCore: 4, Path: []LinkID{b}, PadTo: -1},
	}
	fluid, err := topo.Run(append([]Demand(nil), demands...))
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, chunk := range []float64{512, 64, 8} {
		ev, err := topo.RunEvent(append([]Demand(nil), demands...), chunk)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(ev.Makespan-fluid.Makespan) / fluid.Makespan
		if rel > prevErr*1.5 {
			t.Fatalf("chunk %g: error %g did not shrink (prev %g)", chunk, rel, prevErr)
		}
		prevErr = rel
	}
	if prevErr > 0.02 {
		t.Fatalf("finest chunk still off by %.2f%%", prevErr*100)
	}
}

func TestEventSimValidation(t *testing.T) {
	var topo Topology
	l := topo.AddLink("l", 10)
	d := []Demand{{Bytes: 10, Cores: 2, RCore: 1, Path: []LinkID{l}, PadTo: -1}}
	if _, err := topo.RunEvent(d, 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
	if _, err := topo.RunEvent([]Demand{{Bytes: 10, Cores: 0, Path: []LinkID{l}, PadTo: -1}}, 4); err == nil {
		t.Fatal("starved demand accepted")
	}
}
