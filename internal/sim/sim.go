// Package sim implements the deterministic fluid-flow bandwidth engine that
// stands in for real GPU hardware in this reproduction.
//
// An embedding extraction is modelled as a set of Demands: a group of GPU
// cores (SMs) on a destination device moving a number of bytes from one
// source location across a path of Links. Each core can issue at most RCore
// bytes/s (the gather issue rate of one SM), and each link caps the total
// rate of all flows crossing it. Bandwidth is divided by weighted max-min
// fairness (water-filling), which reproduces the phenomena the paper builds
// on:
//
//   - link tolerance: a link of capacity B saturates once B/RCore cores read
//     through it (paper Fig. 6);
//   - congestion and core stall: cores beyond the tolerance receive less than
//     RCore each and are stalled — they occupy the core budget while the link,
//     not the core, is the bottleneck (paper §5.2);
//   - NVSwitch collision: per-GPU outbound/inbound links are shared across
//     concurrent readers (paper Fig. 6b, right).
//
// The engine advances in phases: rates are fixed between demand completions,
// and completed demands may hand their cores to another demand (PadTo),
// which models UGache's local extraction padding (paper §5.3).
package sim

import (
	"errors"
	"fmt"
	"math"
)

// LinkID names a link inside a Topology.
type LinkID int

// Link is a shared bandwidth resource (HBM port, NVLink pair, NVSwitch
// outbound/inbound port, PCIe lane, host DRAM).
type Link struct {
	Name     string
	Capacity float64 // bytes per second; must be > 0
}

// Topology is the set of links demands can route over.
type Topology struct {
	Links []Link
}

// AddLink appends a link and returns its ID.
func (t *Topology) AddLink(name string, capacity float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: link %q has non-positive capacity %g", name, capacity))
	}
	t.Links = append(t.Links, Link{Name: name, Capacity: capacity})
	return LinkID(len(t.Links) - 1)
}

// Demand is one core group moving bytes from a source over a path of links.
type Demand struct {
	Label string
	Bytes float64 // bytes to move; >= 0
	Cores float64 // dedicated cores; may be fractional; >= 0
	RCore float64 // per-core issue rate cap in bytes/s; > 0 if Cores > 0
	Path  []LinkID
	// PadTo, if >= 0, names the demand (by index in the Run slice) that
	// inherits this demand's cores on completion. Cores accumulate: several
	// non-local groups may pad into the same local group.
	PadTo int
}

// Result reports the outcome of a Run.
type Result struct {
	// Finish[i] is the completion time of demand i in seconds. A demand with
	// zero bytes finishes at 0.
	Finish []float64
	// Makespan is the time at which the last demand finished.
	Makespan float64
	// LinkBytes[l] is the total bytes carried by link l; utilization over the
	// run is LinkBytes[l] / (Capacity[l] * Makespan).
	LinkBytes []float64
	// Phases points at the scratch's phase log when the run was made with a
	// RunScratch whose Record flag is set; nil otherwise. It aliases the
	// scratch and is valid only until the scratch's next RunWith call.
	Phases *PhaseLog
}

// Utilization returns the average utilization of link l over the run, in
// [0, 1]. It returns 0 if the makespan is zero or the link has no usable
// capacity (hand-built topologies may carry zero-capacity placeholder
// links; dividing through them would report ±Inf/NaN).
func (r *Result) Utilization(topo *Topology, l LinkID) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	den := topo.Links[l].Capacity * r.Makespan
	if den <= 0 {
		return 0
	}
	u := r.LinkBytes[l] / den
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return 0
	}
	return u
}

// ErrStarved reports a demand that can never complete because it has bytes
// to move but no cores and no padding source.
var ErrStarved = errors.New("sim: demand has bytes but can never receive cores")

type flow struct {
	idx    int     // demand index
	rem    float64 // remaining bytes
	cores  float64
	rcore  float64
	path   []LinkID
	padTo  int
	done   bool
	rate   float64 // current allocation, set by allocate
	frozen bool    // scratch for the allocator
}

// PhaseLog is the per-phase rate history of one RunWith call: the fluid
// simulation advances in phases (rates are constant between demand
// completions), and the log keeps each phase's end time plus the aggregate
// allocated rate on every link during that phase. This is the information
// the paper's timeline figures are drawn from (Fig. 6's link-congestion
// curves) and what internal/timeline renders as per-link utilization
// tracks. Buffers are reused across runs; a log aliases its RunScratch and
// is valid only until the scratch's next RunWith call.
type PhaseLog struct {
	// T[p] is the end time of phase p in seconds; phase p covers
	// [T[p-1], T[p]) with T[-1] = 0.
	T []float64
	// Rate holds the per-phase per-link aggregate allocated rates in
	// bytes/s, row-major by phase: Rate[p*Links+l] is link l's total rate
	// during phase p.
	Rate []float64
	// Links is the row stride of Rate (the topology's link count).
	Links int
}

// Phases returns the number of recorded phases.
func (pl *PhaseLog) Phases() int { return len(pl.T) }

// RateAt returns link l's aggregate allocated rate during phase p.
func (pl *PhaseLog) RateAt(p int, l LinkID) float64 {
	return pl.Rate[p*pl.Links+int(l)]
}

// RunScratch holds the reusable working state of RunWith so steady-state
// simulation runs stop allocating: the flow table, the active list, the
// allocator's residual/weight buffers, and the result slices. A RunScratch
// is owned by one goroutine at a time (workers keep their own, or recycle
// through a sync.Pool).
type RunScratch struct {
	flows  []flow  // value-allocated flow table, one per demand
	ptrs   []*flow // stable pointers into flows, reused across runs
	active []*flow // per-phase filtered list
	resid  []float64
	weight []float64
	finish []float64
	bytes  []float64

	// Record enables phase logging: each RunWith call then resets and
	// refills Log, and the returned Result points at it. Off (the default)
	// the only cost is one boolean check per phase, preserving the
	// BENCH_hotpath.json allocation budget of the tracing-off serving path.
	Record bool
	// Log holds the last recorded run's phase history; see PhaseLog for the
	// aliasing contract.
	Log PhaseLog
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Run simulates the demands to completion and returns per-demand finish
// times. Demands run concurrently from t=0 (subject to having cores; a
// demand with zero cores waits for padding). Every slice in the Result is
// freshly allocated and owned by the caller.
func (t *Topology) Run(demands []Demand) (*Result, error) {
	return t.RunWith(demands, nil)
}

// RunWith is Run with an optional scratch. With a non-nil scratch the
// returned Result's Finish and LinkBytes slices are scratch-owned: they are
// valid only until the scratch's next RunWith call, and callers that need
// them longer must copy. With a nil scratch it is identical to Run.
func (t *Topology) RunWith(demands []Demand, sc *RunScratch) (*Result, error) {
	var flows []*flow
	var resid, weight []float64
	var activeBuf []*flow
	res := &Result{}
	if sc != nil {
		if cap(sc.flows) < len(demands) {
			sc.flows = make([]flow, len(demands))
			sc.ptrs = make([]*flow, len(demands))
			for i := range sc.flows {
				sc.ptrs[i] = &sc.flows[i]
			}
			sc.active = make([]*flow, 0, len(demands))
		}
		sc.flows = sc.flows[:len(demands)]
		flows = sc.ptrs[:len(demands)]
		activeBuf = sc.active[:0]
		sc.resid = growF64(sc.resid, len(t.Links))
		sc.weight = growF64(sc.weight, len(t.Links))
		resid, weight = sc.resid, sc.weight
		res.Finish = growF64(sc.finish, len(demands))
		res.LinkBytes = growF64(sc.bytes, len(t.Links))
		sc.finish, sc.bytes = res.Finish, res.LinkBytes
		if sc.Record {
			sc.Log.T = sc.Log.T[:0]
			sc.Log.Rate = sc.Log.Rate[:0]
			sc.Log.Links = len(t.Links)
			res.Phases = &sc.Log
		}
	} else {
		flows = make([]*flow, len(demands))
		resid = make([]float64, len(t.Links))
		weight = make([]float64, len(t.Links))
		res.Finish = make([]float64, len(demands))
		res.LinkBytes = make([]float64, len(t.Links))
	}
	for i, d := range demands {
		if d.Bytes < 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) has negative bytes", i, d.Label)
		}
		if d.Cores < 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) has negative cores", i, d.Label)
		}
		if d.Cores > 0 && d.RCore <= 0 {
			return nil, fmt.Errorf("sim: demand %d (%s) has cores but RCore %g", i, d.Label, d.RCore)
		}
		for _, l := range d.Path {
			if int(l) < 0 || int(l) >= len(t.Links) {
				return nil, fmt.Errorf("sim: demand %d (%s) references unknown link %d", i, d.Label, l)
			}
		}
		if d.PadTo >= len(demands) {
			return nil, fmt.Errorf("sim: demand %d (%s) pads into unknown demand %d", i, d.Label, d.PadTo)
		}
		if flows[i] == nil {
			flows[i] = &flow{}
		}
		*flows[i] = flow{
			idx: i, rem: d.Bytes, cores: d.Cores, rcore: d.RCore,
			path: d.Path, padTo: d.PadTo,
		}
		if d.Bytes == 0 {
			flows[i].done = true
		}
	}

	now := 0.0
	// Each phase completes at least one demand, so phases <= len(demands);
	// the extra headroom guards against float stagnation.
	for phase := 0; phase <= 2*len(demands)+4; phase++ {
		active := appendActive(activeBuf, flows)
		if len(active) == 0 {
			break
		}
		t.allocate(active, resid, weight)

		// Find the next completion among flows that are actually moving.
		dt := math.Inf(1)
		moving := false
		for _, f := range active {
			if f.rate > 0 {
				moving = true
				if d := f.rem / f.rate; d < dt {
					dt = d
				}
			}
		}
		if !moving {
			// Remaining demands have no cores and nothing left to pad them.
			return nil, ErrStarved
		}

		// Record this phase's boundary and per-link aggregate rates. The
		// append stays within capacity at steady state, so recording keeps
		// the allocation-free discipline once warmed up.
		if sc != nil && sc.Record {
			base := len(sc.Log.Rate)
			need := base + len(t.Links)
			if cap(sc.Log.Rate) < need {
				grown := make([]float64, need, 2*need)
				copy(grown, sc.Log.Rate)
				sc.Log.Rate = grown
			} else {
				sc.Log.Rate = sc.Log.Rate[:need]
			}
			row := sc.Log.Rate[base:need]
			for i := range row {
				row[i] = 0
			}
			for _, f := range active {
				if f.rate <= 0 {
					continue
				}
				for _, l := range f.path {
					row[l] += f.rate
				}
			}
			sc.Log.T = append(sc.Log.T, now+dt)
		}

		// Advance time; account carried bytes per link.
		for _, f := range active {
			if f.rate <= 0 {
				continue
			}
			moved := f.rate * dt
			if moved > f.rem {
				moved = f.rem
			}
			f.rem -= moved
			for _, l := range f.path {
				res.LinkBytes[l] += moved
			}
		}
		now += dt

		// Retire completed flows and hand cores to their pad target.
		const eps = 1e-9
		for _, f := range active {
			if f.rem <= eps*(1+f.rate) {
				f.rem = 0
				f.done = true
				res.Finish[f.idx] = now
				if f.padTo >= 0 && !flows[f.padTo].done {
					tgt := flows[f.padTo]
					tgt.cores += f.cores
					if tgt.rcore <= 0 {
						tgt.rcore = f.rcore
					}
				}
			}
		}
	}
	for _, f := range flows {
		if !f.done {
			return nil, fmt.Errorf("sim: simulation did not converge (%d flows stuck)", len(appendActive(nil, flows)))
		}
	}
	res.Makespan = 0
	for _, ft := range res.Finish {
		if ft > res.Makespan {
			res.Makespan = ft
		}
	}
	return res, nil
}

// appendActive filters the not-yet-done flows into buf (reused across
// phases when the caller passes a scratch-backed slice).
func appendActive(buf []*flow, flows []*flow) []*flow {
	out := buf[:0]
	for _, f := range flows {
		if !f.done {
			out = append(out, f)
		}
	}
	return out
}

// allocate performs weighted max-min fair allocation across links with
// per-flow rate caps (cores * rcore). Weight is the flow's core count, so a
// group with more cores wins a proportionally larger share of a contended
// link, matching how more SMs win more memory bandwidth. resid and weight
// are caller-provided buffers of len(t.Links); allocate overwrites them.
func (t *Topology) allocate(active []*flow, resid, weight []float64) {
	for i, l := range t.Links {
		resid[i] = l.Capacity
	}
	for _, f := range active {
		f.frozen = false
		f.rate = 0
	}
	unfrozen := len(active)
	for _, f := range active {
		if f.cores <= 0 {
			// No cores: cannot move data this phase.
			f.frozen = true
			unfrozen--
		}
	}
	for unfrozen > 0 {
		// Per-link total unfrozen weight.
		for i := range weight {
			weight[i] = 0
		}
		for _, f := range active {
			if f.frozen {
				continue
			}
			for _, l := range f.path {
				weight[l] += f.cores
			}
		}
		// Bottleneck link ratio.
		linkRatio := math.Inf(1)
		linkIdx := -1
		for l := range t.Links {
			if weight[l] <= 0 {
				continue
			}
			r := resid[l] / weight[l]
			if r < linkRatio {
				linkRatio = r
				linkIdx = l
			}
		}
		// Flow cap ratio (a flow that caps out below the bottleneck share
		// must be frozen first, releasing bandwidth to others).
		capRatio := math.Inf(1)
		capIdx := -1
		for i, f := range active {
			if f.frozen {
				continue
			}
			r := f.rcore // per-core cap; comparable to per-weight link ratio
			if r < capRatio {
				capRatio = r
				capIdx = i
			}
		}
		switch {
		case capIdx >= 0 && capRatio < linkRatio:
			f := active[capIdx]
			f.rate = f.cores * f.rcore
			f.frozen = true
			unfrozen--
			for _, l := range f.path {
				resid[l] -= f.rate
				if resid[l] < 0 {
					resid[l] = 0
				}
			}
		case linkIdx >= 0:
			for _, f := range active {
				if f.frozen {
					continue
				}
				onLink := false
				for _, l := range f.path {
					if l == LinkID(linkIdx) {
						onLink = true
						break
					}
				}
				if !onLink {
					continue
				}
				f.rate = linkRatio * f.cores
				f.frozen = true
				unfrozen--
				for _, l := range f.path {
					resid[l] -= f.rate
					if resid[l] < 0 {
						resid[l] = 0
					}
				}
			}
		default:
			// No constraining link and no cap: flows with no path are
			// limited only by their core rate (shouldn't occur: capRatio
			// is finite whenever cores > 0). Freeze everything to exit.
			for _, f := range active {
				if !f.frozen {
					f.rate = f.cores * f.rcore
					f.frozen = true
					unfrozen--
				}
			}
		}
	}
}
