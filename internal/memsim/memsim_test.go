package memsim

import (
	"bytes"
	"errors"
	"testing"
)

func TestArenaAllocAccounting(t *testing.T) {
	a := NewArena("g0", 100)
	off1, err := a.Alloc(60)
	if err != nil || off1 != 0 {
		t.Fatalf("alloc1: off=%d err=%v", off1, err)
	}
	off2, err := a.Alloc(40)
	if err != nil || off2 != 60 {
		t.Fatalf("alloc2: off=%d err=%v", off2, err)
	}
	if a.Used() != 100 || a.Free() != 0 {
		t.Fatalf("used=%d free=%d", a.Used(), a.Free())
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	a.Reset()
	if a.Used() != 0 {
		t.Fatal("reset failed")
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestBackedReadWrite(t *testing.T) {
	a, err := NewBackedArena("g0", 64)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Backed() {
		t.Fatal("not backed")
	}
	off, _ := a.Alloc(16)
	want := []byte("hello, embedding")
	if err := a.Write(off, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := a.Read(off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestBoundsChecking(t *testing.T) {
	a, _ := NewBackedArena("g0", 64)
	a.Alloc(16)
	buf := make([]byte, 8)
	if err := a.Write(12, buf); err == nil {
		t.Fatal("write past allocation accepted")
	}
	if err := a.Read(-1, buf); err == nil {
		t.Fatal("negative read accepted")
	}
	u := NewArena("u", 64)
	u.Alloc(16)
	if err := u.Write(0, buf); err != nil {
		t.Fatalf("unbacked write should be a size-checked no-op: %v", err)
	}
	if err := u.Read(0, buf); err == nil {
		t.Fatal("unbacked read accepted")
	}
}

func TestBackedArenaTooLarge(t *testing.T) {
	if _, err := NewBackedArena("big", 1<<40); err == nil {
		t.Fatal("huge backed arena accepted")
	}
}

func TestSpacePeerRead(t *testing.T) {
	s, err := NewBackedSpace(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := s.GPUs[1].Alloc(4)
	s.GPUs[1].Write(off, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	if err := s.PeerRead(1, off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	if err := s.PeerRead(5, 0, got); err == nil {
		t.Fatal("bad gpu accepted")
	}
	u := NewSpace(3, 128)
	if len(u.GPUs) != 3 || u.GPUs[2].Capacity != 128 {
		t.Fatal("NewSpace shape")
	}
}
