// Package memsim simulates the unified GPU/host address space of a modern
// multi-GPU platform (paper §3.2, "peer-based access"): per-GPU memory
// arenas with capacity accounting plus optional real backing bytes, so that
// functional tests can verify zero-copy peer reads byte-for-byte while the
// large timing experiments track only allocation sizes.
package memsim

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation exceeds the arena capacity;
// it corresponds to the OOM conditions §8.1 works around by shrinking batch
// sizes.
var ErrOutOfMemory = errors.New("memsim: out of device memory")

// Arena is one device's memory: a bump allocator with optional backing.
type Arena struct {
	Name     string
	Capacity int64
	used     int64
	data     []byte // nil when the arena only tracks sizes
}

// NewArena creates a size-tracking arena.
func NewArena(name string, capacity int64) *Arena {
	return &Arena{Name: name, Capacity: capacity}
}

// NewBackedArena creates an arena with real bytes for functional tests.
func NewBackedArena(name string, capacity int64) (*Arena, error) {
	if capacity > 1<<31 {
		return nil, fmt.Errorf("memsim: backed arena %q too large (%d bytes)", name, capacity)
	}
	return &Arena{Name: name, Capacity: capacity, data: make([]byte, capacity)}, nil
}

// Backed reports whether the arena holds real bytes.
func (a *Arena) Backed() bool { return a.data != nil }

// Used returns the allocated byte count.
func (a *Arena) Used() int64 { return a.used }

// Free returns the unallocated byte count.
func (a *Arena) Free() int64 { return a.Capacity - a.used }

// Alloc reserves n bytes and returns their offset.
func (a *Arena) Alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("memsim: negative allocation %d", n)
	}
	if a.used+n > a.Capacity {
		return 0, fmt.Errorf("%w: %q needs %d, free %d", ErrOutOfMemory, a.Name, n, a.Free())
	}
	off := a.used
	a.used += n
	return off, nil
}

// Reset releases every allocation (the cache refill path frees whole caches
// at once; a general free list is not needed).
func (a *Arena) Reset() { a.used = 0 }

// Clone returns a deep copy of the arena. The background Refresher applies
// cache updates to a clone so concurrent readers keep a consistent view of
// the published arena until the new snapshot is swapped in (§7.2).
func (a *Arena) Clone() *Arena {
	cp := *a
	if a.data != nil {
		cp.data = make([]byte, len(a.data))
		copy(cp.data, a.data)
	}
	return &cp
}

// Write copies b to the given offset. It is a no-op (after bounds checking)
// on unbacked arenas.
func (a *Arena) Write(off int64, b []byte) error {
	if off < 0 || off+int64(len(b)) > a.used {
		return fmt.Errorf("memsim: write [%d, %d) outside allocated %d bytes of %q",
			off, off+int64(len(b)), a.used, a.Name)
	}
	if a.data != nil {
		copy(a.data[off:], b)
	}
	return nil
}

// Read copies from the given offset into b. Reading from an unbacked arena
// is an error: timing-only runs must not depend on content.
func (a *Arena) Read(off int64, b []byte) error {
	if off < 0 || off+int64(len(b)) > a.used {
		return fmt.Errorf("memsim: read [%d, %d) outside allocated %d bytes of %q",
			off, off+int64(len(b)), a.used, a.Name)
	}
	if a.data == nil {
		return fmt.Errorf("memsim: arena %q is not backed", a.Name)
	}
	copy(b, a.data[off:])
	return nil
}

// Space is the unified address space of one platform: one arena per GPU.
// Host memory is not an arena here — host embedding tables live in
// emb.Table, which is effectively unbounded.
type Space struct {
	GPUs []*Arena
}

// NewSpace creates a space with n unbacked GPU arenas of the given capacity.
func NewSpace(n int, capacityEach int64) *Space {
	s := &Space{GPUs: make([]*Arena, n)}
	for i := range s.GPUs {
		s.GPUs[i] = NewArena(fmt.Sprintf("gpu%d", i), capacityEach)
	}
	return s
}

// NewBackedSpace creates a space with real backing bytes on every GPU.
func NewBackedSpace(n int, capacityEach int64) (*Space, error) {
	s := &Space{GPUs: make([]*Arena, n)}
	for i := range s.GPUs {
		a, err := NewBackedArena(fmt.Sprintf("gpu%d", i), capacityEach)
		if err != nil {
			return nil, err
		}
		s.GPUs[i] = a
	}
	return s, nil
}

// Clone returns a deep copy of the space (every arena cloned).
func (s *Space) Clone() *Space {
	cp := &Space{GPUs: make([]*Arena, len(s.GPUs))}
	for i, a := range s.GPUs {
		cp.GPUs[i] = a.Clone()
	}
	return cp
}

// PeerRead reads from any GPU's arena — the zero-copy unified-addressing
// primitive that peer-based extraction relies on.
func (s *Space) PeerRead(gpu int, off int64, b []byte) error {
	if gpu < 0 || gpu >= len(s.GPUs) {
		return fmt.Errorf("memsim: no gpu %d", gpu)
	}
	return s.GPUs[gpu].Read(off, b)
}
