package extract

import (
	"encoding/json"
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/solver"
)

// resultBytes serializes a Result for byte-identical comparison.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelGroupingGolden is the determinism contract of the parallel
// per-GPU planning pool: forcing the parallel path must produce a Result
// byte-identical to the forced-sequential path, for every mechanism.
func TestParallelGroupingGolden(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 20000, 0.08, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b := genBatch(t, 20000, 6000, p.N, 5)
	old := groupParallelThreshold
	defer func() { groupParallelThreshold = old }()
	for _, m := range []Mechanism{Factored, FactoredStatic, PeerRandom, MessageBased} {
		groupParallelThreshold = math.MaxInt // force sequential
		seq, err := ex.Run(m, b)
		if err != nil {
			t.Fatalf("%s sequential: %v", m, err)
		}
		groupParallelThreshold = 0 // force parallel
		par, err := ex.Run(m, b)
		if err != nil {
			t.Fatalf("%s parallel: %v", m, err)
		}
		if s, pr := resultBytes(t, seq), resultBytes(t, par); string(s) != string(pr) {
			t.Fatalf("%s: parallel grouping result differs from sequential\nseq: %.200s\npar: %.200s", m, s, pr)
		}
	}
}

// TestParallelGroupingKeyError checks the parallel path reports
// out-of-range keys deterministically (first failing GPU in index order).
func TestParallelGroupingKeyError(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 20000, 0.08, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b := genBatch(t, 20000, 2000, p.N, 6)
	b.Keys[3] = append(b.Keys[3], 99999999) // out of range
	b.Keys[5] = append(b.Keys[5], -4)       // also bad, higher GPU index
	old := groupParallelThreshold
	defer func() { groupParallelThreshold = old }()
	groupParallelThreshold = math.MaxInt
	_, seqErr := ex.Run(Factored, b)
	groupParallelThreshold = 0
	for i := 0; i < 10; i++ { // schedule-independence: same error every run
		_, parErr := ex.Run(Factored, b)
		if parErr == nil || seqErr == nil || parErr.Error() != seqErr.Error() {
			t.Fatalf("parallel error %v != sequential error %v", parErr, seqErr)
		}
	}
}

// TestRunWithScratchMatchesRun re-runs mixed batches through one shared
// Scratch and checks every Result matches the allocating path, proving no
// state leaks between scratch reuses (including across batch sizes).
func TestRunWithScratchMatchesRun(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 20000, 0.08, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for i, m := range []Mechanism{Factored, FactoredStatic, Factored, Factored} {
		b := genBatch(t, 20000, 1000*(i+1), p.N, uint64(10+i))
		if i == 2 { // single-GPU batch, the serving engine's shape
			for g := 1; g < p.N; g++ {
				b.Keys[g] = nil
			}
		}
		want, err := ex.Run(m, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ex.RunWith(m, b, sc)
		if err != nil {
			t.Fatal(err)
		}
		if w, g := resultBytes(t, want), resultBytes(t, got); string(w) != string(g) {
			t.Fatalf("run %d (%s): scratch result differs\nwant: %.200s\ngot:  %.200s", i, m, w, g)
		}
	}
}
