package extract

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ugache/internal/platform"
	"ugache/internal/sim"
)

// planCache holds the batch-invariant planning constants of one
// (platform, placement) pair: routed paths, per-source core dedications,
// issue rates, and demand labels. Extraction runs once per training or
// inference iteration, so re-deriving these per run (Path and FEMDedication
// allocate; labels went through fmt.Sprintf) put avoidable allocation and
// CPU time on the §3.2 critical path. New computes the cache once.
type planCache struct {
	paths        [][][]sim.LinkID // paths[g][j]: route GPU g -> source j
	pathOK       [][]bool
	rcore        [][]float64 // rcore[g][j]: per-core issue rate on that route
	ded          [][]float64 // ded[g]: §5.3 core dedication for GPU g
	labels       [][]string  // "g<g><-<j>"
	localLabels  []string    // "g<g><-local"
	staticLabels [][]string  // "g<g><-<j>-static"
}

func newPlanCache(p *platform.Platform) *planCache {
	ns := p.NumSources()
	pc := &planCache{
		paths:        make([][][]sim.LinkID, p.N),
		pathOK:       make([][]bool, p.N),
		rcore:        make([][]float64, p.N),
		ded:          make([][]float64, p.N),
		labels:       make([][]string, p.N),
		localLabels:  make([]string, p.N),
		staticLabels: make([][]string, p.N),
	}
	for g := 0; g < p.N; g++ {
		pc.paths[g] = make([][]sim.LinkID, ns)
		pc.pathOK[g] = make([]bool, ns)
		pc.rcore[g] = make([]float64, ns)
		pc.ded[g] = p.FEMDedication(g)
		pc.labels[g] = make([]string, ns)
		pc.staticLabels[g] = make([]string, ns)
		pc.localLabels[g] = fmt.Sprintf("g%d<-local", g)
		for j := 0; j < ns; j++ {
			src := platform.SourceID(j)
			pc.paths[g][j], pc.pathOK[g][j] = p.Path(g, src)
			pc.rcore[g][j] = p.RCore(g, src)
			pc.labels[g][j] = fmt.Sprintf("g%d<-%d", g, j)
			pc.staticLabels[g][j] = fmt.Sprintf("g%d<-%d-static", g, j)
		}
	}
	return pc
}

// Scratch holds the reusable buffers of one extraction run — the per-GPU
// source-volume matrix, the demand plan, the demand-index table, and the
// fluid simulator's working state. Passing a Scratch to RunWith makes the
// steady-state Factored/FactoredStatic extraction path allocation-free.
//
// A Scratch is owned by one goroutine at a time. The Result returned by a
// scratch-backed run aliases the scratch (SrcBytes, PerGPU, LinkBytes) and
// is valid only until the scratch's next use; copy anything that must
// outlive it.
type Scratch struct {
	volBack []float64
	vol     [][]float64
	demands []sim.Demand
	idxBack []int
	idx     [][]int
	perGPU  []float64
	errs    []error
	sim     sim.RunScratch
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// RecordPhases toggles fluid-sim phase logging for runs made with this
// scratch: when on, Factored/FactoredStatic results carry a Phases log for
// timeline rendering (Result.Phases). Off by default — the tracing-off hot
// path must not pay for the log.
func (sc *Scratch) RecordPhases(on bool) { sc.sim.Record = on }

// volMatrix returns a zeroed n-by-ns matrix backed by the scratch.
func (sc *Scratch) volMatrix(n, ns int) [][]float64 {
	if cap(sc.volBack) < n*ns {
		sc.volBack = make([]float64, n*ns)
		sc.vol = make([][]float64, n)
	}
	back := sc.volBack[:n*ns]
	for i := range back {
		back[i] = 0
	}
	vol := sc.vol[:n]
	for g := range vol {
		vol[g] = back[g*ns : (g+1)*ns : (g+1)*ns]
	}
	return vol
}

// idxMatrix returns an n-by-ns matrix filled with -1, backed by the scratch.
func (sc *Scratch) idxMatrix(n, ns int) [][]int {
	if cap(sc.idxBack) < n*ns {
		sc.idxBack = make([]int, n*ns)
		sc.idx = make([][]int, n)
	}
	back := sc.idxBack[:n*ns]
	for i := range back {
		back[i] = -1
	}
	idx := sc.idx[:n]
	for g := range idx {
		idx[g] = back[g*ns : (g+1)*ns : (g+1)*ns]
	}
	return idx
}

// perGPUSlice returns a zeroed length-n slice backed by the scratch.
func (sc *Scratch) perGPUSlice(n int) []float64 {
	if cap(sc.perGPU) < n {
		sc.perGPU = make([]float64, n)
	}
	out := sc.perGPU[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// groupParallelThreshold is the minimum total key count at which srcBytes
// fans the per-GPU grouping loops out across a worker pool; below it the
// goroutine handoff costs more than the scan. Tests override it to force
// either path.
var groupParallelThreshold = 1 << 12

// groupGPU accumulates GPU g's per-source byte volume for one key slice —
// the grouping step of the factored extraction (§5.1).
func (e *Extractor) groupGPU(g int, keys []int64, row []float64, eb float64, n int64) error {
	pl := e.Pl
	netSrc, hostSrc := platform.SourceID(-1), e.P.Host()
	if e.Owned != nil && e.P.HasNetwork() {
		netSrc = e.P.Network()
	}
	for _, k := range keys {
		if k < 0 || k >= n {
			return fmt.Errorf("extract: key %d outside [0, %d)", k, n)
		}
		src := pl.SourceOf(g, k)
		if src == netSrc && e.Owned(k) {
			// The local host shard owns this network-class key: serve it
			// over PCIe without crossing the wire (the owned leg of the
			// solver's blended network column).
			src = hostSrc
		}
		row[src] += eb
	}
	return nil
}

// srcBytes groups a batch by source location: bytes[g][j] = bytes GPU g
// pulls from source j under the placement's access arrangement. Staged keys
// (Batch.Staged, the lookahead prefetch hits) bypass the placement and are
// charged as local HBM reads — the staged-source plan. Large batches are
// grouped in parallel, one GPU per worker; each matrix row is written by
// exactly one worker and rows are merged in GPU order, so the result is
// bit-identical to the sequential pass.
func (e *Extractor) srcBytes(b *Batch, sc *Scratch) ([][]float64, error) {
	if len(b.Keys) != e.P.N {
		return nil, fmt.Errorf("extract: batch has %d GPUs, platform %d", len(b.Keys), e.P.N)
	}
	if b.Staged != nil && len(b.Staged) != e.P.N {
		return nil, fmt.Errorf("extract: staged plan has %d GPUs, platform %d", len(b.Staged), e.P.N)
	}
	eb := e.entryBytes()
	n := e.Pl.NumEntries()
	ns := e.P.NumSources()
	var out [][]float64
	if sc != nil {
		out = sc.volMatrix(e.P.N, ns)
	} else {
		out = make([][]float64, e.P.N)
		for g := range out {
			out[g] = make([]float64, ns)
		}
	}
	// Staged keys are few (bounded by the staging arena) and need only a
	// range check, so they are folded in up front on the sequential path.
	for g, staged := range b.Staged {
		for _, k := range staged {
			if k < 0 || k >= n {
				return nil, fmt.Errorf("extract: staged key %d outside [0, %d)", k, n)
			}
		}
		out[g][g] += eb * float64(len(staged))
	}
	total, nonEmpty := 0, 0
	for _, keys := range b.Keys {
		total += len(keys)
		if len(keys) > 0 {
			nonEmpty++
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nonEmpty {
		workers = nonEmpty
	}
	if total < groupParallelThreshold || workers < 2 {
		for g := range out {
			if err := e.groupGPU(g, b.Keys[g], out[g], eb, n); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var errs []error
	if sc != nil {
		if cap(sc.errs) < e.P.N {
			sc.errs = make([]error, e.P.N)
		}
		errs = sc.errs[:e.P.N]
		for i := range errs {
			errs[i] = nil
		}
	} else {
		errs = make([]error, e.P.N)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= e.P.N {
					return
				}
				errs[g] = e.groupGPU(g, b.Keys[g], out[g], eb, n)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
