package extract

import (
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/solver"
)

// clusterPlatform is ServerC joined into a 4-machine cluster over the
// default network fabric.
func clusterPlatform(t *testing.T, machines int) *platform.Platform {
	t.Helper()
	cfg := platform.ServerCConfig()
	net := platform.DefaultNetwork(machines)
	cfg.Network = &net
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestClusterExtraction: every mechanism runs on a cluster placement, the
// network source class carries volume, and bytes are conserved.
func TestClusterExtraction(t *testing.T) {
	p := clusterPlatform(t, 4)
	pl, _ := buildPlacement(t, p, 20000, 0.05, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b := genBatch(t, 20000, 50000, p.N, 3)
	net, host := p.Network(), p.Host()
	for _, m := range []Mechanism{Factored, PeerRandom, MessageBased} {
		res, err := ex.Run(m, b)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Time <= 0 || math.IsInf(res.Time, 0) || math.IsNaN(res.Time) {
			t.Fatalf("%s: time %g", m, res.Time)
		}
		netBytes, hostBytes := 0.0, 0.0
		for g := range res.SrcBytes {
			sum := 0.0
			for _, v := range res.SrcBytes[g] {
				sum += v
			}
			want := float64(len(b.Keys[g])) * 512
			if math.Abs(sum-want) > 1 {
				t.Fatalf("%s: gpu %d bytes %g, want %g", m, g, sum, want)
			}
			netBytes += res.SrcBytes[g][net]
			hostBytes += res.SrcBytes[g][host]
		}
		if netBytes <= 0 {
			t.Fatalf("%s: no network-class bytes despite a 5%% cache", m)
		}
		if hostBytes != 0 {
			t.Fatalf("%s: %g host bytes; cluster placements prune the host tier", m, hostBytes)
		}
	}
}

// TestClusterOwnedSplit: the Owned predicate reroutes this machine's shard
// of the network-class keys onto the host path, byte for byte.
func TestClusterOwnedSplit(t *testing.T) {
	p := clusterPlatform(t, 4)
	pl, _ := buildPlacement(t, p, 20000, 0.05, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b := genBatch(t, 20000, 50000, p.N, 3)
	base, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	net, host := p.Network(), p.Host()
	baseNet := make([]float64, p.N)
	for g := range base.SrcBytes {
		baseNet[g] = base.SrcBytes[g][net]
	}
	// Own every fourth key — a deterministic stand-in for the hash ring's
	// 1/M shard.
	ex.Owned = func(k int64) bool { return k%4 == 0 }
	split, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	for g := range split.SrcBytes {
		gotNet, gotHost := split.SrcBytes[g][net], split.SrcBytes[g][host]
		if gotHost <= 0 {
			t.Fatalf("gpu %d: owned keys did not reach the host path", g)
		}
		if math.Abs(gotNet+gotHost-baseNet[g]) > 1 {
			t.Fatalf("gpu %d: split %g+%g != unsplit network volume %g", g, gotNet, gotHost, baseNet[g])
		}
		if gotNet >= baseNet[g] {
			t.Fatalf("gpu %d: network volume %g not reduced from %g", g, gotNet, baseNet[g])
		}
		// Non-network tiers are untouched by the split.
		for j := range split.SrcBytes[g] {
			if platform.SourceID(j) == net || platform.SourceID(j) == host {
				continue
			}
			if split.SrcBytes[g][j] != base.SrcBytes[g][j] {
				t.Fatalf("gpu %d src %d: %g != %g", g, j, split.SrcBytes[g][j], base.SrcBytes[g][j])
			}
		}
	}
}
