// Package extract implements the embedding extraction mechanisms of §3.2
// and §5 on the platform simulator:
//
//   - Factored: UGache's factored extraction mechanism (FEM): keys are
//     grouped by source location, cores are statically dedicated per source
//     by the §5.3 strategy, and local extraction runs at low priority as
//     padding for ragged non-local groups;
//   - PeerRandom: the naive peer-based zero-copy extraction of prior work
//     (WholeGraph): all cores drain one randomly dispatched mixed queue —
//     modelled as a proportional-drain fluid run with a divergence penalty
//     on the per-core issue rate (mixed-source warps lose memory-level
//     parallelism; §5.2's congestion and core stall);
//   - MessageBased: the AllToAll scheme of NCCL-based systems (SOK): gather
//     into send buffers, exchange buffers pairwise, then reorder — three
//     passes with extra data movement (§3.2).
//
// Each mechanism consumes a solved cache placement and a batch of keys per
// destination GPU and returns the simulated extraction time plus per-link
// utilization. An optional functional mode actually moves embedding bytes
// through memsim so tests can verify extraction correctness end to end.
package extract

import (
	"fmt"
	"math"

	"ugache/internal/platform"
	"ugache/internal/sim"
	"ugache/internal/solver"
)

// Mechanism identifies an extraction scheme.
type Mechanism int

const (
	Factored Mechanism = iota
	PeerRandom
	MessageBased
	// FactoredStatic is an ablation of §5.3's local-extraction padding: the
	// same per-source organization, but cores are split statically in
	// proportion to each source's bytes and never handed over, so ragged
	// non-local groups leave cores idle.
	FactoredStatic
)

func (m Mechanism) String() string {
	switch m {
	case Factored:
		return "factored"
	case PeerRandom:
		return "peer-random"
	case FactoredStatic:
		return "factored-static"
	default:
		return "message-based"
	}
}

// DivergenceFactor is the per-core issue-rate penalty of randomly
// dispatched, mixed-source extraction (PeerRandom): a warp that interleaves
// local, remote and host keys cannot keep its full complement of
// outstanding loads on any one link. Calibrated so FEM's improvement over
// naive peer access matches the paper's Fig. 4 / Fig. 13 (1.5–2× extraction
// speedup, ~2–3.5× link-utilization gain).
const DivergenceFactor = 0.55

// NCCLEfficiency discounts the AllToAll exchange bandwidth relative to raw
// link capacity (protocol and chunking overheads).
const NCCLEfficiency = 0.8

// Batch is one iteration's unique keys for every destination GPU
// (data-parallel deployment: each GPU has its own input batch).
type Batch struct {
	// Keys[g] are the unique embedding keys GPU g must extract.
	Keys [][]int64
	// Staged[g], when non-nil, are the keys GPU g serves from its transient
	// staging arena this iteration (lookahead prefetch hits). They were moved
	// over the interconnect by an earlier prefetch extraction, so the demand
	// batch charges them as local HBM reads: the staged-source plan adds
	// their bytes to the g<-local demand instead of their placement source.
	// Staged must be disjoint from Keys[g].
	Staged [][]int64
}

// Result reports one simulated extraction.
type Result struct {
	// Time is the extraction makespan in seconds.
	Time float64
	// PerGPU[g] is GPU g's completion time.
	PerGPU []float64
	// LinkBytes mirrors sim.Result.LinkBytes for utilization reporting.
	LinkBytes []float64
	// SrcBytes[g][j] is the bytes GPU g pulled from source j.
	SrcBytes [][]float64
	// Stalled is the average fraction of core-time lost to congestion in
	// PeerRandom (0 for the other mechanisms).
	Stalled float64
	// Phases is the fluid simulation's per-phase per-link rate history,
	// available for the Factored/FactoredStatic mechanisms when the run used
	// a Scratch with phase recording enabled (Scratch.RecordPhases); nil
	// otherwise. It aliases the scratch and is valid only until the
	// scratch's next use.
	Phases *sim.PhaseLog
}

// Utilization returns the average utilization of the given links over the
// extraction (Fig. 13).
func (r *Result) Utilization(p *platform.Platform, links []sim.LinkID) float64 {
	if r.Time <= 0 || len(links) == 0 {
		return 0
	}
	num, den := 0.0, 0.0
	for _, l := range links {
		num += r.LinkBytes[l]
		den += p.Topo.Links[l].Capacity * r.Time
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Extractor runs extractions against a placement.
type Extractor struct {
	P  *platform.Platform
	Pl *solver.Placement
	// EntryBytes overrides the placement's entry size when non-zero.
	EntryBytes int
	// Owned, on clustered platforms, reports whether this machine's host
	// shard holds the key. Network-class keys the predicate accepts are
	// regrouped onto the host path (the local 1/M shard serves them without
	// touching the wire) — the runtime realization of the solver's blended
	// network column. Nil means no local shard (every network-class key
	// crosses the NIC).
	Owned func(key int64) bool
	// plan caches the batch-invariant planning constants (paths, core
	// dedications, labels); see planCache.
	plan *planCache
}

// New creates an extractor.
func New(p *platform.Platform, pl *solver.Placement) (*Extractor, error) {
	if p == nil || pl == nil {
		return nil, fmt.Errorf("extract: nil platform or placement")
	}
	if pl.NumGPUs != p.N {
		return nil, fmt.Errorf("extract: placement for %d GPUs on %d-GPU platform", pl.NumGPUs, p.N)
	}
	return &Extractor{P: p, Pl: pl, plan: newPlanCache(p)}, nil
}

func (e *Extractor) entryBytes() float64 {
	if e.EntryBytes > 0 {
		return float64(e.EntryBytes)
	}
	return float64(e.Pl.EntryBytes)
}

// Run simulates one extraction with the given mechanism. Every slice in the
// Result is freshly allocated and owned by the caller.
func (e *Extractor) Run(m Mechanism, b *Batch) (*Result, error) {
	return e.RunWith(m, b, nil)
}

// RunWith is Run with an optional scratch. With a non-nil scratch the
// Factored and FactoredStatic mechanisms reuse its buffers — the returned
// Result (SrcBytes, PerGPU, LinkBytes) then aliases the scratch and is valid
// only until the scratch's next use. PeerRandom and MessageBased accept a
// scratch for the grouping step but still allocate their stage plans (they
// are comparison baselines, not the serving hot path). With a nil scratch
// RunWith is identical to Run.
func (e *Extractor) RunWith(m Mechanism, b *Batch, sc *Scratch) (*Result, error) {
	vol, err := e.srcBytes(b, sc)
	if err != nil {
		return nil, err
	}
	switch m {
	case Factored:
		return e.runFactored(vol, sc)
	case PeerRandom:
		return e.runPeerRandom(vol)
	case MessageBased:
		return e.runMessageBased(vol, b)
	case FactoredStatic:
		return e.runFactoredStatic(vol, sc)
	default:
		return nil, fmt.Errorf("extract: unknown mechanism %d", m)
	}
}

// runFactored implements §5.3: per-source dedicated core groups with local
// padding. With a scratch, the demand plan, index table and simulator state
// are all reused across runs.
func (e *Extractor) runFactored(vol [][]float64, sc *Scratch) (*Result, error) {
	ns := e.P.NumSources()
	var demands []sim.Demand
	var idx [][]int // demand index per (gpu, source)
	var simSc *sim.RunScratch
	if sc != nil {
		demands = sc.demands[:0]
		idx = sc.idxMatrix(e.P.N, ns)
		simSc = &sc.sim
	} else {
		idx = make([][]int, e.P.N)
		for g := range idx {
			idx[g] = make([]int, ns)
			for j := range idx[g] {
				idx[g][j] = -1
			}
		}
	}
	pc := e.plan
	// Local demands first so non-local groups can pad into them.
	for g := 0; g < e.P.N; g++ {
		idx[g][g] = len(demands)
		demands = append(demands, sim.Demand{
			Label: pc.localLabels[g],
			Bytes: vol[g][g], Cores: 0, RCore: e.P.GPU.RCoreLocal,
			Path: pc.paths[g][g], PadTo: -1,
		})
	}
	for g := 0; g < e.P.N; g++ {
		ded := pc.ded[g]
		for j := 0; j < ns; j++ {
			if j == g {
				continue
			}
			if vol[g][j] > 0 {
				if !pc.pathOK[g][j] {
					return nil, fmt.Errorf("extract: gpu %d routed to unreachable source %d", g, j)
				}
				if ded[j] <= 0 {
					return nil, fmt.Errorf("extract: gpu %d has bytes for source %d but no dedicated cores", g, j)
				}
				idx[g][j] = len(demands)
				demands = append(demands, sim.Demand{
					Label: pc.labels[g][j],
					Bytes: vol[g][j], Cores: ded[j], RCore: pc.rcore[g][j],
					Path: pc.paths[g][j], PadTo: idx[g][g],
				})
			} else if ded[j] > 0 {
				// An empty group's cores join local extraction immediately.
				demands[idx[g][g]].Cores += ded[j]
			}
		}
		// Host cores with no host bytes were already folded in above (the
		// host source is part of the loop). Give the local demand at least
		// a token core if nothing pads into it and it has bytes.
		if vol[g][g] > 0 {
			hasPadder := false
			for j := 0; j < ns; j++ {
				if j != g && idx[g][j] >= 0 {
					hasPadder = true
				}
			}
			if !hasPadder && demands[idx[g][g]].Cores == 0 {
				demands[idx[g][g]].Cores = float64(e.P.GPU.SMs)
			}
		}
	}
	if sc != nil {
		sc.demands = demands // keep grown capacity for the next run
	}
	res, err := e.P.Topo.RunWith(demands, simSc)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Time:      res.Makespan,
		LinkBytes: res.LinkBytes,
		SrcBytes:  vol,
		Phases:    res.Phases,
	}
	if sc != nil {
		out.PerGPU = sc.perGPUSlice(e.P.N)
	} else {
		out.PerGPU = make([]float64, e.P.N)
	}
	for g := 0; g < e.P.N; g++ {
		for j := 0; j < ns; j++ {
			if di := idx[g][j]; di >= 0 && res.Finish[di] > out.PerGPU[g] {
				out.PerGPU[g] = res.Finish[di]
			}
		}
	}
	return out, nil
}

// runPeerRandom implements the unorganized peer-based extraction of §5.2:
// one mixed queue per GPU, proportional drain, divergence-degraded per-core
// rates.
func (e *Extractor) runPeerRandom(vol [][]float64) (*Result, error) {
	var demands []sim.PoolDemand
	pools := make([]sim.Pool, e.P.N)
	for g := 0; g < e.P.N; g++ {
		pools[g].Cores = float64(e.P.GPU.SMs)
		for j := 0; j < e.P.NumSources(); j++ {
			if vol[g][j] == 0 {
				continue
			}
			src := platform.SourceID(j)
			// Unorganized access routes over the degraded interconnect
			// twins (§5.2: uncoalesced transfers achieve only a fraction
			// of link capacity) and pays the divergence penalty per core.
			path, ok := e.P.PathUnorganized(g, src)
			if !ok {
				return nil, fmt.Errorf("extract: gpu %d routed to unreachable source %d", g, j)
			}
			demands = append(demands, sim.PoolDemand{
				Label: fmt.Sprintf("g%d<-%d", g, j),
				Pool:  g, Bytes: vol[g][j],
				RCore: DivergenceFactor * e.P.RCore(g, src),
				Path:  path,
			})
		}
	}
	res, err := e.P.Topo.RunProportional(demands, pools)
	if err != nil {
		return nil, err
	}
	e.P.FoldDegraded(res.LinkBytes)
	// Stall estimate: fraction of core share parked on link-bound sources
	// beyond their tolerance.
	stalled := 0.0
	for i, d := range demands {
		bw, _ := e.P.LinkBW(d.Pool, sourceOfLabelDemand(e.P, d))
		cores := res.CoreShare[i] * pools[d.Pool].Cores
		if cores*d.RCore > bw {
			stalled += res.CoreShare[i] * (1 - bw/(cores*d.RCore))
		}
	}
	if e.P.N > 0 {
		stalled /= float64(e.P.N)
	}
	return &Result{
		Time:      res.Makespan,
		PerGPU:    res.PoolTime,
		LinkBytes: res.LinkBytes,
		SrcBytes:  vol,
		Stalled:   stalled,
	}, nil
}

// sourceOfLabelDemand recovers the source of a pool demand from its path
// head; kept simple by re-deriving from the placement volumes instead would
// need extra bookkeeping.
func sourceOfLabelDemand(p *platform.Platform, d sim.PoolDemand) platform.SourceID {
	// Host path starts at the DRAM link; the network path is the 3-hop
	// DRAM→NIC→PCIe staging route; local path is a single HBM link of the
	// pool GPU; remote path starts at the source GPU's HBM.
	if len(d.Path) == 2 && d.Path[0] == p.DRAMLink() {
		return p.Host()
	}
	if len(d.Path) == 3 && d.Path[0] == p.DRAMLink() {
		return p.Network()
	}
	for g := 0; g < p.N; g++ {
		if d.Path[0] == p.HBMLink(g) {
			return platform.SourceID(g)
		}
	}
	return p.Host()
}

// runMessageBased implements the AllToAll scheme of §3.2 in three stages.
// Stage 1: every GPU gathers the entries it owns that anyone requested into
// contiguous send buffers (local reads at full parallelism). Host-resident
// keys are fetched by the requester itself over PCIe (as SOK does for its
// CPU-side fallback). Stage 2: buffers are exchanged pairwise at
// NCCL-discounted link bandwidth. Stage 3: received buffers are reordered
// into the output tensor (one more local pass over all bytes).
func (e *Extractor) runMessageBased(vol [][]float64, b *Batch) (*Result, error) {
	// gatherBytes[j]: bytes GPU j reads locally on behalf of all readers.
	gatherBytes := make([]float64, e.P.N)
	// exchBytes[i][j]: bytes moving j -> i in the exchange.
	exchBytes := make([][]float64, e.P.N)
	hostBytes := make([]float64, e.P.N)
	recvBytes := make([]float64, e.P.N)
	for i := 0; i < e.P.N; i++ {
		exchBytes[i] = make([]float64, e.P.N)
		for j := 0; j < e.P.NumSources(); j++ {
			v := vol[i][j]
			if v == 0 {
				continue
			}
			switch {
			case j == int(e.P.Host()):
				hostBytes[i] += v
			case e.P.HasNetwork() && j == int(e.P.Network()):
				// Cross-machine fetches stage through host memory; the
				// message-based baseline models them as host fetches (it has
				// no cross-machine exchange phase of its own).
				hostBytes[i] += v
			case j == i:
				gatherBytes[i] += v // local gather straight to output
			default:
				gatherBytes[j] += v
				exchBytes[i][j] = v
				recvBytes[i] += v
			}
		}
	}

	stage := func(demands []sim.Demand) (float64, []float64, error) {
		if len(demands) == 0 {
			return 0, make([]float64, len(e.P.Topo.Links)), nil
		}
		res, err := e.P.Topo.Run(demands)
		if err != nil {
			return 0, nil, err
		}
		return res.Makespan, res.LinkBytes, nil
	}
	cores := float64(e.P.GPU.SMs)

	// Stage 1: gather + host fetch, concurrently.
	var d1 []sim.Demand
	for g := 0; g < e.P.N; g++ {
		if gatherBytes[g] > 0 {
			path, _ := e.P.Path(g, platform.SourceID(g))
			d1 = append(d1, sim.Demand{Label: fmt.Sprintf("gather%d", g),
				Bytes: gatherBytes[g], Cores: cores, RCore: e.P.GPU.RCoreLocal,
				Path: path, PadTo: -1})
		}
		if hostBytes[g] > 0 {
			path, _ := e.P.Path(g, e.P.Host())
			tol, _ := e.P.Tolerance(g, e.P.Host())
			d1 = append(d1, sim.Demand{Label: fmt.Sprintf("host%d", g),
				Bytes: hostBytes[g], Cores: math.Ceil(tol), RCore: e.P.GPU.RCoreHost,
				Path: path, PadTo: -1})
		}
	}
	t1, lb1, err := stage(d1)
	if err != nil {
		return nil, err
	}

	// Stage 2: AllToAll exchange at NCCL-discounted bandwidth.
	var d2 []sim.Demand
	for i := 0; i < e.P.N; i++ {
		for j := 0; j < e.P.N; j++ {
			if exchBytes[i][j] == 0 {
				continue
			}
			path, ok := e.P.Path(i, platform.SourceID(j))
			if !ok {
				// NCCL routes unconnected pairs through host; model as a
				// host bounce (two PCIe legs simplified to one host read).
				path, _ = e.P.Path(i, e.P.Host())
			}
			d2 = append(d2, sim.Demand{Label: fmt.Sprintf("exch%d<-%d", i, j),
				Bytes: exchBytes[i][j] / NCCLEfficiency, Cores: cores / float64(e.P.N),
				RCore: e.P.GPU.RCoreRemote, Path: path, PadTo: -1})
		}
	}
	t2, lb2, err := stage(d2)
	if err != nil {
		return nil, err
	}

	// Stage 3: reorder received buffers (local read+write pass).
	var d3 []sim.Demand
	for g := 0; g < e.P.N; g++ {
		if recvBytes[g] > 0 {
			path, _ := e.P.Path(g, platform.SourceID(g))
			d3 = append(d3, sim.Demand{Label: fmt.Sprintf("reorder%d", g),
				Bytes: 2 * recvBytes[g], Cores: cores, RCore: e.P.GPU.RCoreLocal,
				Path: path, PadTo: -1})
		}
	}
	t3, lb3, err := stage(d3)
	if err != nil {
		return nil, err
	}

	linkBytes := make([]float64, len(e.P.Topo.Links))
	for l := range linkBytes {
		linkBytes[l] = lb1[l] + lb2[l] + lb3[l]
	}
	total := t1 + t2 + t3
	per := make([]float64, e.P.N)
	for g := range per {
		per[g] = total // barrier semantics of collective exchange
	}
	return &Result{Time: total, PerGPU: per, LinkBytes: linkBytes, SrcBytes: vol}, nil
}

// runFactoredStatic is the padding ablation: per-source groups sized
// proportionally to their byte volume (at least one core), no handoff.
func (e *Extractor) runFactoredStatic(vol [][]float64, sc *Scratch) (*Result, error) {
	ns := e.P.NumSources()
	var demands []sim.Demand
	var owner [][]int
	var simSc *sim.RunScratch
	if sc != nil {
		demands = sc.demands[:0]
		owner = sc.idxMatrix(e.P.N, ns)
		simSc = &sc.sim
	} else {
		owner = make([][]int, e.P.N)
		for g := range owner {
			owner[g] = make([]int, ns)
			for j := range owner[g] {
				owner[g][j] = -1
			}
		}
	}
	pc := e.plan
	for g := 0; g < e.P.N; g++ {
		total := 0.0
		for _, v := range vol[g] {
			total += v
		}
		for j := 0; j < ns; j++ {
			if vol[g][j] == 0 {
				continue
			}
			if !pc.pathOK[g][j] {
				return nil, fmt.Errorf("extract: gpu %d routed to unreachable source %d", g, j)
			}
			cores := float64(e.P.GPU.SMs) * vol[g][j] / total
			if cores < 1 {
				cores = 1
			}
			owner[g][j] = len(demands)
			demands = append(demands, sim.Demand{
				Label: pc.staticLabels[g][j],
				Bytes: vol[g][j], Cores: cores, RCore: pc.rcore[g][j],
				Path: pc.paths[g][j], PadTo: -1,
			})
		}
	}
	if sc != nil {
		sc.demands = demands
	}
	res, err := e.P.Topo.RunWith(demands, simSc)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Time:      res.Makespan,
		LinkBytes: res.LinkBytes,
		SrcBytes:  vol,
		Phases:    res.Phases,
	}
	if sc != nil {
		out.PerGPU = sc.perGPUSlice(e.P.N)
	} else {
		out.PerGPU = make([]float64, e.P.N)
	}
	for g := 0; g < e.P.N; g++ {
		for j := 0; j < ns; j++ {
			if di := owner[g][j]; di >= 0 && res.Finish[di] > out.PerGPU[g] {
				out.PerGPU[g] = res.Finish[di]
			}
		}
	}
	return out, nil
}
