package extract

import (
	"math"
	"testing"

	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/workload"
)

// buildPlacement solves a UGache placement for tests.
func buildPlacement(t *testing.T, p *platform.Platform, n int, ratio float64, pol solver.Policy) (*solver.Placement, *solver.Input) {
	t.Helper()
	r := rng.New(7)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -1.1)
	}
	scale := 100000 / h.Total()
	for i := range h {
		h[i] *= scale
	}
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(float64(n) * ratio)
	}
	in := &solver.Input{P: p, Hotness: h, EntryBytes: 512, Capacity: caps}
	pl, err := pol.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	return pl, in
}

// genBatch draws a Zipf batch per GPU.
func genBatch(t *testing.T, n, keysPerGPU, gpus int, seed uint64) *Batch {
	t.Helper()
	z, err := workload.NewZipf(int64(n), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	b := &Batch{Keys: make([][]int64, gpus)}
	scratch := make(map[int64]struct{})
	for g := 0; g < gpus; g++ {
		keys := make([]int64, keysPerGPU)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		b.Keys[g] = workload.Unique(keys, scratch)
	}
	return b
}

func TestFactoredBasic(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 20000, 0.08, solver.UGache{})
	ex, err := New(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b := genBatch(t, 20000, 50000, p.N, 1)
	res, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("time %g", res.Time)
	}
	for g, pt := range res.PerGPU {
		if pt <= 0 || pt > res.Time+1e-12 {
			t.Fatalf("gpu %d time %g vs makespan %g", g, pt, res.Time)
		}
	}
	// Bytes conservation: sum over sources equals unique keys × entry size.
	for g := range res.SrcBytes {
		sum := 0.0
		for _, v := range res.SrcBytes[g] {
			sum += v
		}
		want := float64(len(b.Keys[g])) * 512
		if math.Abs(sum-want) > 1 {
			t.Fatalf("gpu %d bytes %g, want %g", g, sum, want)
		}
	}
}

func TestFactoredBeatsPeerRandom(t *testing.T) {
	// The paper's Fig. 4 shape: factored < peer-random < message-based on
	// mixed local/remote/host traffic.
	for _, p := range []*platform.Platform{platform.ServerA(), platform.ServerC()} {
		// Full-coverage partition placement: remote traffic dominates, the
		// regime of Fig. 4. (With a host tail, the PCIe bound dominates all
		// mechanisms equally — the paper's own observation for 4×V100.)
		pl, _ := buildPlacement(t, p, 20000, 1.0/float64(p.N)+0.02, solver.Partition{})
		ex, err := New(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		b := genBatch(t, 20000, 80000, p.N, 2)
		tf, err := ex.Run(Factored, b)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := ex.Run(PeerRandom, b)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := ex.Run(MessageBased, b)
		if err != nil {
			t.Fatal(err)
		}
		if !(tf.Time < tp.Time) {
			t.Fatalf("%s: factored %g not faster than peer %g", p.Name, tf.Time, tp.Time)
		}
		if !(tp.Time < tm.Time) {
			t.Fatalf("%s: peer %g not faster than message %g", p.Name, tp.Time, tm.Time)
		}
	}
}

func TestFactoredImprovesLinkUtilization(t *testing.T) {
	// Fig. 13: FEM raises PCIe and NVLink utilization vs the naive peer
	// mechanism.
	p := platform.ServerC()
	// Near-full-coverage partition: remote-dominated with a small host
	// tail, the Fig. 13 regime (both links active, neither PCIe-bound).
	pl, _ := buildPlacement(t, p, 20000, 0.115, solver.Partition{})
	ex, _ := New(p, pl)
	b := genBatch(t, 20000, 80000, p.N, 3)
	tf, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ex.Run(PeerRandom, b)
	if err != nil {
		t.Fatal(err)
	}
	nvF := tf.Utilization(p, p.NVLinkIDs())
	nvP := tp.Utilization(p, p.NVLinkIDs())
	if nvF <= nvP {
		t.Fatalf("NVLink utilization: factored %g <= peer %g", nvF, nvP)
	}
	pcF := tf.Utilization(p, p.PCIeIDs())
	pcP := tp.Utilization(p, p.PCIeIDs())
	if pcF <= pcP {
		t.Fatalf("PCIe utilization: factored %g <= peer %g", pcF, pcP)
	}
}

func TestMechanismsOnAllPlacements(t *testing.T) {
	// Every mechanism must run on every policy's placement on every server.
	pols := []solver.Policy{solver.Replication{}, solver.CliquePartition{}, solver.UGache{}}
	for _, p := range []*platform.Platform{platform.ServerA(), platform.ServerB(), platform.ServerC()} {
		for _, pol := range pols {
			pl, _ := buildPlacement(t, p, 8000, 0.05, pol)
			ex, err := New(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			b := genBatch(t, 8000, 20000, p.N, 4)
			for _, m := range []Mechanism{Factored, PeerRandom, MessageBased} {
				res, err := ex.Run(m, b)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", p.Name, pol.Name(), m, err)
				}
				if res.Time <= 0 || math.IsNaN(res.Time) {
					t.Fatalf("%s/%s/%s: time %g", p.Name, pol.Name(), m, res.Time)
				}
			}
		}
	}
}

func TestLocalOnlyBatch(t *testing.T) {
	// A batch fully covered by a replication cache uses no PCIe or NVLink.
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 10000, 0.2, solver.Replication{})
	ex, _ := New(p, pl)
	// Only the hottest keys (all cached): ranks 0..99 map to some entries;
	// use ByRank to find them.
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(pl.ByRank[i])
	}
	b := &Batch{Keys: make([][]int64, p.N)}
	for g := range b.Keys {
		b.Keys[g] = keys
	}
	res, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Utilization(p, p.PCIeIDs()); u != 0 {
		t.Fatalf("PCIe used on local-only batch: %g", u)
	}
	if u := res.Utilization(p, p.NVLinkIDs()); u != 0 {
		t.Fatalf("NVLink used on local-only batch: %g", u)
	}
}

func TestBatchValidation(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 1000, 0.1, solver.Replication{})
	ex, _ := New(p, pl)
	if _, err := ex.Run(Factored, &Batch{Keys: [][]int64{{1}}}); err == nil {
		t.Fatal("wrong GPU count accepted")
	}
	bad := &Batch{Keys: make([][]int64, p.N)}
	bad.Keys[0] = []int64{99999}
	if _, err := ex.Run(Factored, bad); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if _, err := New(nil, pl); err == nil {
		t.Fatal("nil platform accepted")
	}
	if _, err := New(platform.ServerA(), pl); err == nil {
		t.Fatal("GPU-count mismatch accepted")
	}
}

func TestPeerRandomStallReported(t *testing.T) {
	p := platform.ServerA()
	pl, _ := buildPlacement(t, p, 20000, 0.04, solver.Partition{})
	ex, _ := New(p, pl)
	b := genBatch(t, 20000, 60000, p.N, 5)
	res, err := ex.Run(PeerRandom, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled < 0 || res.Stalled > 1 {
		t.Fatalf("stall fraction %g", res.Stalled)
	}
}

func TestDeterministicExtraction(t *testing.T) {
	p := platform.ServerC()
	pl, _ := buildPlacement(t, p, 5000, 0.08, solver.UGache{})
	ex, _ := New(p, pl)
	b := genBatch(t, 5000, 10000, p.N, 6)
	r1, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time {
		t.Fatalf("nondeterministic: %g vs %g", r1.Time, r2.Time)
	}
}

func TestFactoredStaticAblation(t *testing.T) {
	// The padding ablation mechanism must run, respect physics, and never
	// beat the same link bounds.
	p := platform.ServerB()
	pl, _ := buildPlacement(t, p, 10000, 0.1, solver.CliquePartition{})
	ex, _ := New(p, pl)
	b := genBatch(t, 10000, 40000, p.N, 9)
	static, err := ex.Run(FactoredStatic, b)
	if err != nil {
		t.Fatal(err)
	}
	if static.Time <= 0 || math.IsNaN(static.Time) {
		t.Fatalf("static time %g", static.Time)
	}
	full, err := ex.Run(Factored, b)
	if err != nil {
		t.Fatal(err)
	}
	// Both respect the same per-batch byte volumes.
	for g := range full.SrcBytes {
		for j := range full.SrcBytes[g] {
			if full.SrcBytes[g][j] != static.SrcBytes[g][j] {
				t.Fatal("mechanisms disagree on volumes")
			}
		}
	}
	if FactoredStatic.String() != "factored-static" {
		t.Fatal("name")
	}
}

func BenchmarkFactoredExtraction(b *testing.B) {
	p := platform.ServerC()
	r := rng.New(7)
	n := 100000
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -1.1)
	}
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(float64(n) * 0.08)
	}
	in := &solver.Input{P: p, Hotness: h, EntryBytes: 512, Capacity: caps}
	pl, err := (solver.UGache{}).Solve(in)
	if err != nil {
		b.Fatal(err)
	}
	ex, _ := New(p, pl)
	z, _ := workload.NewZipf(int64(n), 1.1)
	batch := &Batch{Keys: make([][]int64, p.N)}
	scratch := map[int64]struct{}{}
	for g := 0; g < p.N; g++ {
		keys := make([]int64, 400000)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		batch.Keys[g] = workload.Unique(keys, scratch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(Factored, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelPredictsSimulation(t *testing.T) {
	// The §6.2 planning model and the fluid simulation must agree on the
	// factored extraction time within a small factor across regimes —
	// otherwise the solver optimizes the wrong objective. The model prices
	// expected per-iteration hotness mass while the simulation sees one
	// concrete batch, so agreement is approximate.
	const n, draws = 30000, 120000
	// Presence-based hotness from profiled batches, exactly as the apps
	// measure it — so the model's mass matches a batch's unique-key mix.
	var profile [][]int64
	for i := 0; i < 24; i++ {
		pb := genBatch(t, n, draws, 1, uint64(100+i))
		profile = append(profile, pb.Keys[0])
	}
	hot, err := workload.ProfileBatches(n, profile)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		p     *platform.Platform
		ratio float64
	}{
		{platform.ServerA(), 0.05},
		{platform.ServerA(), 0.2},
		{platform.ServerC(), 0.05},
		{platform.ServerC(), 0.2},
		{platform.ServerB(), 0.1},
	} {
		caps := make([]int64, tc.p.N)
		for g := range caps {
			caps[g] = int64(float64(n) * tc.ratio)
		}
		in := &solver.Input{P: tc.p, Hotness: hot, EntryBytes: 512, Capacity: caps}
		pl, err := (solver.UGache{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := New(tc.p, pl)
		if err != nil {
			t.Fatal(err)
		}
		b := genBatch(t, n, draws, tc.p.N, 11)
		res, err := ex.Run(Factored, b)
		if err != nil {
			t.Fatal(err)
		}
		// Scale the model estimate to this batch's actual unique-key count.
		est := solver.EstimateTimes(in, pl)
		maxEst := 0.0
		for _, v := range est {
			if v > maxEst {
				maxEst = v
			}
		}
		massKeys := hot.Total()
		batchKeys := float64(len(b.Keys[0]))
		scaled := maxEst * batchKeys / massKeys
		ratio := res.Time / scaled
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("%s ratio %.2f: sim %.3gus vs scaled model %.3gus (x%.2f)",
				tc.p.Name, tc.ratio, res.Time*1e6, scaled*1e6, ratio)
		}
	}
}
