// Package bench regenerates every table and figure of the paper's
// evaluation (§8) on the simulated platforms. Each experiment is a function
// from Options to a rendered Result; the cmd/ugache-bench binary and the
// root bench_test.go both dispatch through the Registry.
//
// Absolute numbers differ from the paper (the substrate is a simulator and
// the datasets are 1/100-scale stand-ins); the reproduced quantity is the
// shape: which system wins, by roughly what factor, and where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies the stock datasets (which are already 1/100 of the
	// paper's). 1.0 regenerates the full stand-ins; tests use ~0.05.
	Scale float64
	// Iters is the measured iterations per configuration (default 3, as in
	// the paper's three-run averages).
	Iters int
	// Seed feeds all generators.
	Seed uint64
	// Quick trims the configuration matrix for fast runs.
	Quick bool
	// Workers bounds the pre-warm pool that computes a figure's independent
	// configurations concurrently: 0 uses one worker per CPU, 1 disables
	// the pre-warm entirely (fully sequential execution). Output is
	// byte-identical regardless of the setting.
	Workers int
	// Telemetry, when non-nil, is threaded into the core systems an
	// experiment builds so the caller can render the accumulated samples
	// after the run. Nil (the default) leaves instrumentation disabled.
	Telemetry *telemetry.Registry
	// Timeline, when non-nil, is threaded alongside Telemetry into the
	// instrumented core systems so refresh and solver spans land in a
	// Chrome trace (cmd/ugache-bench -timeline).
	Timeline *timeline.Recorder
	// Lookahead, when positive, narrows the prefetch experiment's sweep to
	// {0, Lookahead} instead of the default {0, 2, 8} (cmd/ugache-bench
	// -lookahead).
	Lookahead int
	// StaleBatches is the bounded-staleness window S the prefetch
	// experiment serves under (0 = the experiment default of 16;
	// cmd/ugache-bench -stale-threshold).
	StaleBatches int
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// memScale converts the dataset scale into the memory-model scale: stock
// datasets are 1/100 of the paper's, so GPU memory scales by Scale/100.
func (o Options) memScale() float64 {
	return 0.01 * o.Scale
}

// Result is one experiment's rendered output.
type Result struct {
	Name string
	Text string
	// JSON, when non-nil, is a machine-readable report of the same run
	// (cmd/ugache-bench -json-out marshals it; BENCH_drift.json is one).
	JSON any
}

// Experiment is a registry entry.
type Experiment struct {
	Name  string
	Brief string
	Run   func(Options) (*Result, error)
}

// Registry maps experiment names (table1, fig2, ...) to runners; Names
// returns them sorted.
var Registry = map[string]Experiment{}

func register(name, brief string, run func(Options) (*Result, error)) {
	Registry[name] = Experiment{Name: name, Brief: brief, Run: run}
}

// Names lists registered experiments sorted by name.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for n := range Registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResetCaches clears the dataset and report memoization. Benchmarks call
// it between iterations so repeat runs measure the real pipeline rather
// than cache hits.
func ResetCaches() {
	gnnCacheMu.Lock()
	gnnCache = map[string]*graph.Dataset{}
	gnnCacheMu.Unlock()
	dlrCacheMu.Lock()
	dlrCache = map[string]*workload.DLRDataset{}
	dlrCacheMu.Unlock()
	resetReportCache()
}

// Run executes one experiment by name.
func Run(name string, opt Options) (*Result, error) {
	exp, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return exp.Run(opt.normalize())
}

// serverSet returns the evaluation platforms, trimmed under Quick.
func serverSet(o Options) []*platform.Platform {
	if o.Quick {
		return []*platform.Platform{platform.ServerC()}
	}
	return []*platform.Platform{platform.ServerA(), platform.ServerB(), platform.ServerC()}
}

// Dataset caches: generation dominates setup cost, and every figure wants
// the same graphs.
var (
	gnnCacheMu sync.Mutex
	gnnCache   = map[string]*graph.Dataset{}
	dlrCacheMu sync.Mutex
	dlrCache   = map[string]*workload.DLRDataset{}
)

func gnnDataset(spec graph.DatasetSpec, o Options) (*graph.Dataset, error) {
	key := fmt.Sprintf("%s/%g/%d", spec.Name, o.Scale, o.Seed)
	gnnCacheMu.Lock()
	defer gnnCacheMu.Unlock()
	if d, ok := gnnCache[key]; ok {
		return d, nil
	}
	d, err := spec.Build(o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	gnnCache[key] = d
	return d, nil
}

func dlrDataset(spec workload.DLRSpec, o Options) (*workload.DLRDataset, error) {
	key := fmt.Sprintf("%s/%g/%d", spec.Name, o.Scale, o.Seed)
	dlrCacheMu.Lock()
	defer dlrCacheMu.Unlock()
	if d, ok := dlrCache[key]; ok {
		return d, nil
	}
	d, err := spec.Build(o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	dlrCache[key] = d
	return d, nil
}

// fmtMS renders seconds as milliseconds.
func fmtMS(sec float64) string { return fmt.Sprintf("%.3f", sec*1e3) }

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// fmtGB renders bytes as GB.
func fmtGB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }
