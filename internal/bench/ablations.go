package bench

import (
	"fmt"
	"math"
	"time"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/extract"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/sim"
	"ugache/internal/solver"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("ablate-blocks", "block budget vs solve time and optimality gap (§6.3 approximation)", ablateBlocks)
	register("ablate-policies", "policy family comparison on the §6.2 model across platforms", ablatePolicies)
	register("ablate-dedication", "FEM host-core reservation sweep", ablateDedication)
	register("ablate-padding", "local-extraction padding on/off (§5.3)", ablatePadding)
	register("ablate-hotness", "hotness source: presampling vs degree proxy (§6.1)", ablateHotness)
	register("ablate-dispatch", "locality-aware dispatching vs UGache (§3.1 [31])", ablateDispatch)
}

// ablationInput builds a synthetic solver input with Zipf hotness.
func ablationInput(p *platform.Platform, n int, alpha, ratio float64, seed uint64) *solver.Input {
	r := rng.New(seed)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -alpha)
	}
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(float64(n) * ratio)
	}
	return &solver.Input{P: p, Hotness: h, EntryBytes: 512, Capacity: caps}
}

// ablateBlocks sweeps the §6.3 block budget: more blocks mean a bigger LP
// but a smaller approximation loss — the paper's "less than one thousand
// blocks, ~10 s solve, <2% average gap" trade-off.
func ablateBlocks(o Options) (*Result, error) {
	p := platform.ServerC()
	n := int(200000 * o.Scale)
	if n < 20000 {
		n = 20000
	}
	ref := ablationInput(p, n, 1.1, 0.08, o.Seed)
	ref.BlockBudget = 1024
	refPl, err := (solver.OptimalLP{}).Solve(ref)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: block budget (sup-style Zipf 1.1, ratio 8%, Server C)",
		"blocks", "solve(ms)", "modelled time(us)", "gap vs 1024-block optimal")
	for _, budget := range []int{16, 32, 64, 128, 256, 512} {
		in := ablationInput(p, n, 1.1, 0.08, o.Seed)
		in.BlockBudget = budget
		t0 := time.Now()
		pl, err := (solver.UGache{}).Solve(in)
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		got := maxFloat(pl.EstTimes)
		gap := "-"
		if refPl.LowerBound > 0 {
			gap = fmt.Sprintf("%+.2f%%", 100*(got/refPl.LowerBound-1))
		}
		t.AddRow(fmt.Sprintf("%d", budget),
			fmt.Sprintf("%.1f", float64(el.Microseconds())/1000),
			fmt.Sprintf("%.4g", got*1e6), gap)
	}
	return &Result{Name: "ablate-blocks", Text: t.String() +
		"\nPaper: block batching reduces E from billions to <1000 with <2% average loss.\n"}, nil
}

// ablatePolicies compares every policy family on the §6.2 model across the
// three servers at a moderate ratio.
func ablatePolicies(o Options) (*Result, error) {
	n := int(200000 * o.Scale)
	if n < 20000 {
		n = 20000
	}
	t := stats.NewTable("Ablation: policy families, modelled extraction time (us)",
		"server", "replication", "partition", "clique", "rep-part", "ugache-greedy", "ugache")
	for _, p := range serverSet(o) {
		row := []string{p.Name}
		for _, polName := range []string{"replication", "partition", "clique-partition", "rep-part", "ugache-greedy", "ugache"} {
			pol, err := solver.PolicyByName(polName)
			if err != nil {
				return nil, err
			}
			in := ablationInput(p, n, 1.1, 0.08, o.Seed)
			pl, err := pol.Solve(in)
			if err != nil {
				row = append(row, "fail")
				continue
			}
			row = append(row, fmt.Sprintf("%.4g", maxFloat(pl.EstTimes)*1e6))
		}
		t.AddRow(row...)
	}
	return &Result{Name: "ablate-policies", Text: t.String()}, nil
}

// ablateDedication sweeps the FEM host-core reservation around the §5.3
// tolerance-derived default, confirming the design point.
func ablateDedication(o Options) (*Result, error) {
	p := platform.ServerC()
	// Manual factored run: host + remote groups with varying host cores.
	t := stats.NewTable("Ablation: host-core reservation (Server C, mixed batch)",
		"host cores", "extraction (us)")
	hostTol, _ := p.Tolerance(0, p.Host())
	def := int(math.Ceil(hostTol))
	for _, hc := range []int{1, 2, 4, def, 2 * def, 4 * def} {
		time, err := factoredWithHostCores(p, hc)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", hc)
		if hc == def {
			label += " (tolerance, default)"
		}
		t.AddRow(label, fmt.Sprintf("%.2f", time*1e6))
	}
	return &Result{Name: "ablate-dedication", Text: t.String() +
		"\nShape: too few host cores leave PCIe unsaturated; too many steal from the\n" +
		"NVLink groups. The tolerance-derived default sits at the knee (§5.3).\n"}, nil
}

// factoredWithHostCores simulates one destination's factored extraction
// with an explicit host-core count; remote groups split the remainder and
// pad into local as usual.
func factoredWithHostCores(p *platform.Platform, hostCores int) (float64, error) {
	// A representative mixed batch per GPU: 30% local, 65% remote (spread
	// over peers), 5% host, 16 MB total — remote-heavy so both failure
	// directions of the reservation are visible.
	const total = 16e6
	localB, remoteB, hostB := 0.3*total, 0.65*total, 0.05*total
	var demands []sim.Demand
	for g := 0; g < p.N; g++ {
		localIdx := len(demands)
		lp, _ := p.Path(g, platform.SourceID(g))
		demands = append(demands, sim.Demand{
			Bytes: localB, Cores: 0, RCore: p.GPU.RCoreLocal, Path: lp, PadTo: -1,
		})
		hp, _ := p.Path(g, p.Host())
		demands = append(demands, sim.Demand{
			Bytes: hostB, Cores: float64(hostCores), RCore: p.GPU.RCoreHost,
			Path: hp, PadTo: localIdx,
		})
		remaining := float64(p.GPU.SMs) - float64(hostCores)
		each := remaining / float64(p.N-1)
		for j := 0; j < p.N; j++ {
			if j == g {
				continue
			}
			rp, ok := p.Path(g, platform.SourceID(j))
			if !ok {
				continue
			}
			demands = append(demands, sim.Demand{
				Bytes: remoteB / float64(p.N-1), Cores: each,
				RCore: p.GPU.RCoreRemote, Path: rp, PadTo: localIdx,
			})
		}
	}
	res, err := p.Topo.Run(demands)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

func maxFloat(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ablatePadding compares full FEM against the static no-padding variant
// (§5.3's load-imbalance tolerance) across cache ratios.
func ablatePadding(o Options) (*Result, error) {
	// Padding matters when per-source times are ragged despite core
	// dedication — i.e. when link tolerances cap a group's speed (DGX-1's
	// uneven 25/50 GB/s pairs under a partition placement). On even,
	// core-bound mixes a static proportional split ties with padding.
	p := platform.ServerB()
	t := stats.NewTable("Ablation: local-extraction padding (partition placement, Server B)",
		"ratio%", "factored (us)", "no padding (us)", "padding gain")
	for _, ratio := range []float64{0.10, 0.20, 0.30} {
		in := ablationInput(p, 50000, 1.1, ratio, o.Seed)
		pl, err := (solver.CliquePartition{}).Solve(in)
		if err != nil {
			return nil, err
		}
		ex, err := extract.New(p, pl)
		if err != nil {
			return nil, err
		}
		b, err := ablationBatch(p, 50000, o.Seed)
		if err != nil {
			return nil, err
		}
		full, err := ex.Run(extract.Factored, b)
		if err != nil {
			return nil, err
		}
		static, err := ex.Run(extract.FactoredStatic, b)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", ratio*100),
			fmt.Sprintf("%.2f", full.Time*1e6),
			fmt.Sprintf("%.2f", static.Time*1e6),
			fmt.Sprintf("%.2fx", static.Time/full.Time))
	}
	return &Result{Name: "ablate-padding", Text: t.String() +
		"\nHonest finding: in the fluid model the gain is near 1.0x — with exact\n" +
		"per-batch byte counts a static proportional split is already nearly\n" +
		"work-conserving. The paper's padding benefit comes from *unpredictable*\n" +
		"per-batch raggedness that a static split cannot track on real hardware;\n" +
		"the deterministic simulator cannot exhibit that variance, so this\n" +
		"ablation bounds the padding benefit rather than reproducing it\n" +
		"(a documented limitation; see DESIGN.md §6).\n"}, nil
}

// ablationBatch draws one Zipf batch for every GPU.
func ablationBatch(p *platform.Platform, n int, seed uint64) (*extract.Batch, error) {
	z, err := workload.NewZipf(int64(n), 1.1)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed).Split("ablation-batch")
	b := &extract.Batch{Keys: make([][]int64, p.N)}
	scratch := make(map[int64]struct{})
	for g := 0; g < p.N; g++ {
		keys := make([]int64, 120000)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		b.Keys[g] = workload.Unique(keys, scratch)
	}
	return b, nil
}

// ablateHotness compares the two §6.1 hotness sources: presampled batches
// (GNNLab-style) versus the vertex-degree proxy (PaGraph-style).
func ablateHotness(o Options) (*Result, error) {
	p := platform.ServerC()
	ds, err := gnnDataset(graph.PA, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: hotness source (sup. SAGE/PA, Server C, ratio 8%)",
		"hotness", "extract (ms)", "local", "remote", "host")
	for _, mode := range []struct {
		label  string
		degree bool
	}{{"presampled (§6.1 profiling)", false}, {"degree proxy (PaGraph)", true}} {
		a, err := app.NewGNN(app.GNNConfig{
			P: p, DS: ds, Model: "sage", Supervised: true,
			BatchSize: gnnBatch(o), Spec: baselines.UGache, CacheRatio: 0.08,
			DegreeHotness: mode.degree, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		rep, err := a.RunIters(o.Iters)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.label, fmtMS(rep.PerIter.Extract),
			fmtPct(rep.HitLocal), fmtPct(rep.HitRemote), fmtPct(rep.HitHost))
	}
	return &Result{Name: "ablate-hotness", Text: t.String() +
		"\nShape: the degree proxy preserves the ranking direction (§6.1: \"vertices\n" +
		"with higher degrees are more likely to be accessed\") but loses measurably\n" +
		"to presampling because it ignores the train-set-conditioned access\n" +
		"pattern — consistent with GNNLab's pre-sampling improving on PaGraph.\n"}, nil
}

// ablateDispatch measures locality-aware dispatching (HET-GMP [31], §3.1):
// routing each inference sample to its highest-affinity GPU raises a
// partition cache's local hit rate, but — as the paper argues — cannot
// overcome the long-tail effect, and UGache still wins without touching
// the application's dispatching.
func ablateDispatch(o Options) (*Result, error) {
	p := platform.ServerC()
	ds, err := dlrDataset(workload.SYNA, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: locality-aware dispatching (DLRM/SYN-A, Server C)",
		"system", "extract (ms)", "local", "remote", "host")
	run := func(label string, spec baselines.Spec, dispatch bool) error {
		a, err := app.NewDLR(app.DLRConfig{
			P: p, DS: ds, Model: "dlrm", BatchSize: dlrBatch(o), Spec: spec,
			Mem:              app.MemoryModel{MemScale: o.memScale()},
			LocalityDispatch: dispatch, Seed: o.Seed,
		})
		if err != nil {
			return err
		}
		rep, err := a.RunIters(o.Iters)
		if err != nil {
			return err
		}
		t.AddRow(label, fmtMS(rep.PerIter.Extract),
			fmtPct(rep.HitLocal), fmtPct(rep.HitRemote), fmtPct(rep.HitHost))
		return nil
	}
	if err := run("PartU", baselines.PartU, false); err != nil {
		return nil, err
	}
	if err := run("PartU + dispatch", baselines.PartU, true); err != nil {
		return nil, err
	}
	if err := run("UGache", baselines.UGache, false); err != nil {
		return nil, err
	}
	return &Result{Name: "ablate-dispatch", Text: t.String() +
		"\nShape (§3.1): dispatching lifts partition's local hit rate but the long\n" +
		"tail keeps its extraction above UGache's, which needs no application\n" +
		"changes.\n"}, nil
}
