package bench

import (
	"fmt"

	"ugache/internal/baselines"
	"ugache/internal/extract"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("fig4", "extraction time: message vs peer vs UGache (DLRM on CR and SYN-A)", figure4)
	register("fig10", "end-to-end time: all systems × servers × models × datasets", figure10)
	register("fig11", "embedding extraction time per iteration (same matrix + RepU/PartU)", figure11)
	register("fig13", "PCIe/NVLink utilization with and without FEM (Server C)", figure13)
}

// figure4 reproduces Figure 4: DLR inference extraction time under
// message-based, naive peer-based, and UGache's factored extraction on the
// 4×V100 and 8×A100 servers, with Criteo and the Zipfian synthetic.
func figure4(o Options) (*Result, error) {
	servers := []*platform.Platform{platform.ServerA(), platform.ServerC()}
	datasets := []workload.DLRSpec{workload.CR, workload.SYNA}
	var jobs []job
	for _, ds := range datasets {
		for _, p := range servers {
			for _, spec := range []baselines.Spec{baselines.SOK, baselines.PartU, baselines.UGache} {
				jobs = append(jobs, dlrJob(o, p, spec, ds, "dlrm", 0))
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, ds := range datasets {
		t := stats.NewTable(fmt.Sprintf("Figure 4: DLRM extraction time (ms), %s", ds.Name),
			"server", "Message", "Peer", "UGache")
		for _, p := range servers {
			var row []string
			row = append(row, p.Name)
			for _, spec := range []baselines.Spec{baselines.SOK, baselines.PartU, baselines.UGache} {
				rep, err := runDLR(o, p, spec, ds, "dlrm", 0)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtMS(rep.PerIter.Extract))
			}
			t.AddRow(row...)
		}
		parts = append(parts, t.String())
	}
	parts = append(parts, "Paper shape: peer < message; UGache < peer (Fig. 4 gaps ~1.3-2x).\n")
	return &Result{Name: "fig4", Text: joinResults(parts...)}, nil
}

// gnnWorkloads enumerates Fig. 10's GNN configurations.
func gnnWorkloads(o Options) []struct {
	Model string
	Sup   bool
	Label string
} {
	all := []struct {
		Model string
		Sup   bool
		Label string
	}{
		{"gcn", true, "GCN"},
		{"sage", true, "SAGE Sup."},
		{"sage", false, "SAGE Unsup."},
	}
	if o.Quick {
		return all[1:2]
	}
	return all
}

func gnnDatasetsFor(o Options) []graph.DatasetSpec {
	if o.Quick {
		return []graph.DatasetSpec{graph.PA}
	}
	return graph.GNNDatasets
}

func dlrDatasetsFor(o Options) []workload.DLRSpec {
	if o.Quick {
		return []workload.DLRSpec{workload.SYNA}
	}
	return workload.DLRDatasets
}

func dlrModelsFor(o Options) []string {
	if o.Quick {
		return []string{"dlrm"}
	}
	return []string{"dlrm", "dcn"}
}

// figure10 reproduces Figure 10: end-to-end epoch time (GNN) and iteration
// time (DLR) for every system × server × model × dataset. WholeGraph-style
// launch failures render as "fail" (the paper's PartU exists precisely to
// cover them).
func figure10(o Options) (*Result, error) {
	var jobs []job
	for _, p := range serverSet(o) {
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				for _, spec := range baselines.GNNSystems {
					jobs = append(jobs, gnnJob(o, p, spec, ds, w.Model, w.Sup, 0))
				}
			}
		}
	}
	for _, p := range serverSet(o) {
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				for _, spec := range baselines.DLRSystems {
					jobs = append(jobs, dlrJob(o, p, spec, ds, model, 0))
				}
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, p := range serverSet(o) {
		t := stats.NewTable(fmt.Sprintf("Figure 10(a): GNN epoch time (s), %s", p.Name),
			"workload", "dataset", "GNNLab", "PartU", "UGache")
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				row := []string{w.Label, ds.Name}
				for _, spec := range baselines.GNNSystems {
					rep, err := runGNN(o, p, spec, ds, w.Model, w.Sup, 0)
					if err != nil {
						row = append(row, "fail")
						continue
					}
					row = append(row, fmt.Sprintf("%.4f", rep.EpochSeconds))
				}
				t.AddRow(row...)
			}
		}
		parts = append(parts, t.String())
	}
	for _, p := range serverSet(o) {
		t := stats.NewTable(fmt.Sprintf("Figure 10(b): DLR iteration time (ms), %s", p.Name),
			"model", "dataset", "HPS", "SOK", "UGache")
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				row := []string{model, ds.Name}
				for _, spec := range baselines.DLRSystems {
					rep, err := runDLR(o, p, spec, ds, model, 0)
					if err != nil {
						row = append(row, "fail")
						continue
					}
					row = append(row, fmtMS(rep.PerIter.Iter()))
				}
				t.AddRow(row...)
			}
		}
		parts = append(parts, t.String())
	}
	parts = append(parts,
		"Paper shape: UGache fastest everywhere except near-parity when host extraction\n"+
			"dominates (4xV100 or MAG); avg 2.21x over GNNLab, 1.33x over partition systems,\n"+
			"1.51x over HPS, 2.07x over SOK.\n")
	return &Result{Name: "fig10", Text: joinResults(parts...)}, nil
}

// figure11 reproduces Figure 11: the embedding-extraction slice of every
// iteration, adding RepU and PartU to the DLR comparison as the paper does.
func figure11(o Options) (*Result, error) {
	dlrSpecs := []baselines.Spec{baselines.RepU, baselines.PartU, baselines.UGache, baselines.HPS, baselines.SOK}
	var jobs []job
	for _, p := range serverSet(o) {
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				for _, spec := range baselines.GNNSystems {
					jobs = append(jobs, gnnJob(o, p, spec, ds, w.Model, w.Sup, 0))
				}
			}
		}
	}
	for _, p := range serverSet(o) {
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				for _, spec := range dlrSpecs {
					jobs = append(jobs, dlrJob(o, p, spec, ds, model, 0))
				}
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, p := range serverSet(o) {
		t := stats.NewTable(fmt.Sprintf("Figure 11(a): GNN extraction time (ms), %s", p.Name),
			"workload", "dataset", "GNNLab", "PartU", "UGache")
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				row := []string{w.Label, ds.Name}
				for _, spec := range baselines.GNNSystems {
					rep, err := runGNN(o, p, spec, ds, w.Model, w.Sup, 0)
					if err != nil {
						row = append(row, "fail")
						continue
					}
					row = append(row, fmtMS(rep.PerIter.Extract))
				}
				t.AddRow(row...)
			}
		}
		parts = append(parts, t.String())
	}
	for _, p := range serverSet(o) {
		t := stats.NewTable(fmt.Sprintf("Figure 11(b): DLR extraction time (ms), %s", p.Name),
			"model", "dataset", "RepU", "PartU", "UGache", "HPS", "SOK")
		specs := dlrSpecs
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				row := []string{model, ds.Name}
				for _, spec := range specs {
					rep, err := runDLR(o, p, spec, ds, model, 0)
					if err != nil {
						row = append(row, "fail")
						continue
					}
					// HPS's LRU maintenance is part of its extraction path.
					row = append(row, fmtMS(rep.PerIter.Extract+rep.PerIter.Eviction))
				}
				t.AddRow(row...)
			}
		}
		parts = append(parts, t.String())
	}
	parts = append(parts,
		"Paper shape: UGache 3.57x over GNNLab and 2.62x over WholeGraph in extraction;\n"+
			"RepU/PartU land between their HPS/SOK ancestors and UGache.\n")
	return &Result{Name: "fig11", Text: joinResults(parts...)}, nil
}

// figure13 reproduces Figure 13: PCIe and NVLink utilization during
// extraction with and without the factored extraction mechanism, on Server
// C, for GCN (CF, MAG) and DLRM (CR, SYN-A).
func figure13(o Options) (*Result, error) {
	p := platform.ServerC()
	type cfg struct {
		label string
		run   func(spec baselines.Spec) (float64, float64, error)
	}
	var cfgs []cfg
	for _, ds := range []graph.DatasetSpec{graph.CF, graph.MAG} {
		ds := ds
		cfgs = append(cfgs, cfg{"GCN/" + ds.Name, func(spec baselines.Spec) (float64, float64, error) {
			rep, err := runGNN(o, p, spec, ds, "gcn", true, 0)
			if err != nil {
				return 0, 0, err
			}
			return rep.LinkUtilPCIe, rep.LinkUtilNVLink, nil
		}})
	}
	for _, ds := range []workload.DLRSpec{workload.CR, workload.SYNA} {
		ds := ds
		cfgs = append(cfgs, cfg{"DLRM/" + ds.Name, func(spec baselines.Spec) (float64, float64, error) {
			rep, err := runDLR(o, p, spec, ds, "dlrm", 0)
			if err != nil {
				return 0, 0, err
			}
			return rep.LinkUtilPCIe, rep.LinkUtilNVLink, nil
		}})
	}
	t := stats.NewTable("Figure 13: link utilization during extraction, Server C",
		"workload", "PCIe w/o FEM", "PCIe w/ FEM", "NVLink w/o FEM", "NVLink w/ FEM")
	// Same UGache cache policy; only the mechanism changes, as in the paper.
	withFEM := baselines.UGache
	withoutFEM := baselines.UGache.WithMechanism(extract.PeerRandom)
	var jobs []job
	for _, ds := range []graph.DatasetSpec{graph.CF, graph.MAG} {
		for _, spec := range []baselines.Spec{withoutFEM, withFEM} {
			jobs = append(jobs, gnnJob(o, p, spec, ds, "gcn", true, 0))
		}
	}
	for _, ds := range []workload.DLRSpec{workload.CR, workload.SYNA} {
		for _, spec := range []baselines.Spec{withoutFEM, withFEM} {
			jobs = append(jobs, dlrJob(o, p, spec, ds, "dlrm", 0))
		}
	}
	prewarm(o, jobs)
	for _, c := range cfgs {
		pOff, nOff, err := c.run(withoutFEM)
		if err != nil {
			return nil, err
		}
		pOn, nOn, err := c.run(withFEM)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label, fmtPct(pOff), fmtPct(pOn), fmtPct(nOff), fmtPct(nOn))
	}
	return &Result{Name: "fig13", Text: t.String() +
		"\nPaper shape: FEM lifts PCIe ~1.9x and NVLink ~3.5x on average; CF/GCN change\n" +
		"is small (little non-local traffic at high cache ratio).\n"}, nil
}
