package bench

import (
	"fmt"
	"strings"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("table1", "runtime/data breakdown of a single-GPU cache (unsup. GraphSAGE, MAG)", table1)
	register("table3", "dataset inventory (scaled stand-ins)", table3)
}

// singleA100 builds the Table 1 testbed: one A100-80GB.
func singleA100() (*platform.Platform, error) {
	return platform.New(platform.Config{
		Name: "1xA100", Kind: platform.SwitchBased, GPU: platform.A100x80,
		N: 1, PCIeBW: 25e9, DRAMBW: 320e9, SwitchPortBW: 270e9,
	})
}

// table1 reproduces Table 1: the MLP vs EMT time and data breakdown of
// unsupervised GraphSAGE training on MAG with one A100, with and without
// the embedding cache.
func table1(o Options) (*Result, error) {
	p, err := singleA100()
	if err != nil {
		return nil, err
	}
	ds, err := gnnDataset(graph.MAG, o)
	if err != nil {
		return nil, err
	}
	run := func(ratio float64) (*app.Report, error) {
		a, err := app.NewGNN(app.GNNConfig{
			P: p, DS: ds, Model: "sage", Supervised: false,
			BatchSize: gnnBatch(o), Spec: baselines.UGache, CacheRatio: ratio,
			Mem:  app.MemoryModel{MemScale: o.memScale()},
			Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		return a.RunIters(o.Iters)
	}
	noCache, err := run(1e-12) // effectively uncached
	if err != nil {
		return nil, err
	}
	cached, err := run(0) // memory-derived capacity, as on the real GPU
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Table 1: breakdown, unsup. GraphSAGE + MAG, 1xA100",
		"metric", "MLP", "EMT", "EMT w/ $", "Total", "Total w/ $")
	mlp := noCache.PerIter.Dense + noCache.PerIter.Sample
	t.AddRow("Execution Time (ms)",
		fmtMS(mlp),
		fmtMS(noCache.PerIter.Extract),
		fmtMS(cached.PerIter.Extract),
		fmtMS(mlp+noCache.PerIter.Extract),
		fmtMS(cached.PerIter.Dense+cached.PerIter.Sample+cached.PerIter.Extract))
	cachedBytes := cached.CapacityEntries * int64(ds.Table.EntryBytes())
	t.AddRow("Data Size (GB)",
		"~0.00", // dense parameters are MBs even unscaled
		fmtGB(ds.VolumeE()),
		fmt.Sprintf("%s (%s in $)", fmtGB(ds.VolumeE()), fmtGB(cachedBytes)),
		fmtGB(ds.VolumeE()), fmtGB(ds.VolumeE()))
	t.AddRow("Access Gmem Ratio",
		"100%",
		fmtPct(noCache.HitLocal),
		fmtPct(cached.HitLocal),
		"-", "-")
	text := t.String() + fmt.Sprintf(
		"\nPaper (full scale): EMT 113.3 ms -> 20.7 ms with cache; cache hit 84.6%%.\n"+
			"Shape check: cache cuts EMT by %.1fx; Gmem ratio %.1f%%.\n",
		noCache.PerIter.Extract/cached.PerIter.Extract, cached.HitLocal*100)
	return &Result{Name: "table1", Text: text}, nil
}

// table3 reproduces Table 3: the dataset inventory.
func table3(o Options) (*Result, error) {
	t := stats.NewTable("Table 3: GNN datasets (scaled stand-ins)",
		"dataset", "#vertex", "#edge", "dim", "dtype", "VolumeG(GB)", "VolumeE(GB)", "train%")
	for _, spec := range graph.GNNDatasets {
		ds, err := gnnDataset(spec, o)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", ds.G.NumNodes()),
			fmt.Sprintf("%d", ds.G.NumEdges()),
			fmt.Sprintf("%d", spec.Dim),
			spec.DType.String(),
			fmtGB(ds.VolumeG()),
			fmtGB(ds.VolumeE()),
			fmt.Sprintf("%.1f%%", 100*float64(len(ds.Train))/float64(ds.G.NumNodes())))
	}
	t2 := stats.NewTable("Table 3 (cont.): DLR datasets",
		"dataset", "#entry", "#table", "dim", "skew", "VolumeE(GB)")
	for _, spec := range workload.DLRDatasets {
		ds, err := dlrDataset(spec, o)
		if err != nil {
			return nil, err
		}
		skew := fmt.Sprintf("%.1f", spec.Alpha)
		if spec.Name == "CR" {
			skew = "trace-like"
		}
		t2.AddRow(spec.Name,
			fmt.Sprintf("%d", ds.NumEntries()),
			fmt.Sprintf("%d", len(spec.TableSizes)),
			fmt.Sprintf("%d", spec.Dim),
			skew,
			fmtGB(ds.MT.TotalBytes()))
	}
	return &Result{Name: "table3", Text: t.String() + "\n" + t2.String()}, nil
}

// joinResults concatenates rendered sections.
func joinResults(parts ...string) string {
	return strings.Join(parts, "\n")
}
