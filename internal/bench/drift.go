package bench

import (
	"fmt"
	"math"

	"ugache/internal/baselines"
	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("drift", "served p99 through a flash-crowd drift event: blind-periodic vs drift-triggered refresh vs online LFU", driftBench)
}

// DriftModeReport is one refresh policy's run over the shared drift schedule.
type DriftModeReport struct {
	Mode string `json:"mode"`
	// Iteration-latency percentiles in milliseconds: overall, during the
	// stationary warm-up phase, through the drift window (the batches right
	// after the flash-crowd shift), and after recovery.
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	StationaryMs float64 `json:"stationary_p99_ms"`
	DriftMs      float64 `json:"drift_p99_ms"`
	RecoveredMs  float64 `json:"recovered_p99_ms"`
	// Re-solve accounting: solves that fired before the shift (pure waste),
	// total solves, and how many batches after the shift the first useful
	// solve triggered (-1 = never).
	StationarySolves int `json:"stationary_resolves"`
	TotalSolves      int `json:"total_resolves"`
	TriggerDelay     int `json:"trigger_delay_batches"`
	// Incremental-delta accounting for the last refresh: entries actually
	// moved vs what a from-scratch rebuild would have moved. ChurnEntries is
	// the LFU's cumulative membership churn instead.
	MovedEntries   int64 `json:"moved_entries"`
	RebuildEntries int64 `json:"rebuild_entries"`
	ChurnEntries   int64 `json:"churn_entries,omitempty"`
}

// DriftReport is the drift experiment's machine-readable output
// (BENCH_drift.json).
type DriftReport struct {
	Server       string            `json:"server"`
	Entries      int64             `json:"entries"`
	KeysPerBatch int               `json:"keys_per_batch"`
	Batches      int               `json:"batches"`
	ShiftBatch   int               `json:"shift_batch"`
	Modes        []DriftModeReport `json:"modes"`
}

// driftScenario is the shared schedule all policies replay: a flash-crowd
// key-set rotation partway through a Zipf stream on Server A.
type driftScenario struct {
	p            *platform.Platform
	sz           *workload.ShiftingZipf
	n            int64
	entryBytes   int
	capacity     int64
	keysPerBatch int
	batches      int
	shiftAt      int
	driftWindow  int // batches after the shift counted as "through the event"
	refHot       workload.Hotness
	seed         uint64
}

func newDriftScenario(o Options) *driftScenario {
	n := int64(40_000 * o.Scale)
	if n < 4096 {
		n = 4096
	}
	sc := &driftScenario{
		p:            platform.ServerA(),
		n:            n,
		entryBytes:   128,
		capacity:     n / 8,
		keysPerBatch: 1024,
		batches:      240,
		seed:         o.Seed,
	}
	if o.Quick {
		sc.keysPerBatch = 512
		sc.batches = 96
	}
	sc.shiftAt = sc.batches / 3
	sc.driftWindow = sc.batches / 4
	sz, err := workload.NewFlashCrowd(n, 0.9, sc.shiftAt, 0)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	sc.sz = sz
	sc.refHot = sz.ExpectedHotness(0, sc.keysPerBatch)
	return sc
}

// stream returns a fresh deterministic replay of the key schedule; every
// mode consumes an identical sequence.
func (sc *driftScenario) stream() *rng.Rand {
	return rng.New(sc.seed).Split("drift-stream")
}

// refreshConfig paces the §7.2 replay so a refresh lasts a handful of
// foreground iterations — the experiment's clock is one batch per baseIter
// seconds, and the impact window must be visible at that resolution without
// swallowing the whole run.
func (sc *driftScenario) refreshConfig(baseIter float64) cache.RefreshConfig {
	cfg := cache.DefaultRefreshConfig()
	cfg.SolveSeconds = 2 * baseIter
	cfg.BatchEntries = maxI64b(sc.n/64, 1)
	cfg.PauseSeconds = baseIter
	// Size the bandwidth so turning over one GPU's full cache costs ~8
	// iterations of update time.
	cfg.UpdateBandwidth = float64(sc.capacity*int64(sc.entryBytes)) / (8 * baseIter)
	cfg.SamplePeriod = baseIter
	return cfg
}

// phase splits a latency trace into the scenario's three phases and returns
// their p99s (plus overall p50/p99).
func (sc *driftScenario) phases(lats []float64) (p50, p99, stationary, drift, recovered float64) {
	driftEnd := sc.shiftAt + sc.driftWindow
	if driftEnd > len(lats) {
		driftEnd = len(lats)
	}
	q := stats.Quantiles(append([]float64(nil), lats...), 0.50, 0.99)
	p50, p99 = q[0], q[1]
	stationary = stats.Quantiles(append([]float64(nil), lats[:sc.shiftAt]...), 0.99)[0]
	drift = stats.Quantiles(append([]float64(nil), lats[sc.shiftAt:driftEnd]...), 0.99)[0]
	if driftEnd < len(lats) {
		recovered = stats.Quantiles(append([]float64(nil), lats[driftEnd:]...), 0.99)[0]
	}
	return
}

// runControllerMode replays the schedule against a solved cache under one
// controller policy (periodic or drift), modelling each triggered refresh's
// foreground impact by inflating the iterations that overlap it.
func runControllerMode(o Options, sc *driftScenario, mode core.RefreshMode) (DriftModeReport, error) {
	rep := DriftModeReport{Mode: mode.String(), TriggerDelay: -1}
	sys, err := core.Build(core.Config{
		Platform:           sc.p,
		Hotness:            sc.refHot,
		EntryBytes:         sc.entryBytes,
		CacheEntriesPerGPU: sc.capacity,
		Telemetry:          o.Telemetry,
		Timeline:           o.Timeline,
	})
	if err != nil {
		return rep, err
	}

	// Baseline iteration time from one stationary batch (not part of the
	// measured trace).
	r := sc.stream()
	scratch := make(map[int64]struct{})
	batch := &extract.Batch{Keys: make([][]int64, sc.p.N)}
	extractTime := func(b int, keys []int64) (float64, error) {
		g := b % sc.p.N
		batch.Keys[g] = keys
		res, err := sys.ExtractBatch(batch)
		batch.Keys[g] = nil
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	}
	warm := workload.Unique(sc.sz.GenBatchAt(r, 0, sc.keysPerBatch), scratch)
	baseIter, err := extractTime(0, warm)
	if err != nil {
		return rep, err
	}

	sampler := cache.NewHotnessSampler(sc.n, 1)
	ctrl, err := core.NewController(sys, core.ControllerConfig{
		Mode:          mode,
		Sampler:       sampler,
		CheckEvery:    8,
		PeriodBatches: sc.batches / 4,
		Drift:         cache.DriftConfig{MinBatches: 16, MaxBatches: 32},
		Refresh:       sc.refreshConfig(baseIter),
		BaseIterTime:  baseIter,
		Telemetry:     o.Telemetry,
	})
	if err != nil {
		return rep, err
	}

	lats := make([]float64, 0, sc.batches)
	impactUntil, impactFactor := -1, 1.0
	for b := 0; b < sc.batches; b++ {
		uniq := workload.Unique(sc.sz.GenBatchAt(r, b, sc.keysPerBatch), scratch)
		iter, err := extractTime(b, uniq)
		if err != nil {
			return rep, err
		}
		if b < impactUntil {
			iter *= impactFactor
		}
		lats = append(lats, iter)
		sampler.Shard(0).Observe(uniq)
		if ctrl.BatchObserved() {
			st := ctrl.Stats()
			// The refresh runs in the background from the next batch on; its
			// foreground impact covers the iterations that overlap it.
			impactUntil = b + 1 + int(math.Ceil(st.LastDuration/baseIter))
			impactFactor = 1 + st.LastImpact
			if b < sc.shiftAt {
				rep.StationarySolves++
			} else if rep.TriggerDelay < 0 {
				rep.TriggerDelay = b - sc.shiftAt
			}
		}
	}
	st := ctrl.Stats()
	if st.Errors > 0 {
		return rep, fmt.Errorf("bench: %s controller reported %d errors", mode, st.Errors)
	}
	rep.TotalSolves = int(st.Refreshes)
	rep.MovedEntries = st.LastMoved
	rep.RebuildEntries = st.LastRebuild
	rep.P50Ms, rep.P99Ms, rep.StationaryMs, rep.DriftMs, rep.RecoveredMs = scaleMS(sc.phases(lats))
	return rep, nil
}

// runLFUMode replays the schedule against the online LFU baseline: no
// solves, instant per-batch adaptation, serial per-tier serve times.
func runLFUMode(sc *driftScenario) (DriftModeReport, error) {
	rep := DriftModeReport{Mode: "lfu", TriggerDelay: 0}
	lfu, err := baselines.NewOnlineLFU(sc.n, int(sc.capacity), 0.9)
	if err != nil {
		return rep, err
	}
	tpb := sc.p.TimePerByteTable()
	host := int(sc.p.Host())
	r := sc.stream()
	scratch := make(map[int64]struct{})
	// Same discarded warm batch as the controller modes, keeping the replayed
	// rng streams aligned, plus a warm Observe so the cache is not empty.
	warm := workload.Unique(sc.sz.GenBatchAt(r, 0, sc.keysPerBatch), scratch)
	lfu.Observe(warm)
	lats := make([]float64, 0, sc.batches)
	for b := 0; b < sc.batches; b++ {
		uniq := workload.Unique(sc.sz.GenBatchAt(r, b, sc.keysPerBatch), scratch)
		g := b % sc.p.N
		lats = append(lats, lfu.ServeTime(tpb, g, host, uniq, sc.entryBytes))
		lfu.Observe(uniq)
	}
	admitted, evicted := lfu.Churn()
	rep.ChurnEntries = admitted + evicted
	rep.P50Ms, rep.P99Ms, rep.StationaryMs, rep.DriftMs, rep.RecoveredMs = scaleMS(sc.phases(lats))
	return rep, nil
}

func scaleMS(a, b, c, d, e float64) (float64, float64, float64, float64, float64) {
	return a * 1e3, b * 1e3, c * 1e3, d * 1e3, e * 1e3
}

// driftBench runs the three refresh policies over one flash-crowd schedule
// and reports served latency through the drift event.
func driftBench(o Options) (*Result, error) {
	sc := newDriftScenario(o)
	report := &DriftReport{
		Server:       sc.p.Name,
		Entries:      sc.n,
		KeysPerBatch: sc.keysPerBatch,
		Batches:      sc.batches,
		ShiftBatch:   sc.shiftAt,
	}
	periodic, err := runControllerMode(o, sc, core.RefreshPeriodic)
	if err != nil {
		return nil, err
	}
	drift, err := runControllerMode(o, sc, core.RefreshDrift)
	if err != nil {
		return nil, err
	}
	lfu, err := runLFUMode(sc)
	if err != nil {
		return nil, err
	}
	report.Modes = []DriftModeReport{periodic, drift, lfu}

	t := stats.NewTable(
		fmt.Sprintf("Drift: flash-crowd at batch %d/%d, %s, %d entries",
			sc.shiftAt, sc.batches, sc.p.Name, sc.n),
		"mode", "p99(ms)", "stationary", "drift", "recovered", "solves(pre)", "trigger", "moved/rebuild")
	for _, m := range report.Modes {
		trigger, moved := "-", "-"
		if m.TriggerDelay >= 0 && m.Mode != "lfu" {
			trigger = fmt.Sprintf("+%d", m.TriggerDelay)
		}
		switch {
		case m.Mode == "lfu":
			moved = fmt.Sprintf("churn %d", m.ChurnEntries)
		case m.RebuildEntries > 0:
			moved = fmt.Sprintf("%d/%d", m.MovedEntries, m.RebuildEntries)
		}
		t.AddRow(m.Mode,
			fmt.Sprintf("%.3f", m.P99Ms),
			fmt.Sprintf("%.3f", m.StationaryMs),
			fmt.Sprintf("%.3f", m.DriftMs),
			fmt.Sprintf("%.3f", m.RecoveredMs),
			fmt.Sprintf("%d(%d)", m.TotalSolves, m.StationarySolves),
			trigger, moved)
	}
	text := t.String() +
		"\nThe drift controller spends no solves before the shift and triggers within a\n" +
		"check window after it; blind-periodic burns stationary solves and reacts up to\n" +
		"a full period late. The LFU baseline adapts instantly but serves from an\n" +
		"uncoordinated per-GPU replica set (serial per-tier estimate) and keeps churning.\n"
	return &Result{Name: "drift", Text: text, JSON: report}, nil
}
