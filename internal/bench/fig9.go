package bench

import (
	"fmt"

	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/solver"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("fig9", "hotness-block batching: entries per log-scale level and block-size control (§6.3)", figure9)
}

// figure9 renders the paper's Figure 9 as data: the distribution of entries
// over log-scale hotness levels and how the §6.3 coarse/fine block-size
// control splits them, for a profiled GNN workload.
func figure9(o Options) (*Result, error) {
	ds, err := gnnDataset(graph.PA, o)
	if err != nil {
		return nil, err
	}
	p := platform.ServerC()
	// Build the block structure via the solver on degree-proxy hotness
	// (deterministic and cheap; the block shapes are what Fig. 9 shows).
	n := int64(ds.G.NumNodes())
	indeg := make([]int64, n)
	for _, tgt := range ds.G.Indices {
		indeg[tgt]++
	}
	hot := workload.DegreeHotness(indeg, 100000)
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = n / 12
	}
	in := &solver.Input{P: p, Hotness: hot, EntryBytes: 512, Capacity: caps}
	pl, err := (solver.UGache{}).Solve(in)
	if err != nil {
		return nil, err
	}

	type level struct {
		blocks             int
		entries            int64
		minBlock, maxBlock int64
	}
	levels := map[int]*level{}
	order := []int{}
	for _, b := range pl.Blocks {
		lv := hotLevel(b.HotPerEntry)
		l, ok := levels[lv]
		if !ok {
			l = &level{minBlock: 1 << 62}
			levels[lv] = l
			order = append(order, lv)
		}
		l.blocks++
		l.entries += b.Entries()
		if b.Entries() < l.minBlock {
			l.minBlock = b.Entries()
		}
		if b.Entries() > l.maxBlock {
			l.maxBlock = b.Entries()
		}
	}
	t := stats.NewTable("Figure 9: hotness blocks per log2 level (PA degree hotness, Server C)",
		"log2(hotness)", "entries", "%of total", "blocks", "min blk", "max blk")
	total := float64(pl.NumEntries())
	for _, lv := range order {
		l := levels[lv]
		label := fmt.Sprintf("%d", lv)
		if lv == -1<<31 {
			label = "unseen"
		}
		t.AddRow(label,
			fmt.Sprintf("%d", l.entries),
			fmt.Sprintf("%.2f%%", 100*float64(l.entries)/total),
			fmt.Sprintf("%d", l.blocks),
			fmt.Sprintf("%d", l.minBlock),
			fmt.Sprintf("%d", l.maxBlock))
	}
	return &Result{Name: "fig9", Text: t.String() +
		fmt.Sprintf("\nTotal blocks: %d (budget %d). Paper shape (§6.3/Fig. 9): high levels split\n"+
			"into ≥N fine blocks; low levels capped at 0.5%% of entries per block;\n"+
			"E shrinks from millions of entries to <1000 blocks.\n",
			len(pl.Blocks), solver.DefaultBlockBudget)}, nil
}

func hotLevel(h float64) int {
	if h <= 0 {
		return -1 << 31
	}
	lv := 0
	for x := h; x >= 2; x /= 2 {
		lv++
	}
	for x := h; x < 1; x *= 2 {
		lv--
	}
	return lv
}
