package bench

import (
	"fmt"
	"math"
	"sort"

	"ugache/internal/cluster"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/stats"
	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

func init() {
	register("cluster", "multi-node scale-out: virtual-time offered-load sweep over 1/2/4-node clusters, knee scaling vs a single machine", clusterBench)
}

// ClusterStepReport is one offered-load step of one node-count's sweep. All
// times are virtual (simulated) seconds, so the report is byte-identical
// run to run regardless of host load.
type ClusterStepReport struct {
	Multiplier float64 `json:"multiplier"`
	OfferedQPS float64 `json:"offered_qps"`
	ServedQPS  float64 `json:"served_qps"`
	Offered    int64   `json:"offered"`
	Served     int64   `json:"served"`
	// Shed counts arrivals dropped at a full admission queue.
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// Latency percentiles in virtual milliseconds, measured from each
	// request's intended arrival time (coordinated-omission safe).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ClusterConfigReport is one node count's result: the solved cluster's
// modelled service time, its tier split, and the knee of its sweep.
type ClusterConfigReport struct {
	Nodes   int `json:"nodes"`
	Workers int `json:"workers"`
	// ServiceUsPerBatch is the mean modelled extraction time of one
	// coalesced batch (virtual microseconds), measured by running the real
	// extractor on the solved placement with this node's ring-shard Owned
	// predicate.
	ServiceUsPerBatch float64 `json:"service_us_per_batch"`
	// Key shares of the modelled tier split during calibration: network is
	// the cross-machine wire tier (zero on the single machine).
	LocalShare   float64 `json:"local_key_share"`
	RemoteShare  float64 `json:"remote_key_share"`
	HostShare    float64 `json:"host_key_share"`
	NetworkShare float64 `json:"network_key_share"`
	// CapacityQPS anchors the sweep multipliers: workers * batch / service.
	CapacityQPS    float64             `json:"capacity_qps"`
	KneeQPS        float64             `json:"knee_qps"`
	KneeMultiplier float64             `json:"knee_multiplier"`
	ScaleVsSingle  float64             `json:"scale_vs_single"`
	Steps          []ClusterStepReport `json:"steps"`
}

// ClusterReport is the cluster experiment's machine-readable output
// (BENCH_cluster.json).
type ClusterReport struct {
	Server            string                `json:"server"`
	Entries           int64                 `json:"entries"`
	GPUsPerNode       int                   `json:"gpus_per_node"`
	KeysPerRequest    int                   `json:"keys_per_request"`
	BatchRequests     int                   `json:"batch_requests"`
	QueueDepth        int                   `json:"queue_depth"`
	Arrivals          string                `json:"arrivals"`
	NetLinkGBs        float64               `json:"net_link_gbs"`
	NetLatencyUs      float64               `json:"net_latency_us"`
	RequestsPerWorker int                   `json:"requests_per_worker"`
	Configs           []ClusterConfigReport `json:"configs"`
}

// clusterScenario pins the shape of the scale-out sweep. The sweep runs in
// virtual time: arrivals come from the deterministic open-loop generator's
// intended timestamps, and service times come from the extraction model on
// the solved cluster placement — never from the wall clock. On a one-core
// host a wall-clock cluster "runs" N nodes on the same CPU and shows no
// scaling at all; the virtual-time run measures what the modelled hardware
// would do, reproducibly.
type clusterScenario struct {
	n              int64
	gpusPerNode    int
	nodeCounts     []int
	keysPerRequest int
	batchReqs      int // requests coalesced into one extraction batch
	queueDepth     int // admission queue bound, in requests per worker
	keyAlpha       float64
	launchOverhead float64 // fixed per-batch kernel-launch + locate cost, seconds
	calBatches     int     // batches used to measure the mean service time
	reqsPerWorker  int     // arrivals per worker per sweep step
	sweep          []float64
	seed           uint64
}

func newClusterScenario(o Options) *clusterScenario {
	n := int64(100_000 * o.Scale)
	if n < 8192 {
		n = 8192
	}
	sc := &clusterScenario{
		n:              n,
		gpusPerNode:    2,
		nodeCounts:     []int{1, 2, 4},
		keysPerRequest: 8,
		batchReqs:      8,
		queueDepth:     256,
		keyAlpha:       1.2,
		launchOverhead: 20e-6,
		calBatches:     256,
		reqsPerWorker:  12_000,
		sweep:          []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5},
		seed:           o.Seed,
	}
	if o.Quick {
		sc.calBatches = 64
		sc.reqsPerWorker = 3_000
		sc.sweep = []float64{0.5, 0.9, 1.25}
	}
	return sc
}

// hotness matches the generator's global key popularity (key == Zipf rank).
func (sc *clusterScenario) hotness() workload.Hotness {
	h := make(workload.Hotness, sc.n)
	for k := range h {
		h[k] = math.Pow(float64(k+1), -sc.keyAlpha)
	}
	return h
}

// buildSystem solves one node's engine for the given node count: the
// clustered platform (plain single machine for nodes == 1) with node 0's
// ring-shard Owned predicate. Placements are identical on every node, so
// node 0 stands for all of them.
func (sc *clusterScenario) buildSystem(nodes int) (*core.System, *platform.Platform, *telemetry.Registry, error) {
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	cfg := platform.Config{
		Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16,
		N: sc.gpusPerNode, PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair,
	}
	if nodes > 1 {
		net := platform.DefaultNetwork(nodes)
		cfg.Network = &net
	}
	p, err := platform.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	reg := telemetry.NewRegistry(p.N)
	ccfg := core.Config{
		Platform:   p,
		Hotness:    sc.hotness(),
		EntryBytes: 64,
		CacheRatio: 0.1,
		Telemetry:  reg,
	}
	if nodes > 1 {
		ring := cluster.MustRing(nodes, 0, sc.seed)
		ccfg.Owned = func(k int64) bool { return ring.Owner(k) == 0 }
	}
	sys, err := core.Build(ccfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, p, reg, nil
}

// measureService runs calBatches coalesced batches through the real
// extraction model and returns the mean batch service time in virtual
// seconds. The batches are drawn from the same open-loop generator the
// sweep uses, so the dedup factor and tier mix match the offered stream.
func (sc *clusterScenario) measureService(sys *core.System, p *platform.Platform) (float64, error) {
	gen, err := workload.NewOpenLoop(workload.OpenLoopConfig{
		QPS:            1e6, // only paces virtual timestamps; keys are rate-independent
		Arrivals:       workload.Poisson,
		KeysPerRequest: sc.keysPerRequest,
		NumKeys:        sc.n,
		KeyAlpha:       sc.keyAlpha,
	}, sc.seed*2654435761+17)
	if err != nil {
		return 0, err
	}
	var req workload.OpenLoopRequest
	seen := make(map[int64]struct{}, sc.batchReqs*sc.keysPerRequest)
	total := 0.0
	for b := 0; b < sc.calBatches; b++ {
		clear(seen)
		var keys []int64
		for r := 0; r < sc.batchReqs; r++ {
			gen.Next(&req)
			for _, k := range req.Keys {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
		batch := &extract.Batch{Keys: make([][]int64, p.N)}
		batch.Keys[b%p.N] = keys
		res, err := sys.ExtractBatch(batch)
		if err != nil {
			return 0, err
		}
		total += res.Time
	}
	// The extraction model prices data movement only; a real serving batch
	// also pays a fixed kernel-launch + locate cost. The constant is the
	// same on every node count, so it scales capacity without touching the
	// knee ratios.
	return total/float64(sc.calBatches) + sc.launchOverhead, nil
}

// runClusterStep simulates one offered-load step across all workers of one
// configuration in virtual time. Each worker is one GPU's serving loop: a
// bounded FIFO admission queue fed by deterministic Poisson arrivals,
// drained in coalesced batches of up to batchReqs requests, each batch
// taking the measured service time. Arrivals that find the queue full are
// shed. Latency is completion minus intended arrival.
func (sc *clusterScenario) runClusterStep(workers int, mult, svcBatch float64) (ClusterStepReport, error) {
	rep := ClusterStepReport{Multiplier: mult}
	perWorkerQPS := mult * float64(sc.batchReqs) / svcBatch
	var lats []float64
	var lastArrival float64
	for w := 0; w < workers; w++ {
		// Worker w keeps its seed across node counts: with equal service
		// times the per-worker process is identical, so scaling is purely
		// the worker count.
		gen, err := workload.NewOpenLoop(workload.OpenLoopConfig{
			QPS:            perWorkerQPS,
			Arrivals:       workload.Poisson,
			KeysPerRequest: sc.keysPerRequest,
			NumKeys:        sc.n,
			KeyAlpha:       sc.keyAlpha,
		}, sc.seed+uint64(w)*7919+uint64(mult*1000)*104729)
		if err != nil {
			return rep, err
		}
		var req workload.OpenLoopRequest
		var q []float64 // arrival times of admitted, unserved requests
		busy := 0.0     // virtual time the worker frees up
		// drain serves every batch that can start strictly before `until`.
		// A batch takes only requests that have already arrived by its
		// start time — the simulated server cannot see the future.
		drain := func(until float64) {
			for len(q) > 0 {
				start := math.Max(busy, q[0])
				if start >= until {
					return
				}
				b := 0
				for b < len(q) && b < sc.batchReqs && q[b] <= start {
					b++
				}
				done := start + svcBatch
				for i := 0; i < b; i++ {
					lats = append(lats, done-q[i])
				}
				rep.Served += int64(b)
				q = q[b:]
				busy = done
			}
		}
		for i := 0; i < sc.reqsPerWorker; i++ {
			gen.Next(&req)
			at := req.At.Seconds()
			drain(at)
			rep.Offered++
			if len(q) >= sc.queueDepth {
				rep.Shed++
				continue
			}
			q = append(q, at)
			if at > lastArrival {
				lastArrival = at
			}
		}
		drain(math.Inf(1))
	}
	window := lastArrival
	if window <= 0 {
		window = 1
	}
	rep.OfferedQPS = float64(rep.Offered) / window
	rep.ServedQPS = float64(rep.Served) / window
	if rep.Offered > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Offered)
	}
	if len(lats) > 0 {
		qs := stats.Quantiles(lats, 0.50, 0.99)
		rep.P50Ms, rep.P99Ms = qs[0]*1e3, qs[1]*1e3
	}
	return rep, nil
}

// runClusterConfig solves one node count and sweeps it.
func (sc *clusterScenario) runClusterConfig(nodes int) (ClusterConfigReport, error) {
	rep := ClusterConfigReport{Nodes: nodes, Workers: nodes * sc.gpusPerNode}
	sys, p, reg, err := sc.buildSystem(nodes)
	if err != nil {
		return rep, err
	}
	svcBatch, err := sc.measureService(sys, p)
	if err != nil {
		return rep, err
	}
	if svcBatch <= 0 {
		return rep, fmt.Errorf("bench: cluster %d-node service time is %g", nodes, svcBatch)
	}
	rep.ServiceUsPerBatch = svcBatch * 1e6
	local := metricValue(reg, "core_hit_local_keys_total")
	remote := metricValue(reg, "core_hit_remote_keys_total")
	host := metricValue(reg, "core_hit_host_keys_total")
	network := metricValue(reg, "core_hit_network_keys_total")
	if sum := local + remote + host + network; sum > 0 {
		rep.LocalShare = local / sum
		rep.RemoteShare = remote / sum
		rep.HostShare = host / sum
		rep.NetworkShare = network / sum
	}
	rep.CapacityQPS = float64(rep.Workers) * float64(sc.batchReqs) / svcBatch
	for _, mult := range sc.sweep {
		st, err := sc.runClusterStep(rep.Workers, mult, svcBatch)
		if err != nil {
			return rep, err
		}
		rep.Steps = append(rep.Steps, st)
	}
	for _, st := range rep.Steps {
		if st.OfferedQPS > 0 && st.ServedQPS >= 0.95*st.OfferedQPS && st.OfferedQPS > rep.KneeQPS {
			rep.KneeQPS = st.OfferedQPS
			rep.KneeMultiplier = st.Multiplier
		}
	}
	if rep.KneeQPS == 0 {
		for _, st := range rep.Steps {
			if st.ServedQPS > rep.KneeQPS {
				rep.KneeQPS = st.ServedQPS
				rep.KneeMultiplier = st.Multiplier
			}
		}
	}
	return rep, nil
}

// clusterBench is the multi-node scale-out sweep: for 1, 2 and 4 machines,
// solve the clustered placement (fourth remote-machine source class), take
// the extraction model's batch service time under the ring-shard Owned
// split, and drive a deterministic virtual-time open-loop sweep to find
// each cluster's knee. The headline is knee scaling vs the single machine:
// near-linear, because each added machine brings its own GPUs, host shard
// and PCIe lanes, and the 25 GB/s wire serves only the non-owned tail —
// which the blended network column keeps no more expensive than the host
// path it replaces.
func clusterBench(o Options) (*Result, error) {
	sc := newClusterScenario(o)
	net := platform.DefaultNetwork(2)
	report := &ClusterReport{
		Server:            "2xV100",
		Entries:           sc.n,
		GPUsPerNode:       sc.gpusPerNode,
		KeysPerRequest:    sc.keysPerRequest,
		BatchRequests:     sc.batchReqs,
		QueueDepth:        sc.queueDepth,
		Arrivals:          workload.Poisson.String(),
		NetLinkGBs:        net.LinkBW / 1e9,
		NetLatencyUs:      net.LatencySec * 1e6,
		RequestsPerWorker: sc.reqsPerWorker,
	}
	for _, nodes := range sc.nodeCounts {
		cfg, err := sc.runClusterConfig(nodes)
		if err != nil {
			return nil, err
		}
		report.Configs = append(report.Configs, cfg)
	}
	sort.Slice(report.Configs, func(i, j int) bool { return report.Configs[i].Nodes < report.Configs[j].Nodes })
	single := report.Configs[0].KneeQPS
	for i := range report.Configs {
		if single > 0 {
			report.Configs[i].ScaleVsSingle = report.Configs[i].KneeQPS / single
		}
	}

	t := stats.NewTable(
		fmt.Sprintf("Cluster: virtual-time scale-out sweep, %d entries, %d-GPU nodes, wire %.0f GB/s",
			sc.n, sc.gpusPerNode, report.NetLinkGBs),
		"nodes", "workers", "svc(us/batch)", "net keys", "capacity qps", "knee qps", "knee(x)", "scale")
	for _, c := range report.Configs {
		t.AddRow(fmt.Sprintf("%d", c.Nodes),
			fmt.Sprintf("%d", c.Workers),
			fmt.Sprintf("%.2f", c.ServiceUsPerBatch),
			fmtPct(c.NetworkShare),
			fmt.Sprintf("%.0f", c.CapacityQPS),
			fmt.Sprintf("%.0f", c.KneeQPS),
			fmt.Sprintf("%.2f", c.KneeMultiplier),
			fmt.Sprintf("%.2fx", c.ScaleVsSingle))
	}
	text := t.String()
	for _, c := range report.Configs {
		st := stats.NewTable(
			fmt.Sprintf("Cluster %d-node offered-load steps", c.Nodes),
			"offered(x)", "offered qps", "served qps", "shed", "shed%", "p50(ms)", "p99(ms)")
		for _, s := range c.Steps {
			st.AddRow(fmt.Sprintf("%.2f", s.Multiplier),
				fmt.Sprintf("%.0f", s.OfferedQPS),
				fmt.Sprintf("%.0f", s.ServedQPS),
				fmt.Sprintf("%d", s.Shed),
				fmtPct(s.ShedRate),
				fmt.Sprintf("%.4f", s.P50Ms),
				fmt.Sprintf("%.4f", s.P99Ms))
		}
		text += "\n" + st.String()
	}
	text += "\nThe sweep runs in virtual time: arrivals are the open-loop generator's intended\n" +
		"timestamps and service times come from the extraction model on the solved cluster\n" +
		"placement, so the curve measures the modelled hardware, not this host's core count.\n" +
		"Scaling is near-linear because each machine adds GPUs, a host shard and PCIe lanes;\n" +
		"only the non-owned tail crosses the wire, and the blended network column admits it\n" +
		"exactly when it is no slower than the host path it replaces.\n"
	return &Result{Name: "cluster", Text: text, JSON: report}, nil
}
