package bench

import (
	"strings"
	"testing"
)

// quickOpt keeps experiment smoke tests fast.
func quickOpt() Options {
	return Options{Scale: 0.03, Iters: 1, Seed: 42, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered (the
	// DESIGN.md experiment index).
	want := []string{
		"table1", "table3", "fig2", "fig4", "fig6", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "summary",
		"ablate-blocks", "ablate-policies", "ablate-dedication",
	}
	for _, name := range want {
		if _, ok := Registry[name]; !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(Names()) < len(want) {
		t.Fatalf("registry has %d entries, want >= %d", len(Names()), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickOpt()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestOptionNormalization(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.Iters != 3 || o.Seed == 0 {
		t.Fatalf("normalize: %+v", o)
	}
	if (Options{Scale: 0.5}).memScale() != 0.005 {
		t.Fatal("memScale wrong")
	}
}

// TestExperimentsSmoke runs every registered experiment at a tiny scale and
// checks the output renders. This is the integration test of the whole
// reproduction pipeline.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds each; skipped with -short")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, quickOpt())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Name != name || len(res.Text) < 40 {
				t.Fatalf("%s: degenerate output %q", name, res.Text)
			}
			if !strings.Contains(res.Text, "=") {
				t.Fatalf("%s: no table rendered", name)
			}
		})
	}
}

func TestDatasetCaching(t *testing.T) {
	o := quickOpt().normalize()
	d1, err := gnnDataset(gnnDatasetsFor(o)[0], o)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := gnnDataset(gnnDatasetsFor(o)[0], o)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("dataset not cached")
	}
	w1, err := dlrDataset(dlrDatasetsFor(o)[0], o)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := dlrDataset(dlrDatasetsFor(o)[0], o)
	if w1 != w2 {
		t.Fatal("dlr dataset not cached")
	}
}

func TestFigure2Shape(t *testing.T) {
	// The central motivational figure: verify the rendered numbers exhibit
	// the paper's shape (partition flat-lines past 1/N coverage; UGache
	// never worse than both baselines at the highest ratio).
	res, err := Run("fig2", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Part.Global") || !strings.Contains(res.Text, "UGache(ms)") {
		t.Fatalf("missing series:\n%s", res.Text)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	// Identical options must render byte-identical reports — the whole
	// pipeline is seeded and free of wall-clock or map-order leaks.
	for _, name := range []string{"fig6", "table3", "fig9", "ablate-dedication"} {
		a, err := Run(name, quickOpt())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(name, quickOpt())
		if err != nil {
			t.Fatal(err)
		}
		if a.Text != b.Text {
			t.Fatalf("%s is nondeterministic", name)
		}
	}
}

// TestClusterScaling pins the scale-out acceptance bar: the virtual-time
// sweep must show near-linear knee scaling (>= 1.7x at 2 nodes, >= 3x at
// 4) because each machine adds its own GPUs, host shard and PCIe lanes,
// and the clustered configs must actually exercise the network tier.
func TestClusterScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three solves; skipped with -short")
	}
	res, err := Run("cluster", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := res.JSON.(*ClusterReport)
	if !ok {
		t.Fatalf("cluster JSON is %T", res.JSON)
	}
	if len(rep.Configs) != 3 {
		t.Fatalf("got %d configs, want 3", len(rep.Configs))
	}
	minScale := map[int]float64{1: 1.0, 2: 1.7, 4: 3.0}
	for _, c := range rep.Configs {
		if c.KneeQPS <= 0 {
			t.Fatalf("%d nodes: no knee found", c.Nodes)
		}
		if c.ScaleVsSingle < minScale[c.Nodes] {
			t.Errorf("%d nodes: knee scale %.2fx, want >= %.1fx", c.Nodes, c.ScaleVsSingle, minScale[c.Nodes])
		}
		if c.Nodes > 1 && c.NetworkShare <= 0 {
			t.Errorf("%d nodes: network tier share is zero — the wire was never modelled", c.Nodes)
		}
		if c.Nodes == 1 && c.NetworkShare != 0 {
			t.Errorf("single machine reports network share %g", c.NetworkShare)
		}
	}
}
