package bench

import (
	"fmt"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/stats"
	"ugache/internal/workload"
)

func init() {
	register("fig16", "UGache vs theoretically optimal cache policy", figure16)
	register("fig17", "refresh timeline: inference latency with two triggered refreshes", figure17)
	register("summary", "average/max speedups vs replication and partition systems (from fig10 data)", summary)
}

// figure16 reproduces Figure 16: extraction time of UGache's
// block-approximate policy versus the theoretically optimal policy (both
// extracted with UGache's mechanism). On the symmetric servers the optimal
// reference is the exact LP at finer granularity; on the DGX-1 the paper
// itself had to shrink the instances ("SYN-As/Bs"), mirrored here by a
// reduced scale and the small general-form LP.
func figure16(o Options) (*Result, error) {
	optSpec := baselines.UGache.WithPolicy(solver.OptimalLP{})
	optSpec.Name = "Optimal"
	{
		a := platform.ServerA()
		dlrSets := []workload.DLRSpec{workload.CR, workload.SYNA, workload.SYNB}
		if o.Quick {
			dlrSets = dlrSets[1:2]
		}
		var jobs []job
		for _, ds := range dlrSets {
			for _, spec := range []baselines.Spec{baselines.UGache, optSpec} {
				jobs = append(jobs, dlrJob(o, a, spec, ds, "dlrm", 0))
			}
		}
		if !o.Quick {
			b := platform.ServerB()
			oSmall := o
			oSmall.Scale = o.Scale * 0.125
			for _, ds := range []workload.DLRSpec{workload.SYNA, workload.SYNB} {
				for _, spec := range []baselines.Spec{baselines.UGache, optSpec} {
					jobs = append(jobs, dlrJob(oSmall, b, spec, ds, "dlrm", 0.06))
				}
			}
		}
		c := platform.ServerC()
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				for _, spec := range []baselines.Spec{baselines.UGache, optSpec} {
					jobs = append(jobs, gnnJob(o, c, spec, ds, w.Model, w.Sup, 0))
				}
			}
		}
		prewarm(o, jobs)
	}
	t := stats.NewTable("Figure 16: extraction time (ms), UGache vs optimal policy",
		"server", "workload", "UGache", "Optimal", "gap")
	addRow := func(p *platform.Platform, label string, run func(spec baselines.Spec) (float64, error)) error {
		ug, err := run(baselines.UGache)
		if err != nil {
			return err
		}
		opt, err := run(optSpec)
		if err != nil {
			return err
		}
		gap := "-"
		if opt > 0 {
			gap = fmt.Sprintf("%+.1f%%", 100*(ug/opt-1))
		}
		t.AddRow(p.Name, label, fmtMS(ug), fmtMS(opt), gap)
		return nil
	}

	// Server A: DLRM over the DLR datasets.
	a := platform.ServerA()
	dlrSets := []workload.DLRSpec{workload.CR, workload.SYNA, workload.SYNB}
	if o.Quick {
		dlrSets = dlrSets[1:2]
	}
	for _, ds := range dlrSets {
		ds := ds
		if err := addRow(a, "DLRM/"+ds.Name, func(spec baselines.Spec) (float64, error) {
			rep, err := runDLR(o, a, spec, ds, "dlrm", 0)
			if err != nil {
				return 0, err
			}
			return rep.PerIter.Extract, nil
		}); err != nil {
			return nil, err
		}
	}

	// Server B: reduced instances (the paper's SYN-As/Bs), small general LP.
	// The asymmetric exact model only fits the dense simplex at ~22 blocks,
	// so the "Optimal" here is a coarse reference that UGache's full-budget
	// solver can legitimately dominate — the paper, too, could not obtain a
	// true Server-B optimum and solved specially reduced instances.
	if !o.Quick {
		b := platform.ServerB()
		oSmall := o
		oSmall.Scale = o.Scale * 0.125
		for _, ds := range []workload.DLRSpec{workload.SYNA, workload.SYNB} {
			ds := ds
			if err := addRow(b, "DLRM/"+ds.Name+"s (coarse ref)", func(spec baselines.Spec) (float64, error) {
				rep, err := runDLR(oSmall, b, spec, ds, "dlrm", 0.06)
				if err != nil {
					return 0, err
				}
				return rep.PerIter.Extract, nil
			}); err != nil {
				return nil, err
			}
		}
	}

	// Server C: the GNN matrix.
	c := platform.ServerC()
	for _, w := range gnnWorkloads(o) {
		for _, ds := range gnnDatasetsFor(o) {
			ds := ds
			w := w
			if err := addRow(c, w.Label+"/"+ds.Name, func(spec baselines.Spec) (float64, error) {
				rep, err := runGNN(o, c, spec, ds, w.Model, w.Sup, 0)
				if err != nil {
					return 0, err
				}
				return rep.PerIter.Extract, nil
			}); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Name: "fig16", Text: t.String() +
		"\nPaper shape: the approximation's gap to the optimal policy is ~2% on average.\n" +
		"Server-B rows compare against a coarse (~22-block) exact LP — the asymmetric\n" +
		"model does not fit the dense simplex at finer granularity, mirroring the\n" +
		"paper's own need to reduce Server-B instances — so a negative gap there\n" +
		"means UGache dominated the coarse reference, not a bound violation.\n"}, nil
}

// figure17 reproduces Figure 17: the DLRM/CR inference timeline on Server C
// with two manually triggered refreshes; the refresh runs in the background
// in small batches and inflates foreground latency by ~10% for ~20-30 s.
func figure17(o Options) (*Result, error) {
	p := platform.ServerC()
	ds, err := dlrDataset(workload.CR, o)
	if err != nil {
		return nil, err
	}
	n := ds.NumEntries()
	// Build with a solver-policy cache and functional refresh support.
	var rec [][]int64
	for i := 0; i < 64; i++ {
		rec = append(rec, ds.GenBatch(dlrBatch(o)))
	}
	hot, err := workload.ProfileBatches(n, rec)
	if err != nil {
		return nil, err
	}
	mem := app.MemoryModel{MemScale: o.memScale()}
	capacity := mem.CapacityEntries(p, ds.MT.MaxEntryBytes(), 0)
	if capacity > n {
		capacity = n
	}
	sys, err := core.Build(core.Config{
		Platform:           p,
		Hotness:            hot,
		EntryBytes:         ds.MT.MaxEntryBytes(),
		CacheEntriesPerGPU: maxI64b(capacity, 1),
		Telemetry:          o.Telemetry,
		Timeline:           o.Timeline,
	})
	if err != nil {
		return nil, err
	}

	// Baseline iteration latency.
	scratch := make(map[int64]struct{})
	batch := func() *extract.Batch {
		b := &extract.Batch{Keys: make([][]int64, p.N)}
		for g := 0; g < p.N; g++ {
			b.Keys[g] = workload.Unique(ds.GenBatch(dlrBatch(o)), scratch)
		}
		return b
	}
	res, err := sys.ExtractBatch(batch())
	if err != nil {
		return nil, err
	}
	base := res.Time

	// Shifted hotness (a daily-trace drift): rotate popularity within each
	// table by hashing keys, then refresh twice as in Fig. 17.
	shift := make(workload.Hotness, n)
	r := rng.New(o.Seed).Split("drift")
	perm := r.Perm(len(shift))
	for i := range shift {
		shift[i] = hot[perm[i]]
	}
	cfg := cache.DefaultRefreshConfig()
	// Pace the refresh for the figure: the update-bandwidth budget is set so
	// that turning over the whole aggregate cache takes ~18 s of update time
	// (the paper's refresh lasts ~28.7 s including the ~10 s solve), and
	// pauses are sized for a ~40% duty cycle so the mean foreground impact
	// lands at the paper's ~10%.
	aggCapBytes := float64(int64(p.N) * capacity * int64(ds.MT.MaxEntryBytes()))
	cfg.UpdateBandwidth = aggCapBytes * 1.3 * 2.5 / 18.0
	cfg.BatchEntries = maxI64b(n/256, 1)
	perStep := float64(cfg.BatchEntries*int64(ds.MT.MaxEntryBytes())) / cfg.UpdateBandwidth
	cfg.PauseSeconds = 1.5 * perStep
	cfg.SamplePeriod = 1.0
	rep1, err := sys.Refresh(shift, base, cfg)
	if err != nil {
		return nil, err
	}
	rep2, err := sys.Refresh(hot, base, cfg)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure 17: DLRM/CR inference timeline with two refreshes (Server C)",
		"time(s)", "iter(ms)")
	emit := func(offset float64, rep *cache.RefreshReport) {
		for _, st := range rep.Timeline {
			if st.T < -1 || st.T > rep.Duration+1 {
				continue
			}
			t.AddRow(fmt.Sprintf("%.1f", offset+st.T), fmtMS(st.IterTime))
		}
	}
	emit(40, rep1)
	emit(150, rep2)
	text := t.String() + fmt.Sprintf(
		"\nRefresh 1: duration %.1fs, mean impact %.1f%%, %d evicted / %d inserted.\n"+
			"Refresh 2: duration %.1fs, mean impact %.1f%%.\n"+
			"Paper shape: refresh takes ~28.7s and impacts the foreground by ~10%%.\n",
		rep1.Duration, rep1.MeanImpact*100, rep1.EvictedEntries, rep1.InsertedEntries,
		rep2.Duration, rep2.MeanImpact*100)
	return &Result{Name: "fig17", Text: text}, nil
}

// summary reproduces the headline aggregate (§8.2): geometric-mean and max
// speedups of UGache over the replication and partition systems across the
// fig10 matrix.
func summary(o Options) (*Result, error) {
	var jobs []job
	for _, p := range serverSet(o) {
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				for _, spec := range []baselines.Spec{baselines.UGache, baselines.GNNLab, baselines.PartU} {
					jobs = append(jobs, gnnJob(o, p, spec, ds, w.Model, w.Sup, 0))
				}
			}
		}
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				for _, spec := range []baselines.Spec{baselines.UGache, baselines.HPS, baselines.SOK} {
					jobs = append(jobs, dlrJob(o, p, spec, ds, model, 0))
				}
			}
		}
	}
	prewarm(o, jobs)
	var repGNN, partGNN, repDLR, partDLR []float64
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	for _, p := range serverSet(o) {
		for _, w := range gnnWorkloads(o) {
			for _, ds := range gnnDatasetsFor(o) {
				ug, err := runGNN(o, p, baselines.UGache, ds, w.Model, w.Sup, 0)
				if err != nil {
					return nil, err
				}
				if rep, err := runGNN(o, p, baselines.GNNLab, ds, w.Model, w.Sup, 0); err == nil {
					repGNN = append(repGNN, rep.EpochSeconds/ug.EpochSeconds)
				}
				if part, err := runGNN(o, p, baselines.PartU, ds, w.Model, w.Sup, 0); err == nil {
					partGNN = append(partGNN, part.EpochSeconds/ug.EpochSeconds)
				}
			}
		}
		for _, model := range dlrModelsFor(o) {
			for _, ds := range dlrDatasetsFor(o) {
				ug, err := runDLR(o, p, baselines.UGache, ds, model, 0)
				if err != nil {
					return nil, err
				}
				if rep, err := runDLR(o, p, baselines.HPS, ds, model, 0); err == nil {
					repDLR = append(repDLR, rep.PerIter.Iter()/ug.PerIter.Iter())
				}
				if part, err := runDLR(o, p, baselines.SOK, ds, model, 0); err == nil {
					partDLR = append(partDLR, part.PerIter.Iter()/ug.PerIter.Iter())
				}
			}
		}
	}
	t := stats.NewTable("Headline speedups of UGache (from the fig10 matrix)",
		"comparison", "avg", "max", "paper avg", "paper max")
	t.AddRow("GNN vs replication (GNNLab)",
		fmt.Sprintf("%.2fx", stats.GeoMean(repGNN)), fmt.Sprintf("%.2fx", maxOf(repGNN)), "2.21x", "5.25x")
	t.AddRow("GNN vs partition (PartU)",
		fmt.Sprintf("%.2fx", stats.GeoMean(partGNN)), fmt.Sprintf("%.2fx", maxOf(partGNN)), "1.33x", "1.85x")
	t.AddRow("DLR vs replication (HPS)",
		fmt.Sprintf("%.2fx", stats.GeoMean(repDLR)), fmt.Sprintf("%.2fx", maxOf(repDLR)), "1.51x", "2.34x")
	t.AddRow("DLR vs partition (SOK)",
		fmt.Sprintf("%.2fx", stats.GeoMean(partDLR)), fmt.Sprintf("%.2fx", maxOf(partDLR)), "2.07x", "3.45x")
	return &Result{Name: "summary", Text: t.String()}, nil
}

func maxI64b(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
