package bench

import "testing"

// TestParallelRunnerMatchesSequential verifies the pre-warm pool's core
// contract: a figure rendered with concurrent workers is byte-identical to
// the same figure rendered fully sequentially (Workers: 1 disables the
// pool entirely). fig4 exercises the DLR path whose runs share a dataset
// RNG stream (the ordering-sensitive case); fig2 exercises the
// embarrassingly parallel GNN sweep.
func TestParallelRunnerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figures twice; skipped with -short")
	}
	for _, name := range []string{"fig2", "fig4"} {
		seqOpt := quickOpt()
		seqOpt.Workers = 1
		ResetCaches()
		seq, err := Run(name, seqOpt)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}

		parOpt := quickOpt()
		parOpt.Workers = 4
		ResetCaches()
		par, err := Run(name, parOpt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}

		if seq.Text != par.Text {
			t.Fatalf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				name, seq.Text, par.Text)
		}
	}
	ResetCaches()
}

func TestPrewarmDedupesAndGroups(t *testing.T) {
	o := Options{Workers: 4}
	var order []string
	ch := make(chan string, 16)
	mk := func(group, key string) job {
		return job{group: group, key: key, run: func() error {
			ch <- key
			return nil
		}}
	}
	jobs := []job{
		mk("g1", "a"), mk("g1", "b"),
		mk("g2", "c"),
		mk("g1", "a"), // duplicate key: must run once
	}
	prewarm(o, jobs)
	close(ch)
	counts := map[string]int{}
	for k := range ch {
		order = append(order, k)
		counts[k]++
	}
	if counts["a"] != 1 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("runs %v", counts)
	}
	// Within g1, a must precede b.
	ia, ib := -1, -1
	for i, k := range order {
		if k == "a" {
			ia = i
		}
		if k == "b" {
			ib = i
		}
	}
	if ia > ib {
		t.Fatalf("group order violated: %v", order)
	}
}
