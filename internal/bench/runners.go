package bench

import (
	"fmt"
	"sync"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/workload"
)

// Reports are deterministic in their full configuration, and fig10, fig11
// and the summary share the same configuration matrix — cache them.
var (
	reportMu    sync.Mutex
	reportCache = map[string]*app.Report{}
)

func resetReportCache() {
	reportMu.Lock()
	reportCache = map[string]*app.Report{}
	reportMu.Unlock()
}

func cachedReport(key string, run func() (*app.Report, error)) (*app.Report, error) {
	reportMu.Lock()
	if r, ok := reportCache[key]; ok {
		reportMu.Unlock()
		return r, nil
	}
	reportMu.Unlock()
	r, err := run()
	if err != nil {
		return nil, err
	}
	reportMu.Lock()
	reportCache[key] = r
	reportMu.Unlock()
	return r, nil
}

// runGNN builds and measures one GNN configuration. ratio == 0 derives the
// cache capacity from the (scaled) memory model, as the end-to-end figures
// do; ratio > 0 pins it, as the sweep figures do.
func runGNN(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) (*app.Report, error) {
	key := fmt.Sprintf("gnn/%s/%s/%s/%s/%s/%v/%g/%g/%d/%d",
		p.Name, spec.Name, spec.Mechanism, dsSpec.Name, model, supervised, ratio, o.Scale, o.Iters, o.Seed)
	return cachedReport(key, func() (*app.Report, error) {
		return runGNNUncached(o, p, spec, dsSpec, model, supervised, ratio)
	})
}

func runGNNUncached(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) (*app.Report, error) {
	ds, err := gnnDataset(dsSpec, o)
	if err != nil {
		return nil, err
	}
	a, err := app.NewGNN(app.GNNConfig{
		P: p, DS: ds, Model: model, Supervised: supervised,
		BatchSize: gnnBatch(o), Spec: spec, CacheRatio: ratio,
		Mem:  app.MemoryModel{MemScale: o.memScale()},
		Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return a.RunIters(o.Iters)
}

// runDLR builds and measures one DLR configuration.
func runDLR(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) (*app.Report, error) {
	key := fmt.Sprintf("dlr/%s/%s/%s/%s/%s/%g/%g/%d/%d",
		p.Name, spec.Name, spec.Mechanism, dsSpec.Name, model, ratio, o.Scale, o.Iters, o.Seed)
	return cachedReport(key, func() (*app.Report, error) {
		return runDLRUncached(o, p, spec, dsSpec, model, ratio)
	})
}

func runDLRUncached(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) (*app.Report, error) {
	ds, err := dlrDataset(dsSpec, o)
	if err != nil {
		return nil, err
	}
	a, err := app.NewDLR(app.DLRConfig{
		P: p, DS: ds, Model: model, BatchSize: dlrBatch(o), Spec: spec,
		CacheRatio: ratio,
		Mem:        app.MemoryModel{MemScale: o.memScale()},
		Seed:       o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return a.RunIters(o.Iters)
}

// Batch sizes follow the paper's 8K per GPU, scaled down with the datasets
// so neighbourhoods keep a comparable coverage of the graph.
func gnnBatch(o Options) int {
	b := int(8192 * o.Scale)
	if b < 64 {
		b = 64
	}
	return b
}

func dlrBatch(o Options) int {
	b := int(8192 * o.Scale)
	if b < 64 {
		b = 64
	}
	return b
}
