package bench

import (
	"fmt"
	"runtime"
	"sync"

	"ugache/internal/app"
	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/workload"
)

// Reports are deterministic in their full configuration, and fig10, fig11
// and the summary share the same configuration matrix — cache them. Errors
// are cached too: a failed run must not execute twice, or the second
// attempt would consume its dataset's RNG stream differently from a
// sequential run.
type reportEntry struct {
	rep *app.Report
	err error
}

var (
	reportMu    sync.Mutex
	reportCache = map[string]reportEntry{}
)

func resetReportCache() {
	reportMu.Lock()
	reportCache = map[string]reportEntry{}
	reportMu.Unlock()
}

func cachedReport(key string, run func() (*app.Report, error)) (*app.Report, error) {
	reportMu.Lock()
	if e, ok := reportCache[key]; ok {
		reportMu.Unlock()
		return e.rep, e.err
	}
	reportMu.Unlock()
	r, err := run()
	reportMu.Lock()
	reportCache[key] = reportEntry{rep: r, err: err}
	reportMu.Unlock()
	return r, err
}

func gnnKey(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) string {
	return fmt.Sprintf("gnn/%s/%s/%s/%s/%s/%v/%g/%g/%d/%d",
		p.Name, spec.Name, spec.Mechanism, dsSpec.Name, model, supervised, ratio, o.Scale, o.Iters, o.Seed)
}

func dlrKey(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) string {
	return fmt.Sprintf("dlr/%s/%s/%s/%s/%s/%g/%g/%d/%d",
		p.Name, spec.Name, spec.Mechanism, dsSpec.Name, model, ratio, o.Scale, o.Iters, o.Seed)
}

// runGNN builds and measures one GNN configuration. ratio == 0 derives the
// cache capacity from the (scaled) memory model, as the end-to-end figures
// do; ratio > 0 pins it, as the sweep figures do.
func runGNN(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) (*app.Report, error) {
	return cachedReport(gnnKey(o, p, spec, dsSpec, model, supervised, ratio), func() (*app.Report, error) {
		return runGNNUncached(o, p, spec, dsSpec, model, supervised, ratio)
	})
}

func runGNNUncached(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) (*app.Report, error) {
	ds, err := gnnDataset(dsSpec, o)
	if err != nil {
		return nil, err
	}
	a, err := app.NewGNN(app.GNNConfig{
		P: p, DS: ds, Model: model, Supervised: supervised,
		BatchSize: gnnBatch(o), Spec: spec, CacheRatio: ratio,
		Mem:  app.MemoryModel{MemScale: o.memScale()},
		Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return a.RunIters(o.Iters)
}

// runDLR builds and measures one DLR configuration.
func runDLR(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) (*app.Report, error) {
	return cachedReport(dlrKey(o, p, spec, dsSpec, model, ratio), func() (*app.Report, error) {
		return runDLRUncached(o, p, spec, dsSpec, model, ratio)
	})
}

func runDLRUncached(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) (*app.Report, error) {
	ds, err := dlrDataset(dsSpec, o)
	if err != nil {
		return nil, err
	}
	a, err := app.NewDLR(app.DLRConfig{
		P: p, DS: ds, Model: model, BatchSize: dlrBatch(o), Spec: spec,
		CacheRatio: ratio,
		Mem:        app.MemoryModel{MemScale: o.memScale()},
		Seed:       o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return a.RunIters(o.Iters)
}

// job is one pre-warm unit: a report computed ahead of a figure's render
// pass so independent configurations run concurrently.
type job struct {
	// group: jobs sharing a group run sequentially in submission order.
	// DLR runs sharing a dataset draw from its single RNG stream, so their
	// relative order decides the exact batches each run sees; the group is
	// keyed by the dataset so that order matches a sequential render pass.
	group string
	// key is the report-cache key; duplicate keys prewarm once.
	key string
	run func() error
}

// gnnJob is a prewarm unit for one GNN configuration. GNN runs share no
// mutable state (each derives a fresh RNG from the seed), so every job is
// its own group and all of them may run concurrently.
func gnnJob(o Options, p *platform.Platform, spec baselines.Spec, dsSpec graph.DatasetSpec,
	model string, supervised bool, ratio float64) job {
	key := gnnKey(o, p, spec, dsSpec, model, supervised, ratio)
	return job{
		group: key,
		key:   key,
		run: func() error {
			_, err := runGNN(o, p, spec, dsSpec, model, supervised, ratio)
			return err
		},
	}
}

// dlrJob is a prewarm unit for one DLR configuration, grouped by the
// dataset instance whose RNG stream the run consumes.
func dlrJob(o Options, p *platform.Platform, spec baselines.Spec, dsSpec workload.DLRSpec,
	model string, ratio float64) job {
	return job{
		group: fmt.Sprintf("dlr-ds/%s/%g/%d", dsSpec.Name, o.Scale, o.Seed),
		key:   dlrKey(o, p, spec, dsSpec, model, ratio),
		run: func() error {
			_, err := runDLR(o, p, spec, dsSpec, model, ratio)
			return err
		},
	}
}

// prewarm fills the report cache for a figure's whole configuration matrix
// on a bounded worker pool before the (sequential) render pass formats it.
// Figures must submit jobs in render order: groups run concurrently, but
// within a group jobs run sequentially in submission order, which replays
// the exact schedule a sequential run would use for state-sharing runs.
// Errors are not surfaced here — they are cached, and the render pass hits
// them at the same point a sequential run would.
func prewarm(o Options, jobs []job) {
	workers := o.workerCount()
	if workers <= 1 || len(jobs) <= 1 {
		return
	}
	seen := make(map[string]bool, len(jobs))
	groups := make(map[string][]job)
	var order []string
	for _, j := range jobs {
		if seen[j.key] {
			continue
		}
		seen[j.key] = true
		if groups[j.group] == nil {
			order = append(order, j.group)
		}
		groups[j.group] = append(groups[j.group], j)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, g := range order {
		gjobs := groups[g]
		wg.Add(1)
		sem <- struct{}{}
		go func(gjobs []job) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, j := range gjobs {
				_ = j.run()
			}
		}(gjobs)
	}
	wg.Wait()
}

// workerCount resolves Options.Workers: 0 means one worker per CPU, 1 means
// fully sequential (prewarm disabled).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Batch sizes follow the paper's 8K per GPU, scaled down with the datasets
// so neighbourhoods keep a comparable coverage of the graph.
func gnnBatch(o Options) int {
	b := int(8192 * o.Scale)
	if b < 64 {
		b = 64
	}
	return b
}

func dlrBatch(o Options) int {
	b := int(8192 * o.Scale)
	if b < 64 {
		b = 64
	}
	return b
}
