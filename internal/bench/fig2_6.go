package bench

import (
	"fmt"

	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/stats"
)

func init() {
	register("fig2", "hit rate and extraction time vs cache ratio: Rep vs Part vs UGache (sup. SAGE, PA, Server C)", figure2)
	register("fig6", "link tolerance of concurrent cores (the Fig. 6 microbenchmark)", figure6)
}

// figure2 reproduces Figure 2: (a) hit rates and (b) extraction time as the
// per-GPU cache ratio grows, for replication and partition caches (plus
// UGache in (b), as in the paper).
func figure2(o Options) (*Result, error) {
	p := platform.ServerC()
	ratios := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.125, 0.15, 0.20, 0.25}
	if o.Quick {
		ratios = []float64{0.02, 0.08, 0.15, 0.25}
	}
	var jobs []job
	for _, ratio := range ratios {
		for _, spec := range []baselines.Spec{baselines.RepU, baselines.PartU, baselines.UGache} {
			jobs = append(jobs, gnnJob(o, p, spec, graph.PA, "sage", true, ratio))
		}
	}
	prewarm(o, jobs)
	repHit := &stats.Series{Name: "Rep"}
	partLocal := &stats.Series{Name: "Part.Local"}
	partGlobal := &stats.Series{Name: "Part.Global"}
	repT := &stats.Series{Name: "Rep(ms)"}
	partT := &stats.Series{Name: "Part(ms)"}
	ugT := &stats.Series{Name: "UGache(ms)"}
	for _, ratio := range ratios {
		x := ratio * 100
		rep, err := runGNN(o, p, baselines.RepU, graph.PA, "sage", true, ratio)
		if err != nil {
			return nil, err
		}
		repHit.Append(x, rep.HitLocal*100)
		repT.Append(x, rep.PerIter.Extract*1e3)

		part, err := runGNN(o, p, baselines.PartU, graph.PA, "sage", true, ratio)
		if err != nil {
			return nil, err
		}
		partLocal.Append(x, part.HitLocal*100)
		partGlobal.Append(x, (part.HitLocal+part.HitRemote)*100)
		partT.Append(x, part.PerIter.Extract*1e3)

		ug, err := runGNN(o, p, baselines.UGache, graph.PA, "sage", true, ratio)
		if err != nil {
			return nil, err
		}
		ugT.Append(x, ug.PerIter.Extract*1e3)
	}
	text := stats.RenderSeries("Figure 2(a): hit rate (%) vs cache ratio (%)",
		"ratio%", repHit, partLocal, partGlobal) + "\n" +
		stats.RenderChart("Figure 2(a) plot", "cache ratio (%)", "hit rate (%)",
			repHit, partLocal, partGlobal) + "\n" +
		stats.RenderSeries("Figure 2(b): extraction time (ms) vs cache ratio (%)",
			"ratio%", repT, partT, ugT) + "\n" +
		stats.RenderChart("Figure 2(b) plot", "cache ratio (%)", "extraction time (ms)",
			repT, partT, ugT) + "\n" +
		"Paper shape: Rep local hit ~95% @12%; Part global ~99% but local ~12%;\n" +
		"Part extraction flat-lines beyond 12.5% (1/8 coverage) while Rep keeps improving;\n" +
		"UGache below both everywhere.\n"
	return &Result{Name: "fig2", Text: text}, nil
}

// figure6 reproduces Figure 6: achieved bandwidth vs concurrent cores for
// host/local/remote sources on (a) the 4×V100 and (b) the 8×A100, plus the
// multi-reader collision of Fig. 6(b) right.
func figure6(o Options) (*Result, error) {
	var parts []string
	for _, p := range []*platform.Platform{platform.ServerA(), platform.ServerC()} {
		var counts []int
		for c := 1; c <= p.GPU.SMs; c += maxIntB(1, p.GPU.SMs/16) {
			counts = append(counts, c)
		}
		cpu := &stats.Series{Name: "CPU(GB/s)"}
		local := &stats.Series{Name: "Local(GB/s)"}
		remote := &stats.Series{Name: "Remote(GB/s)"}
		for _, src := range []struct {
			s  *stats.Series
			id platform.SourceID
		}{{cpu, p.Host()}, {local, 0}, {remote, 1}} {
			pts, err := p.ProfileBandwidth(0, src.id, counts)
			if err != nil {
				return nil, err
			}
			for _, pt := range pts {
				src.s.Append(float64(pt.Cores), pt.Bandwidth/1e9)
			}
		}
		parts = append(parts, stats.RenderSeries(
			fmt.Sprintf("Figure 6: bandwidth vs cores used (%s)", p.Name),
			"cores", cpu, local, remote))
	}
	// Multi-reader collision on the switch-based server.
	c := platform.ServerC()
	t := stats.NewTable("Figure 6(b) right: per-reader bandwidth (GB/s) reading GPU4, full cores each",
		"readers", "per-reader BW")
	for _, readers := range [][]int{{2}, {2, 3}, {0, 2, 3}, {0, 1, 2, 3}} {
		bw, err := c.ProfileMultiReader(4, readers, c.GPU.SMs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", len(readers)), fmt.Sprintf("%.0f", bw[2]/1e9))
	}
	parts = append(parts, t.String(),
		"Paper shape: local rises to the full SM count; remote plateaus at the link/port\n"+
			"capacity; CPU saturates below 10% of cores; concurrent readers split a source's\n"+
			"outbound port.\n")
	return &Result{Name: "fig6", Text: joinResults(parts...)}, nil
}

func maxIntB(a, b int) int {
	if a > b {
		return a
	}
	return b
}
