package bench

import (
	"fmt"

	"ugache/internal/baselines"
	"ugache/internal/extract"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/stats"
)

func init() {
	register("fig12", "extraction time, incrementally applying UGache's techniques (sup. SAGE, PA+CF, Server C)", figure12)
	register("fig14", "access split local/remote/host vs cache ratio (sup. SAGE, PA+CF, Server C)", figure14)
	register("fig15", "per-source extraction time vs cache ratio (all with UGache's extractor)", figure15)
}

func fig12Ratios(o Options) []float64 {
	if o.Quick {
		return []float64{0.02, 0.08, 0.15}
	}
	return []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.15, 0.20, 0.25}
}

// figure12 reproduces Figure 12: extraction time while incrementally
// applying UGache's cache policy and extraction mechanism on top of the
// RepU/PartU baselines.
func figure12(o Options) (*Result, error) {
	p := platform.ServerC()
	var jobs []job
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		for _, ratio := range fig12Ratios(o) {
			for _, spec := range []baselines.Spec{
				baselines.RepU, baselines.PartU,
				baselines.UGache.WithMechanism(extract.PeerRandom), baselines.UGache,
			} {
				jobs = append(jobs, gnnJob(o, p, spec, ds, "sage", true, ratio))
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		repU := &stats.Series{Name: "RepU"}
		partU := &stats.Series{Name: "PartU"}
		policy := &stats.Series{Name: "+Policy"}
		full := &stats.Series{Name: "UGache"}
		for _, ratio := range fig12Ratios(o) {
			x := ratio * 100
			for _, c := range []struct {
				s    *stats.Series
				spec baselines.Spec
			}{
				{repU, baselines.RepU},
				{partU, baselines.PartU},
				// +Policy: UGache's solver with the baseline (naive peer)
				// extraction.
				{policy, baselines.UGache.WithMechanism(extract.PeerRandom)},
				{full, baselines.UGache},
			} {
				rep, err := runGNN(o, p, c.spec, ds, "sage", true, ratio)
				if err != nil {
					return nil, err
				}
				c.s.Append(x, rep.PerIter.Extract*1e3)
			}
		}
		parts = append(parts, stats.RenderSeries(
			fmt.Sprintf("Figure 12: extraction time (ms) vs cache ratio (%%), %s", ds.Name),
			"ratio%", repU, partU, policy, full))
		parts = append(parts, stats.RenderChart(
			fmt.Sprintf("Figure 12 plot, %s", ds.Name),
			"cache ratio (%)", "extraction time (ms)", repU, partU, policy, full))
	}
	parts = append(parts,
		"Paper shape: at low ratio the mechanism provides most of the gain (policy is\n"+
			"partition-like); as the ratio grows the policy's divergence from partition\n"+
			"dominates the improvement.\n")
	return &Result{Name: "fig12", Text: joinResults(parts...)}, nil
}

// figure14 reproduces Figure 14: the fraction of accesses served from local
// GPU, remote GPU, and host memory as the cache ratio grows, for PartU,
// UGache and RepU on PA (high skew) and CF (low skew).
func figure14(o Options) (*Result, error) {
	p := platform.ServerC()
	ratios := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	if o.Quick {
		ratios = []float64{0.02, 0.08, 0.12}
	}
	var jobs []job
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		for _, ratio := range ratios {
			for _, spec := range []baselines.Spec{baselines.PartU, baselines.UGache, baselines.RepU} {
				jobs = append(jobs, gnnJob(o, p, spec, ds, "sage", true, ratio))
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 14: access split (%%), %s, Server C", ds.Name),
			"ratio%", "system", "local", "remote", "host")
		for _, ratio := range ratios {
			for _, spec := range []baselines.Spec{baselines.PartU, baselines.UGache, baselines.RepU} {
				rep, err := runGNN(o, p, spec, ds, "sage", true, ratio)
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%.0f", ratio*100), spec.Name,
					fmtPct(rep.HitLocal), fmtPct(rep.HitRemote), fmtPct(rep.HitHost))
			}
		}
		parts = append(parts, t.String())
	}
	parts = append(parts,
		"Paper shape: PA @2%: UGache ~= partition; @8%+: UGache lifts local hit far above\n"+
			"partition's while global hit stays close. CF (low skew): UGache stays\n"+
			"partition-like because sacrificing global hit is unprofitable.\n")
	return &Result{Name: "fig14", Text: joinResults(parts...)}, nil
}

// figure15 reproduces Figure 15: per-source extraction time as the ratio
// grows, with every baseline running UGache's factored extractor (as the
// paper does to isolate the policy).
func figure15(o Options) (*Result, error) {
	p := platform.ServerC()
	ratios := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	if o.Quick {
		ratios = []float64{0.02, 0.08, 0.12}
	}
	var jobs []job
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		for _, ratio := range ratios {
			for _, base := range []baselines.Spec{baselines.PartU, baselines.UGache, baselines.RepU} {
				spec := base
				spec.Mechanism = extract.Factored
				jobs = append(jobs, gnnJob(o, p, spec, ds, "sage", true, ratio))
			}
		}
	}
	prewarm(o, jobs)
	var parts []string
	for _, ds := range []graph.DatasetSpec{graph.PA, graph.CF} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 15: per-source extraction time (ms), %s, Server C", ds.Name),
			"ratio%", "system", "local", "remote", "host", "total")
		for _, ratio := range ratios {
			for _, base := range []baselines.Spec{baselines.PartU, baselines.UGache, baselines.RepU} {
				spec := base
				spec.Mechanism = extract.Factored // all adopt UGache's extractor
				rep, err := runGNN(o, p, spec, ds, "sage", true, ratio)
				if err != nil {
					return nil, err
				}
				// Decompose the measured extraction by source using the
				// per-byte effective bandwidths (local can only be
				// estimated under padding, as the paper notes).
				local, remote, host := sourceTimes(p, rep.HitLocal, rep.HitRemote, rep.HitHost,
					rep.UniqueKeysPerIter*float64(entryBytesOf(ds)))
				t.AddRow(fmt.Sprintf("%.0f", ratio*100), base.Name,
					fmtMS(local), fmtMS(remote), fmtMS(host), fmtMS(rep.PerIter.Extract))
			}
		}
		parts = append(parts, t.String())
	}
	parts = append(parts,
		"Paper shape: UGache trades a little host time for local time versus partition;\n"+
			"the remote slice shrinks as replication grows; 2.0x total gain on PA @8%.\n")
	return &Result{Name: "fig15", Text: joinResults(parts...)}, nil
}

func entryBytesOf(ds graph.DatasetSpec) int {
	return ds.Dim * ds.DType.Size()
}

// sourceTimes estimates the per-source extraction time of one GPU from the
// measured access split and total bytes.
func sourceTimes(p *platform.Platform, fLocal, fRemote, fHost, totalBytes float64) (local, remote, host float64) {
	bwLocal, _ := p.EffectiveBW(0, 0)
	bwHost, _ := p.EffectiveBW(0, p.Host())
	var bwRemote float64
	if p.N > 1 {
		per, _ := p.EffectiveBW(0, 1)
		bwRemote = per * float64(p.N-1) // spread across all peers
	} else {
		bwRemote = bwLocal
	}
	local = fLocal * totalBytes / bwLocal
	remote = fRemote * totalBytes / bwRemote
	host = fHost * totalBytes / bwHost
	return
}
