package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// BaselineEnvelope is the shared frame of every machine-written BENCH_*.json
// baseline: what was measured, the exact command that regenerates it, the Go
// toolchain it ran under, and the per-experiment reports. Keeping the frame
// in one place (instead of ad-hoc per-cmd JSON code) makes baselines
// self-describing and diff-stable across experiments.
type BaselineEnvelope struct {
	Description string         `json:"description"`
	Command     string         `json:"command"`
	Go          string         `json:"go"`
	Reports     map[string]any `json:"reports"`
}

// WriteBaseline marshals one baseline envelope to path (indented, trailing
// newline, 0644 — the checked-in BENCH_*.json conventions).
func WriteBaseline(path, description, command string, reports map[string]any) error {
	if len(reports) == 0 {
		return fmt.Errorf("bench: no reports to write to %s", path)
	}
	env := BaselineEnvelope{
		Description: description,
		Command:     command,
		Go:          runtime.Version(),
		Reports:     reports,
	}
	data, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
