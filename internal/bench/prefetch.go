package bench

import (
	"fmt"
	"time"

	"ugache/internal/core"
	"ugache/internal/serve"
	"ugache/internal/stats"
	"ugache/internal/telemetry"
)

func init() {
	register("prefetch", "served p99 and effective hit rate under lookahead prefetch (L=0/2/8) on the shifting-Zipf stream", prefetchBench)
}

// PrefetchModeReport is one lookahead depth's run over the shared schedule.
type PrefetchModeReport struct {
	Lookahead int `json:"lookahead"`
	// Served-latency percentiles in milliseconds (modelled extraction time
	// of each coalesced batch, i.e. what the requester waits on).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// LocalHitRate is the effective hit rate: the fraction of served bytes
	// resolved on the destination GPU (placement-local plus staged), from
	// the per-batch trace ring — prefetch traffic itself is excluded.
	LocalHitRate float64 `json:"local_hit_rate"`
	// PrefetchHitRate is the fraction of unique served keys that were
	// staged hits.
	PrefetchHitRate float64 `json:"prefetch_hit_rate"`
	// Pipeline accounting.
	PrefetchHits    int64 `json:"prefetch_hits"`
	StagedKeys      int64 `json:"staged_keys"`
	StaleServedKeys int64 `json:"stale_served_keys"`
	DroppedWindows  int64 `json:"dropped_windows"`
	// OverlapSimSeconds is the modelled extraction time the pipeline moved
	// off the critical path (the prefetch extractions' total makespan).
	OverlapSimSeconds float64 `json:"overlap_sim_seconds"`
}

// PrefetchReport is the prefetch experiment's machine-readable output
// (BENCH_prefetch.json).
type PrefetchReport struct {
	Server       string               `json:"server"`
	Entries      int64                `json:"entries"`
	KeysPerBatch int                  `json:"keys_per_batch"`
	Batches      int                  `json:"batches"`
	ShiftBatch   int                  `json:"shift_batch"`
	StaleBatches int                  `json:"stale_batches"`
	Modes        []PrefetchModeReport `json:"modes"`
}

func metricValue(reg *telemetry.Registry, name string) float64 {
	for _, s := range reg.Samples() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// runPrefetchMode replays the shared flash-crowd schedule through a serving
// engine at one lookahead depth. The announce stream is a same-seeded rng
// replica running L batches ahead of the serve stream (the
// GenBatchAt replay contract), so every batch's keys are announced exactly
// L batches before they are requested — the BagPipe-style lookahead oracle.
// A mid-stream Refresh (same batch for every mode) swaps the placement to
// the post-shift hotness, exercising the bounded-staleness window.
func runPrefetchMode(o Options, sc *driftScenario, lookahead, stale int) (PrefetchModeReport, error) {
	rep := PrefetchModeReport{Lookahead: lookahead}
	reg := telemetry.NewRegistry(sc.p.N)
	sys, err := core.Build(core.Config{
		Platform:           sc.p,
		Hotness:            sc.refHot,
		EntryBytes:         sc.entryBytes,
		CacheEntriesPerGPU: sc.capacity,
		Telemetry:          o.Telemetry,
		Timeline:           o.Timeline,
	})
	if err != nil {
		return rep, err
	}
	srv, err := serve.New(sys, serve.Config{
		MaxBatchKeys: sc.keysPerBatch,
		MaxWait:      5 * time.Millisecond,
		Telemetry:    reg,
		TraceDepth:   sc.batches + 8,
		Lookahead:    lookahead,
		StaleBatches: stale,
		Timeline:     o.Timeline,
	})
	if err != nil {
		return rep, err
	}

	peekR := sc.stream() // identical seed: runs L batches ahead in lockstep
	serveR := sc.stream()
	announce := func(b int) {
		if lookahead == 0 || b >= sc.batches {
			return
		}
		keys := sc.sz.GenBatchAt(peekR, b, sc.keysPerBatch)
		g := b % sc.p.N
		srv.Prefetch(g, keys)
		// Perfect-overlap model: in a real pipeline the prefetch hides under
		// the previous batches' compute; waiting here keeps the replay
		// deterministic while the modelled cost lands on the prefetch track.
		srv.WaitPrefetch(g)
	}
	for b := 0; b < lookahead; b++ {
		announce(b)
	}
	refreshAt := sc.shiftAt + 2
	postHot := sc.sz.ExpectedHotness(sc.shiftAt, sc.keysPerBatch)
	lats := make([]float64, 0, sc.batches)
	for b := 0; b < sc.batches; b++ {
		announce(b + lookahead)
		keys := sc.sz.GenBatchAt(serveR, b, sc.keysPerBatch)
		res, err := srv.Lookup(b%sc.p.N, keys)
		if err != nil {
			srv.Close()
			return rep, err
		}
		lats = append(lats, res.SimSeconds)
		if b == refreshAt {
			if _, err := sys.Refresh(postHot, 0.001, sc.refreshConfig(0.001)); err != nil {
				srv.Close()
				return rep, err
			}
		}
	}
	traces := srv.Trace().Snapshot(nil)
	srv.Close()

	q := stats.Quantiles(append([]float64(nil), lats...), 0.50, 0.99)
	rep.P50Ms, rep.P99Ms = q[0]*1e3, q[1]*1e3
	var local, total float64
	for _, tr := range traces {
		local += tr.LocalBytes
		total += tr.LocalBytes + tr.RemoteBytes + tr.HostBytes
	}
	if total > 0 {
		rep.LocalHitRate = local / total
	}
	uniq := metricValue(reg, "serve_unique_keys_total")
	rep.PrefetchHits = int64(metricValue(reg, "serve_fill_prefetch_hit"))
	if uniq > 0 {
		rep.PrefetchHitRate = float64(rep.PrefetchHits) / uniq
	}
	rep.StagedKeys = int64(metricValue(reg, "serve_prefetch_staged_keys_total"))
	rep.StaleServedKeys = int64(metricValue(reg, "serve_stale_served_keys_total"))
	rep.DroppedWindows = int64(metricValue(reg, "serve_prefetch_dropped_windows_total"))
	rep.OverlapSimSeconds = metricValue(reg, "serve_prefetch_sim_seconds_total")
	return rep, nil
}

// prefetchBench sweeps the lookahead depth over one flash-crowd schedule
// (the Fig. 16/17 analogue for the prefetch pipeline): L=0 is the
// demand-only baseline, deeper lookahead converts would-be remote/host
// misses into staged local hits and the served tail collapses accordingly.
func prefetchBench(o Options) (*Result, error) {
	sc := newDriftScenario(o)
	stale := o.StaleBatches
	if stale <= 0 {
		stale = 16
	}
	sweep := []int{0, 2, 8}
	if o.Lookahead > 0 {
		sweep = []int{0, o.Lookahead}
	}
	report := &PrefetchReport{
		Server:       sc.p.Name,
		Entries:      sc.n,
		KeysPerBatch: sc.keysPerBatch,
		Batches:      sc.batches,
		ShiftBatch:   sc.shiftAt,
		StaleBatches: stale,
	}
	for _, L := range sweep {
		m, err := runPrefetchMode(o, sc, L, stale)
		if err != nil {
			return nil, err
		}
		report.Modes = append(report.Modes, m)
	}

	t := stats.NewTable(
		fmt.Sprintf("Prefetch: lookahead sweep, flash-crowd at batch %d/%d, %s, %d entries, S=%d",
			sc.shiftAt, sc.batches, sc.p.Name, sc.n, stale),
		"lookahead", "p50(ms)", "p99(ms)", "local-hit", "pf-hit", "staged", "stale", "overlap(s)")
	for _, m := range report.Modes {
		t.AddRow(fmt.Sprintf("L=%d", m.Lookahead),
			fmt.Sprintf("%.3f", m.P50Ms),
			fmt.Sprintf("%.3f", m.P99Ms),
			fmtPct(m.LocalHitRate),
			fmtPct(m.PrefetchHitRate),
			fmt.Sprintf("%d", m.StagedKeys),
			fmt.Sprintf("%d", m.StaleServedKeys),
			fmt.Sprintf("%.4f", m.OverlapSimSeconds))
	}
	text := t.String() +
		"\nLookahead converts announced-batch misses into staged local hits: the demand\n" +
		"extraction only pays for the un-announced residue, so served p50/p99 drop and\n" +
		"the effective local-hit rate approaches 100%. The overlap column is the modelled\n" +
		"extraction time the pipeline absorbed off the critical path; 'stale' counts keys\n" +
		"served from outgoing-snapshot rows inside the S-batch staleness window around\n" +
		"the mid-stream refresh.\n"
	return &Result{Name: "prefetch", Text: text, JSON: report}, nil
}
