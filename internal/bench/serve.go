package bench

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/core"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/stats"
	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

func init() {
	register("serve", "open-loop overload sweep: latency vs offered load past saturation, knee and shed accounting", serveBench)
}

// ServeStepReport is one offered-load step of the open-loop sweep.
type ServeStepReport struct {
	// Multiplier is this step's offered load as a fraction of the
	// closed-loop calibrated capacity.
	Multiplier float64 `json:"multiplier"`
	// OfferedQPS is the intended open-loop arrival rate; ServedQPS is what
	// actually completed successfully.
	OfferedQPS float64 `json:"offered_qps"`
	ServedQPS  float64 `json:"served_qps"`
	Dispatched int64   `json:"dispatched"`
	Served     int64   `json:"served"`
	// Shed counts ErrOverload rejections (cross-checked against
	// serve_rejected_total in RejectedMetric).
	Shed           int64   `json:"shed"`
	RejectedMetric int64   `json:"serve_rejected_total"`
	ShedRate       float64 `json:"shed_rate"`
	// Latency percentiles of admitted requests in milliseconds, measured
	// from each request's intended arrival time (not its actual send), so
	// a lagging driver cannot hide queueing delay — the standard guard
	// against coordinated omission.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// PeakQueueDepth is serve_queue_depth_peak at the end of the step.
	PeakQueueDepth float64 `json:"peak_queue_depth"`
}

// ServeReport is the serve experiment's machine-readable output
// (BENCH_serve.json).
type ServeReport struct {
	Server         string  `json:"server"`
	Entries        int64   `json:"entries"`
	GPUs           int     `json:"gpus"`
	KeysPerRequest int     `json:"keys_per_request"`
	MaxBatchKeys   int     `json:"max_batch_keys"`
	QueueDepth     int     `json:"queue_depth"`
	Arrivals       string  `json:"arrivals"`
	Users          int64   `json:"users"`
	WindowSeconds  float64 `json:"window_seconds"`
	// CalibratedQPS is the closed-loop saturation throughput; CapacityQPS is
	// what one open-loop probe at that rate actually served — the harness
	// shares CPU with the server, so on small machines it is lower. The
	// sweep multipliers anchor to CapacityQPS: the knee must be found
	// relative to what this host can really serve through this path.
	CalibratedQPS float64 `json:"calibrated_qps"`
	CapacityQPS   float64 `json:"capacity_qps"`
	// KneeQPS is the highest offered rate that was still served nearly in
	// full (served/offered >= 0.95) — the headline number.
	KneeQPS        float64           `json:"knee_qps"`
	KneeMultiplier float64           `json:"knee_multiplier"`
	Steps          []ServeStepReport `json:"steps"`
}

// serveScenario pins the serving-side shape of the overload sweep. The
// stream is routed to a deliberately small GPU subset with a small batch
// budget, so the saturation knee sits well below what the load driver can
// offer — the sweep must be able to drive past it.
type serveScenario struct {
	p              *platform.Platform
	n              int64
	gpus           int
	keysPerRequest int
	maxBatchKeys   int
	queueDepth     int
	keyAlpha       float64
	users          int64
	window         time.Duration
	calWindow      time.Duration
	sweep          []float64
	seed           uint64
}

func newServeScenario(o Options) *serveScenario {
	n := int64(100_000 * o.Scale)
	if n < 8192 {
		n = 8192
	}
	sc := &serveScenario{
		p:              platform.ServerA(),
		n:              n,
		gpus:           2,
		keysPerRequest: 8,
		maxBatchKeys:   64,
		queueDepth:     256,
		keyAlpha:       1.2,
		users:          1_000_000,
		window:         600 * time.Millisecond,
		calWindow:      400 * time.Millisecond,
		sweep:          []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0},
		seed:           o.Seed,
	}
	if sc.gpus > sc.p.N {
		sc.gpus = sc.p.N
	}
	if o.Quick {
		sc.window = 120 * time.Millisecond
		sc.calWindow = 100 * time.Millisecond
		sc.sweep = []float64{0.5, 1.0, 2.0}
	}
	return sc
}

// hotness matches the generator's key popularity (key == Zipf rank), so the
// policy solver caches exactly what the open-loop stream will ask for.
func (sc *serveScenario) hotness() workload.Hotness {
	h := make(workload.Hotness, sc.n)
	for k := range h {
		h[k] = math.Pow(float64(k+1), -sc.keyAlpha)
	}
	return h
}

// newServeServer builds a fresh timing-mode system + serving engine with
// fast-fail admission for one step (fresh telemetry, so per-step counters
// start at zero).
func (sc *serveScenario) newServeServer(o Options) (*core.System, *serve.Server, *telemetry.Registry, error) {
	reg := telemetry.NewRegistry(sc.p.N)
	sys, err := core.Build(core.Config{
		Platform:   sc.p,
		Hotness:    sc.hotness(),
		EntryBytes: 64,
		CacheRatio: 0.1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := serve.New(sys, serve.Config{
		MaxBatchKeys: sc.maxBatchKeys,
		MaxWait:      200 * time.Microsecond,
		QueueDepth:   sc.queueDepth,
		Telemetry:    reg,
		TraceDepth:   -1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, srv, reg, nil
}

// calibrate measures closed-loop throughput: saturating synchronous clients
// (bounded outstanding work, so the system is busy but never overloaded).
// The open-loop multipliers are anchored to this rate.
func (sc *serveScenario) calibrate(o Options) (float64, error) {
	_, srv, _, err := sc.newServeServer(o)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	z, err := workload.NewZipf(sc.n, sc.keyAlpha)
	if err != nil {
		return 0, err
	}
	const clientsPerGPU = 16
	var served atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clientsPerGPU*sc.gpus; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(sc.seed).Split(fmt.Sprintf("cal-%d", c))
			keys := make([]int64, sc.keysPerRequest)
			gpu := c % sc.gpus
			for time.Since(start) < sc.calWindow {
				for i := range keys {
					keys[i] = z.Sample(r)
				}
				if _, err := srv.Lookup(gpu, keys); err != nil {
					if !errors.Is(err, serve.ErrOverload) {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					continue
				}
				served.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if served.Load() == 0 {
		return 0, fmt.Errorf("bench: serve calibration completed no requests")
	}
	return float64(served.Load()) / sc.calWindow.Seconds(), nil
}

// pendingReq is one dispatched request a driver has not yet collected.
type pendingReq struct {
	ch       <-chan serve.Result
	intended time.Time
}

// serveDriver is one open-loop dispatcher's tally. Each driver pins one GPU
// and collects its own requests oldest-first: a single driver's requests
// complete in FIFO order on its GPU (ring order is preserved through batch
// formation), so polling only the head of the outstanding queue is enough —
// no goroutine per request, which would starve the very workers the sweep
// is trying to saturate.
type serveDriver struct {
	dispatched int64
	served     int64
	shed       int64
	lats       []float64
	err        error
}

// collect drains the driver's completed head requests. Blocking mode drains
// everything at end of window; non-blocking mode runs between dispatches,
// so completion timestamps lag true completion by at most one poll gap.
func (dr *serveDriver) collect(outstanding []pendingReq, block bool) []pendingReq {
	for len(outstanding) > 0 {
		head := outstanding[0]
		var res serve.Result
		if block {
			res = <-head.ch
		} else {
			select {
			case res = <-head.ch:
			default:
				return outstanding
			}
		}
		lat := time.Since(head.intended).Seconds()
		switch {
		case res.Err == nil:
			dr.served++
			dr.lats = append(dr.lats, lat)
		case errors.Is(res.Err, serve.ErrOverload):
			dr.shed++
		default:
			if dr.err == nil {
				dr.err = res.Err
			}
		}
		outstanding = outstanding[1:]
	}
	return outstanding
}

// runServeStep drives one open-loop window at the given offered rate and
// reports what came back. Several drivers (independent Poisson streams
// splitting the rate; their superposition is Poisson again) pace arrivals
// by intended time and never wait for completions — requests land on a
// saturated server exactly as fast as the rate says they should.
func (sc *serveScenario) runServeStep(o Options, mult, offeredQPS float64) (ServeStepReport, error) {
	rep := ServeStepReport{Multiplier: mult}
	_, srv, reg, err := sc.newServeServer(o)
	if err != nil {
		return rep, err
	}

	dispatchers := sc.gpus // one paced driver per GPU keeps harness CPU low
	drivers := make([]serveDriver, dispatchers)
	var wg sync.WaitGroup
	epoch := time.Now()
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			dr := &drivers[d]
			gen, err := workload.NewOpenLoop(workload.OpenLoopConfig{
				QPS:            offeredQPS / float64(dispatchers),
				Arrivals:       workload.Poisson,
				Users:          sc.users,
				KeysPerRequest: sc.keysPerRequest,
				NumKeys:        sc.n,
				KeyAlpha:       sc.keyAlpha,
			}, sc.seed+uint64(d)*7919+uint64(mult*1000))
			if err != nil {
				dr.err = err
				return
			}
			gpu := d % sc.gpus
			var req workload.OpenLoopRequest
			var outstanding []pendingReq
			for {
				gen.Next(&req)
				if req.At >= sc.window {
					break
				}
				intended := epoch.Add(req.At)
				if wait := time.Until(intended); wait > 0 {
					time.Sleep(wait)
				}
				keys := append([]int64(nil), req.Keys...)
				outstanding = append(outstanding, pendingReq{ch: srv.Handle(gpu, keys), intended: intended})
				dr.dispatched++
				outstanding = dr.collect(outstanding, false)
			}
			dr.collect(outstanding, true)
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(epoch).Seconds()
	rep.PeakQueueDepth = metricValue(reg, "serve_queue_depth_peak")
	rep.RejectedMetric = int64(metricValue(reg, "serve_rejected_total"))
	srv.Close()

	var lats []float64
	for i := range drivers {
		dr := &drivers[i]
		if dr.err != nil {
			return rep, dr.err
		}
		rep.Dispatched += dr.dispatched
		rep.Served += dr.served
		rep.Shed += dr.shed
		lats = append(lats, dr.lats...)
	}
	rep.OfferedQPS = float64(rep.Dispatched) / sc.window.Seconds()
	rep.ServedQPS = float64(rep.Served) / elapsed
	if rep.Dispatched > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Dispatched)
	}
	if len(lats) > 0 {
		q := stats.Quantiles(lats, 0.50, 0.99)
		rep.P50Ms, rep.P99Ms = q[0]*1e3, q[1]*1e3
	}
	return rep, nil
}

// saturated reports whether a step is clearly past the knee: offered
// meaningfully above served, with real sheds recorded.
func saturated(st ServeStepReport) bool {
	return st.OfferedQPS > st.ServedQPS*1.05 && st.Shed > 0
}

// serveBench is the open-loop overload sweep: calibrate capacity closed-loop,
// then offer Poisson arrivals at multiples of it — past the knee the server
// must shed (ErrOverload) rather than absorb, and the admitted tail must stay
// bounded by the queue, not grow with offered load. The knee (highest offered
// rate served nearly in full) is the headline.
func serveBench(o Options) (*Result, error) {
	sc := newServeScenario(o)
	calibrated, err := sc.calibrate(o)
	if err != nil {
		return nil, err
	}
	// One open-loop probe at the closed-loop rate anchors the multipliers to
	// the capacity of this host through the open-loop path itself.
	probe, err := sc.runServeStep(o, 1.0, calibrated)
	if err != nil {
		return nil, err
	}
	capacity := probe.ServedQPS
	if capacity <= 0 {
		return nil, fmt.Errorf("bench: open-loop probe served nothing at %.0f qps", calibrated)
	}
	report := &ServeReport{
		Server:         sc.p.Name,
		Entries:        sc.n,
		GPUs:           sc.gpus,
		KeysPerRequest: sc.keysPerRequest,
		MaxBatchKeys:   sc.maxBatchKeys,
		QueueDepth:     sc.queueDepth,
		Arrivals:       workload.Poisson.String(),
		Users:          sc.users,
		WindowSeconds:  sc.window.Seconds(),
		CalibratedQPS:  calibrated,
		CapacityQPS:    capacity,
	}
	for _, mult := range sc.sweep {
		st, err := sc.runServeStep(o, mult, mult*capacity)
		if err != nil {
			return nil, err
		}
		report.Steps = append(report.Steps, st)
	}
	// Escalate until the sweep is provably past saturation: the top step must
	// offer more than it serves and record sheds, or the curve has no
	// overload region to show.
	for extra := 0; extra < 5 && !saturated(report.Steps[len(report.Steps)-1]); extra++ {
		mult := report.Steps[len(report.Steps)-1].Multiplier * 2
		st, err := sc.runServeStep(o, mult, mult*capacity)
		if err != nil {
			return nil, err
		}
		report.Steps = append(report.Steps, st)
	}
	for _, st := range report.Steps {
		if st.OfferedQPS > 0 && st.ServedQPS >= 0.95*st.OfferedQPS {
			report.KneeQPS = st.OfferedQPS
			report.KneeMultiplier = st.Multiplier
		}
	}
	if report.KneeQPS == 0 {
		// No step served its full offer (tiny windows on a loaded host):
		// fall back to the served plateau as the capacity estimate.
		for _, st := range report.Steps {
			if st.ServedQPS > report.KneeQPS {
				report.KneeQPS = st.ServedQPS
				report.KneeMultiplier = st.Multiplier
			}
		}
	}

	t := stats.NewTable(
		fmt.Sprintf("Serve: open-loop %s overload sweep, %s (%d/%d GPUs), %d entries, capacity %.0f qps, knee %.0f qps",
			report.Arrivals, sc.p.Name, sc.gpus, sc.p.N, sc.n, capacity, report.KneeQPS),
		"offered(x)", "offered qps", "served qps", "shed", "shed%", "p50(ms)", "p99(ms)", "peak depth")
	for _, st := range report.Steps {
		t.AddRow(fmt.Sprintf("%.2f", st.Multiplier),
			fmt.Sprintf("%.0f", st.OfferedQPS),
			fmt.Sprintf("%.0f", st.ServedQPS),
			fmt.Sprintf("%d", st.Shed),
			fmtPct(st.ShedRate),
			fmt.Sprintf("%.3f", st.P50Ms),
			fmt.Sprintf("%.3f", st.P99Ms),
			fmt.Sprintf("%.0f", st.PeakQueueDepth))
	}
	text := t.String() +
		"\nOpen-loop arrivals keep offering load after the server saturates (a closed loop\n" +
		"cannot), so the curve shows the knee and what lies past it: served qps flattens\n" +
		"at capacity, the surplus is shed via ErrOverload (serve_rejected_total), and the\n" +
		"p99 of admitted requests stays bounded by the admission queue instead of growing\n" +
		"with offered load. Latency is measured from each request's intended arrival time\n" +
		"(coordinated-omission safe).\n"
	return &Result{Name: "serve", Text: text, JSON: report}, nil
}
