package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteMetricsEscapesHelp pins the exposition-format escaping: a help
// string carrying literal newlines or backslashes must not break the
// line-oriented scrape.
func TestWriteMetricsEscapesHelp(t *testing.T) {
	reg := NewRegistry(1)
	reg.Counter("evil_total", "first line\nsecond line").Add(0, 1)
	reg.Gauge("path_gauge", `windows C:\temp\cache`).Set(2)
	reg.Histogram("evil_seconds", "histo\nhelp \\ done", []float64{1, 2}).Observe(0, 0.5)

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# HELP evil_total first line\nsecond line`,
		`# HELP path_gauge windows C:\\temp\\cache`,
		`# HELP evil_seconds histo\nhelp \\ done`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Every line must be a comment, a sample, or blank — a raw embedded
	// newline would leave a dangling "second line" fragment.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !strings.HasPrefix(line, "evil_") && !strings.HasPrefix(line, "path_") {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry(1)
	h := reg.Histogram("q_seconds", "x", []float64{1, 2, 4})

	// Empty histogram: every quantile reads 0.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// All mass in the +Inf overflow bucket: the highest finite bound caps
	// the estimate at every quantile.
	for i := 0; i < 10; i++ {
		h.Observe(0, 100)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Fatalf("overflow-only Quantile(%g) = %g, want 4 (highest finite bound)", q, got)
		}
	}

	// q=0 and q=1 stay inside the observed bucket range.
	h2 := reg.Histogram("q2_seconds", "x", []float64{1, 2, 4})
	h2.Observe(0, 0.5)
	h2.Observe(0, 1.5)
	if got := h2.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("Quantile(0) = %g, want within first bucket [0, 1]", got)
	}
	if got := h2.Quantile(1); got < 1 || got > 2 {
		t.Fatalf("Quantile(1) = %g, want within second bucket (1, 2]", got)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// Degenerate inputs all read 0.
	if got := QuantileFromBuckets(nil, nil, 0.99); got != 0 {
		t.Fatalf("nil/nil = %g", got)
	}
	if got := QuantileFromBuckets(bounds, nil, 0.99); got != 0 {
		t.Fatalf("nil counts = %g", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0.99); got != 0 {
		t.Fatalf("all-zero counts = %g", got)
	}
	// 10 samples uniformly in (1, 2]: the median interpolates to ~1.5.
	if got := QuantileFromBuckets(bounds, []uint64{0, 10, 0, 0}, 0.5); got != 1.5 {
		t.Fatalf("median of one full bucket = %g, want 1.5", got)
	}
	// Mass reaching the +Inf bucket reports the highest finite bound.
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 5}, 0.99); got != 4 {
		t.Fatalf("+Inf mass = %g, want 4", got)
	}
	// Windowed use: the diff between two cumulative snapshots. 99 fast then
	// 100 slow samples — the p99 of the diff window sits in the slow bucket.
	if got := QuantileFromBuckets(bounds, []uint64{1, 0, 99, 0}, 0.99); got <= 2 || got > 4 {
		t.Fatalf("windowed p99 = %g, want in (2, 4]", got)
	}
}

func TestRegistryFind(t *testing.T) {
	reg := NewRegistry(2)
	if m := reg.Find("nope"); m != nil {
		t.Fatalf("Find on an empty registry = %v", m)
	}
	c := reg.Counter("x_total", "x")
	h := reg.Histogram("x_seconds", "x", []float64{1})
	if got, ok := reg.Find("x_total").(*Counter); !ok || got != c {
		t.Fatalf("Find(x_total) = %v", got)
	}
	if got, ok := reg.Find("x_seconds").(*Histogram); !ok || got != h {
		t.Fatalf("Find(x_seconds) = %v", got)
	}
	// Find never creates.
	if m := reg.Find("still_missing"); m != nil {
		t.Fatalf("Find created %v", m)
	}
}

func TestHistogramBucketsMerged(t *testing.T) {
	reg := NewRegistry(2)
	h := reg.Histogram("b_seconds", "x", []float64{1, 2})
	h.Observe(0, 0.5)
	h.Observe(1, 1.5)
	h.Observe(1, 9)
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("Buckets() = %v %v", bounds, counts)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("merged counts = %v, want one per bucket across shards", counts)
	}
	// The returned slices are copies; mutating them must not corrupt the
	// histogram.
	counts[0] = 99
	bounds[0] = -1
	if _, again := h.Buckets(); again[0] != 1 {
		t.Fatalf("Buckets() exposes internal state: %v", again)
	}
}
