package telemetry

import "sync/atomic"

// Health is the serving stack's liveness/readiness state, published at
// /healthz and /readyz by the handler. Liveness is implicit (the process
// answers); readiness is an explicit bit the owner flips — set after the
// first cache build commits, cleared while shutting down — so load
// balancers stop routing before Close drains the workers.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a not-ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness bit.
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// Ready reports the readiness bit.
func (h *Health) Ready() bool { return h.ready.Load() }
