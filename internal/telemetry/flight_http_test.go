package telemetry

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeFlight struct {
	state      string
	bundleDir  string
	err        error
	lastReason string
}

func (f *fakeFlight) WriteFlightState(w io.Writer) error {
	_, err := io.WriteString(w, f.state)
	return err
}

func (f *fakeFlight) TriggerBundle(reason string) (string, error) {
	f.lastReason = reason
	return f.bundleDir, f.err
}

func TestFlightEndpoints(t *testing.T) {
	fl := &fakeFlight{state: `{"state":{"armed":true},"events":[]}`, bundleDir: "/tmp/bundles/flight-1"}
	srv := httptest.NewServer(NewHandler(HandlerConfig{Flight: fl}))
	defer srv.Close()

	resp, body := get(t, srv, "/debug/flight")
	if resp.StatusCode != http.StatusOK || body != fl.state {
		t.Fatalf("flight state: %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("flight Content-Type %q", ct)
	}

	// GET on the bundle trigger is refused: writing bundles is a mutation.
	resp, _ = get(t, srv, "/debug/flight/bundle")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET bundle: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	resp, err := http.Post(srv.URL+"/debug/flight/bundle?reason=test-push", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, fl.bundleDir) {
		t.Fatalf("POST bundle: %d %q", resp.StatusCode, body)
	}
	if fl.lastReason != "test-push" {
		t.Fatalf("bundle reason = %q", fl.lastReason)
	}

	// Without an explicit reason the handler labels the trigger "http".
	resp, err = http.Post(srv.URL+"/debug/flight/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if fl.lastReason != "http" {
		t.Fatalf("default bundle reason = %q", fl.lastReason)
	}
}

func TestFlightBundleError(t *testing.T) {
	fl := &fakeFlight{err: errors.New("disk full")}
	srv := httptest.NewServer(NewHandler(HandlerConfig{Flight: fl}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/debug/flight/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(body, "disk full") {
		t.Fatalf("failed bundle: %d %q", resp.StatusCode, body)
	}
}

func TestFlightEndpointsNil404(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerConfig{}))
	defer srv.Close()
	if resp, _ := get(t, srv, "/debug/flight"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flight without watchdog: %d", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/debug/flight/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bundle without watchdog: %d", resp.StatusCode)
	}
}

// TestPprofGuard pins that the profile endpoints exist only behind the
// explicit opt-in: they expose stacks and heap contents.
func TestPprofGuard(t *testing.T) {
	off := httptest.NewServer(NewHandler(HandlerConfig{}))
	defer off.Close()
	if resp, _ := get(t, off, "/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: %d", resp.StatusCode)
	}

	on := httptest.NewServer(NewHandler(HandlerConfig{EnablePprof: true}))
	defer on.Close()
	resp, body := get(t, on, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index with opt-in: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, on, "/debug/pprof/symbol"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol with opt-in: %d", resp.StatusCode)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
