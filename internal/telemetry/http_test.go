package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

type fakeTimeline struct{ doc string }

func (f fakeTimeline) WriteTrace(w io.Writer) error {
	_, err := io.WriteString(w, f.doc)
	return err
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	srv := httptest.NewServer(NewHandler(HandlerConfig{Health: h}))
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("healthz Content-Length %q for %d bytes", cl, len(body))
	}

	resp, body = get(t, srv, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Fatalf("readyz before SetReady: %d %q", resp.StatusCode, body)
	}
	h.SetReady(true)
	resp, body = get(t, srv, "/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after SetReady: %d %q", resp.StatusCode, body)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("readyz Content-Length %q for %d bytes", cl, len(body))
	}
	h.SetReady(false)
	if resp, _ := get(t, srv, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after clearing: %d", resp.StatusCode)
	}
}

func TestTimelineEndpoint(t *testing.T) {
	doc := `{"displayTimeUnit":"ms","traceEvents":[]}`
	srv := httptest.NewServer(NewHandler(HandlerConfig{Timeline: fakeTimeline{doc}}))
	defer srv.Close()
	resp, body := get(t, srv, "/debug/timeline")
	if resp.StatusCode != http.StatusOK || body != doc {
		t.Fatalf("timeline: %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeline Content-Type %q", ct)
	}
}

func TestHandlerNilEndpoints404(t *testing.T) {
	// The legacy wrapper exposes neither timeline nor health.
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/timeline", "/healthz", "/readyz", "/nope"} {
		if resp, _ := get(t, srv, path); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
	// The index still lists the endpoint set.
	if resp, body := get(t, srv, "/"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "/debug/timeline") {
		t.Fatalf("index: %d %q", resp.StatusCode, body)
	}
}
