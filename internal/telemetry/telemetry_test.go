package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardsMerge(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("reqs_total", "requests")
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ { // more workers than shards: modulo reduction
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(s, 1)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter merged to %d, want 8000", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	r := NewRegistry(2)
	c := r.FloatCounter("sim_seconds_total", "seconds")
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(s, 0.5)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Value(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("float counter %g, want 1000", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(1)
	g := r.Gauge("impact", "factor")
	if g.Value() != 0 {
		t.Fatal("fresh gauge not zero")
	}
	g.Set(1.25)
	if g.Value() != 1.25 {
		t.Fatalf("gauge %g", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry(3)
	h := r.Histogram("lat", "seconds", ExpBuckets(1e-6, 2, 24))
	// 1000 samples spread 1..1000 microseconds across shards.
	for i := 1; i <= 1000; i++ {
		h.Observe(i, float64(i)*1e-6)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if s := h.Sum(); math.Abs(s-500.5e-3) > 1e-9 {
		t.Fatalf("sum %g", s)
	}
	p50 := h.Quantile(0.50)
	if p50 < 300e-6 || p50 > 800e-6 {
		t.Fatalf("p50 %g outside the bucket-resolution window around 500us", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 800e-6 || p99 > 1100e-6 {
		t.Fatalf("p99 %g outside the bucket-resolution window around 990us", p99)
	}
	if p50 > p99 {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry(1)
	h := r.Histogram("small", "x", []float64{1, 2})
	h.Observe(0, 100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile %g, want clamped to highest bound 2", got)
	}
}

func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestWriteMetricsFormat(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("serve_requests_total", "requests completed").Add(0, 42)
	r.Gauge("cache_refresh_last_duration_seconds", "seconds").Set(28.7)
	h := r.Histogram("serve_request_latency_seconds", "request latency", ExpBuckets(1e-6, 4, 10))
	h.Observe(0, 3e-6)
	h.Observe(1, 9e-6)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total 42",
		"cache_refresh_last_duration_seconds 28.7",
		"# TYPE serve_request_latency_seconds histogram",
		`serve_request_latency_seconds_bucket{le="+Inf"} 2`,
		"serve_request_latency_seconds_count 2",
		`serve_request_latency_seconds{quantile="0.5"}`,
		`serve_request_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestSamples(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("b_total", "").Add(0, 2)
	r.FloatCounter("a_seconds", "").Add(0, 1.5)
	samples := r.Samples()
	if len(samples) != 2 || samples[0].Name != "a_seconds" || samples[1].Value != 2 {
		t.Fatalf("samples %+v", samples)
	}
}

func TestTraceRingWrapAndSnapshot(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		ring.Record(&BatchTrace{Seq: int64(i), RequestedKeys: 2 * i, UniqueKeys: i})
	}
	if ring.Len() != 4 {
		t.Fatalf("ring len %d", ring.Len())
	}
	got := ring.Snapshot(nil)
	if len(got) != 4 || got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("snapshot %+v", got)
	}
	if dr := got[0].DedupRatio(); dr != 2 {
		t.Fatalf("dedup ratio %g", dr)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("serve_requests_total", "requests").Add(0, 7)
	ring := NewTraceRing(8)
	ring.Record(&BatchTrace{Seq: 1, GPU: 2, Requests: 3, RequestedKeys: 6, UniqueKeys: 4, Reason: FillTimer, SimSeconds: 0.001})
	srv := httptest.NewServer(Handler(r, ring))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "serve_requests_total 7") {
		t.Fatalf("metrics endpoint output:\n%s", body)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var traces []map[string]interface{}
	if err := json.NewDecoder(res.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(traces) != 1 || traces[0]["reason"] != "timer" || traces[0]["dedup_ratio"].(float64) != 1.5 {
		t.Fatalf("trace endpoint %+v", traces)
	}

	res, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Fatalf("unknown path status %d", res.StatusCode)
	}
}

func TestZeroAllocUpdates(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("c", "")
	f := r.FloatCounter("f", "")
	h := r.Histogram("h", "", ExpBuckets(1e-6, 2, 20))
	ring := NewTraceRing(16)
	tr := BatchTrace{Seq: 1}
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1, 1)
		f.Add(1, 0.5)
		h.Observe(1, 3e-5)
		ring.Record(&tr)
	})
	if allocs != 0 {
		t.Fatalf("update path allocates %v per run", allocs)
	}
}
