package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// FillReason says why a coalesced batch was flushed.
type FillReason uint8

const (
	// FillFull: the pending key count reached MaxBatchKeys.
	FillFull FillReason = iota
	// FillTimer: the MaxWait deadline fired on a partial batch.
	FillTimer
	// FillDrain: the server was closing and drained the queue.
	FillDrain
)

func (f FillReason) String() string {
	switch f {
	case FillFull:
		return "full"
	case FillTimer:
		return "timer"
	default:
		return "drain"
	}
}

// MarshalJSON renders the reason as its string form.
func (f FillReason) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.String())
}

// BatchTrace is one coalesced batch's trace record: how the batch formed
// (queue wait, coalesce size, dedup ratio, flush trigger) and what the
// extraction model said it cost, split by source tier (§5.3/§6.2 — the
// local/remote/host breakdown is the quantity UGache's solver optimizes).
// The struct is flat (no pointers, no slices) so ring-buffer recording is a
// plain copy with zero allocations.
type BatchTrace struct {
	// Seq numbers batches per GPU, starting at 1.
	Seq int64 `json:"seq"`
	// GPU is the destination GPU the batch was extracted for.
	GPU int `json:"gpu"`
	// UnixNanos is the flush wall-clock time.
	UnixNanos int64 `json:"unix_nanos"`
	// QueueWaitSeconds is how long the first request of the batch sat in
	// the queue before its worker picked it up.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	// Requests is the number of client requests coalesced into the batch.
	Requests int `json:"requests"`
	// RequestedKeys counts keys before dedup, UniqueKeys after.
	RequestedKeys int `json:"requested_keys"`
	UniqueKeys    int `json:"unique_keys"`
	// Reason is the flush trigger (full / timer / drain).
	Reason FillReason `json:"reason"`
	// SimSeconds is the modelled extraction time of the batch.
	SimSeconds float64 `json:"sim_seconds"`
	// PrefetchHits is how many unique keys were served from the lookahead
	// staging arena instead of the placement's source tier.
	PrefetchHits int `json:"prefetch_hits,omitempty"`
	// StaleBatches is the maximum bounded-staleness (in batches) among the
	// staged rows this batch consumed — non-zero only when rows committed
	// under an outgoing placement version were served inside the staleness
	// window.
	StaleBatches int64 `json:"stale_batches,omitempty"`
	// Per-tier bytes moved, from the extractor's source-volume matrix. The
	// network tier is the cluster's remote-machine class; zero off-cluster.
	LocalBytes   float64 `json:"local_bytes"`
	RemoteBytes  float64 `json:"remote_bytes"`
	HostBytes    float64 `json:"host_bytes"`
	NetworkBytes float64 `json:"network_bytes,omitempty"`
	// Per-tier modelled seconds (§6.2 serial estimate: bytes x time-per-
	// byte; tiers overlap in the real schedule, so the parts may sum to
	// more than SimSeconds).
	LocalSeconds   float64 `json:"local_seconds"`
	RemoteSeconds  float64 `json:"remote_seconds"`
	HostSeconds    float64 `json:"host_seconds"`
	NetworkSeconds float64 `json:"network_seconds,omitempty"`
}

// DedupRatio is requested/unique keys (1.0 = no sharing across requests).
func (t *BatchTrace) DedupRatio() float64 {
	if t.UniqueKeys == 0 {
		return 0
	}
	return float64(t.RequestedKeys) / float64(t.UniqueKeys)
}

// TraceRing keeps the last N batch traces in a preallocated ring. Record
// copies the caller's struct into the next slot under a short mutex — no
// allocation, and the lock is per recorded batch (sampled), not per
// request, so it does not serialize the workers' hot path.
type TraceRing struct {
	mu   sync.Mutex
	buf  []BatchTrace
	next int
	n    int
}

// NewTraceRing returns a ring holding the last depth records (min 1).
func NewTraceRing(depth int) *TraceRing {
	if depth < 1 {
		depth = 1
	}
	return &TraceRing{buf: make([]BatchTrace, depth)}
}

// Depth returns the ring capacity.
func (r *TraceRing) Depth() int { return len(r.buf) }

// Record copies one trace into the ring.
func (r *TraceRing) Record(t *BatchTrace) {
	r.mu.Lock()
	r.buf[r.next] = *t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of records currently held.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot appends the held records to dst, oldest first, and returns it.
func (r *TraceRing) Snapshot(dst []BatchTrace) []BatchTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(start+i)%len(r.buf)])
	}
	return dst
}

// WriteJSON renders the ring's records (oldest first) as a JSON array with
// a dedup_ratio field added per record.
func (r *TraceRing) WriteJSON(w io.Writer) error {
	traces := r.Snapshot(nil)
	type jsonTrace struct {
		BatchTrace
		DedupRatio float64 `json:"dedup_ratio"`
	}
	out := make([]jsonTrace, len(traces))
	for i := range traces {
		out[i] = jsonTrace{traces[i], traces[i].DedupRatio()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
