package telemetry

import (
	"fmt"
	"net/http"
)

// Handler serves the registry at /metrics (plain-text exposition format)
// and, when ring is non-nil, the last-N batch traces at /debug/trace
// (JSON array, oldest first). Either argument may be nil; the matching
// endpoint then answers 404.
func Handler(reg *Registry, ring *TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if reg == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is note it inline.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := ring.WriteJSON(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ugache telemetry\n\n/metrics      plain-text counters, gauges, latency histograms\n/debug/trace  last-N per-batch trace records (JSON)\n")
	})
	return mux
}
