package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// TimelineWriter is anything that can export a Chrome trace-event JSON
// document — in practice *timeline.Recorder, accepted as an interface so
// telemetry does not import the timeline package.
type TimelineWriter interface {
	WriteTrace(w io.Writer) error
}

// FlightDebug is the flight-recorder surface the handler exposes — in
// practice *flight.Watchdog, accepted as an interface so telemetry does not
// import the flight package.
type FlightDebug interface {
	// WriteFlightState renders the watchdog state plus recent flight events
	// as one JSON document (the /debug/flight body).
	WriteFlightState(w io.Writer) error
	// TriggerBundle writes a diagnostic bundle now and returns its path.
	TriggerBundle(reason string) (string, error)
}

// HandlerConfig selects which endpoints the telemetry handler exposes. Any
// nil field turns its endpoint(s) into 404s.
type HandlerConfig struct {
	// Registry backs /metrics (plain-text exposition format).
	Registry *Registry
	// Trace backs /debug/trace (last-N batch trace records, JSON).
	Trace *TraceRing
	// Timeline backs /debug/timeline (Chrome trace-event JSON for
	// Perfetto / chrome://tracing).
	Timeline TimelineWriter
	// Flight backs /debug/flight (recent events + watchdog state, JSON) and
	// POST /debug/flight/bundle (write a diagnostic bundle on demand).
	Flight FlightDebug
	// Health backs /healthz and /readyz. /healthz answers 200 whenever the
	// process is alive; /readyz answers 200 or 503 from Health.Ready.
	Health *Health
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiles expose stacks and heap contents, so the flag is
	// an explicit opt-in (-pprof on ugache-serve) rather than a side effect
	// of importing the package.
	EnablePprof bool
}

// statusJSON writes a small JSON status body with an explicit
// Content-Length, so probes reading liveness over keep-alive connections
// never wait on chunked-transfer framing.
func statusJSON(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	io.WriteString(w, body)
}

// NewHandler builds the telemetry endpoint set described by cfg.
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Registry == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is note it inline.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Trace == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Trace.WriteJSON(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Timeline == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if err := cfg.Timeline.WriteTrace(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Flight == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Flight.WriteFlightState(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/flight/bundle", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Flight == nil {
			http.NotFound(w, req)
			return
		}
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		reason := req.URL.Query().Get("reason")
		if reason == "" {
			reason = "http"
		}
		path, err := cfg.Flight.TriggerBundle(reason)
		if err != nil {
			statusJSON(w, http.StatusInternalServerError,
				mustJSON(map[string]string{"error": err.Error()}))
			return
		}
		statusJSON(w, http.StatusOK, mustJSON(map[string]string{"bundle": path}))
	})
	if cfg.EnablePprof {
		// Explicit routes instead of the package's init-time DefaultServeMux
		// registration, so the profiles exist only behind this opt-in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health == nil {
			http.NotFound(w, req)
			return
		}
		statusJSON(w, http.StatusOK, `{"status":"ok"}`)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health == nil {
			http.NotFound(w, req)
			return
		}
		if cfg.Health.Ready() {
			statusJSON(w, http.StatusOK, `{"status":"ready"}`)
			return
		}
		statusJSON(w, http.StatusServiceUnavailable, `{"status":"not ready"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ugache telemetry\n\n"+
			"/metrics              plain-text counters, gauges, latency histograms\n"+
			"/debug/trace          last-N per-batch trace records (JSON)\n"+
			"/debug/timeline       Chrome trace-event JSON (open in Perfetto)\n"+
			"/debug/flight         flight-recorder events + SLO watchdog state (JSON)\n"+
			"/debug/flight/bundle  POST: write a diagnostic bundle now\n"+
			"/debug/pprof/         runtime profiles (only with pprof enabled)\n"+
			"/healthz              liveness probe\n"+
			"/readyz               readiness probe\n")
	})
	return mux
}

// mustJSON renders a small map for statusJSON bodies; the inputs are
// in-process strings, so encoding cannot fail.
func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return `{"error":"encode failure"}`
	}
	return string(b)
}

// Handler serves the registry at /metrics and, when ring is non-nil, the
// last-N batch traces at /debug/trace. It is the pre-timeline form of
// NewHandler, kept for callers that need neither timeline export nor health
// probes; either argument may be nil (404 on the matching endpoint).
func Handler(reg *Registry, ring *TraceRing) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Trace: ring})
}
