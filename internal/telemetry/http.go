package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// TimelineWriter is anything that can export a Chrome trace-event JSON
// document — in practice *timeline.Recorder, accepted as an interface so
// telemetry does not import the timeline package.
type TimelineWriter interface {
	WriteTrace(w io.Writer) error
}

// HandlerConfig selects which endpoints the telemetry handler exposes. Any
// nil field turns its endpoint(s) into 404s.
type HandlerConfig struct {
	// Registry backs /metrics (plain-text exposition format).
	Registry *Registry
	// Trace backs /debug/trace (last-N batch trace records, JSON).
	Trace *TraceRing
	// Timeline backs /debug/timeline (Chrome trace-event JSON for
	// Perfetto / chrome://tracing).
	Timeline TimelineWriter
	// Health backs /healthz and /readyz. /healthz answers 200 whenever the
	// process is alive; /readyz answers 200 or 503 from Health.Ready.
	Health *Health
}

// statusJSON writes a small JSON status body with an explicit
// Content-Length, so probes reading liveness over keep-alive connections
// never wait on chunked-transfer framing.
func statusJSON(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	io.WriteString(w, body)
}

// NewHandler builds the telemetry endpoint set described by cfg.
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Registry == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is note it inline.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Trace == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Trace.WriteJSON(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Timeline == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if err := cfg.Timeline.WriteTrace(w); err != nil {
			fmt.Fprintf(w, "// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health == nil {
			http.NotFound(w, req)
			return
		}
		statusJSON(w, http.StatusOK, `{"status":"ok"}`)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health == nil {
			http.NotFound(w, req)
			return
		}
		if cfg.Health.Ready() {
			statusJSON(w, http.StatusOK, `{"status":"ready"}`)
			return
		}
		statusJSON(w, http.StatusServiceUnavailable, `{"status":"not ready"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ugache telemetry\n\n"+
			"/metrics         plain-text counters, gauges, latency histograms\n"+
			"/debug/trace     last-N per-batch trace records (JSON)\n"+
			"/debug/timeline  Chrome trace-event JSON (open in Perfetto)\n"+
			"/healthz         liveness probe\n"+
			"/readyz          readiness probe\n")
	})
	return mux
}

// Handler serves the registry at /metrics and, when ring is non-nil, the
// last-N batch traces at /debug/trace. It is the pre-timeline form of
// NewHandler, kept for callers that need neither timeline export nor health
// probes; either argument may be nil (404 on the matching endpoint).
func Handler(reg *Registry, ring *TraceRing) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Trace: ring})
}
