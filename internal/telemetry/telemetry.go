// Package telemetry is the observability layer of the serving stack:
// allocation-conscious counters, gauges and fixed-bucket latency histograms,
// plus a per-batch trace ring (trace.go) and a plain-text /metrics +
// JSON /debug/trace HTTP handler (http.go).
//
// The design follows the hot-path memory discipline of DESIGN.md §6.1: a
// metric is registered once (get-or-create, so independently built systems
// may share one Registry) and updated through lock-free per-shard atomics —
// a serving worker updates its own shard and never contends with its peers;
// readers merge the shards on demand. No update path allocates, takes a
// lock, or branches on more than a nil check, so instrumented hot loops
// stay within the allocation budget pinned in BENCH_hotpath.json.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// shardPad keeps adjacent shards on distinct cache lines so per-worker
// updates do not false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing integer metric, sharded per worker.
type Counter struct {
	name, help string
	shards     []shard
}

// Add increments the counter by delta on the given shard (a worker index;
// reduced modulo the registry's shard count).
func (c *Counter) Add(shardIdx int, delta int64) {
	c.shards[shardIdx%len(c.shards)].v.Add(uint64(delta))
}

// Value merges all shards.
func (c *Counter) Value() int64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return int64(sum)
}

// FloatCounter is a monotonically increasing float metric (accumulated
// seconds, bytes as float64), sharded per worker. Each shard is updated
// with a CAS loop; with one writer per shard the loop runs once.
type FloatCounter struct {
	name, help string
	shards     []shard
}

// Add accumulates delta on the given shard.
func (c *FloatCounter) Add(shardIdx int, delta float64) {
	s := &c.shards[shardIdx%len(c.shards)].v
	for {
		old := s.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if s.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value merges all shards.
func (c *FloatCounter) Value() float64 {
	sum := 0.0
	for i := range c.shards {
		sum += math.Float64frombits(c.shards[i].v.Load())
	}
	return sum
}

// Gauge is a last-write-wins float metric (refresh durations, impact
// factors). Gauges are written from slow paths, so a single atomic cell is
// enough.
type Gauge struct {
	name, help string
	v          atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket histogram with per-shard atomic counts. The
// bounds are upper bucket edges; an implicit +Inf bucket catches the rest.
// Observe is lock-free and allocation-free: a linear scan over the bounds
// (bucket counts are small) plus one atomic add.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted upper edges, len = buckets-1 (+Inf implicit)
	counts     []shard   // shards*len(bounds+1), row-major by shard
	sum        FloatCounter
	nshards    int
}

// Observe records one sample on the given shard.
func (h *Histogram) Observe(shardIdx int, v float64) {
	b := 0
	for b < len(h.bounds) && v > h.bounds[b] {
		b++
	}
	row := (shardIdx % h.nshards) * (len(h.bounds) + 1)
	h.counts[row+b].v.Add(1)
	h.sum.Add(shardIdx, v)
}

// Count merges the total number of observations.
func (h *Histogram) Count() int64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].v.Load()
	}
	return int64(n)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// merged returns the per-bucket counts summed over shards. The caller owns
// the returned slice (read path only).
func (h *Histogram) merged() []uint64 {
	nb := len(h.bounds) + 1
	out := make([]uint64, nb)
	for s := 0; s < h.nshards; s++ {
		for b := 0; b < nb; b++ {
			out[b] += h.counts[s*nb+b].v.Load()
		}
	}
	return out
}

// Buckets returns the histogram's upper bucket edges and a merged copy of
// the per-bucket counts (one more count than bounds: the final entry is the
// implicit +Inf bucket). The caller owns both slices; callers that poll —
// the flight watchdog diffs successive merges to get windowed counts — may
// cache the bounds, which never change after registration.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	return append([]float64(nil), h.bounds...), h.merged()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the covering bucket. Samples in the +Inf bucket report the highest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.bounds, h.merged(), q)
}

// QuantileFromBuckets estimates the q-quantile of an arbitrary bucket-count
// vector over sorted upper edges (len(counts) = len(bounds)+1, the extra
// entry being the +Inf bucket). It is Histogram.Quantile with the counts
// supplied by the caller, so windowed quantiles can be computed from
// bucket-count diffs between two snapshots. An empty or all-zero vector
// reports 0; mass in the +Inf bucket reports the highest finite bound.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 || len(counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	acc := 0.0
	for b, c := range counts {
		prev := acc
		acc += float64(c)
		if acc < target || c == 0 {
			continue
		}
		if b >= len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if b > 0 {
			lo = bounds[b-1]
		}
		frac := (target - prev) / float64(c)
		return lo + frac*(bounds[b]-lo)
	}
	return bounds[len(bounds)-1]
}

// ExpBuckets returns n upper bucket edges starting at lo, each factor times
// the previous — the usual latency-histogram shape.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if lo <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs lo > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds the named metrics of one process (or one system under
// test). Registration is get-or-create: asking twice for the same name and
// kind returns the same metric, so independently constructed subsystems can
// share a registry without coordination. Mixing kinds under one name
// panics — that is a programming error, not a runtime condition.
type Registry struct {
	nshards int

	mu      sync.Mutex
	byName  map[string]interface{}
	ordered []string
}

// NewRegistry creates a registry whose counters and histograms have the
// given number of update shards (one per serving worker; values < 1 are
// raised to 1).
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{nshards: shards, byName: make(map[string]interface{})}
}

// Shards returns the registry's shard count.
func (r *Registry) Shards() int { return r.nshards }

func (r *Registry) lookup(name string, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	r.byName[name] = m
	r.ordered = append(r.ordered, name)
	sort.Strings(r.ordered)
	return m
}

// Find returns the metric registered under name (a *Counter, *FloatCounter,
// *Gauge or *Histogram), or nil when nothing is registered yet. It never
// creates — consumers that observe metrics owned by other subsystems (the
// flight watchdog) use it to resolve handles lazily without fixing a
// registration order.
func (r *Registry) Find(name string) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, func() interface{} {
		return &Counter{name: name, help: help, shards: make([]shard, r.nshards)}
	})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	m := r.lookup(name, func() interface{} {
		return &FloatCounter{name: name, help: help, shards: make([]shard, r.nshards)}
	})
	c, ok := m.(*FloatCounter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, func() interface{} {
		return &Gauge{name: name, help: help}
	})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bucket edges on first use (later calls reuse the first bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookup(name, func() interface{} {
		if len(bounds) == 0 {
			panic("telemetry: histogram needs at least one bucket bound")
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h := &Histogram{name: name, help: help, bounds: b, nshards: r.nshards}
		h.counts = make([]shard, r.nshards*(len(b)+1))
		h.sum = FloatCounter{name: name + "_sum", shards: make([]shard, r.nshards)}
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// Sample is one rendered metric value, the unit consumed by summary tables
// (cmd/ugache-bench -telemetry) and tests.
type Sample struct {
	Name  string
	Value float64
}

// Samples renders every metric to flat name/value pairs, in name order.
// Histograms contribute _count, _sum and p50/p90/p99 quantile samples.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	byName := make(map[string]interface{}, len(r.byName))
	for k, v := range r.byName {
		byName[k] = v
	}
	r.mu.Unlock()

	var out []Sample
	for _, name := range names {
		switch m := byName[name].(type) {
		case *Counter:
			out = append(out, Sample{name, float64(m.Value())})
		case *FloatCounter:
			out = append(out, Sample{name, m.Value()})
		case *Gauge:
			out = append(out, Sample{name, m.Value()})
		case *Histogram:
			out = append(out,
				Sample{name + "_count", float64(m.Count())},
				Sample{name + "_sum", m.Sum()},
				Sample{name + "_p50", m.Quantile(0.50)},
				Sample{name + "_p90", m.Quantile(0.90)},
				Sample{name + "_p99", m.Quantile(0.99)},
			)
		}
	}
	return out
}

// WriteMetrics renders the registry in the plain-text exposition format
// (Prometheus-compatible: HELP/TYPE comments, cumulative histogram buckets
// with an le label, and quantile lines for human consumption).
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	byName := make(map[string]interface{}, len(r.byName))
	for k, v := range r.byName {
		byName[k] = v
	}
	r.mu.Unlock()

	for _, name := range names {
		var err error
		switch m := byName[name].(type) {
		case *Counter:
			err = writeScalar(w, name, m.help, "counter", float64(m.Value()))
		case *FloatCounter:
			err = writeScalar(w, name, m.help, "counter", m.Value())
		case *Gauge:
			err = writeScalar(w, name, m.help, "gauge", m.Value())
		case *Histogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes a HELP string per the plain-text exposition format:
// backslashes as \\ and newlines as \n (a literal newline would terminate
// the comment mid-string and corrupt the scrape).
func escapeHelp(help string) string {
	if !strings.ContainsAny(help, "\\\n") {
		return help
	}
	var b strings.Builder
	b.Grow(len(help) + 4)
	for _, r := range help {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func writeScalar(w io.Writer, name, help, kind string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, escapeHelp(help), name, kind, name, fmtValue(v))
	return err
}

func writeHistogram(w io.Writer, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, escapeHelp(h.help), h.name); err != nil {
		return err
	}
	counts := h.merged()
	var cum uint64
	for b, c := range counts {
		cum += c
		le := "+Inf"
		if b < len(h.bounds) {
			le = fmtValue(h.bounds[b])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.name, fmtValue(h.Sum()), h.name, cum); err != nil {
		return err
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", h.name, fmtValue(q), fmtValue(h.Quantile(q))); err != nil {
			return err
		}
	}
	return nil
}

func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
