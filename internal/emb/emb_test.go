package emb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestProceduralDeterminism(t *testing.T) {
	a, err := New("a", 100, 8, Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New("b", 100, 8, Float32, 7)
	r1 := make([]byte, a.EntryBytes())
	r2 := make([]byte, b.EntryBytes())
	for k := int64(0); k < 100; k += 13 {
		if err := a.ReadRow(k, r1); err != nil {
			t.Fatal(err)
		}
		if err := b.ReadRow(k, r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1, r2) {
			t.Fatalf("row %d differs across same-seed tables", k)
		}
	}
	c, _ := New("c", 100, 8, Float32, 8)
	c.ReadRow(0, r2)
	a.ReadRow(0, r1)
	if bytes.Equal(r1, r2) {
		t.Fatal("different seeds produced identical rows")
	}
}

func TestMaterializedMatchesProcedural(t *testing.T) {
	p, _ := New("p", 64, 16, Float32, 3)
	m, err := NewMaterialized("p", 64, 16, Float32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Materialized() || p.Materialized() {
		t.Fatal("Materialized flags wrong")
	}
	bp := make([]byte, p.EntryBytes())
	bm := make([]byte, m.EntryBytes())
	for k := int64(0); k < 64; k++ {
		p.ReadRow(k, bp)
		m.ReadRow(k, bm)
		if !bytes.Equal(bp, bm) {
			t.Fatalf("row %d differs", k)
		}
	}
}

func TestRowValuesInRange(t *testing.T) {
	tb, _ := New("t", 1000, 32, Float32, 11)
	for k := int64(0); k < 1000; k += 97 {
		vals, err := tb.RowFloats(k)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v < -1 || v >= 1 || math.IsNaN(float64(v)) {
				t.Fatalf("row %d col %d out of range: %v", k, i, v)
			}
		}
	}
}

func TestFloat16Table(t *testing.T) {
	tb, _ := New("half", 10, 4, Float16, 1)
	if tb.EntryBytes() != 8 {
		t.Fatalf("EntryBytes = %d", tb.EntryBytes())
	}
	vals, err := tb.RowFloats(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < -1 || v > 1 {
			t.Fatalf("fp16 value out of range: %v", v)
		}
	}
}

func TestReadRowErrors(t *testing.T) {
	tb, _ := New("t", 10, 4, Float32, 1)
	buf := make([]byte, tb.EntryBytes())
	if err := tb.ReadRow(-1, buf); err == nil {
		t.Fatal("negative key accepted")
	}
	if err := tb.ReadRow(10, buf); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if err := tb.ReadRow(0, buf[:1]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, 4, Float32, 1); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := New("x", 4, 0, Float32, 1); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewMaterialized("x", 1<<40, 128, Float32, 1); err == nil {
		t.Fatal("huge materialized table accepted")
	}
}

func TestFloat16RoundTrip(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, -0.25, 0.999, 1.0 / 3.0, 65504}
	for _, f := range cases {
		got := Float16ToFloat32(Float32ToFloat16(f))
		rel := math.Abs(float64(got-f)) / math.Max(1e-6, math.Abs(float64(f)))
		if rel > 1e-3 {
			t.Errorf("roundtrip %v -> %v (rel err %g)", f, got, rel)
		}
	}
	// Specials.
	if v := Float16ToFloat32(Float32ToFloat16(float32(math.Inf(1)))); !math.IsInf(float64(v), 1) {
		t.Error("+Inf roundtrip")
	}
	if v := Float16ToFloat32(Float32ToFloat16(float32(math.NaN()))); !math.IsNaN(float64(v)) {
		t.Error("NaN roundtrip")
	}
	// Overflow saturates to Inf.
	if v := Float16ToFloat32(Float32ToFloat16(1e10)); !math.IsInf(float64(v), 1) {
		t.Error("overflow should map to Inf")
	}
}

func TestFloat16RoundTripProperty(t *testing.T) {
	f := func(u uint16) bool {
		v := Float16ToFloat32(u)
		if math.IsNaN(float64(v)) {
			return true // NaN payloads need not roundtrip exactly
		}
		return Float32ToFloat16(v) == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTable(t *testing.T) {
	t1, _ := New("t1", 10, 4, Float32, 1)
	t2, _ := New("t2", 20, 8, Float32, 2)
	t3, _ := New("t3", 5, 4, Float32, 3)
	m, err := NewMultiTable([]*Table{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEntries() != 35 {
		t.Fatalf("NumEntries = %d", m.NumEntries())
	}
	if m.Offset(1) != 10 || m.Offset(2) != 30 {
		t.Fatal("offsets wrong")
	}
	for _, tc := range []struct {
		key   int64
		table int
		local int64
	}{{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {29, 1, 19}, {30, 2, 0}, {34, 2, 4}} {
		tab, local, err := m.Locate(tc.key)
		if err != nil {
			t.Fatal(err)
		}
		if tab != tc.table || local != tc.local {
			t.Fatalf("Locate(%d) = (%d, %d), want (%d, %d)", tc.key, tab, local, tc.table, tc.local)
		}
	}
	if _, _, err := m.Locate(35); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, _, err := m.Locate(-1); err == nil {
		t.Fatal("negative accepted")
	}
	if m.MaxEntryBytes() != 32 {
		t.Fatalf("MaxEntryBytes = %d", m.MaxEntryBytes())
	}
	if m.TotalBytes() != 10*16+20*32+5*16 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	// Row read through the flattened view matches the direct read.
	direct := make([]byte, t2.EntryBytes())
	via := make([]byte, t2.EntryBytes())
	t2.ReadRow(7, direct)
	if err := m.ReadRow(17, via); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, via) {
		t.Fatal("flattened read differs from direct read")
	}
	if eb, _ := m.EntryBytes(17); eb != 32 {
		t.Fatalf("EntryBytes(17) = %d", eb)
	}
}

func TestMultiTableValidation(t *testing.T) {
	if _, err := NewMultiTable(nil); err == nil {
		t.Fatal("empty accepted")
	}
	t1, _ := New("t1", 10, 4, Float32, 1)
	t2, _ := New("t2", 10, 4, Float16, 1)
	if _, err := NewMultiTable([]*Table{t1, t2}); err == nil {
		t.Fatal("mixed dtypes accepted")
	}
}
