// Package emb implements embedding tables: the N×D matrices that map sparse
// keys to dense vectors (paper §2, Figure 1). Tables live in (simulated)
// host memory; the cache system copies rows into simulated GPU memory.
//
// Two storage modes are supported. Materialized tables hold real bytes and
// are used by functional tests and examples, where extracted vectors are
// checked against table rows. Procedural tables generate rows
// deterministically from (seed, key) on demand, so the large scaled datasets
// (hundreds of millions of virtual entries) never need backing storage; the
// timing pipeline only needs entry *sizes*, and any row that is read decodes
// to the same values every time.
package emb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType is the element type of an embedding table.
type DType int

const (
	// Float32 entries, 4 bytes per element (PA, CF, CR datasets).
	Float32 DType = iota
	// Float16 entries, 2 bytes per element (the MAG dataset ships float16).
	Float16
)

// Size returns bytes per element.
func (d DType) Size() int {
	if d == Float16 {
		return 2
	}
	return 4
}

func (d DType) String() string {
	if d == Float16 {
		return "float16"
	}
	return "float32"
}

// Table is one embedding table.
type Table struct {
	Name       string
	NumEntries int64
	Dim        int
	DType      DType
	seed       uint64
	data       []byte // nil for procedural tables
}

// New creates a procedural table: rows are generated deterministically from
// the seed and key, with no backing storage.
func New(name string, n int64, dim int, dtype DType, seed uint64) (*Table, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("emb: table %q needs positive shape, got %d×%d", name, n, dim)
	}
	return &Table{Name: name, NumEntries: n, Dim: dim, DType: dtype, seed: seed}, nil
}

// NewMaterialized creates a table with real backing bytes, filled with the
// same deterministic values a procedural table would generate.
func NewMaterialized(name string, n int64, dim int, dtype DType, seed uint64) (*Table, error) {
	t, err := New(name, n, dim, dtype, seed)
	if err != nil {
		return nil, err
	}
	total := n * int64(t.EntryBytes())
	if total > 1<<31 {
		return nil, fmt.Errorf("emb: materialized table %q would need %d bytes; use a procedural table", name, total)
	}
	t.data = make([]byte, total)
	buf := make([]byte, t.EntryBytes())
	for k := int64(0); k < n; k++ {
		t.generate(k, buf)
		copy(t.data[k*int64(t.EntryBytes()):], buf)
	}
	return t, nil
}

// Materialized reports whether the table holds real bytes.
func (t *Table) Materialized() bool { return t.data != nil }

// EntryBytes returns the byte size of one row.
func (t *Table) EntryBytes() int { return t.Dim * t.DType.Size() }

// TotalBytes returns the full (virtual) size of the table.
func (t *Table) TotalBytes() int64 { return t.NumEntries * int64(t.EntryBytes()) }

// ReadRow copies row key into dst, which must be at least EntryBytes long.
func (t *Table) ReadRow(key int64, dst []byte) error {
	if key < 0 || key >= t.NumEntries {
		return fmt.Errorf("emb: key %d out of range [0, %d)", key, t.NumEntries)
	}
	if len(dst) < t.EntryBytes() {
		return fmt.Errorf("emb: dst too small: %d < %d", len(dst), t.EntryBytes())
	}
	if t.data != nil {
		copy(dst, t.data[key*int64(t.EntryBytes()):(key+1)*int64(t.EntryBytes())])
		return nil
	}
	t.generate(key, dst)
	return nil
}

// RowFloats decodes row key into float32 values (converting from float16 if
// needed); it allocates.
func (t *Table) RowFloats(key int64) ([]float32, error) {
	buf := make([]byte, t.EntryBytes())
	if err := t.ReadRow(key, buf); err != nil {
		return nil, err
	}
	out := make([]float32, t.Dim)
	DecodeFloats(buf, t.DType, out)
	return out, nil
}

// generate fills dst with the deterministic row for key. Values are small
// floats in [-1, 1), a realistic range for trained embeddings.
func (t *Table) generate(key int64, dst []byte) {
	es := t.DType.Size()
	for c := 0; c < t.Dim; c++ {
		h := mix(t.seed, uint64(key), uint64(c))
		// Map 23 bits of hash to [-1, 1).
		v := float32(int32(h&0x7fffff)-0x400000) / float32(0x400000)
		switch t.DType {
		case Float16:
			binary.LittleEndian.PutUint16(dst[c*es:], Float32ToFloat16(v))
		default:
			binary.LittleEndian.PutUint32(dst[c*es:], math.Float32bits(v))
		}
	}
}

func mix(a, b, c uint64) uint64 {
	x := a ^ (b * 0x9e3779b97f4a7c15) ^ (c * 0xc2b2ae3d27d4eb4f)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// DecodeFloats decodes raw row bytes of the given dtype into out.
func DecodeFloats(raw []byte, dtype DType, out []float32) {
	es := dtype.Size()
	for i := range out {
		switch dtype {
		case Float16:
			out[i] = Float16ToFloat32(binary.LittleEndian.Uint16(raw[i*es:]))
		default:
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*es:]))
		}
	}
}

// Float32ToFloat16 converts to IEEE 754 half precision (round-to-nearest-
// even), sufficient for embedding values; NaN maps to a quiet NaN.
func Float32ToFloat16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23)&0xff - 127 + 15
	mant := b & 0x7fffff
	switch {
	case int32(b>>23)&0xff == 0xff: // Inf/NaN
		if mant != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp >= 0x1f: // overflow -> Inf
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		return sign | uint16((mant+half)>>shift)
	default:
		// Round to nearest even on the 13 truncated bits.
		rounded := mant + 0xfff + ((mant >> 13) & 1)
		if rounded&0x800000 == 0 {
			return sign | uint16(exp)<<10 | uint16(rounded>>13)
		}
		// Mantissa overflowed into the exponent.
		exp++
		if exp >= 0x1f {
			return sign | 0x7c00
		}
		return sign | uint16(exp)<<10
	}
}

// Float16ToFloat32 converts from IEEE 754 half precision.
func Float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
