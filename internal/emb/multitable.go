package emb

import "fmt"

// MultiTable flattens several embedding tables into one global key space,
// the way DLR inference servers address dozens or hundreds of tables behind
// one cache (paper §8.1: Criteo-TB has 26 tables, SYN-A/B have 100). Global
// key k belongs to table t iff Offset(t) <= k < Offset(t+1).
type MultiTable struct {
	Tables  []*Table
	offsets []int64 // len(Tables)+1, prefix sums of NumEntries
}

// NewMultiTable builds the flattened view. All tables must share a dtype
// (they may differ in dim).
func NewMultiTable(tables []*Table) (*MultiTable, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("emb: MultiTable needs at least one table")
	}
	m := &MultiTable{Tables: tables, offsets: make([]int64, len(tables)+1)}
	for i, t := range tables {
		if t.DType != tables[0].DType {
			return nil, fmt.Errorf("emb: table %q dtype %v differs from %v", t.Name, t.DType, tables[0].DType)
		}
		m.offsets[i+1] = m.offsets[i] + t.NumEntries
	}
	return m, nil
}

// NumEntries returns the total flattened entry count.
func (m *MultiTable) NumEntries() int64 { return m.offsets[len(m.Tables)] }

// Offset returns the starting global key of table t.
func (m *MultiTable) Offset(t int) int64 { return m.offsets[t] }

// Locate maps a global key to (table index, local key).
func (m *MultiTable) Locate(key int64) (table int, local int64, err error) {
	if key < 0 || key >= m.NumEntries() {
		return 0, 0, fmt.Errorf("emb: global key %d out of range [0, %d)", key, m.NumEntries())
	}
	// Binary search over prefix sums.
	lo, hi := 0, len(m.Tables)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.offsets[mid] <= key {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, key - m.offsets[lo], nil
}

// EntryBytes returns the row size for a global key's table.
func (m *MultiTable) EntryBytes(key int64) (int, error) {
	t, _, err := m.Locate(key)
	if err != nil {
		return 0, err
	}
	return m.Tables[t].EntryBytes(), nil
}

// MaxEntryBytes returns the largest row size across tables; caches size
// their slots by this.
func (m *MultiTable) MaxEntryBytes() int {
	max := 0
	for _, t := range m.Tables {
		if eb := t.EntryBytes(); eb > max {
			max = eb
		}
	}
	return max
}

// ReadRow copies the row for a global key into dst.
func (m *MultiTable) ReadRow(key int64, dst []byte) error {
	t, local, err := m.Locate(key)
	if err != nil {
		return err
	}
	return m.Tables[t].ReadRow(local, dst)
}

// TotalBytes returns the combined virtual size of all tables.
func (m *MultiTable) TotalBytes() int64 {
	var total int64
	for _, t := range m.Tables {
		total += t.TotalBytes()
	}
	return total
}
