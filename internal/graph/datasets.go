package graph

import (
	"fmt"

	"ugache/internal/emb"
	"ugache/internal/rng"
)

// DatasetSpec describes a scaled stand-in for one of the paper's GNN
// datasets (Table 3). Node counts are scaled down from the originals
// (111M/65.6M/232M) by Scale while preserving embedding dimension, dtype,
// degree shape, and the train-set fraction, so cache *ratios* and access
// *skew* — the quantities every figure sweeps — are comparable.
type DatasetSpec struct {
	Name      string
	BaseNodes int     // nodes at Scale = 1
	AvgDeg    float64 // average out-degree
	Gamma     float64 // power-law degree exponent
	Dim       int
	DType     emb.DType
	TrainFrac float64
}

// The paper's three GNN datasets (Table 3). BaseNodes are 1/100 of the real
// vertex counts: large enough to show the long-tail effects, small enough
// to regenerate in seconds.
var (
	// PA stands in for OGB-Papers100M: highly skewed citation network.
	PA = DatasetSpec{Name: "PA", BaseNodes: 1_110_000, AvgDeg: 12, Gamma: 2.2,
		Dim: 128, DType: emb.Float32, TrainFrac: 0.011}
	// CF stands in for Com-Friendster: social network, lower skew.
	CF = DatasetSpec{Name: "CF", BaseNodes: 656_000, AvgDeg: 16, Gamma: 2.9,
		Dim: 256, DType: emb.Float32, TrainFrac: 0.01}
	// MAG stands in for MAG240M: the largest table, float16 embeddings.
	MAG = DatasetSpec{Name: "MAG", BaseNodes: 2_320_000, AvgDeg: 6, Gamma: 2.4,
		Dim: 768, DType: emb.Float16, TrainFrac: 0.005}
)

// GNNDatasets lists the stock specs in the paper's presentation order.
var GNNDatasets = []DatasetSpec{PA, CF, MAG}

// Dataset is a generated graph plus its embedding table and train split.
type Dataset struct {
	Spec  DatasetSpec
	G     *CSR
	Table *emb.Table
	Train []int32
}

// Build generates the dataset at the given scale (nodes = BaseNodes*scale,
// minimum 1000). Generation is deterministic in (spec, scale, seed).
func (s DatasetSpec) Build(scale float64, seed uint64) (*Dataset, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("graph: scale must be positive, got %g", scale)
	}
	n := int(float64(s.BaseNodes) * scale)
	if n < 1000 {
		n = 1000
	}
	r := rng.New(seed).Split("dataset-" + s.Name)
	g, err := GenPowerLaw(n, s.AvgDeg, s.Gamma, r.Split("graph"))
	if err != nil {
		return nil, err
	}
	table, err := emb.New(s.Name, int64(n), s.Dim, s.DType, seed^0x5eed)
	if err != nil {
		return nil, err
	}
	train := TrainSet(n, s.TrainFrac, r.Split("train"))
	return &Dataset{Spec: s, G: g, Table: table, Train: train}, nil
}

// VolumeE returns the embedding data volume in bytes (Table 3's VolumeE).
func (d *Dataset) VolumeE() int64 { return d.Table.TotalBytes() }

// VolumeG returns the topological data volume in bytes (Table 3's VolumeG):
// CSR indptr + indices.
func (d *Dataset) VolumeG() int64 {
	return int64(len(d.G.IndPtr))*8 + int64(len(d.G.Indices))*4
}
