package graph

import (
	"math"
	"sort"
	"testing"

	"ugache/internal/rng"
)

func testGraph(t *testing.T, n int, avg, gamma float64) *CSR {
	t.Helper()
	g, err := GenPowerLaw(n, avg, gamma, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenPowerLawBasics(t *testing.T) {
	const n = 20000
	g := testGraph(t, n, 10, 2.3)
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	avg := float64(g.NumEdges()) / float64(n)
	if avg < 7 || avg > 14 {
		t.Fatalf("avg degree %g, want ~10", avg)
	}
}

func TestGenPowerLawSkew(t *testing.T) {
	// Degree must be heavily skewed: the top 1% of nodes should hold a
	// disproportionate share of edges, and in-degree (target popularity)
	// must concentrate on low IDs.
	const n = 50000
	g := testGraph(t, n, 10, 2.2)
	topOut := int64(0)
	for v := 0; v < n/100; v++ {
		topOut += int64(g.Degree(int32(v)))
	}
	if frac := float64(topOut) / float64(g.NumEdges()); frac < 0.10 {
		t.Fatalf("top-1%% out-degree share %g, want >= 0.10", frac)
	}
	indeg := make([]int64, n)
	for _, tgt := range g.Indices {
		indeg[tgt]++
	}
	topIn := int64(0)
	for v := 0; v < n/100; v++ {
		topIn += indeg[v]
	}
	if frac := float64(topIn) / float64(g.NumEdges()); frac < 0.15 {
		t.Fatalf("top-1%% in-degree share %g, want >= 0.15", frac)
	}
}

func TestGenPowerLawDeterminism(t *testing.T) {
	a, _ := GenPowerLaw(5000, 8, 2.5, rng.New(7))
	b, _ := GenPowerLaw(5000, 8, 2.5, rng.New(7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestGenPowerLawValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := GenPowerLaw(0, 10, 2.5, r); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GenPowerLaw(10, 0, 2.5, r); err == nil {
		t.Fatal("avgDeg=0 accepted")
	}
	if _, err := GenPowerLaw(10, 5, 2.0, r); err == nil {
		t.Fatal("gamma=2 accepted")
	}
}

func TestNoSelfLoops(t *testing.T) {
	g := testGraph(t, 3000, 6, 2.4)
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		for _, tgt := range g.Neighbors(v) {
			if tgt == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestTrainSet(t *testing.T) {
	r := rng.New(3)
	train := TrainSet(10000, 0.01, r)
	if len(train) != 100 {
		t.Fatalf("train size %d", len(train))
	}
	seen := map[int32]bool{}
	for _, v := range train {
		if v < 0 || v >= 10000 {
			t.Fatalf("train node %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate train node %d", v)
		}
		seen[v] = true
	}
	// Bad fraction falls back to 1%.
	if got := TrainSet(1000, -1, rng.New(4)); len(got) != 10 {
		t.Fatalf("fallback train size %d", len(got))
	}
	// Train nodes should be spread over the ID range, not clustered.
	sorted := make([]int32, len(train))
	copy(sorted, train)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if sorted[0] > 2000 || sorted[len(sorted)-1] < 8000 {
		t.Fatalf("train set not spread: [%d, %d]", sorted[0], sorted[len(sorted)-1])
	}
}

func TestSamplerUniqueAndSeedsIncluded(t *testing.T) {
	g := testGraph(t, 10000, 10, 2.3)
	s, err := NewSampler(g, []int{5, 3}, 0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{1, 2, 3, 4, 5, 1} // duplicate seed on purpose
	out := s.SampleBatch(seeds)
	seen := map[int32]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate node %d in batch", v)
		}
		seen[v] = true
	}
	for _, v := range seeds {
		if !seen[v] {
			t.Fatalf("seed %d missing from batch", v)
		}
	}
	// 2-hop with fanouts 5,3: per seed at most 1 + 5 + 15 nodes.
	if len(out) > 5*21 {
		t.Fatalf("batch too large: %d", len(out))
	}
	if len(out) <= len(seeds) {
		t.Fatal("sampler expanded nothing")
	}
}

func TestSamplerSkewedAccess(t *testing.T) {
	// Sampled batches must access low-ID (high in-degree) nodes far more
	// often — the skew that motivates caching (paper §2).
	const n = 20000
	g := testGraph(t, n, 12, 2.2)
	r := rng.New(5)
	s, _ := NewSampler(g, []int{10, 5}, 0, r.Split("sampler"))
	counts := make([]int64, n)
	tr := TrainSet(n, 0.05, r.Split("train"))
	for _, batch := range EpochBatches(tr, 100, r.Split("epoch")) {
		for _, v := range s.SampleBatch(batch) {
			counts[v]++
		}
	}
	var top, total int64
	for v := 0; v < n; v++ {
		if v < n/10 {
			top += counts[v]
		}
		total += counts[v]
	}
	if frac := float64(top) / float64(total); frac < 0.4 {
		t.Fatalf("top-10%% access share %g, want >= 0.4", frac)
	}
}

func TestSamplerNegativeReducesSkew(t *testing.T) {
	const n = 20000
	g := testGraph(t, n, 12, 2.2)
	measure := func(neg int) float64 {
		r := rng.New(5)
		s, _ := NewSampler(g, []int{10, 5}, neg, r.Split("sampler"))
		counts := make([]int64, n)
		tr := TrainSet(n, 0.05, r.Split("train"))
		for _, batch := range EpochBatches(tr, 100, r.Split("epoch")) {
			for _, v := range s.SampleBatch(batch) {
				counts[v]++
			}
		}
		var top, total int64
		for v := 0; v < n; v++ {
			if v < n/10 {
				top += counts[v]
			}
			total += counts[v]
		}
		return float64(top) / float64(total)
	}
	sup, unsup := measure(0), measure(3)
	if unsup >= sup {
		t.Fatalf("negative sampling should reduce skew: sup %g, unsup %g", sup, unsup)
	}
}

func TestSamplerValidation(t *testing.T) {
	g := testGraph(t, 100, 4, 2.5)
	r := rng.New(1)
	if _, err := NewSampler(nil, []int{2}, 0, r); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewSampler(g, nil, 0, r); err == nil {
		t.Fatal("no fanouts accepted")
	}
	if _, err := NewSampler(g, []int{0}, 0, r); err == nil {
		t.Fatal("zero fanout accepted")
	}
	if _, err := NewSampler(g, []int{2}, -1, r); err == nil {
		t.Fatal("negative negatives accepted")
	}
}

func TestEpochBatches(t *testing.T) {
	train := make([]int32, 105)
	for i := range train {
		train[i] = int32(i)
	}
	batches := EpochBatches(train, 25, rng.New(2))
	if len(batches) != 5 {
		t.Fatalf("batches %d", len(batches))
	}
	total := 0
	seen := map[int32]bool{}
	for _, b := range batches {
		total += len(b)
		for _, v := range b {
			seen[v] = true
		}
	}
	if total != 105 || len(seen) != 105 {
		t.Fatalf("coverage %d/%d", total, len(seen))
	}
	if len(batches[4]) != 5 {
		t.Fatalf("last batch %d", len(batches[4]))
	}
}

func TestDatasetBuild(t *testing.T) {
	d, err := PA.Build(0.01, 42) // ~11k nodes
	if err != nil {
		t.Fatal(err)
	}
	if err := d.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.G.NumNodes() < 10000 {
		t.Fatalf("nodes %d", d.G.NumNodes())
	}
	if d.Table.Dim != 128 {
		t.Fatalf("dim %d", d.Table.Dim)
	}
	if int(d.Table.NumEntries) != d.G.NumNodes() {
		t.Fatal("table size mismatch")
	}
	wantTrain := int(float64(d.G.NumNodes()) * PA.TrainFrac)
	if math.Abs(float64(len(d.Train)-wantTrain)) > 1 {
		t.Fatalf("train size %d, want ~%d", len(d.Train), wantTrain)
	}
	if d.VolumeE() <= 0 || d.VolumeG() <= 0 {
		t.Fatal("volumes must be positive")
	}
	if _, err := PA.Build(-1, 42); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestDatasetSpecsDistinct(t *testing.T) {
	// MAG is float16 (Table 3 note) and the largest.
	if MAG.DType != PA.DType && MAG.Dim == 768 {
		// expected
	} else {
		t.Fatal("MAG spec wrong")
	}
	if len(GNNDatasets) != 3 {
		t.Fatal("dataset registry size")
	}
}

func BenchmarkGenPowerLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenPowerLaw(100000, 12, 2.2, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleBatch(b *testing.B) {
	g, err := GenPowerLaw(100000, 12, 2.2, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, _ := NewSampler(g, []int{25, 10}, 0, rng.New(2))
	seeds := make([]int32, 2048)
	for i := range seeds {
		seeds[i] = int32(i * 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleBatch(seeds)
	}
}
