package graph

import (
	"fmt"

	"ugache/internal/rng"
)

// Sampler draws the k-hop neighbourhood batches whose union of node IDs
// forms the embedding keys a GNN iteration extracts (paper §2: "the
// embedding of k-hop neighbors of each input node is also required").
type Sampler struct {
	G       *CSR
	Fanouts []int // neighbours sampled per hop, e.g. {25, 10} for GraphSAGE
	// Negative, if > 0, adds that many uniformly random nodes per seed node
	// — the negative sampling of unsupervised training, which the paper
	// notes reduces access skewness (§8.2).
	Negative int

	// LastHopCounts reports, after each SampleBatch, the number of unique
	// nodes first reached at each hop: index 0 is the seeds, index k the
	// k-th expansion (plus a final entry for negatives when enabled). The
	// dense-layer cost model prices per-hop frontiers with it.
	LastHopCounts []int
	// LastEdgesTouched reports the adjacency entries examined by the last
	// SampleBatch; the sampling-time model prices it.
	LastEdgesTouched int64

	r       *rng.Rand
	mark    []int32 // visited-batch marker per node
	markGen int32
}

// NewSampler creates a sampler. Standard configurations per the paper
// (§8.1): GraphSAGE supervised = 2-hop {25, 10}; GCN = 3-hop {15, 10, 5};
// GraphSAGE unsupervised adds negative sampling.
func NewSampler(g *CSR, fanouts []int, negative int, r *rng.Rand) (*Sampler, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("graph: sampler needs a non-empty graph")
	}
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("graph: sampler needs at least one hop")
	}
	for _, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("graph: fanouts must be positive, got %v", fanouts)
		}
	}
	if negative < 0 {
		return nil, fmt.Errorf("graph: negative count must be >= 0")
	}
	return &Sampler{
		G: g, Fanouts: fanouts, Negative: negative,
		r: r, mark: make([]int32, g.NumNodes()), markGen: 0,
	}, nil
}

// SampleBatch expands the seed nodes hop by hop and returns the unique node
// IDs touched (seeds, sampled neighbours, and negatives). The returned
// slice is reused across calls; callers must not retain it.
func (s *Sampler) SampleBatch(seeds []int32) []int32 {
	s.markGen++
	s.LastHopCounts = s.LastHopCounts[:0]
	s.LastEdgesTouched = 0
	out := make([]int32, 0, len(seeds)*4)
	frontier := make([]int32, 0, len(seeds))
	visit := func(v int32) bool {
		if s.mark[v] == s.markGen {
			return false
		}
		s.mark[v] = s.markGen
		out = append(out, v)
		return true
	}
	for _, v := range seeds {
		if visit(v) {
			frontier = append(frontier, v)
		}
	}
	s.LastHopCounts = append(s.LastHopCounts, len(frontier))
	for _, fanout := range s.Fanouts {
		next := make([]int32, 0, len(frontier)*min(fanout, 8))
		for _, v := range frontier {
			adj := s.G.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			if len(adj) <= fanout {
				// Take all neighbours (sampling without replacement would
				// return all of them anyway).
				s.LastEdgesTouched += int64(len(adj))
				for _, t := range adj {
					if visit(t) {
						next = append(next, t)
					}
				}
				continue
			}
			s.LastEdgesTouched += int64(fanout)
			for k := 0; k < fanout; k++ {
				t := adj[s.r.Intn(len(adj))]
				if visit(t) {
					next = append(next, t)
				}
			}
		}
		frontier = next
		s.LastHopCounts = append(s.LastHopCounts, len(frontier))
	}
	if s.Negative > 0 {
		n := s.G.NumNodes()
		negs := 0
		for range seeds {
			for k := 0; k < s.Negative; k++ {
				t := int32(s.r.Intn(n))
				if visit(t) {
					negs++
				}
			}
		}
		s.LastHopCounts = append(s.LastHopCounts, negs)
	}
	return out
}

// EpochBatches splits a training set into per-iteration seed batches for
// one epoch, shuffling deterministically.
func EpochBatches(train []int32, batchSize int, r *rng.Rand) [][]int32 {
	if batchSize <= 0 {
		batchSize = len(train)
	}
	shuffled := make([]int32, len(train))
	copy(shuffled, train)
	r.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var batches [][]int32
	for off := 0; off < len(shuffled); off += batchSize {
		end := off + batchSize
		if end > len(shuffled) {
			end = len(shuffled)
		}
		batches = append(batches, shuffled[off:end])
	}
	return batches
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
