// Package graph provides the graph substrate for the GNN side of the
// evaluation: CSR storage, a power-law random graph generator standing in
// for the paper's datasets (OGB-Papers100M, Com-Friendster, MAG240M), and
// the k-hop neighbourhood samplers (GraphSAGE 2-hop, GCN 3-hop, and
// unsupervised GraphSAGE with negative sampling) whose skewed access
// patterns drive the embedding cache (paper §2, §8.1).
package graph

import (
	"fmt"
	"math"

	"ugache/internal/rng"
)

// CSR is a directed graph in compressed sparse row form. Node IDs are dense
// [0, N).
type CSR struct {
	IndPtr  []int64 // len N+1
	Indices []int32 // len E
}

// NumNodes returns the node count.
func (g *CSR) NumNodes() int { return len(g.IndPtr) - 1 }

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int64 { return g.IndPtr[len(g.IndPtr)-1] }

// Degree returns node v's out-degree.
func (g *CSR) Degree(v int32) int {
	return int(g.IndPtr[v+1] - g.IndPtr[v])
}

// Neighbors returns node v's adjacency slice (shared storage; do not
// modify).
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Indices[g.IndPtr[v]:g.IndPtr[v+1]]
}

// Validate checks structural invariants; tests call it after generation.
func (g *CSR) Validate() error {
	if len(g.IndPtr) < 1 {
		return fmt.Errorf("graph: empty IndPtr")
	}
	if g.IndPtr[0] != 0 {
		return fmt.Errorf("graph: IndPtr[0] = %d", g.IndPtr[0])
	}
	n := int32(g.NumNodes())
	for v := 0; v < int(n); v++ {
		if g.IndPtr[v+1] < g.IndPtr[v] {
			return fmt.Errorf("graph: IndPtr decreases at %d", v)
		}
	}
	if g.IndPtr[n] != int64(len(g.Indices)) {
		return fmt.Errorf("graph: IndPtr tail %d != len(Indices) %d", g.IndPtr[n], len(g.Indices))
	}
	for i, t := range g.Indices {
		if t < 0 || t >= n {
			return fmt.Errorf("graph: edge %d targets %d outside [0, %d)", i, t, n)
		}
	}
	return nil
}

// GenPowerLaw generates a Chung–Lu style power-law graph: node v's expected
// degree follows w_v ∝ (v+1)^{-1/(γ-1)} (a power law with exponent γ in the
// degree distribution), and each of the round(w_v) out-edges of v targets a
// node drawn proportionally to the target's weight. Low node IDs are the
// high-degree "celebrities", mirroring how OGB datasets correlate ID with
// degree after sorting; the samplers do not exploit IDs.
//
// avgDeg is the desired mean out-degree; gamma is the degree-distribution
// exponent (2 < gamma <= 3.5 covers real social/citation graphs).
func GenPowerLaw(n int, avgDeg float64, gamma float64, r *rng.Rand) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need positive node count, got %d", n)
	}
	if avgDeg <= 0 || gamma <= 2 {
		return nil, fmt.Errorf("graph: need avgDeg > 0 and gamma > 2, got %g, %g", avgDeg, gamma)
	}
	// Weights w_v = (v+1)^{-beta}, beta = 1/(gamma-1), scaled to the target
	// average degree.
	beta := 1 / (gamma - 1)
	weights := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		w := math.Pow(float64(v+1), -beta)
		weights[v] = w
		sum += w
	}
	scale := avgDeg * float64(n) / sum
	// Out-degrees: round(scale * w) with a floor of 1 edge so no node is an
	// isolated sink (real preprocessed OGB graphs are connected enough that
	// samplers never strand).
	indptr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		d := int64(scale*weights[v] + 0.5)
		if d < 1 {
			d = 1
		}
		if d > int64(n-1) {
			d = int64(n - 1)
		}
		indptr[v+1] = indptr[v] + d
	}
	e := indptr[n]
	indices := make([]int32, e)

	// Target sampling ∝ weight: inverse-CDF of the continuous power law is
	// closed-form, avoiding an O(n) alias table per graph.
	sampler := newPowerTargetSampler(n, beta)
	for v := 0; v < n; v++ {
		lo, hi := indptr[v], indptr[v+1]
		for i := lo; i < hi; i++ {
			t := sampler.sample(r)
			if t == int32(v) { // avoid self-loop cheaply
				t = int32((v + 1) % n)
			}
			indices[i] = t
		}
	}
	return &CSR{IndPtr: indptr, Indices: indices}, nil
}

// powerTargetSampler draws node IDs in [0, n) with probability ∝ (id+1)^-beta
// using analytic inversion of the continuous CDF — O(1) per draw.
type powerTargetSampler struct {
	n     int
	beta  float64
	norm  float64 // (n+1)^{1-beta} - 1
	exp   float64 // 1/(1-beta)
	isLog bool    // beta ~ 1: use the logarithmic form
}

func newPowerTargetSampler(n int, beta float64) *powerTargetSampler {
	s := &powerTargetSampler{n: n, beta: beta}
	if math.Abs(1-beta) < 1e-9 {
		s.isLog = true
		s.norm = math.Log(float64(n + 1))
		return s
	}
	s.norm = math.Pow(float64(n+1), 1-beta) - 1
	s.exp = 1 / (1 - beta)
	return s
}

func (s *powerTargetSampler) sample(r *rng.Rand) int32 {
	u := r.Float64()
	var x float64
	if s.isLog {
		x = math.Exp(u*s.norm) - 1
	} else {
		x = math.Pow(u*s.norm+1, s.exp) - 1
	}
	id := int32(x)
	if id < 0 {
		id = 0
	}
	if id >= int32(s.n) {
		id = int32(s.n - 1)
	}
	return id
}

// TrainSet returns a deterministic pseudo-random subset of nodes of the
// given fraction, the training vertices a GNN epoch iterates over (the
// paper randomly selects a small portion for CF; OGB ships ~1% train
// splits).
func TrainSet(n int, fraction float64, r *rng.Rand) []int32 {
	if fraction <= 0 || fraction > 1 {
		fraction = 0.01
	}
	k := int(float64(n) * fraction)
	if k < 1 {
		k = 1
	}
	// Partial Fisher–Yates over a virtual [0, n) using a map of displaced
	// slots keeps memory at O(k).
	displaced := make(map[int32]int32, k)
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		j := int32(i) + int32(r.Intn(n-i))
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[int32(i)]
		if !ok {
			vi = int32(i)
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}
