package app

import (
	"fmt"

	"ugache/internal/baselines"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/nn"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// DLRConfig describes one DLR inference run (paper §8.1): DLRM or DCN over
// a multi-table dataset, data-parallel across GPUs.
type DLRConfig struct {
	P  *platform.Platform
	DS *workload.DLRDataset
	// Model is "dlrm" or "dcn".
	Model string
	// BatchSize is per-GPU inference samples per iteration (default 8192).
	BatchSize int
	Spec      baselines.Spec
	// CacheRatio overrides the memory-derived capacity when > 0.
	CacheRatio float64
	Mem        MemoryModel
	// ProfileBatches warms hotness statistics (default 96; the paper warms
	// 1000 iterations — our generator is stationary so fewer suffice).
	ProfileBatches int
	// LocalityDispatch routes each inference sample to the GPU whose cache
	// covers most of its keys (the locality-aware dispatching of HET-GMP,
	// §3.1 [31]) instead of random data-parallel assignment. The paper
	// argues this helps partition caches but cannot overcome the long-tail
	// effect; the ablate-dispatch experiment measures exactly that.
	LocalityDispatch bool
	Seed             uint64
}

// DLRApp is a built DLR inference pipeline.
type DLRApp struct {
	Sys *core.System

	cfg     DLRConfig
	dlrm    *nn.DLRM
	dcn     *nn.DCN
	tm      nn.TimeModel
	scratch map[int64]struct{}
}

// NewDLR builds the pipeline.
func NewDLR(cfg DLRConfig) (*DLRApp, error) {
	if err := validateCommon(cfg.P, batchOr(cfg.BatchSize)); err != nil {
		return nil, err
	}
	if cfg.DS == nil {
		return nil, fmt.Errorf("app: dataset is required")
	}
	cfg.BatchSize = batchOr(cfg.BatchSize)
	if cfg.ProfileBatches <= 0 {
		cfg.ProfileBatches = 96
	}
	if cfg.Model != "dlrm" && cfg.Model != "dcn" {
		return nil, fmt.Errorf("app: unknown DLR model %q", cfg.Model)
	}
	n := cfg.DS.NumEntries()
	entryBytes := cfg.DS.MT.MaxEntryBytes()
	var capacity int64
	if cfg.CacheRatio > 0 {
		capacity = ratioEntries(cfg.CacheRatio, n)
	} else {
		capacity = cfg.Mem.CapacityEntries(cfg.P, entryBytes, 0)
	}
	if capacity > n {
		capacity = n
	}
	if err := cfg.Spec.Launchable(cfg.P, n, capacity); err != nil {
		return nil, err
	}

	// Warm-up profiling (the paper warms the first 1000 iterations).
	var rec [][]int64
	for i := 0; i < cfg.ProfileBatches; i++ {
		rec = append(rec, cfg.DS.GenBatch(cfg.BatchSize))
	}
	hot, err := workload.ProfileBatches(n, rec)
	if err != nil {
		return nil, err
	}

	sys, err := core.Build(core.Config{
		Platform:           cfg.P,
		Hotness:            hot,
		EntryBytes:         entryBytes,
		CacheEntriesPerGPU: maxI64(capacity, 1),
		Policy:             cfg.Spec.Policy,
		Mechanism:          cfg.Spec.Mechanism,
	})
	if err != nil {
		return nil, err
	}
	a := &DLRApp{Sys: sys, cfg: cfg, tm: nn.TimeModelFor(cfg.P.GPU), scratch: make(map[int64]struct{})}
	r := rng.New(cfg.Seed).Split("dlr-model")
	switch cfg.Model {
	case "dlrm":
		a.dlrm, err = nn.NewDLRM(cfg.DS.KeysPerSample(), cfg.DS.Spec.Dim, r)
	case "dcn":
		a.dcn, err = nn.NewDCN(cfg.DS.KeysPerSample(), cfg.DS.Spec.Dim, r)
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

// RunIters simulates n inference iterations and reports the mean.
func (a *DLRApp) RunIters(iters int) (*Report, error) {
	if iters <= 0 {
		iters = 1
	}
	var sum Breakdown
	var keysSum, hitL, hitR, hitH, utilP, utilN float64
	for it := 0; it < iters; it++ {
		b := &extract.Batch{Keys: make([][]int64, a.cfg.P.N)}
		if a.cfg.LocalityDispatch {
			a.dispatchBatch(b)
			for g := range b.Keys {
				keysSum += float64(len(b.Keys[g]))
			}
		} else {
			for g := 0; g < a.cfg.P.N; g++ {
				raw := a.cfg.DS.GenBatch(a.cfg.BatchSize)
				b.Keys[g] = workload.Unique(raw, a.scratch)
				keysSum += float64(len(b.Keys[g]))
			}
		}
		res, err := a.Sys.ExtractBatch(b)
		if err != nil {
			return nil, err
		}
		dense := a.denseTime()
		evict := a.evictionTime(res, b)
		sum.Extract += res.Time
		sum.Eviction += evict
		sum.Dense += dense
		utilP += res.Utilization(a.cfg.P, a.cfg.P.PCIeIDs())
		utilN += res.Utilization(a.cfg.P, a.cfg.P.NVLinkIDs())
		for g, keys := range b.Keys {
			for _, k := range keys {
				src := a.Sys.Placement().SourceOf(g, k)
				switch {
				case src == a.cfg.P.Host():
					hitH++
				case int(src) == g:
					hitL++
				default:
					hitR++
				}
			}
		}
	}
	inv := 1 / float64(iters)
	per := Breakdown{
		Extract: sum.Extract * inv, Eviction: sum.Eviction * inv, Dense: sum.Dense * inv,
	}
	n := a.cfg.DS.NumEntries()
	capUsed := a.Sys.Placement().CapacityUsed()
	tot := hitL + hitR + hitH
	if tot == 0 {
		tot = 1
	}
	return &Report{
		System: a.cfg.Spec.Name, App: "dlr",
		Dataset: a.cfg.DS.Spec.Name, Platform: a.cfg.P.Name,
		Iterations: iters, PerIter: per,
		EpochSeconds:      per.Iter(),
		CapacityEntries:   capUsed[0],
		CacheRatio:        float64(capUsed[0]) / float64(n),
		UniqueKeysPerIter: keysSum * inv / float64(a.cfg.P.N),
		HitLocal:          hitL / tot, HitRemote: hitR / tot, HitHost: hitH / tot,
		LinkUtilPCIe: utilP * inv, LinkUtilNVLink: utilN * inv,
	}, nil
}

func (a *DLRApp) denseTime() float64 {
	switch {
	case a.dlrm != nil:
		return a.tm.Seconds(a.dlrm.FLOPs(a.cfg.BatchSize), a.dlrm.Kernels())
	default:
		return a.tm.Seconds(a.dcn.FLOPs(a.cfg.BatchSize), a.dcn.Kernels())
	}
}

func (a *DLRApp) evictionTime(res *extract.Result, b *extract.Batch) float64 {
	spec := a.cfg.Spec
	if spec.EvictionFactor <= 1 && spec.EvictionPerKey <= 0 {
		return 0
	}
	keys := 0
	for _, k := range b.Keys {
		if len(k) > keys {
			keys = len(k)
		}
	}
	t := float64(keys) * spec.EvictionPerKey
	if spec.EvictionFactor > 1 {
		t += res.Time * (spec.EvictionFactor - 1)
	}
	return t
}

// Spec returns the system spec under test.
func (a *DLRApp) Spec() baselines.Spec { return a.cfg.Spec }

// Dataset returns the dataset under test.
func (a *DLRApp) Dataset() *workload.DLRDataset { return a.cfg.DS }

// BatchSize returns the per-GPU batch.
func (a *DLRApp) BatchSize() int { return a.cfg.BatchSize }

// dispatchBatch implements locality-aware dispatching: the iteration's
// G×batch samples are generated centrally and each sample goes to the GPU
// caching the most of its keys, subject to per-GPU quotas (load balance).
func (a *DLRApp) dispatchBatch(b *extract.Batch) {
	g := a.cfg.P.N
	per := a.cfg.DS.KeysPerSample()
	quota := a.cfg.BatchSize
	assigned := make([]int, g)
	raw := make([][]int64, 0, g*a.cfg.BatchSize)
	for i := 0; i < g*a.cfg.BatchSize; i++ {
		raw = append(raw, a.cfg.DS.GenBatch(1)[:per])
	}
	perGPU := make([][]int64, g)
	for _, sample := range raw {
		best, bestAff := -1, -1
		for cand := 0; cand < g; cand++ {
			if assigned[cand] >= quota {
				continue
			}
			aff := 0
			for _, k := range sample {
				if int(a.Sys.Placement().SourceOf(cand, k)) == cand {
					aff++
				}
			}
			if aff > bestAff {
				best, bestAff = cand, aff
			}
		}
		if best < 0 {
			best = 0 // quotas exhausted only by rounding; dump on gpu0
		}
		assigned[best]++
		perGPU[best] = append(perGPU[best], sample...)
	}
	for gi := 0; gi < g; gi++ {
		b.Keys[gi] = workload.Unique(perGPU[gi], a.scratch)
	}
}
