package app

import (
	"fmt"
	"math"

	"ugache/internal/baselines"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/graph"
	"ugache/internal/nn"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// GNNConfig describes one GNN training run (paper §8.1): a model
// (GCN 3-hop {15,10,5} or GraphSAGE 2-hop {25,10}, supervised or
// unsupervised with negative sampling), a dataset, a platform, and the
// system under test.
type GNNConfig struct {
	P  *platform.Platform
	DS *graph.Dataset
	// Model is "gcn" or "sage".
	Model      string
	Supervised bool
	// BatchSize is the per-GPU seed batch (default 8192, as in the paper).
	BatchSize int
	Spec      baselines.Spec
	// CacheRatio overrides the memory-derived capacity when > 0 (the
	// ratio-sweep figures).
	CacheRatio float64
	Mem        MemoryModel
	// Hidden is the GNN hidden width (default 256).
	Hidden int
	// ProfileBatches presamples this many batches for hotness (default 32,
	// the "first epoch profiling" of §6.1).
	ProfileBatches int
	// DegreeHotness uses the vertex in-degree proxy of §6.1 (PaGraph-style)
	// instead of presampling.
	DegreeHotness bool
	Seed          uint64
}

// GNNApp is a built GNN training pipeline.
type GNNApp struct {
	Cfg      GNNConfig
	Sys      *core.System
	Trainers int
	Samplers int

	sampler *graph.Sampler
	model   *nn.GNN
	tm      nn.TimeModel
	batches [][]int32
	nextB   int
	r       *rng.Rand
	scratch map[int64]struct{}
}

func gnnFanouts(model string) ([]int, error) {
	switch model {
	case "gcn":
		return []int{15, 10, 5}, nil // 3-hop (§8.1)
	case "sage":
		return []int{25, 10}, nil // 2-hop (§8.1)
	default:
		return nil, fmt.Errorf("app: unknown GNN model %q", model)
	}
}

// NewGNN builds the pipeline: presample hotness, size the cache, solve the
// policy, fill the cache.
func NewGNN(cfg GNNConfig) (*GNNApp, error) {
	if err := validateCommon(cfg.P, batchOr(cfg.BatchSize)); err != nil {
		return nil, err
	}
	if cfg.DS == nil {
		return nil, fmt.Errorf("app: dataset is required")
	}
	cfg.BatchSize = batchOr(cfg.BatchSize)
	if cfg.Hidden <= 0 {
		cfg.Hidden = 256
	}
	if cfg.ProfileBatches <= 0 {
		cfg.ProfileBatches = 32
	}
	fanouts, err := gnnFanouts(cfg.Model)
	if err != nil {
		return nil, err
	}
	negative := 0
	if !cfg.Supervised {
		// Unsupervised GraphSAGE: binary classification against negative
		// samples, which flattens the access skew (§8.2).
		negative = 3
	}
	r := rng.New(cfg.Seed).Split("gnn-" + cfg.DS.Spec.Name)
	sampler, err := graph.NewSampler(cfg.DS.G, fanouts, negative, r.Split("sampler"))
	if err != nil {
		return nil, err
	}

	// Sampler/trainer split (GNNLab dedicates ~1/4 of GPUs to sampling).
	trainers, samplers := cfg.P.N, 0
	if cfg.Spec.DedicatedSamplers && cfg.P.N > 1 {
		samplers = cfg.P.N / 4
		if samplers < 1 {
			samplers = 1
		}
		trainers = cfg.P.N - samplers
	}

	// Capacity.
	n := int64(cfg.DS.G.NumNodes())
	entryBytes := cfg.DS.Table.EntryBytes()
	var capacity int64
	if cfg.CacheRatio > 0 {
		capacity = ratioEntries(cfg.CacheRatio, n)
	} else {
		resident := cfg.DS.VolumeG()
		if cfg.Spec.ReclaimGraphMemory {
			resident = 0 // graph lives on the dedicated sampler GPUs
		}
		capacity = cfg.Mem.CapacityEntries(cfg.P, entryBytes, resident)
	}
	if capacity > n {
		capacity = n
	}
	if err := cfg.Spec.Launchable(cfg.P, n, capacity); err != nil {
		return nil, err
	}

	// Hotness (§6.1): either presample the first epoch's batches (cycling
	// across epochs when one epoch has fewer batches than the budget — the
	// neighbour sampling varies per batch, so extra epochs keep adding
	// information), or use the vertex-degree proxy.
	var hot workload.Hotness
	if cfg.DegreeHotness {
		// In-degree approximates how often a vertex is drawn as a sampled
		// neighbour. One probe batch scales the proxy to keys/iteration.
		indeg := make([]int64, n)
		for _, tgt := range cfg.DS.G.Indices {
			indeg[tgt]++
		}
		probe := sampler.SampleBatch(graph.EpochBatches(cfg.DS.Train, cfg.BatchSize, r.Split("probe"))[0])
		hot = workload.DegreeHotness(indeg, float64(len(probe)))
	} else {
		profR := r.Split("profile")
		var rec [][]int64
		for epoch := 0; len(rec) < cfg.ProfileBatches; epoch++ {
			for _, b := range graph.EpochBatches(cfg.DS.Train, cfg.BatchSize, profR.Split(fmt.Sprintf("e%d", epoch))) {
				keys := sampler.SampleBatch(b)
				kb := make([]int64, len(keys))
				for i, k := range keys {
					kb[i] = int64(k)
				}
				rec = append(rec, kb)
				if len(rec) == cfg.ProfileBatches {
					break
				}
			}
		}
		var err error
		hot, err = workload.ProfileBatches(n, rec)
		if err != nil {
			return nil, err
		}
	}

	sys, err := core.Build(core.Config{
		Platform:           cfg.P,
		Hotness:            hot,
		EntryBytes:         entryBytes,
		CacheEntriesPerGPU: maxI64(capacity, 1),
		Policy:             cfg.Spec.Policy,
		Mechanism:          cfg.Spec.Mechanism,
	})
	if err != nil {
		return nil, err
	}
	model, err := nn.NewGNN(cfg.Model, []int{cfg.DS.Table.Dim, cfg.Hidden, cfg.Hidden}, r.Split("model"))
	if err != nil {
		return nil, err
	}
	return &GNNApp{
		Cfg: cfg, Sys: sys,
		Trainers: trainers, Samplers: samplers,
		sampler: sampler, model: model,
		tm:      nn.TimeModelFor(cfg.P.GPU),
		batches: graph.EpochBatches(cfg.DS.Train, cfg.BatchSize, r.Split("epoch")),
		r:       r,
		scratch: make(map[int64]struct{}),
	}, nil
}

func batchOr(b int) int {
	if b <= 0 {
		return 8192
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EpochIterations returns the iterations of a full epoch on this system
// (the training set split across trainer GPUs).
func (a *GNNApp) EpochIterations() int {
	per := a.Cfg.BatchSize * a.Trainers
	return (len(a.Cfg.DS.Train) + per - 1) / per
}

// RunIters simulates up to maxIters iterations and extrapolates the epoch.
func (a *GNNApp) RunIters(maxIters int) (*Report, error) {
	epochIters := a.EpochIterations()
	iters := epochIters
	if maxIters > 0 && iters > maxIters {
		iters = maxIters
	}
	if iters == 0 {
		return nil, fmt.Errorf("app: empty training set")
	}
	var sum Breakdown
	var keysSum float64
	var hitL, hitR, hitH float64
	var utilP, utilN float64
	for it := 0; it < iters; it++ {
		b := &extract.Batch{Keys: make([][]int64, a.Cfg.P.N)}
		var sampleSec, denseSec float64
		var edges int64
		for g := 0; g < a.Trainers; g++ {
			seeds := a.nextSeedBatch()
			keys := a.sampler.SampleBatch(seeds)
			edges += a.sampler.LastEdgesTouched
			kb := make([]int64, len(keys))
			for i, k := range keys {
				kb[i] = int64(k)
			}
			b.Keys[g] = kb
			keysSum += float64(len(kb))
			// Dense compute: per-hop frontiers feed the layers innermost
			// first (all sampled nodes transform in layer 0).
			denseSec = math.Max(denseSec, a.denseTime(a.sampler.LastHopCounts, len(keys)))
		}
		res, err := a.Sys.ExtractBatch(b)
		if err != nil {
			return nil, err
		}
		sampleSec = float64(edges) / SampleRate / float64(maxInt(a.Trainers, 1))
		var queueSec float64
		if a.Cfg.Spec.DedicatedSamplers {
			// Dedicated samplers pipeline the sampling itself; the cost
			// that remains on the critical path is the host-queue transfer
			// of the sampled subgraph plus any throughput shortfall.
			nodes := 0.0
			for g := 0; g < a.Trainers; g++ {
				nodes += float64(len(b.Keys[g]))
			}
			bytes := nodes*4 + float64(edges)*8
			queueSec = bytes / a.Cfg.P.PCIeBW
			demand := sampleSec * float64(a.Trainers) / float64(maxInt(a.Samplers, 1))
			overlap := res.Time + denseSec
			if demand > overlap {
				queueSec += demand - overlap
			}
			sampleSec = 0
		}
		evict := a.evictionTime(res, b)
		sum.Sample += sampleSec
		sum.Queue += queueSec
		sum.Extract += res.Time
		sum.Eviction += evict
		sum.Dense += denseSec
		utilP += res.Utilization(a.Cfg.P, a.Cfg.P.PCIeIDs())
		utilN += res.Utilization(a.Cfg.P, a.Cfg.P.NVLinkIDs())
		l, r2, h := a.measureHits(b)
		hitL += l
		hitR += r2
		hitH += h
	}
	inv := 1 / float64(iters)
	per := Breakdown{
		Sample: sum.Sample * inv, Queue: sum.Queue * inv, Extract: sum.Extract * inv,
		Eviction: sum.Eviction * inv, Dense: sum.Dense * inv,
	}
	n := int64(a.Cfg.DS.G.NumNodes())
	capUsed := a.Sys.Placement().CapacityUsed()
	tot := hitL + hitR + hitH
	if tot == 0 {
		tot = 1
	}
	return &Report{
		System: a.Cfg.Spec.Name, App: "gnn",
		Dataset: a.Cfg.DS.Spec.Name, Platform: a.Cfg.P.Name,
		Iterations: iters, PerIter: per,
		EpochSeconds:      per.Iter() * float64(epochIters),
		EpochIters:        epochIters,
		CapacityEntries:   capUsed[0],
		CacheRatio:        float64(capUsed[0]) / float64(n),
		UniqueKeysPerIter: keysSum / float64(iters) / float64(maxInt(a.Trainers, 1)),
		HitLocal:          hitL / tot, HitRemote: hitR / tot, HitHost: hitH / tot,
		LinkUtilPCIe: utilP * inv, LinkUtilNVLink: utilN * inv,
	}, nil
}

func (a *GNNApp) nextSeedBatch() []int32 {
	if a.nextB >= len(a.batches) {
		a.nextB = 0
		a.batches = graph.EpochBatches(a.Cfg.DS.Train, a.Cfg.BatchSize, a.r.Split("reshuffle"))
	}
	b := a.batches[a.nextB]
	a.nextB++
	return b
}

// denseTime prices one GPU's dense compute for a batch. In sampled GNN
// training the deepest hop's raw embeddings are *aggregated* into their
// parents before any dense transform, so layer l's matmul runs over the
// nodes within hop ≤ (hops−1−l) — not over every sampled node. (That is
// why the paper's Table 1 shows a 113 ms embedding layer against a 10 ms
// MLP: extraction touches the million-node frontier, dense compute only
// the inner hops.)
func (a *GNNApp) denseTime(hopCounts []int, totalNodes int) float64 {
	hops := len(a.sampler.Fanouts)
	// hopCounts: [seeds, hop1, ..., hopK (, negatives)].
	negatives := 0
	if !a.Cfg.Supervised && len(hopCounts) > hops+1 {
		negatives = hopCounts[len(hopCounts)-1]
	}
	layers := len(a.model.Layers)
	nodes := make([]int, layers)
	for l := 0; l < layers; l++ {
		// Layer l transforms nodes in hops [0, hops-1-l].
		upTo := hops - 1 - l
		cnt := 0
		for i := 0; i <= upTo && i < len(hopCounts) && i <= hops; i++ {
			cnt += hopCounts[i]
		}
		if upTo < 0 {
			cnt = hopCounts[0] // seeds only
		}
		if l == 0 {
			// Negative samples are embedded once for the loss.
			cnt += negatives
		}
		nodes[l] = cnt
	}
	flops := a.model.FLOPs(nodes)
	if !a.Cfg.Supervised {
		flops *= 1.3 // link-prediction loss over positive/negative pairs
	}
	_ = totalNodes
	return a.tm.Seconds(flops, a.model.Kernels())
}

func (a *GNNApp) evictionTime(res *extract.Result, b *extract.Batch) float64 {
	if a.Cfg.Spec.EvictionFactor <= 1 && a.Cfg.Spec.EvictionPerKey <= 0 {
		return 0
	}
	keys := 0
	for _, k := range b.Keys {
		if len(k) > keys {
			keys = len(k)
		}
	}
	t := float64(keys) * a.Cfg.Spec.EvictionPerKey
	if a.Cfg.Spec.EvictionFactor > 1 {
		t += res.Time * (a.Cfg.Spec.EvictionFactor - 1)
	}
	return t
}

// measureHits classifies the batch's bytes by source for reporting.
func (a *GNNApp) measureHits(b *extract.Batch) (local, remote, host float64) {
	for g, keys := range b.Keys {
		if len(keys) == 0 {
			continue
		}
		for _, k := range keys {
			src := a.Sys.Placement().SourceOf(g, k)
			switch {
			case src == a.Cfg.P.Host():
				host++
			case int(src) == g:
				local++
			default:
				remote++
			}
		}
	}
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
