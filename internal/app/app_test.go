package app

import (
	"math"
	"testing"

	"ugache/internal/baselines"
	"ugache/internal/graph"
	"ugache/internal/platform"
	"ugache/internal/workload"
)

// smallGNN builds a quick GNN app.
func smallGNN(t *testing.T, p *platform.Platform, spec baselines.Spec, model string, sup bool) *GNNApp {
	t.Helper()
	ds, err := graph.PA.Build(0.02, 7) // ~22k nodes
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGNN(GNNConfig{
		P: p, DS: ds, Model: model, Supervised: sup,
		BatchSize: 256, Spec: spec, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMemoryModel(t *testing.T) {
	p := platform.ServerC()
	m := DefaultMemoryModel()
	cap1 := m.CapacityEntries(p, 512, 0)
	if cap1 <= 0 {
		t.Fatal("no capacity")
	}
	// Resident bytes shrink the cache.
	cap2 := m.CapacityEntries(p, 512, 100<<20)
	if cap2 >= cap1 {
		t.Fatal("resident bytes ignored")
	}
	// Full reservation floors at zero.
	if got := m.CapacityEntries(p, 512, 1<<62); got != 0 {
		t.Fatalf("negative capacity %d", got)
	}
	// Zero-value model normalizes.
	var zero MemoryModel
	if zero.CapacityEntries(p, 512, 0) <= 0 {
		t.Fatal("zero-value model unusable")
	}
}

func TestGNNEndToEnd(t *testing.T) {
	p := platform.ServerC()
	ds, err := graph.PA.Build(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGNN(GNNConfig{
		P: p, DS: ds, Model: "sage", Supervised: true,
		BatchSize: 8, Spec: baselines.UGache, Seed: 1, // small batch: several iterations per epoch
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.RunIters(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 3 || rep.PerIter.Iter() <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.PerIter.Extract <= 0 || rep.PerIter.Dense <= 0 || rep.PerIter.Sample <= 0 {
		t.Fatalf("breakdown %+v", rep.PerIter)
	}
	if rep.EpochSeconds < rep.PerIter.Iter() {
		t.Fatal("epoch extrapolation wrong")
	}
	if rep.UniqueKeysPerIter <= float64(a.Cfg.BatchSize) {
		t.Fatal("sampling did not expand the batch")
	}
	if s := rep.HitLocal + rep.HitRemote + rep.HitHost; math.Abs(s-1) > 1e-9 {
		t.Fatalf("hit fractions sum %g", s)
	}
}

func TestGNNLabShape(t *testing.T) {
	p := platform.ServerC()
	a := smallGNN(t, p, baselines.GNNLab, "sage", true)
	if a.Samplers == 0 || a.Trainers+a.Samplers != p.N {
		t.Fatalf("split %d/%d", a.Trainers, a.Samplers)
	}
	rep, err := a.RunIters(2)
	if err != nil {
		t.Fatal(err)
	}
	// GNNLab pays queue cost, not inline sampling; replication never reads
	// remote GPUs.
	if rep.PerIter.Queue <= 0 || rep.PerIter.Sample != 0 {
		t.Fatalf("breakdown %+v", rep.PerIter)
	}
	if rep.HitRemote != 0 {
		t.Fatalf("replication read remote: %g", rep.HitRemote)
	}
	// Dedicated samplers mean fewer trainers => more iterations per epoch
	// than UGache (with a batch small enough that the epoch has many
	// iterations).
	ds, err := graph.PA.Build(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(spec baselines.Spec) *GNNApp {
		ap, err := NewGNN(GNNConfig{
			P: p, DS: ds, Model: "sage", Supervised: true,
			BatchSize: 8, Spec: spec, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ap
	}
	if mk(baselines.GNNLab).EpochIterations() <= mk(baselines.UGache).EpochIterations() {
		t.Fatal("GNNLab should need more iterations with fewer trainers")
	}
}

func TestUnsupervisedReducesSkewAndAddsCost(t *testing.T) {
	p := platform.ServerC()
	sup := smallGNN(t, p, baselines.UGache, "sage", true)
	unsup := smallGNN(t, p, baselines.UGache, "sage", false)
	rs, err := sup.RunIters(2)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := unsup.RunIters(2)
	if err != nil {
		t.Fatal(err)
	}
	if ru.UniqueKeysPerIter <= rs.UniqueKeysPerIter {
		t.Fatal("negative sampling should touch more keys")
	}
}

func TestWholeGraphLaunchFailures(t *testing.T) {
	// Unconnected pairs (Server B).
	ds, err := graph.PA.Build(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewGNN(GNNConfig{
		P: platform.ServerB(), DS: ds, Model: "sage", Supervised: true,
		BatchSize: 256, Spec: baselines.WholeGraph, Seed: 1,
	})
	if err == nil {
		t.Fatal("WholeGraph launched on DGX-1")
	}
	// Embeddings exceeding aggregate capacity.
	_, err = NewGNN(GNNConfig{
		P: platform.ServerC(), DS: ds, Model: "sage", Supervised: true,
		BatchSize: 256, Spec: baselines.WholeGraph, CacheRatio: 0.05, Seed: 1,
	})
	if err == nil {
		t.Fatal("WholeGraph launched without full fit")
	}
}

func TestGNNSystemsOrdering(t *testing.T) {
	// UGache's epoch should beat GNNLab's and PartU's on a skewed dataset
	// at a moderate cache ratio (Fig. 10's headline).
	p := platform.ServerC()
	times := map[string]float64{}
	for _, spec := range []baselines.Spec{baselines.GNNLab, baselines.PartU, baselines.UGache} {
		ds, err := graph.PA.Build(0.02, 7)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewGNN(GNNConfig{
			P: p, DS: ds, Model: "sage", Supervised: true,
			BatchSize: 256, Spec: spec, CacheRatio: 0.08, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.RunIters(3)
		if err != nil {
			t.Fatal(err)
		}
		times[spec.Name] = rep.EpochSeconds
	}
	if !(times["UGache"] < times["GNNLab"]) {
		t.Fatalf("UGache %g not faster than GNNLab %g", times["UGache"], times["GNNLab"])
	}
	if !(times["UGache"] < times["PartU"]) {
		t.Fatalf("UGache %g not faster than PartU %g", times["UGache"], times["PartU"])
	}
}

func TestGNNValidation(t *testing.T) {
	p := platform.ServerC()
	ds, _ := graph.PA.Build(0.01, 7)
	if _, err := NewGNN(GNNConfig{P: p, Model: "sage", BatchSize: 1, Spec: baselines.UGache}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewGNN(GNNConfig{P: p, DS: ds, Model: "transformer", BatchSize: 1, Spec: baselines.UGache}); err == nil {
		t.Fatal("bad model accepted")
	}
	if _, err := NewGNN(GNNConfig{DS: ds, Model: "sage", BatchSize: 1, Spec: baselines.UGache}); err == nil {
		t.Fatal("nil platform accepted")
	}
}

func TestDLREndToEnd(t *testing.T) {
	p := platform.ServerC()
	ds, err := workload.SYNA.Build(0.01, 3) // 100 tables × 800 entries
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []baselines.Spec{baselines.HPS, baselines.SOK, baselines.UGache} {
		a, err := NewDLR(DLRConfig{
			P: p, DS: ds, Model: "dlrm", BatchSize: 512, Spec: spec,
			CacheRatio: 0.1, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rep, err := a.RunIters(3)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rep.PerIter.Extract <= 0 || rep.PerIter.Dense <= 0 {
			t.Fatalf("%s breakdown %+v", spec.Name, rep.PerIter)
		}
		if spec.Name == "HPS" && rep.PerIter.Eviction <= 0 {
			t.Fatal("HPS eviction cost missing")
		}
		if spec.Name != "HPS" && rep.PerIter.Eviction != 0 {
			t.Fatalf("%s has eviction cost", spec.Name)
		}
	}
}

func TestDLROrdering(t *testing.T) {
	// UGache < HPS and UGache < SOK per-iteration (Fig. 10 DLR).
	p := platform.ServerC()
	ds, err := workload.SYNA.Build(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	iter := map[string]float64{}
	for _, spec := range []baselines.Spec{baselines.HPS, baselines.SOK, baselines.UGache} {
		a, err := NewDLR(DLRConfig{
			P: p, DS: ds, Model: "dlrm", BatchSize: 2048, Spec: spec,
			CacheRatio: 0.08, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.RunIters(3)
		if err != nil {
			t.Fatal(err)
		}
		iter[spec.Name] = rep.PerIter.Iter()
	}
	if !(iter["UGache"] < iter["HPS"] && iter["UGache"] < iter["SOK"]) {
		t.Fatalf("ordering violated: %v", iter)
	}
}

func TestDLRDCN(t *testing.T) {
	p := platform.ServerA()
	ds, err := workload.CR.Build(0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewDLR(DLRConfig{
		P: p, DS: ds, Model: "dcn", BatchSize: 256, Spec: baselines.UGache,
		CacheRatio: 0.05, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.RunIters(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerIter.Dense <= 0 {
		t.Fatal("no dense time")
	}
}

func TestDLRValidation(t *testing.T) {
	p := platform.ServerA()
	ds, _ := workload.SYNA.Build(0.01, 3)
	if _, err := NewDLR(DLRConfig{P: p, Model: "dlrm", Spec: baselines.UGache}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewDLR(DLRConfig{P: p, DS: ds, Model: "bert", Spec: baselines.UGache}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestSingleGPUTable1Shape(t *testing.T) {
	// Table 1: single A100, unsupervised SAGE; with a cache the extraction
	// time drops and most bytes come from GPU memory.
	single, err := platform.New(platform.Config{
		Name: "1xA100", Kind: platform.SwitchBased, GPU: platform.A100x80,
		N: 1, PCIeBW: 25e9, DRAMBW: 100e9, SwitchPortBW: 270e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := graph.MAG.Build(0.005, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ratio float64) *Report {
		a, err := NewGNN(GNNConfig{
			P: single, DS: ds, Model: "sage", Supervised: false,
			BatchSize: 256, Spec: baselines.UGache, CacheRatio: ratio, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.RunIters(2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	noCache := run(1e-9)
	cached := run(0.3)
	if cached.PerIter.Extract >= noCache.PerIter.Extract {
		t.Fatalf("cache did not help: %g vs %g", cached.PerIter.Extract, noCache.PerIter.Extract)
	}
	if noCache.HitLocal > 0.01 {
		t.Fatalf("no-cache run hit cache: %g", noCache.HitLocal)
	}
	if cached.HitLocal < 0.5 {
		t.Fatalf("cached run local hit %g too low", cached.HitLocal)
	}
}
