// Package app builds the two EmbDL applications of the evaluation — GNN
// training and DLR inference — on top of the core cache system, with the
// per-iteration accounting (sampling, host queues, extraction, eviction
// overhead, dense compute) that the end-to-end figures report.
package app

import (
	"fmt"
	"math"

	"ugache/internal/platform"
)

// ratioEntries converts a cache ratio into a per-GPU entry count, rounding
// up so tiny ratios yield a usable (>= 1 entry) cache instead of silently
// truncating to zero.
func ratioEntries(ratio float64, n int64) int64 {
	c := int64(math.Ceil(ratio * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

// MemoryModel derives per-GPU cache capacity from (scaled) GPU memory the
// way the evaluation does: datasets are built at 1/100 of the paper's
// sizes, so GPU memory is scaled by the same factor and a fixed fraction is
// reserved for workspace (activations, buffers; the paper instead shrinks
// batch sizes on small GPUs, §8.1).
type MemoryModel struct {
	// MemScale scales the physical GPU memory (default 0.01, matching the
	// 1/100-scale datasets).
	MemScale float64
	// WorkspaceFrac is reserved for activations and buffers (default 0.25).
	WorkspaceFrac float64
}

// DefaultMemoryModel matches the stock 1/100-scale datasets.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{MemScale: 0.01, WorkspaceFrac: 0.25}
}

func (m MemoryModel) normalize() MemoryModel {
	if m.MemScale <= 0 {
		m.MemScale = 0.01
	}
	if m.WorkspaceFrac <= 0 || m.WorkspaceFrac >= 1 {
		m.WorkspaceFrac = 0.25
	}
	return m
}

// CapacityEntries returns the cache capacity of one GPU in embedding
// entries, after reserving workspace and any co-resident bytes (graph
// topology for GNN systems that store it on the GPU).
func (m MemoryModel) CapacityEntries(p *platform.Platform, entryBytes int, residentBytes int64) int64 {
	m = m.normalize()
	budget := int64(float64(p.GPU.MemBytes)*m.MemScale*(1-m.WorkspaceFrac)) - residentBytes
	if budget < 0 {
		budget = 0
	}
	return budget / int64(entryBytes)
}

// Breakdown is the per-iteration time split, in seconds.
type Breakdown struct {
	Sample   float64 // graph sampling (inline portion)
	Queue    float64 // host-queue transfer of samples (GNNLab)
	Extract  float64 // embedding extraction
	Eviction float64 // online cache maintenance (HPS)
	Dense    float64 // MLP/GNN compute
}

// Iter returns the total iteration time.
func (b Breakdown) Iter() float64 {
	return b.Sample + b.Queue + b.Extract + b.Eviction + b.Dense
}

// Report summarizes a run.
type Report struct {
	System     string
	App        string // "gnn" or "dlr"
	Dataset    string
	Platform   string
	Iterations int
	// PerIter is the mean per-iteration breakdown.
	PerIter Breakdown
	// EpochSeconds extrapolates one full epoch (GNN) from the measured
	// iterations; for DLR it equals PerIter.Iter().
	EpochSeconds float64
	// EpochIters is the iteration count of a full epoch (GNN).
	EpochIters int
	// CapacityEntries is the per-GPU cache size used.
	CapacityEntries int64
	// CacheRatio is capacity over total entries.
	CacheRatio float64
	// UniqueKeysPerIter is the mean unique keys extracted per GPU.
	UniqueKeysPerIter float64
	// HitLocal/HitRemote/HitHost are measured access fractions (bytes).
	HitLocal, HitRemote, HitHost float64
	// LinkUtilPCIe / LinkUtilNVLink are mean utilizations during
	// extraction (Fig. 13).
	LinkUtilPCIe, LinkUtilNVLink float64
}

// SampleRate is the modelled GPU graph-sampling throughput in adjacency
// entries per second (GPU-based neighbour sampling à la WholeGraph).
const SampleRate = 600e6

// validateCommon checks shared config fields.
func validateCommon(p *platform.Platform, batch int) error {
	if p == nil {
		return fmt.Errorf("app: platform is required")
	}
	if batch <= 0 {
		return fmt.Errorf("app: batch size must be positive")
	}
	return nil
}
