package workload

import (
	"math"
	"testing"

	"ugache/internal/rng"
)

func TestDiurnalAlphaAt(t *testing.T) {
	wl, err := NewDiurnalZipf(1000, 0.8, 1.2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := wl.AlphaAt(0); got != 0.8 {
		t.Fatalf("alpha at batch 0 = %g, want the low extreme", got)
	}
	if got := wl.AlphaAt(32); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("alpha at half period = %g, want the high extreme", got)
	}
	if got := wl.AlphaAt(64); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("alpha after a full period = %g, want the low extreme", got)
	}
	if got := wl.AlphaAt(16); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("alpha at quarter period = %g, want the midpoint", got)
	}
	if wl.ShiftBatch() != -1 {
		t.Fatalf("sweep has shift batch %d", wl.ShiftBatch())
	}
	if wl.NumEntries() != 1000 {
		t.Fatalf("NumEntries %d", wl.NumEntries())
	}
	if _, err := NewDiurnalZipf(1000, 1.2, 0.8, 64); err == nil {
		t.Fatal("inverted alpha range accepted")
	}
	if _, err := NewDiurnalZipf(1000, 0.8, 1.2, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestFlashCrowdRotation(t *testing.T) {
	wl, err := NewFlashCrowd(100, 1.1, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if wl.ShiftBatch() != 10 {
		t.Fatalf("shift batch %d", wl.ShiftBatch())
	}
	pre := wl.ExpectedHotness(9, 50)
	post := wl.ExpectedHotness(10, 50)
	if argmax(pre) != 0 {
		t.Fatalf("pre-shift hottest key %d, want rank 0 = key 0", argmax(pre))
	}
	if argmax(post) != 30 {
		t.Fatalf("post-shift hottest key %d, want the rotation offset", argmax(post))
	}
	// The rotation permutes identities without touching the skew: the
	// hotness of rank r moves verbatim from key r to key (r+30)%100.
	for r := int64(0); r < 100; r++ {
		if post[(r+30)%100] != pre[r] {
			t.Fatalf("rank %d hotness %g became %g after the shift", r, pre[r], post[(r+30)%100])
		}
	}

	// rotate 0 defaults to n/2; negative offsets normalize mod n.
	half, err := NewFlashCrowd(100, 1.1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := argmax(half.ExpectedHotness(0, 50)); got != 50 {
		t.Fatalf("default rotation lands the head on key %d, want n/2", got)
	}
	neg, err := NewFlashCrowd(100, 1.1, 0, -10)
	if err != nil {
		t.Fatal(err)
	}
	if got := argmax(neg.ExpectedHotness(0, 50)); got != 90 {
		t.Fatalf("negative rotation lands the head on key %d, want 90", got)
	}
	if _, err := NewFlashCrowd(100, 1.1, -1, 0); err == nil {
		t.Fatal("negative shift batch accepted")
	}
}

func TestShiftingZipfReplay(t *testing.T) {
	wl, err := NewFlashCrowd(500, 1.0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// GenBatchAt with an explicit index must reproduce the streaming
	// GenBatch schedule draw for draw, without advancing the stream.
	r1, r2 := rng.New(3), rng.New(3)
	for b := 0; b < 8; b++ {
		replay := wl.GenBatchAt(r1, b, 64)
		if wl.Batch() != b {
			t.Fatalf("GenBatchAt advanced the stream to %d", wl.Batch())
		}
		live := wl.GenBatch(r2, 64)
		for i := range live {
			if live[i] != replay[i] {
				t.Fatalf("batch %d draw %d: stream %d, replay %d", b, i, live[i], replay[i])
			}
			if live[i] < 0 || live[i] >= 500 {
				t.Fatalf("key %d out of range", live[i])
			}
		}
	}
	if wl.Batch() != 8 {
		t.Fatalf("stream at batch %d after 8 draws", wl.Batch())
	}
}

func TestExpectedHotnessPresence(t *testing.T) {
	wl, err := NewFlashCrowd(100, 1.1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	const m = 50
	h := wl.ExpectedHotness(0, m)
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	// Presence semantics: a key's hotness is the chance it appears at least
	// once in a batch of m draws (the extractor deduplicates batches).
	p0 := z.CDF(1) - z.CDF(0)
	if want := 1 - math.Pow(1-p0, m); math.Abs(h[0]-want) > 1e-12 {
		t.Fatalf("rank-0 presence %g, want %g", h[0], want)
	}
	for k := 1; k < 100; k++ {
		if h[k] > h[k-1] {
			t.Fatalf("presence not monotone in rank at key %d (%g > %g)", k, h[k], h[k-1])
		}
		if h[k] <= 0 || h[k] >= 1 {
			t.Fatalf("presence %g at key %d outside (0, 1)", h[k], k)
		}
	}
}

func argmax(h Hotness) int64 {
	best := int64(0)
	for i, v := range h {
		if v > h[best] {
			best = int64(i)
		}
	}
	return best
}

// TestGenBatchAtLookaheadReplay pins the replayability contract the serve
// layer's lookahead prefetch relies on: a peek stream generating batch b's
// keys L batches early (via explicit GenBatchAt indices on its own
// same-seeded rng) must produce byte-identical keys to the serve stream
// that later generates batch b via GenBatch — including across the
// flash-crowd rotation boundary, where the rank→key mapping changes
// between adjacent batch indices.
func TestGenBatchAtLookaheadReplay(t *testing.T) {
	const (
		size    = 256
		batches = 30
		shiftAt = 12
		L       = 8 // lookahead reaches across the rotation at shiftAt
	)
	wl, err := NewFlashCrowd(5000, 1.05, shiftAt, 0)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 97
	peekR := rng.New(seed)
	serveR := rng.New(seed)

	// The peek stream runs L batches ahead: by the time the serve stream
	// draws batch b, batch b's keys were already peeked at time b-L. Both
	// rngs make identical call sequences (one size-draw batch per index in
	// order), so state only depends on how many batches were drawn.
	peeked := make([][]int64, 0, batches)
	for b := 0; b < L; b++ {
		peeked = append(peeked, wl.GenBatchAt(peekR, b, size))
	}
	for b := 0; b < batches; b++ {
		if b+L < batches {
			peeked = append(peeked, wl.GenBatchAt(peekR, b+L, size))
		}
		served := wl.GenBatch(serveR, size)
		if len(served) != size || len(peeked[b]) != size {
			t.Fatalf("batch %d: sizes %d/%d", b, len(peeked[b]), len(served))
		}
		for i := range served {
			if served[i] != peeked[b][i] {
				boundary := ""
				if b >= shiftAt && b-L < shiftAt {
					boundary = " (across the flash-crowd rotation boundary)"
				}
				t.Fatalf("batch %d key %d: peeked %d, served %d%s",
					b, i, peeked[b][i], served[i], boundary)
			}
		}
	}
	// Sanity: the rotation actually happened inside the replayed range, so
	// the boundary case above was exercised rather than vacuously skipped.
	preR, postR := rng.New(5), rng.New(5)
	pre := wl.GenBatchAt(preR, shiftAt-1, size)
	post := wl.GenBatchAt(postR, shiftAt, size)
	same := true
	for i := range pre {
		if pre[i] != post[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rotation boundary had no effect on the key mapping")
	}
}
