package workload

import (
	"bytes"
	"math"
	"testing"

	"ugache/internal/rng"
)

func TestZipfBounds(t *testing.T) {
	z, err := NewZipf(1000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher alpha concentrates more mass on the head.
	r := rng.New(2)
	share := func(alpha float64) float64 {
		z, _ := NewZipf(100000, alpha)
		top := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Sample(r) < 1000 { // top 1%
				top++
			}
		}
		return float64(top) / draws
	}
	s12, s14 := share(1.2), share(1.4)
	if s12 < 0.4 {
		t.Fatalf("alpha=1.2 top-1%% share %g, want heavy head", s12)
	}
	if s14 <= s12 {
		t.Fatalf("alpha=1.4 share %g not above alpha=1.2 share %g", s14, s12)
	}
}

func TestZipfCDFMatchesSamples(t *testing.T) {
	z, _ := NewZipf(10000, 1.2)
	r := rng.New(3)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if z.Sample(r) < 100 {
			hits++
		}
	}
	want := z.CDF(100)
	got := float64(hits) / draws
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("CDF(100): sampled %g, analytic %g", got, want)
	}
	if z.CDF(0) != 0 || z.CDF(10000) != 1 {
		t.Fatal("CDF endpoints")
	}
}

func TestZipfAlphaOne(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 1000; i++ {
		if v := z.Sample(r); v < 0 || v >= 1000 {
			t.Fatalf("alpha=1 sample %d", v)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestDLRBuildAndBatch(t *testing.T) {
	d, err := CR.Build(0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.KeysPerSample() != 26 {
		t.Fatalf("keys per sample %d", d.KeysPerSample())
	}
	batch := d.GenBatch(100)
	if len(batch) != 2600 {
		t.Fatalf("batch len %d", len(batch))
	}
	n := d.NumEntries()
	for _, k := range batch {
		if k < 0 || k >= n {
			t.Fatalf("key %d outside [0, %d)", k, n)
		}
	}
	// Each sample hits each table exactly once.
	for s := 0; s < 5; s++ {
		for ti := 0; ti < 26; ti++ {
			k := batch[s*26+ti]
			tab, _, err := d.MT.Locate(k)
			if err != nil || tab != ti {
				t.Fatalf("sample %d slot %d in table %d", s, ti, tab)
			}
		}
	}
}

func TestDLRSpecShapes(t *testing.T) {
	if len(CR.TableSizes) != 26 || len(SYNA.TableSizes) != 100 || len(SYNB.TableSizes) != 100 {
		t.Fatal("table counts wrong")
	}
	// Criteo sizes must be heavily spread: largest / smallest > 100.
	max, min := int64(0), int64(1<<62)
	for _, s := range CR.TableSizes {
		if s > max {
			max = s
		}
		if s < min {
			min = s
		}
	}
	if max/min < 100 {
		t.Fatalf("criteo size spread %d/%d too flat", max, min)
	}
	if SYNB.Alpha <= SYNA.Alpha {
		t.Fatal("SYN-B must be more skewed than SYN-A")
	}
	if len(DLRDatasets) != 3 {
		t.Fatal("registry size")
	}
	if _, err := CR.Build(0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := (DLRSpec{Name: "x"}).Build(1, 1); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestUnique(t *testing.T) {
	keys := []int64{5, 3, 5, 7, 3, 5}
	got := Unique(keys, nil)
	want := []int64{5, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Scratch reuse.
	scratch := make(map[int64]struct{})
	Unique(keys, scratch)
	got2 := Unique([]int64{1, 1, 2}, scratch)
	if len(got2) != 2 {
		t.Fatalf("scratch reuse broke dedup: %v", got2)
	}
}

func TestProfileBatches(t *testing.T) {
	batches := [][]int64{{0, 1, 1}, {1, 2, 1}}
	h, err := ProfileBatches(4, batches)
	if err != nil {
		t.Fatal(err)
	}
	// Presence counting: duplicates within a batch count once. Entry 3 was
	// never seen: Good–Turing gives it the once-seen mass (entries 0 and 2,
	// each seen once => unseen mass 2/2 = 1) spread over 1 unseen entry.
	want := Hotness{0.5, 1, 0.5, 1}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Fatalf("h[%d] = %g, want %g", i, h[i], want[i])
		}
	}
	if _, err := ProfileBatches(2, [][]int64{{5}}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if _, err := ProfileBatches(0, batches); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := ProfileBatches(4, nil); err == nil {
		t.Fatal("no batches accepted")
	}
}

func TestHotnessRankAndTopShare(t *testing.T) {
	h := Hotness{1, 9, 3, 3}
	rank := h.Rank()
	if rank[0] != 1 {
		t.Fatalf("rank %v", rank)
	}
	// Ties broken by index: 2 before 3.
	if rank[1] != 2 || rank[2] != 3 || rank[3] != 0 {
		t.Fatalf("rank %v", rank)
	}
	if got := h.TopShare(0.25); math.Abs(got-9.0/16) > 1e-12 {
		t.Fatalf("TopShare %g", got)
	}
}

func TestDegreeHotness(t *testing.T) {
	h := DegreeHotness([]int64{1, 3, 0}, 8)
	if math.Abs(h.Total()-8) > 1e-12 {
		t.Fatalf("Total %g", h.Total())
	}
	if h[1] <= h[0] || h[2] != 0 {
		t.Fatalf("ordering %v", h)
	}
	if z := DegreeHotness([]int64{0, 0}, 8); z.Total() != 0 {
		t.Fatal("zero degrees")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{NumEntries: 100, Batches: [][]int64{{1, 2, 3}, {4}, {}}}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEntries != 100 || len(got.Batches) != 3 {
		t.Fatalf("header %+v", got)
	}
	for i := range tr.Batches {
		if len(got.Batches[i]) != len(tr.Batches[i]) {
			t.Fatalf("batch %d len", i)
		}
		for j := range tr.Batches[i] {
			if got.Batches[i][j] != tr.Batches[i][j] {
				t.Fatalf("batch %d key %d", i, j)
			}
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(bytes.NewReader([]byte("not a trace at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Key outside range.
	bad := &Trace{NumEntries: 2, Batches: [][]int64{{5}}}
	var buf bytes.Buffer
	bad.Save(&buf)
	if _, err := LoadTrace(&buf); err == nil {
		t.Fatal("out-of-range key accepted on load")
	}
}

func TestRecord(t *testing.T) {
	i := 0
	tr := Record(10, 3, func() []int64 {
		i++
		return []int64{int64(i)}
	})
	if len(tr.Batches) != 3 || tr.Batches[2][0] != 3 {
		t.Fatalf("record %+v", tr.Batches)
	}
}

func TestDLRDeterminism(t *testing.T) {
	a, _ := SYNA.Build(0.01, 5)
	b, _ := SYNA.Build(0.01, 5)
	ba, bb := a.GenBatch(10), b.GenBatch(10)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("batch differs at %d", i)
		}
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z, _ := NewZipf(1_000_000, 1.2)
	r := rng.New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += z.Sample(r)
	}
	_ = sink
}

func BenchmarkProfileBatches(b *testing.B) {
	z, _ := NewZipf(100000, 1.2)
	r := rng.New(1)
	batches := make([][]int64, 16)
	for i := range batches {
		keys := make([]int64, 50000)
		for j := range keys {
			keys[j] = z.Sample(r)
		}
		batches[i] = keys
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileBatches(100000, batches); err != nil {
			b.Fatal(err)
		}
	}
}
