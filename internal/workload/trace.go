package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// sortSlice is a local alias so hotness.go stays import-light.
func sortSlice(idx []int64, less func(a, b int64) bool) {
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}

// Trace is a recorded sequence of key batches: the unit of record/replay
// used to feed identical access streams to every system under comparison.
type Trace struct {
	NumEntries int64
	Batches    [][]int64
}

// traceMagic guards the binary format.
const traceMagic = uint64(0x55474143_54524331) // "UGAC" "TRC1"

// Save writes the trace in a compact binary format.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint64{traceMagic, uint64(t.NumEntries), uint64(len(t.Batches))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, b := range t.Batches {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(b))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTrace reads a trace written by Save.
func LoadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic, numEntries, numBatches uint64
	for _, p := range []*uint64{&magic, &numEntries, &numBatches} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("workload: trace header: %w", err)
		}
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file (magic %x)", magic)
	}
	if numBatches > 1<<24 {
		return nil, fmt.Errorf("workload: implausible batch count %d", numBatches)
	}
	t := &Trace{NumEntries: int64(numEntries), Batches: make([][]int64, numBatches)}
	for i := range t.Batches {
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("workload: batch %d header: %w", i, err)
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("workload: implausible batch size %d", n)
		}
		b := make([]int64, n)
		if err := binary.Read(br, binary.LittleEndian, b); err != nil {
			return nil, fmt.Errorf("workload: batch %d body: %w", i, err)
		}
		for _, k := range b {
			if k < 0 || k >= t.NumEntries {
				return nil, fmt.Errorf("workload: batch %d key %d outside [0, %d)", i, k, t.NumEntries)
			}
		}
		t.Batches[i] = b
	}
	return t, nil
}

// Record captures n batches from a generator into a trace.
func Record(numEntries int64, n int, gen func() []int64) *Trace {
	t := &Trace{NumEntries: numEntries, Batches: make([][]int64, 0, n)}
	for i := 0; i < n; i++ {
		b := gen()
		cp := make([]int64, len(b))
		copy(cp, b)
		t.Batches = append(t.Batches, cp)
	}
	return t
}
