package workload

import (
	"fmt"
	"math"

	"ugache/internal/rng"
)

// ShiftingZipf generates a batch-indexed Zipf key stream whose distribution
// moves over time — the non-stationary scenarios a drift-adaptive refresh
// must handle:
//
//   - diurnal sweep: the Zipf skew α oscillates sinusoidally between a low
//     and a high value over a fixed period, modelling day/night traffic
//     concentration. Key identities never change; only how much mass the
//     head holds.
//   - flash crowd: at one batch index the rank→key mapping rotates by a
//     fixed offset, so a previously cold slice of the key space becomes the
//     hot head overnight. Identity changes, skew does not.
//
// The generator is deterministic in (seeded rng, batch index): GenBatch
// advances an internal batch counter, and ExpectedHotness reproduces the
// analytic per-batch hotness for any index so tests and benches can build
// "correct for phase X" placements without profiling.
type ShiftingZipf struct {
	n     int64
	batch int

	// Diurnal sweep (period 0 = stationary at alphaLo).
	alphaLo, alphaHi float64
	period           int

	// Flash crowd (shiftAt < 0 = never).
	shiftAt int
	rotate  int64
}

// NewDiurnalZipf builds a sweep between alphaLo and alphaHi with the given
// full-cycle period in batches. Batch 0 starts at alphaLo.
func NewDiurnalZipf(n int64, alphaLo, alphaHi float64, periodBatches int) (*ShiftingZipf, error) {
	if alphaHi < alphaLo {
		return nil, fmt.Errorf("workload: diurnal sweep needs alphaHi >= alphaLo, got %g < %g", alphaHi, alphaLo)
	}
	if periodBatches <= 0 {
		return nil, fmt.Errorf("workload: diurnal sweep needs a positive period, got %d", periodBatches)
	}
	// Validate both extremes through the Zipf constructor once.
	if _, err := NewZipf(n, alphaLo); err != nil {
		return nil, err
	}
	if _, err := NewZipf(n, alphaHi); err != nil {
		return nil, err
	}
	return &ShiftingZipf{n: n, alphaLo: alphaLo, alphaHi: alphaHi, period: periodBatches, shiftAt: -1}, nil
}

// NewFlashCrowd builds a stationary-skew stream whose rank→key mapping
// rotates by `rotate` keys starting at batch shiftAtBatch (the hottest rank
// maps to key rotate%n from then on). rotate 0 defaults to n/2 — the head
// lands in the middle of the previously cold region.
func NewFlashCrowd(n int64, alpha float64, shiftAtBatch int, rotate int64) (*ShiftingZipf, error) {
	if _, err := NewZipf(n, alpha); err != nil {
		return nil, err
	}
	if shiftAtBatch < 0 {
		return nil, fmt.Errorf("workload: flash crowd needs shiftAtBatch >= 0, got %d", shiftAtBatch)
	}
	if rotate == 0 {
		rotate = n / 2
	}
	rotate %= n
	if rotate < 0 {
		rotate += n
	}
	return &ShiftingZipf{n: n, alphaLo: alpha, alphaHi: alpha, shiftAt: shiftAtBatch, rotate: rotate}, nil
}

// NumEntries returns the key-space size.
func (s *ShiftingZipf) NumEntries() int64 { return s.n }

// Batch returns how many batches have been generated.
func (s *ShiftingZipf) Batch() int { return s.batch }

// ShiftBatch returns the flash-crowd shift index, or -1 for sweeps.
func (s *ShiftingZipf) ShiftBatch() int { return s.shiftAt }

// AlphaAt returns the Zipf skew in effect at a batch index.
func (s *ShiftingZipf) AlphaAt(batch int) float64 {
	if s.period <= 0 {
		return s.alphaLo
	}
	phase := 2 * math.Pi * float64(batch) / float64(s.period)
	return s.alphaLo + (s.alphaHi-s.alphaLo)*(1-math.Cos(phase))/2
}

// keyAt maps a hotness rank to a key under the mapping in effect at the
// given batch index.
func (s *ShiftingZipf) keyAt(batch int, rank int64) int64 {
	if s.shiftAt >= 0 && batch >= s.shiftAt {
		return (rank + s.rotate) % s.n
	}
	return rank
}

// GenBatch draws one batch of `size` keys from the distribution in effect
// at the current batch index, then advances the index.
func (s *ShiftingZipf) GenBatch(r *rng.Rand, size int) []int64 {
	keys := s.GenBatchAt(r, s.batch, size)
	s.batch++
	return keys
}

// GenBatchAt draws a batch for an explicit batch index without advancing
// the stream (replays, multi-mode benches running the same schedule).
func (s *ShiftingZipf) GenBatchAt(r *rng.Rand, batch, size int) []int64 {
	z, err := NewZipf(s.n, s.AlphaAt(batch))
	if err != nil {
		// Both α extremes were validated at construction; interpolations
		// between them cannot fail.
		panic(err)
	}
	keys := make([]int64, size)
	for i := range keys {
		keys[i] = s.keyAt(batch, z.Sample(r))
	}
	return keys
}

// ExpectedHotness returns the analytic per-batch presence hotness at a
// batch index, matching ProfileBatches semantics: for a batch of
// keysPerBatch draws, each key's hotness is its probability of appearing at
// least once (presence, since the extractor deduplicates batches).
func (s *ShiftingZipf) ExpectedHotness(batch, keysPerBatch int) Hotness {
	z, err := NewZipf(s.n, s.AlphaAt(batch))
	if err != nil {
		panic(err)
	}
	h := make(Hotness, s.n)
	m := float64(keysPerBatch)
	for rank := int64(0); rank < s.n; rank++ {
		p := z.CDF(rank+1) - z.CDF(rank)
		h[s.keyAt(batch, rank)] = 1 - math.Pow(1-p, m)
	}
	return h
}
