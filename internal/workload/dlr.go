package workload

import (
	"fmt"
	"math"

	"ugache/internal/emb"
	"ugache/internal/rng"
)

// DLRSpec describes a scaled stand-in for one of the paper's DLR datasets
// (Table 3): a set of embedding tables and the per-table key popularity.
// Each inference sample draws one key from every table (§8.1: "each request
// contains a single key for each table").
type DLRSpec struct {
	Name string
	// TableSizes are entry counts per table at Scale = 1.
	TableSizes []int64
	Dim        int
	DType      emb.DType
	Alpha      float64 // within-table Zipf skew
}

// criteoTableSizes spreads 8.82M entries (1/100 of Criteo-TB's 882M) over
// 26 tables with the log-scale size spread of the real dataset: a few huge
// tables dominate, many are tiny.
func criteoTableSizes() []int64 {
	sizes := make([]int64, 26)
	// Geometric spread over ~4 decades, largest first.
	total := int64(0)
	for i := range sizes {
		sizes[i] = int64(3_000_000 / math.Pow(1.55, float64(i)))
		if sizes[i] < 100 {
			sizes[i] = 100
		}
		total += sizes[i]
	}
	// Normalize to 8.82M.
	target := int64(8_820_000)
	for i := range sizes {
		sizes[i] = sizes[i] * target / total
		if sizes[i] < 100 {
			sizes[i] = 100
		}
	}
	return sizes
}

func uniformTables(n int, each int64) []int64 {
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = each
	}
	return sizes
}

// The paper's DLR datasets (Table 3), at 1/100 scale.
var (
	// CR stands in for Criteo-TB: 26 tables, real-trace-like skew.
	CR = DLRSpec{Name: "CR", TableSizes: criteoTableSizes(), Dim: 128,
		DType: emb.Float32, Alpha: 1.2}
	// SYNA is SYN-A: 100 uniform tables, Zipf alpha = 1.2.
	SYNA = DLRSpec{Name: "SYN-A", TableSizes: uniformTables(100, 80_000),
		Dim: 128, DType: emb.Float32, Alpha: 1.2}
	// SYNB is SYN-B: 100 uniform tables, Zipf alpha = 1.4.
	SYNB = DLRSpec{Name: "SYN-B", TableSizes: uniformTables(100, 80_000),
		Dim: 128, DType: emb.Float32, Alpha: 1.4}
)

// DLRDatasets lists the stock specs in the paper's presentation order.
var DLRDatasets = []DLRSpec{CR, SYNA, SYNB}

// DLRDataset is a built DLR workload: the flattened tables plus per-table
// key samplers.
type DLRDataset struct {
	Spec  DLRSpec
	MT    *emb.MultiTable
	zipfs []*Zipf
	r     *rng.Rand
}

// Build constructs the dataset at the given scale. Table sizes scale down
// with a floor of 64 entries each.
func (s DLRSpec) Build(scale float64, seed uint64) (*DLRDataset, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale must be positive, got %g", scale)
	}
	if len(s.TableSizes) == 0 {
		return nil, fmt.Errorf("workload: spec %q has no tables", s.Name)
	}
	tables := make([]*emb.Table, len(s.TableSizes))
	zipfs := make([]*Zipf, len(s.TableSizes))
	for i, base := range s.TableSizes {
		n := int64(float64(base) * scale)
		if n < 64 {
			n = 64
		}
		t, err := emb.New(fmt.Sprintf("%s-t%d", s.Name, i), n, s.Dim, s.DType, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		tables[i] = t
		z, err := NewZipf(n, s.Alpha)
		if err != nil {
			return nil, err
		}
		zipfs[i] = z
	}
	mt, err := emb.NewMultiTable(tables)
	if err != nil {
		return nil, err
	}
	return &DLRDataset{
		Spec: s, MT: mt, zipfs: zipfs,
		r: rng.New(seed).Split("dlr-" + s.Name),
	}, nil
}

// NumEntries returns the flattened entry count.
func (d *DLRDataset) NumEntries() int64 { return d.MT.NumEntries() }

// GenBatch draws one inference batch of the given sample count and returns
// the flattened keys (batchSize × numTables keys, duplicates possible; the
// extractor deduplicates).
func (d *DLRDataset) GenBatch(batchSize int) []int64 {
	keys := make([]int64, 0, batchSize*len(d.zipfs))
	for s := 0; s < batchSize; s++ {
		for t, z := range d.zipfs {
			keys = append(keys, d.MT.Offset(t)+z.Sample(d.r))
		}
	}
	return keys
}

// GenBatchWith is GenBatch drawing from an explicit generator instead of
// the dataset's own stream — concurrent clients each use their own.
func (d *DLRDataset) GenBatchWith(r *rng.Rand, batchSize int) []int64 {
	keys := make([]int64, 0, batchSize*len(d.zipfs))
	for s := 0; s < batchSize; s++ {
		for t, z := range d.zipfs {
			keys = append(keys, d.MT.Offset(t)+z.Sample(r))
		}
	}
	return keys
}

// KeysPerSample returns how many keys one inference sample contributes.
func (d *DLRDataset) KeysPerSample() int { return len(d.zipfs) }

// Unique deduplicates keys, returning them in first-seen order. The scratch
// map is cleared and reused when non-nil.
func Unique(keys []int64, scratch map[int64]struct{}) []int64 {
	if scratch == nil {
		scratch = make(map[int64]struct{}, len(keys))
	} else {
		clear(scratch)
	}
	out := make([]int64, 0, len(keys))
	for _, k := range keys {
		if _, ok := scratch[k]; ok {
			continue
		}
		scratch[k] = struct{}{}
		out = append(out, k)
	}
	return out
}
