package workload

import "fmt"

// Hotness is the paper's §6.1 metric: the expected number of accesses per
// iteration for each embedding entry, indexed by key. The solver consumes
// it directly; applications may fill it by presampling (GNN: profile the
// first epoch), by degree proxy, or by online sampling (DLR).
type Hotness []float64

// ProfileBatches measures hotness by counting per-batch key *presence* over
// recorded batches and normalizing per batch — the presampling of GNNLab
// that §6.1 cites as sufficient to predict later epochs. Presence (each key
// counted once per batch) rather than raw occurrence matters because the
// extractor deduplicates each batch before reading: an entry appearing 50
// times in one batch still costs one read, so its cache value saturates.
func ProfileBatches(numEntries int64, batches [][]int64) (Hotness, error) {
	if numEntries <= 0 {
		return nil, fmt.Errorf("workload: numEntries must be positive")
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("workload: need at least one batch to profile")
	}
	h := make(Hotness, numEntries)
	seen := make(map[int64]struct{})
	for _, b := range batches {
		clear(seen)
		for _, k := range b {
			if k < 0 || k >= numEntries {
				return nil, fmt.Errorf("workload: key %d outside [0, %d)", k, numEntries)
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			h[k]++
		}
	}
	// Good–Turing smoothing for the unseen tail: a finite profiling window
	// underestimates how often future batches touch keys it never saw, which
	// would make the solver treat the tail as worthless and overfit the
	// placement to the profiled head. The classic estimate of the unseen
	// probability mass is the frequency of once-seen events; it is spread
	// uniformly over the never-seen entries.
	var once, unseen int64
	for _, c := range h {
		switch c {
		case 0:
			unseen++
		case 1:
			once++
		}
	}
	inv := 1 / float64(len(batches))
	tail := 0.0
	if unseen > 0 {
		tail = float64(once) * inv / float64(unseen)
	}
	for i := range h {
		if h[i] == 0 {
			h[i] = tail
		} else {
			h[i] *= inv
		}
	}
	return h, nil
}

// DegreeHotness approximates hotness from vertex degrees (paper §6.1: "the
// vertex degree in graph datasets can approximate the access frequency").
// degrees may be out- or in-degree counts; the result is scaled so it sums
// to expectedKeysPerBatch.
func DegreeHotness(degrees []int64, expectedKeysPerBatch float64) Hotness {
	h := make(Hotness, len(degrees))
	var total int64
	for _, d := range degrees {
		total += d
	}
	if total == 0 || expectedKeysPerBatch <= 0 {
		return h
	}
	scale := expectedKeysPerBatch / float64(total)
	for i, d := range degrees {
		h[i] = float64(d) * scale
	}
	return h
}

// Total returns the expected keys per iteration.
func (h Hotness) Total() float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	return s
}

// TopShare returns the fraction of accesses covered by the hottest
// `fraction` of entries — the skewness summary used throughout the
// evaluation discussion.
func (h Hotness) TopShare(fraction float64) float64 {
	ranked := h.Rank()
	total := h.Total()
	if total == 0 {
		return 0
	}
	k := int(float64(len(h)) * fraction)
	var top float64
	for i := 0; i < k && i < len(ranked); i++ {
		top += h[ranked[i]]
	}
	return top / total
}

// Rank returns entry indices sorted by descending hotness (stable in index
// for ties, so results are deterministic).
func (h Hotness) Rank() []int64 {
	idx := make([]int64, len(h))
	for i := range idx {
		idx[i] = int64(i)
	}
	// Sort by (-hotness, index) with a simple 64-bit radix-friendly
	// comparator via sort.Slice equivalent; len is a few million, sort
	// package handles it fine.
	sortSlice(idx, func(a, b int64) bool {
		if h[a] != h[b] {
			return h[a] > h[b]
		}
		return a < b
	})
	return idx
}
