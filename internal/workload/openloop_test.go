package workload

import (
	"math"
	"testing"
	"time"
)

func TestZipfRankMatchesSample(t *testing.T) {
	z, err := NewZipf(10_000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Rank must be the deterministic inverse-CDF: monotone in u, in range,
	// and hitting both ends.
	if z.Rank(0) != 0 {
		t.Fatalf("Rank(0) = %d, want 0", z.Rank(0))
	}
	if got := z.Rank(0.999999999); got != z.N-1 {
		t.Fatalf("Rank(~1) = %d, want %d", got, z.N-1)
	}
	prev := int64(-1)
	for u := 0.0; u < 1; u += 0.001 {
		r := z.Rank(u)
		if r < prev {
			t.Fatalf("Rank not monotone at u=%g: %d < %d", u, r, prev)
		}
		prev = r
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	cfg := OpenLoopConfig{QPS: 5000, NumKeys: 50_000, Arrivals: MMPP}
	a, err := NewOpenLoop(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOpenLoop(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb OpenLoopRequest
	for i := 0; i < 2000; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra.At != rb.At || ra.User != rb.User {
			t.Fatalf("streams diverged at %d: %v/%d vs %v/%d", i, ra.At, ra.User, rb.At, rb.User)
		}
		for j := range ra.Keys {
			if ra.Keys[j] != rb.Keys[j] {
				t.Fatalf("keys diverged at request %d slot %d", i, j)
			}
		}
	}
}

func TestOpenLoopPoissonRate(t *testing.T) {
	const qps = 10_000.0
	o, err := NewOpenLoop(OpenLoopConfig{QPS: qps, NumKeys: 10_000, Users: 1 << 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	var req OpenLoopRequest
	for i := 0; i < n; i++ {
		o.Next(&req)
		if req.User < 0 || req.User >= 1<<20 {
			t.Fatalf("user %d out of range", req.User)
		}
		for _, k := range req.Keys {
			if k < 0 || k >= 10_000 {
				t.Fatalf("key %d out of range", k)
			}
		}
	}
	got := float64(n) / req.At.Seconds()
	if math.Abs(got-qps)/qps > 0.05 {
		t.Fatalf("empirical rate %.0f qps, want ~%.0f", got, qps)
	}
}

// TestOpenLoopMMPP checks the modulated process keeps the configured
// long-run rate while being measurably burstier than Poisson: the index of
// dispersion (variance/mean of per-window arrival counts) is ~1 for Poisson
// and must rise well above it under MMPP.
func TestOpenLoopMMPP(t *testing.T) {
	const qps = 20_000.0
	dispersion := func(arrivals Arrival) (rate, idx float64) {
		o, err := NewOpenLoop(OpenLoopConfig{
			QPS: qps, NumKeys: 10_000, Arrivals: arrivals,
			BurstRatio: 10, BurstFraction: 0.1, QuietSojourn: 100 * time.Millisecond,
		}, 11)
		if err != nil {
			t.Fatal(err)
		}
		const n = 400_000
		const window = 10 * time.Millisecond
		counts := make(map[int64]int)
		var req OpenLoopRequest
		for i := 0; i < n; i++ {
			o.Next(&req)
			counts[int64(req.At/window)]++
		}
		lastWin := int64(req.At / window)
		mean, m2 := 0.0, 0.0
		for w := int64(0); w < lastWin; w++ { // include empty windows
			mean += float64(counts[w])
		}
		mean /= float64(lastWin)
		for w := int64(0); w < lastWin; w++ {
			d := float64(counts[w]) - mean
			m2 += d * d
		}
		variance := m2 / float64(lastWin)
		return float64(n) / req.At.Seconds(), variance / mean
	}

	rate, poissonIdx := dispersion(Poisson)
	if math.Abs(rate-qps)/qps > 0.05 {
		t.Fatalf("poisson long-run rate %.0f, want ~%.0f", rate, qps)
	}
	rate, mmppIdx := dispersion(MMPP)
	if math.Abs(rate-qps)/qps > 0.10 {
		t.Fatalf("mmpp long-run rate %.0f, want ~%.0f", rate, qps)
	}
	if poissonIdx > 2 {
		t.Fatalf("poisson dispersion index %.2f, want ~1", poissonIdx)
	}
	if mmppIdx < 3*poissonIdx {
		t.Fatalf("mmpp dispersion %.2f not burstier than poisson %.2f", mmppIdx, poissonIdx)
	}
}

// TestOpenLoopAffinity checks per-user key locality: one user's requests
// must overlap their own working set far more than another user's.
func TestOpenLoopAffinity(t *testing.T) {
	o, err := NewOpenLoop(OpenLoopConfig{
		QPS: 1000, NumKeys: 1 << 20, KeyAlpha: 1.01, // weak skew: global collisions rare
		Users: 1 << 30, WorkingSet: 32, Affinity: 0.9, KeysPerRequest: 8,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inSet := func(set []int64, k int64) bool {
		for _, s := range set {
			if s == k {
				return true
			}
		}
		return false
	}
	var req OpenLoopRequest
	own, other, total := 0, 0, 0
	for i := 0; i < 3000; i++ {
		o.Next(&req)
		mine := o.UserKeys(req.User)
		theirs := o.UserKeys(req.User + 1_000_003)
		for _, k := range req.Keys {
			total++
			if inSet(mine, k) {
				own++
			}
			if inSet(theirs, k) {
				other++
			}
		}
	}
	ownFrac := float64(own) / float64(total)
	otherFrac := float64(other) / float64(total)
	if ownFrac < 0.8 {
		t.Fatalf("only %.2f of keys from the user's own working set, want >= 0.8", ownFrac)
	}
	if otherFrac > 0.3*ownFrac {
		t.Fatalf("unrelated user's set matched %.2f of keys (own %.2f) — affinity not per-user", otherFrac, ownFrac)
	}
}

func TestOpenLoopConfigErrors(t *testing.T) {
	if _, err := NewOpenLoop(OpenLoopConfig{NumKeys: 10}, 1); err == nil {
		t.Fatal("accepted QPS <= 0")
	}
	if _, err := NewOpenLoop(OpenLoopConfig{QPS: 100}, 1); err == nil {
		t.Fatal("accepted NumKeys <= 0")
	}
	if _, err := NewOpenLoop(OpenLoopConfig{QPS: 100, NumKeys: 10, Affinity: 1.5}, 1); err == nil {
		t.Fatal("accepted affinity > 1")
	}
	if _, err := ParseArrival("bogus"); err == nil {
		t.Fatal("parsed bogus arrival process")
	}
	for _, s := range []string{"poisson", "mmpp"} {
		a, err := ParseArrival(s)
		if err != nil || a.String() != s {
			t.Fatalf("ParseArrival(%q) = %v, %v", s, a, err)
		}
	}
}
