// Package workload generates the embedding access streams of the paper's
// two application families: DLR inference requests over many embedding
// tables with power-law key popularity, and GNN training batches produced
// by graph sampling. It also implements the hotness profiling ("presampling
// the first epoch", §6.1) that feeds the cache policy solver, and trace
// record/replay.
package workload

import (
	"fmt"
	"math"

	"ugache/internal/rng"
)

// Zipf draws ranks in [0, N) with P(r) ∝ 1/(r+1)^alpha using analytic
// inversion of the continuous CDF — O(1) per draw and no per-rank tables,
// so billion-entry key spaces cost nothing. Rank 0 is the hottest key.
type Zipf struct {
	N     int64
	Alpha float64
	norm  float64
	exp   float64
	isLog bool
}

// NewZipf creates a bounded Zipf sampler. alpha must be > 0 (the paper's
// synthetic datasets use 1.2 and 1.4).
func NewZipf(n int64, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: zipf needs alpha > 0, got %g", alpha)
	}
	z := &Zipf{N: n, Alpha: alpha}
	if math.Abs(1-alpha) < 1e-9 {
		z.isLog = true
		z.norm = math.Log(float64(n + 1))
		return z, nil
	}
	z.norm = math.Pow(float64(n+1), 1-alpha) - 1
	z.exp = 1 / (1 - alpha)
	return z, nil
}

// Sample draws one rank.
func (z *Zipf) Sample(r *rng.Rand) int64 {
	return z.Rank(r.Float64())
}

// Rank maps one uniform variate in [0, 1) to a rank through the same
// analytic CDF inversion Sample uses. It is the deterministic form: feeding
// the same u always yields the same rank, which is what hash-derived draws
// (per-user key affinity in the open-loop generator) need.
func (z *Zipf) Rank(u float64) int64 {
	var x float64
	if z.isLog {
		x = math.Exp(u*z.norm) - 1
	} else {
		x = math.Pow(u*z.norm+1, z.exp) - 1
	}
	id := int64(x)
	if id < 0 {
		id = 0
	}
	if id >= z.N {
		id = z.N - 1
	}
	return id
}

// CDF returns the (continuous approximation of the) probability that a
// sample is < r; used to size caches analytically in tests.
func (z *Zipf) CDF(rank int64) float64 {
	if rank <= 0 {
		return 0
	}
	if rank >= z.N {
		return 1
	}
	x := float64(rank)
	if z.isLog {
		return math.Log(x+1) / z.norm
	}
	return (math.Pow(x+1, 1-z.Alpha) - 1) / z.norm
}
