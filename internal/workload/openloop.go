package workload

import (
	"fmt"
	"time"

	"ugache/internal/rng"
)

// Arrival selects the arrival process of an open-loop stream.
type Arrival int

const (
	// Poisson arrivals: exponential inter-arrival times at the offered
	// rate — the memoryless baseline every queueing result is stated in.
	Poisson Arrival = iota
	// MMPP arrivals: a 2-state Markov-modulated Poisson process that
	// alternates between a quiet state and a burst state with exponential
	// sojourns. Same long-run offered rate as Poisson, far burstier — the
	// arrival pattern that actually finds a serving system's knee.
	MMPP
)

// String names the arrival process for flags and reports.
func (a Arrival) String() string {
	if a == MMPP {
		return "mmpp"
	}
	return "poisson"
}

// ParseArrival parses a flag value ("poisson" or "mmpp").
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "mmpp":
		return MMPP, nil
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q (want poisson or mmpp)", s)
}

// OpenLoopConfig parameterizes an open-loop request stream: arrivals are
// scheduled by the offered rate alone, never by service completions, so
// unlike a closed loop the generator keeps offering load to a saturated
// server — the regime where shed counts and the latency knee are measured.
type OpenLoopConfig struct {
	// QPS is the long-run offered request rate (required, > 0).
	QPS float64
	// Arrivals selects Poisson (default) or bursty MMPP arrivals.
	Arrivals Arrival

	// Users is the simulated user population (default 1M). Users carry no
	// per-user state — a user's working set is derived by hashing, so
	// millions of users cost nothing.
	Users int64
	// UserAlpha is the Zipf skew of user activity (default 1.05): a few
	// users issue most requests, the long tail is nearly idle.
	UserAlpha float64
	// WorkingSet is the number of distinct keys in one user's affinity set
	// (default 64).
	WorkingSet int
	// Affinity is the probability a requested key comes from the user's own
	// working set rather than the global popularity distribution (default
	// 0.8). Affinity draws are deterministic per (user, slot), so a user's
	// requests re-touch the same keys — the temporal locality real serving
	// traffic has and uniform resampling lacks.
	Affinity float64

	// KeysPerRequest is how many keys one request carries (default 26, one
	// key per CR table).
	KeysPerRequest int
	// NumKeys is the key space size (required, > 0). Keys are drawn in
	// [0, NumKeys).
	NumKeys int64
	// KeyAlpha is the Zipf skew of key popularity (default 1.2), applied
	// both to global draws and, through the hash, to affinity sets — hot
	// keys appear in many users' working sets.
	KeyAlpha float64

	// BurstRatio is the MMPP burst-state rate multiplier over the quiet
	// state (default 8).
	BurstRatio float64
	// BurstFraction is the long-run fraction of time spent in the burst
	// state (default 0.1). The quiet/burst rates are solved so the long-run
	// offered rate stays exactly QPS.
	BurstFraction float64
	// QuietSojourn is the mean dwell time in the quiet state (default 1s);
	// the burst dwell follows from BurstFraction.
	QuietSojourn time.Duration
}

func (c OpenLoopConfig) normalize() (OpenLoopConfig, error) {
	if c.QPS <= 0 {
		return c, fmt.Errorf("workload: open loop needs QPS > 0, got %g", c.QPS)
	}
	if c.NumKeys <= 0 {
		return c, fmt.Errorf("workload: open loop needs NumKeys > 0, got %d", c.NumKeys)
	}
	if c.Users <= 0 {
		c.Users = 1_000_000
	}
	if c.UserAlpha <= 0 {
		c.UserAlpha = 1.05
	}
	if c.WorkingSet <= 0 {
		c.WorkingSet = 64
	}
	if c.Affinity < 0 || c.Affinity > 1 {
		return c, fmt.Errorf("workload: affinity must be in [0, 1], got %g", c.Affinity)
	}
	if c.Affinity == 0 {
		c.Affinity = 0.8
	}
	if c.KeysPerRequest <= 0 {
		c.KeysPerRequest = 26
	}
	if c.KeyAlpha <= 0 {
		c.KeyAlpha = 1.2
	}
	if c.BurstRatio <= 1 {
		c.BurstRatio = 8
	}
	if c.BurstFraction <= 0 || c.BurstFraction >= 1 {
		c.BurstFraction = 0.1
	}
	if c.QuietSojourn <= 0 {
		c.QuietSojourn = time.Second
	}
	return c, nil
}

// OpenLoopRequest is one generated arrival. Keys is owned by the generator
// and overwritten by the next Next call; copy it to retain.
type OpenLoopRequest struct {
	// At is the intended arrival time, as an offset from the stream's start.
	// Open-loop latency is measured from At, not from when the load driver
	// got around to sending — that is what avoids coordinated omission.
	At time.Duration
	// User is the simulated user issuing the request.
	User int64
	// Keys are the requested embedding keys.
	Keys []int64
}

// OpenLoop is a deterministic open-loop request stream. Not safe for
// concurrent use; shard one generator per driver goroutine with distinct
// seeds instead.
type OpenLoop struct {
	cfg   OpenLoopConfig
	r     *rng.Rand
	users *Zipf
	keys  *Zipf

	now float64 // seconds since stream start

	// MMPP state: current state's rate and when it ends.
	burst    bool
	rate     float64
	stateEnd float64
	rateLo   float64
	rateHi   float64
	meanLo   float64 // mean quiet sojourn, seconds
	meanHi   float64 // mean burst sojourn, seconds

	keyBuf []int64
}

// NewOpenLoop builds a generator. Streams with the same config and seed are
// identical run to run.
func NewOpenLoop(cfg OpenLoopConfig, seed uint64) (*OpenLoop, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	users, err := NewZipf(cfg.Users, cfg.UserAlpha)
	if err != nil {
		return nil, err
	}
	keys, err := NewZipf(cfg.NumKeys, cfg.KeyAlpha)
	if err != nil {
		return nil, err
	}
	o := &OpenLoop{
		cfg:    cfg,
		r:      rng.New(seed).Split("open-loop"),
		users:  users,
		keys:   keys,
		keyBuf: make([]int64, cfg.KeysPerRequest),
	}
	if cfg.Arrivals == MMPP {
		// Stationary split pi_hi = BurstFraction with exponential sojourns,
		// and rate_hi = BurstRatio * rate_lo; solve rate_lo so the long-run
		// offered rate is exactly QPS:
		//   QPS = (1-f)*rate_lo + f*BurstRatio*rate_lo.
		f := cfg.BurstFraction
		o.rateLo = cfg.QPS / ((1 - f) + f*cfg.BurstRatio)
		o.rateHi = cfg.BurstRatio * o.rateLo
		o.meanLo = cfg.QuietSojourn.Seconds()
		o.meanHi = o.meanLo * f / (1 - f)
		o.burst = false
		o.rate = o.rateLo
		o.stateEnd = o.r.Exp() * o.meanLo
	} else {
		o.rate = cfg.QPS
	}
	return o, nil
}

// splitmix64 is the stateless mixer behind per-user key affinity: hashing
// (user, slot) to a uniform variate gives every user a stable working set
// with zero per-user storage.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1) with 53-bit precision.
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Next advances the stream and fills req with the next arrival. The Keys
// slice aliases the generator's buffer.
func (o *OpenLoop) Next(req *OpenLoopRequest) {
	o.advanceClock()
	user := o.users.Sample(o.r)
	keys := o.keyBuf[:o.cfg.KeysPerRequest]
	for i := range keys {
		if o.r.Float64() < o.cfg.Affinity {
			// Affinity draw: a stable slot of this user's working set,
			// mapped through the key-popularity CDF so hot keys land in
			// many working sets.
			slot := o.r.Intn(o.cfg.WorkingSet)
			h := splitmix64(uint64(user)*0x100000001b3 + uint64(slot))
			keys[i] = o.keys.Rank(unit(h))
		} else {
			keys[i] = o.keys.Sample(o.r)
		}
	}
	req.At = time.Duration(o.now * float64(time.Second))
	req.User = user
	req.Keys = keys
}

// advanceClock draws the next inter-arrival time. For MMPP the exponential
// draw is redrawn whenever it crosses a state switch — exact by
// memorylessness, no thinning or discretization.
func (o *OpenLoop) advanceClock() {
	if o.cfg.Arrivals != MMPP {
		o.now += o.r.Exp() / o.rate
		return
	}
	for {
		dt := o.r.Exp() / o.rate
		if o.now+dt <= o.stateEnd {
			o.now += dt
			return
		}
		o.now = o.stateEnd
		o.burst = !o.burst
		if o.burst {
			o.rate = o.rateHi
			o.stateEnd = o.now + o.r.Exp()*o.meanHi
		} else {
			o.rate = o.rateLo
			o.stateEnd = o.now + o.r.Exp()*o.meanLo
		}
	}
}

// UserKeys returns user u's full working set — the keys its affinity draws
// can produce — for tests and cache-warmup tooling.
func (o *OpenLoop) UserKeys(u int64) []int64 {
	out := make([]int64, o.cfg.WorkingSet)
	for slot := range out {
		h := splitmix64(uint64(u)*0x100000001b3 + uint64(slot))
		out[slot] = o.keys.Rank(unit(h))
	}
	return out
}
