// Package core assembles UGache (paper §4): given a platform, hotness
// statistics, and per-GPU cache capacity, Build profiles the platform,
// solves the cache policy (Solver), fills the caches (Filler), and serves
// batched lookups through the factored Extractor. Refresh re-solves against
// new hotness in the background and applies the diff with bounded
// foreground impact (§7.2).
//
// A built System is safe for concurrent use: lookups and extractions read
// an immutable engine state (placement + extractor) behind an atomic
// pointer, and Refresh publishes a fully built replacement state only
// after every fallible step succeeded. The cache layer underneath applies
// the same snapshot-swap discipline to its hash tables and arenas.
//
// This package is the internal engine behind the public ugache package at
// the module root.
package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/cache"
	"ugache/internal/extract"
	"ugache/internal/flight"
	"ugache/internal/platform"
	"ugache/internal/sim"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// Config describes a UGache instance.
type Config struct {
	// Platform is the multi-GPU server (required).
	Platform *platform.Platform
	// Hotness is the per-entry expected accesses per iteration (required;
	// obtain it from presampling, degree proxies, or a HotnessSampler —
	// §6.1).
	Hotness workload.Hotness
	// EntryBytes is the embedding row size (required).
	EntryBytes int
	// CacheEntriesPerGPU sizes each GPU's cache in entries. If zero,
	// CacheRatio is used instead; negative values are rejected.
	CacheEntriesPerGPU int64
	// CacheRatio sizes each GPU's cache as a fraction of all entries. Tiny
	// ratios round up to at least one entry.
	CacheRatio float64
	// Policy picks the placement algorithm (default solver.UGache{}).
	Policy solver.Policy
	// Solver configures how optioned policies solve (branch-and-bound
	// workers, relative gap, node caps). Build uses it as-is; Refresh
	// additionally seeds WarmStart with the outgoing placement so
	// drifted-hotness re-solves start from a near-optimal incumbent.
	// Policies without options (heuristics) ignore it.
	Solver solver.Options
	// Mechanism picks the extraction mechanism (default extract.Factored).
	Mechanism extract.Mechanism
	// Source, when non-nil, enables functional mode: Lookup returns real
	// embedding bytes verified against this host store.
	Source cache.RowSource
	// BlockBudget caps solver blocks (0 = solver default).
	BlockBudget int
	// Placement, when non-nil, skips solving and uses this pre-solved
	// placement (e.g. loaded with solver.LoadPlacement); it is validated
	// against the rest of the config.
	Placement *solver.Placement
	// Owned, on clustered platforms, reports whether this machine's host
	// shard owns a key: owned network-class keys are served over the local
	// host path instead of crossing the wire (extract.Extractor.Owned). The
	// serve layer's cluster router passes its hash-ring shard predicate
	// here. Ignored on single-machine platforms.
	Owned func(key int64) bool
	// Telemetry, when non-nil, receives the engine's extraction metrics
	// (simulated time split by source tier, per-tier cache-hit key
	// counters) and the cache layer's refresh gauges. Nil disables
	// instrumentation entirely — the no-op fast path is a single nil
	// check per extraction.
	Telemetry *telemetry.Registry
	// Timeline, when non-nil, receives span-level traces from the slow
	// control paths: Refresh emits a solver span (with the placement's
	// replication-vs-partition storage summary as args) and the cache layer
	// emits the Fig.-17-style per-step refresh timeline. Extractions made
	// with a phase-recording Scratch additionally publish per-link peak
	// utilization gauges into Telemetry. Nil disables all of it.
	Timeline *timeline.Recorder
	// Flight, when non-nil, receives control-plane flight events: every
	// completed Refresh (solve wall, applied delta, impact) and every drift
	// evaluation from an attached controller, recorded into the flight
	// recorder's shared control ring (DESIGN.md §6.8).
	Flight *flight.Recorder
}

// engineState is the immutable placement-derived state one extraction or
// model query reads. Refresh swaps the whole struct at once.
type engineState struct {
	placement *solver.Placement
	extractor *extract.Extractor
	input     solver.Input
	// version counts published placements: Build stores 1, every Refresh
	// increments. Consumers holding data derived from an older version (the
	// serve layer's staging arena) use it to enforce the bounded-staleness
	// contract: rows gathered under version v remain servable after a swap to
	// v+1 only within the caller's staleness window of S batches, instead of
	// stalling every in-flight prefetch behind the new snapshot.
	version uint64
}

// System is a built UGache instance.
type System struct {
	P         *platform.Platform
	Cache     *cache.System
	Mechanism extract.Mechanism

	policy   solver.Policy
	solveOpt solver.Options
	capacity []int64
	owned    func(key int64) bool // cluster shard-ownership predicate, nil off-cluster

	// refreshMu serializes Refresh calls; readers never take it.
	refreshMu sync.Mutex
	state     atomic.Pointer[engineState]

	// met is nil unless Config.Telemetry was set; every extraction then
	// reports its per-tier split through lock-free shard updates.
	met *extractMetrics
	// tl is nil unless Config.Timeline was set; Refresh then emits solver
	// spans into it (the cache layer emits its own refresh-step spans).
	tl *timeline.Recorder
	// fl is nil unless Config.Flight was set; Refresh and any attached
	// controller then record control-plane flight events.
	fl *flight.Recorder
}

// extractMetrics splits the modelled extraction work by source tier — the
// quantity the §6.2 model predicts and Fig. 13/14 report. Second splits are
// the serial per-tier estimates (bytes x time-per-byte); tiers overlap in
// the simulated schedule, so they sum to more than the makespan.
type extractMetrics struct {
	batches    *telemetry.Counter
	simSeconds *telemetry.FloatCounter
	tierKeys   [4]*telemetry.Counter      // local, remote, host, network
	tierSecs   [4]*telemetry.FloatCounter // local, remote, host, network
	tpb        [][]float64                // TimePerByteTable (Path allocates; this is the hot path)

	// linkUtil[l] is link l's last-run peak utilization gauge, fed from
	// extractions that carried a fluid-sim phase log (tracing on); linkCap
	// caches capacities so the update path never touches the topology.
	linkUtil []*telemetry.Gauge
	linkCap  []float64
}

const (
	tierLocal = iota
	tierRemote
	tierHost
	tierNetwork
)

func newExtractMetrics(reg *telemetry.Registry, p *platform.Platform) *extractMetrics {
	return &extractMetrics{
		tpb:        p.TimePerByteTable(),
		batches:    reg.Counter("core_extract_batches_total", "simulated extraction batches"),
		simSeconds: reg.FloatCounter("core_extract_sim_seconds_total", "simulated extraction makespan seconds"),
		tierKeys: [4]*telemetry.Counter{
			tierLocal:   reg.Counter("core_hit_local_keys_total", "keys served from the local GPU cache partition"),
			tierRemote:  reg.Counter("core_hit_remote_keys_total", "keys served from peer GPU caches"),
			tierHost:    reg.Counter("core_hit_host_keys_total", "keys falling through to host memory"),
			tierNetwork: reg.Counter("core_hit_network_keys_total", "keys fetched from remote machines over the network tier"),
		},
		tierSecs: [4]*telemetry.FloatCounter{
			tierLocal:   reg.FloatCounter("core_extract_local_seconds_total", "modelled seconds moving local-tier bytes"),
			tierRemote:  reg.FloatCounter("core_extract_remote_seconds_total", "modelled seconds moving remote-tier bytes"),
			tierHost:    reg.FloatCounter("core_extract_host_seconds_total", "modelled seconds moving host-tier bytes"),
			tierNetwork: reg.FloatCounter("core_extract_network_seconds_total", "modelled seconds moving network-tier bytes"),
		},
		linkUtil: linkUtilGauges(reg, p),
		linkCap:  linkCapacities(p),
	}
}

// linkUtilGauges registers one saturation gauge per topology link:
// sim_link_peak_util_<name> is the peak utilization the link reached during
// the most recent phase-logged extraction (Fig. 6's congestion view,
// reduced to its headline number). Registration happens once at Build.
func linkUtilGauges(reg *telemetry.Registry, p *platform.Platform) []*telemetry.Gauge {
	out := make([]*telemetry.Gauge, len(p.Topo.Links))
	for l, link := range p.Topo.Links {
		out[l] = reg.Gauge("sim_link_peak_util_"+sanitizeMetricName(link.Name),
			"peak utilization of "+link.Name+" in the last phase-logged extraction")
	}
	return out
}

func linkCapacities(p *platform.Platform) []float64 {
	out := make([]float64, len(p.Topo.Links))
	for l, link := range p.Topo.Links {
		out[l] = link.Capacity
	}
	return out
}

// sanitizeMetricName maps a topology link name onto the Prometheus metric
// charset ([a-zA-Z0-9_]).
func sanitizeMetricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}

// observeExtract records one extraction result: the makespan plus, per
// destination GPU, the per-tier key counts and serial time estimates
// derived from the source-volume matrix (which reflects the placement
// snapshot the batch resolved against). Counter updates shard by
// destination GPU, so concurrent serving workers do not contend.
func (s *System) observeExtract(res *extract.Result) {
	m := s.met
	entryBytes := float64(s.Cache.EntryBytes)
	host := int(s.P.Host())
	network := -1
	if s.P.HasNetwork() {
		network = int(s.P.Network())
	}
	shard := 0 // first active destination; serving batches have exactly one
	for g, row := range res.SrcBytes {
		active := false
		for j, bytes := range row {
			if bytes == 0 {
				continue
			}
			active = true
			tier := tierRemote
			switch j {
			case g:
				tier = tierLocal
			case host:
				tier = tierHost
			case network:
				tier = tierNetwork
			}
			m.tierKeys[tier].Add(g, int64(bytes/entryBytes))
			m.tierSecs[tier].Add(g, bytes*m.tpb[g][j])
		}
		if active && shard == 0 {
			shard = g
		}
	}
	m.batches.Add(shard, 1)
	m.simSeconds.Add(shard, res.Time)

	// Saturation gauges: with a phase log present (tracing on), publish each
	// link's peak phase utilization. Gauge stores are single atomics, so
	// this adds no allocation to the instrumented path.
	if res.Phases != nil {
		log := res.Phases
		for l, g := range m.linkUtil {
			capacity := m.linkCap[l]
			if capacity <= 0 {
				continue
			}
			peak := 0.0
			for p := 0; p < log.Phases(); p++ {
				if r := log.RateAt(p, sim.LinkID(l)); r > peak {
					peak = r
				}
			}
			g.Set(peak / capacity)
		}
	}
}

// Build solves the policy and fills the caches.
func Build(cfg Config) (*System, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: Platform is required")
	}
	if len(cfg.Hotness) == 0 {
		return nil, fmt.Errorf("core: Hotness is required")
	}
	if cfg.EntryBytes <= 0 {
		return nil, fmt.Errorf("core: EntryBytes must be positive")
	}
	if cfg.CacheEntriesPerGPU < 0 {
		return nil, fmt.Errorf("core: CacheEntriesPerGPU must be positive, got %d", cfg.CacheEntriesPerGPU)
	}
	capPer := cfg.CacheEntriesPerGPU
	if capPer == 0 {
		if cfg.CacheRatio <= 0 || cfg.CacheRatio > 1 {
			return nil, fmt.Errorf("core: need CacheEntriesPerGPU or CacheRatio in (0, 1]")
		}
		// Round up so a tiny ratio still yields a usable (>= 1 entry) cache
		// instead of silently truncating to zero.
		capPer = int64(math.Ceil(cfg.CacheRatio * float64(len(cfg.Hotness))))
		if capPer < 1 {
			capPer = 1
		}
	}
	policy := cfg.Policy
	if policy == nil {
		policy = solver.UGache{}
	}
	capacity := make([]int64, cfg.Platform.N)
	for g := range capacity {
		capacity[g] = capPer
	}
	in := solver.Input{
		P:           cfg.Platform,
		Hotness:     cfg.Hotness,
		EntryBytes:  cfg.EntryBytes,
		Capacity:    capacity,
		BlockBudget: cfg.BlockBudget,
	}
	pl := cfg.Placement
	if pl == nil {
		solved, err := solver.SolveWith(policy, &in, cfg.Solver)
		if err != nil {
			return nil, fmt.Errorf("core: policy %s: %w", policy.Name(), err)
		}
		pl = solved
	} else if len(pl.EstTimes) == 0 {
		pl.EstTimes = solver.EstimateTimes(&in, pl)
	}
	if err := pl.Validate(&in); err != nil {
		return nil, fmt.Errorf("core: policy %s produced invalid placement: %w", policy.Name(), err)
	}
	cs, err := cache.Fill(cfg.Platform, pl, cache.FillOptions{
		CapacityEntries: capacity,
		Source:          cfg.Source,
	})
	if err != nil {
		return nil, err
	}
	ex, err := extract.New(cfg.Platform, pl)
	if err != nil {
		return nil, err
	}
	s := &System{
		P:         cfg.Platform,
		Cache:     cs,
		Mechanism: cfg.Mechanism,
		policy:    policy,
		solveOpt:  cfg.Solver,
		capacity:  capacity,
	}
	if cfg.Platform.HasNetwork() {
		s.owned = cfg.Owned
		ex.Owned = s.owned
	}
	if cfg.Telemetry != nil {
		s.met = newExtractMetrics(cfg.Telemetry, cfg.Platform)
		cs.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Timeline != nil {
		s.tl = cfg.Timeline
		cs.SetTimeline(cfg.Timeline)
		cfg.Timeline.SetProcessName(timeline.ProcControl, "control")
		cfg.Timeline.SetThreadName(timeline.ProcControl, timeline.TIDRefresh, "cache refresh")
		cfg.Timeline.SetThreadName(timeline.ProcControl, timeline.TIDSolver, "policy solver")
	}
	s.fl = cfg.Flight
	s.state.Store(&engineState{placement: pl, extractor: ex, input: in, version: 1})
	return s, nil
}

// emitSolveSpan records one policy solve on the control track: wall-clock
// duration plus the solved placement's replication-vs-partition storage
// summary (the §6.2 decision the solver introspection is after).
func (s *System) emitSolveSpan(start time.Time, wallSeconds float64, pl *solver.Placement) {
	if s.tl == nil {
		return
	}
	sum := pl.StorageSummary()
	ev := timeline.Event{
		Name: "policy-solve", Cat: "solver", Ph: timeline.PhSpan,
		PID: timeline.ProcControl, TID: timeline.TIDSolver,
		Start: s.tl.Since(start), Dur: wallSeconds,
	}
	ev.AddArg("blocks", float64(len(pl.Blocks)))
	ev.AddArg("replicated_blocks", float64(sum.ReplicatedBlocks))
	ev.AddArg("partial_blocks", float64(sum.PartialBlocks))
	ev.AddArg("partitioned_blocks", float64(sum.PartitionedBlocks))
	ev.AddArg("uncached_blocks", float64(sum.UncachedBlocks))
	ev.AddArg("replicated_mass", sum.ReplicatedMass)
	ev.AddArg("partitioned_mass", sum.PartitionedMass)
	ev.AddArg("uncached_mass", sum.UncachedMass)
	ev.AddArg("est_time_max", maxOf(pl.EstTimes))
	ev.AddArg("solve_nodes", float64(pl.SolveNodes))
	s.tl.Shard(0).Emit(&ev)
}

// Telemetry reports whether the system was built with a telemetry registry.
func (s *System) Telemetry() bool { return s.met != nil }

// Placement returns the currently active placement.
func (s *System) Placement() *solver.Placement { return s.state.Load().placement }

// PlacementVersion returns the published placement's version: 1 after Build,
// incremented by every successful Refresh. Data gathered under an older
// version (staged prefetch rows) is subject to the bounded-staleness
// contract documented on engineState.
func (s *System) PlacementVersion() uint64 { return s.state.Load().version }

// Extractor returns the extractor for the currently active placement.
func (s *System) Extractor() *extract.Extractor { return s.state.Load().extractor }

// Functional reports whether Lookup can return real bytes (a Source was
// attached at Build time).
func (s *System) Functional() bool { return s.Cache.Functional() }

// ExtractBatch simulates one iteration's extraction with the configured
// mechanism and returns the timing result.
func (s *System) ExtractBatch(b *extract.Batch) (*extract.Result, error) {
	res, err := s.state.Load().extractor.Run(s.Mechanism, b)
	if err == nil && s.met != nil {
		s.observeExtract(res)
	}
	return res, err
}

// ExtractWith simulates one extraction with an explicit mechanism
// (baseline comparisons). Telemetry only tracks the configured mechanism,
// so baseline sweeps do not pollute the serving counters.
func (s *System) ExtractWith(m extract.Mechanism, b *extract.Batch) (*extract.Result, error) {
	return s.state.Load().extractor.Run(m, b)
}

// Lookup functionally gathers rows for GPU dst into out; requires a Source.
func (s *System) Lookup(dst int, keys []int64, out []byte) error {
	return s.Cache.Gather(dst, keys, out)
}

// Stats returns the modelled per-GPU access split.
func (s *System) Stats() []solver.HitStats {
	st := s.state.Load()
	return st.placement.Stats(st.input.Hotness)
}

// EstimatedTimes returns the §6.2 model's per-GPU extraction estimate.
func (s *System) EstimatedTimes() []float64 {
	return s.state.Load().placement.EstTimes
}

// Refresh re-solves the policy against new hotness and applies it per §7.2,
// returning the Fig.-17-style report. The system's placement, caches and
// extractor all switch to the new solution.
//
// Refresh is atomic with respect to failures: the new extractor is built
// before anything is committed, and the placement/input/extractor triple is
// published in one swap only after the cache refresh succeeded. Concurrent
// lookups and extractions keep running against the old state throughout.
// The swap bumps PlacementVersion; consumers holding rows gathered under
// the outgoing placement (the serve layer's staging arena) may keep serving
// them for up to their configured staleness window of S batches instead of
// stalling behind the new snapshot — embedding content is immutable here,
// so staleness only affects tier classification, never row bytes.
func (s *System) Refresh(newHotness workload.Hotness, baseIterTime float64, cfg cache.RefreshConfig) (*cache.RefreshReport, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	old := s.state.Load()
	if int64(len(newHotness)) != old.placement.NumEntries() {
		return nil, fmt.Errorf("core: hotness for %d entries, placement has %d",
			len(newHotness), old.placement.NumEntries())
	}
	in := old.input
	in.Hotness = newHotness
	// Re-solves are warm-started from the outgoing placement: exact policies
	// adopt it as the initial incumbent, so a drifted-hotness solve prunes
	// from the first node instead of rediscovering the placement.
	opt := s.solveOpt
	opt.WarmStart = old.placement
	solveStart := time.Now()
	pl, err := solver.SolveWith(s.policy, &in, opt)
	if err != nil {
		return nil, err
	}
	solveWall := time.Since(solveStart).Seconds()
	if err := pl.Validate(&in); err != nil {
		return nil, err
	}
	s.emitSolveSpan(solveStart, solveWall, pl)
	// Surface the real solve cost next to the simulated Fig. 17 replay: the
	// cache layer publishes these through its solve-wall gauges and the
	// refresh-solve span args.
	cfg.Solve = &cache.SolveStats{
		WallSeconds: solveWall,
		Nodes:       pl.SolveNodes,
		Workers:     opt.Workers,
		WarmStart:   true,
	}
	// Build every fallible piece before touching shared state, so a failed
	// refresh leaves the old placement, caches and extractor paired.
	ex, err := extract.New(s.P, pl)
	if err != nil {
		return nil, err
	}
	ex.Owned = s.owned
	rep, err := s.Cache.Refresh(pl, baseIterTime, cfg)
	if err != nil {
		return nil, err
	}
	s.state.Store(&engineState{placement: pl, extractor: ex, input: in, version: old.version + 1})
	if s.fl != nil {
		// One control-plane flight event per applied refresh; Seq is the new
		// placement version, so bundle readers can line refreshes up against
		// the staging arena's staleness decisions.
		e := flight.Event{Kind: flight.KindRefresh, GPU: -1,
			Seq: int64(old.version + 1), UnixNanos: time.Now().UnixNano()}
		e.V[flight.RefreshSolveWallSeconds] = solveWall
		e.V[flight.RefreshDurationSeconds] = rep.Duration
		e.V[flight.RefreshMovedEntries] = float64(rep.EvictedEntries + rep.InsertedEntries)
		e.V[flight.RefreshMeanImpact] = rep.MeanImpact
		e.V[flight.RefreshSolveNodes] = float64(pl.SolveNodes)
		s.fl.RecordControl(&e)
	}
	return rep, nil
}

// ShouldRefresh implements the §7.2 trigger: re-evaluate the model with new
// hotness under the current placement and report whether the estimated
// extraction time degraded by more than threshold (e.g. 0.1 = 10%).
func (s *System) ShouldRefresh(newHotness workload.Hotness, threshold float64) (bool, error) {
	st := s.state.Load()
	if int64(len(newHotness)) != st.placement.NumEntries() {
		return false, fmt.Errorf("core: hotness length mismatch")
	}
	in := st.input
	in.Hotness = newHotness
	cur := maxOf(solver.EstimateTimes(&in, st.placement))
	old := maxOf(st.placement.EstTimes)
	if old == 0 {
		return cur > 0, nil
	}
	return cur > old*(1+threshold), nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
