// Package core assembles UGache (paper §4): given a platform, hotness
// statistics, and per-GPU cache capacity, Build profiles the platform,
// solves the cache policy (Solver), fills the caches (Filler), and serves
// batched lookups through the factored Extractor. Refresh re-solves against
// new hotness in the background and applies the diff with bounded
// foreground impact (§7.2).
//
// A built System is safe for concurrent use: lookups and extractions read
// an immutable engine state (placement + extractor) behind an atomic
// pointer, and Refresh publishes a fully built replacement state only
// after every fallible step succeeded. The cache layer underneath applies
// the same snapshot-swap discipline to its hash tables and arenas.
//
// This package is the internal engine behind the public ugache package at
// the module root.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ugache/internal/cache"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/solver"
	"ugache/internal/workload"
)

// Config describes a UGache instance.
type Config struct {
	// Platform is the multi-GPU server (required).
	Platform *platform.Platform
	// Hotness is the per-entry expected accesses per iteration (required;
	// obtain it from presampling, degree proxies, or a HotnessSampler —
	// §6.1).
	Hotness workload.Hotness
	// EntryBytes is the embedding row size (required).
	EntryBytes int
	// CacheEntriesPerGPU sizes each GPU's cache in entries. If zero,
	// CacheRatio is used instead; negative values are rejected.
	CacheEntriesPerGPU int64
	// CacheRatio sizes each GPU's cache as a fraction of all entries. Tiny
	// ratios round up to at least one entry.
	CacheRatio float64
	// Policy picks the placement algorithm (default solver.UGache{}).
	Policy solver.Policy
	// Mechanism picks the extraction mechanism (default extract.Factored).
	Mechanism extract.Mechanism
	// Source, when non-nil, enables functional mode: Lookup returns real
	// embedding bytes verified against this host store.
	Source cache.RowSource
	// BlockBudget caps solver blocks (0 = solver default).
	BlockBudget int
	// Placement, when non-nil, skips solving and uses this pre-solved
	// placement (e.g. loaded with solver.LoadPlacement); it is validated
	// against the rest of the config.
	Placement *solver.Placement
}

// engineState is the immutable placement-derived state one extraction or
// model query reads. Refresh swaps the whole struct at once.
type engineState struct {
	placement *solver.Placement
	extractor *extract.Extractor
	input     solver.Input
}

// System is a built UGache instance.
type System struct {
	P         *platform.Platform
	Cache     *cache.System
	Mechanism extract.Mechanism

	policy   solver.Policy
	capacity []int64

	// refreshMu serializes Refresh calls; readers never take it.
	refreshMu sync.Mutex
	state     atomic.Pointer[engineState]
}

// Build solves the policy and fills the caches.
func Build(cfg Config) (*System, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: Platform is required")
	}
	if len(cfg.Hotness) == 0 {
		return nil, fmt.Errorf("core: Hotness is required")
	}
	if cfg.EntryBytes <= 0 {
		return nil, fmt.Errorf("core: EntryBytes must be positive")
	}
	if cfg.CacheEntriesPerGPU < 0 {
		return nil, fmt.Errorf("core: CacheEntriesPerGPU must be positive, got %d", cfg.CacheEntriesPerGPU)
	}
	capPer := cfg.CacheEntriesPerGPU
	if capPer == 0 {
		if cfg.CacheRatio <= 0 || cfg.CacheRatio > 1 {
			return nil, fmt.Errorf("core: need CacheEntriesPerGPU or CacheRatio in (0, 1]")
		}
		// Round up so a tiny ratio still yields a usable (>= 1 entry) cache
		// instead of silently truncating to zero.
		capPer = int64(math.Ceil(cfg.CacheRatio * float64(len(cfg.Hotness))))
		if capPer < 1 {
			capPer = 1
		}
	}
	policy := cfg.Policy
	if policy == nil {
		policy = solver.UGache{}
	}
	capacity := make([]int64, cfg.Platform.N)
	for g := range capacity {
		capacity[g] = capPer
	}
	in := solver.Input{
		P:           cfg.Platform,
		Hotness:     cfg.Hotness,
		EntryBytes:  cfg.EntryBytes,
		Capacity:    capacity,
		BlockBudget: cfg.BlockBudget,
	}
	pl := cfg.Placement
	if pl == nil {
		solved, err := policy.Solve(&in)
		if err != nil {
			return nil, fmt.Errorf("core: policy %s: %w", policy.Name(), err)
		}
		pl = solved
	} else if len(pl.EstTimes) == 0 {
		pl.EstTimes = solver.EstimateTimes(&in, pl)
	}
	if err := pl.Validate(&in); err != nil {
		return nil, fmt.Errorf("core: policy %s produced invalid placement: %w", policy.Name(), err)
	}
	cs, err := cache.Fill(cfg.Platform, pl, cache.FillOptions{
		CapacityEntries: capacity,
		Source:          cfg.Source,
	})
	if err != nil {
		return nil, err
	}
	ex, err := extract.New(cfg.Platform, pl)
	if err != nil {
		return nil, err
	}
	s := &System{
		P:         cfg.Platform,
		Cache:     cs,
		Mechanism: cfg.Mechanism,
		policy:    policy,
		capacity:  capacity,
	}
	s.state.Store(&engineState{placement: pl, extractor: ex, input: in})
	return s, nil
}

// Placement returns the currently active placement.
func (s *System) Placement() *solver.Placement { return s.state.Load().placement }

// Extractor returns the extractor for the currently active placement.
func (s *System) Extractor() *extract.Extractor { return s.state.Load().extractor }

// Functional reports whether Lookup can return real bytes (a Source was
// attached at Build time).
func (s *System) Functional() bool { return s.Cache.Functional() }

// ExtractBatch simulates one iteration's extraction with the configured
// mechanism and returns the timing result.
func (s *System) ExtractBatch(b *extract.Batch) (*extract.Result, error) {
	return s.state.Load().extractor.Run(s.Mechanism, b)
}

// ExtractWith simulates one extraction with an explicit mechanism
// (baseline comparisons).
func (s *System) ExtractWith(m extract.Mechanism, b *extract.Batch) (*extract.Result, error) {
	return s.state.Load().extractor.Run(m, b)
}

// Lookup functionally gathers rows for GPU dst into out; requires a Source.
func (s *System) Lookup(dst int, keys []int64, out []byte) error {
	return s.Cache.Gather(dst, keys, out)
}

// Stats returns the modelled per-GPU access split.
func (s *System) Stats() []solver.HitStats {
	st := s.state.Load()
	return st.placement.Stats(st.input.Hotness)
}

// EstimatedTimes returns the §6.2 model's per-GPU extraction estimate.
func (s *System) EstimatedTimes() []float64 {
	return s.state.Load().placement.EstTimes
}

// Refresh re-solves the policy against new hotness and applies it per §7.2,
// returning the Fig.-17-style report. The system's placement, caches and
// extractor all switch to the new solution.
//
// Refresh is atomic with respect to failures: the new extractor is built
// before anything is committed, and the placement/input/extractor triple is
// published in one swap only after the cache refresh succeeded. Concurrent
// lookups and extractions keep running against the old state throughout.
func (s *System) Refresh(newHotness workload.Hotness, baseIterTime float64, cfg cache.RefreshConfig) (*cache.RefreshReport, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	old := s.state.Load()
	if int64(len(newHotness)) != old.placement.NumEntries() {
		return nil, fmt.Errorf("core: hotness for %d entries, placement has %d",
			len(newHotness), old.placement.NumEntries())
	}
	in := old.input
	in.Hotness = newHotness
	pl, err := s.policy.Solve(&in)
	if err != nil {
		return nil, err
	}
	if err := pl.Validate(&in); err != nil {
		return nil, err
	}
	// Build every fallible piece before touching shared state, so a failed
	// refresh leaves the old placement, caches and extractor paired.
	ex, err := extract.New(s.P, pl)
	if err != nil {
		return nil, err
	}
	rep, err := s.Cache.Refresh(pl, baseIterTime, cfg)
	if err != nil {
		return nil, err
	}
	s.state.Store(&engineState{placement: pl, extractor: ex, input: in})
	return rep, nil
}

// ShouldRefresh implements the §7.2 trigger: re-evaluate the model with new
// hotness under the current placement and report whether the estimated
// extraction time degraded by more than threshold (e.g. 0.1 = 10%).
func (s *System) ShouldRefresh(newHotness workload.Hotness, threshold float64) (bool, error) {
	st := s.state.Load()
	if int64(len(newHotness)) != st.placement.NumEntries() {
		return false, fmt.Errorf("core: hotness length mismatch")
	}
	in := st.input
	in.Hotness = newHotness
	cur := maxOf(solver.EstimateTimes(&in, st.placement))
	old := maxOf(st.placement.EstTimes)
	if old == 0 {
		return cur > 0, nil
	}
	return cur > old*(1+threshold), nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
