package core

import (
	"bytes"
	"sync"
	"testing"

	"ugache/internal/cache"
	"ugache/internal/emb"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// TestConcurrentLookupDuringRefresh drives Lookup, ExtractBatch, Stats and
// EstimatedTimes from many goroutines while Refresh repeatedly re-solves.
// Run with -race. Lookups must always return exact host-table bytes and
// extractions must always see a consistent placement/extractor pair.
func TestConcurrentLookupDuringRefresh(t *testing.T) {
	const n = 3000
	p := platform.ServerC()
	table, err := emb.NewMaterialized("t", n, 16, emb.Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := testHotness(n, 1.2, 5)
	sys, err := Build(Config{
		Platform:   p,
		Hotness:    h,
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.1,
		Source:     table,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 21))
			z, _ := workload.NewZipf(n, 1.1)
			keys := make([]int64, 12)
			out := make([]byte, len(keys)*table.EntryBytes())
			want := make([]byte, table.EntryBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = z.Sample(r)
				}
				if err := sys.Lookup(w%p.N, keys, out); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				for i, k := range keys {
					table.ReadRow(k, want)
					if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
						t.Errorf("torn lookup for key %d", k)
						return
					}
				}
				b := &extract.Batch{Keys: make([][]int64, p.N)}
				b.Keys[w%p.N] = keys
				if res, err := sys.ExtractBatch(b); err != nil || res.Time <= 0 {
					t.Errorf("extract: %v", err)
					return
				}
				if st := sys.Stats(); len(st) != p.N {
					t.Errorf("stats arity %d", len(st))
					return
				}
				if et := sys.EstimatedTimes(); len(et) != p.N {
					t.Errorf("estimates arity %d", len(et))
					return
				}
			}
		}(w)
	}

	cfg := cache.DefaultRefreshConfig()
	cfg.BatchEntries = 500
	h2 := make(workload.Hotness, n)
	for i := range h2 {
		h2[i] = h[n-1-i]
	}
	for round := 0; round < 6; round++ {
		target := h2
		if round%2 == 1 {
			target = h
		}
		if _, err := sys.Refresh(target, 0.001, cfg); err != nil {
			t.Fatalf("refresh round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
