package core

import (
	"testing"

	"ugache/internal/emb"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// Hot-path microbenchmarks (run with `make bench`): the per-iteration
// lookup/extract costs that sit on the serving critical path. Results are
// tracked in BENCH_hotpath.json at the repo root.

func buildBench(b *testing.B, n int, functional bool) (*System, *platform.Platform) {
	b.Helper()
	p := platform.ServerC()
	cfg := Config{
		Platform:   p,
		Hotness:    testHotness(n, 1.1, 1),
		EntryBytes: 128,
		CacheRatio: 0.1,
	}
	if functional {
		table, err := emb.NewMaterialized("bench", int64(n), 32, emb.Float32, 7)
		if err != nil {
			b.Fatal(err)
		}
		cfg.EntryBytes = table.EntryBytes()
		cfg.Source = table
	}
	sys, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys, p
}

func benchKeys(n int64, count int, seed uint64) []int64 {
	z, _ := workload.NewZipf(n, 1.1)
	r := rng.New(seed)
	scratch := make(map[int64]struct{})
	keys := make([]int64, count*4)
	for i := range keys {
		keys[i] = z.Sample(r)
	}
	uniq := workload.Unique(keys, scratch)
	if len(uniq) > count {
		uniq = uniq[:count]
	}
	return uniq
}

// BenchmarkLookup1 is the single-key functional lookup path.
func BenchmarkLookup1(b *testing.B) {
	sys, _ := buildBench(b, 20000, true)
	keys := benchKeys(20000, 1, 3)
	out := make([]byte, sys.Cache.EntryBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Lookup(0, keys, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookup256 is a typical request-sized functional gather.
func BenchmarkLookup256(b *testing.B) {
	sys, _ := buildBench(b, 20000, true)
	keys := benchKeys(20000, 256, 3)
	out := make([]byte, len(keys)*sys.Cache.EntryBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Lookup(0, keys, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractBatch is one iteration-sized simulated extraction across
// all 8 GPUs of server C.
func BenchmarkExtractBatch(b *testing.B) {
	sys, p := buildBench(b, 20000, false)
	batch := &extract.Batch{Keys: make([][]int64, p.N)}
	for g := 0; g < p.N; g++ {
		batch.Keys[g] = benchKeys(20000, 2048, uint64(g+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ExtractBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
