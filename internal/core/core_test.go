package core

import (
	"bytes"
	"math"
	"testing"

	"ugache/internal/cache"
	"ugache/internal/emb"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

func testHotness(n int, alpha float64, seed uint64) workload.Hotness {
	r := rng.New(seed)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -alpha)
	}
	return h
}

func TestBuildAndExtract(t *testing.T) {
	p := platform.ServerC()
	sys, err := Build(Config{
		Platform:   p,
		Hotness:    testHotness(8000, 1.1, 1),
		EntryBytes: 512,
		CacheRatio: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := workload.NewZipf(8000, 1.1)
	r := rng.New(2)
	b := &extract.Batch{Keys: make([][]int64, p.N)}
	scratch := make(map[int64]struct{})
	for g := 0; g < p.N; g++ {
		keys := make([]int64, 20000)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		b.Keys[g] = workload.Unique(keys, scratch)
	}
	res, err := sys.ExtractBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no time")
	}
	// Factored (default) must beat an explicit peer-random run.
	peer, err := sys.ExtractWith(extract.PeerRandom, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time >= peer.Time {
		t.Fatalf("factored %g not faster than peer %g", res.Time, peer.Time)
	}
	if len(sys.EstimatedTimes()) != p.N {
		t.Fatal("estimates missing")
	}
	st := sys.Stats()
	if len(st) != p.N || st[0].Local <= 0 {
		t.Fatalf("stats %v", st)
	}
}

func TestBuildValidation(t *testing.T) {
	p := platform.ServerA()
	h := testHotness(100, 1.1, 1)
	cases := []Config{
		{Hotness: h, EntryBytes: 4, CacheRatio: 0.1},
		{Platform: p, EntryBytes: 4, CacheRatio: 0.1},
		{Platform: p, Hotness: h, CacheRatio: 0.1},
		{Platform: p, Hotness: h, EntryBytes: 4},
		{Platform: p, Hotness: h, EntryBytes: 4, CacheRatio: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Build(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestNegativeCacheEntriesRejected(t *testing.T) {
	p := platform.ServerA()
	_, err := Build(Config{
		Platform:           p,
		Hotness:            testHotness(100, 1.1, 1),
		EntryBytes:         4,
		CacheEntriesPerGPU: -5,
		CacheRatio:         0.1, // must not be silently used as a fallback
	})
	if err == nil {
		t.Fatal("negative CacheEntriesPerGPU accepted")
	}
}

func TestTinyCacheRatioRoundsUp(t *testing.T) {
	// A ratio so small that ratio*n truncates to zero entries must still
	// build a system with at least one cached entry per GPU.
	p := platform.ServerA()
	sys, err := Build(Config{
		Platform:   p,
		Hotness:    testHotness(100, 1.1, 1),
		EntryBytes: 4,
		CacheRatio: 0.001, // 0.1 entries -> rounds up to 1
	})
	if err != nil {
		t.Fatal(err)
	}
	used := sys.Placement().CapacityUsed()
	total := int64(0)
	for _, u := range used {
		total += u
	}
	if total == 0 {
		t.Fatal("tiny ratio produced an empty cache")
	}
}

func TestRefreshFailureLeavesStateIntact(t *testing.T) {
	p := platform.ServerC()
	h := testHotness(2000, 1.1, 5)
	sys, err := Build(Config{Platform: p, Hotness: h, EntryBytes: 64, CacheRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Placement()
	h2 := make(workload.Hotness, len(h))
	for i := range h2 {
		h2[i] = h[len(h)-1-i]
	}
	// Invalid refresh config: cache.Refresh fails after the solve succeeded.
	bad := cache.DefaultRefreshConfig()
	bad.BatchEntries = 0
	if _, err := sys.Refresh(h2, 0.001, bad); err == nil {
		t.Fatal("invalid refresh config accepted")
	}
	if sys.Placement() != before {
		t.Fatal("failed refresh replaced the placement")
	}
	// A well-formed refresh still succeeds afterwards.
	if _, err := sys.Refresh(h2, 0.001, cache.DefaultRefreshConfig()); err != nil {
		t.Fatalf("refresh after failed attempt: %v", err)
	}
	if sys.Placement() == before {
		t.Fatal("successful refresh did not swap the placement")
	}
}

func TestFunctionalLookup(t *testing.T) {
	p := platform.ServerA()
	table, err := emb.NewMaterialized("t", 3000, 8, emb.Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(Config{
		Platform:   p,
		Hotness:    testHotness(3000, 1.2, 3),
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.1,
		Source:     table,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{0, 5, 2999, 17}
	out := make([]byte, len(keys)*table.EntryBytes())
	if err := sys.Lookup(2, keys, out); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, table.EntryBytes())
	for i, k := range keys {
		table.ReadRow(k, want)
		if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
			t.Fatalf("lookup row %d wrong", k)
		}
	}
}

func TestPolicyPluggable(t *testing.T) {
	p := platform.ServerC()
	h := testHotness(4000, 1.1, 5)
	var times []float64
	for _, pol := range []solver.Policy{solver.Replication{}, solver.Partition{}, solver.UGache{}} {
		sys, err := Build(Config{
			Platform: p, Hotness: h, EntryBytes: 128, CacheRatio: 0.06, Policy: pol,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		times = append(times, maxOf(sys.EstimatedTimes()))
	}
	// ugache <= min(rep, part)
	if times[2] > math.Min(times[0], times[1])*1.01 {
		t.Fatalf("ugache %g vs rep %g part %g", times[2], times[0], times[1])
	}
}

func TestShouldRefreshAndRefresh(t *testing.T) {
	p := platform.ServerC()
	h := testHotness(4000, 1.2, 5)
	sys, err := Build(Config{
		Platform: p, Hotness: h, EntryBytes: 64, CacheRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same hotness: no refresh needed.
	if yes, err := sys.ShouldRefresh(h, 0.1); err != nil || yes {
		t.Fatalf("spurious refresh trigger (err %v)", err)
	}
	// Reversed hotness: the old placement caches the wrong entries.
	h2 := make(workload.Hotness, len(h))
	for i := range h2 {
		h2[i] = h[len(h)-1-i]
	}
	yes, err := sys.ShouldRefresh(h2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatal("refresh not triggered by reversed hotness")
	}
	oldMax := maxOf(sys.EstimatedTimes())
	cfg := cache.DefaultRefreshConfig()
	cfg.BatchEntries = 500
	rep, err := sys.Refresh(h2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration <= 0 || rep.InsertedEntries == 0 {
		t.Fatalf("report %+v", rep)
	}
	// After refresh the new placement is as good for h2 as the old one was
	// for h.
	newMax := maxOf(sys.EstimatedTimes())
	if newMax > oldMax*1.1 {
		t.Fatalf("refresh did not restore performance: %g vs %g", newMax, oldMax)
	}
	if yes, _ := sys.ShouldRefresh(h2, 0.1); yes {
		t.Fatal("refresh trigger still raised after refresh")
	}
}

// TestRefreshExactWarmStartStats runs the full control plane with the Exact
// branch-and-bound policy on a reduced 2-GPU instance: Build solves under
// Config.Solver, Refresh warm-starts from the outgoing placement, and the
// measured solve statistics surface in the report, the solve-wall gauges,
// and the policy-solve span.
func TestRefreshExactWarmStartStats(t *testing.T) {
	pair := [][]float64{{0, 50e9}, {50e9, 0}}
	p, err := platform.New(platform.Config{
		Name: "2xV100", Kind: platform.HardWired, GPU: platform.V100x16, N: 2,
		PCIeBW: 12e9, DRAMBW: 140e9, PairBW: pair,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	h := make(workload.Hotness, n)
	for e := 0; e < n; e++ {
		h[e] = math.Pow(float64(e+1), -1.2) * 1000
	}
	reg := telemetry.NewRegistry(p.N)
	rec := timeline.NewRecorder(1, 1024)
	sys, err := Build(Config{
		Platform:           p,
		Hotness:            h,
		EntryBytes:         512,
		CacheEntriesPerGPU: 16,
		Policy:             solver.Exact{MaxBlocks: 6},
		Solver:             solver.Options{Workers: 2, RelGap: 0.02},
		Telemetry:          reg,
		Timeline:           rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Placement().Policy != "exact" {
		t.Fatalf("policy %q", sys.Placement().Policy)
	}
	if sys.Placement().SolveNodes <= 0 {
		t.Fatal("build solve recorded no nodes")
	}

	// Drift the hotness and refresh: the re-solve must be warm-started and
	// its measured stats published end to end.
	h2 := make(workload.Hotness, n)
	for e := range h2 {
		h2[e] = h[e] * (1 + 0.2*math.Sin(float64(e)*2.39996))
	}
	cfg := cache.DefaultRefreshConfig()
	cfg.BatchEntries = 8
	rep, err := sys.Refresh(h2, 0.001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Solve
	if st == nil {
		t.Fatal("refresh report missing solve stats")
	}
	if !st.WarmStart || st.Workers != 2 {
		t.Fatalf("solve stats %+v: want warm start with 2 workers", st)
	}
	if st.Nodes != sys.Placement().SolveNodes || st.Nodes <= 0 {
		t.Fatalf("solve stats nodes %d, placement %d", st.Nodes, sys.Placement().SolveNodes)
	}
	if st.WallSeconds <= 0 {
		t.Fatalf("solve wall %g", st.WallSeconds)
	}
	vals := map[string]float64{}
	for _, s := range reg.Samples() {
		vals[s.Name] = s.Value
	}
	if vals["cache_refresh_last_solve_nodes"] != float64(st.Nodes) {
		t.Fatalf("solve nodes gauge %g, want %d", vals["cache_refresh_last_solve_nodes"], st.Nodes)
	}
	if vals["cache_refresh_last_solve_wall_seconds"] != st.WallSeconds {
		t.Fatalf("solve wall gauge %g, want %g", vals["cache_refresh_last_solve_wall_seconds"], st.WallSeconds)
	}
	var solveSpan *timeline.Event
	for _, ev := range rec.Events() {
		if ev.Name == "policy-solve" {
			ev := ev
			solveSpan = &ev
		}
	}
	if solveSpan == nil {
		t.Fatal("missing policy-solve span")
	}
	args := map[string]float64{}
	for i := int32(0); i < solveSpan.NArgs; i++ {
		args[solveSpan.Args[i].Key] = solveSpan.Args[i].Val
	}
	if args["solve_nodes"] != float64(st.Nodes) {
		t.Fatalf("policy-solve span solve_nodes %g, want %d", args["solve_nodes"], st.Nodes)
	}
}

func TestRefreshHotnessLengthMismatch(t *testing.T) {
	p := platform.ServerA()
	sys, err := Build(Config{
		Platform: p, Hotness: testHotness(1000, 1.1, 1), EntryBytes: 64, CacheRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Refresh(testHotness(500, 1.1, 1), 1, cache.DefaultRefreshConfig()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := sys.ShouldRefresh(testHotness(500, 1.1, 1), 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestExplicitCapacityOverridesRatio(t *testing.T) {
	p := platform.ServerA()
	sys, err := Build(Config{
		Platform:           p,
		Hotness:            testHotness(1000, 1.1, 1),
		EntryBytes:         64,
		CacheEntriesPerGPU: 123,
		CacheRatio:         0.9, // ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range sys.Placement().CapacityUsed() {
		if u > 123 {
			t.Fatalf("capacity override ignored: %d", u)
		}
	}
}

func TestPreSolvedPlacement(t *testing.T) {
	p := platform.ServerA()
	h := testHotness(2000, 1.1, 3)
	base, err := Build(Config{Platform: p, Hotness: h, EntryBytes: 64, CacheRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Roundtrip the placement through the binary format and rebuild.
	var buf bytes.Buffer
	if err := base.Placement().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := solver.LoadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(Config{
		Platform: p, Hotness: h, EntryBytes: 64, CacheRatio: 0.1,
		Placement: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < 2000; e += 101 {
		if sys.Placement().SourceOf(1, e) != base.Placement().SourceOf(1, e) {
			t.Fatal("pre-solved placement not used")
		}
	}
	// A placement that violates the capacity must be rejected.
	tiny, err := Build(Config{
		Platform: p, Hotness: h, EntryBytes: 64, CacheEntriesPerGPU: 1,
		Placement: loaded,
	})
	if err == nil {
		t.Fatalf("oversized placement accepted: %v", tiny.Placement().CapacityUsed())
	}
}
