package core

import (
	"testing"

	"ugache/internal/cache"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// driftTestSystem builds a small timing-only system solved against ref —
// the controller tests' stand-in for a serving deployment.
func driftTestSystem(t *testing.T, ref workload.Hotness) *System {
	t.Helper()
	sys, err := Build(Config{
		Platform:           platform.ServerA(),
		Hotness:            ref,
		EntryBytes:         64,
		CacheEntriesPerGPU: int64(len(ref) / 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// driveController replays wl's batches [from, to) through the sampler and
// the controller (the serving engine's per-batch hook), returning the batch
// index of the first refresh the controller performed, or -1.
func driveController(t *testing.T, ctrl *Controller, s *cache.HotnessSampler, wl *workload.ShiftingZipf, r *rng.Rand, from, to, size int) int {
	t.Helper()
	scratch := make(map[int64]struct{})
	first := -1
	for b := from; b < to; b++ {
		s.Observe(workload.Unique(wl.GenBatchAt(r, b, size), scratch))
		if ctrl.BatchObserved() && first < 0 {
			first = b
		}
	}
	return first
}

// TestControllerDriftBoundedTrigger is the tentpole's acceptance test: in
// drift mode the controller performs zero re-solves while the stream is
// stationary, triggers within a bounded window after a flash-crowd shift,
// and the triggered refresh moves strictly fewer entries than a rebuild.
func TestControllerDriftBoundedTrigger(t *testing.T) {
	const (
		n     = 4096
		kpb   = 512
		shift = 96
	)
	wl, err := workload.NewFlashCrowd(n, 0.9, shift, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := driftTestSystem(t, wl.ExpectedHotness(0, kpb))
	sampler := cache.NewHotnessSampler(n, 1)
	ctrl, err := NewController(sys, ControllerConfig{
		Mode:       RefreshDrift,
		Sampler:    sampler,
		CheckEvery: 8,
		Drift:      cache.DriftConfig{MinBatches: 16, MaxBatches: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)

	// Stationary phase: the detector must stay quiet through every check.
	if got := driveController(t, ctrl, sampler, wl, r, 0, shift, kpb); got >= 0 {
		t.Fatalf("stationary phase refreshed at batch %d", got)
	}
	st := ctrl.Stats()
	if st.Refreshes != 0 {
		t.Fatalf("%d stationary refreshes", st.Refreshes)
	}
	if st.Checks == 0 {
		t.Fatal("no drift checks ran")
	}

	// Post-shift: the trigger must land within the detection budget — one
	// full observation window plus the check cadence.
	maxDelay := ctrl.Detector().Config().MaxBatches + 8
	trigger := driveController(t, ctrl, sampler, wl, r, shift, shift+144, kpb)
	st = ctrl.Stats()
	if st.Refreshes == 0 {
		t.Fatal("flash crowd never triggered a refresh")
	}
	if trigger < shift || trigger > shift+maxDelay {
		t.Fatalf("trigger at batch %d outside (%d, %d]", trigger, shift, shift+maxDelay)
	}
	// The maturity backoff must keep the loop from chasing its own sampling
	// noise after the reaction.
	if st.Refreshes > 2 {
		t.Fatalf("%d refreshes for one shift", st.Refreshes)
	}
	if st.LastMoved <= 0 || st.LastMoved >= st.LastRebuild {
		t.Fatalf("incremental delta %d not strictly below rebuild %d", st.LastMoved, st.LastRebuild)
	}
	if st.LastDuration <= 0 {
		t.Fatalf("refresh duration %g", st.LastDuration)
	}
}

// TestControllerPeriodic pins the blind cadence: a refresh every
// PeriodBatches, aligned to the CheckEvery boundary, regardless of drift.
func TestControllerPeriodic(t *testing.T) {
	const n, kpb = 2048, 256
	wl, err := workload.NewDiurnalZipf(n, 1.05, 1.05, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sys := driftTestSystem(t, wl.ExpectedHotness(0, kpb))
	sampler := cache.NewHotnessSampler(n, 1)
	ctrl, err := NewController(sys, ControllerConfig{
		Mode:          RefreshPeriodic,
		Sampler:       sampler,
		CheckEvery:    8,
		PeriodBatches: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	scratch := make(map[int64]struct{})
	var fired []int
	for b := 0; b < 200; b++ {
		sampler.Observe(workload.Unique(wl.GenBatchAt(r, b, kpb), scratch))
		if ctrl.BatchObserved() {
			fired = append(fired, b)
		}
	}
	// BatchObserved counts from 1, so period boundaries land on batch
	// indices 63, 127, 191.
	want := []int{63, 127, 191}
	if len(fired) != len(want) {
		t.Fatalf("refreshes at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("refreshes at %v, want %v", fired, want)
		}
	}
	st := ctrl.Stats()
	if st.Refreshes != 3 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Periodic mode has no detector.
	if ctrl.Detector() != nil {
		t.Fatal("periodic controller grew a detector")
	}
	if st.LastScore != 0 {
		t.Fatalf("periodic LastScore %g", st.LastScore)
	}
}

// TestControllerAsyncSingleFlight smoke-tests the background path: checks
// run off the serving thread, Wait drains them, and a stationary stream
// never refreshes.
func TestControllerAsyncSingleFlight(t *testing.T) {
	const n, kpb = 1024, 128
	wl, err := workload.NewDiurnalZipf(n, 1.0, 1.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sys := driftTestSystem(t, wl.ExpectedHotness(0, kpb))
	sampler := cache.NewHotnessSampler(n, 1)
	ctrl, err := NewController(sys, ControllerConfig{
		Mode:       RefreshDrift,
		Sampler:    sampler,
		CheckEvery: 4,
		Drift:      cache.DriftConfig{MinBatches: 8},
		Async:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	scratch := make(map[int64]struct{})
	for b := 0; b < 64; b++ {
		sampler.Observe(workload.Unique(wl.GenBatchAt(r, b, kpb), scratch))
		if ctrl.BatchObserved() {
			t.Fatal("async BatchObserved reported an inline refresh")
		}
	}
	ctrl.Wait()
	st := ctrl.Stats()
	if st.Checks == 0 {
		t.Fatal("no async checks ran")
	}
	if st.Refreshes != 0 {
		t.Fatalf("stationary async stream refreshed %d times", st.Refreshes)
	}
	if st.Errors != 0 {
		t.Fatalf("%d controller errors", st.Errors)
	}
}

// TestControllerValidationAndModes covers construction errors, the off-mode
// no-op, and the flag parsing round trip.
func TestControllerValidationAndModes(t *testing.T) {
	if _, err := NewController(nil, ControllerConfig{}); err == nil {
		t.Fatal("nil system accepted")
	}
	ref := testHotness(256, 1.1, 1)
	sys := driftTestSystem(t, ref)
	for _, mode := range []RefreshMode{RefreshPeriodic, RefreshDrift} {
		if _, err := NewController(sys, ControllerConfig{Mode: mode}); err == nil {
			t.Fatalf("%s mode without a sampler accepted", mode)
		}
	}
	// Drift mode requires the sampler to match the placement's entry space.
	if _, err := NewController(sys, ControllerConfig{
		Mode:    RefreshDrift,
		Sampler: cache.NewHotnessSampler(99, 1),
	}); err == nil {
		t.Fatal("mismatched sampler accepted")
	}

	off, err := NewController(sys, ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if off.BatchObserved() {
			t.Fatal("off-mode controller refreshed")
		}
	}
	if refreshed, err := off.Tick(); refreshed || err != nil {
		t.Fatalf("off-mode Tick: %v %v", refreshed, err)
	}
	st := off.Stats()
	if st.Batches != 0 || st.Checks != 0 || st.Refreshes != 0 {
		t.Fatalf("off-mode stats %+v", st)
	}

	for _, tc := range []struct {
		in   string
		want RefreshMode
	}{
		{"off", RefreshOff}, {"", RefreshOff},
		{"periodic", RefreshPeriodic}, {"DRIFT", RefreshDrift},
	} {
		got, err := ParseRefreshMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseRefreshMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseRefreshMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	for _, m := range []RefreshMode{RefreshOff, RefreshPeriodic, RefreshDrift} {
		back, err := ParseRefreshMode(m.String())
		if err != nil || back != m {
			t.Fatalf("mode %d round-trips to %v, %v", m, back, err)
		}
	}
}
