package core

import (
	"ugache/internal/cache"
	"ugache/internal/extract"
)

// Scratch bundles the reusable buffers of the per-iteration hot path — the
// extractor's planning/simulation scratch and the functional gather's
// grouping/probe scratch — so a serving worker can run ExtractBatchWith and
// LookupWith back to back without allocating (§3.2's software overhead
// sits on the critical path of every iteration).
//
// A Scratch is owned by one goroutine at a time: give each worker its own,
// or recycle through a sync.Pool. Results returned from scratch-backed
// calls alias the scratch and are valid only until its next use; see
// extract.Scratch for the exact aliasing contract.
type Scratch struct {
	extract *extract.Scratch
	gather  *cache.GatherScratch
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// retained across calls.
func NewScratch() *Scratch {
	return &Scratch{extract: extract.NewScratch(), gather: cache.NewGatherScratch()}
}

// RecordSimPhases toggles fluid-sim phase logging for extractions made with
// this scratch (see extract.Scratch.RecordPhases). The serving engine turns
// it on when a timeline recorder is attached so per-link utilization tracks
// can be rendered; off (the default) costs nothing on the hot path.
func (s *Scratch) RecordSimPhases(on bool) { s.extract.RecordPhases(on) }

// ExtractBatchWith is ExtractBatch with an optional scratch. With a non-nil
// scratch the returned Result aliases the scratch's buffers and is valid
// only until the scratch's next use. A nil scratch is identical to
// ExtractBatch (caller-owned Result).
func (s *System) ExtractBatchWith(b *extract.Batch, sc *Scratch) (*extract.Result, error) {
	var esc *extract.Scratch
	if sc != nil {
		esc = sc.extract
	}
	res, err := s.state.Load().extractor.RunWith(s.Mechanism, b, esc)
	if err == nil && s.met != nil {
		s.observeExtract(res)
	}
	return res, err
}

// LookupWith is Lookup with an optional scratch for the gather's grouping
// and probe buffers. out is caller-owned either way; a nil scratch falls
// back to the cache layer's internal pool.
func (s *System) LookupWith(dst int, keys []int64, out []byte, sc *Scratch) error {
	var gsc *cache.GatherScratch
	if sc != nil {
		gsc = sc.gather
	}
	return s.Cache.GatherWith(dst, keys, out, gsc)
}
