package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/cache"
	"ugache/internal/flight"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// RefreshMode selects how the controller decides when to re-solve.
type RefreshMode int

const (
	// RefreshOff disables the controller (checks become no-ops).
	RefreshOff RefreshMode = iota
	// RefreshPeriodic re-solves every PeriodBatches observed batches — the
	// paper's fixed-cadence §7.2 behaviour, blind to whether hotness moved.
	RefreshPeriodic
	// RefreshDrift re-solves only when the drift detector reports that the
	// sampled hotness moved past the threshold.
	RefreshDrift
)

// String renders the mode the way the -refresh-mode flag spells it.
func (m RefreshMode) String() string {
	switch m {
	case RefreshPeriodic:
		return "periodic"
	case RefreshDrift:
		return "drift"
	default:
		return "off"
	}
}

// ParseRefreshMode parses a -refresh-mode flag value.
func ParseRefreshMode(s string) (RefreshMode, error) {
	switch strings.ToLower(s) {
	case "off", "":
		return RefreshOff, nil
	case "periodic":
		return RefreshPeriodic, nil
	case "drift":
		return RefreshDrift, nil
	}
	return RefreshOff, fmt.Errorf("core: unknown refresh mode %q (have off, periodic, drift)", s)
}

// ControllerConfig tunes the closed-loop refresh controller.
type ControllerConfig struct {
	// Mode picks the trigger policy (default RefreshOff).
	Mode RefreshMode
	// Sampler is the hotness sampler observing served batches (required for
	// any mode other than off; the serving engine feeds it).
	Sampler *cache.HotnessSampler
	// CheckEvery is the drift-check cadence in observed batches (default
	// 32). Checks are much cheaper than solves but not free — each one
	// merges the sampler shards and re-ranks the measured distribution.
	CheckEvery int
	// PeriodBatches is the blind-periodic re-solve cadence (default 512;
	// periodic mode only).
	PeriodBatches int
	// Drift configures the detector (drift mode only).
	Drift cache.DriftConfig
	// Refresh is the §7.2 replay configuration each triggered refresh uses
	// (zero value → cache.DefaultRefreshConfig()).
	Refresh cache.RefreshConfig
	// BaseIterTime is the foreground iteration seconds fed to Refresh's
	// impact replay (default 1e-3).
	BaseIterTime float64
	// Async runs triggered checks and refreshes on a background goroutine
	// (single-flight) so the serving worker that crossed the cadence
	// boundary never blocks on a solve. Synchronous mode (false) runs them
	// inline in BatchObserved — what benches and tests want.
	Async bool
	// Telemetry, when non-nil, receives the controller's counters and the
	// detector's gauges.
	Telemetry *telemetry.Registry
}

func (c ControllerConfig) normalize() ControllerConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 32
	}
	if c.PeriodBatches <= 0 {
		c.PeriodBatches = 512
	}
	if c.BaseIterTime <= 0 {
		c.BaseIterTime = 1e-3
	}
	if c.Refresh == (cache.RefreshConfig{}) {
		c.Refresh = cache.DefaultRefreshConfig()
	}
	return c
}

// ControllerStats is a snapshot of the controller's counters.
type ControllerStats struct {
	// Batches observed so far.
	Batches int64
	// Checks run (drift mode: detector evaluations; periodic: cadence
	// evaluations that found the period elapsed).
	Checks int64
	// Refreshes triggered and completed successfully.
	Refreshes int64
	// Errors from failed checks or refreshes.
	Errors int64
	// LastScore, LastOverlap and LastRankDistance mirror the detector's
	// last evaluation (drift mode; zero otherwise).
	LastScore, LastOverlap, LastRankDistance float64
	// LastMoved and LastRebuild are the last refresh's incremental delta
	// size vs the full-rebuild volume it avoided.
	LastMoved, LastRebuild int64
	// LastDuration and LastImpact are the last refresh's simulated length
	// (seconds) and mean foreground inflation fraction.
	LastDuration, LastImpact float64
}

// Controller closes the §7.2 loop: it watches the serving stream through
// the hotness sampler and re-solves the placement either on a fixed cadence
// (periodic) or when measured drift crosses the threshold (drift). The
// serving engine calls BatchObserved once per coalesced batch; everything
// else is internal.
type Controller struct {
	sys *System
	cfg ControllerConfig
	det *cache.DriftDetector

	batches   atomic.Int64
	lastCheck atomic.Int64 // batch count at the last cadence boundary

	inflight atomic.Bool
	wg       sync.WaitGroup

	// mu serializes the check-and-refresh critical section (Tick callers
	// racing the async path).
	mu            sync.Mutex
	lastRefreshAt int64 // batch count at the last successful refresh
	// minWindow is the drift-mode maturity gate. A refresh rebases the
	// detector onto a *sampled* window, and sample-vs-sample comparison is
	// noisier than sample-vs-reference — small trigger windows leave enough
	// selection bias at the top-K boundary to re-trigger on noise alone. So
	// each drift refresh doubles the window the next one needs (capped at
	// the detector's MaxBatches), and any quiet check re-arms the fast
	// MinBatches gate. Genuine sustained drift still refreshes promptly,
	// with each re-solve using a strictly cleaner hotness estimate.
	minWindow int

	checks, refreshes, errs atomic.Int64
	lastStatus              atomic.Pointer[cache.DriftStatus]
	lastMoved, lastRebuild  atomic.Int64
	lastDuration            atomic.Uint64 // float64 bits
	lastImpact              atomic.Uint64 // float64 bits

	met *controllerMetrics
}

type controllerMetrics struct {
	refreshes *telemetry.Counter
	errors    *telemetry.Counter
}

// NewController builds a controller for a built system. The detector's
// reference starts at the hotness the system's current placement was solved
// against.
func NewController(sys *System, cfg ControllerConfig) (*Controller, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: controller needs a system")
	}
	cfg = cfg.normalize()
	c := &Controller{sys: sys, cfg: cfg}
	if cfg.Mode == RefreshOff {
		return c, nil
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("core: %s refresh mode needs a sampler", cfg.Mode)
	}
	if cfg.Mode == RefreshDrift {
		det, err := cache.NewDriftDetector(cfg.Sampler, sys.state.Load().input.Hotness, cfg.Drift)
		if err != nil {
			return nil, err
		}
		c.det = det
		c.minWindow = det.Config().MinBatches
		if cfg.Telemetry != nil {
			det.SetTelemetry(cfg.Telemetry)
		}
	}
	if cfg.Telemetry != nil {
		c.met = &controllerMetrics{
			refreshes: cfg.Telemetry.Counter("cache_refresh_triggered_total", "refreshes triggered by the controller"),
			errors:    cfg.Telemetry.Counter("cache_refresh_controller_errors_total", "controller check/refresh failures"),
		}
	}
	if sys.tl != nil {
		sys.tl.SetThreadName(timeline.ProcControl, timeline.TIDDrift, "drift detector")
	}
	return c, nil
}

// Detector returns the drift detector (nil outside drift mode).
func (c *Controller) Detector() *cache.DriftDetector { return c.det }

// BatchObserved notes one served batch. When the check cadence elapses it
// evaluates the trigger policy — inline when the controller is synchronous,
// on a single-flight background goroutine when Async. It returns whether a
// refresh was performed (always false on the async path, which reports
// through Stats instead).
func (c *Controller) BatchObserved() bool {
	if c.cfg.Mode == RefreshOff {
		return false
	}
	n := c.batches.Add(1)
	last := c.lastCheck.Load()
	if n-last < int64(c.cfg.CheckEvery) || !c.lastCheck.CompareAndSwap(last, n) {
		return false
	}
	if !c.cfg.Async {
		refreshed, _ := c.Tick()
		return refreshed
	}
	// Single-flight: if a previous check or refresh is still running, skip
	// this boundary; the next one re-evaluates against fresher samples.
	if !c.inflight.CompareAndSwap(false, true) {
		return false
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.inflight.Store(false)
		c.Tick()
	}()
	return false
}

// Tick evaluates the trigger policy once, synchronously, and performs the
// refresh when it fires. Benches and tests drive the loop with it directly.
func (c *Controller) Tick() (refreshed bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.cfg.Mode {
	case RefreshPeriodic:
		refreshed, err = c.tickPeriodic()
	case RefreshDrift:
		refreshed, err = c.tickDrift()
	default:
		return false, nil
	}
	if err != nil {
		c.errs.Add(1)
		if c.met != nil {
			c.met.errors.Add(0, 1)
		}
	}
	return refreshed, err
}

// tickPeriodic fires when PeriodBatches elapsed since the last refresh.
func (c *Controller) tickPeriodic() (bool, error) {
	n := c.batches.Load()
	if n-c.lastRefreshAt < int64(c.cfg.PeriodBatches) {
		return false, nil
	}
	c.checks.Add(1)
	measured, err := c.cfg.Sampler.Hotness()
	if err != nil {
		return false, err // nothing sampled yet; not worth counting as failure
	}
	return true, c.refresh(measured, n)
}

// tickDrift checks the detector and fires on drift.
func (c *Controller) tickDrift() (bool, error) {
	c.checks.Add(1)
	st, err := c.det.Check()
	if err != nil {
		return false, err
	}
	stCopy := st
	stCopy.Measured = nil // the buffer is reused; don't leak it via Stats
	c.lastStatus.Store(&stCopy)
	c.emitCheckSpan(&st)
	if !st.Drifted {
		c.minWindow = c.det.Config().MinBatches // quiet: re-arm fast reaction
		return false, nil
	}
	if st.Batches < c.minWindow {
		// Drifted, but the reference is a recent sampled rebase and this
		// window is not yet larger than the one that produced it — wait for
		// a cleaner estimate before solving again.
		return false, nil
	}
	// The detector's measured buffer is reused by the next Check; the
	// refresh keeps its hotness, so copy.
	measured := append(workload.Hotness(nil), st.Measured...)
	if err := c.refresh(measured, c.batches.Load()); err != nil {
		return false, err
	}
	if mw := 2 * st.Batches; mw > c.minWindow {
		c.minWindow = mw
	}
	if cap := c.det.Config().MaxBatches; c.minWindow > cap {
		c.minWindow = cap
	}
	return true, nil
}

// refresh re-solves against the measured hotness, then restarts the
// observation window: the sampler resets and the detector rebases to the
// distribution the new placement assumes.
func (c *Controller) refresh(measured workload.Hotness, atBatch int64) error {
	rep, err := c.sys.Refresh(measured, c.cfg.BaseIterTime, c.cfg.Refresh)
	if err != nil {
		return err
	}
	c.lastRefreshAt = atBatch
	c.refreshes.Add(1)
	c.lastMoved.Store(rep.EvictedEntries + rep.InsertedEntries)
	c.lastRebuild.Store(rep.RebuildEntries)
	c.lastDuration.Store(math.Float64bits(rep.Duration))
	c.lastImpact.Store(math.Float64bits(rep.MeanImpact))
	if c.met != nil {
		c.met.refreshes.Add(0, 1)
	}
	c.cfg.Sampler.Reset()
	if c.det != nil {
		if err := c.det.Rebase(measured); err != nil {
			return err
		}
	}
	return nil
}

// emitCheckSpan records one drift evaluation on the control track and, when
// a flight recorder is wired, mirrors it into the control flight ring so the
// detector's last evaluations survive into diagnostic bundles.
func (c *Controller) emitCheckSpan(st *cache.DriftStatus) {
	if fl := c.sys.fl; fl != nil {
		e := flight.Event{Kind: flight.KindDrift, GPU: -1, UnixNanos: time.Now().UnixNano()}
		e.V[flight.DriftScore] = st.Score
		e.V[flight.DriftTopKOverlap] = st.TopKOverlap
		e.V[flight.DriftRankDistance] = st.RankDistance
		e.V[flight.DriftWindowBatches] = float64(st.Batches)
		if st.Drifted {
			e.V[flight.DriftDrifted] = 1
		}
		fl.RecordControl(&e)
	}
	tl := c.sys.tl
	if tl == nil {
		return
	}
	ev := timeline.Event{
		Name: "drift-check", Cat: "refresh", Ph: timeline.PhInstant,
		PID: timeline.ProcControl, TID: timeline.TIDDrift,
		Start: tl.Now(),
	}
	ev.AddArg("score", st.Score)
	ev.AddArg("topk_overlap", st.TopKOverlap)
	ev.AddArg("rank_distance", st.RankDistance)
	ev.AddArg("window_batches", float64(st.Batches))
	drifted := 0.0
	if st.Drifted {
		drifted = 1
	}
	ev.AddArg("drifted", drifted)
	tl.Shard(0).Emit(&ev)
}

// Wait blocks until any in-flight async check/refresh finished. Call at
// shutdown before reading final stats.
func (c *Controller) Wait() { c.wg.Wait() }

// Stats snapshots the controller's counters.
func (c *Controller) Stats() ControllerStats {
	st := ControllerStats{
		Batches:      c.batches.Load(),
		Checks:       c.checks.Load(),
		Refreshes:    c.refreshes.Load(),
		Errors:       c.errs.Load(),
		LastMoved:    c.lastMoved.Load(),
		LastRebuild:  c.lastRebuild.Load(),
		LastDuration: math.Float64frombits(c.lastDuration.Load()),
		LastImpact:   math.Float64frombits(c.lastImpact.Load()),
	}
	if ds := c.lastStatus.Load(); ds != nil {
		st.LastScore, st.LastOverlap, st.LastRankDistance = ds.Score, ds.TopKOverlap, ds.RankDistance
	}
	return st
}
